// Netmon: the network-management scenario — entities monitor flow
// records for different slices of the network (per-source-host interest
// plus latency thresholds), demonstrating how interest-based early
// filtering keeps a high-volume stream off links whose subtrees don't
// need it, and comparing the three dissemination-tree shapes.
package main

import (
	"fmt"
	"log"
	"time"

	"sspd"
)

const (
	hosts     = 50
	nEntities = 9
	tuples    = 3000
)

func main() {
	fmt.Println("dissemination strategy comparison on the flows stream")
	fmt.Printf("%-14s %14s %14s %10s %10s\n",
		"strategy", "total bytes", "source egress", "depth", "fanout")
	for _, strat := range []sspd.Strategy{sspd.SourceDirect, sspd.Balanced, sspd.Locality} {
		total, egress, depth, fanout := run(strat)
		fmt.Printf("%-14s %14d %14d %10d %10d\n", strat, total, egress, depth, fanout)
	}
	fmt.Println("\ntree dissemination caps source egress at O(fanout); early")
	fmt.Println("filtering keeps uninteresting flows off whole subtrees.")
}

func run(strategy sspd.Strategy) (totalBytes, sourceEgress int64, depth, fanout int) {
	net := sspd.NewSimNet(nil)
	defer net.Close()
	catalog := sspd.NewCatalog(20, hosts)

	fed, err := sspd.NewFederation(net, catalog, sspd.Options{
		Strategy: strategy,
		Fanout:   2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer fed.Close()

	if err := fed.AddSource("flows", sspd.Point{X: 0, Y: 0},
		sspd.StreamRate{TuplesPerSec: 10000, BytesPerTuple: 80}); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < nEntities; i++ {
		pos := sspd.Point{X: float64(10 + (i%3)*25), Y: float64(10 + (i/3)*25)}
		if err := fed.AddEntity(fmt.Sprintf("noc%d", i), pos, 2, nil); err != nil {
			log.Fatal(err)
		}
	}
	if err := fed.Start(); err != nil {
		log.Fatal(err)
	}

	// Every NOC entity watches slow flows across the whole network —
	// broad, heavily overlapping interests. Without cooperation the
	// source must ship each NOC its own copy; with a tree each parent
	// relays to at most `fanout` children.
	for i := 0; i < nEntities; i++ {
		spec := sspd.QuerySpec{
			ID:     fmt.Sprintf("slow-flows-%d", i),
			Source: "flows",
			Filters: []sspd.FilterSpec{
				{Field: "latency_ms", Lo: 300, Hi: 1000, Cost: 1},
				{Field: "bytes", Lo: 0, Hi: 1e9, Cost: 1},
			},
		}
		if err := fed.SubmitQueryTo(spec, fmt.Sprintf("noc%d", i), nil); err != nil {
			log.Fatal(err)
		}
	}
	net.Quiesce(5 * time.Second)
	net.Traffic().Reset()

	gen := sspd.NewFlowGen(99, hosts)
	for sent := 0; sent < tuples; sent += 500 {
		if err := fed.Publish("flows", gen.Batch(500)); err != nil {
			log.Fatal(err)
		}
	}
	net.Quiesce(10 * time.Second)
	time.Sleep(100 * time.Millisecond)

	tree := fed.DisseminationTree("flows")
	tr := net.Traffic()
	return tr.TotalBytes(), tr.EgressBytes("src:flows"), tree.MaxDepth(), tree.MaxFanout()
}
