// Quickstart: a minimal two-layer federation — one stock-quote source,
// two entities, one continuous query submitted through the coordinator
// tree — printing the first results it receives.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"sspd"
)

func main() {
	// The simulated network meters every byte; nil = zero latency.
	net := sspd.NewSimNet(nil)
	defer net.Close()

	// The global schema catalog (quotes/trades/flows) over 100 symbols.
	catalog := sspd.NewCatalog(100, 20)

	fed, err := sspd.NewFederation(net, catalog, sspd.Options{
		Strategy: sspd.Locality,
		Fanout:   3,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer fed.Close()

	// One source and two entities, placed in the coordinate space.
	if err := fed.AddSource("quotes", sspd.Point{X: 0, Y: 0},
		sspd.StreamRate{TuplesPerSec: 1000, BytesPerTuple: 60}); err != nil {
		log.Fatal(err)
	}
	for i, pos := range []sspd.Point{{X: 20, Y: 0}, {X: 40, Y: 10}} {
		if err := fed.AddEntity(fmt.Sprintf("entity-%d", i), pos, 2, nil); err != nil {
			log.Fatal(err)
		}
	}
	if err := fed.Start(); err != nil {
		log.Fatal(err)
	}

	// A continuous query: quotes for two symbols in a price band.
	spec := sspd.QuerySpec{
		ID:     "watch-tech",
		Source: "quotes",
		Filters: []sspd.FilterSpec{
			{KeyField: "symbol", Keys: []string{"S0000", "S0001"}, Cost: 1},
			{Field: "price", Lo: 100, Hi: 900, Cost: 1},
		},
	}
	var mu sync.Mutex
	results := 0
	entity, err := fed.SubmitQuery(spec, sspd.Point{X: 25, Y: 5}, func(t sspd.Tuple) {
		mu.Lock()
		defer mu.Unlock()
		results++
		if results <= 5 {
			fmt.Printf("result %d: %v\n", results, t)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query %q allocated to %s via the coordinator tree\n", spec.ID, entity)

	// Publish a burst of quotes from the source; the dissemination tree
	// early-filters everything the query doesn't want.
	ticker := sspd.NewTicker(42, 100, 1.5)
	for round := 0; round < 20; round++ {
		if err := fed.Publish("quotes", ticker.Batch(100)); err != nil {
			log.Fatal(err)
		}
	}
	net.Quiesce(2 * time.Second)
	time.Sleep(100 * time.Millisecond) // let the async engine drain

	mu.Lock()
	total := results
	mu.Unlock()
	tr := net.Traffic()
	fmt.Printf("\npublished 2000 quotes, delivered %d results\n", total)
	fmt.Printf("network: %d messages, %d bytes total; source egress %d bytes\n",
		tr.TotalMessages(), tr.TotalBytes(), tr.EgressBytes("src:quotes"))
	fmt.Printf("entity charged: %v of execution time\n", fed.Ledger().Charge(entity).Round(time.Millisecond))
}
