// Adaptation: the intra-entity layer up close — PR-driven operator
// placement across a processor cluster compared with the baselines, and
// the Adaptation Module re-ordering a query's filters live when the
// workload's selectivities flip.
//
// This example uses the internal packages directly (it demonstrates the
// machinery beneath the federation facade).
package main

import (
	"fmt"
	"math/rand"

	"sspd/internal/engine"
	"sspd/internal/entity"
	"sspd/internal/stream"
	"sspd/internal/workload"
)

func main() {
	placementDemo()
	fmt.Println()
	orderingDemo()
}

// placementDemo places a mixed fragment workload on an 8-processor
// cluster with every placer and reports the paper's metric, PRmax.
func placementDemo() {
	fmt.Println("operator placement on an 8-processor entity (PR = delay/processing)")
	rng := rand.New(rand.NewSource(11))
	var queries []entity.PlacementQuery
	for i := 0; i < 40; i++ {
		nf := 2 + rng.Intn(4)
		frags := make([]entity.FragmentSpec, nf)
		for f := range frags {
			frags[f] = entity.FragmentSpec{
				Cost:        0.5 + rng.Float64()*2,
				Selectivity: 0.3 + rng.Float64()*0.6,
			}
		}
		queries = append(queries, entity.PlacementQuery{
			ID:                fmt.Sprintf("q%02d", i),
			Fragments:         frags,
			InputRate:         20 + rng.Float64()*80,
			TupleSize:         100,
			DistributionLimit: 3,
		})
	}
	total := 0.0
	for _, q := range queries {
		total += q.TotalLoad()
	}
	procs := make([]entity.Proc, 8)
	for i := range procs {
		procs[i] = entity.Proc{ID: fmt.Sprintf("p%d", i), Capacity: total / 8 / 0.7}
	}

	fmt.Printf("%-12s %10s %10s %10s %14s\n", "placer", "PRmax", "meanPR", "imbalance", "traffic B/s")
	for _, placer := range []entity.Placer{
		entity.PRPlacer{},
		entity.LoadOnlyPlacer{},
		entity.RoundRobinPlacer{},
		entity.RandomPlacer{Seed: 3},
	} {
		asg, err := placer.Place(procs, queries)
		if err != nil {
			panic(err)
		}
		ev := entity.Evaluate(procs, queries, asg, entity.DefaultNetwork)
		fmt.Printf("%-12s %10.2f %10.2f %10.2f %14.0f\n",
			placer.Name(), ev.PRMax, ev.MeanPR, ev.Imbalance(), ev.TrafficBytes)
	}
}

// orderingDemo runs the Adaptation Module against a static plan through
// a selectivity flip and reports the work saved.
func orderingDemo() {
	fmt.Println("adaptive operator ordering through a selectivity flip")
	catalog := workload.Catalog(100, 10)
	mk := func() *engine.Query {
		q, err := engine.Compile(engine.QuerySpec{
			ID:     "q",
			Source: "quotes",
			Filters: []engine.FilterSpec{
				{Field: "price", Lo: 0, Hi: 500, Cost: 1},
				{Field: "volume", Lo: 0, Hi: 1000, Cost: 1},
			},
		}, catalog, nil)
		if err != nil {
			panic(err)
		}
		return q
	}
	adaptive, static := mk(), mk()
	am, err := entity.NewAM(adaptive, 64, 0.02)
	if err != nil {
		panic(err)
	}

	tick := workload.NewTicker(5, 100, 1.2)
	feed := func(phase string, n int, mutate func(stream.Tuple) stream.Tuple) {
		for i := 0; i < n; i++ {
			t := mutate(tick.Next())
			am.Feed("quotes", t)
			static.Feed("quotes", t)
		}
		fmt.Printf("  %-22s adaptations so far: %d\n", phase, am.Adaptations.Value())
	}
	// Phase 1: price filter is the selective one.
	feed("phase 1 (price hot)", 2000, func(t stream.Tuple) stream.Tuple {
		t.Values[1] = stream.Float(700) // price fails filter 0
		return t
	})
	// Phase 2: the flip — volume filter becomes the selective one.
	feed("phase 2 (volume hot)", 4000, func(t stream.Tuple) stream.Tuple {
		t.Values[1] = stream.Float(100)  // price passes
		t.Values[2] = stream.Int(999999) // volume fails filter 1
		return t
	})
	work := func(q *engine.Query) int64 {
		var sum int64
		for _, op := range q.Operators() {
			sum += op.Stats().In()
		}
		return sum
	}
	aw, sw := work(adaptive), work(static)
	fmt.Printf("operator evaluations: adaptive=%d static=%d (saved %.1f%%)\n",
		aw, sw, 100*(1-float64(aw)/float64(sw)))
}
