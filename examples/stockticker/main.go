// Stockticker: the paper's motivating financial-monitoring scenario at
// federation scale — a dozen entities spread over a wide area, hundreds
// of client queries with overlapping interests, adaptive reallocation
// when the workload drifts, and per-entity billing.
//
// The run prints the dissemination-tree shape, per-entity allocation
// before and after rebalancing, the duplicate-dissemination cost the
// query-graph partitioner saves, and the ledger.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"sspd"
)

const (
	nEntities = 12
	nQueries  = 150
	symbols   = 200
)

func main() {
	net := sspd.NewSimNet(nil)
	defer net.Close()
	catalog := sspd.NewCatalog(symbols, 20)

	fed, err := sspd.NewFederation(net, catalog, sspd.Options{
		Strategy:     sspd.Locality,
		Fanout:       3,
		CoordinatorK: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer fed.Close()

	if err := fed.AddSource("quotes", sspd.Point{X: 50, Y: 50},
		sspd.StreamRate{TuplesPerSec: 5000, BytesPerTuple: 60}); err != nil {
		log.Fatal(err)
	}
	if err := fed.AddSource("trades", sspd.Point{X: 55, Y: 50},
		sspd.StreamRate{TuplesPerSec: 2000, BytesPerTuple: 40}); err != nil {
		log.Fatal(err)
	}
	// Entities ringed around the sources.
	for i := 0; i < nEntities; i++ {
		pos := sspd.Point{X: float64(10 + (i%4)*30), Y: float64(10 + (i/4)*30)}
		if err := fed.AddEntity(fmt.Sprintf("e%02d", i), pos, 3, nil); err != nil {
			log.Fatal(err)
		}
	}
	if err := fed.Start(); err != nil {
		log.Fatal(err)
	}

	tree := fed.DisseminationTree("quotes")
	fmt.Printf("dissemination tree (quotes): depth=%d max fanout=%d\n",
		tree.MaxDepth(), tree.MaxFanout())
	root, height := fed.Coordinator().Root()
	fmt.Printf("coordinator tree: root=%s height=%d over %d entities\n\n",
		root, height, fed.Coordinator().Size())

	// A fast query stream: clients around the map submit queries whose
	// interests cluster into 6 overlapping groups.
	ticker := sspd.NewTicker(7, symbols, 1.3)
	qgen := sspd.NewQueryGen(7, ticker.Symbols(), 6, 0.3)
	for i, spec := range qgen.Specs(nQueries) {
		origin := sspd.Point{X: float64(i*7%100) + 1, Y: float64(i*13%100) + 1}
		if _, err := fed.SubmitQuery(spec, origin, nil); err != nil {
			log.Fatal(err)
		}
	}
	net.Quiesce(5 * time.Second)
	printAllocation(fed, "after coordinator-tree allocation")

	// The graph partitioner's view: how much duplicate dissemination
	// does the current allocation cost, and what would rebalancing save?
	g := fed.QueryGraph(0)
	before, _ := fed.Assignment()
	fmt.Printf("query graph: %d vertices, edge cut %.0f B/s under online allocation\n",
		g.NumVertices(), g.EdgeCut(before))

	moved, err := fed.Rebalance(sspd.HybridRepartitioner{})
	if err != nil {
		log.Fatal(err)
	}
	after, _ := fed.Assignment()
	fmt.Printf("hybrid rebalance: migrated %d queries, edge cut now %.0f B/s\n\n",
		moved, g.EdgeCut(after))
	printAllocation(fed, "after rebalancing")

	// Run the market for a few bursts.
	for round := 0; round < 10; round++ {
		if err := fed.Publish("quotes", ticker.Batch(500)); err != nil {
			log.Fatal(err)
		}
	}
	net.Quiesce(10 * time.Second)
	time.Sleep(200 * time.Millisecond)

	tr := net.Traffic()
	hot, hotBytes := tr.MaxEgress()
	fmt.Printf("published 5000 quotes: total %d KB on the wire, hottest node %s sent %d KB\n",
		tr.TotalBytes()/1024, hot, hotBytes/1024)

	fmt.Println("\nledger (entities are paid by execution time):")
	for _, c := range fed.Ledger().Charges() {
		fmt.Printf("  %-5s %8v\n", c.Entity, c.Execution.Round(time.Millisecond))
	}
}

func printAllocation(fed *sspd.Federation, label string) {
	fmt.Printf("allocation %s:\n", label)
	type row struct {
		id   string
		load float64
	}
	var rows []row
	for _, id := range fed.EntityIDs() {
		rows = append(rows, row{id, fed.EntityLoad(id)})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].id < rows[j].id })
	for _, r := range rows {
		fmt.Printf("  %-5s load=%7.1f %s\n", r.id, r.load, bar(r.load, 4))
	}
	fmt.Println()
}

func bar(v float64, scale float64) string {
	n := int(v / scale)
	if n > 60 {
		n = 60
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
