// Churn: the "adaptable" half of the paper's title, live — entities join
// and leave a running federation, one crashes and is expelled by
// heartbeat detection, queries migrate and keep producing, dissemination
// trees rewire and reorganize toward shorter edges, and the ledger pays
// each entity for exactly the time it served.
package main

import (
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"sspd"
)

func main() {
	net := sspd.NewSimNet(nil)
	defer net.Close()
	catalog := sspd.NewCatalog(100, 20)
	fed, err := sspd.NewFederation(net, catalog, sspd.Options{
		Strategy: sspd.Balanced, // geometry-blind: reorganization will have work
		Fanout:   2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer fed.Close()

	if err := fed.AddSource("quotes", sspd.Point{},
		sspd.StreamRate{TuplesPerSec: 1000, BytesPerTuple: 60}); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		pos := sspd.Point{X: float64((i*37)%90 + 5), Y: float64((i*61)%90 + 5)}
		if err := fed.AddEntity(fmt.Sprintf("e%02d", i), pos, 2, nil); err != nil {
			log.Fatal(err)
		}
	}
	if err := fed.Start(); err != nil {
		log.Fatal(err)
	}

	var results atomic.Int64
	for i := 0; i < 12; i++ {
		spec := sspd.QuerySpec{
			ID:     fmt.Sprintf("q%02d", i),
			Source: "quotes",
			Filters: []sspd.FilterSpec{
				{Field: "price", Lo: float64(i * 80), Hi: float64(i*80 + 200)},
			},
			Load: float64(1 + i%5),
		}
		if _, err := fed.SubmitQuery(spec, sspd.Point{X: float64(i * 8), Y: 20},
			func(sspd.Tuple) { results.Add(1) }); err != nil {
			log.Fatal(err)
		}
	}
	tick := sspd.NewTicker(3, 100, 1.3)
	publish := func(label string) {
		before := results.Load()
		if err := fed.Publish("quotes", tick.Batch(500)); err != nil {
			log.Fatal(err)
		}
		net.Quiesce(5 * time.Second)
		time.Sleep(50 * time.Millisecond)
		fmt.Printf("%-34s entities=%d results +%d\n",
			label, len(fed.EntityIDs()), results.Load()-before)
	}

	fmt.Println("phase 1: steady state")
	publish("  published 500 quotes")

	fmt.Println("\nphase 2: two entities join live")
	for _, e := range []struct {
		id string
		x  float64
	}{{"e90", 30}, {"e91", 60}} {
		if err := fed.JoinEntity(e.id, sspd.Point{X: e.x, Y: 50}, 2, nil); err != nil {
			log.Fatal(err)
		}
	}
	moved, err := fed.Rebalance(sspd.HybridRepartitioner{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  rebalance migrated %d queries to the joiners\n", moved)
	publish("  published 500 quotes")

	fmt.Println("\nphase 3: dissemination-tree reorganization")
	tree := fed.DisseminationTree("quotes")
	before := tree.TotalEdgeLength()
	total := 0
	for pass := 0; pass < 10; pass++ {
		n, err := fed.ReorganizeTrees()
		if err != nil {
			log.Fatal(err)
		}
		total += n
		if n == 0 {
			break
		}
	}
	fmt.Printf("  %d rewires: total edge length %.0f -> %.0f\n",
		total, before, tree.TotalEdgeLength())
	publish("  published 500 quotes")

	fmt.Println("\nphase 4: e01 leaves politely, e02 crashes")
	migrated, err := fed.LeaveEntity("e01")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  e01 left; %d queries migrated\n", migrated)
	replaced, err := fed.FailEntity("e02")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  e02 expelled; %d queries re-placed from their specs\n", replaced)
	publish("  published 500 quotes")

	fmt.Println("\nledger (pay per execution time):")
	for _, c := range fed.Ledger().Charges() {
		fmt.Printf("  %-5s %8v\n", c.Entity, c.Execution.Round(time.Millisecond))
	}
	fmt.Printf("\ntotal results delivered: %d; federation still serving %d queries on %d entities\n",
		results.Load(), fed.NumQueries(), len(fed.EntityIDs()))
}
