module sspd

go 1.24
