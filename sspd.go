package sspd

import (
	"time"

	"sspd/internal/coordinator"
	"sspd/internal/core"
	"sspd/internal/dissemination"
	"sspd/internal/engine"
	"sspd/internal/entity"
	"sspd/internal/latency"
	"sspd/internal/obslog"
	"sspd/internal/operator"
	"sspd/internal/profile"
	"sspd/internal/querygraph"
	"sspd/internal/simnet"
	"sspd/internal/sspdql"
	"sspd/internal/stream"
	"sspd/internal/workload"
)

// Data-model surface.
type (
	// Tuple is one data item on a stream.
	Tuple = stream.Tuple
	// Batch is a slice of tuples shipped together.
	Batch = stream.Batch
	// Value is a dynamically typed attribute value.
	Value = stream.Value
	// Schema is a stream's typed layout.
	Schema = stream.Schema
	// Field describes one schema attribute.
	Field = stream.Field
	// Catalog is the global schema registry all entities share.
	Catalog = stream.Catalog
	// Interest is a data-interest predicate over one stream.
	Interest = stream.Interest
	// WindowSpec describes a sliding window.
	WindowSpec = stream.WindowSpec
)

// Value constructors and schema helpers re-exported from the data model.
var (
	Int       = stream.Int
	Float     = stream.Float
	String    = stream.String
	NewTuple  = stream.NewTuple
	NewSchema = stream.NewSchema
)

// Window constructors.
var (
	CountWindow = stream.CountWindow
	TimeWindow  = stream.TimeWindow
)

// Query surface: the declarative specs entities exchange.
type (
	// QuerySpec declares one continuous query.
	QuerySpec = engine.QuerySpec
	// FilterSpec is one commutable predicate step.
	FilterSpec = engine.FilterSpec
	// AggSpec is an optional terminal windowed aggregate.
	AggSpec = engine.AggSpec
	// JoinSpec is an optional head window join.
	JoinSpec = engine.JoinSpec
	// AggFunc selects the aggregate function.
	AggFunc = operator.AggFunc
	// EngineFactory builds a processing engine for one processor.
	EngineFactory = entity.EngineFactory
	// Processor is the engine interface every entity implements.
	Processor = engine.Processor
)

// Aggregate functions.
const (
	AggCount = operator.AggCount
	AggSum   = operator.AggSum
	AggAvg   = operator.AggAvg
	AggMin   = operator.AggMin
	AggMax   = operator.AggMax
)

// Network surface.
type (
	// Point is a location in the synthetic coordinate space.
	Point = simnet.Point
	// NodeID names a transport endpoint.
	NodeID = simnet.NodeID
	// Transport moves messages between nodes and meters bytes.
	Transport = simnet.Transport
	// SimNet is the in-process simulated network.
	SimNet = simnet.SimNet
	// TCPNet is the real-socket transport.
	TCPNet = simnet.TCPNet
	// LatencyModel maps a link to a delivery delay.
	LatencyModel = simnet.LatencyModel
)

// Transport constructors.
var (
	NewSimNet       = simnet.NewSim
	NewTCPNet       = simnet.NewTCP
	ConstantLatency = simnet.ConstantLatency
	DistanceLatency = simnet.DistanceLatency
)

// Federation surface (the inter-entity layer).
type (
	// Federation is the running two-layer system.
	Federation = core.Federation
	// Options configures a federation.
	Options = core.Options
	// StreamRate is a stream's nominal byte rate.
	StreamRate = core.StreamRate
	// Ledger accounts entity execution time.
	Ledger = core.Ledger
	// MigrationRecord is one committed or rolled-back live migration.
	MigrationRecord = core.MigrationRecord
	// RecoveryRecord is one query's crash-recovery outcome.
	RecoveryRecord = core.RecoveryRecord
	// CheckpointInfo is the durable-checkpoint plane's status summary.
	CheckpointInfo = core.CheckpointInfo
	// Strategy selects the dissemination-tree shape.
	Strategy = dissemination.Strategy
)

// Dissemination strategies.
const (
	SourceDirect = dissemination.SourceDirect
	Balanced     = dissemination.Balanced
	Locality     = dissemination.Locality
)

// NewFederation creates an empty federation on the given transport.
func NewFederation(t Transport, c *Catalog, o Options) (*Federation, error) {
	return core.New(t, c, o)
}

// Repartitioning strategies for Federation.Rebalance.
type (
	// Repartitioner adapts a query allocation after workload drift.
	Repartitioner = querygraph.Repartitioner
	// ScratchRepartitioner rebuilds the allocation from scratch.
	ScratchRepartitioner = querygraph.ScratchRepartitioner
	// GreedyCutRepartitioner rebalances by load only.
	GreedyCutRepartitioner = querygraph.GreedyCutRepartitioner
	// HybridRepartitioner is the paper's proposed middle ground.
	HybridRepartitioner = querygraph.HybridRepartitioner
)

// Engine constructors: the bundled engine implementations.
var (
	// NewEngine builds the full asynchronous engine.
	NewEngine = engine.New
	// NewMiniEngine builds the synchronous reference engine.
	NewMiniEngine = engine.NewMini
	// NewShardEngine builds the shard-per-core vectorized engine
	// (nShards 0 picks GOMAXPROCS).
	NewShardEngine = engine.NewShard
)

// Shard-engine surface: the per-core vectorized engine and the optional
// drop-attribution capability engines with bounded queues implement.
type (
	// ShardEngine is the shard-per-core vectorized engine.
	ShardEngine = engine.ShardEngine
	// DropReporter exposes per-query drop counts from bounded queues.
	DropReporter = engine.DropReporter
)

// Workload generators.
type (
	// Ticker generates the stock-quote stream.
	Ticker = workload.Ticker
	// FlowGen generates the network-monitoring stream.
	FlowGen = workload.FlowGen
	// QueryGen generates query streams with controllable overlap.
	QueryGen = workload.QueryGen
)

// Generator constructors.
var (
	NewTicker   = workload.NewTicker
	NewFlowGen  = workload.NewFlowGen
	NewQueryGen = workload.NewQueryGen
)

// NewCatalog returns the global schema catalog of the bundled workloads
// (quotes, trades, flows) with the given symbol and host cardinalities.
func NewCatalog(symbols, hosts int) *Catalog {
	return workload.Catalog(symbols, hosts)
}

// NewLedger returns a standalone accounting ledger; clock may be nil.
func NewLedger(clock func() time.Time) *Ledger { return core.NewLedger(clock) }

// ParseQuery compiles sspdql query text ("FROM quotes WHERE price
// BETWEEN 10 AND 20 AGGREGATE avg(price) BY symbol WINDOW 60s") into a
// QuerySpec with the given ID.
func ParseQuery(id, src string) (QuerySpec, error) { return sspdql.Parse(id, src) }

// FormatQuery renders a spec back to sspdql text.
func FormatQuery(spec QuerySpec) string { return sspdql.Format(spec) }

// Scheduler-engine surface: the third bundled engine, a single-threaded
// shared scheduler with pluggable policies.
type (
	// SchedEngine is the shared-scheduler engine implementation.
	SchedEngine = engine.SchedEngine
	// SchedPolicy selects its scheduling policy.
	SchedPolicy = engine.Policy
)

// Scheduling policies for NewSchedEngine.
const (
	PolicyFIFO         = engine.PolicyFIFO
	PolicyRoundRobin   = engine.PolicyRoundRobin
	PolicyLongestQueue = engine.PolicyLongestQueue
)

// NewSchedEngine builds the scheduler engine.
var NewSchedEngine = engine.NewSched

// Query-graph partitioners, exposed for standalone optimization studies.
var (
	// PartitionQueries is the flat balanced k-way partitioner.
	PartitionQueries = querygraph.Partition
	// PartitionQueriesMultilevel is the METIS-style multilevel variant.
	PartitionQueriesMultilevel = querygraph.PartitionMultilevel
)

// Observability surface: the structured event journal and the cluster
// stats federation behind \cluster and GET /cluster/* (DESIGN.md §9).
type (
	// ObsEvent is one structured journal event.
	ObsEvent = obslog.Event
	// ObsJournal is the bounded flight recorder served at GET /events.
	ObsJournal = obslog.Journal
	// ObsLogger is the leveled structured logger that feeds the journal.
	ObsLogger = obslog.Logger
	// EntityHealth is one row of the cluster health view.
	EntityHealth = core.EntityHealth
	// ClusterEntityStats is one entity's row in the federated digest.
	ClusterEntityStats = coordinator.EntityStats
)

// EventKindMatches reports whether an event kind matches a filter:
// empty matches everything, otherwise exact or dot-boundary prefix
// ("detector" matches "detector.suspect" but not "detectors.x").
var EventKindMatches = obslog.KindMatches

// NewObsLogger builds a logger that journals every event and prints
// those at or above min as slog text lines to w. Pass it via
// Options.Logger to control a federation's event output.
var NewObsLogger = obslog.NewText

// Latency-attribution surface (DESIGN.md §11): span-derived stage
// histograms, the measured performance ratio, and SLO watchdogs,
// enabled on a federation with Federation.EnableLatencyAttribution
// after EnableTracing and queried via Federation.ClusterLatency,
// Federation.SLOStatus, and GET /cluster/latency.
type (
	// LatencyAttribution is a mergeable attribution snapshot: the
	// end-to-end delay distribution, per-stage histograms, and
	// per-query measured-PR rows.
	LatencyAttribution = latency.Attribution
	// LatencyBreakdown is one completed span decomposed into per-stage
	// wall-clock deltas that telescope to the end-to-end delay.
	LatencyBreakdown = latency.Breakdown
	// LatencyHistSnapshot is a fixed-boundary log-bucket histogram
	// snapshot (exact bucket-wise merging, quantiles within one bucket).
	LatencyHistSnapshot = latency.HistSnapshot
	// QueryLatency is one query's measured latency summary, including
	// its stage waterfall and measured performance ratio.
	QueryLatency = latency.QueryLatency
	// SLORule is one parsed declarative latency objective.
	SLORule = latency.Rule
	// SLOVerdict is one rule's state after a watchdog evaluation.
	SLOVerdict = latency.Verdict
)

// Latency stage names (the pipeline segments spans decompose into) and
// the default SLO rule set applied when EnableLatencyAttribution is
// called without rules.
var (
	LatencyStages   = latency.Stages
	DefaultSLORules = core.DefaultSLORules
)

// ParseSLORule parses one declarative rule: "p99_end_to_end < 250ms",
// "pr_max < 3", or "stage_share(network) < 60%".
var ParseSLORule = latency.ParseRule

// Engine-introspection surface (DESIGN.md §14): per-shard telemetry,
// the backpressure watchdog, and continuous profiling, enabled with
// Federation.EnableEngineIntrospection / Federation.EnableProfiling and
// queried via Federation.ClusterEngine, GET /cluster/engine, and
// GET /profiles.
type (
	// EngineStats is one engine's (or, merged, one entity's or the
	// cluster's) shard telemetry snapshot.
	EngineStats = engine.EngineStats
	// EngineShardStat is one shard's telemetry row: ring occupancy and
	// high-water, drops, kernel-vs-interpreted split, control latency.
	EngineShardStat = engine.ShardStat
	// EngineIntrospector is the optional engine capability of exposing a
	// telemetry snapshot.
	EngineIntrospector = engine.Introspector
	// TotalDropReporter is the optional engine capability of reporting
	// the engine-lifetime dropped-tuple total.
	TotalDropReporter = engine.TotalDropReporter
	// ClusterEngineView is the cluster engine view: every entity's shard
	// telemetry plus the backpressure watchdog's windowed readings.
	ClusterEngineView = core.ClusterEngineView
	// EntityEngine is one entity's row in the cluster engine view.
	EntityEngine = core.EntityEngine
	// ProfileCapture describes one stored pprof capture.
	ProfileCapture = profile.Capture
	// ProfileOptions configures a profile recorder.
	ProfileOptions = profile.Options
	// ProfileRecorder is the bounded on-disk pprof capture ring.
	ProfileRecorder = profile.Recorder
)

// DefaultEngineRules is the backpressure rule set applied when
// EnableEngineIntrospection is called without rules.
var DefaultEngineRules = core.DefaultEngineRules
