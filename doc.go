// Package sspd is a scalable and adaptable distributed stream processing
// system, reproducing the architecture of "Scalable and Adaptable
// Distributed Stream Processing" (Yongluan Zhou, ICDE 2006).
//
// The system has two layers:
//
//   - The inter-entity layer federates independent, loosely-coupled
//     business entities. Entities cooperate only through declarative
//     artifacts: data streams relayed down per-stream dissemination trees
//     with interest-based early filtering, and continuous queries
//     distributed as QuerySpecs through a hierarchical coordinator tree
//     and optimized by balanced query-graph partitioning that minimizes
//     duplicate dissemination (bytes/second of shared data interest).
//   - The intra-entity layer is a tightly-coupled cluster: each incoming
//     stream has a delegation processor, queries split into fragments
//     placed across processors to minimize the worst Performance Ratio
//     (delay over inherent processing time), and an Adaptation Module
//     re-orders commutable operators as selectivities drift.
//
// The root package is a facade over the internal packages; see README.md
// for the architecture map and EXPERIMENTS.md for the reproduced
// experiments.
//
// # Quick start
//
//	net := sspd.NewSimNet(nil)
//	catalog := sspd.NewCatalog(100, 20)
//	fed, _ := sspd.NewFederation(net, catalog, sspd.Options{})
//	fed.AddSource("quotes", sspd.Point{}, sspd.StreamRate{TuplesPerSec: 1000, BytesPerTuple: 60})
//	fed.AddEntity("acme", sspd.Point{X: 10}, 4, nil)
//	fed.Start()
//	fed.SubmitQuery(spec, sspd.Point{X: 12}, func(t sspd.Tuple) { fmt.Println(t) })
package sspd
