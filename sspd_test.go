package sspd_test

import (
	"sync"
	"testing"
	"time"

	"sspd"
)

// TestFacadeEndToEnd exercises the public API exactly as the README
// quickstart does.
func TestFacadeEndToEnd(t *testing.T) {
	net := sspd.NewSimNet(nil)
	defer net.Close()
	catalog := sspd.NewCatalog(100, 20)
	fed, err := sspd.NewFederation(net, catalog, sspd.Options{
		Strategy: sspd.Locality,
		Fanout:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fed.Close()
	if err := fed.AddSource("quotes", sspd.Point{},
		sspd.StreamRate{TuplesPerSec: 1000, BytesPerTuple: 60}); err != nil {
		t.Fatal(err)
	}
	mini := func(name string, c *sspd.Catalog) sspd.Processor {
		return sspd.NewMiniEngine(name, c)
	}
	for _, e := range []struct {
		id  string
		pos sspd.Point
	}{
		{"alpha", sspd.Point{X: 10}},
		{"beta", sspd.Point{X: 30}},
	} {
		if err := fed.AddEntity(e.id, e.pos, 2, mini); err != nil {
			t.Fatal(err)
		}
	}
	if err := fed.Start(); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	got := 0
	spec := sspd.QuerySpec{
		ID:     "watch",
		Source: "quotes",
		Filters: []sspd.FilterSpec{
			{Field: "price", Lo: 0, Hi: 1000, Cost: 1},
		},
	}
	entityID, err := fed.SubmitQuery(spec, sspd.Point{X: 12}, func(sspd.Tuple) {
		mu.Lock()
		got++
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if entityID != "alpha" && entityID != "beta" {
		t.Fatalf("unexpected entity %q", entityID)
	}
	if !net.Quiesce(2 * time.Second) {
		t.Fatal("quiesce")
	}
	tick := sspd.NewTicker(1, 100, 1.3)
	if err := fed.Publish("quotes", tick.Batch(25)); err != nil {
		t.Fatal(err)
	}
	if !net.Quiesce(2 * time.Second) {
		t.Fatal("quiesce")
	}
	mu.Lock()
	defer mu.Unlock()
	if got != 25 {
		t.Fatalf("results = %d, want 25", got)
	}
}

// TestFacadeValueAndSchemaHelpers exercises the re-exported data model.
func TestFacadeValueAndSchemaHelpers(t *testing.T) {
	sc, err := sspd.NewSchema("s",
		sspd.Field{Name: "k", Type: sspd.Int(0).Kind()},
	)
	if err != nil {
		t.Fatal(err)
	}
	tu := sspd.NewTuple("s", 1, time.Unix(0, 0), sspd.Int(7))
	if err := sc.Validate(tu); err != nil {
		t.Fatal(err)
	}
	if sspd.Float(1.5).AsFloat() != 1.5 || sspd.String("x").AsString() != "x" {
		t.Error("value constructors broken")
	}
	if sspd.CountWindow(3).Count != 3 {
		t.Error("CountWindow")
	}
	if sspd.TimeWindow(time.Second).Duration != time.Second {
		t.Error("TimeWindow")
	}
	if sspd.SourceDirect.String() != "source-direct" {
		t.Error("strategy re-export")
	}
}

// TestFacadeLedger exercises the re-exported accounting type.
func TestFacadeLedger(t *testing.T) {
	now := time.Unix(0, 0)
	l := sspd.NewLedger(func() time.Time { return now })
	if err := l.Start("q", "e"); err != nil {
		t.Fatal(err)
	}
	now = now.Add(time.Second)
	if l.Charge("e") != time.Second {
		t.Error("charge")
	}
}

// TestFacadeQueryLanguage exercises the sspdql facade round trip.
func TestFacadeQueryLanguage(t *testing.T) {
	spec, err := sspd.ParseQuery("q", "FROM quotes WHERE price BETWEEN 1 AND 2 TOP 2 OF price BY symbol WINDOW 10")
	if err != nil {
		t.Fatal(err)
	}
	if spec.TopK == nil || spec.TopK.K != 2 {
		t.Fatalf("spec = %+v", spec)
	}
	text := sspd.FormatQuery(spec)
	again, err := sspd.ParseQuery("q", text)
	if err != nil {
		t.Fatal(err)
	}
	if sspd.FormatQuery(again) != text {
		t.Fatalf("format not a fixpoint: %q", text)
	}
	if _, err := sspd.ParseQuery("q", "NOT A QUERY"); err == nil {
		t.Fatal("garbage parsed")
	}
}

// TestFacadeLatency exercises the latency-attribution re-exports.
func TestFacadeLatency(t *testing.T) {
	r, err := sspd.ParseSLORule("p95_end_to_end < 100ms")
	if err != nil {
		t.Fatal(err)
	}
	if r.Q != 0.95 || r.Bound != 0.1 {
		t.Fatalf("rule = %+v", r)
	}
	if len(sspd.LatencyStages) != 5 || len(sspd.DefaultSLORules) != 3 {
		t.Fatalf("stages=%v defaults=%v", sspd.LatencyStages, sspd.DefaultSLORules)
	}
	var att sspd.LatencyAttribution
	att.Merge(sspd.LatencyAttribution{})
	if att.E2E.Count != 0 {
		t.Fatal("empty merge")
	}
}
