// Benchmarks regenerating every table and figure of the reproduction —
// one benchmark per paper artifact (DESIGN.md §4). Run with
//
//	go test -bench=. -benchmem
//
// Each benchmark executes its full experiment per iteration, so ns/op is
// the end-to-end cost of regenerating that artifact. The tables
// themselves are printed by cmd/sspd-bench.
package sspd_test

import (
	"testing"
	"time"

	"sspd"
	"sspd/internal/experiments"
)

func benchTable(b *testing.B, run func() experiments.Table) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab := run()
		if len(tab.Rows) == 0 {
			b.Fatalf("%s produced no rows", tab.ID)
		}
	}
}

// BenchmarkFigure1TwoLayerEndToEnd regenerates Figure 1: the two-layer
// federation exercised end to end.
func BenchmarkFigure1TwoLayerEndToEnd(b *testing.B) {
	benchTable(b, experiments.Figure1TwoLayer)
}

// BenchmarkTable1CooperationModes regenerates Table 1: the same workload
// under each degree of cooperation.
func BenchmarkTable1CooperationModes(b *testing.B) {
	benchTable(b, experiments.Table1CooperationModes)
}

// BenchmarkFigure2QueryGraphPartitioning regenerates Figure 2: the
// 5-query graph and plans (a)/(b).
func BenchmarkFigure2QueryGraphPartitioning(b *testing.B) {
	benchTable(b, experiments.Figure2QueryGraph)
}

// BenchmarkFigure3StreamDelegation regenerates Figure 3: delegation vs a
// single receiving processor.
func BenchmarkFigure3StreamDelegation(b *testing.B) {
	benchTable(b, experiments.Figure3Delegation)
}

// BenchmarkDisseminationScalability regenerates E1.
func BenchmarkDisseminationScalability(b *testing.B) {
	benchTable(b, experiments.E1DisseminationScalability)
}

// BenchmarkEarlyFiltering regenerates E2.
func BenchmarkEarlyFiltering(b *testing.B) {
	benchTable(b, experiments.E2EarlyFiltering)
}

// BenchmarkCoordinatorTree regenerates E3.
func BenchmarkCoordinatorTree(b *testing.B) {
	benchTable(b, experiments.E3CoordinatorTree)
}

// BenchmarkLoadDistribution regenerates E4.
func BenchmarkLoadDistribution(b *testing.B) {
	benchTable(b, experiments.E4LoadDistribution)
}

// BenchmarkAdaptiveRepartitioning regenerates E5.
func BenchmarkAdaptiveRepartitioning(b *testing.B) {
	benchTable(b, experiments.E5AdaptiveRepartitioning)
}

// BenchmarkOperatorPlacement regenerates E6.
func BenchmarkOperatorPlacement(b *testing.B) {
	benchTable(b, experiments.E6OperatorPlacement)
}

// BenchmarkAdaptiveOrdering regenerates E7.
func BenchmarkAdaptiveOrdering(b *testing.B) {
	benchTable(b, experiments.E7AdaptiveOrdering)
}

// BenchmarkCouplingTradeoff regenerates E8.
func BenchmarkCouplingTradeoff(b *testing.B) {
	benchTable(b, experiments.E8CouplingTradeoff)
}

// BenchmarkFederationIngest measures the steady-state per-tuple cost of
// the full pipeline: source relay → dissemination tree → delegation →
// query fragments → result.
func BenchmarkFederationIngest(b *testing.B) {
	net := sspd.NewSimNet(nil)
	defer net.Close()
	catalog := sspd.NewCatalog(100, 20)
	fed, err := sspd.NewFederation(net, catalog, sspd.Options{Fanout: 3})
	if err != nil {
		b.Fatal(err)
	}
	defer fed.Close()
	if err := fed.AddSource("quotes", sspd.Point{}, sspd.StreamRate{TuplesPerSec: 1000, BytesPerTuple: 60}); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := fed.AddEntity(string(rune('a'+i)), sspd.Point{X: float64(10 * (i + 1))}, 2,
			func(name string, c *sspd.Catalog) sspd.Processor { return sspd.NewMiniEngine(name, c) }); err != nil {
			b.Fatal(err)
		}
	}
	if err := fed.Start(); err != nil {
		b.Fatal(err)
	}
	spec := sspd.QuerySpec{
		ID:     "bench",
		Source: "quotes",
		Filters: []sspd.FilterSpec{
			{Field: "price", Lo: 0, Hi: 500, Cost: 1},
		},
	}
	if _, err := fed.SubmitQuery(spec, sspd.Point{X: 20}, nil); err != nil {
		b.Fatal(err)
	}
	net.Quiesce(5 * time.Second)
	tick := sspd.NewTicker(1, 100, 1.3)
	batch := tick.Batch(100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fed.Publish("quotes", batch); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	net.Quiesce(30 * time.Second)
}

// BenchmarkEngineIngest measures the bare single-site engine: tuples per
// second through one filter query, no network.
func BenchmarkEngineIngest(b *testing.B) {
	catalog := sspd.NewCatalog(100, 20)
	eng := sspd.NewMiniEngine("bench", catalog)
	defer eng.Close()
	if err := eng.Register(sspd.QuerySpec{
		ID:     "q",
		Source: "quotes",
		Filters: []sspd.FilterSpec{
			{Field: "price", Lo: 0, Hi: 500, Cost: 1},
		},
	}, nil); err != nil {
		b.Fatal(err)
	}
	tick := sspd.NewTicker(1, 100, 1.3)
	tuples := tick.Batch(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Ingest(tuples[i%len(tuples)])
	}
}

// BenchmarkSchedulingPolicy regenerates E9 (extension: waiting time vs
// scheduling policy).
func BenchmarkSchedulingPolicy(b *testing.B) {
	benchTable(b, experiments.E9SchedulingPolicy)
}

// BenchmarkInterestAggregation regenerates E10 (extension: interest
// aggregation cap trade-off).
func BenchmarkInterestAggregation(b *testing.B) {
	benchTable(b, experiments.E10InterestAggregation)
}

// BenchmarkTreeReorganization regenerates E11 (extension: zero-loss
// dissemination-tree reorganization).
func BenchmarkTreeReorganization(b *testing.B) {
	benchTable(b, experiments.E11TreeReorganization)
}

// BenchmarkAdaptiveRouting regenerates E12 (per-tuple downstream choice
// around a loaded replica).
func BenchmarkAdaptiveRouting(b *testing.B) {
	benchTable(b, experiments.E12AdaptiveRouting)
}
