package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"sspd/internal/coordinator"
	"sspd/internal/core"
	"sspd/internal/engine"
	"sspd/internal/obslog"
	"sspd/internal/simnet"
	"sspd/internal/stream"
	"sspd/internal/workload"
)

// statsplaneReport is appended into BENCH_observability.json: the cost
// of the cluster stats plane (DESIGN.md §9). Digest merging and journal
// appends happen off the tuple path; the end-to-end on/off comparison
// bounds what the plane's background folding costs flowing tuples.
type statsplaneReport struct {
	// NsPerDigestMerge is one MergeRows of a full 32-entity digest into
	// an equally sized table — the per-push cost at an interior node.
	NsPerDigestMerge float64 `json:"ns_per_digest_merge"`
	// NsPerJournalAppend is one structured event append into the
	// bounded flight recorder.
	NsPerJournalAppend float64 `json:"ns_per_journal_append"`
	// NsPerTuplePlaneOff / On are end-to-end publish->result costs per
	// tuple with the stats plane disabled and enabled (50ms period).
	NsPerTuplePlaneOff float64 `json:"ns_per_tuple_plane_off"`
	NsPerTuplePlaneOn  float64 `json:"ns_per_tuple_plane_on"`
	// PlaneOverheadPct is the on/off delta; the acceptance bar is <= 1
	// plus the run's own measured noise floor.
	PlaneOverheadPct float64 `json:"plane_overhead_pct"`
	// PlaneNoisePct is the within-side spread of the rounds (median over
	// best, summed across the off and on sides, as a percentage): what
	// this machine's scheduler jitter alone does to the measurement. The
	// gate widens by it, so a quiet multicore box keeps the tight 1% bar
	// while a contended single-core container doesn't fail on noise it
	// cannot resolve.
	PlaneNoisePct float64 `json:"plane_noise_pct"`
}

// maxPlaneOverheadPct is the regression gate enforced by bench-statsplane.
const maxPlaneOverheadPct = 1.0

func runStatsplaneBench(path string) error {
	var rep statsplaneReport

	// Digest merge: a realistic 32-entity table refreshed by an equally
	// wide incoming digest, every row carrying sparklines, per-query
	// loads, and per-stream meters.
	const nRows = 32
	mkRows := func(seqBase uint64) map[string]coordinator.EntityStats {
		rows := make(map[string]coordinator.EntityStats, nRows)
		for i := 0; i < nRows; i++ {
			id := fmt.Sprintf("e%02d", i)
			spark := make([]float64, coordinator.SparkLen)
			for j := range spark {
				spark[j] = float64(j) / 32
			}
			rows[id] = coordinator.EntityStats{
				Entity: id, Seq: seqBase + uint64(i), UnixNano: int64(seqBase),
				Load: 5, Queries: 3, PRMax: 0.4, PRSpark: spark,
				QueryLoads: map[string]float64{"q1": 2, "q2": 1.5, "q3": 1.5},
				Streams: map[string]coordinator.StreamStats{
					"quotes": {Bytes: 1 << 20, Messages: 4096, BytesPerSec: 64e3},
				},
			}
		}
		return rows
	}
	dst := mkRows(1)
	src := mkRows(2)
	const mergeIters = 100_000
	start := time.Now()
	for i := 0; i < mergeIters; i++ {
		coordinator.MergeRows(dst, src)
	}
	rep.NsPerDigestMerge = float64(time.Since(start).Nanoseconds()) / float64(mergeIters)

	// Journal append at the default flight-recorder capacity, steady
	// state (ring full, evicting).
	j := obslog.NewJournal(obslog.DefaultJournalCapacity)
	fields := map[string]string{"stream": "quotes", "rewires": "2"}
	const appendIters = 2_000_000
	start = time.Now()
	for i := 0; i < appendIters; i++ {
		j.Append(obslog.Event{Level: "INFO", Kind: "tree.repair", Node: "e01",
			Msg: "bench", Fields: fields})
	}
	rep.NsPerJournalAppend = float64(time.Since(start).Nanoseconds()) / float64(appendIters)

	// End-to-end tuple path, plane off vs plane on. Same topology and
	// best-of-N discipline as the observability bench, but a longer run:
	// the drain-phase Quiesce polls in 1ms steps, so a stray digest push
	// during the drain costs a fixed few milliseconds that must be
	// amortized over enough tuples to not masquerade as per-tuple cost.
	const (
		nEntities = 4
		nTuples   = 100_000
		batchSize = 100
		rounds    = 5
	)
	runOnce := func(plane bool) (float64, error) {
		net := simnet.NewSim(nil)
		defer net.Close()
		catalog := workload.Catalog(100, 20)
		fed, err := core.New(net, catalog, core.Options{Fanout: 3,
			Logger: obslog.New(obslog.NewJournal(obslog.DefaultJournalCapacity), nil)})
		if err != nil {
			return 0, err
		}
		defer fed.Close()
		if err := fed.AddSource("quotes", simnet.Point{},
			core.StreamRate{TuplesPerSec: 1000, BytesPerTuple: 60}); err != nil {
			return 0, err
		}
		mini := func(name string, c *stream.Catalog) engine.Processor {
			return engine.NewMini(name, c)
		}
		for i := 0; i < nEntities; i++ {
			if err := fed.AddEntity(fmt.Sprintf("e%02d", i),
				simnet.Point{X: float64(10 + i*20)}, 2, mini); err != nil {
				return 0, err
			}
		}
		if err := fed.Start(); err != nil {
			return 0, err
		}
		for q := 0; q < nEntities; q++ {
			spec := engine.QuerySpec{
				ID: fmt.Sprintf("q%d", q), Source: "quotes",
				Filters: []engine.FilterSpec{{Field: "price", Lo: 0, Hi: 1000, Cost: 1}},
				Load:    5,
			}
			if _, err := fed.SubmitQuery(spec, simnet.Point{X: float64(15 + q*20)}, nil); err != nil {
				return 0, err
			}
		}
		net.Quiesce(2 * time.Second)
		if plane {
			if err := fed.EnableStatsPlane(50 * time.Millisecond); err != nil {
				return 0, err
			}
		}
		tick := workload.NewTicker(1, 100, 1.2)
		if err := fed.Publish("quotes", tick.Batch(batchSize)); err != nil {
			return 0, err
		}
		net.Quiesce(2 * time.Second)
		start := time.Now()
		for sent := 0; sent < nTuples; sent += batchSize {
			if err := fed.Publish("quotes", tick.Batch(batchSize)); err != nil {
				return 0, err
			}
		}
		net.Quiesce(10 * time.Second)
		return float64(time.Since(start).Nanoseconds()) / float64(nTuples), nil
	}
	// Rounds interleave off/on — alternating which side goes first and
	// levelling the heap between runs — so slow machine-level drift (CPU
	// frequency, container neighbors, accumulated garbage) hits both
	// sides equally instead of landing wholesale in the delta; each side
	// keeps its best round.
	var offs, ons []float64
	measure := func(plane bool) error {
		runtime.GC()
		ns, err := runOnce(plane)
		if err != nil {
			return err
		}
		if plane {
			ons = append(ons, ns)
		} else {
			offs = append(offs, ns)
		}
		return nil
	}
	for r := 0; r < rounds; r++ {
		first := r%2 == 1
		if err := measure(first); err != nil {
			return err
		}
		if err := measure(!first); err != nil {
			return err
		}
	}
	sort.Float64s(offs)
	sort.Float64s(ons)
	rep.NsPerTuplePlaneOff = offs[0]
	rep.NsPerTuplePlaneOn = ons[0]
	rep.PlaneNoisePct = 100 * ((offs[len(offs)/2] - offs[0]) + (ons[len(ons)/2] - ons[0])) / offs[0]
	rep.PlaneOverheadPct = 100 * (rep.NsPerTuplePlaneOn - rep.NsPerTuplePlaneOff) / rep.NsPerTuplePlaneOff

	if err := appendReport(path, rep); err != nil {
		return err
	}
	fmt.Printf("statsplane bench: merge=%.0fns append=%.0fns tuple off=%.0fns on=%.0fns (%+.2f%%, noise %.2f%%)\n",
		rep.NsPerDigestMerge, rep.NsPerJournalAppend,
		rep.NsPerTuplePlaneOff, rep.NsPerTuplePlaneOn, rep.PlaneOverheadPct, rep.PlaneNoisePct)
	fmt.Printf("  appended to %s\n", path)
	if bar := maxPlaneOverheadPct + rep.PlaneNoisePct; rep.PlaneOverheadPct > bar {
		return fmt.Errorf("stats plane adds %.2f%% to the tuple path (bar: %.1f%% + %.2f%% measured noise)",
			rep.PlaneOverheadPct, maxPlaneOverheadPct, rep.PlaneNoisePct)
	}
	return nil
}

// appendReport read-modify-writes rep's fields into the JSON object at
// path, preserving whatever the other observability benches already
// wrote.
func appendReport(path string, rep any) error {
	merged := map[string]any{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &merged); err != nil {
			return fmt.Errorf("%s exists but is not a JSON object: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	repJSON, err := json.Marshal(rep)
	if err != nil {
		return err
	}
	var fields map[string]any
	if err := json.Unmarshal(repJSON, &fields); err != nil {
		return err
	}
	for k, v := range fields {
		merged[k] = v
	}
	out, err := json.MarshalIndent(merged, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
