package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"sspd/internal/core"
	"sspd/internal/dissemination"
	"sspd/internal/engine"
	"sspd/internal/operator"
	"sspd/internal/simnet"
	"sspd/internal/stream"
	"sspd/internal/workload"
)

// recoveryBudgetMs bounds the whole crash-to-committed interval for the
// full 64-query workload: locate quorum-acked checkpoints, re-place,
// restore, replay the outage suffix, commit. A regression that fetches
// state sequentially per query, or replays from the beginning of the
// stream, blows this budget.
const recoveryBudgetMs = 2000

// recoveryReplayBudget bounds replay amplification: the rings are
// replayed at most once per surviving recovery target, so with two
// survivors the fetched-tuple count may not exceed twice the tuples
// published after the last checkpoint. A regression that replays the
// full history, or replays per query instead of per target, blows it.
const recoveryReplayBudget = 2.0

// recoveryReport is the schema of BENCH_recovery.json: exactly-once
// accounting for a 64-query workload hard-killed mid-stream and
// recovered from quorum-acked checkpoints.
type recoveryReport struct {
	Entities int   `json:"entities"`
	Queries  int   `json:"queries"`
	Window   int   `json:"window"`
	Seed     int64 `json:"seed"`

	PublishedPre    int `json:"published_pre_checkpoint"`
	PublishedOutage int `json:"published_outage"`
	PublishedPost   int `json:"published_post_recovery"`
	Published       int `json:"published"`
	Delivered       int `json:"delivered"`
	Duplicated      int `json:"duplicated"`
	Lost            int `json:"lost"`

	Restored         int     `json:"restored"`
	Stateless        int     `json:"stateless"`
	FailedRecoveries int     `json:"failed_recoveries"`
	RecoveryMs       float64 `json:"recovery_ms"`
	RecoveryBudgetMs float64 `json:"recovery_budget_ms"`
	ReplayFetched    int64   `json:"replay_fetched"`
	ReplayRatio      float64 `json:"replay_ratio"`
	ReplayBudget     float64 `json:"replay_budget"`

	CheckpointWrites int   `json:"checkpoint_writes"`
	CheckpointBytes  int64 `json:"checkpoint_bytes"`
	FailErrors       int64 `json:"entity_fail_errors"`

	Pass bool `json:"pass"`
}

// runRecoveryBench measures checkpoint-backed crash recovery end to
// end: 64 windowed aggregates on one entity of a three-entity
// federation, a durable checkpoint sweep, a hard kill (no goodbye, no
// handoff), an outage window with tuples still being published, then
// expulsion and recovery. It fails (non-zero exit) if any committed
// result is lost or duplicated, if any query comes back stateless, if
// the crash-to-committed interval exceeds the budget, or if replay
// amplification exceeds its budget.
func runRecoveryBench(path string) error {
	const (
		window   = 32
		nQueries = 64
		seed     = 17
		outage   = 100
	)
	net := simnet.NewSim(nil)
	defer net.Close()
	fed, err := core.New(net, workload.Catalog(100, 20), core.Options{
		Strategy:        dissemination.Balanced,
		Fanout:          2,
		ReliableControl: true,
		InterestRefresh: 25 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer fed.Close()
	if err := fed.AddSource("quotes", simnet.Point{},
		core.StreamRate{TuplesPerSec: 1000, BytesPerTuple: 60}); err != nil {
		return err
	}
	entities := []string{"e00", "e01", "e02"}
	for i, id := range entities {
		if err := fed.AddEntity(id, simnet.Point{X: float64(10 + i*10)}, 4,
			func(name string, c *stream.Catalog) engine.Processor {
				return engine.NewMini(name, c)
			}); err != nil {
			return err
		}
	}
	if err := fed.Start(); err != nil {
		return err
	}

	// The full query load lands on the victim: recovery must bring all
	// 64 back at once.
	var mu sync.Mutex
	counts := make(map[string]map[uint64]int, nQueries)
	for i := 0; i < nQueries; i++ {
		id := fmt.Sprintf("q%02d", i)
		counts[id] = map[uint64]int{}
		c := counts[id]
		spec := engine.QuerySpec{
			ID:     id,
			Source: "quotes",
			Agg: &engine.AggSpec{Fn: operator.AggCount, ValueField: "price",
				Window: stream.CountWindow(window)},
			Load: 5,
		}
		if err := fed.SubmitQueryTo(spec, "e01", func(t stream.Tuple) {
			mu.Lock()
			c[t.Seq]++
			mu.Unlock()
		}); err != nil {
			return err
		}
	}
	if err := fed.EnableCheckpoints(0, 2); err != nil {
		return err
	}
	fed.Settle(2 * time.Second)

	tick := workload.NewTicker(seed, 100, 1.2)
	var published stream.Batch
	publish := func(k int) error {
		b := tick.Batch(k)
		published = append(published, b...)
		return fed.Publish("quotes", b)
	}

	rep := recoveryReport{
		Entities:         len(entities),
		Queries:          nQueries,
		Window:           window,
		Seed:             seed,
		RecoveryBudgetMs: recoveryBudgetMs,
		ReplayBudget:     recoveryReplayBudget,
	}

	// Warm every window past one full turn, then take a durable cut.
	rep.PublishedPre = 200
	if err := publish(rep.PublishedPre); err != nil {
		return err
	}
	fed.Settle(2 * time.Second)
	fed.CheckpointTick()
	deadline := time.Now().Add(5 * time.Second)
	for fed.Checkpoints().QuorumAcked < nQueries && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	fed.Settle(2 * time.Second)
	if acked := fed.Checkpoints().QuorumAcked; acked < nQueries {
		return fmt.Errorf("recovery bench: only %d/%d checkpoints quorum-acked", acked, nQueries)
	}

	// Hard crash, then keep publishing into the outage: these tuples
	// reach no query until the rings replay them.
	if err := fed.KillEntity("e01"); err != nil {
		return err
	}
	rep.PublishedOutage = outage
	if err := publish(outage); err != nil {
		return err
	}

	crash := time.Now()
	moved, err := fed.FailEntity("e01")
	if err != nil {
		return fmt.Errorf("recovery bench: expel: %w", err)
	}
	fed.Settle(2 * time.Second)
	rep.RecoveryMs = float64(time.Since(crash).Microseconds()) / 1000
	if moved != nQueries {
		return fmt.Errorf("recovery bench: recovered %d/%d queries", moved, nQueries)
	}

	// Post-recovery traffic flows through the repaired tree.
	rep.PublishedPost = 100
	if err := publish(rep.PublishedPost); err != nil {
		return err
	}
	fed.Settle(2 * time.Second)

	rep.Published = len(published)
	mu.Lock()
	for _, c := range counts {
		lost, dup, delivered := 0, 0, 0
		for _, t := range published {
			switch c[t.Seq] {
			case 0:
				lost++
			case 1:
				delivered++
			default:
				delivered++
				dup += c[t.Seq] - 1
			}
		}
		rep.Lost += lost
		rep.Duplicated += dup
		rep.Delivered += delivered
	}
	mu.Unlock()
	// Delivered/Lost/Duplicated are summed across all queries; Published
	// stays per-query so the headline reads "tuples × queries".
	rep.Published *= nQueries

	for _, r := range fed.Recoveries() {
		switch r.Outcome {
		case "restored":
			rep.Restored++
		case "stateless":
			rep.Stateless++
		default:
			rep.FailedRecoveries++
		}
	}
	rep.ReplayFetched = fed.RecoveryReplayFetched()
	rep.ReplayRatio = float64(rep.ReplayFetched) / float64(rep.PublishedOutage)
	ck := fed.Checkpoints()
	rep.CheckpointWrites = int(ck.Writes)
	rep.CheckpointBytes = ck.WireBytes
	rep.FailErrors = fed.EntityFailErrors()

	rep.Pass = rep.Lost == 0 && rep.Duplicated == 0 &&
		rep.Restored == nQueries && rep.Stateless == 0 && rep.FailedRecoveries == 0 &&
		rep.RecoveryMs < recoveryBudgetMs &&
		rep.ReplayRatio <= recoveryReplayBudget &&
		rep.FailErrors == 0

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("recovery bench: %d queries restored in %.1fms, %d/%d delivered "+
		"(%d lost, %d dup), replay %.2fx outage -> %s\n",
		rep.Restored, rep.RecoveryMs, rep.Delivered, rep.Published,
		rep.Lost, rep.Duplicated, rep.ReplayRatio, path)
	if !rep.Pass {
		return fmt.Errorf("recovery bench FAILED: lost=%d dup=%d restored=%d/%d "+
			"stateless=%d failed=%d recovery=%.1fms (budget %.0fms) replay=%.2fx (budget %.1fx) fail_errors=%d",
			rep.Lost, rep.Duplicated, rep.Restored, nQueries, rep.Stateless,
			rep.FailedRecoveries, rep.RecoveryMs, float64(recoveryBudgetMs),
			rep.ReplayRatio, recoveryReplayBudget, rep.FailErrors)
	}
	return nil
}
