package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"sspd/internal/engine"
	"sspd/internal/operator"
	"sspd/internal/stream"
)

// engineBenchReport is the schema of BENCH_engine.json: the shard-per-
// core vectorized engine against the asynchronous baseline on an
// identical 16-query quote workload. Per-tuple cost is busy time from
// the engines' own processing histograms (work actually spent inside
// query execution, summed across queries), so the drain barriers that
// keep the feed lossless don't pollute the comparison; tuples/sec is
// wall clock over the same lossless feed and therefore includes them.
type engineBenchReport struct {
	Queries   int `json:"queries"`
	BatchSize int `json:"batch_size"`
	Tuples    int `json:"tuples"`
	Procs     int `json:"procs"`
	Shards    int `json:"shards"`

	EngineNsPerTuple float64 `json:"engine_ns_per_tuple"`
	ShardNsPerTuple  float64 `json:"shard_ns_per_tuple"`
	BusySpeedup      float64 `json:"busy_speedup"`

	EngineTuplesPerSec float64 `json:"engine_tuples_per_sec"`
	ShardTuplesPerSec  float64 `json:"shard_tuples_per_sec"`
	// Speedup is the gated number: shard over baseline wall-clock
	// throughput through the full ingest-to-result path.
	Speedup float64 `json:"speedup"`

	// Scaling is the shard count sweep 1..GOMAXPROCS with the query set
	// fixed, single entity.
	Scaling []scalePoint `json:"scaling"`
}

type scalePoint struct {
	Shards       int     `json:"shards"`
	TuplesPerSec float64 `json:"tuples_per_sec"`
}

func engineBenchCatalog() *stream.Catalog {
	cat := stream.NewCatalog()
	if err := cat.Register(stream.MustSchema("quotes",
		stream.Field{Name: "symbol", Type: stream.KindString, Card: 64},
		stream.Field{Name: "price", Type: stream.KindFloat, Lo: 0, Hi: 100},
		stream.Field{Name: "size", Type: stream.KindInt, Lo: 0, Hi: 1000},
	)); err != nil {
		panic(err)
	}
	return cat
}

var engineBenchSymbols = []string{
	"ibm", "msft", "goog", "amzn", "aapl", "orcl", "nvda", "amd",
	"intc", "csco", "qcom", "txn", "mu", "avgo", "adbe", "crm",
}

// engineBenchBatches generates the deterministic quote workload as
// ready-made batches (xorshift sequence, fixed timestamps).
func engineBenchBatches(nBatches, batchSize int) []stream.Batch {
	base := time.Unix(1754000000, 0).UTC()
	rng := uint64(0x9E3779B97F4A7C15)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	out := make([]stream.Batch, nBatches)
	seq := uint64(0)
	for i := range out {
		b := make(stream.Batch, 0, batchSize)
		for j := 0; j < batchSize; j++ {
			b = append(b, stream.NewTuple("quotes", seq,
				base.Add(time.Duration(seq)*time.Millisecond),
				stream.String(engineBenchSymbols[next()%uint64(len(engineBenchSymbols))]),
				stream.Float(float64(next()%10000)/100),
				stream.Int(int64(next()%1000))))
			seq++
		}
		out[i] = b
	}
	return out
}

// engineBenchSpecs builds the fixed 16-query set: twelve vectorizable
// filter chains at staggered selectivities plus four windowed
// aggregates, all over quotes.
func engineBenchSpecs() []engine.QuerySpec {
	specs := make([]engine.QuerySpec, 0, 16)
	for i := 0; i < 12; i++ {
		lo := float64(i * 6)
		specs = append(specs, engine.QuerySpec{
			ID:     fmt.Sprintf("b-filter-%02d", i),
			Source: "quotes",
			Filters: []engine.FilterSpec{
				{Field: "price", Lo: lo, Hi: lo + 25},
				{KeyField: "symbol", Keys: []string{
					engineBenchSymbols[i], engineBenchSymbols[(i+5)%len(engineBenchSymbols)]}},
			},
		})
	}
	for i := 0; i < 4; i++ {
		lo := float64(i * 20)
		specs = append(specs, engine.QuerySpec{
			ID:     fmt.Sprintf("b-agg-%02d", i),
			Source: "quotes",
			Filters: []engine.FilterSpec{
				{Field: "price", Lo: lo, Hi: lo + 40},
				{KeyField: "symbol", Keys: []string{
					engineBenchSymbols[i*3], engineBenchSymbols[i*3+1], engineBenchSymbols[i*3+2]}},
			},
			Agg: &engine.AggSpec{Fn: operator.AggSum, ValueField: "price",
				GroupField: "symbol", Window: stream.CountWindow(64)},
		})
	}
	return specs
}

type benchEngine interface {
	engine.Processor
	engine.BatchIngester
	engine.MetricsReporter
	engine.DropReporter
	Drain(time.Duration) bool
}

// engineBenchRun feeds the batches through eng in waves of waveBatches
// with a drain barrier between waves (so no bounded queue ever
// overflows), and returns (busy seconds summed across queries, wall
// seconds, results). Any drop invalidates the run.
func engineBenchRun(eng benchEngine, specs []engine.QuerySpec, batches []stream.Batch, waveBatches int) (busy, wall float64, results int64, err error) {
	for _, spec := range specs {
		if rerr := eng.Register(spec, nil); rerr != nil {
			return 0, 0, 0, fmt.Errorf("engine bench: register %s on %s: %w", spec.ID, eng.EngineName(), rerr)
		}
	}
	start := time.Now()
	for i := 0; i < len(batches); i += waveBatches {
		end := i + waveBatches
		if end > len(batches) {
			end = len(batches)
		}
		for _, b := range batches[i:end] {
			eng.IngestBatch(b)
		}
		if !eng.Drain(10 * time.Second) {
			return 0, 0, 0, fmt.Errorf("engine bench: %s drain timed out", eng.EngineName())
		}
	}
	wall = time.Since(start).Seconds()
	for _, m := range eng.AllMetrics() {
		busy += m.Processing.Sum
		results += m.Results
	}
	for _, spec := range specs {
		if n := eng.Dropped(spec.ID); n != 0 {
			return 0, 0, 0, fmt.Errorf("engine bench: %s dropped %d tuples on %s; the paced feed must be lossless",
				eng.EngineName(), n, spec.ID)
		}
	}
	if results == 0 {
		return 0, 0, 0, fmt.Errorf("engine bench: %s produced no results; workload too weak", eng.EngineName())
	}
	return busy, wall, results, nil
}

func runEngineBench(path string) error {
	const (
		batchSize = 256
		nBatches  = 768 // 196608 tuples
		// Baseline waves stay under the per-query queueDepth (1024
		// tuples); shard waves can be larger since ring slots carry
		// whole batches.
		baselineWave = 3
		shardWave    = 32
	)
	procs := runtime.GOMAXPROCS(0)
	cat := engineBenchCatalog()
	specs := engineBenchSpecs()
	batches := engineBenchBatches(nBatches, batchSize)
	tuples := nBatches * batchSize

	rep := engineBenchReport{
		Queries:   len(specs),
		BatchSize: batchSize,
		Tuples:    tuples,
		Procs:     procs,
		Shards:    procs,
	}

	base := engine.New("bench-base", cat)
	baseBusy, baseWall, baseResults, err := engineBenchRun(base, specs, batches, baselineWave)
	base.Close()
	if err != nil {
		return err
	}

	shard := engine.NewShard("bench-shard", cat, 0)
	shardBusy, shardWall, shardResults, err := engineBenchRun(shard, specs, batches, shardWave)
	shard.Close()
	if err != nil {
		return err
	}
	if baseResults != shardResults {
		return fmt.Errorf("engine bench: result mismatch: baseline %d, shard %d (engines must agree before being compared)",
			baseResults, shardResults)
	}

	rep.EngineNsPerTuple = baseBusy * 1e9 / float64(tuples)
	rep.ShardNsPerTuple = shardBusy * 1e9 / float64(tuples)
	rep.BusySpeedup = rep.EngineNsPerTuple / rep.ShardNsPerTuple
	rep.EngineTuplesPerSec = float64(tuples) / baseWall
	rep.ShardTuplesPerSec = float64(tuples) / shardWall
	rep.Speedup = rep.ShardTuplesPerSec / rep.EngineTuplesPerSec

	// Shard scaling sweep: 1, 2, 4, ... plus GOMAXPROCS itself.
	counts := []int{}
	for n := 1; n < procs; n *= 2 {
		counts = append(counts, n)
	}
	counts = append(counts, procs)
	for _, n := range counts {
		eng := engine.NewShard(fmt.Sprintf("bench-shard-%d", n), cat, n)
		_, w, _, err := engineBenchRun(eng, specs, batches, shardWave)
		eng.Close()
		if err != nil {
			return err
		}
		rep.Scaling = append(rep.Scaling, scalePoint{Shards: n, TuplesPerSec: float64(tuples) / w})
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("engine bench: %d queries, %d tuples: %.0f -> %.1f ns/tuple busy (%.1fx), %.2fM -> %.2fM tuples/s wall (%.1fx)\n",
		rep.Queries, rep.Tuples, rep.EngineNsPerTuple, rep.ShardNsPerTuple, rep.BusySpeedup,
		rep.EngineTuplesPerSec/1e6, rep.ShardTuplesPerSec/1e6, rep.Speedup)
	for _, p := range rep.Scaling {
		fmt.Printf("  shards=%-2d %8.2fM tuples/s\n", p.Shards, p.TuplesPerSec/1e6)
	}
	if rep.Speedup < 5 {
		return fmt.Errorf("engine bench: speedup %.2fx is below the 5x acceptance bar", rep.Speedup)
	}
	return nil
}
