package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"sspd/internal/core"
	"sspd/internal/dissemination"
	"sspd/internal/engine"
	"sspd/internal/simnet"
	"sspd/internal/stream"
	"sspd/internal/trace"
	"sspd/internal/workload"
)

// observabilityReport is the schema of BENCH_observability.json: the
// measured cost of the observability layer on the tuple hot path,
// with tracing disabled (the production default), sampling 1 in 1024,
// and tracing every tuple.
type observabilityReport struct {
	Tuples   int `json:"tuples"`
	Entities int `json:"entities"`
	Queries  int `json:"queries"`

	// NsPerTupleOff is the end-to-end publish->result cost per tuple
	// with no tracer installed.
	NsPerTupleOff float64 `json:"ns_per_tuple_off"`
	// NsPerTupleSampled / NsPerTupleTraced repeat the run with 1-in-1024
	// sampling and with every tuple traced.
	NsPerTupleSampled float64 `json:"ns_per_tuple_sampled"`
	NsPerTupleTraced  float64 `json:"ns_per_tuple_traced"`
	// Overhead percentages are relative to the off run.
	SampledOverheadPct float64 `json:"sampled_overhead_pct"`
	TracedOverheadPct  float64 `json:"traced_overhead_pct"`

	// NsPerRecordDisabled is the microbenchmarked cost of one
	// trace.Record call on an untraced tuple — the only per-hop cost the
	// instrumentation adds when sampling is off.
	NsPerRecordDisabled float64 `json:"ns_per_record_disabled"`
	// DisabledOverheadPct bounds the disabled-tracing overhead on the
	// hot path: per-hop record cost times instrumented hops per tuple,
	// relative to the per-tuple cost. The acceptance bar is <= 5.
	DisabledOverheadPct float64 `json:"disabled_overhead_pct"`

	// NsPerScrape is one full /metrics collection+render, which runs
	// only when a scraper asks — never on the tuple path.
	NsPerScrape float64 `json:"ns_per_scrape"`
}

// instrumentedHopsPerTuple counts the trace.Record call sites a tuple
// crosses on the benchmark topology's longest path (relay chain + entity
// + fragment + result).
const instrumentedHopsPerTuple = 8

func runObservabilityBench(path string) error {
	const (
		nEntities = 4
		nTuples   = 20000
		batchSize = 100
	)
	setup := func() (*core.Federation, *simnet.SimNet, error) {
		net := simnet.NewSim(nil)
		catalog := workload.Catalog(100, 20)
		fed, err := core.New(net, catalog, core.Options{Strategy: dissemination.Locality, Fanout: 3})
		if err != nil {
			net.Close()
			return nil, nil, err
		}
		if err := fed.AddSource("quotes", simnet.Point{},
			core.StreamRate{TuplesPerSec: 1000, BytesPerTuple: 60}); err != nil {
			fed.Close()
			net.Close()
			return nil, nil, err
		}
		mini := func(name string, c *stream.Catalog) engine.Processor {
			return engine.NewMini(name, c)
		}
		for i := 0; i < nEntities; i++ {
			if err := fed.AddEntity(fmt.Sprintf("e%02d", i),
				simnet.Point{X: float64(10 + i*20)}, 2, mini); err != nil {
				fed.Close()
				net.Close()
				return nil, nil, err
			}
		}
		if err := fed.Start(); err != nil {
			fed.Close()
			net.Close()
			return nil, nil, err
		}
		for q := 0; q < nEntities; q++ {
			spec := engine.QuerySpec{
				ID:     fmt.Sprintf("q%d", q),
				Source: "quotes",
				Filters: []engine.FilterSpec{
					{Field: "price", Lo: 0, Hi: 1000, Cost: 1},
				},
				Load: 5,
			}
			if _, err := fed.SubmitQuery(spec, simnet.Point{X: float64(15 + q*20)}, nil); err != nil {
				fed.Close()
				net.Close()
				return nil, nil, err
			}
		}
		net.Quiesce(2 * time.Second)
		return fed, net, nil
	}

	runOnce := func(every int) (float64, error) {
		fed, net, err := setup()
		if err != nil {
			return 0, err
		}
		defer net.Close()
		defer fed.Close()
		if every > 0 {
			if _, err := fed.EnableTracing(every, 4096); err != nil {
				return 0, err
			}
			defer trace.SetActive(nil)
		}
		tick := workload.NewTicker(1, 100, 1.2)
		// Warmup.
		if err := fed.Publish("quotes", tick.Batch(batchSize)); err != nil {
			return 0, err
		}
		net.Quiesce(2 * time.Second)
		start := time.Now()
		for sent := 0; sent < nTuples; sent += batchSize {
			if err := fed.Publish("quotes", tick.Batch(batchSize)); err != nil {
				return 0, err
			}
		}
		net.Quiesce(10 * time.Second)
		return float64(time.Since(start).Nanoseconds()) / float64(nTuples), nil
	}

	// Each configuration runs three times on a fresh federation and
	// keeps the fastest — SimNet scheduling noise dominates single runs.
	run := func(every int) (float64, error) {
		best := 0.0
		for round := 0; round < 3; round++ {
			ns, err := runOnce(every)
			if err != nil {
				return 0, err
			}
			if best == 0 || ns < best {
				best = ns
			}
		}
		return best, nil
	}

	rep := observabilityReport{Tuples: nTuples, Entities: nEntities, Queries: nEntities}
	var err error
	if rep.NsPerTupleOff, err = run(0); err != nil {
		return err
	}
	if rep.NsPerTupleSampled, err = run(1024); err != nil {
		return err
	}
	if rep.NsPerTupleTraced, err = run(1); err != nil {
		return err
	}
	rep.SampledOverheadPct = 100 * (rep.NsPerTupleSampled - rep.NsPerTupleOff) / rep.NsPerTupleOff
	rep.TracedOverheadPct = 100 * (rep.NsPerTupleTraced - rep.NsPerTupleOff) / rep.NsPerTupleOff

	// Microbench the disabled record path: id == 0 returns before any
	// shared-state access, so this is the entire per-hop cost with
	// sampling off.
	const recordIters = 50_000_000
	trace.SetActive(nil)
	start := time.Now()
	for i := 0; i < recordIters; i++ {
		trace.Record(0, trace.StageRelay, "bench")
	}
	rep.NsPerRecordDisabled = float64(time.Since(start).Nanoseconds()) / float64(recordIters)
	rep.DisabledOverheadPct = 100 * rep.NsPerRecordDisabled * instrumentedHopsPerTuple / rep.NsPerTupleOff

	// Scrape cost: collector + render, off the hot path by construction.
	fed, net, err := setup()
	if err != nil {
		return err
	}
	defer net.Close()
	defer fed.Close()
	tick := workload.NewTicker(1, 100, 1.2)
	if err := fed.Publish("quotes", tick.Batch(batchSize)); err != nil {
		return err
	}
	net.Quiesce(2 * time.Second)
	const scrapeIters = 200
	start = time.Now()
	for i := 0; i < scrapeIters; i++ {
		if err := fed.MetricsRegistry().WritePrometheus(discard{}); err != nil {
			return err
		}
	}
	rep.NsPerScrape = float64(time.Since(start).Nanoseconds()) / float64(scrapeIters)

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("observability bench: off=%.0fns/tuple sampled=%.0fns (%+.1f%%) traced=%.0fns (%+.1f%%)\n",
		rep.NsPerTupleOff, rep.NsPerTupleSampled, rep.SampledOverheadPct,
		rep.NsPerTupleTraced, rep.TracedOverheadPct)
	fmt.Printf("  disabled record: %.2fns/hop -> %.3f%% of the tuple path; scrape: %.0fus\n",
		rep.NsPerRecordDisabled, rep.DisabledOverheadPct, rep.NsPerScrape/1000)
	fmt.Printf("  wrote %s\n", path)
	return nil
}

// discard is io.Discard without importing io for one use.
type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
