package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"sspd/internal/dissemination"
	"sspd/internal/simnet"
	"sspd/internal/stream"
)

// tuplepathReport is the schema of BENCH_tuplepath.json: microbenchmarks
// of the three hot-path layers (codec, interest matching, relay fan-out),
// each comparing the interpreted/fresh-allocation baseline against the
// compiled/pooled implementation.
type tuplepathReport struct {
	BatchSize int `json:"batch_size"`
	Children  int `json:"children"`

	// Codec: ns/tuple to encode a batch into a fresh slice vs. a pooled
	// reused buffer, and to decode with fresh allocations vs. the pooled
	// DecodeBuffer arena.
	EncodeFreshNsPerTuple  float64 `json:"encode_fresh_ns_per_tuple"`
	EncodePooledNsPerTuple float64 `json:"encode_pooled_ns_per_tuple"`
	DecodeFreshNsPerTuple  float64 `json:"decode_fresh_ns_per_tuple"`
	DecodePooledNsPerTuple float64 `json:"decode_pooled_ns_per_tuple"`

	// Matching: ns per Matches call, interpreted (field names resolved
	// through the schema on every tuple) vs. compiled (indices resolved
	// once at registration).
	MatchInterpretedNs float64 `json:"match_interpreted_ns"`
	MatchCompiledNs    float64 `json:"match_compiled_ns"`
	MatchSpeedup       float64 `json:"match_speedup"`
	MatchAllocsPerOp   float64 `json:"match_allocs_per_op"`

	// Relay fan-out: ns/tuple through one relay hop (decode + per-child
	// match + encode + send) with mixed child registrations (half
	// match-all, half selective). The interpreted baseline replicates the
	// pre-optimization algorithm: fresh DecodeBatch, per-tuple
	// InterestSet.Matches through the schema, fresh AppendBatch per
	// child. The compiled path drives Relay.HandleTuples.
	RelayInterpretedNsPerTuple float64 `json:"relay_interpreted_ns_per_tuple"`
	RelayCompiledNsPerTuple    float64 `json:"relay_compiled_ns_per_tuple"`
	RelaySpeedup               float64 `json:"relay_speedup"`

	// Steady-state allocations per tuple through the relay hop. The
	// acceptance bar is ~0 for the compiled path (AllocsPerRun-enforced
	// by tests; reported here for the record).
	RelayInterpretedAllocsPerTuple float64 `json:"relay_interpreted_allocs_per_tuple"`
	RelayCompiledAllocsPerTuple    float64 `json:"relay_compiled_allocs_per_tuple"`
}

// benchNullTransport routes interest registrations between locally
// registered relays synchronously and drops everything else, so the
// fan-out bench measures exactly one relay's cost with zero send cost —
// identical for both sides of the comparison.
type benchNullTransport struct {
	handlers map[simnet.NodeID]simnet.Handler
	traffic  *simnet.Traffic
}

func newBenchNullTransport() *benchNullTransport {
	return &benchNullTransport{
		handlers: make(map[simnet.NodeID]simnet.Handler),
		traffic:  simnet.NewTraffic(),
	}
}

func (b *benchNullTransport) Register(id simnet.NodeID, h simnet.Handler) error {
	b.handlers[id] = h
	return nil
}
func (b *benchNullTransport) Deregister(id simnet.NodeID) error { delete(b.handlers, id); return nil }
func (b *benchNullTransport) Traffic() *simnet.Traffic          { return b.traffic }
func (b *benchNullTransport) Close() error                      { return nil }

func (b *benchNullTransport) Send(from, to simnet.NodeID, kind string, payload []byte) error {
	if kind != dissemination.KindInterest {
		return nil // tuple traffic is dropped: the bench measures the sender
	}
	h, ok := b.handlers[to]
	if !ok {
		return nil
	}
	cp := make([]byte, len(payload))
	copy(cp, payload)
	h(simnet.Message{From: from, To: to, Kind: kind, Payload: cp})
	return nil
}

func tuplepathSchema() *stream.Schema {
	return stream.MustSchema("quotes",
		stream.Field{Name: "symbol", Type: stream.KindString, Card: 100},
		stream.Field{Name: "price", Type: stream.KindFloat, Lo: 0, Hi: 1000},
	)
}

func tuplepathBatch(n int) stream.Batch {
	b := make(stream.Batch, 0, n)
	for i := 0; i < n; i++ {
		sym := "ibm"
		if i%2 == 1 {
			sym = "aapl"
		}
		b = append(b, stream.NewTuple("quotes", uint64(i), time.Unix(int64(i), 0).UTC(),
			stream.String(sym), stream.Float(float64(i%100))))
	}
	return b
}

// allocsPerRun reimplements testing.AllocsPerRun (the testing package's
// benchmark hooks are unavailable outside tests): mallocs across runs
// divided by runs, after one discarded warmup call, on one proc so
// unrelated goroutines do not pollute the global malloc counter.
func allocsPerRun(runs int, f func()) float64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	f() // warmup
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		f()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(runs)
}

func runTuplepathBench(path string) error {
	const (
		batchSize = 64
		nChildren = 4
		iters     = 2000
	)
	sc := tuplepathSchema()
	batch := tuplepathBatch(batchSize)
	wire := stream.AppendBatch(nil, batch)
	rep := tuplepathReport{BatchSize: batchSize, Children: nChildren}

	// --- Codec layer ---
	perOp := func(n int, f func()) float64 {
		f() // warmup
		start := time.Now()
		for i := 0; i < n; i++ {
			f()
		}
		return float64(time.Since(start).Nanoseconds()) / float64(n)
	}
	rep.EncodeFreshNsPerTuple = perOp(iters, func() {
		_ = stream.AppendBatch(nil, batch)
	}) / batchSize
	encBuf := stream.GetEncodeBuffer()
	rep.EncodePooledNsPerTuple = perOp(iters, func() {
		*encBuf = stream.AppendBatch((*encBuf)[:0], batch)
	}) / batchSize
	stream.PutEncodeBuffer(encBuf)
	rep.DecodeFreshNsPerTuple = perOp(iters, func() {
		if _, _, err := stream.DecodeBatch(wire); err != nil {
			panic(err)
		}
	}) / batchSize
	decBuf := stream.GetDecodeBuffer()
	rep.DecodePooledNsPerTuple = perOp(iters, func() {
		if _, _, err := decBuf.Decode(wire); err != nil {
			panic(err)
		}
	}) / batchSize
	stream.PutDecodeBuffer(decBuf)

	// --- Matching layer ---
	selective := stream.NewInterestSet("quotes")
	selective.Add(stream.NewInterest("quotes").WithKeys("symbol", "ibm").WithRange("price", 0, 80))
	compiled := stream.CompileSet(selective, sc)
	matchIters := 2000
	sink := false
	rep.MatchInterpretedNs = perOp(matchIters, func() {
		for i := range batch {
			sink = selective.Matches(sc, batch[i]) || sink
		}
	}) / batchSize
	rep.MatchCompiledNs = perOp(matchIters, func() {
		for i := range batch {
			sink = compiled.Matches(batch[i]) || sink
		}
	}) / batchSize
	_ = sink
	rep.MatchSpeedup = rep.MatchInterpretedNs / rep.MatchCompiledNs
	rep.MatchAllocsPerOp = allocsPerRun(100, func() {
		for i := range batch {
			sink = compiled.Matches(batch[i]) || sink
		}
	}) / batchSize

	// --- Relay fan-out layer ---
	// Topology: src -> mid -> {4 leaves}; two leaves register match-all,
	// two register the selective ibm filter. The bench drives mid.
	tp := newBenchNullTransport()
	src := dissemination.Member{ID: "src", Pos: simnet.Point{}}
	mid := dissemination.Member{ID: "mid", Pos: simnet.Point{X: 10}}
	tr, err := dissemination.Build("quotes", src, []dissemination.Member{mid}, dissemination.Balanced, nChildren)
	if err != nil {
		return err
	}
	leafPos := []simnet.Point{{X: 10, Y: 2}, {X: 10, Y: -2}, {X: 12}, {X: 8}}
	leafIDs := make([]simnet.NodeID, nChildren)
	for i := 0; i < nChildren; i++ {
		leafIDs[i] = simnet.NodeID(fmt.Sprintf("leaf%d", i))
		if _, err := tr.AddMember(dissemination.Member{ID: leafIDs[i], Pos: leafPos[i]}, nChildren); err != nil {
			return err
		}
	}
	if got := len(tr.Children("mid")); got != nChildren {
		return fmt.Errorf("tuplepath bench: mid has %d children, want %d", got, nChildren)
	}
	rel, err := dissemination.NewRelay(tr, "mid", sc, tp, nil, 0)
	if err != nil {
		return err
	}
	defer rel.Close()
	childSets := make([]*stream.InterestSet, nChildren)
	for i, id := range leafIDs {
		leaf, err := dissemination.NewRelay(tr, id, sc, tp, nil, 0)
		if err != nil {
			return err
		}
		defer leaf.Close()
		var terms []stream.Interest
		if i < nChildren/2 {
			terms = []stream.Interest{stream.NewInterest("quotes")}
		} else {
			terms = []stream.Interest{stream.NewInterest("quotes").WithKeys("symbol", "ibm").WithRange("price", 0, 80)}
		}
		if err := leaf.SetLocalInterest(terms); err != nil {
			return err
		}
		set := stream.NewInterestSet("quotes")
		for _, in := range terms {
			set.Add(in)
		}
		childSets[i] = set
	}

	// Interpreted baseline: the pre-optimization disseminate loop,
	// verbatim — fresh decode, per-tuple schema-resolved matching, fresh
	// per-child encode — against the same null send.
	interpreted := func() {
		dec, _, err := stream.DecodeBatch(wire)
		if err != nil {
			panic(err)
		}
		for i, set := range childSets {
			var sub stream.Batch
			for _, tu := range dec {
				if set.Matches(sc, tu) {
					sub = append(sub, tu)
				}
			}
			if len(sub) == 0 {
				continue
			}
			payload := stream.AppendBatch(nil, sub)
			if err := tp.Send("mid", leafIDs[i], dissemination.KindTuples, payload); err != nil {
				panic(err)
			}
		}
	}
	compiledHop := func() { rel.HandleTuples(wire) }

	for i := 0; i < 50; i++ { // warmup: pools, link workers, arenas
		interpreted()
		compiledHop()
	}
	rep.RelayInterpretedNsPerTuple = perOp(iters, interpreted) / batchSize
	rep.RelayCompiledNsPerTuple = perOp(iters, compiledHop) / batchSize
	rep.RelaySpeedup = rep.RelayInterpretedNsPerTuple / rep.RelayCompiledNsPerTuple
	rep.RelayInterpretedAllocsPerTuple = allocsPerRun(200, interpreted) / batchSize
	rep.RelayCompiledAllocsPerTuple = allocsPerRun(200, compiledHop) / batchSize

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("tuplepath bench: relay %.0f -> %.0f ns/tuple (%.1fx), allocs/tuple %.2f -> %.3f\n",
		rep.RelayInterpretedNsPerTuple, rep.RelayCompiledNsPerTuple, rep.RelaySpeedup,
		rep.RelayInterpretedAllocsPerTuple, rep.RelayCompiledAllocsPerTuple)
	fmt.Printf("  match %.1f -> %.1f ns (%.1fx); encode %.0f -> %.0f ns/tuple; decode %.0f -> %.0f ns/tuple\n",
		rep.MatchInterpretedNs, rep.MatchCompiledNs, rep.MatchSpeedup,
		rep.EncodeFreshNsPerTuple, rep.EncodePooledNsPerTuple,
		rep.DecodeFreshNsPerTuple, rep.DecodePooledNsPerTuple)
	if rep.RelaySpeedup < 2 {
		return fmt.Errorf("tuplepath bench: relay speedup %.2fx is below the 2x acceptance bar", rep.RelaySpeedup)
	}
	return nil
}
