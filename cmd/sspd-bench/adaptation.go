package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"sspd/internal/core"
	"sspd/internal/engine"
	"sspd/internal/obslog"
	"sspd/internal/simnet"
	"sspd/internal/stream"
	"sspd/internal/trace"
	"sspd/internal/workload"
)

// adaptationReport is BENCH_adaptation.json: tuple-routed downstream
// selection (the Adaptation Module, paper §4.2 / DESIGN.md §15) vs. the
// static-ordering baseline under a selectivity-drifting workload on a
// jittered link.
//
// Topology: one entity, four processors, a three-fragment filter chain.
// Placement puts the head on p0 and the static middle fragment on p1;
// the p0→p1 link carries uniform jitter, so every tuple surviving the
// head filter pays it. Tuple routing replicates the middle fragment on
// p1 AND p2 — the chooser measures both (through trace-fed delays) and
// steers traffic over the clean p0→p2 link. The workload drifts the
// head filter's selectivity from ~10% pass to ~90% pass between phases,
// multiplying traffic over the slow link: the static chain degrades
// with the drift, the routed one adapts around it.
type adaptationReport struct {
	// TuplesPerPhase / phases of the drifting workload.
	TuplesPerPhase int     `json:"tuples_per_phase"`
	JitterMs       float64 `json:"jitter_ms"`

	// PR_max (measured, from trace spans) at the end of each run.
	StaticAPRMax float64 `json:"static_a_pr_max"`
	StaticBPRMax float64 `json:"static_b_pr_max"`
	RoutedPRMax  float64 `json:"routed_pr_max"`

	// Mean end-to-end delay per sampled span (seconds) at the end.
	StaticAMeanDelay float64 `json:"static_a_mean_delay_seconds"`
	RoutedMeanDelay  float64 `json:"routed_mean_delay_seconds"`

	// Per-phase sampled delay burden (sum of span delays, seconds) for
	// the first static run: the drift multiplies traffic over the
	// jittered link, so phase 2's burden must dwarf phase 1's.
	StaticPhase1Burden float64 `json:"static_phase1_burden_seconds"`
	StaticPhase2Burden float64 `json:"static_phase2_burden_seconds"`

	// Improvement is staticA PR_max over routed PR_max; Margin is the
	// noise-calibrated bar it must clear (from the static A/B spread).
	Improvement float64 `json:"improvement"`
	Margin      float64 `json:"margin"`

	// Delivered result counts (all runs must match the oracle exactly —
	// routing must never lose or duplicate a tuple).
	OracleResults  int `json:"oracle_results"`
	StaticAResults int `json:"static_a_results"`
	StaticBResults int `json:"static_b_results"`
	RoutedResults  int `json:"routed_results"`

	// Routed-run routing table at the end: candidate delays prove the
	// chooser measured the slow replica and preferred the clean one.
	Routes []core.RouteStatus `json:"routes"`
}

const (
	adaptTuplesPerPhase = 2000
	adaptChunk          = 200
	adaptJitter         = 8 * time.Millisecond
	// adaptMinMargin is the floor on the PR improvement bar; the
	// effective bar grows with the measured static A/B noise spread.
	adaptMinMargin = 1.3
)

// adaptPrice returns the drifting price for tuple i of a phase: phase 1
// passes the head filter (price <= 100) for exactly 10% of tuples,
// phase 2 for 90% — the selectivity drift that multiplies traffic over
// the jittered inter-fragment link. The passing slot rotates through
// every residue mod 4 so the tracer's 1-in-4 tick sampler sees passing
// tuples in both phases.
func adaptPrice(phase, i int) float64 {
	pass := i%10 == (i/10)%4
	if phase == 2 {
		pass = !pass
	}
	if pass {
		return 50
	}
	return 500
}

// adaptSpec is the three-fragment chain: a drifting head filter and two
// pass-all stages behind it (the routed boundary sits between the first
// and second fragment).
func adaptSpec() engine.QuerySpec {
	return engine.QuerySpec{
		ID:     "q",
		Source: "quotes",
		Filters: []engine.FilterSpec{
			{Field: "price", Lo: 0, Hi: 100, Cost: 1},
			{Field: "volume", Lo: 0, Hi: 1e6, Cost: 1},
			{KeyField: "symbol", Keys: []string{"S0000"}, Cost: 1},
		},
		Load: 5,
	}
}

type adaptRun struct {
	prMax        float64
	meanDelay    float64
	phase1Burden float64
	phase2Burden float64
	results      int
	routes       []core.RouteStatus
}

// runAdaptationOnce drives one full drifting workload through a fresh
// federation and returns its measurements. seed varies the jitter RNG
// between runs (the noise-calibration repeats).
func runAdaptationOnce(routed bool, seed int64) (adaptRun, error) {
	var out adaptRun
	plan := simnet.NewFaultPlan(simnet.NewSim(nil), seed)
	defer plan.Close()
	opts := core.Options{
		Fanout:            2,
		FragmentsPerQuery: 3,
		Logger:            obslog.New(obslog.NewJournal(obslog.DefaultJournalCapacity), nil),
	}
	if routed {
		opts.EnableTupleRouting = true
		opts.RoutingReplicas = 2
	}
	fed, err := core.New(plan, workload.Catalog(100, 20), opts)
	if err != nil {
		return out, err
	}
	defer fed.Close()
	defer trace.SetActive(nil)
	if err := fed.AddSource("quotes", simnet.Point{},
		core.StreamRate{TuplesPerSec: 1000, BytesPerTuple: 60}); err != nil {
		return out, err
	}
	mini := func(name string, c *stream.Catalog) engine.Processor {
		return engine.NewMini(name, c)
	}
	if err := fed.AddEntity("e", simnet.Point{X: 10}, 4, mini); err != nil {
		return out, err
	}
	if err := fed.Start(); err != nil {
		return out, err
	}
	if _, err := fed.EnableTracing(4, 8192); err != nil {
		return out, err
	}
	if err := fed.EnableLatencyAttribution(0); err != nil {
		return out, err
	}
	results := 0
	if err := fed.SubmitQueryTo(adaptSpec(), "e", func(stream.Tuple) { results++ }); err != nil {
		return out, err
	}
	fed.Settle(2 * time.Second)

	// Jitter the head→middle link the static chain is pinned to
	// (placement deals fragments across processors in index order, so
	// the head lands on p0 and the static middle instance on p1; the
	// routed run's second replica lands on p2, behind a clean link).
	plan.SetLinkFaults("e/p0", "e/p1", simnet.LinkFaults{Jitter: adaptJitter})

	seq := uint64(0)
	feedPhase := func(phase int) error {
		for sent := 0; sent < adaptTuplesPerPhase; sent += adaptChunk {
			batch := make(stream.Batch, 0, adaptChunk)
			for i := 0; i < adaptChunk; i++ {
				batch = append(batch, stream.NewTuple("quotes", seq,
					time.Unix(int64(seq), 0).UTC(),
					stream.String("S0000"),
					stream.Float(adaptPrice(phase, sent+i)),
					stream.Int(1)))
				seq++
			}
			if err := fed.Publish("quotes", batch); err != nil {
				return err
			}
			// Pace in chunks so the trace→Report feedback loop closes
			// between routing decisions.
			if !plan.Quiesce(10 * time.Second) {
				return fmt.Errorf("phase %d did not quiesce", phase)
			}
		}
		return nil
	}

	burden := func() float64 {
		att, ok := fed.ClusterLatency()
		if !ok {
			return 0
		}
		return att.E2E.Sum
	}

	if err := feedPhase(1); err != nil {
		return out, err
	}
	out.phase1Burden = burden()
	if err := feedPhase(2); err != nil {
		return out, err
	}
	total := burden()
	out.phase2Burden = total - out.phase1Burden

	att, ok := fed.ClusterLatency()
	if !ok || att.E2E.Count == 0 {
		return out, fmt.Errorf("no latency view after workload")
	}
	out.meanDelay = att.E2E.Sum / float64(att.E2E.Count)
	out.prMax, _ = fed.PRMeasuredMax()
	out.results = results
	out.routes = fed.AdaptationRoutes()
	return out, nil
}

func runAdaptationBench(path string) error {
	rep := adaptationReport{
		TuplesPerPhase: adaptTuplesPerPhase,
		JitterMs:       float64(adaptJitter) / float64(time.Millisecond),
	}
	// The oracle: tuples passing the drifting head filter (the other
	// two stages pass everything).
	for _, phase := range []int{1, 2} {
		for i := 0; i < adaptTuplesPerPhase; i++ {
			if adaptPrice(phase, i) <= 100 {
				rep.OracleResults++
			}
		}
	}

	staticA, err := runAdaptationOnce(false, 11)
	if err != nil {
		return err
	}
	staticB, err := runAdaptationOnce(false, 23)
	if err != nil {
		return err
	}
	routed, err := runAdaptationOnce(true, 11)
	if err != nil {
		return err
	}

	rep.StaticAPRMax = staticA.prMax
	rep.StaticBPRMax = staticB.prMax
	rep.RoutedPRMax = routed.prMax
	rep.StaticAMeanDelay = staticA.meanDelay
	rep.RoutedMeanDelay = routed.meanDelay
	rep.StaticPhase1Burden = staticA.phase1Burden
	rep.StaticPhase2Burden = staticA.phase2Burden
	rep.StaticAResults = staticA.results
	rep.StaticBResults = staticB.results
	rep.RoutedResults = routed.results
	rep.Routes = routed.routes

	// Noise calibration: the margin routing must clear grows with the
	// spread between the two identical static runs.
	noise := staticA.prMax - staticB.prMax
	if noise < 0 {
		noise = -noise
	}
	rel := 0.0
	if m := max64(staticA.prMax, staticB.prMax); m > 0 {
		rel = noise / m
	}
	rep.Margin = adaptMinMargin
	if bar := 1 + 3*rel; bar > rep.Margin {
		rep.Margin = bar
	}
	if routed.prMax > 0 {
		rep.Improvement = staticA.prMax / routed.prMax
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("adaptation bench: PR_max static=%.3g/%.3g routed=%.3g (%.2fx, bar %.2fx) mean delay static=%.3gs routed=%.3gs\n",
		rep.StaticAPRMax, rep.StaticBPRMax, rep.RoutedPRMax, rep.Improvement, rep.Margin,
		rep.StaticAMeanDelay, rep.RoutedMeanDelay)
	fmt.Printf("  drift burden: phase1=%.3gs phase2=%.3gs; results oracle=%d static=%d/%d routed=%d\n",
		rep.StaticPhase1Burden, rep.StaticPhase2Burden,
		rep.OracleResults, rep.StaticAResults, rep.StaticBResults, rep.RoutedResults)
	fmt.Printf("  wrote %s\n", path)

	// Gate 1 — zero loss, exact results, every run.
	for name, got := range map[string]int{
		"static A": rep.StaticAResults, "static B": rep.StaticBResults, "routed": rep.RoutedResults,
	} {
		if got != rep.OracleResults {
			return fmt.Errorf("%s delivered %d results, oracle %d — routing/baseline lost or duplicated tuples",
				name, got, rep.OracleResults)
		}
	}
	// Gate 2 — the drift actually degrades the static chain (else the
	// scenario proves nothing).
	if rep.StaticPhase2Burden < 3*rep.StaticPhase1Burden {
		return fmt.Errorf("selectivity drift did not degrade the static chain (phase2 burden %.3gs < 3x phase1 %.3gs)",
			rep.StaticPhase2Burden, rep.StaticPhase1Burden)
	}
	// Gate 3 — routed PR_max beats static by the noise-calibrated bar.
	if rep.Improvement < rep.Margin {
		return fmt.Errorf("tuple routing improved PR_max only %.2fx over static (bar: %.2fx)",
			rep.Improvement, rep.Margin)
	}
	return nil
}

func max64(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
