package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"sspd/internal/core"
	"sspd/internal/engine"
	"sspd/internal/latency"
	"sspd/internal/obslog"
	"sspd/internal/simnet"
	"sspd/internal/stream"
	"sspd/internal/trace"
	"sspd/internal/workload"
)

// latencyReport is BENCH_latency.json: the cost and the accuracy of the
// latency attribution plane (DESIGN.md §11).
type latencyReport struct {
	// SampleEvery is the trace sampling rate both tuple-path runs used.
	SampleEvery int `json:"sample_every"`
	// NsPerTuplePlaneOff / On are end-to-end publish->result costs per
	// tuple with tracing sampled 1/1024 and the latency plane disabled
	// vs. enabled (span decomposition + histograms + SLO watchdog).
	NsPerTuplePlaneOff float64 `json:"ns_per_tuple_latency_off"`
	NsPerTuplePlaneOn  float64 `json:"ns_per_tuple_latency_on"`
	// OverheadPct is the on/off delta; the acceptance bar is <= 1.
	OverheadPct float64 `json:"latency_overhead_pct"`

	// FederatedP99 is the cluster-wide end-to-end P99 answered by the
	// merged per-entity histograms; OracleP99 is the exact P99 computed
	// by sorting every sampled span's delay. P99BucketDistance is how
	// many log-bucket boundaries apart the two land — the log-bucket
	// quantile contract says at most one.
	FederatedP99      float64 `json:"federated_p99_seconds"`
	OracleP99         float64 `json:"oracle_p99_seconds"`
	OracleSpans       int     `json:"oracle_spans"`
	P99BucketDistance int     `json:"p99_bucket_distance"`
}

const (
	// maxLatencyOverheadPct gates the tuple-path cost of the plane.
	maxLatencyOverheadPct = 1.0
	// latencySampleEvery is the sampling rate for the overhead runs.
	latencySampleEvery = 1024
)

// latencyFederation builds the standard bench topology. Callers own the
// returned federation and transport.
func latencyFederation(nEntities, fanout int) (*core.Federation, *simnet.SimNet, error) {
	net := simnet.NewSim(nil)
	catalog := workload.Catalog(100, 20)
	fed, err := core.New(net, catalog, core.Options{Fanout: fanout,
		Logger: obslog.New(obslog.NewJournal(obslog.DefaultJournalCapacity), nil)})
	if err != nil {
		net.Close()
		return nil, nil, err
	}
	if err := fed.AddSource("quotes", simnet.Point{},
		core.StreamRate{TuplesPerSec: 1000, BytesPerTuple: 60}); err != nil {
		fed.Close()
		net.Close()
		return nil, nil, err
	}
	mini := func(name string, c *stream.Catalog) engine.Processor {
		return engine.NewMini(name, c)
	}
	for i := 0; i < nEntities; i++ {
		if err := fed.AddEntity(fmt.Sprintf("e%02d", i),
			simnet.Point{X: float64(10 + i*20)}, 2, mini); err != nil {
			fed.Close()
			net.Close()
			return nil, nil, err
		}
	}
	if err := fed.Start(); err != nil {
		fed.Close()
		net.Close()
		return nil, nil, err
	}
	for q := 0; q < nEntities; q++ {
		spec := engine.QuerySpec{
			ID: fmt.Sprintf("q%d", q), Source: "quotes",
			Filters: []engine.FilterSpec{{Field: "price", Lo: 0, Hi: 1000, Cost: 1}},
			Load:    5,
		}
		if _, err := fed.SubmitQuery(spec, simnet.Point{X: float64(15 + q*20)}, nil); err != nil {
			fed.Close()
			net.Close()
			return nil, nil, err
		}
	}
	net.Quiesce(2 * time.Second)
	return fed, net, nil
}

func runLatencyBench(path string) error {
	rep := latencyReport{SampleEvery: latencySampleEvery}

	// Part 1 — tuple-path overhead. Both runs sample 1/1024; only the
	// second attaches the completion hook, decomposition, and watchdog.
	const (
		nEntities = 4
		nTuples   = 100_000
		batchSize = 100
		rounds    = 3
	)
	runOnce := func(plane bool) (float64, error) {
		fed, net, err := latencyFederation(nEntities, 3)
		if err != nil {
			return 0, err
		}
		defer net.Close()
		defer fed.Close()
		defer trace.SetActive(nil)
		if _, err := fed.EnableTracing(latencySampleEvery, 4096); err != nil {
			return 0, err
		}
		// The stats plane runs in both configurations (its own cost is
		// gated by bench-statsplane); the delta here isolates the latency
		// plane: completion hook, decomposition, histograms, watchdog.
		if plane {
			if err := fed.EnableLatencyAttribution(0); err != nil {
				return 0, err
			}
		}
		if err := fed.EnableStatsPlane(50 * time.Millisecond); err != nil {
			return 0, err
		}
		tick := workload.NewTicker(1, 100, 1.2)
		if err := fed.Publish("quotes", tick.Batch(batchSize)); err != nil {
			return 0, err
		}
		net.Quiesce(2 * time.Second)
		start := time.Now()
		for sent := 0; sent < nTuples; sent += batchSize {
			if err := fed.Publish("quotes", tick.Batch(batchSize)); err != nil {
				return 0, err
			}
		}
		net.Quiesce(10 * time.Second)
		return float64(time.Since(start).Nanoseconds()) / float64(nTuples), nil
	}
	run := func(plane bool) (float64, error) {
		best := 0.0
		for r := 0; r < rounds; r++ {
			ns, err := runOnce(plane)
			if err != nil {
				return 0, err
			}
			if best == 0 || ns < best {
				best = ns
			}
		}
		return best, nil
	}
	var err error
	if rep.NsPerTuplePlaneOff, err = run(false); err != nil {
		return err
	}
	if rep.NsPerTuplePlaneOn, err = run(true); err != nil {
		return err
	}
	rep.OverheadPct = 100 * (rep.NsPerTuplePlaneOn - rep.NsPerTuplePlaneOff) / rep.NsPerTuplePlaneOff

	// Part 2 — merge accuracy. Every tuple sampled on a 3-entity
	// federation; the federated P99 (per-entity histograms merged
	// through the stats rows) must land within one log-bucket of the
	// exact P99 computed from the raw spans themselves.
	if err := func() error {
		fed, net, err := latencyFederation(3, 2)
		if err != nil {
			return err
		}
		defer net.Close()
		defer fed.Close()
		defer trace.SetActive(nil)
		const oracleTuples = 2000
		tr, err := fed.EnableTracing(1, 2*oracleTuples)
		if err != nil {
			return err
		}
		if err := fed.EnableLatencyAttribution(0); err != nil {
			return err
		}
		if err := fed.EnableStatsPlane(0); err != nil {
			return err
		}
		tick := workload.NewTicker(1, 100, 1.2)
		for sent := 0; sent < oracleTuples; sent += 100 {
			if err := fed.Publish("quotes", tick.Batch(100)); err != nil {
				return err
			}
		}
		net.Quiesce(10 * time.Second)
		for i := 0; i < 2; i++ {
			fed.StatsTick()
			net.Quiesce(2 * time.Second)
		}

		att, ok := fed.ClusterLatency()
		if !ok || att.E2E.Count == 0 {
			return fmt.Errorf("no federated latency view (count=%d)", att.E2E.Count)
		}
		rep.FederatedP99 = att.E2E.Quantile(0.99)

		// The oracle: decompose every buffered span exactly as the plane
		// did, but keep the raw delays and sort them.
		var exact []float64
		for _, s := range tr.Recent(tr.Len()) {
			for i, h := range s.Hops {
				if h.Stage != trace.StageResult {
					continue
				}
				if bd, ok := latency.Decompose(s, i); ok {
					exact = append(exact, bd.E2E)
				}
			}
		}
		if len(exact) == 0 {
			return fmt.Errorf("oracle found no completed spans")
		}
		if uint64(len(exact)) != att.E2E.Count {
			return fmt.Errorf("oracle saw %d delays, federation %d", len(exact), att.E2E.Count)
		}
		sort.Float64s(exact)
		rep.OracleSpans = len(exact)
		idx := int(0.99*float64(len(exact))+0.5) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(exact) {
			idx = len(exact) - 1
		}
		rep.OracleP99 = exact[idx]

		bucketOf := func(v float64) int {
			bounds := latency.Bounds()
			for i, b := range bounds {
				if v <= b {
					return i
				}
			}
			return len(bounds)
		}
		rep.P99BucketDistance = bucketOf(rep.FederatedP99) - bucketOf(rep.OracleP99)
		if rep.P99BucketDistance < 0 {
			rep.P99BucketDistance = -rep.P99BucketDistance
		}
		return nil
	}(); err != nil {
		return err
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("latency bench: tuple off=%.0fns on=%.0fns (%+.2f%% @1/%d) fed p99=%.3gs oracle p99=%.3gs (bucket distance %d over %d spans)\n",
		rep.NsPerTuplePlaneOff, rep.NsPerTuplePlaneOn, rep.OverheadPct, rep.SampleEvery,
		rep.FederatedP99, rep.OracleP99, rep.P99BucketDistance, rep.OracleSpans)
	fmt.Printf("  wrote %s\n", path)
	if rep.OverheadPct > maxLatencyOverheadPct {
		return fmt.Errorf("latency plane adds %.2f%% to the tuple path (bar: %.1f%%)",
			rep.OverheadPct, maxLatencyOverheadPct)
	}
	if rep.P99BucketDistance > 1 {
		return fmt.Errorf("federated P99 is %d buckets from the oracle (bar: 1)", rep.P99BucketDistance)
	}
	return nil
}
