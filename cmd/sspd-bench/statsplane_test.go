package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestAppendReportMergesExistingFields: bench-statsplane must extend
// BENCH_observability.json, not clobber the observability bench's keys.
func TestAppendReportMergesExistingFields(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path,
		[]byte(`{"ns_per_tuple_off": 123.5, "tuples": 20000}`), 0o644); err != nil {
		t.Fatal(err)
	}
	rep := statsplaneReport{NsPerDigestMerge: 7, NsPerJournalAppend: 3,
		NsPerTuplePlaneOff: 100, NsPerTuplePlaneOn: 101, PlaneOverheadPct: 1}
	if err := appendReport(path, rep); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var merged map[string]any
	if err := json.Unmarshal(data, &merged); err != nil {
		t.Fatal(err)
	}
	if merged["ns_per_tuple_off"] != 123.5 {
		t.Fatalf("pre-existing key clobbered: %v", merged)
	}
	if merged["ns_per_digest_merge"] != 7.0 || merged["plane_overhead_pct"] != 1.0 {
		t.Fatalf("new keys missing: %v", merged)
	}
}

// TestAppendReportFreshFile: absent file starts a new object.
func TestAppendReportFreshFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fresh.json")
	if err := appendReport(path, statsplaneReport{NsPerDigestMerge: 1}); err != nil {
		t.Fatal(err)
	}
	var merged map[string]any
	data, _ := os.ReadFile(path)
	if err := json.Unmarshal(data, &merged); err != nil {
		t.Fatal(err)
	}
	if merged["ns_per_digest_merge"] != 1.0 {
		t.Fatalf("fresh write wrong: %v", merged)
	}
}

// TestAppendReportRejectsNonObject: a corrupt report file is an error,
// not silent data loss.
func TestAppendReportRejectsNonObject(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`[1,2,3]`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := appendReport(path, statsplaneReport{}); err == nil {
		t.Fatal("appendReport accepted a non-object file")
	}
}
