package main

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"sspd/internal/core"
	"sspd/internal/engine"
	"sspd/internal/obslog"
	"sspd/internal/simnet"
	"sspd/internal/stream"
	"sspd/internal/workload"
)

// engineobsReport is appended into BENCH_observability.json: the cost
// of the engine introspection plane (DESIGN.md §14). Shard telemetry is
// batch-grained atomics on the publish path plus a periodic watchdog
// evaluation off it; the end-to-end on/off comparison bounds what both
// cost flowing tuples. The stats plane is enabled on BOTH sides so the
// delta isolates the introspection plane alone.
type engineobsReport struct {
	// NsPerTupleEngineObsOff / On are end-to-end publish->result costs
	// per tuple with the engine introspection plane disabled and enabled
	// (50ms watchdog period), stats plane on in both cases.
	NsPerTupleEngineObsOff float64 `json:"ns_per_tuple_engineobs_off"`
	NsPerTupleEngineObsOn  float64 `json:"ns_per_tuple_engineobs_on"`
	// EngineObsOverheadPct is the on/off delta; the acceptance bar is
	// <= 1 plus the run's own measured noise floor.
	EngineObsOverheadPct float64 `json:"engineobs_overhead_pct"`
	// EngineObsNoisePct is the within-side spread of the rounds (median
	// over best, summed across the off and on sides, as a percentage):
	// what this machine's scheduler jitter alone does to the
	// measurement. The gate widens by it, like the stats-plane bench.
	EngineObsNoisePct float64 `json:"engineobs_noise_pct"`
}

func runEngineobsBench(path string) error {
	var rep engineobsReport

	// End-to-end tuple path through shard engines (the instrumented
	// path), engine introspection off vs on. Same topology and
	// interleaved best-of-N discipline as the stats-plane bench.
	const (
		nEntities = 4
		nTuples   = 100_000
		batchSize = 100
		rounds    = 5
	)
	runOnce := func(plane bool) (float64, error) {
		net := simnet.NewSim(nil)
		defer net.Close()
		catalog := workload.Catalog(100, 20)
		fed, err := core.New(net, catalog, core.Options{Fanout: 3,
			Logger: obslog.New(obslog.NewJournal(obslog.DefaultJournalCapacity), nil)})
		if err != nil {
			return 0, err
		}
		defer fed.Close()
		if err := fed.AddSource("quotes", simnet.Point{},
			core.StreamRate{TuplesPerSec: 1000, BytesPerTuple: 60}); err != nil {
			return 0, err
		}
		shard := func(name string, c *stream.Catalog) engine.Processor {
			return engine.NewShard(name, c, 2)
		}
		for i := 0; i < nEntities; i++ {
			if err := fed.AddEntity(fmt.Sprintf("e%02d", i),
				simnet.Point{X: float64(10 + i*20)}, 2, shard); err != nil {
				return 0, err
			}
		}
		if err := fed.Start(); err != nil {
			return 0, err
		}
		for q := 0; q < nEntities; q++ {
			spec := engine.QuerySpec{
				ID: fmt.Sprintf("q%d", q), Source: "quotes",
				Filters: []engine.FilterSpec{{Field: "price", Lo: 0, Hi: 1000, Cost: 1}},
				Load:    5,
			}
			if _, err := fed.SubmitQuery(spec, simnet.Point{X: float64(15 + q*20)}, nil); err != nil {
				return 0, err
			}
		}
		net.Quiesce(2 * time.Second)
		if err := fed.EnableStatsPlane(50 * time.Millisecond); err != nil {
			return 0, err
		}
		if plane {
			if err := fed.EnableEngineIntrospection(50 * time.Millisecond); err != nil {
				return 0, err
			}
		}
		tick := workload.NewTicker(1, 100, 1.2)
		if err := fed.Publish("quotes", tick.Batch(batchSize)); err != nil {
			return 0, err
		}
		net.Quiesce(2 * time.Second)
		start := time.Now()
		for sent := 0; sent < nTuples; sent += batchSize {
			if err := fed.Publish("quotes", tick.Batch(batchSize)); err != nil {
				return 0, err
			}
		}
		net.Quiesce(10 * time.Second)
		return float64(time.Since(start).Nanoseconds()) / float64(nTuples), nil
	}
	var offs, ons []float64
	measure := func(plane bool) error {
		runtime.GC()
		ns, err := runOnce(plane)
		if err != nil {
			return err
		}
		if plane {
			ons = append(ons, ns)
		} else {
			offs = append(offs, ns)
		}
		return nil
	}
	for r := 0; r < rounds; r++ {
		first := r%2 == 1
		if err := measure(first); err != nil {
			return err
		}
		if err := measure(!first); err != nil {
			return err
		}
	}
	sort.Float64s(offs)
	sort.Float64s(ons)
	rep.NsPerTupleEngineObsOff = offs[0]
	rep.NsPerTupleEngineObsOn = ons[0]
	rep.EngineObsNoisePct = 100 * ((offs[len(offs)/2] - offs[0]) + (ons[len(ons)/2] - ons[0])) / offs[0]
	rep.EngineObsOverheadPct = 100 * (rep.NsPerTupleEngineObsOn - rep.NsPerTupleEngineObsOff) / rep.NsPerTupleEngineObsOff

	if err := appendReport(path, rep); err != nil {
		return err
	}
	fmt.Printf("engineobs bench: tuple off=%.0fns on=%.0fns (%+.2f%%, noise %.2f%%)\n",
		rep.NsPerTupleEngineObsOff, rep.NsPerTupleEngineObsOn,
		rep.EngineObsOverheadPct, rep.EngineObsNoisePct)
	fmt.Printf("  appended to %s\n", path)
	if bar := maxPlaneOverheadPct + rep.EngineObsNoisePct; rep.EngineObsOverheadPct > bar {
		return fmt.Errorf("engine introspection adds %.2f%% to the tuple path (bar: %.1f%% + %.2f%% measured noise)",
			rep.EngineObsOverheadPct, maxPlaneOverheadPct, rep.EngineObsNoisePct)
	}
	return nil
}
