package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"sspd/internal/core"
	"sspd/internal/dissemination"
	"sspd/internal/engine"
	"sspd/internal/operator"
	"sspd/internal/simnet"
	"sspd/internal/stream"
	"sspd/internal/workload"
)

// migrationPauseBudgetMs bounds the per-hop handoff pause (pause →
// drain → snapshot → restore → replay) on the simulated transport. A
// regression that starts copying windows tuple-by-tuple over the
// network, or replaying unbounded buffers, blows this budget.
const migrationPauseBudgetMs = 250

// migrationReport is the schema of BENCH_migration.json: exactly-once
// accounting for a stateful query live-migrated around the cluster
// mid-stream, plus the handoff pause distribution.
type migrationReport struct {
	Entities int   `json:"entities"`
	Window   int   `json:"window"`
	Hops     int   `json:"hops"`
	Seed     int64 `json:"seed"`

	Published  int `json:"published"`
	Delivered  int `json:"delivered"`
	Duplicated int `json:"duplicated"`
	Lost       int `json:"lost"`

	Commits         int     `json:"commits"`
	Rollbacks       int     `json:"rollbacks"`
	StateBytesTotal int     `json:"state_bytes_total"`
	ReplayedTotal   int     `json:"replayed_total"`
	PauseMaxMs      float64 `json:"pause_max_ms"`
	PauseMeanMs     float64 `json:"pause_mean_ms"`
	PauseBudgetMs   float64 `json:"pause_budget_ms"`

	Pass bool `json:"pass"`
}

// runMigrationBench measures the live-migration protocol end to end: a
// windowed aggregate hops around a three-entity federation while quote
// batches are in flight on a jittery, reordering transport. It fails
// (non-zero exit) if any tuple is lost or duplicated, or if the worst
// handoff pause exceeds the budget.
func runMigrationBench(path string) error {
	const (
		window   = 64
		hopCount = 6
		seed     = 11
	)
	plan := simnet.NewFaultPlan(simnet.NewSim(nil), seed)
	defer plan.Close()
	fed, err := core.New(plan, workload.Catalog(100, 20), core.Options{
		Strategy:        dissemination.Balanced,
		Fanout:          2,
		ReliableControl: true,
		InterestRefresh: 25 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer fed.Close()
	if err := fed.AddSource("quotes", simnet.Point{},
		core.StreamRate{TuplesPerSec: 1000, BytesPerTuple: 60}); err != nil {
		return err
	}
	entities := []string{"e00", "e01", "e02"}
	for i, id := range entities {
		if err := fed.AddEntity(id, simnet.Point{X: float64(10 + i*10)}, 2,
			func(name string, c *stream.Catalog) engine.Processor {
				return engine.NewMini(name, c)
			}); err != nil {
			return err
		}
	}
	if err := fed.Start(); err != nil {
		return err
	}

	var mu sync.Mutex
	counts := map[uint64]int{}
	spec := engine.QuerySpec{
		ID:     "agg",
		Source: "quotes",
		Agg: &engine.AggSpec{Fn: operator.AggCount, ValueField: "price",
			Window: stream.CountWindow(window)},
		Load: 5,
	}
	if err := fed.SubmitQueryTo(spec, "e00", func(t stream.Tuple) {
		mu.Lock()
		counts[t.Seq]++
		mu.Unlock()
	}); err != nil {
		return err
	}
	fed.Settle(2 * time.Second)

	plan.SetDefaultFaults(simnet.LinkFaults{
		Reorder:      0.25,
		ReorderDelay: 2 * time.Millisecond,
		Jitter:       time.Millisecond,
	})
	plan.SetEnabled(true)

	tick := workload.NewTicker(seed, 100, 1.2)
	var published stream.Batch
	publish := func(k int) error {
		b := tick.Batch(k)
		published = append(published, b...)
		return fed.Publish("quotes", b)
	}
	if err := publish(200); err != nil {
		return err
	}
	fed.Settle(2 * time.Second)

	// Hop around the ring with tuples in flight at every handoff.
	for hop := 0; hop < hopCount; hop++ {
		if err := publish(100); err != nil {
			return err
		}
		to := entities[(hop+1)%len(entities)]
		if err := fed.MigrateQuery("agg", to); err != nil {
			return fmt.Errorf("migration bench: hop %d -> %s: %w", hop, to, err)
		}
	}
	if err := publish(100); err != nil {
		return err
	}
	fed.Settle(2 * time.Second)
	plan.SetEnabled(false)
	fed.Settle(2 * time.Second)

	rep := migrationReport{
		Entities:      len(entities),
		Window:        window,
		Hops:          hopCount,
		Seed:          seed,
		Published:     len(published),
		PauseBudgetMs: migrationPauseBudgetMs,
	}
	mu.Lock()
	for _, t := range published {
		switch counts[t.Seq] {
		case 0:
		case 1:
			rep.Delivered++
		default:
			rep.Delivered++
			rep.Duplicated += counts[t.Seq] - 1
		}
	}
	mu.Unlock()
	rep.Lost = rep.Published - rep.Delivered

	var pauseSum float64
	for _, r := range fed.Migrations() {
		switch r.Outcome {
		case "commit":
			rep.Commits++
			rep.StateBytesTotal += r.StateBytes
			rep.ReplayedTotal += r.Replayed
			pauseSum += r.PauseMs
			if r.PauseMs > rep.PauseMaxMs {
				rep.PauseMaxMs = r.PauseMs
			}
		default:
			rep.Rollbacks++
		}
	}
	if rep.Commits > 0 {
		rep.PauseMeanMs = pauseSum / float64(rep.Commits)
	}
	rep.Pass = rep.Lost == 0 && rep.Duplicated == 0 && rep.Rollbacks == 0 &&
		rep.Commits == hopCount && rep.PauseMaxMs <= migrationPauseBudgetMs

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("migration bench: %d hops, %d/%d delivered (%d lost, %d dup), "+
		"pause max %.2fms mean %.2fms, state %dB, replayed %d -> %s\n",
		rep.Commits, rep.Delivered, rep.Published, rep.Lost, rep.Duplicated,
		rep.PauseMaxMs, rep.PauseMeanMs, rep.StateBytesTotal, rep.ReplayedTotal, path)
	if !rep.Pass {
		return fmt.Errorf("migration bench FAILED: lost=%d dup=%d rollbacks=%d pause_max=%.2fms (budget %.0fms)",
			rep.Lost, rep.Duplicated, rep.Rollbacks, rep.PauseMaxMs, float64(migrationPauseBudgetMs))
	}
	return nil
}
