package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"sspd/internal/core"
	"sspd/internal/dissemination"
	"sspd/internal/engine"
	"sspd/internal/simnet"
	"sspd/internal/stream"
	"sspd/internal/workload"
)

// chaosSpec is the parsed -chaos flag: a comma-separated list of
// fault rules, e.g. "drop=0.05,dup=0.02,partition=500ms,crash=1,seed=7".
type chaosSpec struct {
	// Drop / Dup are per-message probabilities applied to every link.
	Drop float64 `json:"drop"`
	Dup  float64 `json:"dup"`
	// Jitter delays each delivery by a uniform random amount up to this.
	Jitter time.Duration `json:"jitter_ns"`
	// Partition cuts the source's link to entity e00 for this long.
	Partition time.Duration `json:"partition_ns"`
	// Crash blackholes this many entities (from the highest ID down),
	// exercising detection, tree repair, and query re-placement.
	Crash int `json:"crash"`
	// Seed makes every probabilistic draw reproducible.
	Seed int64 `json:"seed"`
}

func parseChaosSpec(s string) (chaosSpec, error) {
	spec := chaosSpec{Drop: 0.05, Crash: 1, Seed: 1}
	if s == "" {
		return spec, nil
	}
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return spec, fmt.Errorf("chaos: %q is not key=value", kv)
		}
		var err error
		switch k {
		case "drop":
			spec.Drop, err = strconv.ParseFloat(v, 64)
		case "dup":
			spec.Dup, err = strconv.ParseFloat(v, 64)
		case "jitter":
			spec.Jitter, err = time.ParseDuration(v)
		case "partition":
			spec.Partition, err = time.ParseDuration(v)
		case "crash":
			spec.Crash, err = strconv.Atoi(v)
		case "seed":
			spec.Seed, err = strconv.ParseInt(v, 10, 64)
		default:
			return spec, fmt.Errorf("chaos: unknown key %q", k)
		}
		if err != nil {
			return spec, fmt.Errorf("chaos: bad value for %s: %v", k, err)
		}
	}
	return spec, nil
}

// chaosPhase is one measurement window's delivery accounting: Expected
// is published×queries; Delivered counts unique (query, tuple) pairs;
// Duplicated counts extra deliveries of already-seen pairs; Lost is
// Expected − Delivered.
type chaosPhase struct {
	Published  int `json:"published"`
	Expected   int `json:"expected"`
	Delivered  int `json:"delivered"`
	Duplicated int `json:"duplicated"`
	Lost       int `json:"lost"`
}

// chaosReport is the schema of BENCH_robustness.json.
type chaosReport struct {
	Spec     chaosSpec `json:"spec"`
	Entities int       `json:"entities"`
	Queries  int       `json:"queries"`

	// Baseline: faults disabled; expected lossless.
	Baseline chaosPhase `json:"baseline"`
	// Chaos: faults active, entities crashing; losses are the faults'.
	Chaos chaosPhase `json:"chaos"`
	// Recovery: faults lifted, tree repaired; Lost must be 0 — the
	// self-healing acceptance criterion.
	Recovery chaosPhase `json:"recovery"`

	// DetectMs is blackhole -> crashed entities expelled and their
	// queries re-placed; ConvergeMs additionally waits for the interest
	// soft-state to re-converge (every query sees every probe tuple).
	DetectMs   float64 `json:"detect_ms"`
	ConvergeMs float64 `json:"converge_ms"`

	FaultsInjected map[string]int64 `json:"faults_injected"`
	ControlRetries int64            `json:"control_retries"`
	ControlGiveUps int64            `json:"control_giveups"`
}

// chaosCounts tracks per-query delivery multiplicity by tuple sequence.
type chaosCounts struct {
	mu   sync.Mutex
	seen []map[uint64]int
}

func (c *chaosCounts) record(q int, seq uint64) {
	c.mu.Lock()
	c.seen[q][seq]++
	c.mu.Unlock()
}

// phase tallies a window given the seqs published during it.
func (c *chaosCounts) phase(published []uint64) chaosPhase {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := chaosPhase{Published: len(published), Expected: len(published) * len(c.seen)}
	for _, per := range c.seen {
		for _, seq := range published {
			switch n := per[seq]; {
			case n >= 1:
				p.Delivered++
				p.Duplicated += n - 1
			}
		}
	}
	p.Lost = p.Expected - p.Delivered
	return p
}

func runChaosBench(specStr, path string) error {
	spec, err := parseChaosSpec(specStr)
	if err != nil {
		return err
	}
	const nEntities = 6
	if spec.Crash < 0 || spec.Crash >= nEntities {
		return fmt.Errorf("chaos: crash must be in [0, %d)", nEntities)
	}

	plan := simnet.NewFaultPlan(simnet.NewSim(nil), spec.Seed)
	defer plan.Close()
	catalog := workload.Catalog(100, 20)
	fed, err := core.New(plan, catalog, core.Options{
		Strategy:        dissemination.Balanced,
		Fanout:          2,
		ReliableControl: true,
		InterestRefresh: 25 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer fed.Close()
	if err := fed.AddSource("quotes", simnet.Point{},
		core.StreamRate{TuplesPerSec: 1000, BytesPerTuple: 60}); err != nil {
		return err
	}
	mini := func(name string, c *stream.Catalog) engine.Processor {
		return engine.NewMini(name, c)
	}
	for i := 0; i < nEntities; i++ {
		if err := fed.AddEntity(fmt.Sprintf("e%02d", i),
			simnet.Point{X: float64(10 + i*10)}, 2, mini); err != nil {
			return err
		}
	}
	if err := fed.Start(); err != nil {
		return err
	}
	counts := &chaosCounts{seen: make([]map[uint64]int, nEntities)}
	for q := 0; q < nEntities; q++ {
		counts.seen[q] = make(map[uint64]int)
		qi := q
		spec := engine.QuerySpec{
			ID:     fmt.Sprintf("q%d", q),
			Source: "quotes",
			Filters: []engine.FilterSpec{
				{Field: "price", Lo: 0, Hi: 1000, Cost: 1},
			},
			Load: 5,
		}
		if err := fed.SubmitQueryTo(spec, fmt.Sprintf("e%02d", qi),
			func(t stream.Tuple) { counts.record(qi, t.Seq) }); err != nil {
			return err
		}
	}
	fed.Settle(2 * time.Second)

	tick := workload.NewTicker(spec.Seed, 100, 1.2)
	publish := func(n, batch int) ([]uint64, error) {
		var seqs []uint64
		for sent := 0; sent < n; sent += batch {
			b := tick.Batch(batch)
			for _, t := range b {
				seqs = append(seqs, t.Seq)
			}
			if err := fed.Publish("quotes", b); err != nil {
				return seqs, err
			}
		}
		fed.Settle(5 * time.Second)
		return seqs, nil
	}

	rep := chaosReport{Spec: spec, Entities: nEntities, Queries: nEntities}

	// Phase 1: baseline, plan transparent.
	plan.SetEnabled(false)
	base, err := publish(500, 50)
	if err != nil {
		return err
	}
	rep.Baseline = counts.phase(base)

	// Phase 2: chaos. Link faults everywhere, a transient partition of
	// the source's e00 link, and crash the highest-numbered entities.
	if err := fed.EnableFailureDetection(20*time.Millisecond, 5); err != nil {
		return err
	}
	plan.SetDefaultFaults(simnet.LinkFaults{Drop: spec.Drop, Duplicate: spec.Dup, Jitter: spec.Jitter})
	if spec.Partition > 0 {
		plan.Partition("src:quotes", "e00:quotes")
		time.AfterFunc(spec.Partition, func() { plan.Heal("src:quotes", "e00:quotes") })
	}
	plan.SetEnabled(true)
	crashed := make([]string, 0, spec.Crash)
	crashStart := time.Now()
	for i := nEntities - spec.Crash; i < nEntities; i++ {
		id := fmt.Sprintf("e%02d", i)
		crashed = append(crashed, id)
		// Endpoint naming convention: "<id>/hb" heartbeat, "<id>:<stream>"
		// relay, "<id>/p<k>" processors.
		plan.Blackhole(simnet.NodeID(id+"/hb"), simnet.NodeID(id+":quotes"),
			simnet.NodeID(id+"/p0"), simnet.NodeID(id+"/p1"))
	}
	chaosSeqs, err := publish(500, 50)
	if err != nil {
		return err
	}
	// Wait for the self-healing pipeline: every crashed entity expelled
	// and its query re-placed onto a survivor.
	deadline := time.Now().Add(15 * time.Second)
	for {
		healed := len(fed.EntityIDs()) == nEntities-spec.Crash
		for i := nEntities - spec.Crash; healed && i < nEntities; i++ {
			host, ok := fed.QueryEntity(fmt.Sprintf("q%d", i))
			if !ok || contains(crashed, host) {
				healed = false
			}
		}
		if healed {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("chaos: crashed entities not expelled within deadline (entities=%v)", fed.EntityIDs())
		}
		time.Sleep(10 * time.Millisecond)
	}
	rep.DetectMs = float64(time.Since(crashStart).Microseconds()) / 1000
	rep.Chaos = counts.phase(chaosSeqs)

	// Phase 3: faults lift; wait for interest convergence, then the
	// recovery window must be lossless.
	plan.SetEnabled(false)
	if spec.Partition > 0 {
		plan.Heal("src:quotes", "e00:quotes")
	}
	fed.Settle(2 * time.Second)
	deadline = time.Now().Add(15 * time.Second)
	for {
		probe, err := publish(1, 1)
		if err != nil {
			return err
		}
		if p := counts.phase(probe); p.Lost == 0 {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("chaos: interest filters did not re-converge")
		}
		time.Sleep(20 * time.Millisecond)
	}
	rep.ConvergeMs = float64(time.Since(crashStart).Microseconds()) / 1000
	rec, err := publish(500, 50)
	if err != nil {
		return err
	}
	rep.Recovery = counts.phase(rec)

	rep.FaultsInjected = plan.InjectedTotals()
	rep.ControlRetries, _ = fed.ControlStats()
	rep.ControlGiveUps = fed.ControlGiveUps()

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("chaos bench (drop=%.2f dup=%.2f crash=%d seed=%d):\n",
		spec.Drop, spec.Dup, spec.Crash, spec.Seed)
	fmt.Printf("  baseline:  %d/%d delivered, %d dup, %d lost\n",
		rep.Baseline.Delivered, rep.Baseline.Expected, rep.Baseline.Duplicated, rep.Baseline.Lost)
	fmt.Printf("  chaos:     %d/%d delivered, %d dup, %d lost\n",
		rep.Chaos.Delivered, rep.Chaos.Expected, rep.Chaos.Duplicated, rep.Chaos.Lost)
	fmt.Printf("  recovery:  %d/%d delivered, %d dup, %d lost (detect %.0fms, converge %.0fms)\n",
		rep.Recovery.Delivered, rep.Recovery.Expected, rep.Recovery.Duplicated, rep.Recovery.Lost,
		rep.DetectMs, rep.ConvergeMs)
	fmt.Printf("  faults injected: %v; control retries %d, give-ups %d\n",
		rep.FaultsInjected, rep.ControlRetries, rep.ControlGiveUps)
	fmt.Printf("  wrote %s\n", path)
	if rep.Recovery.Lost != 0 {
		return fmt.Errorf("chaos: %d tuples silently lost AFTER recovery", rep.Recovery.Lost)
	}
	return nil
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
