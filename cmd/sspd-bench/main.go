// sspd-bench regenerates every table and figure of the reproduction (see
// DESIGN.md §4 and EXPERIMENTS.md). With no arguments it runs all
// experiments; pass experiment IDs (f1 t1 f2 f3 e1..e8) to run a subset.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sspd/internal/experiments"
)

var runners = map[string]func() experiments.Table{
	"f1":  experiments.Figure1TwoLayer,
	"t1":  experiments.Table1CooperationModes,
	"f2":  experiments.Figure2QueryGraph,
	"f3":  experiments.Figure3Delegation,
	"e1":  experiments.E1DisseminationScalability,
	"e2":  experiments.E2EarlyFiltering,
	"e3":  experiments.E3CoordinatorTree,
	"e4":  experiments.E4LoadDistribution,
	"e5":  experiments.E5AdaptiveRepartitioning,
	"e6":  experiments.E6OperatorPlacement,
	"e7":  experiments.E7AdaptiveOrdering,
	"e8":  experiments.E8CouplingTradeoff,
	"e9":  experiments.E9SchedulingPolicy,
	"e10": experiments.E10InterestAggregation,
	"e11": experiments.E11TreeReorganization,
	"e12": experiments.E12AdaptiveRouting,
}

var order = []string{"f1", "t1", "f2", "f3", "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12"}

func main() {
	list := flag.Bool("list", false, "list experiment IDs and exit")
	obs := flag.String("observability", "", "run the observability overhead bench and write its JSON report to this file")
	tuplepath := flag.String("tuplepath", "", "run the hot-tuple-path bench (codec/match/relay) and write its JSON report to this file")
	statsplane := flag.String("statsplane", "", "run the stats-plane overhead bench and append its results into this JSON report (typically BENCH_observability.json)")
	engineobs := flag.String("engineobs", "", "run the engine-introspection overhead bench and append its results into this JSON report (typically BENCH_observability.json)")
	chaos := flag.String("chaos", "", "run the chaos/recovery bench with this fault spec, e.g. drop=0.05,dup=0.02,partition=500ms,crash=1,seed=7")
	chaosOut := flag.String("chaos-out", "BENCH_robustness.json", "output path for the chaos bench JSON report")
	migration := flag.String("migration", "", "run the live-migration bench and write its JSON report to this file (non-zero exit on tuple loss or pause over budget)")
	latencyOut := flag.String("latency", "", "run the latency-attribution bench (tuple-path overhead + federated-P99 accuracy) and write its JSON report to this file")
	recoveryOut := flag.String("recovery", "", "run the checkpoint/crash-recovery bench (hard kill, quorum restore, bounded replay) and write its JSON report to this file (non-zero exit on committed-result loss or budget breach)")
	engineOut := flag.String("engine", "", "run the shard-engine bench (vectorized shard engine vs. asynchronous baseline, shard scaling sweep) and write its JSON report to this file (non-zero exit below the 5x speedup bar)")
	adaptationOut := flag.String("adaptation", "", "run the adaptation-module bench (tuple-routed vs. static downstream selection under a selectivity-drifting workload) and write its JSON report to this file (non-zero exit on tuple loss or when routing misses the noise-calibrated margin)")
	flag.Parse()
	if *list {
		for _, id := range order {
			fmt.Println(id)
		}
		return
	}
	if *obs != "" {
		if err := runObservabilityBench(*obs); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *tuplepath != "" {
		if err := runTuplepathBench(*tuplepath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *statsplane != "" {
		if err := runStatsplaneBench(*statsplane); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *engineobs != "" {
		if err := runEngineobsBench(*engineobs); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *chaos != "" {
		if err := runChaosBench(*chaos, *chaosOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *migration != "" {
		if err := runMigrationBench(*migration); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *latencyOut != "" {
		if err := runLatencyBench(*latencyOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *recoveryOut != "" {
		if err := runRecoveryBench(*recoveryOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *engineOut != "" {
		if err := runEngineBench(*engineOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *adaptationOut != "" {
		if err := runAdaptationBench(*adaptationOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	ids := flag.Args()
	if len(ids) == 0 {
		ids = order
	}
	for _, raw := range ids {
		id := strings.ToLower(raw)
		run, ok := runners[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", raw)
			os.Exit(2)
		}
		start := time.Now()
		table := run()
		table.Fprint(os.Stdout)
		fmt.Printf("  [%s completed in %v]\n\n", strings.ToUpper(id), time.Since(start).Round(time.Millisecond))
	}
}
