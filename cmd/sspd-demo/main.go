// sspd-demo runs a complete two-layer federation over real TCP sockets
// (loopback): every dissemination hop, interest registration, fragment
// feed, and query allocation crosses the kernel's network stack — the
// "deploy onto real network environment" step the paper planned. The
// identical code runs on the simulated transport in tests and benches.
package main

import (
	"flag"
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"sspd"
)

func main() {
	entities := flag.Int("entities", 4, "number of entities")
	procs := flag.Int("procs", 2, "processors per entity")
	queries := flag.Int("queries", 20, "queries to submit")
	batches := flag.Int("batches", 20, "quote batches to publish")
	batchSize := flag.Int("batch", 100, "tuples per batch")
	flag.Parse()

	net := sspd.NewTCPNet() // real sockets
	defer net.Close()
	catalog := sspd.NewCatalog(100, 20)
	fed, err := sspd.NewFederation(net, catalog, sspd.Options{
		Strategy: sspd.Locality,
		Fanout:   3,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer fed.Close()

	if err := fed.AddSource("quotes", sspd.Point{},
		sspd.StreamRate{TuplesPerSec: 1000, BytesPerTuple: 60}); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < *entities; i++ {
		id := fmt.Sprintf("e%02d", i)
		pos := sspd.Point{X: float64(10 + i*15), Y: float64(i%3) * 20}
		if err := fed.AddEntity(id, pos, *procs, nil); err != nil {
			log.Fatal(err)
		}
	}
	if err := fed.Start(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("federation up over TCP: %d entities × %d processors\n", *entities, *procs)

	tick := sspd.NewTicker(time.Now().UnixNano()%1000, 100, 1.3)
	qgen := sspd.NewQueryGen(42, tick.Symbols(), 4, 0.3)
	var results atomic.Int64
	for i, spec := range qgen.Specs(*queries) {
		origin := sspd.Point{X: float64(i * 7 % 80), Y: float64(i * 13 % 60)}
		entity, err := fed.SubmitQuery(spec, origin, func(sspd.Tuple) {
			results.Add(1)
		})
		if err != nil {
			log.Fatal(err)
		}
		if i < 5 {
			fmt.Printf("  %s -> %s\n", spec.ID, entity)
		}
	}
	fmt.Printf("submitted %d queries via the coordinator tree\n", *queries)
	time.Sleep(300 * time.Millisecond) // let interest registrations settle

	start := time.Now()
	for b := 0; b < *batches; b++ {
		if err := fed.Publish("quotes", tick.Batch(*batchSize)); err != nil {
			log.Fatal(err)
		}
	}
	// Wait for results to stop arriving.
	var last int64 = -1
	for {
		time.Sleep(200 * time.Millisecond)
		cur := results.Load()
		if cur == last {
			break
		}
		last = cur
	}
	elapsed := time.Since(start)

	tr := net.Traffic()
	published := *batches * *batchSize
	fmt.Printf("\npublished %d quotes in %v (%.0f tuples/s through real sockets)\n",
		published, elapsed.Round(time.Millisecond), float64(published)/elapsed.Seconds())
	fmt.Printf("results delivered: %d\n", results.Load())
	fmt.Printf("TCP traffic: %d messages, %d KB\n", tr.TotalMessages(), tr.TotalBytes()/1024)
	fmt.Println("\nledger:")
	for _, c := range fed.Ledger().Charges() {
		fmt.Printf("  %-5s %v\n", c.Entity, c.Execution.Round(time.Millisecond))
	}
}
