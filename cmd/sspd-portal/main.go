// sspd-portal is the paper's "central access portal" as an interactive
// console: it boots a demo federation (quotes + trades over simulated or
// TCP transport), streams live market data through it in the background,
// and accepts sspdql continuous queries on stdin. Results print as they
// arrive, tagged by query.
//
// Commands:
//
//	FROM quotes WHERE ... [AGGREGATE ...]   submit a continuous query
//	\list                                   list active queries and hosts
//	\drop <id>                              withdraw a query
//	\stats                                  federation statistics
//	\cluster                                cluster health from the root stats digest
//	\engine                                 shard table: occupancy, drops, kernel hit-rate
//	\events [kind]                          recent structured events (optionally filtered)
//	\rebalance                              run a hybrid rebalance
//	\save <file> / \load <file>             snapshot / restore the query set
//	\quit                                   exit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"sspd"
	"sspd/internal/httpapi"
)

func main() {
	entities := flag.Int("entities", 4, "number of entities")
	procs := flag.Int("procs", 2, "processors per entity")
	rate := flag.Int("rate", 200, "quotes published per second")
	useTCP := flag.Bool("tcp", false, "use real TCP sockets instead of the simulated network")
	maxPrint := flag.Int("print", 5, "max results printed per query per second")
	httpAddr := flag.String("http", "", "also serve the JSON API on this address (e.g. :8080)")
	traceEvery := flag.Int("trace", 0, "trace 1 in N published tuples (0 disables; spans at GET /traces)")
	engineKind := flag.String("engine", "", `engine for all entities: "async" (default), "mini", "sched", or "shard"`)
	profDir := flag.String("profdir", "", "store continuous-profiling pprof captures in this directory (serves GET /profiles)")
	route := flag.Bool("route", false, "enable Adaptation Module tuple routing: queries split into 3 fragments with replicated middle stages (table at GET /routing; pair with -trace for measured delays)")
	flag.Parse()

	var transport sspd.Transport
	if *useTCP {
		transport = sspd.NewTCPNet()
	} else {
		transport = sspd.NewSimNet(nil)
	}
	defer transport.Close()

	catalog := sspd.NewCatalog(100, 20)
	opts := sspd.Options{
		Strategy: sspd.Locality,
		Fanout:   3,
		Engine:   *engineKind,
	}
	if *route {
		opts.EnableTupleRouting = true
		opts.FragmentsPerQuery = 3
	}
	fed, err := sspd.NewFederation(transport, catalog, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer fed.Close()
	if err := fed.AddSource("quotes", sspd.Point{},
		sspd.StreamRate{TuplesPerSec: float64(*rate), BytesPerTuple: 60}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := fed.AddSource("trades", sspd.Point{X: 5},
		sspd.StreamRate{TuplesPerSec: float64(*rate) / 2, BytesPerTuple: 40}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for i := 0; i < *entities; i++ {
		id := fmt.Sprintf("e%02d", i)
		pos := sspd.Point{X: float64(10 + i*17%90), Y: float64(5 + i*29%90)}
		if err := fed.AddEntity(id, pos, *procs, nil); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if err := fed.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *traceEvery > 0 {
		if _, err := fed.EnableTracing(*traceEvery, 2048); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		// Latency attribution rides the sampled spans and the stats
		// ticks; interval 0 means the SLO watchdog evaluates once per
		// stats period (enabled below).
		if err := fed.EnableLatencyAttribution(0); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("tracing 1 in %d tuples (latency attribution at GET /cluster/latency)\n", *traceEvery)
	}
	if *route {
		fmt.Println("tuple routing enabled (Adaptation Module; table at GET /routing)")
	}

	// Background market: publish batches at ~rate tuples/second.
	stop := make(chan struct{})
	go func() {
		tick := sspd.NewTicker(time.Now().UnixNano(), 100, 1.3)
		interval := 100 * time.Millisecond
		per := *rate / 10
		if per < 1 {
			per = 1
		}
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				_ = fed.Publish("quotes", tick.Batch(per))
				var trades sspd.Batch
				for i := 0; i < per/2; i++ {
					trades = append(trades, tick.NextTrade())
				}
				if len(trades) > 0 {
					_ = fed.Publish("trades", trades)
				}
			case <-stop:
				return
			}
		}
	}()
	defer close(stop)

	// The stats plane powers \cluster, /cluster/metrics, and the ops
	// view; it ticks off the tuple path, so keep it on whenever the
	// portal is up.
	statsPeriod := 2 * time.Second
	if err := fed.EnableStatsPlane(statsPeriod); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// The engine introspection plane powers \engine, /cluster/engine,
	// and the backpressure watchdog; it rides the stats ticks.
	if err := fed.EnableEngineIntrospection(statsPeriod); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// Continuous profiling is opt-in: it writes pprof files to disk.
	if *profDir != "" {
		if err := fed.EnableProfiling(*profDir, 30*time.Second); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if *httpAddr != "" {
		api, err := httpapi.New(fed, sspd.Point{X: 50, Y: 50})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		go func() {
			if err := http.ListenAndServe(*httpAddr, api.Handler()); err != nil {
				fmt.Fprintln(os.Stderr, "http:", err)
			}
		}()
		fmt.Printf("JSON API listening on %s (ops view at http://localhost%s/cluster)\n",
			*httpAddr, *httpAddr)
	}

	fmt.Printf("sspd portal: %d entities × %d processors, %d quotes/s (transport: %T)\n",
		*entities, *procs, *rate, transport)
	fmt.Println(`type an sspdql query ("FROM quotes WHERE price <= 200"), or \list \drop \stats \rebalance \quit`)

	nextID := 0
	states := map[string]*qstate{}

	scanner := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !scanner.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(scanner.Text())
		switch {
		case line == "":
			continue
		case line == `\quit` || line == `\q`:
			return
		case line == `\list`:
			for id, st := range states {
				if host, ok := fed.QueryEntity(id); ok {
					fmt.Printf("  %-8s on %-4s results=%d\n", id, host, st.count.Load())
				}
			}
		case line == `\stats`:
			tr := transport.Traffic()
			fmt.Printf("  entities=%d queries=%d traffic=%dKB msgs=%d\n",
				len(fed.EntityIDs()), fed.NumQueries(),
				tr.TotalBytes()/1024, tr.TotalMessages())
			for _, c := range fed.Ledger().Charges() {
				fmt.Printf("  %-4s charged %v\n", c.Entity, c.Execution.Round(time.Millisecond))
			}
		case line == `\cluster`:
			rows, root, ok := fed.ClusterStats()
			if !ok {
				fmt.Println("  no digest at the root yet (stats federate every", statsPeriod, ")")
				continue
			}
			fmt.Printf("  digest root: %s\n", root)
			fmt.Printf("  %-6s %-8s %6s %7s %7s %6s\n", "entity", "health", "load", "queries", "pr_max", "age")
			for _, h := range fed.ClusterHealth() {
				state := "healthy"
				switch {
				case !h.Up:
					state = "down"
				case !h.Fresh:
					state = "stale"
				}
				age := "—"
				if h.AgeSeconds >= 0 {
					age = fmt.Sprintf("%.1fs", h.AgeSeconds)
				}
				fmt.Printf("  %-6s %-8s %6.2f %7d %7.3f %6s\n",
					h.Entity, state, h.Load, h.Queries, h.PRMax, age)
			}
			var bytes, msgs int64
			for _, r := range rows {
				for _, ss := range r.Streams {
					bytes += ss.Bytes
					msgs += ss.Messages
				}
			}
			fmt.Printf("  relay traffic: %dKB in %d messages\n", bytes/1024, msgs)
		case line == `\engine`:
			view, ok := fed.ClusterEngine()
			if !ok {
				fmt.Println("  engine introspection not enabled")
				continue
			}
			fmt.Printf("  drop rate %.2f%%  ring occ p99 %.1f%%", 100*view.DropRate, 100*view.RingOccP99)
			if view.Saturated {
				fmt.Print("  SATURATED")
			}
			fmt.Println()
			fmt.Printf("  %-6s %-10s %5s %6s %5s %9s %8s %7s %7s\n",
				"entity", "engine", "shard", "occ", "hw", "tuples", "dropped", "kernel", "select")
			for _, ee := range view.Entities {
				for _, sh := range ee.Stats.Shards {
					kernel := "—"
					if sh.Tuples > 0 {
						kernel = fmt.Sprintf("%.1f%%", 100*sh.KernelShare())
					}
					sel := "—"
					if sh.KernelIn > 0 {
						sel = fmt.Sprintf("%.1f%%", 100*sh.Selectivity())
					}
					fmt.Printf("  %-6s %-10s %5d %6d %5d %9d %8d %7s %7s\n",
						ee.Entity, sh.Engine, sh.Shard, sh.Occupancy, sh.HighWater,
						sh.Tuples, sh.Dropped, kernel, sel)
				}
				if len(ee.Stats.Shards) == 0 {
					fmt.Printf("  %-6s (no introspectable engine)\n", ee.Entity)
				}
			}
		case line == `\events` || strings.HasPrefix(line, `\events `):
			kind := strings.TrimSpace(strings.TrimPrefix(line, `\events`))
			events := fed.Journal().Recent(20)
			shown := 0
			for _, e := range events {
				if kind != "" && !sspd.EventKindMatches(e.Kind, kind) {
					continue
				}
				fmt.Printf("  #%-5d %-8s %-20s %-6s %s\n",
					e.Seq, e.Level, e.Kind, e.Node, e.Msg)
				shown++
			}
			if shown == 0 {
				fmt.Println("  no matching events")
			}
		case line == `\rebalance`:
			moved, err := fed.Rebalance(sspd.HybridRepartitioner{})
			if err != nil {
				fmt.Println("  error:", err)
				continue
			}
			fmt.Printf("  migrated %d queries\n", moved)
		case strings.HasPrefix(line, `\save `):
			path := strings.TrimSpace(strings.TrimPrefix(line, `\save `))
			data, err := fed.ExportQueries()
			if err != nil {
				fmt.Println("  error:", err)
				continue
			}
			if err := os.WriteFile(path, data, 0o644); err != nil {
				fmt.Println("  error:", err)
				continue
			}
			fmt.Printf("  saved %d bytes to %s\n", len(data), path)
		case strings.HasPrefix(line, `\load `):
			path := strings.TrimSpace(strings.TrimPrefix(line, `\load `))
			data, err := os.ReadFile(path)
			if err != nil {
				fmt.Println("  error:", err)
				continue
			}
			added, err := fed.ImportQueries(data, sspd.Point{X: 50, Y: 50})
			if err != nil {
				fmt.Println("  error:", err)
				continue
			}
			fmt.Printf("  restored %d queries (results not re-subscribed)\n", added)
		case strings.HasPrefix(line, `\drop `):
			id := strings.TrimSpace(strings.TrimPrefix(line, `\drop `))
			if err := fed.RemoveQuery(id); err != nil {
				fmt.Println("  error:", err)
				continue
			}
			delete(states, id)
			fmt.Printf("  dropped %s\n", id)
		case strings.HasPrefix(line, `\`):
			fmt.Println("  unknown command")
		default:
			nextID++
			id := fmt.Sprintf("q%03d", nextID)
			spec, err := sspd.ParseQuery(id, line)
			if err != nil {
				fmt.Println("  parse error:", err)
				nextID--
				continue
			}
			st := &qstate{}
			states[id] = st
			budget := int64(*maxPrint)
			entity, err := fed.SubmitQuery(spec, sspd.Point{X: 50, Y: 50}, func(t sspd.Tuple) {
				n := st.count.Add(1)
				if st.window.Add(1) <= budget {
					fmt.Printf("  [%s #%d] %v\n", id, n, t)
				}
			})
			if err != nil {
				fmt.Println("  error:", err)
				delete(states, id)
				nextID--
				continue
			}
			// Reset the print window every second.
			go func() {
				t := time.NewTicker(time.Second)
				defer t.Stop()
				for range t.C {
					if _, ok := fed.QueryEntity(id); !ok {
						return
					}
					st.window.Store(0)
				}
			}()
			fmt.Printf("  %s -> %s   (%s)\n", id, entity, sspd.FormatQuery(spec))
		}
	}
}

// qstate tracks one query's console bookkeeping.
type qstate struct {
	count  atomic.Int64
	window atomic.Int64 // results printed in the current second
}
