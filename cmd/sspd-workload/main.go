// sspd-workload inspects the synthetic workload generators: sample
// tuples, symbol-popularity skew, and the interest-overlap structure of
// a generated query stream (the input to the query-graph partitioner).
package main

import (
	"flag"
	"fmt"
	"sort"

	"sspd"
	"sspd/internal/core"
	"sspd/internal/querygraph"
	"sspd/internal/workload"
)

func main() {
	symbols := flag.Int("symbols", 100, "symbol universe size")
	skew := flag.Float64("skew", 1.3, "zipf skew (>1)")
	tuples := flag.Int("tuples", 5000, "tuples to sample")
	queries := flag.Int("queries", 60, "queries to generate")
	groups := flag.Int("groups", 4, "interest communities")
	overlap := flag.Float64("overlap", 0.3, "cross-community overlap probability")
	seed := flag.Int64("seed", 42, "generator seed")
	flag.Parse()

	tick := sspd.NewTicker(*seed, *symbols, *skew)
	fmt.Printf("ticker: %d symbols, skew %.2f — sample:\n", *symbols, *skew)
	for i := 0; i < 5; i++ {
		fmt.Printf("  %v\n", tick.Next())
	}

	counts := map[string]int{}
	for i := 0; i < *tuples; i++ {
		counts[tick.Next().Value(0).AsString()]++
	}
	type sc struct {
		sym string
		n   int
	}
	var top []sc
	for s, n := range counts {
		top = append(top, sc{s, n})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].n > top[j].n })
	fmt.Printf("\nsymbol popularity over %d tuples (top 8 of %d seen):\n", *tuples, len(top))
	for i := 0; i < 8 && i < len(top); i++ {
		fmt.Printf("  %-6s %5d (%.1f%%)\n", top[i].sym, top[i].n,
			100*float64(top[i].n)/float64(*tuples))
	}

	catalog := workload.Catalog(*symbols, 20)
	qgen := sspd.NewQueryGen(*seed, tick.Symbols(), *groups, *overlap)
	specs := qgen.Specs(*queries)
	fmt.Printf("\nquery stream: %d queries in %d interest groups (overlap %.2f) — sample:\n",
		*queries, *groups, *overlap)
	scQuotes, _ := catalog.Lookup("quotes")
	for i := 0; i < 3; i++ {
		in := specs[i].Interest("quotes", scQuotes)
		fmt.Printf("  %s load=%.1f interest=%s (sel %.4f)\n",
			specs[i].ID, specs[i].Load, in, in.Selectivity(scQuotes))
	}

	rates := map[string]core.StreamRate{
		"quotes": {TuplesPerSec: 1000, BytesPerTuple: 60},
		"trades": {TuplesPerSec: 500, BytesPerTuple: 40},
	}
	g := core.BuildQueryGraph(specs, catalog, rates, 0)
	edges, weight := 0, 0.0
	for _, v := range g.Vertices() {
		g.Neighbors(v, func(nb querygraph.VertexID, w float64) {
			if v < nb {
				edges++
				weight += w
			}
		})
	}
	fmt.Printf("\nquery graph: %d vertices, %d edges, total overlap weight %.0f B/s\n",
		g.NumVertices(), edges, weight)
	for _, k := range []int{2, 4, 8} {
		p, err := querygraph.Partition(g, querygraph.Options{K: k})
		if err != nil {
			panic(err)
		}
		fmt.Printf("  k=%d: edge cut %.0f B/s, imbalance %.2f\n",
			k, g.EdgeCut(p), querygraph.Imbalance(g.PartitionWeights(p, k)))
	}
}
