// Package obslog is sspd's structured observability log: a leveled,
// key-value logger backed by log/slog plus a bounded in-memory flight
// recorder (the Journal). Components emit *typed events* — a dotted
// kind from the taxonomy below, the originating node, a message, and
// key-value fields. Every event lands in the journal regardless of the
// text level, so a chaos run's full failure story (suspicion →
// confirmation → tree repair → re-placement) is reconstructable from
// GET /events even when stderr only shows warnings.
//
// Event-kind taxonomy (prefix-filterable at the API):
//
//	coordinator.split / coordinator.merge / coordinator.recenter
//	entity.join / entity.leave / entity.fail / entity.kill
//	detector.suspect / detector.confirm / detector.expel_failed
//	control.giveup
//	tree.repair
//	migration.plan / migration.start / migration.snapshot
//	migration.commit / migration.rollback / migration.place / migration.decide
//	ckpt.enable / ckpt.write / ckpt.replicate / ckpt.corrupt / ckpt.error
//	recovery.start / recovery.restore / recovery.done
//	ledger.error
//	link.down / link.up
//	decode.bad / decode.ok
//	stats.enable
//	slo.watch / slo.breach / slo.clear
//	engine.watch / engine.saturated / engine.recovered
//	profile.enable / profile.captured
//	am.route / am.reorder / am.explore
package obslog

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level aliases slog's levels so callers need only this package.
type Level = slog.Level

// Levels, re-exported for wiring convenience.
const (
	LevelDebug = slog.LevelDebug
	LevelInfo  = slog.LevelInfo
	LevelWarn  = slog.LevelWarn
	LevelError = slog.LevelError
)

// DefaultJournalCapacity bounds the flight recorder when the caller
// passes no explicit size.
const DefaultJournalCapacity = 1024

// Event is one typed observability event. Seq is assigned by the
// journal at append time and is strictly increasing, so "since" cursors
// and causal ordering both fall out of it.
type Event struct {
	Seq    uint64            `json:"seq"`
	Time   time.Time         `json:"ts"`
	Level  string            `json:"level"`
	Kind   string            `json:"kind"`
	Node   string            `json:"node,omitempty"`
	Msg    string            `json:"msg"`
	Fields map[string]string `json:"fields,omitempty"`
}

// ValidKind reports whether s is a legal event kind: one or more
// non-empty dot-separated segments of [a-z0-9_-]. The /events endpoint
// uses it to reject malformed filters with 400 instead of silently
// matching nothing.
func ValidKind(s string) bool {
	if s == "" {
		return false
	}
	for _, seg := range strings.Split(s, ".") {
		if seg == "" {
			return false
		}
		for _, r := range seg {
			if (r < 'a' || r > 'z') && (r < '0' || r > '9') && r != '_' && r != '-' {
				return false
			}
		}
	}
	return true
}

// KindMatches reports whether an event kind matches a filter: exact
// match, or prefix match on a dot boundary ("detector" matches
// "detector.suspect" but not "detectors.x"). An empty filter matches
// everything.
func KindMatches(kind, filter string) bool {
	if filter == "" || kind == filter {
		return true
	}
	return len(kind) > len(filter) && strings.HasPrefix(kind, filter) && kind[len(filter)] == '.'
}

// Journal is the bounded in-memory flight recorder: a ring of the most
// recent events. Appends are O(1); old events are dropped (and counted)
// once capacity is reached. Safe for concurrent use.
type Journal struct {
	mu      sync.Mutex
	ring    []Event
	start   int // index of the oldest event
	n       int // events currently held
	nextSeq uint64
	dropped int64
}

// NewJournal returns a journal holding up to capacity events
// (<= 0 uses DefaultJournalCapacity).
func NewJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = DefaultJournalCapacity
	}
	return &Journal{ring: make([]Event, 0, capacity), nextSeq: 1}
}

// Append stamps the event's Seq (and Time, when zero) and records it,
// evicting the oldest event when full. It returns the assigned Seq.
func (j *Journal) Append(e Event) uint64 {
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	j.mu.Lock()
	e.Seq = j.nextSeq
	j.nextSeq++
	if j.n < cap(j.ring) {
		j.ring = append(j.ring, e)
		j.n++
	} else {
		j.ring[j.start] = e
		j.start = (j.start + 1) % cap(j.ring)
		j.dropped++
	}
	j.mu.Unlock()
	return e.Seq
}

// Since returns the buffered events with Seq > seq whose kind matches
// the filter (see KindMatches; "" matches all), oldest first.
func (j *Journal) Since(seq uint64, kindFilter string) []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []Event
	for i := 0; i < j.n; i++ {
		e := j.ring[(j.start+i)%cap(j.ring)]
		if e.Seq > seq && KindMatches(e.Kind, kindFilter) {
			out = append(out, e)
		}
	}
	return out
}

// Recent returns up to n of the newest events, oldest first.
func (j *Journal) Recent(n int) []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	if n <= 0 || n > j.n {
		n = j.n
	}
	out := make([]Event, 0, n)
	for i := j.n - n; i < j.n; i++ {
		out = append(out, j.ring[(j.start+i)%cap(j.ring)])
	}
	return out
}

// Len returns the number of buffered events.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.n
}

// LastSeq returns the most recently assigned Seq (0 before any append).
func (j *Journal) LastSeq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.nextSeq - 1
}

// Dropped returns how many events the ring has evicted — the signal to
// size the recorder up when a postmortem came back truncated.
func (j *Journal) Dropped() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dropped
}

// Logger is the leveled key-value logger: every event is appended to
// the journal unconditionally, and rendered through the slog handler
// when it clears the handler's level. One Logger is shared by a whole
// federation; components receive it by reference.
type Logger struct {
	s *slog.Logger
	j *Journal
}

// New builds a logger over an explicit slog handler and journal
// (either may be nil: a nil handler keeps events journal-only, a nil
// journal makes the logger text-only).
func New(j *Journal, h slog.Handler) *Logger {
	l := &Logger{j: j}
	if h != nil {
		l.s = slog.New(h)
	}
	return l
}

// NewText builds a logger writing slog text lines at or above min to w,
// with a journal of the given capacity. This is the federation default:
// min = LevelWarn keeps stderr as quiet as the old once-per-transition
// log.Printf call sites, while the journal still records every event.
func NewText(w io.Writer, min Level, journalCapacity int) *Logger {
	return New(NewJournal(journalCapacity),
		slog.NewTextHandler(w, &slog.HandlerOptions{Level: min}))
}

// Journal exposes the flight recorder (nil for text-only loggers).
func (l *Logger) Journal() *Journal {
	if l == nil {
		return nil
	}
	return l.j
}

// Event records one typed event: journaled always, logged through slog
// when the handler's level admits it. kv is alternating key, value
// pairs; values are stringified with fmt.Sprint for the journal and
// passed through untouched to slog.
func (l *Logger) Event(level Level, kind, node, msg string, kv ...any) {
	if l == nil {
		return
	}
	if l.j != nil {
		e := Event{Level: levelName(level), Kind: kind, Node: node, Msg: msg}
		if len(kv) > 0 {
			e.Fields = make(map[string]string, len(kv)/2)
			for i := 0; i+1 < len(kv); i += 2 {
				e.Fields[fmt.Sprint(kv[i])] = fmt.Sprint(kv[i+1])
			}
		}
		l.j.Append(e)
	}
	if l.s != nil {
		args := make([]any, 0, len(kv)+4)
		args = append(args, "kind", kind)
		if node != "" {
			args = append(args, "node", node)
		}
		args = append(args, kv...)
		l.s.Log(context.Background(), level, msg, args...)
	}
}

// Debug records a debug-level event.
func (l *Logger) Debug(kind, node, msg string, kv ...any) {
	l.Event(LevelDebug, kind, node, msg, kv...)
}

// Info records an info-level event.
func (l *Logger) Info(kind, node, msg string, kv ...any) {
	l.Event(LevelInfo, kind, node, msg, kv...)
}

// Warn records a warning-level event.
func (l *Logger) Warn(kind, node, msg string, kv ...any) {
	l.Event(LevelWarn, kind, node, msg, kv...)
}

// Error records an error-level event.
func (l *Logger) Error(kind, node, msg string, kv ...any) {
	l.Event(LevelError, kind, node, msg, kv...)
}

func levelName(l Level) string {
	switch {
	case l >= LevelError:
		return "error"
	case l >= LevelWarn:
		return "warn"
	case l >= LevelInfo:
		return "info"
	default:
		return "debug"
	}
}

// defaultLogger serves components constructed without an explicit
// logger (bare relays in tests, benchmarks): warnings and errors to
// stderr, a small shared journal.
var defaultLogger atomic.Pointer[Logger]

// Default returns the process-wide fallback logger.
func Default() *Logger {
	if l := defaultLogger.Load(); l != nil {
		return l
	}
	l := NewText(os.Stderr, LevelWarn, 256)
	if defaultLogger.CompareAndSwap(nil, l) {
		return l
	}
	return defaultLogger.Load()
}

// SetDefault replaces the process-wide fallback logger (nil restores
// the built-in one lazily).
func SetDefault(l *Logger) {
	defaultLogger.Store(l)
}
