package obslog

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestJournalAppendAssignsMonotonicSeq(t *testing.T) {
	j := NewJournal(8)
	for i := 0; i < 5; i++ {
		seq := j.Append(Event{Kind: "entity.join", Msg: fmt.Sprintf("e%d", i)})
		if seq != uint64(i+1) {
			t.Fatalf("append %d: seq = %d, want %d", i, seq, i+1)
		}
	}
	if got := j.LastSeq(); got != 5 {
		t.Fatalf("LastSeq = %d, want 5", got)
	}
	if got := j.Len(); got != 5 {
		t.Fatalf("Len = %d, want 5", got)
	}
	evs := j.Since(0, "")
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("events out of order: %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
		if evs[i].Time.IsZero() {
			t.Fatalf("event %d has zero time", i)
		}
	}
}

func TestJournalRingEviction(t *testing.T) {
	j := NewJournal(4)
	for i := 1; i <= 10; i++ {
		j.Append(Event{Kind: "k", Msg: fmt.Sprintf("m%d", i)})
	}
	if got := j.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := j.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	evs := j.Since(0, "")
	if len(evs) != 4 || evs[0].Seq != 7 || evs[3].Seq != 10 {
		t.Fatalf("survivors = %+v, want seqs 7..10", evs)
	}
}

func TestJournalSinceCursorAndKindFilter(t *testing.T) {
	j := NewJournal(16)
	j.Append(Event{Kind: "detector.suspect", Node: "e1"})
	j.Append(Event{Kind: "detector.confirm", Node: "e1"})
	j.Append(Event{Kind: "tree.repair", Node: "e2"})
	j.Append(Event{Kind: "detectors.fake", Node: "e3"}) // must NOT match prefix "detector"

	if got := len(j.Since(0, "detector")); got != 2 {
		t.Fatalf("Since(0, detector) = %d events, want 2 (dot-boundary prefix)", got)
	}
	if got := len(j.Since(0, "detector.confirm")); got != 1 {
		t.Fatalf("exact kind match = %d events, want 1", got)
	}
	evs := j.Since(2, "")
	if len(evs) != 2 || evs[0].Seq != 3 {
		t.Fatalf("Since(2) = %+v, want seqs 3,4", evs)
	}
	if got := len(j.Since(j.LastSeq(), "")); got != 0 {
		t.Fatalf("Since(last) = %d events, want 0", got)
	}
}

func TestJournalRecent(t *testing.T) {
	j := NewJournal(8)
	for i := 1; i <= 6; i++ {
		j.Append(Event{Kind: "k"})
	}
	evs := j.Recent(3)
	if len(evs) != 3 || evs[0].Seq != 4 || evs[2].Seq != 6 {
		t.Fatalf("Recent(3) = %+v, want seqs 4,5,6", evs)
	}
	if got := len(j.Recent(0)); got != 6 {
		t.Fatalf("Recent(0) = %d, want all 6", got)
	}
}

func TestValidKind(t *testing.T) {
	valid := []string{"tree.repair", "detector", "link.down", "a.b.c", "x_1-2"}
	invalid := []string{"", ".", "a.", ".a", "a..b", "Tree.Repair", "a b", "a/b"}
	for _, k := range valid {
		if !ValidKind(k) {
			t.Errorf("ValidKind(%q) = false, want true", k)
		}
	}
	for _, k := range invalid {
		if ValidKind(k) {
			t.Errorf("ValidKind(%q) = true, want false", k)
		}
	}
}

func TestLoggerTeesToJournalAndRespectsTextLevel(t *testing.T) {
	var buf bytes.Buffer
	l := NewText(&buf, LevelWarn, 16)
	l.Info("entity.join", "e1", "entity joined", "streams", 3)
	l.Warn("link.down", "e1", "send failed", "link", "e2:s0", "err", "boom")

	j := l.Journal()
	if got := j.Len(); got != 2 {
		t.Fatalf("journal holds %d events, want 2 (info must be journaled)", got)
	}
	evs := j.Since(0, "")
	if evs[0].Level != "info" || evs[0].Kind != "entity.join" || evs[0].Fields["streams"] != "3" {
		t.Fatalf("journaled info event wrong: %+v", evs[0])
	}
	if evs[1].Fields["link"] != "e2:s0" {
		t.Fatalf("journaled warn fields wrong: %+v", evs[1])
	}

	out := buf.String()
	if strings.Contains(out, "entity joined") {
		t.Fatalf("info line leaked to text output at warn level:\n%s", out)
	}
	if !strings.Contains(out, "send failed") || !strings.Contains(out, "kind=link.down") {
		t.Fatalf("warn line missing from text output:\n%s", out)
	}
}

func TestNilLoggerIsSafe(t *testing.T) {
	var l *Logger
	l.Warn("link.down", "e1", "should not panic")
	if l.Journal() != nil {
		t.Fatal("nil logger must expose a nil journal")
	}
}

func TestJournalConcurrentAppend(t *testing.T) {
	j := NewJournal(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				j.Append(Event{Kind: "k"})
			}
		}()
	}
	wg.Wait()
	if got := j.LastSeq(); got != 800 {
		t.Fatalf("LastSeq = %d, want 800", got)
	}
	if j.Len() != 128 || j.Dropped() != 800-128 {
		t.Fatalf("Len=%d Dropped=%d, want 128 and %d", j.Len(), j.Dropped(), 800-128)
	}
}

func TestDefaultLogger(t *testing.T) {
	old := defaultLogger.Load()
	defer defaultLogger.Store(old)
	SetDefault(nil)
	l := Default()
	if l == nil || l.Journal() == nil {
		t.Fatal("Default() must build a journal-backed logger")
	}
	if Default() != l {
		t.Fatal("Default() must be stable across calls")
	}
	custom := NewText(&bytes.Buffer{}, LevelDebug, 8)
	SetDefault(custom)
	if Default() != custom {
		t.Fatal("SetDefault not honored")
	}
}
