// Package checkpoint implements sspd's durable query checkpoints
// (DESIGN.md §12): self-verifying per-query state records with a
// monotonic sequence number, a chunked wire codec for moving them over
// the control plane, a newest-seq-wins store, and a replicated store
// node (Replica) that quorum-appends records to peer entities over the
// reliable control plane and anti-entropy-repairs lagging replicas.
//
// A Record is the unit of durability: everything needed to rebuild one
// query on any entity — the declarative spec, the serialized operator
// state per fragment, and the per-stream high-water marks ("every tuple
// with Seq <= mark is reflected in this state"). Records are framed
// with a magic/version header and a trailing CRC32 so a torn or
// bit-flipped record is rejected at decode, never restored.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
)

// Wire-format constants.
const (
	recordMagic   uint32 = 0x53504b43 // "CKPS" little-endian
	recordVersion byte   = 1
	// maxFieldLen bounds every variable-length field, mirroring the
	// stream codec's sanity cap.
	maxFieldLen = 1 << 20
	// MaxRecordSize bounds a whole encoded record (and therefore what
	// the chunk assembler will buffer for one transfer).
	MaxRecordSize = 64 << 20
)

// ErrCorrupt is wrapped by every decode failure: CRC mismatch,
// truncation, bad magic/version, or oversized fields. Callers branch on
// it with errors.Is and journal the specific reason from the message.
var ErrCorrupt = errors.New("checkpoint: corrupt record")

// OperatorState is one operator's serialized state inside a fragment.
type OperatorState struct {
	Name string
	Data []byte
}

// FragmentState is one query fragment's operator states, keyed by the
// deterministic fragment ID (engine.SplitSpec derives the same IDs from
// the same spec on every entity).
type FragmentState struct {
	ID  string
	Ops []OperatorState
}

// Record is one durable query checkpoint.
type Record struct {
	// Query is the checkpointed query's ID ("__ledger__" is reserved
	// for the coordinator's accounting ledger).
	Query string
	// Entity hosted the query when the checkpoint was taken.
	Entity string
	// Seq is the query's monotonic checkpoint sequence; replicas keep
	// only the newest Seq per query (newest-seq-wins).
	Seq uint64
	// Spec is the JSON-encoded engine.QuerySpec, so recovery can sanity
	// check the record against the coordinator's books.
	Spec []byte
	// Marks holds the per-stream high-water sequence: every tuple with
	// t.Seq <= Marks[t.Stream] is reflected in the state below, so
	// recovery replays only the suffix above the mark.
	Marks map[string]uint64
	// Frags is the serialized operator state per fragment.
	Frags []FragmentState
}

// StateBytes returns the serialized operator-state payload size.
func (r Record) StateBytes() int {
	n := 0
	for _, fs := range r.Frags {
		for _, os := range fs.Ops {
			n += len(os.Name) + len(os.Data)
		}
	}
	return n
}

// AppendRecord encodes r onto dst: magic, version, length-framed
// fields (marks sorted by stream for a deterministic encoding), and a
// trailing CRC32 (IEEE) over everything preceding it.
func AppendRecord(dst []byte, r Record) []byte {
	start := len(dst)
	dst = binary.LittleEndian.AppendUint32(dst, recordMagic)
	dst = append(dst, recordVersion)
	dst = appendStr16(dst, r.Query)
	dst = appendStr16(dst, r.Entity)
	dst = binary.LittleEndian.AppendUint64(dst, r.Seq)
	dst = appendBytes32(dst, r.Spec)
	streams := make([]string, 0, len(r.Marks))
	for s := range r.Marks {
		streams = append(streams, s)
	}
	sort.Strings(streams)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(streams)))
	for _, s := range streams {
		dst = appendStr16(dst, s)
		dst = binary.LittleEndian.AppendUint64(dst, r.Marks[s])
	}
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(r.Frags)))
	for _, fs := range r.Frags {
		dst = appendStr16(dst, fs.ID)
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(fs.Ops)))
		for _, os := range fs.Ops {
			dst = appendStr16(dst, os.Name)
			dst = appendBytes32(dst, os.Data)
		}
	}
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[start:]))
}

// EncodeRecord is AppendRecord into a fresh buffer.
func EncodeRecord(r Record) []byte {
	return AppendRecord(nil, r)
}

// DecodeRecord parses and verifies one encoded record. Any structural
// damage — truncation, trailing garbage, CRC mismatch, bad header —
// returns an error wrapping ErrCorrupt.
func DecodeRecord(buf []byte) (Record, error) {
	var r Record
	if len(buf) < 4+1+4 {
		return r, fmt.Errorf("%w: truncated header (%d bytes)", ErrCorrupt, len(buf))
	}
	body, sum := buf[:len(buf)-4], binary.LittleEndian.Uint32(buf[len(buf)-4:])
	if got := crc32.ChecksumIEEE(body); got != sum {
		return r, fmt.Errorf("%w: crc mismatch (stored %08x, computed %08x)", ErrCorrupt, sum, got)
	}
	d := decoder{buf: body}
	if magic := d.u32(); magic != recordMagic {
		return r, fmt.Errorf("%w: bad magic %08x", ErrCorrupt, magic)
	}
	if v := d.u8(); v != recordVersion {
		return r, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, v)
	}
	r.Query = d.str16()
	r.Entity = d.str16()
	r.Seq = d.u64()
	r.Spec = d.bytes32()
	if n := int(d.u16()); n > 0 {
		r.Marks = make(map[string]uint64, n)
		for i := 0; i < n && d.err == nil; i++ {
			s := d.str16()
			r.Marks[s] = d.u64()
		}
	}
	nf := int(d.u16())
	for i := 0; i < nf && d.err == nil; i++ {
		fs := FragmentState{ID: d.str16()}
		no := int(d.u16())
		for j := 0; j < no && d.err == nil; j++ {
			fs.Ops = append(fs.Ops, OperatorState{Name: d.str16(), Data: d.bytes32()})
		}
		r.Frags = append(r.Frags, fs)
	}
	if d.err != nil {
		return Record{}, d.err
	}
	if d.off != len(body) {
		return Record{}, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(body)-d.off)
	}
	return r, nil
}

func appendStr16(dst []byte, s string) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...)
}

func appendBytes32(dst, b []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(b)))
	return append(dst, b...)
}

// decoder is a bounds-checked cursor; the first failure sticks in err
// and every later read returns zero values.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) need(n int) bool {
	if d.err != nil {
		return false
	}
	if d.off+n > len(d.buf) {
		d.err = fmt.Errorf("%w: truncated at offset %d (need %d of %d)",
			ErrCorrupt, d.off, n, len(d.buf))
		return false
	}
	return true
}

func (d *decoder) u8() byte {
	if !d.need(1) {
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *decoder) u16() uint16 {
	if !d.need(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(d.buf[d.off:])
	d.off += 2
	return v
}

func (d *decoder) u32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *decoder) str16() string {
	n := int(d.u16())
	if n > maxFieldLen {
		d.err = fmt.Errorf("%w: string length %d exceeds cap", ErrCorrupt, n)
		return ""
	}
	if !d.need(n) {
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

func (d *decoder) bytes32() []byte {
	n := int(d.u32())
	if n > maxFieldLen {
		d.err = fmt.Errorf("%w: blob length %d exceeds cap", ErrCorrupt, n)
		return nil
	}
	if !d.need(n) {
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]byte, n)
	copy(out, d.buf[d.off:d.off+n])
	d.off += n
	return out
}
