// Chunked wire codec: an encoded record is split into bounded frames so
// a multi-megabyte join synopsis never monopolizes the control plane in
// one message. Frames of one transfer share an xfer ID; the receiving
// Assembler tolerates out-of-order arrival (the reliable layer retries
// independently per frame) and rejects torn transfers — inconsistent
// totals or lengths across frames of the same xfer.
package checkpoint

import (
	"encoding/binary"
	"fmt"
)

const (
	// DefaultChunkSize is the frame payload bound used when a caller
	// passes none.
	DefaultChunkSize = 8 << 10
	// maxAssemblies bounds concurrently half-built transfers per peer;
	// the oldest is evicted beyond it (its sender's next checkpoint
	// supersedes the lost one).
	maxAssemblies = 64
	chunkHeader   = 8 + 2 + 2 + 4 // xfer | index | total | record length
)

// EncodeChunks splits an encoded record into frames:
// u64 xfer | u16 index | u16 total | u32 len(rec) | payload.
func EncodeChunks(xfer uint64, rec []byte, chunkSize int) [][]byte {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	total := (len(rec) + chunkSize - 1) / chunkSize
	if total == 0 {
		total = 1
	}
	frames := make([][]byte, 0, total)
	for i := 0; i < total; i++ {
		lo := i * chunkSize
		hi := lo + chunkSize
		if hi > len(rec) {
			hi = len(rec)
		}
		frame := make([]byte, 0, chunkHeader+hi-lo)
		frame = binary.LittleEndian.AppendUint64(frame, xfer)
		frame = binary.LittleEndian.AppendUint16(frame, uint16(i))
		frame = binary.LittleEndian.AppendUint16(frame, uint16(total))
		frame = binary.LittleEndian.AppendUint32(frame, uint32(len(rec)))
		frame = append(frame, rec[lo:hi]...)
		frames = append(frames, frame)
	}
	return frames
}

// Assembler rebuilds records from frames, keyed by (sender, xfer) so
// concurrent transfers from different peers cannot collide. Safe for a
// single-goroutine receiver (the transport delivers one handler call at
// a time per endpoint); the owning Replica serializes access.
type Assembler struct {
	pend  map[asmKey]*asmState
	order []asmKey // insertion order, for bounded eviction
}

type asmKey struct {
	from string
	xfer uint64
}

type asmState struct {
	total  int
	recLen int
	parts  map[int][]byte
}

// NewAssembler returns an empty assembler.
func NewAssembler() *Assembler {
	return &Assembler{pend: make(map[asmKey]*asmState)}
}

// Add ingests one frame from a sender. When the frame completes its
// transfer, the reassembled record bytes are returned with done=true.
// A structurally damaged or torn frame returns an error wrapping
// ErrCorrupt and drops the whole transfer.
func (a *Assembler) Add(from string, frame []byte) (rec []byte, done bool, err error) {
	if len(frame) < chunkHeader {
		return nil, false, fmt.Errorf("%w: truncated chunk frame (%d bytes)", ErrCorrupt, len(frame))
	}
	xfer := binary.LittleEndian.Uint64(frame)
	index := int(binary.LittleEndian.Uint16(frame[8:]))
	total := int(binary.LittleEndian.Uint16(frame[10:]))
	recLen := int(binary.LittleEndian.Uint32(frame[12:]))
	payload := frame[chunkHeader:]
	if total == 0 || index >= total {
		return nil, false, fmt.Errorf("%w: chunk index %d of %d", ErrCorrupt, index, total)
	}
	if recLen > MaxRecordSize {
		return nil, false, fmt.Errorf("%w: record length %d exceeds cap", ErrCorrupt, recLen)
	}
	key := asmKey{from: from, xfer: xfer}
	st := a.pend[key]
	if st == nil {
		st = &asmState{total: total, recLen: recLen, parts: make(map[int][]byte, total)}
		a.pend[key] = st
		a.order = append(a.order, key)
		a.evict()
	} else if st.total != total || st.recLen != recLen {
		delete(a.pend, key)
		return nil, false, fmt.Errorf("%w: torn transfer %d from %s (total %d/%d, len %d/%d)",
			ErrCorrupt, xfer, from, total, st.total, recLen, st.recLen)
	}
	if _, dup := st.parts[index]; !dup {
		part := make([]byte, len(payload))
		copy(part, payload)
		st.parts[index] = part
	}
	if len(st.parts) < st.total {
		return nil, false, nil
	}
	delete(a.pend, key)
	out := make([]byte, 0, st.recLen)
	for i := 0; i < st.total; i++ {
		out = append(out, st.parts[i]...)
	}
	if len(out) != st.recLen {
		return nil, false, fmt.Errorf("%w: torn transfer %d from %s (reassembled %d of %d bytes)",
			ErrCorrupt, xfer, from, len(out), st.recLen)
	}
	return out, true, nil
}

// evict drops the oldest half-built transfer once too many accumulate.
func (a *Assembler) evict() {
	for len(a.pend) > maxAssemblies && len(a.order) > 0 {
		key := a.order[0]
		a.order = a.order[1:]
		delete(a.pend, key)
	}
	// Compact the order list of keys already completed or evicted.
	if len(a.order) > 4*maxAssemblies {
		kept := a.order[:0]
		for _, k := range a.order {
			if _, live := a.pend[k]; live {
				kept = append(kept, k)
			}
		}
		a.order = kept
	}
}
