// Replica is one node of the replicated checkpoint store: it owns a
// reliable control-plane endpoint ("<entity>/ckpt" or "portal/ckpt"),
// accepts chunked records from writers, acks every structurally valid
// record it can cover (stored, duplicate, or already holding newer),
// answers fetches, and exchanges digests for newest-seq-wins
// anti-entropy. The writer side counts distinct ackers per (query, seq)
// and fires OnQuorum exactly once when the configured quorum is
// reached — the durability point that lets upstream replay buffers
// trim.
package checkpoint

import (
	"encoding/binary"
	"fmt"
	"sync"

	"sspd/internal/metrics"
	"sspd/internal/obslog"
	"sspd/internal/simnet"
)

// Message kinds on the checkpoint control plane (all ride inside the
// reliable layer's envelopes).
const (
	// KindChunk carries one frame of an encoded record.
	KindChunk = "ckpt.chunk"
	// KindAck acknowledges a fully received, coverable record:
	// u64 seq | query.
	KindAck = "ckpt.ack"
	// KindFetch asks a replica to push its record for a query: query.
	KindFetch = "ckpt.fetch"
	// KindNone answers a fetch when the replica holds nothing: query.
	KindNone = "ckpt.none"
	// KindDigest carries (query, seq) pairs for anti-entropy:
	// u16 n | n x (u64 seq | u16 len | query).
	KindDigest = "ckpt.digest"
)

// ReplicaConfig tunes a Replica.
type ReplicaConfig struct {
	// Reliable configures the underlying control endpoint (retries,
	// backoff, give-up callback feeding the failure detector).
	Reliable simnet.ReliableConfig
	// ChunkSize bounds one frame's payload (default DefaultChunkSize).
	ChunkSize int
	// Quorum is the distinct-acker count a Replicate needs before
	// OnQuorum fires (default 1).
	Quorum int
	// OnQuorum fires once per replicated record when Quorum distinct
	// peers have acked it.
	OnQuorum func(rec Record, acks int)
	// OnRecord fires for every structurally valid record received,
	// with the store's verdict — fetch responses and anti-entropy
	// pushes land here too.
	OnRecord func(rec Record, from simnet.NodeID, result PutResult)
	// OnNone fires when a fetched peer reports no record for a query.
	OnNone func(query string, from simnet.NodeID)
	// Log receives ckpt.corrupt events (nil uses the process default).
	Log *obslog.Logger
}

// Replica is one replicated-checkpoint-store node.
type Replica struct {
	self  simnet.NodeID
	store *Store
	rel   *simnet.ReliableEndpoint
	cfg   ReplicaConfig
	log   *obslog.Logger

	mu       sync.Mutex
	asm      *Assembler
	nextXfer uint64
	pending  map[string]*repTrack

	// Corrupt counts rejected records (CRC mismatch, torn chunks);
	// StaleDrops counts stale-seq replays rejected by the store;
	// Acks counts acks sent; Pushes counts records pushed to peers.
	Corrupt    metrics.Counter
	StaleDrops metrics.Counter
	Acks       metrics.Counter
	Pushes     metrics.Counter
}

// repTrack is the writer-side ack bookkeeping for one query's current
// replication round.
type repTrack struct {
	rec   Record
	acked map[simnet.NodeID]bool
	fired bool
}

// NewReplica registers self on the transport. store may be nil (a fresh
// one is created).
func NewReplica(t simnet.Transport, self simnet.NodeID, store *Store, cfg ReplicaConfig) (*Replica, error) {
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = DefaultChunkSize
	}
	if cfg.Quorum <= 0 {
		cfg.Quorum = 1
	}
	if store == nil {
		store = NewStore()
	}
	r := &Replica{
		self:    self,
		store:   store,
		cfg:     cfg,
		log:     cfg.Log,
		asm:     NewAssembler(),
		pending: make(map[string]*repTrack),
	}
	if r.log == nil {
		r.log = obslog.Default()
	}
	rel, err := simnet.NewReliable(t, self, r.handle, cfg.Reliable)
	if err != nil {
		return nil, err
	}
	r.rel = rel
	return r, nil
}

// Endpoint returns the replica's transport address.
func (r *Replica) Endpoint() simnet.NodeID { return r.self }

// Store exposes the replica's local store.
func (r *Replica) Store() *Store { return r.store }

// Replicate encodes rec, stores it locally, and chunk-pushes it to
// every peer, tracking acks toward the configured quorum. It returns
// the total bytes put on the wire.
func (r *Replica) Replicate(rec Record, peers []simnet.NodeID) (int, error) {
	r.store.Put(rec)
	r.mu.Lock()
	r.pending[rec.Query] = &repTrack{rec: rec, acked: make(map[simnet.NodeID]bool)}
	r.mu.Unlock()
	wire := 0
	for _, p := range peers {
		n, err := r.push(rec, p)
		if err != nil {
			return wire, err
		}
		wire += n
	}
	return wire, nil
}

// push chunk-sends one record to one peer (fetch responses and
// anti-entropy repairs share it with Replicate).
func (r *Replica) push(rec Record, to simnet.NodeID) (int, error) {
	enc := EncodeRecord(rec)
	r.mu.Lock()
	r.nextXfer++
	xfer := r.nextXfer
	r.mu.Unlock()
	wire := 0
	for _, frame := range EncodeChunks(xfer, enc, r.cfg.ChunkSize) {
		if err := r.rel.Send(to, KindChunk, frame); err != nil {
			return wire, err
		}
		wire += len(frame)
	}
	r.Pushes.Inc()
	return wire, nil
}

// Fetch asks each peer to push its record for a query (or answer
// KindNone). Responses arrive asynchronously through OnRecord/OnNone.
func (r *Replica) Fetch(query string, peers []simnet.NodeID) {
	for _, p := range peers {
		_ = r.rel.Send(p, KindFetch, []byte(query))
	}
}

// AntiEntropy sends one digest of the given queries' held sequences to
// a peer; the exchange converges both sides to the newest sequence (the
// peer pushes back anything newer and fetches anything older).
func (r *Replica) AntiEntropy(to simnet.NodeID, queries []string) {
	if len(queries) == 0 {
		return
	}
	payload := binary.LittleEndian.AppendUint16(nil, uint16(len(queries)))
	for _, q := range queries {
		payload = binary.LittleEndian.AppendUint64(payload, r.store.Seq(q))
		payload = appendStr16(payload, q)
	}
	_ = r.rel.Send(to, KindDigest, payload)
}

// Pending reports unacknowledged reliable deliveries in flight.
func (r *Replica) Pending() int { return r.rel.Pending() }

// Close deregisters the endpoint and stops retries.
func (r *Replica) Close() error { return r.rel.Close() }

// handle is the unwrapped-message callback from the reliable endpoint.
func (r *Replica) handle(m simnet.Message) {
	switch m.Kind {
	case KindChunk:
		r.handleChunk(m)
	case KindAck:
		r.handleAck(m)
	case KindFetch:
		query := string(m.Payload)
		if rec, ok := r.store.Get(query); ok {
			_, _ = r.push(rec, m.From)
		} else {
			_ = r.rel.Send(m.From, KindNone, []byte(query))
		}
	case KindNone:
		if r.cfg.OnNone != nil {
			r.cfg.OnNone(string(m.Payload), m.From)
		}
	case KindDigest:
		r.handleDigest(m)
	}
}

// handleChunk assembles frames and, on completion, verifies and offers
// the record to the store. Every coverable record is acked — including
// duplicates and stale replays, since the replica durably holds state
// at least as new — while corrupt records are dropped without an ack
// (the writer retries or gives up).
func (r *Replica) handleChunk(m simnet.Message) {
	r.mu.Lock()
	enc, done, err := r.asm.Add(string(m.From), m.Payload)
	r.mu.Unlock()
	if err != nil {
		r.Corrupt.Inc()
		r.log.Warn("ckpt.corrupt", string(r.self), "torn checkpoint transfer rejected",
			"from", m.From, "err", err.Error())
		return
	}
	if !done {
		return
	}
	rec, err := DecodeRecord(enc)
	if err != nil {
		r.Corrupt.Inc()
		r.log.Warn("ckpt.corrupt", string(r.self), "corrupt checkpoint record rejected",
			"from", m.From, "err", err.Error())
		return
	}
	result := r.store.Put(rec)
	if result == Stale {
		r.StaleDrops.Inc()
		r.log.Debug("ckpt.corrupt", string(r.self), "stale checkpoint replay rejected",
			"from", m.From, "query", rec.Query, "seq", rec.Seq,
			"held_seq", r.store.Seq(rec.Query), "reason", "stale-seq")
	}
	if r.cfg.OnRecord != nil {
		r.cfg.OnRecord(rec, m.From, result)
	}
	ack := binary.LittleEndian.AppendUint64(nil, rec.Seq)
	ack = append(ack, rec.Query...)
	_ = r.rel.Send(m.From, KindAck, ack)
	r.Acks.Inc()
}

// handleAck credits one peer's ack toward the current replication
// round's quorum.
func (r *Replica) handleAck(m simnet.Message) {
	if len(m.Payload) < 8 {
		return
	}
	seq := binary.LittleEndian.Uint64(m.Payload)
	query := string(m.Payload[8:])
	var fire func()
	r.mu.Lock()
	if tr := r.pending[query]; tr != nil && tr.rec.Seq == seq && !tr.acked[m.From] {
		tr.acked[m.From] = true
		if !tr.fired && len(tr.acked) >= r.cfg.Quorum {
			tr.fired = true
			rec, n := tr.rec, len(tr.acked)
			if r.cfg.OnQuorum != nil {
				fire = func() { r.cfg.OnQuorum(rec, n) }
			}
		}
	}
	r.mu.Unlock()
	if fire != nil {
		fire()
	}
}

// handleDigest runs the receiver half of anti-entropy: push back
// anything we hold newer, fetch anything the peer holds newer.
func (r *Replica) handleDigest(m simnet.Message) {
	p := m.Payload
	if len(p) < 2 {
		return
	}
	n := int(binary.LittleEndian.Uint16(p))
	off := 2
	for i := 0; i < n; i++ {
		if off+10 > len(p) {
			return
		}
		seq := binary.LittleEndian.Uint64(p[off:])
		ql := int(binary.LittleEndian.Uint16(p[off+8:]))
		off += 10
		if off+ql > len(p) {
			return
		}
		query := string(p[off : off+ql])
		off += ql
		own := r.store.Seq(query)
		switch {
		case own > seq:
			if rec, ok := r.store.Get(query); ok {
				_, _ = r.push(rec, m.From)
			}
		case own < seq:
			_ = r.rel.Send(m.From, KindFetch, []byte(query))
		}
	}
}

// String aids debugging.
func (r *Replica) String() string {
	return fmt.Sprintf("checkpoint.Replica(%s, %d records)", r.self, r.store.Len())
}
