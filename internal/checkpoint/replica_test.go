package checkpoint

import (
	"sync"
	"testing"
	"time"

	"sspd/internal/obslog"
	"sspd/internal/simnet"
)

// testLogger returns a journal-only logger plus its journal, so tests
// can assert which event kinds were recorded.
func testLogger() (*obslog.Logger, *obslog.Journal) {
	j := obslog.NewJournal(256)
	return obslog.New(j, nil), j
}

func countKind(j *obslog.Journal, kind string) int {
	n := 0
	for _, e := range j.Since(0, kind) {
		_ = e
		n++
	}
	return n
}

func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !cond() {
		t.Fatalf("condition not reached within %v", d)
	}
}

func newReplicaT(t *testing.T, net simnet.Transport, id string, cfg ReplicaConfig) *Replica {
	t.Helper()
	r, err := NewReplica(net, simnet.NodeID(id), nil, cfg)
	if err != nil {
		t.Fatalf("replica %s: %v", id, err)
	}
	t.Cleanup(func() { _ = r.Close() })
	return r
}

// Quorum must fire exactly once, when the configured number of distinct
// peers have acked the record.
func TestReplicateQuorum(t *testing.T) {
	net := simnet.NewSim(nil)
	defer net.Close()
	log, _ := testLogger()
	var mu sync.Mutex
	fired := 0
	firedAcks := 0
	writer := newReplicaT(t, net, "w/ckpt", ReplicaConfig{
		Quorum: 2, Log: log,
		OnQuorum: func(rec Record, acks int) {
			mu.Lock()
			fired++
			firedAcks = acks
			mu.Unlock()
		},
	})
	newReplicaT(t, net, "a/ckpt", ReplicaConfig{Log: log})
	newReplicaT(t, net, "b/ckpt", ReplicaConfig{Log: log})
	newReplicaT(t, net, "c/ckpt", ReplicaConfig{Log: log})

	rec := sampleRecord()
	wire, err := writer.Replicate(rec, []simnet.NodeID{"a/ckpt", "b/ckpt", "c/ckpt"})
	if err != nil {
		t.Fatalf("replicate: %v", err)
	}
	if wire <= 0 {
		t.Fatalf("no bytes on the wire")
	}
	waitFor(t, 2*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return fired > 0
	})
	net.Quiesce(time.Second)
	mu.Lock()
	if fired != 1 {
		t.Fatalf("quorum fired %d times, want exactly 1", fired)
	}
	if firedAcks < 2 {
		t.Fatalf("quorum fired with %d acks, want >= 2", firedAcks)
	}
	mu.Unlock()
}

// A corrupt record must be rejected, counted, journaled as
// ckpt.corrupt, and never acked or stored.
func TestReplicaRejectsCorrupt(t *testing.T) {
	net := simnet.NewSim(nil)
	defer net.Close()
	log, j := testLogger()
	stored := make(chan Record, 1)
	rep := newReplicaT(t, net, "a/ckpt", ReplicaConfig{
		Log:      log,
		OnRecord: func(rec Record, from simnet.NodeID, res PutResult) { stored <- rec },
	})
	// The replica's only send path back to the writer is the ack, so
	// any reliable envelope arriving here would be one.
	var ackMu sync.Mutex
	acks := 0
	if err := net.Register("w/ckpt", func(m simnet.Message) {
		if m.Kind == simnet.KindReliable {
			ackMu.Lock()
			acks++
			ackMu.Unlock()
		}
	}); err != nil {
		t.Fatalf("register writer: %v", err)
	}

	enc := EncodeRecord(sampleRecord())
	enc[len(enc)/2] ^= 0x01 // CRC now fails
	for _, frame := range EncodeChunks(1, enc, 64) {
		if err := net.Send("w/ckpt", "a/ckpt", KindChunk, frame); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	net.Quiesce(2 * time.Second)
	if rep.Corrupt.Value() == 0 {
		t.Fatalf("corrupt record not counted")
	}
	if countKind(j, "ckpt.corrupt") == 0 {
		t.Fatalf("corrupt record not journaled as ckpt.corrupt")
	}
	ackMu.Lock()
	gotAcks := acks
	ackMu.Unlock()
	if gotAcks != 0 {
		t.Fatalf("corrupt record was acked %d times", gotAcks)
	}
	if rep.Store().Len() != 0 {
		t.Fatalf("corrupt record was stored")
	}
	select {
	case rec := <-stored:
		t.Fatalf("OnRecord fired for corrupt record %+v", rec)
	default:
	}
}

// A stale-seq replay must be rejected by the store (the newer state
// survives), journaled, but still acked — the replica durably covers
// that sequence.
func TestReplicaRejectsStaleSeq(t *testing.T) {
	net := simnet.NewSim(nil)
	defer net.Close()
	log, j := testLogger()
	writer := newReplicaT(t, net, "w/ckpt", ReplicaConfig{Quorum: 1, Log: log})
	rep := newReplicaT(t, net, "a/ckpt", ReplicaConfig{Log: log})

	newer := sampleRecord()
	newer.Seq = 9
	if _, err := writer.Replicate(newer, []simnet.NodeID{"a/ckpt"}); err != nil {
		t.Fatalf("replicate newer: %v", err)
	}
	net.Quiesce(2 * time.Second)
	older := sampleRecord()
	older.Seq = 4
	older.Marks = map[string]uint64{"trades": 1}
	if _, err := writer.Replicate(older, []simnet.NodeID{"a/ckpt"}); err != nil {
		t.Fatalf("replicate older: %v", err)
	}
	net.Quiesce(2 * time.Second)
	if got := rep.Store().Seq("q1"); got != 9 {
		t.Fatalf("stale replay overwrote store: seq %d, want 9", got)
	}
	if rep.StaleDrops.Value() == 0 {
		t.Fatalf("stale replay not counted")
	}
	if countKind(j, "ckpt.corrupt") == 0 {
		t.Fatalf("stale replay not journaled")
	}
}

// Fetch must return the record from peers that hold it and KindNone
// from peers that do not.
func TestReplicaFetch(t *testing.T) {
	net := simnet.NewSim(nil)
	defer net.Close()
	log, _ := testLogger()
	var mu sync.Mutex
	var gotRec []Record
	var gotNone []simnet.NodeID
	asker := newReplicaT(t, net, "portal/ckpt", ReplicaConfig{
		Log: log,
		OnRecord: func(rec Record, from simnet.NodeID, res PutResult) {
			mu.Lock()
			gotRec = append(gotRec, rec)
			mu.Unlock()
		},
		OnNone: func(query string, from simnet.NodeID) {
			mu.Lock()
			gotNone = append(gotNone, from)
			mu.Unlock()
		},
	})
	holder := newReplicaT(t, net, "a/ckpt", ReplicaConfig{Log: log})
	newReplicaT(t, net, "b/ckpt", ReplicaConfig{Log: log})
	holder.Store().Put(sampleRecord())

	asker.Fetch("q1", []simnet.NodeID{"a/ckpt", "b/ckpt"})
	waitFor(t, 2*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(gotRec) == 1 && len(gotNone) == 1
	})
	mu.Lock()
	defer mu.Unlock()
	if gotRec[0].Seq != 7 || gotRec[0].Query != "q1" {
		t.Fatalf("fetched %+v", gotRec[0])
	}
	if gotNone[0] != "b/ckpt" {
		t.Fatalf("none from %s, want b/ckpt", gotNone[0])
	}
	if rec, ok := asker.Store().Get("q1"); !ok || rec.Seq != 7 {
		t.Fatalf("fetched record not installed in asker store")
	}
}

// Anti-entropy must converge both directions: the lagging side fetches
// newer records, the ahead side pushes them.
func TestReplicaAntiEntropy(t *testing.T) {
	net := simnet.NewSim(nil)
	defer net.Close()
	log, _ := testLogger()
	a := newReplicaT(t, net, "a/ckpt", ReplicaConfig{Log: log})
	b := newReplicaT(t, net, "b/ckpt", ReplicaConfig{Log: log})

	ahead := sampleRecord() // a holds q1@7
	a.Store().Put(ahead)
	behind := sampleRecord() // b holds q2@3; a has newer q2@5
	behind.Query, behind.Seq = "q2", 3
	b.Store().Put(behind)
	newer2 := sampleRecord()
	newer2.Query, newer2.Seq = "q2", 5
	a.Store().Put(newer2)

	a.AntiEntropy("b/ckpt", []string{"q1", "q2"})
	waitFor(t, 2*time.Second, func() bool {
		return b.Store().Seq("q1") == 7 && b.Store().Seq("q2") == 5
	})
	// And the reverse direction: b advertises, a pushes nothing it
	// already has; b advertising a newer seq makes a fetch it.
	future := sampleRecord()
	future.Seq = 11
	b.Store().Put(future)
	b.AntiEntropy("a/ckpt", []string{"q1"})
	waitFor(t, 2*time.Second, func() bool { return a.Store().Seq("q1") == 11 })
}
