package checkpoint

import (
	"bytes"
	"errors"
	"testing"
)

func sampleRecord() Record {
	return Record{
		Query:  "q1",
		Entity: "e1",
		Seq:    7,
		Spec:   []byte(`{"id":"q1"}`),
		Marks:  map[string]uint64{"trades": 120, "quotes": 95},
		Frags: []FragmentState{
			{ID: "q1#0", Ops: []OperatorState{
				{Name: "window", Data: []byte{1, 2, 3}},
				{Name: "agg", Data: []byte{9}},
			}},
			{ID: "q1#1", Ops: []OperatorState{
				{Name: "join", Data: bytes.Repeat([]byte{0xAB}, 300)},
			}},
		},
	}
}

func recordsEqual(a, b Record) bool {
	if a.Query != b.Query || a.Entity != b.Entity || a.Seq != b.Seq ||
		!bytes.Equal(a.Spec, b.Spec) || len(a.Marks) != len(b.Marks) ||
		len(a.Frags) != len(b.Frags) {
		return false
	}
	for s, v := range a.Marks {
		if b.Marks[s] != v {
			return false
		}
	}
	for i := range a.Frags {
		if a.Frags[i].ID != b.Frags[i].ID || len(a.Frags[i].Ops) != len(b.Frags[i].Ops) {
			return false
		}
		for j := range a.Frags[i].Ops {
			if a.Frags[i].Ops[j].Name != b.Frags[i].Ops[j].Name ||
				!bytes.Equal(a.Frags[i].Ops[j].Data, b.Frags[i].Ops[j].Data) {
				return false
			}
		}
	}
	return true
}

func TestRecordRoundtrip(t *testing.T) {
	want := sampleRecord()
	got, err := DecodeRecord(EncodeRecord(want))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !recordsEqual(want, got) {
		t.Fatalf("roundtrip mismatch:\nwant %+v\ngot  %+v", want, got)
	}
}

func TestRecordRoundtripEmpty(t *testing.T) {
	want := Record{Query: "q", Entity: "e", Seq: 1}
	got, err := DecodeRecord(EncodeRecord(want))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !recordsEqual(want, got) {
		t.Fatalf("roundtrip mismatch: %+v vs %+v", want, got)
	}
}

// A single flipped bit anywhere in the record must fail the CRC — no
// bit-flipped checkpoint is ever restorable.
func TestRecordCRCFlip(t *testing.T) {
	enc := EncodeRecord(sampleRecord())
	for _, off := range []int{0, 5, len(enc) / 2, len(enc) - 5} {
		bad := append([]byte(nil), enc...)
		bad[off] ^= 0x40
		if _, err := DecodeRecord(bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at %d: want ErrCorrupt, got %v", off, err)
		}
	}
}

// Every truncation point must be rejected, never panic or return a
// partial record.
func TestRecordTruncation(t *testing.T) {
	enc := EncodeRecord(sampleRecord())
	for n := 0; n < len(enc); n++ {
		if _, err := DecodeRecord(enc[:n]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncated to %d bytes: want ErrCorrupt, got %v", n, err)
		}
	}
}

func TestRecordTrailingGarbage(t *testing.T) {
	enc := EncodeRecord(sampleRecord())
	// Valid CRC over extended body is vanishingly unlikely; force the
	// interesting path by recomputing nothing — extra bytes after the
	// CRC break the CRC check itself.
	bad := append(append([]byte(nil), enc...), 0, 0, 0)
	if _, err := DecodeRecord(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing bytes: want ErrCorrupt, got %v", err)
	}
}

func TestChunkRoundtripOutOfOrder(t *testing.T) {
	enc := EncodeRecord(sampleRecord())
	frames := EncodeChunks(42, enc, 64)
	if len(frames) < 3 {
		t.Fatalf("want multiple frames, got %d", len(frames))
	}
	a := NewAssembler()
	// Deliver in reverse, with a duplicate in the middle.
	for i := len(frames) - 1; i >= 0; i-- {
		rec, done, err := a.Add("peer", frames[i])
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if i > 0 && done {
			t.Fatalf("done before final frame")
		}
		if i == len(frames)/2 {
			if _, _, err := a.Add("peer", frames[i]); err != nil {
				t.Fatalf("duplicate frame: %v", err)
			}
		}
		if i == 0 {
			if !done {
				t.Fatalf("not done after all frames")
			}
			if !bytes.Equal(rec, enc) {
				t.Fatalf("reassembly mismatch: %d vs %d bytes", len(rec), len(enc))
			}
		}
	}
}

// Frames of one transfer disagreeing about total/length are a torn
// write: the whole transfer must be dropped with ErrCorrupt.
func TestChunkTornTransfer(t *testing.T) {
	enc := EncodeRecord(sampleRecord())
	frames := EncodeChunks(7, enc, 64)
	a := NewAssembler()
	if _, _, err := a.Add("peer", frames[0]); err != nil {
		t.Fatalf("first frame: %v", err)
	}
	torn := append([]byte(nil), frames[1]...)
	torn[10]++ // bump the total field
	if _, _, err := a.Add("peer", torn); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn total: want ErrCorrupt, got %v", err)
	}
	// The transfer was dropped; replaying it cleanly still succeeds.
	for i, f := range frames {
		rec, done, err := a.Add("peer", f)
		if err != nil {
			t.Fatalf("replayed frame %d: %v", i, err)
		}
		if i == len(frames)-1 && (!done || !bytes.Equal(rec, enc)) {
			t.Fatalf("clean replay after torn transfer failed")
		}
	}
}

func TestChunkTruncatedFrame(t *testing.T) {
	a := NewAssembler()
	if _, _, err := a.Add("peer", []byte{1, 2, 3}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("short frame: want ErrCorrupt, got %v", err)
	}
	frames := EncodeChunks(1, EncodeRecord(sampleRecord()), 64)
	bad := append([]byte(nil), frames[0]...)
	bad[8], bad[9] = 0xFF, 0xFF // index far beyond total
	if _, _, err := a.Add("peer", bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("index >= total: want ErrCorrupt, got %v", err)
	}
}

func TestStoreNewestSeqWins(t *testing.T) {
	s := NewStore()
	r5 := Record{Query: "q", Seq: 5}
	if got := s.Put(r5); got != Stored {
		t.Fatalf("first put: %v", got)
	}
	if got := s.Put(Record{Query: "q", Seq: 5}); got != Duplicate {
		t.Fatalf("same seq: %v", got)
	}
	if got := s.Put(Record{Query: "q", Seq: 3}); got != Stale {
		t.Fatalf("older seq: %v", got)
	}
	if got := s.Put(Record{Query: "q", Seq: 9}); got != Stored {
		t.Fatalf("newer seq: %v", got)
	}
	if rec, ok := s.Get("q"); !ok || rec.Seq != 9 {
		t.Fatalf("held %v %v, want seq 9", rec, ok)
	}
	if s.Seq("missing") != 0 {
		t.Fatalf("absent query should report seq 0")
	}
}
