// Store is the newest-seq-wins in-memory checkpoint store one Replica
// owns: at most one Record per query, replaced only by a strictly newer
// sequence. The monotonic per-query Seq (assigned portal-side, so it
// survives the query moving between hosts) makes convergence trivial —
// any gossip order reaches the same fixed point.
package checkpoint

import "sync"

// PutResult classifies a Store.Put.
type PutResult int

const (
	// Stored: the record was new or strictly newer and replaced the
	// held one.
	Stored PutResult = iota
	// Duplicate: same sequence as the held record; ignored (idempotent
	// redelivery).
	Duplicate
	// Stale: strictly older than the held record; rejected.
	Stale
)

func (r PutResult) String() string {
	switch r {
	case Stored:
		return "stored"
	case Duplicate:
		return "duplicate"
	default:
		return "stale"
	}
}

// Store holds the newest known Record per query. Safe for concurrent
// use.
type Store struct {
	mu   sync.Mutex
	recs map[string]Record
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{recs: make(map[string]Record)}
}

// Put offers a record; newest sequence wins.
func (s *Store) Put(r Record) PutResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := s.recs[r.Query]
	switch {
	case !ok || r.Seq > cur.Seq:
		s.recs[r.Query] = r
		return Stored
	case r.Seq == cur.Seq:
		return Duplicate
	default:
		return Stale
	}
}

// Get returns the held record for a query.
func (s *Store) Get(query string) (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.recs[query]
	return r, ok
}

// Seq returns the held sequence for a query (0 when absent).
func (s *Store) Seq(query string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recs[query].Seq
}

// Delete drops a query's record (query removal).
func (s *Store) Delete(query string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.recs, query)
}

// Len returns the number of held records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recs)
}
