package stream

import (
	"encoding/binary"
	"testing"
	"testing/quick"
	"time"
	"unsafe"
)

func TestTupleRoundTrip(t *testing.T) {
	orig := NewTuple("quotes", 42, time.Unix(1000, 999).UTC(),
		String("ibm"), Float(90.25), Int(-7))
	enc := AppendTuple(nil, orig)
	dec, used, err := DecodeTuple(enc)
	if err != nil {
		t.Fatalf("DecodeTuple: %v", err)
	}
	if used != len(enc) {
		t.Fatalf("consumed %d of %d bytes", used, len(enc))
	}
	assertTupleEqual(t, orig, dec)
}

func assertTupleEqual(t *testing.T, want, got Tuple) {
	t.Helper()
	if got.Stream != want.Stream || got.Seq != want.Seq || !got.Ts.Equal(want.Ts) {
		t.Fatalf("header mismatch: got %v/%d/%v want %v/%d/%v",
			got.Stream, got.Seq, got.Ts, want.Stream, want.Seq, want.Ts)
	}
	if len(got.Values) != len(want.Values) {
		t.Fatalf("arity %d != %d", len(got.Values), len(want.Values))
	}
	for i := range want.Values {
		if !got.Values[i].Equal(want.Values[i]) {
			t.Fatalf("value %d: got %v want %v", i, got.Values[i], want.Values[i])
		}
	}
}

func TestTupleRoundTripEmptyValues(t *testing.T) {
	orig := NewTuple("s", 1, time.Unix(5, 0).UTC())
	dec, _, err := DecodeTuple(AppendTuple(nil, orig))
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Values) != 0 {
		t.Fatalf("values = %v, want empty", dec.Values)
	}
}

func TestBatchRoundTrip(t *testing.T) {
	b := Batch{
		NewTuple("a", 1, time.Unix(1, 0).UTC(), Int(1)),
		NewTuple("b", 2, time.Unix(2, 0).UTC(), String("x"), Float(2)),
	}
	enc := AppendBatch(nil, b)
	dec, used, err := DecodeBatch(enc)
	if err != nil {
		t.Fatal(err)
	}
	if used != len(enc) {
		t.Fatalf("consumed %d of %d", used, len(enc))
	}
	if len(dec) != 2 {
		t.Fatalf("decoded %d tuples", len(dec))
	}
	assertTupleEqual(t, b[0], dec[0])
	assertTupleEqual(t, b[1], dec[1])
}

func TestDecodeTupleTruncated(t *testing.T) {
	full := AppendTuple(nil, NewTuple("quotes", 1, time.Unix(1, 0).UTC(),
		String("ibm"), Float(1), Int(2)))
	for cut := 0; cut < len(full); cut++ {
		if _, _, err := DecodeTuple(full[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d not detected", cut, len(full))
		}
	}
}

func TestDecodeBatchTruncated(t *testing.T) {
	full := AppendBatch(nil, Batch{NewTuple("s", 1, time.Unix(1, 0).UTC(), Int(1))})
	if _, _, err := DecodeBatch(full[:3]); err == nil {
		t.Fatal("short header accepted")
	}
	if _, _, err := DecodeBatch(full[:len(full)-1]); err == nil {
		t.Fatal("truncated body accepted")
	}
}

func TestDecodeTupleBadKind(t *testing.T) {
	enc := AppendTuple(nil, NewTuple("s", 1, time.Unix(1, 0).UTC(), Int(7)))
	// Corrupt the value kind byte (last 9 bytes are kind + int payload).
	enc[len(enc)-9] = 0xFF
	if _, _, err := DecodeTuple(enc); err == nil {
		t.Fatal("bad kind accepted")
	}
}

func TestDecodeBoundsChecks(t *testing.T) {
	// Absurd stream length must be rejected before allocation.
	var enc []byte
	enc = append(enc, 0xFF, 0xFF, 0xFF, 0x7F)
	if _, _, err := DecodeTuple(enc); err == nil {
		t.Fatal("absurd stream length accepted")
	}
}

// Property: encode/decode round-trips arbitrary well-formed tuples.
func TestCodecRoundTripProperty(t *testing.T) {
	f := func(stream string, seq uint64, nanos int64, i int64, fl float64, s string) bool {
		if len(stream) > 1000 || len(s) > 1000 {
			return true
		}
		orig := NewTuple(stream, seq, time.Unix(0, nanos).UTC(),
			Int(i), Float(fl), String(s))
		enc := AppendTuple(nil, orig)
		if len(enc) != orig.Size() {
			return false
		}
		dec, used, err := DecodeTuple(enc)
		if err != nil || used != len(enc) {
			return false
		}
		if dec.Stream != orig.Stream || dec.Seq != orig.Seq || !dec.Ts.Equal(orig.Ts) {
			return false
		}
		for j := range orig.Values {
			if !dec.Values[j].Equal(orig.Values[j]) {
				// NaN floats don't compare equal; accept NaN payloads.
				if orig.Values[j].Kind() == KindFloat &&
					orig.Values[j].AsFloat() != orig.Values[j].AsFloat() &&
					dec.Values[j].AsFloat() != dec.Values[j].AsFloat() {
					continue
				}
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRateEstimator(t *testing.T) {
	r := NewRateEstimator(4 * time.Second)
	now := time.Unix(1000, 0)
	r.SetClock(func() time.Time { return now })
	for i := 0; i < 8; i++ {
		r.Record(100)
	}
	now = now.Add(time.Second)
	for i := 0; i < 4; i++ {
		r.Record(50)
	}
	tps, bps := r.Rates()
	// 12 tuples, 1000 bytes over a 4-second horizon.
	if tps != 3 {
		t.Errorf("tps = %v, want 3", tps)
	}
	if bps != 250 {
		t.Errorf("bps = %v, want 250", bps)
	}
	if got := r.LastArrival(); !got.Equal(now) {
		t.Errorf("last arrival = %v, want %v", got, now)
	}
	// After the horizon passes, rates decay to zero.
	now = now.Add(10 * time.Second)
	tps, bps = r.Rates()
	if tps != 0 || bps != 0 {
		t.Errorf("stale rates = %v,%v, want 0,0", tps, bps)
	}
}

func TestRateEstimatorMinimumHorizon(t *testing.T) {
	r := NewRateEstimator(0)
	now := time.Unix(0, 0)
	r.SetClock(func() time.Time { return now })
	r.Record(10)
	tps, bps := r.Rates()
	if tps != 1 || bps != 10 {
		t.Errorf("rates = %v,%v, want 1,10", tps, bps)
	}
}

func TestRateEstimatorBucketReuse(t *testing.T) {
	// After the ring wraps, an old bucket must be reset, not accumulated.
	r := NewRateEstimator(2 * time.Second)
	now := time.Unix(100, 0)
	r.SetClock(func() time.Time { return now })
	r.Record(100)
	now = now.Add(2 * time.Second) // same bucket index, different second
	r.Record(1)
	_, bps := r.Rates()
	if bps != 0.5 { // only the new record counts: 1 byte / 2s
		t.Errorf("bps = %v, want 0.5", bps)
	}
}

func BenchmarkAppendTuple(b *testing.B) {
	tu := NewTuple("quotes", 1, time.Unix(1, 0), String("ibm"), Float(90.5), Int(100))
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendTuple(buf[:0], tu)
	}
}

func BenchmarkDecodeTuple(b *testing.B) {
	enc := AppendTuple(nil, NewTuple("quotes", 1, time.Unix(1, 0), String("ibm"), Float(90.5), Int(100)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeTuple(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func TestTupleSpanRoundTrip(t *testing.T) {
	orig := NewTuple("quotes", 42, time.Unix(1000, 999).UTC(),
		String("ibm"), Float(90.25))
	orig.Span = 0xDEADBEEFCAFE
	enc := AppendTuple(nil, orig)
	if len(enc) != orig.Size() {
		t.Fatalf("encoded %d bytes, Size() says %d", len(enc), orig.Size())
	}
	dec, used, err := DecodeTuple(enc)
	if err != nil {
		t.Fatalf("DecodeTuple: %v", err)
	}
	if used != len(enc) {
		t.Fatalf("consumed %d of %d bytes", used, len(enc))
	}
	assertTupleEqual(t, orig, dec)
	if dec.Span != orig.Span {
		t.Fatalf("span = %#x, want %#x", dec.Span, orig.Span)
	}
}

// TestUntracedTupleWireUnchanged pins the compatibility property: a
// tuple without a span encodes to exactly the pre-trace layout (no flag
// bit, no extra bytes), so byte accounting with sampling off matches the
// seed exactly.
func TestUntracedTupleWireUnchanged(t *testing.T) {
	orig := NewTuple("quotes", 7, time.Unix(9, 9).UTC(), Int(1))
	enc := AppendTuple(nil, orig)
	wantSize := 4 + len("quotes") + 8 + 8 + 2 + (1 + 8)
	if len(enc) != wantSize || orig.Size() != wantSize {
		t.Fatalf("untraced tuple: encoded=%d Size=%d want %d", len(enc), orig.Size(), wantSize)
	}
	// nvalues field must not carry the span flag.
	nvals := uint16(enc[4+len("quotes")+16]) | uint16(enc[4+len("quotes")+17])<<8
	if nvals != 1 {
		t.Fatalf("nvalues on the wire = %#x, want 1", nvals)
	}
	dec, _, err := DecodeTuple(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Span != 0 {
		t.Fatalf("span = %d, want 0", dec.Span)
	}
}

func TestBatchSpanRoundTrip(t *testing.T) {
	traced := NewTuple("s", 2, time.Unix(5, 0).UTC(), Int(4))
	traced.Span = 77
	b := Batch{NewTuple("s", 1, time.Unix(5, 0).UTC(), Int(3)), traced}
	enc := AppendBatch(nil, b)
	if len(enc) != b.Size() {
		t.Fatalf("encoded %d bytes, Size() says %d", len(enc), b.Size())
	}
	dec, _, err := DecodeBatch(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec[0].Span != 0 || dec[1].Span != 77 {
		t.Fatalf("spans = %d,%d want 0,77", dec[0].Span, dec[1].Span)
	}
}

// TestDecodeBatchCorruptCountClamped proves a corrupt count header cannot
// preallocate gigabytes: capacity stays bounded by what the buffer could
// physically hold, and the decode fails fast on the missing tuples.
func TestDecodeBatchCorruptCountClamped(t *testing.T) {
	payload := binary.LittleEndian.AppendUint32(nil, 1<<24-1) // huge count, no body
	allocs := testing.AllocsPerRun(10, func() {
		if _, _, err := DecodeBatch(payload); err == nil {
			t.Fatal("want error for truncated batch")
		}
	})
	// The clamp makes the header-only prealloc tiny: a handful of
	// allocations, not a 16M-entry Batch.
	if allocs > 8 {
		t.Fatalf("corrupt header cost %.0f allocs per decode, want a small constant", allocs)
	}
	if got := clampBatchCap(1<<24, 0); got != 1 {
		t.Fatalf("clampBatchCap(1<<24, 0) = %d, want 1", got)
	}
	if got := clampBatchCap(3, 1<<20); got != 3 {
		t.Fatalf("clampBatchCap must not clamp plausible counts: got %d, want 3", got)
	}
}

// TestDecodeBufferRoundTrip checks the pooled arena decoder agrees with
// DecodeBatch, including trace spans and string interning.
func TestDecodeBufferRoundTrip(t *testing.T) {
	b := Batch{
		NewTuple("quotes", 1, time.Unix(1, 0).UTC(), String("ibm"), Float(90.25), Int(-7)),
		NewTuple("quotes", 2, time.Unix(2, 5).UTC(), String("ibm"), Float(91), Int(3)),
		NewTuple("quotes", 3, time.Unix(3, 0).UTC()),
	}
	b[1].Span = 77
	enc := AppendBatch(nil, b)
	d := GetDecodeBuffer()
	defer PutDecodeBuffer(d)
	dec, used, err := d.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if used != len(enc) {
		t.Fatalf("consumed %d of %d", used, len(enc))
	}
	if len(dec) != len(b) {
		t.Fatalf("decoded %d tuples, want %d", len(dec), len(b))
	}
	for i := range b {
		assertTupleEqual(t, b[i], dec[i])
		if dec[i].Span != b[i].Span {
			t.Fatalf("tuple %d span = %d, want %d", i, dec[i].Span, b[i].Span)
		}
	}
	// Interning: both tuples must share one stream-name string and one
	// "ibm" value string.
	if unsafe.StringData(dec[0].Stream) != unsafe.StringData(dec[1].Stream) {
		t.Fatal("stream names not interned")
	}
	if unsafe.StringData(dec[0].Values[0].AsString()) != unsafe.StringData(dec[1].Values[0].AsString()) {
		t.Fatal("string values not interned")
	}
}

// TestDecodeBufferZeroAllocsSteadyState is the hot-path regression guard:
// after warmup, decoding the same-shaped traffic allocates nothing.
func TestDecodeBufferZeroAllocsSteadyState(t *testing.T) {
	b := make(Batch, 0, 64)
	for i := 0; i < 64; i++ {
		b = append(b, NewTuple("quotes", uint64(i), time.Unix(int64(i), 0).UTC(),
			String("ibm"), Float(float64(i)), Int(int64(i))))
	}
	enc := AppendBatch(nil, b)
	d := GetDecodeBuffer()
	defer PutDecodeBuffer(d)
	if _, _, err := d.Decode(enc); err != nil { // warmup: grows arena, interns strings
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, _, err := d.Decode(enc); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Decode allocated %.1f times per run, want 0", allocs)
	}
}

// TestDecodeBufferCorruptInput mirrors the DecodeBatch error cases.
func TestDecodeBufferCorruptInput(t *testing.T) {
	d := GetDecodeBuffer()
	defer PutDecodeBuffer(d)
	if _, _, err := d.Decode(nil); err == nil {
		t.Fatal("want error for empty buffer")
	}
	enc := AppendBatch(nil, Batch{NewTuple("s", 1, time.Unix(0, 0).UTC(), Int(1))})
	if _, _, err := d.Decode(enc[:len(enc)-3]); err == nil {
		t.Fatal("want error for truncated tuple")
	}
	// The buffer stays usable after an error.
	if _, _, err := d.Decode(enc); err != nil {
		t.Fatalf("decode after error: %v", err)
	}
}
