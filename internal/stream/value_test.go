package stream

import (
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{Int(42), KindInt},
		{Float(3.5), KindFloat},
		{String("ibm"), KindString},
		{Value{}, KindInvalid},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("kind of %#v = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
	}
	if Int(42).AsInt() != 42 {
		t.Error("AsInt lost value")
	}
	if Float(3.5).AsFloat() != 3.5 {
		t.Error("AsFloat lost value")
	}
	if Int(7).AsFloat() != 7 {
		t.Error("int AsFloat conversion failed")
	}
	if String("x").AsString() != "x" {
		t.Error("AsString lost value")
	}
	if String("x").AsFloat() != 0 {
		t.Error("string AsFloat should be 0")
	}
	if (Value{}).IsValid() {
		t.Error("zero value should be invalid")
	}
	if !Int(0).IsValid() {
		t.Error("Int(0) should be valid")
	}
}

func TestValueEqual(t *testing.T) {
	if !Int(5).Equal(Int(5)) {
		t.Error("Int(5) != Int(5)")
	}
	if Int(5).Equal(Float(5)) {
		t.Error("Int(5) should not Equal Float(5): kinds differ")
	}
	if Int(5).Equal(Int(6)) {
		t.Error("Int(5) == Int(6)")
	}
	if !String("a").Equal(String("a")) {
		t.Error("strings not equal")
	}
	if !(Value{}).Equal(Value{}) {
		t.Error("invalid values should be equal")
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(1), 1},
		{Int(2), Int(2), 0},
		{Int(2), Float(2.5), -1},
		{Float(2.5), Int(2), 1},
		{String("a"), String("b"), -1},
		{String("b"), String("a"), 1},
		{String("a"), String("a"), 0},
		{Int(1), String("a"), -1},  // numeric sorts before string
		{String("a"), Float(1), 1}, // and vice versa
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Int(-3), "-3"},
		{Float(1.5), "1.5"},
		{String("msft"), "msft"},
		{Value{}, "<invalid>"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestValueWireSize(t *testing.T) {
	if got := Int(1).wireSize(); got != 9 {
		t.Errorf("int wire size = %d, want 9", got)
	}
	if got := Float(1).wireSize(); got != 9 {
		t.Errorf("float wire size = %d, want 9", got)
	}
	if got := String("abc").wireSize(); got != 1+4+3 {
		t.Errorf("string wire size = %d, want 8", got)
	}
}

// Property: Compare is antisymmetric for numeric values.
func TestValueCompareAntisymmetric(t *testing.T) {
	f := func(a, b float64) bool {
		return Float(a).Compare(Float(b)) == -Float(b).Compare(Float(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: int/float numeric comparison agrees with float ordering.
func TestValueNumericCompareProperty(t *testing.T) {
	f := func(a int32, b float32) bool {
		got := Int(int64(a)).Compare(Float(float64(b)))
		af, bf := float64(a), float64(b)
		want := 0
		if af < bf {
			want = -1
		} else if af > bf {
			want = 1
		}
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
