package stream

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestRangeOps(t *testing.T) {
	r := Range{Lo: 10, Hi: 20}
	if !r.Contains(10) || !r.Contains(20) || !r.Contains(15) {
		t.Error("closed interval should contain endpoints and interior")
	}
	if r.Contains(9.999) || r.Contains(20.001) {
		t.Error("interval contains outside points")
	}
	if r.Empty() {
		t.Error("non-empty range reported empty")
	}
	if !(Range{Lo: 5, Hi: 4}).Empty() {
		t.Error("inverted range should be empty")
	}
	if w := r.Width(); w != 10 {
		t.Errorf("width = %v", w)
	}
	if w := (Range{Lo: 5, Hi: 4}).Width(); w != 0 {
		t.Errorf("empty width = %v", w)
	}
	inter := r.Intersect(Range{Lo: 15, Hi: 30})
	if inter.Lo != 15 || inter.Hi != 20 {
		t.Errorf("intersect = %+v", inter)
	}
	if !r.Intersect(Range{Lo: 30, Hi: 40}).Empty() {
		t.Error("disjoint intersect should be empty")
	}
	u := r.Union(Range{Lo: 30, Hi: 40})
	if u.Lo != 10 || u.Hi != 40 {
		t.Errorf("union = %+v", u)
	}
	if got := (Range{Lo: 1, Hi: 0}).Union(r); got != r {
		t.Errorf("union with empty = %+v", got)
	}
	if got := r.Union(Range{Lo: 1, Hi: 0}); got != r {
		t.Errorf("union with empty (rhs) = %+v", got)
	}
}

func TestInterestMatches(t *testing.T) {
	s := quotesSchema(t)
	in := NewInterest("quotes").
		WithRange("price", 50, 100).
		WithKeys("symbol", "ibm", "msft")

	match := quoteTuple(1, "ibm", 75, 10)
	if !in.Matches(s, match) {
		t.Error("matching tuple rejected")
	}
	if in.Matches(s, quoteTuple(2, "goog", 75, 10)) {
		t.Error("wrong symbol accepted")
	}
	if in.Matches(s, quoteTuple(3, "ibm", 200, 10)) {
		t.Error("out-of-range price accepted")
	}
	other := match
	other.Stream = "trades"
	if in.Matches(s, other) {
		t.Error("wrong stream accepted")
	}
	// Constraint on a missing field never matches.
	bad := NewInterest("quotes").WithRange("nope", 0, 1)
	if bad.Matches(s, match) {
		t.Error("constraint on missing field matched")
	}
	badKeys := NewInterest("quotes").WithKeys("nope", "x")
	if badKeys.Matches(s, match) {
		t.Error("key constraint on missing field matched")
	}
	if !NewInterest("quotes").Matches(s, match) {
		t.Error("unconstrained interest should match")
	}
}

func TestInterestCloneIsDeep(t *testing.T) {
	in := NewInterest("quotes").WithRange("price", 0, 10).WithKeys("symbol", "a")
	cl := in.Clone()
	cl.Ranges["price"] = Range{Lo: 5, Hi: 6}
	cl.Keys["symbol"]["b"] = true
	if in.Ranges["price"] != (Range{Lo: 0, Hi: 10}) {
		t.Error("Clone shares Ranges")
	}
	if in.Keys["symbol"]["b"] {
		t.Error("Clone shares Keys")
	}
}

func TestInterestSelectivity(t *testing.T) {
	s := quotesSchema(t) // price domain [0,1000], symbol card 100
	in := NewInterest("quotes").WithRange("price", 0, 100)
	if got := in.Selectivity(s); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("price selectivity = %v, want 0.1", got)
	}
	in2 := in.WithKeys("symbol", "a", "b", "c", "d", "e") // 5/100
	if got := in2.Selectivity(s); math.Abs(got-0.005) > 1e-12 {
		t.Errorf("combined selectivity = %v, want 0.005", got)
	}
	if got := NewInterest("quotes").Selectivity(s); got != 1 {
		t.Errorf("unconstrained selectivity = %v, want 1", got)
	}
	missing := NewInterest("quotes").WithRange("nope", 0, 1)
	if got := missing.Selectivity(s); got != 0 {
		t.Errorf("missing-field selectivity = %v, want 0", got)
	}
	missingKeys := NewInterest("quotes").WithKeys("nope", "x")
	if got := missingKeys.Selectivity(s); got != 0 {
		t.Errorf("missing-key-field selectivity = %v, want 0", got)
	}
	// Key set larger than cardinality clamps to 1.
	tiny := MustSchema("t", Field{Name: "k", Type: KindString, Card: 1})
	big := NewInterest("t").WithKeys("k", "a", "b", "c")
	if got := big.Selectivity(tiny); got != 1 {
		t.Errorf("clamped selectivity = %v, want 1", got)
	}
}

func TestOverlap(t *testing.T) {
	s := quotesSchema(t)
	a := NewInterest("quotes").WithRange("price", 0, 100)
	b := NewInterest("quotes").WithRange("price", 50, 150)
	// Intersection [50,100] is 5% of the [0,1000] domain.
	if got := Overlap(a, b, s); math.Abs(got-0.05) > 1e-12 {
		t.Errorf("overlap = %v, want 0.05", got)
	}
	c := NewInterest("quotes").WithRange("price", 200, 300)
	if got := Overlap(a, c, s); got != 0 {
		t.Errorf("disjoint overlap = %v, want 0", got)
	}
	d := NewInterest("trades")
	if got := Overlap(a, d, s); got != 0 {
		t.Errorf("cross-stream overlap = %v, want 0", got)
	}
	// Key-set overlap.
	e := NewInterest("quotes").WithKeys("symbol", "a", "b")
	f := NewInterest("quotes").WithKeys("symbol", "b", "c")
	if got := Overlap(e, f, s); math.Abs(got-0.01) > 1e-12 { // {b} = 1/100
		t.Errorf("key overlap = %v, want 0.01", got)
	}
}

func TestCover(t *testing.T) {
	s := quotesSchema(t)
	a := NewInterest("quotes").WithRange("price", 0, 100)
	b := NewInterest("quotes").WithRange("price", 200, 300)
	cov := Cover(a, b)
	if r := cov.Ranges["price"]; r.Lo != 0 || r.Hi != 300 {
		t.Errorf("cover range = %+v", r)
	}
	// Everything matching a or b must match the cover.
	for _, price := range []float64{0, 50, 100, 200, 250, 300} {
		if !cov.Matches(s, quoteTuple(1, "x", price, 0)) {
			t.Errorf("cover rejects price %v", price)
		}
	}
	// A field constrained on one side only becomes unconstrained.
	c := NewInterest("quotes").WithRange("price", 0, 10).WithRange("volume", 0, 5)
	cov2 := Cover(c, a)
	if _, constrained := cov2.Ranges["volume"]; constrained {
		t.Error("one-sided constraint survived Cover")
	}
	// Key sets union.
	e := NewInterest("quotes").WithKeys("symbol", "a")
	f := NewInterest("quotes").WithKeys("symbol", "b")
	covK := Cover(e, f)
	if set := covK.Keys["symbol"]; !set["a"] || !set["b"] || len(set) != 2 {
		t.Errorf("cover keys = %v", set)
	}
	// Cross-stream cover is fully unconstrained.
	g := Cover(a, NewInterest("trades"))
	if !g.Unconstrained() || g.Stream != "quotes" {
		t.Errorf("cross-stream cover = %v", g)
	}
}

func TestInterestString(t *testing.T) {
	if got := NewInterest("q").String(); got != "q{*}" {
		t.Errorf("unconstrained String = %q", got)
	}
	in := NewInterest("q").WithRange("p", 1, 2).WithKeys("s", "b", "a")
	got := in.String()
	if !strings.Contains(got, "p in [1,2]") || !strings.Contains(got, "s in {a,b}") {
		t.Errorf("String = %q", got)
	}
}

func TestInterestSet(t *testing.T) {
	s := quotesSchema(t)
	set := NewInterestSet("quotes")
	if !set.Empty() {
		t.Error("fresh set should be empty")
	}
	if set.Matches(s, quoteTuple(1, "a", 1, 1)) {
		t.Error("empty set should match nothing")
	}
	cov := set.Cover()
	if !cov.Unconstrained() {
		t.Error("empty set cover should be unconstrained")
	}

	set.Add(NewInterest("quotes").WithRange("price", 0, 100))
	set.Add(NewInterest("quotes").WithRange("price", 500, 600))
	set.Add(NewInterest("other")) // ignored: wrong stream
	if len(set.Terms) != 2 {
		t.Fatalf("terms = %d, want 2", len(set.Terms))
	}
	if !set.Matches(s, quoteTuple(1, "a", 50, 1)) {
		t.Error("first term should match")
	}
	if !set.Matches(s, quoteTuple(1, "a", 550, 1)) {
		t.Error("second term should match")
	}
	if set.Matches(s, quoteTuple(1, "a", 300, 1)) {
		t.Error("gap should not match")
	}
	// Selectivity is the sum for disjoint terms: 0.1 + 0.1.
	if got := set.Selectivity(s); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("set selectivity = %v, want 0.2", got)
	}
}

func TestInterestSetSelectivityClamp(t *testing.T) {
	s := quotesSchema(t)
	set := NewInterestSet("quotes")
	for i := 0; i < 20; i++ {
		set.Add(NewInterest("quotes").WithRange("price", 0, 100))
	}
	if got := set.Selectivity(s); got != 1 {
		t.Errorf("selectivity = %v, want clamp at 1", got)
	}
}

func TestInterestSetSimplify(t *testing.T) {
	s := quotesSchema(t)
	set := NewInterestSet("quotes")
	// Two close terms and one far term: simplify to 2 should merge the
	// close pair, keeping filtering as tight as possible.
	set.Add(NewInterest("quotes").WithRange("price", 0, 10))
	set.Add(NewInterest("quotes").WithRange("price", 12, 20))
	set.Add(NewInterest("quotes").WithRange("price", 900, 910))
	set.Simplify(s, 2)
	if len(set.Terms) != 2 {
		t.Fatalf("terms after simplify = %d, want 2", len(set.Terms))
	}
	if !set.Matches(s, quoteTuple(1, "a", 5, 1)) ||
		!set.Matches(s, quoteTuple(1, "a", 15, 1)) ||
		!set.Matches(s, quoteTuple(1, "a", 905, 1)) {
		t.Error("simplified set lost coverage")
	}
	if set.Matches(s, quoteTuple(1, "a", 500, 1)) {
		t.Error("simplified set merged the wrong pair (covers 500)")
	}
	// maxTerms < 1 collapses to a single cover.
	set.Simplify(s, 0)
	if len(set.Terms) != 1 {
		t.Fatalf("terms = %d, want 1", len(set.Terms))
	}
}

func TestInterestSetClone(t *testing.T) {
	set := NewInterestSet("quotes")
	set.Add(NewInterest("quotes").WithRange("price", 0, 10))
	cl := set.Clone()
	cl.Terms[0].Ranges["price"] = Range{Lo: 5, Hi: 6}
	if set.Terms[0].Ranges["price"] != (Range{Lo: 0, Hi: 10}) {
		t.Error("Clone shares term storage")
	}
}

// Property: widening safety — every tuple matched by any term is matched
// by the set's Cover.
func TestCoverWideningSafetyProperty(t *testing.T) {
	s := quotesSchema(t)
	f := func(lo1, w1, lo2, w2, probe uint16) bool {
		a := NewInterest("quotes").WithRange("price", float64(lo1), float64(lo1)+float64(w1))
		b := NewInterest("quotes").WithRange("price", float64(lo2), float64(lo2)+float64(w2))
		cov := Cover(a, b)
		tu := quoteTuple(1, "x", float64(probe), 0)
		if a.Matches(s, tu) || b.Matches(s, tu) {
			return cov.Matches(s, tu)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Overlap is symmetric and bounded by each side's selectivity.
func TestOverlapSymmetricBoundedProperty(t *testing.T) {
	s := quotesSchema(t)
	f := func(lo1, w1, lo2, w2 uint8) bool {
		a := NewInterest("quotes").WithRange("price", float64(lo1), float64(lo1)+float64(w1))
		b := NewInterest("quotes").WithRange("price", float64(lo2), float64(lo2)+float64(w2))
		ab, ba := Overlap(a, b, s), Overlap(b, a, s)
		if math.Abs(ab-ba) > 1e-12 {
			return false
		}
		return ab <= a.Selectivity(s)+1e-12 && ab <= b.Selectivity(s)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Simplify never loses coverage.
func TestSimplifyNeverLosesCoverageProperty(t *testing.T) {
	s := quotesSchema(t)
	f := func(spans []uint8, probe uint8) bool {
		if len(spans) == 0 {
			return true
		}
		set := NewInterestSet("quotes")
		for _, sp := range spans {
			lo := float64(sp)
			set.Add(NewInterest("quotes").WithRange("price", lo, lo+10))
		}
		tu := quoteTuple(1, "x", float64(probe), 0)
		matchedBefore := set.Matches(s, tu)
		set.Simplify(s, 2)
		if matchedBefore && !set.Matches(s, tu) {
			return false
		}
		return len(set.Terms) <= 2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInterestMatches(b *testing.B) {
	sc := MustSchema("quotes",
		Field{Name: "symbol", Type: KindString, Card: 100},
		Field{Name: "price", Type: KindFloat, Lo: 0, Hi: 1000},
		Field{Name: "volume", Type: KindInt, Lo: 0, Hi: 1e6},
	)
	in := NewInterest("quotes").WithRange("price", 100, 200).WithKeys("symbol", "a", "b", "c")
	tu := NewTuple("quotes", 1, time.Unix(1, 0), String("b"), Float(150), Int(10))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !in.Matches(sc, tu) {
			b.Fatal("no match")
		}
	}
}

func BenchmarkInterestSetMatches(b *testing.B) {
	sc := MustSchema("quotes",
		Field{Name: "symbol", Type: KindString, Card: 100},
		Field{Name: "price", Type: KindFloat, Lo: 0, Hi: 1000},
	)
	set := NewInterestSet("quotes")
	for i := 0; i < 16; i++ {
		set.Add(NewInterest("quotes").WithRange("price", float64(i*60), float64(i*60+30)))
	}
	tu := NewTuple("quotes", 1, time.Unix(1, 0), String("x"), Float(935))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		set.Matches(sc, tu)
	}
}
