package stream

import (
	"fmt"
	"sort"
	"sync"
)

// Field describes one attribute of a stream schema. Numeric fields may
// declare a domain [Lo, Hi] which interest-overlap estimation uses to
// turn predicate ranges into selectivity fractions.
type Field struct {
	Name string
	Type Kind
	// Lo and Hi bound the expected value domain for numeric fields.
	// They are advisory: tuples outside the domain are still legal.
	Lo, Hi float64
	// Card is the expected number of distinct values of a string field
	// (e.g. the number of stock symbols). Zero means unknown.
	Card int
}

// DomainWidth returns Hi-Lo, or 0 when no domain is declared.
func (f Field) DomainWidth() float64 {
	if f.Hi <= f.Lo {
		return 0
	}
	return f.Hi - f.Lo
}

// Schema is the typed layout of a stream's tuples. Schemas are immutable
// after construction and safe for concurrent use.
type Schema struct {
	name   string
	fields []Field
	index  map[string]int
}

// NewSchema builds a schema for the named stream. Field names must be
// unique and non-empty.
func NewSchema(name string, fields ...Field) (*Schema, error) {
	if name == "" {
		return nil, fmt.Errorf("stream: schema needs a stream name")
	}
	if len(fields) == 0 {
		return nil, fmt.Errorf("stream: schema %q needs at least one field", name)
	}
	idx := make(map[string]int, len(fields))
	for i, f := range fields {
		if f.Name == "" {
			return nil, fmt.Errorf("stream: schema %q field %d has empty name", name, i)
		}
		if f.Type == KindInvalid {
			return nil, fmt.Errorf("stream: schema %q field %q has invalid type", name, f.Name)
		}
		if _, dup := idx[f.Name]; dup {
			return nil, fmt.Errorf("stream: schema %q duplicate field %q", name, f.Name)
		}
		idx[f.Name] = i
	}
	fs := make([]Field, len(fields))
	copy(fs, fields)
	return &Schema{name: name, fields: fs, index: idx}, nil
}

// MustSchema is like NewSchema but panics on error. Intended for package
// level schema literals in tests and workload generators.
func MustSchema(name string, fields ...Field) *Schema {
	s, err := NewSchema(name, fields...)
	if err != nil {
		panic(err)
	}
	return s
}

// Name returns the stream name the schema describes.
func (s *Schema) Name() string { return s.name }

// NumFields returns the number of attributes.
func (s *Schema) NumFields() int { return len(s.fields) }

// Field returns the i-th field. It panics if i is out of range, matching
// slice semantics.
func (s *Schema) Field(i int) Field { return s.fields[i] }

// Fields returns a copy of the field list.
func (s *Schema) Fields() []Field {
	out := make([]Field, len(s.fields))
	copy(out, s.fields)
	return out
}

// FieldIndex returns the index of the named field and whether it exists.
func (s *Schema) FieldIndex(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// Validate checks that a tuple structurally conforms to the schema:
// correct stream name, arity, and per-field kinds.
func (s *Schema) Validate(t Tuple) error {
	if t.Stream != s.name {
		return fmt.Errorf("stream: tuple stream %q does not match schema %q", t.Stream, s.name)
	}
	if len(t.Values) != len(s.fields) {
		return fmt.Errorf("stream: tuple arity %d does not match schema %q arity %d",
			len(t.Values), s.name, len(s.fields))
	}
	for i, v := range t.Values {
		if v.Kind() != s.fields[i].Type {
			return fmt.Errorf("stream: tuple field %q is %v, schema wants %v",
				s.fields[i].Name, v.Kind(), s.fields[i].Type)
		}
	}
	return nil
}

// Project returns a derived schema containing only the named fields, in
// the order given, and the source indices of those fields.
func (s *Schema) Project(name string, fieldNames ...string) (*Schema, []int, error) {
	fields := make([]Field, 0, len(fieldNames))
	indices := make([]int, 0, len(fieldNames))
	for _, fn := range fieldNames {
		i, ok := s.index[fn]
		if !ok {
			return nil, nil, fmt.Errorf("stream: schema %q has no field %q", s.name, fn)
		}
		fields = append(fields, s.fields[i])
		indices = append(indices, i)
	}
	out, err := NewSchema(name, fields...)
	if err != nil {
		return nil, nil, err
	}
	return out, indices, nil
}

// String renders the schema as "name(field:type, ...)".
func (s *Schema) String() string {
	out := s.name + "("
	for i, f := range s.fields {
		if i > 0 {
			out += ", "
		}
		out += f.Name + ":" + f.Type.String()
	}
	return out + ")"
}

// Catalog is a registry of schemas keyed by stream name — the paper's
// "known global schema" shared by all entities. Catalog is safe for
// concurrent use.
type Catalog struct {
	mu      sync.RWMutex
	schemas map[string]*Schema
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{schemas: make(map[string]*Schema)}
}

// Register adds a schema. Registering a second schema for the same stream
// is an error: the global schema is agreed on up front.
func (c *Catalog) Register(s *Schema) error {
	if s == nil {
		return fmt.Errorf("stream: nil schema")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.schemas[s.Name()]; dup {
		return fmt.Errorf("stream: schema for %q already registered", s.Name())
	}
	c.schemas[s.Name()] = s
	return nil
}

// Lookup returns the schema for the named stream.
func (c *Catalog) Lookup(name string) (*Schema, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s, ok := c.schemas[name]
	return s, ok
}

// Streams returns the sorted names of all registered streams.
func (c *Catalog) Streams() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.schemas))
	for name := range c.schemas {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
