package stream

import (
	"testing"
	"testing/quick"
	"time"
)

func ts(sec int64) time.Time { return time.Unix(sec, 0).UTC() }

func intTuple(seq uint64, sec int64) Tuple {
	return NewTuple("s", seq, ts(sec), Int(int64(seq)))
}

func windowSeqs(w *Window) []uint64 {
	var out []uint64
	w.Each(func(t Tuple) bool {
		out = append(out, t.Seq)
		return true
	})
	return out
}

func TestCountWindowEviction(t *testing.T) {
	w := NewWindow(CountWindow(3))
	for i := uint64(1); i <= 5; i++ {
		evicted := w.Push(intTuple(i, int64(i)))
		if i <= 3 && evicted != 0 {
			t.Errorf("push %d evicted %d, want 0", i, evicted)
		}
		if i > 3 && evicted != 1 {
			t.Errorf("push %d evicted %d, want 1", i, evicted)
		}
	}
	if w.Len() != 3 {
		t.Fatalf("len = %d, want 3", w.Len())
	}
	got := windowSeqs(w)
	want := []uint64{3, 4, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("contents = %v, want %v", got, want)
		}
	}
}

func TestTimeWindowEviction(t *testing.T) {
	w := NewWindow(TimeWindow(10 * time.Second))
	w.Push(intTuple(1, 100))
	w.Push(intTuple(2, 105))
	w.Push(intTuple(3, 109))
	if w.Len() != 3 {
		t.Fatalf("len = %d, want 3", w.Len())
	}
	// 115-10=105 cutoff: tuple at 100 evicted, 105 retained (closed window).
	evicted := w.Push(intTuple(4, 115))
	if evicted != 1 {
		t.Fatalf("evicted = %d, want 1", evicted)
	}
	got := windowSeqs(w)
	if len(got) != 3 || got[0] != 2 {
		t.Fatalf("contents = %v, want [2 3 4]", got)
	}
}

func TestWindowOldestNewest(t *testing.T) {
	w := NewWindow(CountWindow(10))
	if _, ok := w.Oldest(); ok {
		t.Error("empty window has Oldest")
	}
	if _, ok := w.Newest(); ok {
		t.Error("empty window has Newest")
	}
	w.Push(intTuple(1, 1))
	w.Push(intTuple(2, 2))
	if o, _ := w.Oldest(); o.Seq != 1 {
		t.Errorf("oldest = %d", o.Seq)
	}
	if n, _ := w.Newest(); n.Seq != 2 {
		t.Errorf("newest = %d", n.Seq)
	}
}

func TestWindowGrowth(t *testing.T) {
	// Time windows grow beyond the initial capacity.
	w := NewWindow(TimeWindow(time.Hour))
	for i := uint64(0); i < 100; i++ {
		w.Push(intTuple(i, int64(i)))
	}
	if w.Len() != 100 {
		t.Fatalf("len = %d, want 100", w.Len())
	}
	got := windowSeqs(w)
	for i, seq := range got {
		if seq != uint64(i) {
			t.Fatalf("order broken at %d: %v", i, got[:i+1])
		}
	}
}

func TestWindowGrowthAfterWraparound(t *testing.T) {
	// Exercise ring wraparound: grow after head has advanced.
	w := NewWindow(CountWindow(4))
	for i := uint64(0); i < 6; i++ { // head advances by 2
		w.Push(intTuple(i, int64(i)))
	}
	// Switch behaviourally by pushing more within capacity; internal
	// buffer must preserve order across the wrap.
	got := windowSeqs(w)
	want := []uint64{2, 3, 4, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("contents = %v, want %v", got, want)
		}
	}
}

func TestWindowEachEarlyStop(t *testing.T) {
	w := NewWindow(CountWindow(5))
	for i := uint64(0); i < 5; i++ {
		w.Push(intTuple(i, int64(i)))
	}
	seen := 0
	w.Each(func(Tuple) bool {
		seen++
		return seen < 2
	})
	if seen != 2 {
		t.Fatalf("early stop saw %d, want 2", seen)
	}
}

func TestWindowClear(t *testing.T) {
	w := NewWindow(CountWindow(5))
	w.Push(intTuple(1, 1))
	w.Clear()
	if w.Len() != 0 {
		t.Fatal("Clear did not empty window")
	}
	w.Push(intTuple(2, 2))
	if got := windowSeqs(w); len(got) != 1 || got[0] != 2 {
		t.Fatalf("after clear+push: %v", got)
	}
}

func TestWindowSpecAccessors(t *testing.T) {
	w := NewWindow(CountWindow(7))
	if w.Spec().Kind != WindowByCount || w.Spec().Count != 7 {
		t.Errorf("spec = %+v", w.Spec())
	}
	tw := TimeWindow(3 * time.Second)
	if tw.Kind != WindowByTime || tw.Duration != 3*time.Second {
		t.Errorf("time spec = %+v", tw)
	}
}

// Property: a count window never exceeds its capacity and always retains
// the most recent tuples in order.
func TestCountWindowProperty(t *testing.T) {
	f := func(n uint8, pushes uint8) bool {
		capN := int(n%16) + 1
		w := NewWindow(CountWindow(capN))
		total := int(pushes)
		for i := 0; i < total; i++ {
			w.Push(intTuple(uint64(i), int64(i)))
		}
		if w.Len() > capN {
			return false
		}
		want := total - capN
		if want < 0 {
			want = 0
		}
		ok := true
		idx := want
		w.Each(func(tu Tuple) bool {
			if tu.Seq != uint64(idx) {
				ok = false
				return false
			}
			idx++
			return true
		})
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: time window contents always lie within the duration of the
// newest tuple.
func TestTimeWindowProperty(t *testing.T) {
	f := func(offsets []uint8) bool {
		w := NewWindow(TimeWindow(50 * time.Second))
		sec := int64(0)
		for i, off := range offsets {
			sec += int64(off % 20)
			w.Push(intTuple(uint64(i), sec))
		}
		newest, ok := w.Newest()
		if !ok {
			return len(offsets) == 0
		}
		cutoff := newest.Ts.Add(-50 * time.Second)
		valid := true
		w.Each(func(tu Tuple) bool {
			if tu.Ts.Before(cutoff) {
				valid = false
				return false
			}
			return true
		})
		return valid
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
