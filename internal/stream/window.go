package stream

import (
	"time"
)

// WindowKind selects how a sliding window bounds its contents.
type WindowKind uint8

// Window kinds.
const (
	// WindowByCount keeps the most recent N tuples.
	WindowByCount WindowKind = iota
	// WindowByTime keeps tuples whose timestamp is within D of the
	// newest tuple's timestamp.
	WindowByTime
)

// WindowSpec describes a sliding window: either the last Count tuples or
// the last Duration of event time.
type WindowSpec struct {
	Kind     WindowKind
	Count    int
	Duration time.Duration
}

// CountWindow returns a spec for the most recent n tuples.
func CountWindow(n int) WindowSpec { return WindowSpec{Kind: WindowByCount, Count: n} }

// TimeWindow returns a spec for the most recent d of event time.
func TimeWindow(d time.Duration) WindowSpec {
	return WindowSpec{Kind: WindowByTime, Duration: d}
}

// Window is a sliding window over one stream. It is not safe for
// concurrent use; operators own their windows.
type Window struct {
	spec WindowSpec
	// buf is a ring buffer of the window contents in arrival order.
	buf   []Tuple
	head  int // index of oldest element
	count int
}

// NewWindow returns an empty window with the given spec. The buffer
// starts small and grows on demand, so a large Count does not
// preallocate.
func NewWindow(spec WindowSpec) *Window {
	capHint := spec.Count
	if capHint <= 0 || capHint > 1024 {
		capHint = 16
	}
	return &Window{spec: spec, buf: make([]Tuple, capHint)}
}

// Spec returns the window's specification.
func (w *Window) Spec() WindowSpec { return w.spec }

// Len returns the number of tuples currently in the window.
func (w *Window) Len() int { return w.count }

// Push inserts a tuple and evicts anything that falls outside the window.
// It returns the number of tuples evicted.
func (w *Window) Push(t Tuple) int {
	n, _ := w.push(t, nil)
	return n
}

// PushCollect is Push, but the evicted tuples are appended to dst so
// callers that maintain auxiliary indexes (e.g. join hash tables) can
// unindex them. It returns the extended slice.
func (w *Window) PushCollect(t Tuple, dst []Tuple) []Tuple {
	if dst == nil {
		dst = make([]Tuple, 0, 4)
	}
	_, dst = w.push(t, dst)
	return dst
}

func (w *Window) push(t Tuple, dst []Tuple) (int, []Tuple) {
	w.grow()
	tail := (w.head + w.count) % len(w.buf)
	w.buf[tail] = t
	w.count++

	evicted := 0
	switch w.spec.Kind {
	case WindowByCount:
		for w.count > w.spec.Count && w.count > 0 {
			dst = w.evictOldest(dst)
			evicted++
		}
	case WindowByTime:
		cutoff := t.Ts.Add(-w.spec.Duration)
		for w.count > 0 && w.buf[w.head].Ts.Before(cutoff) {
			dst = w.evictOldest(dst)
			evicted++
		}
	}
	return evicted, dst
}

func (w *Window) evictOldest(dst []Tuple) []Tuple {
	if dst != nil {
		dst = append(dst, w.buf[w.head])
	}
	w.buf[w.head] = Tuple{} // release references
	w.head = (w.head + 1) % len(w.buf)
	w.count--
	return dst
}

func (w *Window) grow() {
	if w.count < len(w.buf) {
		return
	}
	bigger := make([]Tuple, len(w.buf)*2)
	for i := 0; i < w.count; i++ {
		bigger[i] = w.buf[(w.head+i)%len(w.buf)]
	}
	w.buf = bigger
	w.head = 0
}

// Each calls fn for every tuple in the window from oldest to newest,
// stopping early if fn returns false.
func (w *Window) Each(fn func(Tuple) bool) {
	for i := 0; i < w.count; i++ {
		if !fn(w.buf[(w.head+i)%len(w.buf)]) {
			return
		}
	}
}

// Oldest returns the oldest tuple and whether the window is non-empty.
func (w *Window) Oldest() (Tuple, bool) {
	if w.count == 0 {
		return Tuple{}, false
	}
	return w.buf[w.head], true
}

// Newest returns the newest tuple and whether the window is non-empty.
func (w *Window) Newest() (Tuple, bool) {
	if w.count == 0 {
		return Tuple{}, false
	}
	return w.buf[(w.head+w.count-1)%len(w.buf)], true
}

// Clear discards all contents.
func (w *Window) Clear() {
	for i := range w.buf {
		w.buf[i] = Tuple{}
	}
	w.head = 0
	w.count = 0
}
