// Package stream defines the data model shared by every layer of sspd:
// typed tuples flowing on named streams, stream schemas (the paper assumes
// a known global schema), sliding windows, and "data interest" predicates
// with which entities describe the subset of a stream their queries need
// (Section 3.1 of the paper). Interests support aggregation up a
// dissemination tree and overlap estimation, which supplies the edge
// weights of the query graph (Section 3.2.2).
package stream

import (
	"fmt"
	"strconv"
)

// Kind enumerates the primitive attribute types of the global schema.
type Kind uint8

// Supported value kinds.
const (
	KindInvalid Kind = iota
	KindInt
	KindFloat
	KindString
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	default:
		return "invalid"
	}
}

// Value is a dynamically typed attribute value. The zero Value is invalid.
// Values are small and intended to be passed by value.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
}

// Int returns a Value holding an int64.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a Value holding a float64.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// String returns a Value holding a string.
func String(v string) Value { return Value{kind: KindString, s: v} }

// Kind reports the kind of the value.
func (v Value) Kind() Kind { return v.kind }

// IsValid reports whether the value holds data of any kind.
func (v Value) IsValid() bool { return v.kind != KindInvalid }

// AsInt returns the int64 payload; it is 0 unless Kind is KindInt.
func (v Value) AsInt() int64 { return v.i }

// AsFloat returns the numeric payload as float64. Int values are
// converted; non-numeric values yield 0.
func (v Value) AsFloat() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt:
		return float64(v.i)
	default:
		return 0
	}
}

// AsString returns the string payload; it is "" unless Kind is KindString.
func (v Value) AsString() string { return v.s }

// IsNumeric reports whether the value is an int or float.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// Equal reports deep equality between two values. An int and a float
// comparing numerically equal are not Equal; kinds must match.
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindInt:
		return v.i == o.i
	case KindFloat:
		return v.f == o.f
	case KindString:
		return v.s == o.s
	default:
		return true
	}
}

// Compare orders two values of the same kind: -1 if v < o, 0 if equal,
// +1 if v > o. Numeric kinds compare by AsFloat so ints and floats are
// mutually comparable; comparing a string with a numeric value orders the
// numeric value first.
func (v Value) Compare(o Value) int {
	if v.IsNumeric() && o.IsNumeric() {
		a, b := v.AsFloat(), o.AsFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
	if v.kind == KindString && o.kind == KindString {
		switch {
		case v.s < o.s:
			return -1
		case v.s > o.s:
			return 1
		default:
			return 0
		}
	}
	// Mixed string/numeric: numerics sort first, invalid sorts before all.
	if v.kind == o.kind {
		return 0
	}
	if v.kind < o.kind {
		return -1
	}
	return 1
}

// wireSize returns the encoded size of the value in bytes, used for
// communication-cost accounting and the binary codec.
func (v Value) wireSize() int {
	switch v.kind {
	case KindInt, KindFloat:
		return 1 + 8
	case KindString:
		return 1 + 4 + len(v.s)
	default:
		return 1
	}
}

// String implements fmt.Stringer.
func (v Value) String() string {
	switch v.kind {
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	default:
		return "<invalid>"
	}
}

// GoString implements fmt.GoStringer for debugging output.
func (v Value) GoString() string {
	return fmt.Sprintf("stream.%s(%s)", kindConstructor(v.kind), v)
}

func kindConstructor(k Kind) string {
	switch k {
	case KindInt:
		return "Int"
	case KindFloat:
		return "Float"
	case KindString:
		return "String"
	default:
		return "Value"
	}
}
