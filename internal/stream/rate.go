package stream

import (
	"sync"
	"time"
)

// RateEstimator tracks the arrival rate of a stream in tuples/second and
// bytes/second over a sliding horizon. The inter-entity layer uses these
// estimates to weight query-graph edges and the Adaptation Module uses
// them to pick downstream processors.
type RateEstimator struct {
	mu      sync.Mutex
	horizon time.Duration
	// buckets holds per-interval tallies, one bucket per second of the
	// horizon, cycled by wall-clock second.
	buckets []rateBucket
	last    time.Time
	now     func() time.Time // injectable clock for tests
}

type rateBucket struct {
	sec    int64 // unix second this bucket currently represents
	tuples int64
	bytes  int64
}

// NewRateEstimator returns an estimator averaging over the given horizon
// (minimum one second).
func NewRateEstimator(horizon time.Duration) *RateEstimator {
	if horizon < time.Second {
		horizon = time.Second
	}
	n := int(horizon / time.Second)
	return &RateEstimator{
		horizon: horizon,
		buckets: make([]rateBucket, n),
		now:     time.Now,
	}
}

// SetClock overrides the wall clock; tests use it for determinism.
func (r *RateEstimator) SetClock(now func() time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.now = now
}

// Record notes the arrival of one tuple of the given encoded size.
func (r *RateEstimator) Record(size int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	sec := now.Unix()
	b := &r.buckets[int(sec)%len(r.buckets)]
	if b.sec != sec {
		b.sec = sec
		b.tuples = 0
		b.bytes = 0
	}
	b.tuples++
	b.bytes += int64(size)
	r.last = now
}

// Rates returns the estimated (tuples/second, bytes/second) averaged over
// the horizon.
func (r *RateEstimator) Rates() (tps, bps float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	sec := r.now().Unix()
	var tuples, bytes int64
	for _, b := range r.buckets {
		// Only count buckets that fall inside the current horizon.
		if b.sec > sec-int64(len(r.buckets)) && b.sec <= sec {
			tuples += b.tuples
			bytes += b.bytes
		}
	}
	secs := float64(len(r.buckets))
	return float64(tuples) / secs, float64(bytes) / secs
}

// LastArrival returns the time of the most recent Record call.
func (r *RateEstimator) LastArrival() time.Time {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.last
}
