package stream

// Compiled interest evaluation for the tuple hot path. Interest.Matches
// resolves field names through Schema.FieldIndex and iterates Go maps on
// every call — fine for control-plane work, far too slow for a relay that
// evaluates every tuple against every child's registration. Compiling an
// interest against its schema once (at registration time) moves all name
// resolution and map construction off the per-tuple path: a
// CompiledInterest stores constraints in flat slices indexed by field
// position and evaluates with zero allocations and zero map iteration.
//
// CompiledInterest.Matches is semantically identical to Interest.Matches
// (see the equivalence tests in compiled_test.go): a tuple from another
// stream never matches, and a constraint naming a field absent from the
// schema makes the interest match nothing.

// rangeCheck is one compiled numeric constraint: field position plus the
// closed interval.
type rangeCheck struct {
	idx    int
	lo, hi float64
}

// keyCheck is one compiled string-membership constraint. Single-key sets
// (by far the most common registration: "symbol == ibm") compare directly
// against one string; larger sets probe a map keyed only at compile time.
type keyCheck struct {
	idx    int
	single string
	set    map[string]struct{} // nil when single carries the constraint
}

// CompiledInterest is an Interest bound to a Schema for constant-time,
// allocation-free evaluation. The zero value matches nothing; build one
// with CompileInterest. A CompiledInterest is immutable after compilation
// and safe for concurrent use.
type CompiledInterest struct {
	stream string
	// dead marks an interest constraining a field the schema does not
	// declare: it can never match (the same conservative choice
	// Interest.Matches makes).
	dead          bool
	unconstrained bool
	ranges        []rangeCheck
	keys          []keyCheck
}

// CompileInterest resolves the interest's field names against the schema
// and returns the compiled form. A nil schema compiles every constrained
// interest to dead (nothing can be resolved), matching the behaviour of
// Interest.Matches which requires a schema to look up fields.
func CompileInterest(in Interest, s *Schema) CompiledInterest {
	c := CompiledInterest{stream: in.Stream}
	if in.Unconstrained() {
		c.unconstrained = true
		return c
	}
	if s == nil {
		c.dead = true
		return c
	}
	for field, r := range in.Ranges {
		i, ok := s.FieldIndex(field)
		if !ok {
			c.dead = true
			return c
		}
		c.ranges = append(c.ranges, rangeCheck{idx: i, lo: r.Lo, hi: r.Hi})
	}
	for field, set := range in.Keys {
		i, ok := s.FieldIndex(field)
		if !ok {
			c.dead = true
			return c
		}
		kc := keyCheck{idx: i}
		if len(set) == 1 {
			for k := range set {
				kc.single = k
			}
		} else {
			kc.set = make(map[string]struct{}, len(set))
			for k := range set {
				kc.set[k] = struct{}{}
			}
		}
		c.keys = append(c.keys, kc)
	}
	return c
}

// Matches reports whether the tuple satisfies the compiled interest. It
// is equivalent to the source Interest's Matches against the compile-time
// schema, but performs no name resolution, no map iteration, and no
// allocation.
func (c *CompiledInterest) Matches(t Tuple) bool {
	if t.Stream != c.stream || c.dead {
		return false
	}
	return c.matchValues(t)
}

// matchValues evaluates only the value constraints (the caller has
// already checked the stream).
func (c *CompiledInterest) matchValues(t Tuple) bool {
	for i := range c.ranges {
		rc := &c.ranges[i]
		// Same comparison shape as Range.Contains so NaN behaves
		// identically (never inside any range).
		v := t.Value(rc.idx).AsFloat()
		if !(v >= rc.lo && v <= rc.hi) {
			return false
		}
	}
	for i := range c.keys {
		kc := &c.keys[i]
		sv := t.Value(kc.idx).AsString()
		if kc.set == nil {
			if sv != kc.single {
				return false
			}
		} else if _, ok := kc.set[sv]; !ok {
			return false
		}
	}
	return true
}

// Unconstrained reports whether the compiled interest matches every tuple
// of its stream.
func (c *CompiledInterest) Unconstrained() bool { return c.unconstrained }

// CompiledSet is an InterestSet bound to a schema: a disjunction of
// compiled terms sharing one stream check. It is immutable after
// compilation and safe for concurrent use; relays swap in a freshly
// compiled set whenever a registration changes.
type CompiledSet struct {
	stream string
	terms  []CompiledInterest
	// matchAll is set when any term is unconstrained: the whole set then
	// reduces to a stream check. Relays use it to forward an incoming
	// wire payload verbatim instead of re-encoding.
	matchAll bool
}

// CompileSet compiles every term of the set against the schema. Dead
// terms (constraining fields the schema lacks) are dropped — they can
// never match, exactly as in the interpreted evaluation.
func CompileSet(set *InterestSet, s *Schema) *CompiledSet {
	cs := &CompiledSet{stream: set.Stream}
	for _, term := range set.Terms {
		ct := CompileInterest(term, s)
		if ct.dead {
			continue
		}
		if ct.unconstrained {
			cs.matchAll = true
		}
		cs.terms = append(cs.terms, ct)
	}
	return cs
}

// Stream returns the stream every term applies to.
func (cs *CompiledSet) Stream() string { return cs.stream }

// Matches reports whether any term matches the tuple. Equivalent to
// InterestSet.Matches against the compile-time schema.
func (cs *CompiledSet) Matches(t Tuple) bool {
	if t.Stream != cs.stream {
		return false
	}
	if cs.matchAll {
		return true
	}
	for i := range cs.terms {
		if cs.terms[i].matchValues(t) {
			return true
		}
	}
	return false
}

// NeverMatches reports whether the set can match no tuple at all (no
// live terms).
func (cs *CompiledSet) NeverMatches() bool { return len(cs.terms) == 0 }

// MatchesAll reports whether the set matches every tuple of its stream —
// the pass-through signal for relays.
func (cs *CompiledSet) MatchesAll() bool { return cs.matchAll }

// NumTerms returns the number of live (non-dead) compiled terms.
func (cs *CompiledSet) NumTerms() int { return len(cs.terms) }
