package stream

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

func compiledTestSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema("quotes",
		Field{Name: "symbol", Type: KindString, Card: 100},
		Field{Name: "price", Type: KindFloat, Lo: 0, Hi: 500},
		Field{Name: "size", Type: KindInt, Lo: 0, Hi: 10000},
		Field{Name: "venue", Type: KindString, Card: 8},
	)
	if err != nil {
		t.Fatalf("schema: %v", err)
	}
	return s
}

// TestCompiledInterestEquivalenceTable pins the tricky cases by hand:
// wrong stream, absent fields, single- and multi-key sets, empty sets,
// and values outside the tuple's arity.
func TestCompiledInterestEquivalenceTable(t *testing.T) {
	sc := compiledTestSchema(t)
	mk := func(sym string, price float64, size int64, venue string) Tuple {
		return NewTuple("quotes", 1, time.Unix(0, 0),
			String(sym), Float(price), Int(size), String(venue))
	}
	cases := []struct {
		name string
		in   Interest
		t    Tuple
	}{
		{"unconstrained", NewInterest("quotes"), mk("ibm", 10, 5, "nyse")},
		{"wrong stream", NewInterest("trades").WithRange("price", 0, 100), mk("ibm", 10, 5, "nyse")},
		{"wrong stream tuple", NewInterest("quotes").WithRange("price", 0, 100),
			NewTuple("trades", 1, time.Unix(0, 0), Float(10))},
		{"range hit", NewInterest("quotes").WithRange("price", 5, 15), mk("ibm", 10, 5, "nyse")},
		{"range miss", NewInterest("quotes").WithRange("price", 5, 15), mk("ibm", 20, 5, "nyse")},
		{"range boundary lo", NewInterest("quotes").WithRange("price", 10, 15), mk("ibm", 10, 5, "nyse")},
		{"range boundary hi", NewInterest("quotes").WithRange("price", 5, 10), mk("ibm", 10, 5, "nyse")},
		{"range on int field", NewInterest("quotes").WithRange("size", 0, 10), mk("ibm", 10, 5, "nyse")},
		{"absent field range", NewInterest("quotes").WithRange("ghost", 0, 100), mk("ibm", 10, 5, "nyse")},
		{"absent field keys", NewInterest("quotes").WithKeys("ghost", "x"), mk("ibm", 10, 5, "nyse")},
		{"single key hit", NewInterest("quotes").WithKeys("symbol", "ibm"), mk("ibm", 10, 5, "nyse")},
		{"single key miss", NewInterest("quotes").WithKeys("symbol", "aapl"), mk("ibm", 10, 5, "nyse")},
		{"multi key hit", NewInterest("quotes").WithKeys("symbol", "aapl", "ibm", "msft"), mk("ibm", 10, 5, "nyse")},
		{"multi key miss", NewInterest("quotes").WithKeys("symbol", "aapl", "msft"), mk("ibm", 10, 5, "nyse")},
		{"key on numeric field", NewInterest("quotes").WithKeys("price", "10"), mk("ibm", 10, 5, "nyse")},
		{"combined hit", NewInterest("quotes").WithRange("price", 5, 15).WithKeys("venue", "nyse"),
			mk("ibm", 10, 5, "nyse")},
		{"combined half miss", NewInterest("quotes").WithRange("price", 5, 15).WithKeys("venue", "bats"),
			mk("ibm", 10, 5, "nyse")},
		{"short tuple", NewInterest("quotes").WithKeys("venue", "nyse"),
			NewTuple("quotes", 1, time.Unix(0, 0), String("ibm"))},
		{"short tuple range", NewInterest("quotes").WithRange("price", 5, 15),
			NewTuple("quotes", 1, time.Unix(0, 0), String("ibm"))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := tc.in.Matches(sc, tc.t)
			c := CompileInterest(tc.in, sc)
			if got := c.Matches(tc.t); got != want {
				t.Fatalf("CompiledInterest.Matches = %v, Interest.Matches = %v", got, want)
			}
		})
	}
}

// randomInterest builds a random interest over the schema, sometimes
// constraining fields the schema does not have and sometimes using the
// wrong stream.
func randomInterest(rng *rand.Rand, sc *Schema) Interest {
	streamName := sc.Name()
	if rng.Intn(10) == 0 {
		streamName = "other"
	}
	in := NewInterest(streamName)
	syms := []string{"ibm", "aapl", "msft", "goog", "amzn"}
	for i := 0; i < sc.NumFields(); i++ {
		f := sc.Field(i)
		if rng.Intn(2) == 0 {
			continue
		}
		switch f.Type {
		case KindString:
			n := 1 + rng.Intn(3)
			ks := make([]string, 0, n)
			for j := 0; j < n; j++ {
				ks = append(ks, syms[rng.Intn(len(syms))])
			}
			in = in.WithKeys(f.Name, ks...)
		default:
			lo := rng.Float64() * 100
			in = in.WithRange(f.Name, lo, lo+rng.Float64()*100)
		}
	}
	if rng.Intn(8) == 0 {
		in = in.WithRange("ghost", 0, 1) // absent from the schema
	}
	return in
}

func randomTuple(rng *rand.Rand, stream string) Tuple {
	syms := []string{"ibm", "aapl", "msft", "goog", "amzn"}
	venues := []string{"nyse", "bats", "arca"}
	nvals := rng.Intn(6) // sometimes shorter/longer than the schema
	vals := make([]Value, 0, nvals)
	for i := 0; i < nvals; i++ {
		switch i {
		case 0:
			vals = append(vals, String(syms[rng.Intn(len(syms))]))
		case 1:
			vals = append(vals, Float(rng.Float64()*200))
		case 2:
			vals = append(vals, Int(int64(rng.Intn(1000))))
		default:
			vals = append(vals, String(venues[rng.Intn(len(venues))]))
		}
	}
	return NewTuple(stream, uint64(rng.Intn(1000)), time.Unix(0, 0), vals...)
}

// TestCompiledInterestEquivalenceRandom fuzzes Matches equivalence over
// randomized interests and tuples (seeded for reproducibility).
func TestCompiledInterestEquivalenceRandom(t *testing.T) {
	sc := compiledTestSchema(t)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 2000; trial++ {
		in := randomInterest(rng, sc)
		c := CompileInterest(in, sc)
		tupleStream := "quotes"
		if rng.Intn(10) == 0 {
			tupleStream = "other"
		}
		tu := randomTuple(rng, tupleStream)
		want := in.Matches(sc, tu)
		if got := c.Matches(tu); got != want {
			t.Fatalf("trial %d: compiled=%v interpreted=%v\ninterest=%+v\ntuple=%+v",
				trial, got, want, in, tu)
		}
	}
}

// TestCompiledSetEquivalenceRandom fuzzes the set-level disjunction,
// including empty sets and sets whose every term is dead.
func TestCompiledSetEquivalenceRandom(t *testing.T) {
	sc := compiledTestSchema(t)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		set := NewInterestSet("quotes")
		for n := rng.Intn(4); n > 0; n-- {
			set.Add(randomInterest(rng, sc))
		}
		cs := CompileSet(set, sc)
		for probe := 0; probe < 20; probe++ {
			tupleStream := "quotes"
			if rng.Intn(10) == 0 {
				tupleStream = "other"
			}
			tu := randomTuple(rng, tupleStream)
			want := set.Matches(sc, tu)
			if got := cs.Matches(tu); got != want {
				t.Fatalf("trial %d: compiled=%v interpreted=%v\nset=%+v\ntuple=%+v",
					trial, got, want, set, tu)
			}
		}
	}
}

// TestCompiledSetFlags pins the relay-facing signals: NeverMatches for
// empty/dead sets, MatchesAll for unconstrained terms.
func TestCompiledSetFlags(t *testing.T) {
	sc := compiledTestSchema(t)
	empty := CompileSet(NewInterestSet("quotes"), sc)
	if !empty.NeverMatches() {
		t.Fatal("empty set should never match")
	}
	deadOnly := NewInterestSet("quotes")
	deadOnly.Add(NewInterest("quotes").WithRange("ghost", 0, 1))
	if cs := CompileSet(deadOnly, sc); !cs.NeverMatches() {
		t.Fatal("all-dead set should never match")
	}
	all := NewInterestSet("quotes")
	all.Add(NewInterest("quotes"))
	cs := CompileSet(all, sc)
	if !cs.MatchesAll() || cs.NeverMatches() {
		t.Fatalf("unconstrained set: MatchesAll=%v NeverMatches=%v", cs.MatchesAll(), cs.NeverMatches())
	}
	// MatchesAll still refuses tuples from another stream.
	if cs.Matches(NewTuple("other", 1, time.Unix(0, 0), Int(1))) {
		t.Fatal("MatchesAll set matched a wrong-stream tuple")
	}
}

// TestCompiledMatchZeroAllocs is the regression guard for the hot path:
// a compiled match must not allocate.
func TestCompiledMatchZeroAllocs(t *testing.T) {
	sc := compiledTestSchema(t)
	set := NewInterestSet("quotes")
	set.Add(NewInterest("quotes").WithRange("price", 5, 100).WithKeys("symbol", "ibm", "aapl"))
	set.Add(NewInterest("quotes").WithKeys("venue", "nyse"))
	cs := CompileSet(set, sc)
	tuples := []Tuple{
		NewTuple("quotes", 1, time.Unix(0, 0), String("ibm"), Float(50), Int(10), String("bats")),
		NewTuple("quotes", 2, time.Unix(0, 0), String("goog"), Float(50), Int(10), String("bats")),
		NewTuple("other", 3, time.Unix(0, 0), Int(1)),
	}
	sink := false
	allocs := testing.AllocsPerRun(1000, func() {
		for _, tu := range tuples {
			sink = cs.Matches(tu) || sink
		}
	})
	if allocs != 0 {
		t.Fatalf("CompiledSet.Matches allocated %.1f times per run, want 0", allocs)
	}
	_ = sink
}

// TestSimplifyMemoizedMatchesBruteForce checks the memoized Simplify
// against a literal reimplementation of the original O(n^3) loop.
func TestSimplifyMemoizedMatchesBruteForce(t *testing.T) {
	sc := compiledTestSchema(t)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		set := NewInterestSet("quotes")
		for n := 3 + rng.Intn(8); n > 0; n-- {
			set.Add(randomInterest(rng, sc))
		}
		want := set.Clone()
		simplifyBruteForce(want, sc, 2)
		got := set.Clone()
		got.Simplify(sc, 2)
		if fmt.Sprintf("%+v", got.Terms) != fmt.Sprintf("%+v", want.Terms) {
			t.Fatalf("trial %d: memoized Simplify diverged\ngot  %+v\nwant %+v", trial, got.Terms, want.Terms)
		}
	}
}

// simplifyBruteForce is the pre-memoization Simplify, kept verbatim as
// the behavioral oracle.
func simplifyBruteForce(s *InterestSet, sc *Schema, maxTerms int) {
	if maxTerms < 1 {
		maxTerms = 1
	}
	for len(s.Terms) > maxTerms {
		bestI, bestJ := 0, 1
		bestCost := 1e308
		for i := 0; i < len(s.Terms); i++ {
			for j := i + 1; j < len(s.Terms); j++ {
				cov := Cover(s.Terms[i], s.Terms[j])
				cost := cov.Selectivity(sc) -
					s.Terms[i].Selectivity(sc) - s.Terms[j].Selectivity(sc)
				if cost < bestCost {
					bestCost, bestI, bestJ = cost, i, j
				}
			}
		}
		merged := Cover(s.Terms[bestI], s.Terms[bestJ])
		s.Terms[bestI] = merged
		s.Terms = append(s.Terms[:bestJ], s.Terms[bestJ+1:]...)
	}
}
