package stream

import (
	"strings"
	"testing"
	"time"
)

func quotesSchema(t testing.TB) *Schema {
	t.Helper()
	s, err := NewSchema("quotes",
		Field{Name: "symbol", Type: KindString, Card: 100},
		Field{Name: "price", Type: KindFloat, Lo: 0, Hi: 1000},
		Field{Name: "volume", Type: KindInt, Lo: 0, Hi: 1e6},
	)
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	return s
}

func quoteTuple(seq uint64, symbol string, price float64, volume int64) Tuple {
	return NewTuple("quotes", seq, time.Unix(int64(seq), 0).UTC(),
		String(symbol), Float(price), Int(volume))
}

func TestNewSchemaErrors(t *testing.T) {
	cases := []struct {
		name   string
		stream string
		fields []Field
	}{
		{"empty stream name", "", []Field{{Name: "a", Type: KindInt}}},
		{"no fields", "s", nil},
		{"empty field name", "s", []Field{{Name: "", Type: KindInt}}},
		{"invalid type", "s", []Field{{Name: "a"}}},
		{"duplicate field", "s", []Field{{Name: "a", Type: KindInt}, {Name: "a", Type: KindFloat}}},
	}
	for _, c := range cases {
		if _, err := NewSchema(c.stream, c.fields...); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestMustSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustSchema with bad input did not panic")
		}
	}()
	MustSchema("")
}

func TestSchemaAccessors(t *testing.T) {
	s := quotesSchema(t)
	if s.Name() != "quotes" {
		t.Errorf("Name = %q", s.Name())
	}
	if s.NumFields() != 3 {
		t.Errorf("NumFields = %d", s.NumFields())
	}
	if s.Field(1).Name != "price" {
		t.Errorf("Field(1) = %q", s.Field(1).Name)
	}
	i, ok := s.FieldIndex("volume")
	if !ok || i != 2 {
		t.Errorf("FieldIndex(volume) = %d,%v", i, ok)
	}
	if _, ok := s.FieldIndex("missing"); ok {
		t.Error("FieldIndex(missing) should not exist")
	}
	fs := s.Fields()
	fs[0].Name = "mutated"
	if s.Field(0).Name != "symbol" {
		t.Error("Fields() must return a copy")
	}
	if got := s.String(); !strings.Contains(got, "price:float") {
		t.Errorf("String = %q", got)
	}
}

func TestSchemaValidate(t *testing.T) {
	s := quotesSchema(t)
	good := quoteTuple(1, "ibm", 90, 100)
	if err := s.Validate(good); err != nil {
		t.Errorf("valid tuple rejected: %v", err)
	}
	wrongStream := good
	wrongStream.Stream = "trades"
	if err := s.Validate(wrongStream); err == nil {
		t.Error("wrong stream accepted")
	}
	shortTuple := NewTuple("quotes", 1, time.Now(), String("ibm"))
	if err := s.Validate(shortTuple); err == nil {
		t.Error("wrong arity accepted")
	}
	wrongKind := NewTuple("quotes", 1, time.Now(), Int(1), Float(2), Int(3))
	if err := s.Validate(wrongKind); err == nil {
		t.Error("wrong field kind accepted")
	}
}

func TestSchemaProject(t *testing.T) {
	s := quotesSchema(t)
	proj, idx, err := s.Project("q2", "price", "symbol")
	if err != nil {
		t.Fatalf("Project: %v", err)
	}
	if proj.Name() != "q2" || proj.NumFields() != 2 {
		t.Fatalf("projection schema %v", proj)
	}
	if idx[0] != 1 || idx[1] != 0 {
		t.Fatalf("projection indices = %v", idx)
	}
	if _, _, err := s.Project("bad", "nope"); err == nil {
		t.Error("projecting missing field should fail")
	}
}

func TestFieldDomainWidth(t *testing.T) {
	if w := (Field{Lo: 10, Hi: 30}).DomainWidth(); w != 20 {
		t.Errorf("width = %v", w)
	}
	if w := (Field{Lo: 5, Hi: 5}).DomainWidth(); w != 0 {
		t.Errorf("degenerate width = %v", w)
	}
	if w := (Field{}).DomainWidth(); w != 0 {
		t.Errorf("zero field width = %v", w)
	}
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	s := quotesSchema(t)
	if err := c.Register(s); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := c.Register(s); err == nil {
		t.Error("duplicate register accepted")
	}
	if err := c.Register(nil); err == nil {
		t.Error("nil register accepted")
	}
	got, ok := c.Lookup("quotes")
	if !ok || got != s {
		t.Error("Lookup failed")
	}
	if _, ok := c.Lookup("missing"); ok {
		t.Error("Lookup(missing) succeeded")
	}
	other := MustSchema("alerts", Field{Name: "code", Type: KindInt})
	if err := c.Register(other); err != nil {
		t.Fatal(err)
	}
	streams := c.Streams()
	if len(streams) != 2 || streams[0] != "alerts" || streams[1] != "quotes" {
		t.Errorf("Streams = %v", streams)
	}
}

func TestTupleBasics(t *testing.T) {
	tu := quoteTuple(7, "ibm", 90.5, 100)
	if tu.Value(0).AsString() != "ibm" {
		t.Error("Value(0)")
	}
	if tu.Value(-1).IsValid() || tu.Value(99).IsValid() {
		t.Error("out-of-range Value should be invalid")
	}
	cl := tu.Clone()
	cl.Values[1] = Float(0)
	if tu.Value(1).AsFloat() != 90.5 {
		t.Error("Clone shares Values storage")
	}
	if s := tu.String(); !strings.Contains(s, "quotes#7") || !strings.Contains(s, "ibm") {
		t.Errorf("tuple String = %q", s)
	}
}

func TestTupleAndBatchSize(t *testing.T) {
	tu := quoteTuple(1, "ab", 1, 2)
	// stream "quotes"(6) +4 len prefix, seq 8, ts 8, nvalues 2,
	// string "ab" = 1+4+2, float = 9, int = 9.
	want := 4 + 6 + 8 + 8 + 2 + (1 + 4 + 2) + 9 + 9
	if got := tu.Size(); got != want {
		t.Errorf("Size = %d, want %d", got, want)
	}
	b := Batch{tu, tu}
	if got := b.Size(); got != 4+2*want {
		t.Errorf("batch Size = %d, want %d", got, 4+2*want)
	}
	// Size must agree exactly with the wire encoding.
	if enc := AppendTuple(nil, tu); len(enc) != tu.Size() {
		t.Errorf("encoded size %d != Size() %d", len(enc), tu.Size())
	}
	if enc := AppendBatch(nil, b); len(enc) != b.Size() {
		t.Errorf("encoded batch size %d != Size() %d", len(enc), b.Size())
	}
}
