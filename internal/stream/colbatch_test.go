package stream

import (
	"math"
	"testing"
	"time"
)

func colTestBatch(n int) Batch {
	b := make(Batch, 0, n)
	syms := []string{"ibm", "msft", "goog", "amzn"}
	for i := 0; i < n; i++ {
		b = append(b, NewTuple("quotes", uint64(i), time.Unix(0, int64(i)),
			String(syms[i%len(syms)]), Float(float64(i%100)), Int(int64(i))))
	}
	return b
}

func TestColBatchColumnsMatchRows(t *testing.T) {
	b := colTestBatch(64)
	cb := NewColBatch()
	cb.Reset(b)
	if cb.Len() != 64 || cb.Src() != 64 {
		t.Fatalf("Len=%d Src=%d want 64", cb.Len(), cb.Src())
	}
	prices := cb.FloatCol(1)
	symbols := cb.StringCol(0)
	for i := range b {
		if prices[i] != b[i].Value(1).AsFloat() {
			t.Fatalf("row %d: float col %v != row value %v", i, prices[i], b[i].Value(1).AsFloat())
		}
		if symbols[i] != b[i].Value(0).AsString() {
			t.Fatalf("row %d: string col %q != row value %q", i, symbols[i], b[i].Value(0).AsString())
		}
	}
	// Out-of-range field reads the zero Value, exactly like Tuple.Value.
	zeros := cb.FloatCol(9)
	for i := range zeros {
		if zeros[i] != 0 {
			t.Fatalf("out-of-range column row %d = %v, want 0", i, zeros[i])
		}
	}
	if got := cb.Row(5); got.Seq != 5 {
		t.Fatalf("Row(5).Seq = %d, want 5 (zero-copy view of the source)", got.Seq)
	}
}

// TestVecFilterMatchesEngineSemantics checks the vectorized filter
// agrees row-for-row with the engine's interpreted predicate, including
// the NaN edge: range checks reject on v < lo || v > hi, so NaN PASSES
// (both comparisons false) — unlike interest matching.
func TestVecFilterMatchesEngineSemantics(t *testing.T) {
	b := colTestBatch(32)
	b = append(b, NewTuple("quotes", 100, time.Unix(0, 0),
		String("ibm"), Float(math.NaN()), Int(1)))
	lo, hi := 20.0, 60.0
	keys := map[string]bool{"ibm": true, "goog": true}
	interp := func(tu Tuple) bool {
		v := tu.Value(1).AsFloat()
		if v < lo || v > hi {
			return false
		}
		return keys[tu.Value(0).AsString()]
	}
	cb := NewColBatch()
	cb.Reset(b)
	vf := NewVecFilter(1, lo, hi, 0, []string{"ibm", "goog"})
	vf.Apply(cb)
	var want []uint64
	for _, tu := range b {
		if interp(tu) {
			want = append(want, tu.Seq)
		}
	}
	var got []uint64
	for _, i := range cb.Sel() {
		got = append(got, cb.Row(i).Seq)
	}
	if len(want) == 0 || len(want) == len(b) {
		t.Fatalf("degenerate selectivity %d/%d", len(want), len(b))
	}
	if len(got) != len(want) {
		t.Fatalf("vec filter kept %d rows, interpreted kept %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("survivor %d: vec %d, interpreted %d", i, got[i], want[i])
		}
	}
	nanKept := false
	for _, s := range got {
		if s == 100 {
			nanKept = true
		}
	}
	if !nanKept {
		t.Fatal("NaN row rejected by range kernel; engine filter semantics keep it")
	}
}

func TestVecFilterSingleKeyFastPath(t *testing.T) {
	b := colTestBatch(40)
	cb := NewColBatch()
	cb.Reset(b)
	vf := NewVecFilter(-1, 0, 0, 0, []string{"msft"})
	n := vf.Apply(cb)
	if n != 10 {
		t.Fatalf("single-key filter kept %d of 40, want 10", n)
	}
	for _, i := range cb.Sel() {
		if cb.Row(i).Value(0).AsString() != "msft" {
			t.Fatalf("row %d survived a msft-only filter", i)
		}
	}
}

// Satellite guard: the vectorized filter kernel allocates nothing per
// batch in steady state — column buffers and the selection vector are
// reused across Reset calls.
func TestVecFilterKernelAllocFree(t *testing.T) {
	b := colTestBatch(256)
	cb := NewColBatch()
	vf := NewVecFilter(1, 10, 70, 0, []string{"ibm", "goog", "amzn"})
	// Warm the buffers to steady state.
	cb.Reset(b)
	vf.Apply(cb)
	allocs := testing.AllocsPerRun(1000, func() {
		cb.Reset(b)
		if vf.Apply(cb) == 0 {
			t.Fatal("filter eliminated everything")
		}
	})
	if allocs != 0 {
		t.Fatalf("vec filter kernel allocates %.1f/batch; want 0", allocs)
	}
}
