package stream

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Range is a closed numeric interval [Lo, Hi] constraining one field.
type Range struct {
	Lo, Hi float64
}

// Contains reports whether v lies inside the range.
func (r Range) Contains(v float64) bool { return v >= r.Lo && v <= r.Hi }

// Empty reports whether the range contains no values.
func (r Range) Empty() bool { return r.Hi < r.Lo }

// Width returns Hi-Lo, or 0 for an empty range.
func (r Range) Width() float64 {
	if r.Empty() {
		return 0
	}
	return r.Hi - r.Lo
}

// Intersect returns the overlap of two ranges (possibly empty).
func (r Range) Intersect(o Range) Range {
	return Range{Lo: math.Max(r.Lo, o.Lo), Hi: math.Min(r.Hi, o.Hi)}
}

// Union returns the smallest range covering both (the bounding interval).
func (r Range) Union(o Range) Range {
	if r.Empty() {
		return o
	}
	if o.Empty() {
		return r
	}
	return Range{Lo: math.Min(r.Lo, o.Lo), Hi: math.Max(r.Hi, o.Hi)}
}

// Interest is the paper's "data interest": a conjunctive predicate that
// describes the subset of one stream a query (or an entity, after
// aggregation) requires. Each constrained field carries either a numeric
// Range or a string membership set; unconstrained fields match anything.
//
// Interests are the vocabulary with which entities express requirements
// to their dissemination-tree ancestors (early filtering, Section 3.1) and
// from which query-graph edge weights are estimated (Section 3.2.2).
type Interest struct {
	// Stream names the stream this interest applies to.
	Stream string
	// Ranges constrains numeric fields by name.
	Ranges map[string]Range
	// Keys constrains string fields by name to a set of allowed values.
	Keys map[string]map[string]bool
}

// NewInterest returns an unconstrained interest in the named stream
// (i.e. "all of it").
func NewInterest(streamName string) Interest {
	return Interest{Stream: streamName}
}

// WithRange returns a copy of the interest with a numeric range
// constraint added (replacing any prior constraint on the field).
func (in Interest) WithRange(field string, lo, hi float64) Interest {
	out := in.Clone()
	if out.Ranges == nil {
		out.Ranges = make(map[string]Range, 1)
	}
	out.Ranges[field] = Range{Lo: lo, Hi: hi}
	return out
}

// WithKeys returns a copy of the interest constraining a string field to
// the given set of values.
func (in Interest) WithKeys(field string, keys ...string) Interest {
	out := in.Clone()
	if out.Keys == nil {
		out.Keys = make(map[string]map[string]bool, 1)
	}
	set := make(map[string]bool, len(keys))
	for _, k := range keys {
		set[k] = true
	}
	out.Keys[field] = set
	return out
}

// Clone returns a deep copy of the interest.
func (in Interest) Clone() Interest {
	out := Interest{Stream: in.Stream}
	if in.Ranges != nil {
		out.Ranges = make(map[string]Range, len(in.Ranges))
		for k, v := range in.Ranges {
			out.Ranges[k] = v
		}
	}
	if in.Keys != nil {
		out.Keys = make(map[string]map[string]bool, len(in.Keys))
		for f, set := range in.Keys {
			cp := make(map[string]bool, len(set))
			for k := range set {
				cp[k] = true
			}
			out.Keys[f] = cp
		}
	}
	return out
}

// Unconstrained reports whether the interest matches every tuple of its
// stream.
func (in Interest) Unconstrained() bool { return len(in.Ranges) == 0 && len(in.Keys) == 0 }

// Matches reports whether the tuple satisfies the interest. A tuple from
// a different stream never matches. Constraints naming fields absent from
// the schema do not match (a conservative choice that surfaces schema
// drift in tests rather than silently passing data through).
func (in Interest) Matches(s *Schema, t Tuple) bool {
	if t.Stream != in.Stream {
		return false
	}
	for field, r := range in.Ranges {
		i, ok := s.FieldIndex(field)
		if !ok {
			return false
		}
		if !r.Contains(t.Value(i).AsFloat()) {
			return false
		}
	}
	for field, set := range in.Keys {
		i, ok := s.FieldIndex(field)
		if !ok {
			return false
		}
		if !set[t.Value(i).AsString()] {
			return false
		}
	}
	return true
}

// Selectivity estimates the fraction of the stream the interest selects,
// assuming independent, uniformly distributed fields over the schema's
// declared domains. Fields with no declared domain contribute factor 1.
func (in Interest) Selectivity(s *Schema) float64 {
	sel := 1.0
	for field, r := range in.Ranges {
		i, ok := s.FieldIndex(field)
		if !ok {
			return 0
		}
		f := s.Field(i)
		w := f.DomainWidth()
		if w <= 0 {
			continue
		}
		clipped := r.Intersect(Range{Lo: f.Lo, Hi: f.Hi})
		sel *= clipped.Width() / w
	}
	for field, set := range in.Keys {
		i, ok := s.FieldIndex(field)
		if !ok {
			return 0
		}
		f := s.Field(i)
		if f.Card <= 0 {
			continue
		}
		frac := float64(len(set)) / float64(f.Card)
		if frac > 1 {
			frac = 1
		}
		sel *= frac
	}
	return sel
}

// Overlap estimates the fraction of the stream that satisfies BOTH
// interests — the quantity the paper multiplies by the stream arrival
// rate to weight query-graph edges. Interests in different streams never
// overlap.
func Overlap(a, b Interest, s *Schema) float64 {
	if a.Stream != b.Stream {
		return 0
	}
	return a.intersect(b).Selectivity(s)
}

// intersect returns the conjunction of two interests in the same stream.
func (in Interest) intersect(o Interest) Interest {
	out := in.Clone()
	for field, r := range o.Ranges {
		if out.Ranges == nil {
			out.Ranges = make(map[string]Range)
		}
		if existing, ok := out.Ranges[field]; ok {
			out.Ranges[field] = existing.Intersect(r)
		} else {
			out.Ranges[field] = r
		}
	}
	for field, set := range o.Keys {
		if out.Keys == nil {
			out.Keys = make(map[string]map[string]bool)
		}
		if existing, ok := out.Keys[field]; ok {
			merged := make(map[string]bool)
			for k := range set {
				if existing[k] {
					merged[k] = true
				}
			}
			out.Keys[field] = merged
		} else {
			cp := make(map[string]bool, len(set))
			for k := range set {
				cp[k] = true
			}
			out.Keys[field] = cp
		}
	}
	return out
}

// Cover returns the smallest conjunctive interest containing both inputs:
// per-field bounding ranges and key-set unions; a field constrained in
// only one input becomes unconstrained (any widening is safe for early
// filtering — ancestors may forward too much, never too little).
func Cover(a, b Interest) Interest {
	if a.Stream != b.Stream {
		// Covering across streams is meaningless; return an
		// unconstrained interest in a's stream as the safe answer.
		return NewInterest(a.Stream)
	}
	out := NewInterest(a.Stream)
	for field, ra := range a.Ranges {
		rb, ok := b.Ranges[field]
		if !ok {
			continue // unconstrained in b -> unconstrained in cover
		}
		if out.Ranges == nil {
			out.Ranges = make(map[string]Range)
		}
		out.Ranges[field] = ra.Union(rb)
	}
	for field, sa := range a.Keys {
		sb, ok := b.Keys[field]
		if !ok {
			continue
		}
		merged := make(map[string]bool, len(sa)+len(sb))
		for k := range sa {
			merged[k] = true
		}
		for k := range sb {
			merged[k] = true
		}
		if out.Keys == nil {
			out.Keys = make(map[string]map[string]bool)
		}
		out.Keys[field] = merged
	}
	return out
}

// String renders the interest for logs: "stream{field in [lo,hi], ...}".
func (in Interest) String() string {
	if in.Unconstrained() {
		return in.Stream + "{*}"
	}
	var parts []string
	for field, r := range in.Ranges {
		parts = append(parts, fmt.Sprintf("%s in [%g,%g]", field, r.Lo, r.Hi))
	}
	for field, set := range in.Keys {
		keys := make([]string, 0, len(set))
		for k := range set {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts = append(parts, fmt.Sprintf("%s in {%s}", field, strings.Join(keys, ",")))
	}
	sort.Strings(parts)
	return in.Stream + "{" + strings.Join(parts, ", ") + "}"
}

// InterestSet is a disjunction of interests in one stream. A
// dissemination-tree node aggregates the interests registered by its
// children into an InterestSet and forwards a tuple downward iff any term
// matches. To bound the per-tuple filtering cost the set can be
// simplified: terms are merged (covered) once the set grows beyond a
// limit, trading filtering precision for evaluation speed — widening is
// always safe.
type InterestSet struct {
	// Stream names the stream all terms apply to.
	Stream string
	// Terms holds the disjuncts. An empty Terms matches nothing.
	Terms []Interest
}

// NewInterestSet returns an empty set for the named stream.
func NewInterestSet(streamName string) *InterestSet {
	return &InterestSet{Stream: streamName}
}

// Add inserts one interest. Interests for other streams are ignored.
func (s *InterestSet) Add(in Interest) {
	if in.Stream != s.Stream {
		return
	}
	s.Terms = append(s.Terms, in.Clone())
}

// Matches reports whether any term matches the tuple.
func (s *InterestSet) Matches(sc *Schema, t Tuple) bool {
	for _, term := range s.Terms {
		if term.Matches(sc, t) {
			return true
		}
	}
	return false
}

// Empty reports whether the set has no terms (matches nothing).
func (s *InterestSet) Empty() bool { return len(s.Terms) == 0 }

// Cover returns a single conjunctive interest containing every term, or
// an unconstrained interest when the set is empty (the safe default for
// an ancestor that has no information).
func (s *InterestSet) Cover() Interest {
	if len(s.Terms) == 0 {
		return NewInterest(s.Stream)
	}
	out := s.Terms[0].Clone()
	for _, term := range s.Terms[1:] {
		out = Cover(out, term)
	}
	return out
}

// Selectivity estimates the fraction of the stream matched by the
// disjunction using inclusion bounded by 1 (terms may overlap, so this is
// an upper bound; exact for disjoint terms).
func (s *InterestSet) Selectivity(sc *Schema) float64 {
	sum := 0.0
	for _, term := range s.Terms {
		sum += term.Selectivity(sc)
		if sum >= 1 {
			return 1
		}
	}
	return sum
}

// Simplify reduces the set to at most maxTerms terms by repeatedly
// merging the pair of terms whose cover has the least selectivity
// increase over the schema. maxTerms < 1 collapses to a single cover.
func (s *InterestSet) Simplify(sc *Schema, maxTerms int) {
	if maxTerms < 1 {
		maxTerms = 1
	}
	if len(s.Terms) <= maxTerms {
		return
	}
	// Term selectivities are memoized across merge steps: each pass only
	// computes Selectivity for candidate covers, and a merge reuses the
	// winning cover's selectivity instead of recomputing it next round.
	sels := make([]float64, len(s.Terms))
	for i := range s.Terms {
		sels[i] = s.Terms[i].Selectivity(sc)
	}
	for len(s.Terms) > maxTerms {
		bestI, bestJ := 0, 1
		bestCost := math.Inf(1)
		var bestCov Interest
		bestCovSel := 0.0
		for i := 0; i < len(s.Terms); i++ {
			for j := i + 1; j < len(s.Terms); j++ {
				cov := Cover(s.Terms[i], s.Terms[j])
				covSel := cov.Selectivity(sc)
				cost := covSel - sels[i] - sels[j]
				if cost < bestCost {
					bestCost, bestI, bestJ = cost, i, j
					bestCov, bestCovSel = cov, covSel
				}
			}
		}
		s.Terms[bestI] = bestCov
		sels[bestI] = bestCovSel
		s.Terms = append(s.Terms[:bestJ], s.Terms[bestJ+1:]...)
		sels = append(sels[:bestJ], sels[bestJ+1:]...)
	}
}

// Clone returns a deep copy of the set.
func (s *InterestSet) Clone() *InterestSet {
	out := NewInterestSet(s.Stream)
	for _, t := range s.Terms {
		out.Terms = append(out.Terms, t.Clone())
	}
	return out
}
