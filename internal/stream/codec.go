package stream

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"
)

// unixNano converts unix nanoseconds into a time.Time in UTC so decoded
// tuples compare equal across machines regardless of local zone.
func unixNano(n int64) time.Time { return time.Unix(0, n).UTC() }

// Binary tuple codec used by the TCP transport. The format is a simple
// length-delimited little-endian layout matching Tuple.Size exactly, so
// the simulated and real transports account identical byte counts:
//
//	uint32 len(stream) | stream bytes
//	uint64 seq
//	int64  ts (unix nanoseconds)
//	uint16 nvalues (top bit: trace span present)
//	per value: uint8 kind, then 8-byte payload (int/float)
//	           or uint32 len + bytes (string)
//	uint64 span (only when the nvalues top bit is set)
//
// A traced tuple (Span != 0) sets the top bit of nvalues and appends its
// span after the values; untraced tuples encode exactly as before, so
// enabling the codec's trace support costs zero wire bytes until
// sampling actually marks a tuple.

const maxWireString = 1 << 20 // sanity bound when decoding

// wireSpanFlag marks a trailing trace-span word in the nvalues field.
// Schemas are bounded far below 2^15 attributes, so the bit is free.
const wireSpanFlag = 0x8000

// AppendTuple encodes t onto dst and returns the extended slice.
func AppendTuple(dst []byte, t Tuple) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(t.Stream)))
	dst = append(dst, t.Stream...)
	dst = binary.LittleEndian.AppendUint64(dst, t.Seq)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(t.Ts.UnixNano()))
	nvals := uint16(len(t.Values))
	if t.Span != 0 {
		nvals |= wireSpanFlag
	}
	dst = binary.LittleEndian.AppendUint16(dst, nvals)
	for _, v := range t.Values {
		dst = append(dst, byte(v.kind))
		switch v.kind {
		case KindInt:
			dst = binary.LittleEndian.AppendUint64(dst, uint64(v.i))
		case KindFloat:
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.f))
		case KindString:
			dst = binary.LittleEndian.AppendUint32(dst, uint32(len(v.s)))
			dst = append(dst, v.s...)
		}
	}
	if t.Span != 0 {
		dst = binary.LittleEndian.AppendUint64(dst, t.Span)
	}
	return dst
}

// DecodeTuple decodes one tuple from the front of buf, returning the
// tuple and the number of bytes consumed.
func DecodeTuple(buf []byte) (Tuple, int, error) {
	var t Tuple
	off := 0
	need := func(n int) error {
		if len(buf)-off < n {
			return fmt.Errorf("stream: truncated tuple (need %d bytes at offset %d, have %d)",
				n, off, len(buf)-off)
		}
		return nil
	}
	if err := need(4); err != nil {
		return t, 0, err
	}
	slen := int(binary.LittleEndian.Uint32(buf[off:]))
	off += 4
	if slen > maxWireString {
		return t, 0, fmt.Errorf("stream: stream name length %d exceeds bound", slen)
	}
	if err := need(slen + 8 + 8 + 2); err != nil {
		return t, 0, err
	}
	t.Stream = string(buf[off : off+slen])
	off += slen
	t.Seq = binary.LittleEndian.Uint64(buf[off:])
	off += 8
	nanos := int64(binary.LittleEndian.Uint64(buf[off:]))
	off += 8
	t.Ts = unixNano(nanos)
	rawVals := binary.LittleEndian.Uint16(buf[off:])
	off += 2
	hasSpan := rawVals&wireSpanFlag != 0
	nvals := int(rawVals &^ uint16(wireSpanFlag))
	t.Values = make([]Value, 0, nvals)
	for i := 0; i < nvals; i++ {
		if err := need(1); err != nil {
			return t, 0, err
		}
		kind := Kind(buf[off])
		off++
		switch kind {
		case KindInt:
			if err := need(8); err != nil {
				return t, 0, err
			}
			t.Values = append(t.Values, Int(int64(binary.LittleEndian.Uint64(buf[off:]))))
			off += 8
		case KindFloat:
			if err := need(8); err != nil {
				return t, 0, err
			}
			t.Values = append(t.Values, Float(math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))))
			off += 8
		case KindString:
			if err := need(4); err != nil {
				return t, 0, err
			}
			n := int(binary.LittleEndian.Uint32(buf[off:]))
			off += 4
			if n > maxWireString {
				return t, 0, fmt.Errorf("stream: string value length %d exceeds bound", n)
			}
			if err := need(n); err != nil {
				return t, 0, err
			}
			t.Values = append(t.Values, String(string(buf[off:off+n])))
			off += n
		default:
			return t, 0, fmt.Errorf("stream: unknown value kind %d", kind)
		}
	}
	if hasSpan {
		if err := need(8); err != nil {
			return t, 0, err
		}
		t.Span = binary.LittleEndian.Uint64(buf[off:])
		off += 8
	}
	return t, off, nil
}

// AppendBatch encodes a batch (count prefix then each tuple).
func AppendBatch(dst []byte, b Batch) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(b)))
	for _, t := range b {
		dst = AppendTuple(dst, t)
	}
	return dst
}

// DecodeBatch decodes a batch from the front of buf, returning the batch
// and bytes consumed.
func DecodeBatch(buf []byte) (Batch, int, error) {
	if len(buf) < 4 {
		return nil, 0, fmt.Errorf("stream: truncated batch header")
	}
	n := int(binary.LittleEndian.Uint32(buf))
	off := 4
	if n > 1<<24 {
		return nil, 0, fmt.Errorf("stream: batch count %d exceeds bound", n)
	}
	out := make(Batch, 0, n)
	for i := 0; i < n; i++ {
		t, used, err := DecodeTuple(buf[off:])
		if err != nil {
			return nil, 0, fmt.Errorf("stream: batch tuple %d: %w", i, err)
		}
		out = append(out, t)
		off += used
	}
	return out, off, nil
}
