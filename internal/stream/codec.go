package stream

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"time"
)

// unixNano converts unix nanoseconds into a time.Time in UTC so decoded
// tuples compare equal across machines regardless of local zone.
func unixNano(n int64) time.Time { return time.Unix(0, n).UTC() }

// Binary tuple codec used by the TCP transport. The format is a simple
// length-delimited little-endian layout matching Tuple.Size exactly, so
// the simulated and real transports account identical byte counts:
//
//	uint32 len(stream) | stream bytes
//	uint64 seq
//	int64  ts (unix nanoseconds)
//	uint16 nvalues (top bit: trace span present)
//	per value: uint8 kind, then 8-byte payload (int/float)
//	           or uint32 len + bytes (string)
//	uint64 span (only when the nvalues top bit is set)
//
// A traced tuple (Span != 0) sets the top bit of nvalues and appends its
// span after the values; untraced tuples encode exactly as before, so
// enabling the codec's trace support costs zero wire bytes until
// sampling actually marks a tuple.

const maxWireString = 1 << 20 // sanity bound when decoding

// wireSpanFlag marks a trailing trace-span word in the nvalues field.
// Schemas are bounded far below 2^15 attributes, so the bit is free.
const wireSpanFlag = 0x8000

// AppendTuple encodes t onto dst and returns the extended slice.
func AppendTuple(dst []byte, t Tuple) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(t.Stream)))
	dst = append(dst, t.Stream...)
	dst = binary.LittleEndian.AppendUint64(dst, t.Seq)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(t.Ts.UnixNano()))
	nvals := uint16(len(t.Values))
	if t.Span != 0 {
		nvals |= wireSpanFlag
	}
	dst = binary.LittleEndian.AppendUint16(dst, nvals)
	for _, v := range t.Values {
		dst = append(dst, byte(v.kind))
		switch v.kind {
		case KindInt:
			dst = binary.LittleEndian.AppendUint64(dst, uint64(v.i))
		case KindFloat:
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.f))
		case KindString:
			dst = binary.LittleEndian.AppendUint32(dst, uint32(len(v.s)))
			dst = append(dst, v.s...)
		}
	}
	if t.Span != 0 {
		dst = binary.LittleEndian.AppendUint64(dst, t.Span)
	}
	return dst
}

// DecodeTuple decodes one tuple from the front of buf, returning the
// tuple and the number of bytes consumed.
func DecodeTuple(buf []byte) (Tuple, int, error) {
	var t Tuple
	off := 0
	need := func(n int) error {
		if len(buf)-off < n {
			return fmt.Errorf("stream: truncated tuple (need %d bytes at offset %d, have %d)",
				n, off, len(buf)-off)
		}
		return nil
	}
	if err := need(4); err != nil {
		return t, 0, err
	}
	slen := int(binary.LittleEndian.Uint32(buf[off:]))
	off += 4
	if slen > maxWireString {
		return t, 0, fmt.Errorf("stream: stream name length %d exceeds bound", slen)
	}
	if err := need(slen + 8 + 8 + 2); err != nil {
		return t, 0, err
	}
	t.Stream = string(buf[off : off+slen])
	off += slen
	t.Seq = binary.LittleEndian.Uint64(buf[off:])
	off += 8
	nanos := int64(binary.LittleEndian.Uint64(buf[off:]))
	off += 8
	t.Ts = unixNano(nanos)
	rawVals := binary.LittleEndian.Uint16(buf[off:])
	off += 2
	hasSpan := rawVals&wireSpanFlag != 0
	nvals := int(rawVals &^ uint16(wireSpanFlag))
	t.Values = make([]Value, 0, nvals)
	for i := 0; i < nvals; i++ {
		if err := need(1); err != nil {
			return t, 0, err
		}
		kind := Kind(buf[off])
		off++
		switch kind {
		case KindInt:
			if err := need(8); err != nil {
				return t, 0, err
			}
			t.Values = append(t.Values, Int(int64(binary.LittleEndian.Uint64(buf[off:]))))
			off += 8
		case KindFloat:
			if err := need(8); err != nil {
				return t, 0, err
			}
			t.Values = append(t.Values, Float(math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))))
			off += 8
		case KindString:
			if err := need(4); err != nil {
				return t, 0, err
			}
			n := int(binary.LittleEndian.Uint32(buf[off:]))
			off += 4
			if n > maxWireString {
				return t, 0, fmt.Errorf("stream: string value length %d exceeds bound", n)
			}
			if err := need(n); err != nil {
				return t, 0, err
			}
			t.Values = append(t.Values, String(string(buf[off:off+n])))
			off += n
		default:
			return t, 0, fmt.Errorf("stream: unknown value kind %d", kind)
		}
	}
	if hasSpan {
		if err := need(8); err != nil {
			return t, 0, err
		}
		t.Span = binary.LittleEndian.Uint64(buf[off:])
		off += 8
	}
	return t, off, nil
}

// AppendBatch encodes a batch (count prefix then each tuple).
func AppendBatch(dst []byte, b Batch) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(b)))
	for _, t := range b {
		dst = AppendTuple(dst, t)
	}
	return dst
}

// DecodeBatch decodes a batch from the front of buf, returning the batch
// and bytes consumed.
func DecodeBatch(buf []byte) (Batch, int, error) {
	if len(buf) < 4 {
		return nil, 0, fmt.Errorf("stream: truncated batch header")
	}
	n := int(binary.LittleEndian.Uint32(buf))
	off := 4
	if n > 1<<24 {
		return nil, 0, fmt.Errorf("stream: batch count %d exceeds bound", n)
	}
	out := make(Batch, 0, clampBatchCap(n, len(buf)-off))
	for i := 0; i < n; i++ {
		t, used, err := DecodeTuple(buf[off:])
		if err != nil {
			return nil, 0, fmt.Errorf("stream: batch tuple %d: %w", i, err)
		}
		out = append(out, t)
		off += used
	}
	return out, off, nil
}

// minTupleWire is the smallest possible encoded tuple: empty stream name,
// seq, ts, and a zero-value count with no span.
const minTupleWire = 4 + 8 + 8 + 2

// clampBatchCap bounds a wire-declared batch count by what the remaining
// buffer could physically hold, so a corrupt 4-byte header can cost at
// most a small allocation before the first truncated-tuple error.
func clampBatchCap(n, remaining int) int {
	if maxFit := remaining/minTupleWire + 1; n > maxFit {
		return maxFit
	}
	return n
}

// --- Pooled hot-path codec ---------------------------------------------
//
// The relay data plane decodes and re-encodes a batch on every hop.
// DecodeTuple/DecodeBatch allocate a Values slice per tuple and a fresh
// string per stream name; at relay rates that dominates the profile. A
// DecodeBuffer amortizes all of it: tuples land in a reusable Batch, all
// values in one flat arena, and stream names (plus short string values)
// are interned so steady-state decoding allocates nothing.
//
// Ownership contract: the Batch returned by DecodeBuffer.Decode — tuples,
// Values, and (interned) strings — is valid only until the next Decode on
// the same buffer or until the buffer is returned to the pool. Callers
// that hand tuples to anyone who may retain them (engines, windows, user
// subscribers) must clone them out first; the relay does exactly that for
// local delivery and treats forwarded payloads as consumed once
// Transport.Send returns (see simnet.Transport).

// maxInternedValueLen bounds which string values are interned; longer
// strings are assumed unique payloads not worth caching.
const maxInternedValueLen = 64

// maxInternedValues bounds the value-intern table so adversarial or
// high-cardinality streams cannot grow it without limit.
const maxInternedValues = 1 << 15

// DecodeBuffer decodes batches with reusable storage. Not safe for
// concurrent use; get one per goroutine via GetDecodeBuffer.
type DecodeBuffer struct {
	tuples Batch
	vals   []Value // arena shared by every tuple's Values
	starts []int   // vals offset where each tuple's values begin
	names  map[string]string
	strs   map[string]string
}

// internName returns a stable string for a stream name, allocating only
// the first time each distinct name is seen. Stream-name cardinality is
// tiny (one per stream), so the table is unbounded.
func (d *DecodeBuffer) internName(b []byte) string {
	if s, ok := d.names[string(b)]; ok { // compiler elides the conversion
		return s
	}
	s := string(b)
	d.names[s] = s
	return s
}

// internString returns a stable string for a short string value, bounded
// in both entry length and table size.
func (d *DecodeBuffer) internString(b []byte) string {
	if len(b) > maxInternedValueLen {
		return string(b)
	}
	if s, ok := d.strs[string(b)]; ok {
		return s
	}
	s := string(b)
	if len(d.strs) < maxInternedValues {
		d.strs[s] = s
	}
	return s
}

// Decode decodes a batch from the front of buf into the buffer's
// reusable storage, returning the batch and bytes consumed. The returned
// Batch is owned by the DecodeBuffer (see the contract above). On error
// the buffer's contents are unspecified but the buffer remains usable.
func (d *DecodeBuffer) Decode(buf []byte) (Batch, int, error) {
	if d.names == nil {
		d.names = make(map[string]string, 8)
		d.strs = make(map[string]string, 64)
	}
	d.tuples = d.tuples[:0]
	d.vals = d.vals[:0]
	d.starts = d.starts[:0]
	if len(buf) < 4 {
		return nil, 0, fmt.Errorf("stream: truncated batch header")
	}
	n := int(binary.LittleEndian.Uint32(buf))
	off := 4
	if n > 1<<24 {
		return nil, 0, fmt.Errorf("stream: batch count %d exceeds bound", n)
	}
	if c := clampBatchCap(n, len(buf)-off); cap(d.tuples) < c {
		d.tuples = make(Batch, 0, c)
		d.starts = make([]int, 0, c)
	}
	for i := 0; i < n; i++ {
		used, err := d.decodeTuple(buf[off:])
		if err != nil {
			return nil, 0, fmt.Errorf("stream: batch tuple %d: %w", i, err)
		}
		off += used
	}
	// The arena may have been reallocated by growth during the loop, so
	// only now re-slice each tuple's Values out of its final backing
	// array. The three-index slice keeps tuples from appending into each
	// other's tails.
	for i := range d.tuples {
		s := d.starts[i]
		e := len(d.vals)
		if i+1 < len(d.tuples) {
			e = d.starts[i+1]
		}
		d.tuples[i].Values = d.vals[s:e:e]
	}
	return d.tuples, off, nil
}

// decodeTuple mirrors DecodeTuple but appends into the buffer's arena and
// interns strings instead of allocating per tuple.
func (d *DecodeBuffer) decodeTuple(buf []byte) (int, error) {
	off := 0
	need := func(n int) error {
		if len(buf)-off < n {
			return fmt.Errorf("stream: truncated tuple (need %d bytes at offset %d, have %d)",
				n, off, len(buf)-off)
		}
		return nil
	}
	if err := need(4); err != nil {
		return 0, err
	}
	slen := int(binary.LittleEndian.Uint32(buf[off:]))
	off += 4
	if slen > maxWireString {
		return 0, fmt.Errorf("stream: stream name length %d exceeds bound", slen)
	}
	if err := need(slen + 8 + 8 + 2); err != nil {
		return 0, err
	}
	var t Tuple
	t.Stream = d.internName(buf[off : off+slen])
	off += slen
	t.Seq = binary.LittleEndian.Uint64(buf[off:])
	off += 8
	t.Ts = unixNano(int64(binary.LittleEndian.Uint64(buf[off:])))
	off += 8
	rawVals := binary.LittleEndian.Uint16(buf[off:])
	off += 2
	hasSpan := rawVals&wireSpanFlag != 0
	nvals := int(rawVals &^ uint16(wireSpanFlag))
	d.starts = append(d.starts, len(d.vals))
	for i := 0; i < nvals; i++ {
		if err := need(1); err != nil {
			return 0, err
		}
		kind := Kind(buf[off])
		off++
		switch kind {
		case KindInt:
			if err := need(8); err != nil {
				return 0, err
			}
			d.vals = append(d.vals, Int(int64(binary.LittleEndian.Uint64(buf[off:]))))
			off += 8
		case KindFloat:
			if err := need(8); err != nil {
				return 0, err
			}
			d.vals = append(d.vals, Float(math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))))
			off += 8
		case KindString:
			if err := need(4); err != nil {
				return 0, err
			}
			n := int(binary.LittleEndian.Uint32(buf[off:]))
			off += 4
			if n > maxWireString {
				return 0, fmt.Errorf("stream: string value length %d exceeds bound", n)
			}
			if err := need(n); err != nil {
				return 0, err
			}
			d.vals = append(d.vals, String(d.internString(buf[off:off+n])))
			off += n
		default:
			return 0, fmt.Errorf("stream: unknown value kind %d", kind)
		}
	}
	if hasSpan {
		if err := need(8); err != nil {
			return 0, err
		}
		t.Span = binary.LittleEndian.Uint64(buf[off:])
		off += 8
	}
	d.tuples = append(d.tuples, t)
	return off, nil
}

var decodeBufPool = sync.Pool{New: func() any { return new(DecodeBuffer) }}

// GetDecodeBuffer returns a DecodeBuffer from a process-wide pool.
func GetDecodeBuffer() *DecodeBuffer { return decodeBufPool.Get().(*DecodeBuffer) }

// PutDecodeBuffer returns a buffer to the pool. Any Batch previously
// returned by its Decode becomes invalid.
func PutDecodeBuffer(d *DecodeBuffer) {
	if d != nil {
		decodeBufPool.Put(d)
	}
}

var encodeBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// GetEncodeBuffer returns a pooled byte buffer (length 0) for use with
// AppendBatch/AppendTuple on the hot path.
func GetEncodeBuffer() *[]byte { return encodeBufPool.Get().(*[]byte) }

// PutEncodeBuffer returns a buffer to the pool. The caller must no longer
// reference any payload sliced from it — on send paths that is guaranteed
// by the Transport.Send contract (payload fully consumed before Send
// returns).
func PutEncodeBuffer(b *[]byte) {
	if b == nil {
		return
	}
	*b = (*b)[:0]
	encodeBufPool.Put(b)
}
