package stream

import (
	"fmt"
	"strings"
	"time"
)

// Tuple is one data item on a stream. Tuples are value types; operators
// that modify a tuple must copy Values first (see Clone).
type Tuple struct {
	// Stream names the stream the tuple belongs to.
	Stream string
	// Seq is the source-assigned sequence number, unique per stream.
	Seq uint64
	// Ts is the event timestamp assigned by the source.
	Ts time.Time
	// Values holds the attribute values in schema order.
	Values []Value
	// Span is the tuple's trace-span ID; zero means the tuple is not
	// traced (the overwhelmingly common case). Sampled tuples keep
	// their span across relays and operator fragments so the
	// observability layer can reconstruct the full journey.
	Span uint64
}

// NewTuple constructs a tuple on the named stream.
func NewTuple(streamName string, seq uint64, ts time.Time, values ...Value) Tuple {
	return Tuple{Stream: streamName, Seq: seq, Ts: ts, Values: values}
}

// Clone returns a deep copy of the tuple (Values slice is copied).
func (t Tuple) Clone() Tuple {
	vs := make([]Value, len(t.Values))
	copy(vs, t.Values)
	t.Values = vs
	return t
}

// Value returns the i-th attribute, or an invalid Value when out of range.
func (t Tuple) Value(i int) Value {
	if i < 0 || i >= len(t.Values) {
		return Value{}
	}
	return t.Values[i]
}

// Size returns the tuple's encoded size in bytes. It is the unit of the
// communication-cost accounting throughout the system (the paper weighs
// query-graph edges in bytes/second).
func (t Tuple) Size() int {
	n := 4 + len(t.Stream) + 8 + 8 + 2 // stream, seq, ts(unixnano), nvalues
	for _, v := range t.Values {
		n += v.wireSize()
	}
	if t.Span != 0 {
		n += 8 // trace span, only present on sampled tuples
	}
	return n
}

// String renders the tuple compactly for logs and debugging.
func (t Tuple) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s#%d[", t.Stream, t.Seq)
	for i, v := range t.Values {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(v.String())
	}
	b.WriteByte(']')
	return b.String()
}

// Batch is a slice of tuples shipped as one message. Batching amortizes
// per-message transport overhead on high-rate streams.
type Batch []Tuple

// Size returns the total encoded size of the batch in bytes.
func (b Batch) Size() int {
	n := 4 // count prefix
	for _, t := range b {
		n += t.Size()
	}
	return n
}
