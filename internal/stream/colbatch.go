package stream

// Columnar batch evaluation for the engine hot path. A ColBatch is a
// transposed view over a row-oriented Batch: per-field value columns
// (extracted lazily, only for the fields a pipeline actually touches)
// plus a selection vector of surviving row indexes. Vectorized filter
// kernels scan a primitive column and shrink the selection vector in
// place; surviving rows are read back as the *original* tuples, so the
// columnar form never materializes new tuples and stays zero-copy with
// respect to the source batch.
//
// A ColBatch is owned by one shard goroutine and reused across batches
// (Reset) and across the queries sharing a batch (ResetSel): in steady
// state neither resetting nor filtering allocates. Columns are built at
// most once per (batch, field) no matter how many queries or filter
// steps read them.

// ColBatch is a columnar view over one same-stream Batch plus a
// selection vector. The zero value is ready for Reset.
type ColBatch struct {
	src Batch
	// sel holds the indexes of surviving rows in batch order. Filter
	// kernels compact it in place.
	sel []int32
	// fcols/scols cache per-field numeric (Value.AsFloat) and string
	// (Value.AsString) columns, indexed by field position. built tracks
	// which entries are valid for the current src.
	fcols  [][]float64
	scols  [][]string
	fbuilt []bool
	sbuilt []bool
}

// NewColBatch returns an empty ColBatch ready for Reset.
func NewColBatch() *ColBatch { return &ColBatch{} }

// Reset points the ColBatch at a new source batch: the selection vector
// becomes the identity and all cached columns are invalidated. The
// source batch is retained (read-only) until the next Reset; in steady
// state Reset performs no allocation once internal buffers have grown
// to the largest batch and widest schema seen.
func (cb *ColBatch) Reset(b Batch) {
	cb.src = b
	cb.ResetSel()
	for i := range cb.fbuilt {
		cb.fbuilt[i] = false
	}
	for i := range cb.sbuilt {
		cb.sbuilt[i] = false
	}
}

// ResetSel restores the identity selection (all rows live) without
// invalidating cached columns. Engines call it between queries sharing
// one batch: each query filters its own selection over shared columns.
func (cb *ColBatch) ResetSel() {
	n := len(cb.src)
	if cap(cb.sel) < n {
		cb.sel = make([]int32, n)
	}
	cb.sel = cb.sel[:n]
	for i := range cb.sel {
		cb.sel[i] = int32(i)
	}
}

// Len returns the number of currently selected (surviving) rows.
func (cb *ColBatch) Len() int { return len(cb.sel) }

// Src returns the number of rows in the underlying source batch.
func (cb *ColBatch) Src() int { return len(cb.src) }

// Sel returns the live selection vector (batch-ordered row indexes).
// The slice is invalidated by the next Reset/ResetSel/filter call.
func (cb *ColBatch) Sel() []int32 { return cb.sel }

// Row returns the original tuple at source row i. No copy is made.
func (cb *ColBatch) Row(i int32) Tuple { return cb.src[i] }

// growCols ensures the column caches cover field index idx.
func (cb *ColBatch) growCols(idx int) {
	for len(cb.fcols) <= idx {
		cb.fcols = append(cb.fcols, nil)
		cb.fbuilt = append(cb.fbuilt, false)
	}
	for len(cb.scols) <= idx {
		cb.scols = append(cb.scols, nil)
		cb.sbuilt = append(cb.sbuilt, false)
	}
}

// FloatCol returns the numeric column for field idx (Value.AsFloat per
// row, so ints convert and non-numerics read 0 — identical to the
// row-wise semantics). Built on first use per Reset, then cached.
func (cb *ColBatch) FloatCol(idx int) []float64 {
	cb.growCols(idx)
	if !cb.fbuilt[idx] {
		col := cb.fcols[idx]
		if cap(col) < len(cb.src) {
			col = make([]float64, len(cb.src))
		}
		col = col[:len(cb.src)]
		for i := range cb.src {
			col[i] = cb.src[i].Value(idx).AsFloat()
		}
		cb.fcols[idx] = col
		cb.fbuilt[idx] = true
	}
	return cb.fcols[idx]
}

// StringCol returns the string column for field idx (Value.AsString per
// row: "" for non-string values, matching row-wise reads).
func (cb *ColBatch) StringCol(idx int) []string {
	cb.growCols(idx)
	if !cb.sbuilt[idx] {
		col := cb.scols[idx]
		if cap(col) < len(cb.src) {
			col = make([]string, len(cb.src))
		}
		col = col[:len(cb.src)]
		for i := range cb.src {
			col[i] = cb.src[i].Value(idx).AsString()
		}
		cb.scols[idx] = col
		cb.sbuilt[idx] = true
	}
	return cb.scols[idx]
}

// VecFilter is one conjunctive filter step compiled for columnar
// evaluation — the batch counterpart of the compiled-matcher rangeCheck/
// keyCheck machinery. Apply shrinks a ColBatch's selection vector in
// place with zero allocations.
//
// Semantics match the engine's per-tuple filter predicate (not interest
// matching): a range constraint rejects when v < lo || v > hi, so NaN
// values PASS range checks (both comparisons are false), exactly as the
// interpreted filter behaves. Key constraints reject rows whose string
// value is outside the set; non-string values read "" and match only an
// explicit "" key.
type VecFilter struct {
	ranges []rangeCheck
	keys   []keyCheck
}

// NewVecFilter compiles a filter step. rangeIdx/keyIdx are resolved
// field positions; pass -1 to omit a constraint. keys lists the
// admitted string values for the key constraint.
func NewVecFilter(rangeIdx int, lo, hi float64, keyIdx int, keys []string) *VecFilter {
	f := &VecFilter{}
	if rangeIdx >= 0 {
		f.ranges = append(f.ranges, rangeCheck{idx: rangeIdx, lo: lo, hi: hi})
	}
	if keyIdx >= 0 {
		kc := keyCheck{idx: keyIdx}
		if len(keys) == 1 {
			kc.single = keys[0]
		} else {
			kc.set = make(map[string]struct{}, len(keys))
			for _, k := range keys {
				kc.set[k] = struct{}{}
			}
		}
		f.keys = append(f.keys, kc)
	}
	return f
}

// Apply evaluates the filter over the batch's columns and compacts the
// selection vector to the surviving rows, returning their count. One
// call covers the whole batch: no per-row function calls, no per-row
// locks, no allocations.
func (f *VecFilter) Apply(cb *ColBatch) int {
	sel := cb.sel
	for r := range f.ranges {
		rc := &f.ranges[r]
		col := cb.FloatCol(rc.idx)
		lo, hi := rc.lo, rc.hi
		out := sel[:0]
		for _, i := range sel {
			v := col[i]
			if v < lo || v > hi {
				continue
			}
			out = append(out, i)
		}
		sel = out
	}
	for k := range f.keys {
		kc := &f.keys[k]
		col := cb.StringCol(kc.idx)
		out := sel[:0]
		if kc.set == nil {
			single := kc.single
			for _, i := range sel {
				if col[i] != single {
					continue
				}
				out = append(out, i)
			}
		} else {
			for _, i := range sel {
				if _, ok := kc.set[col[i]]; !ok {
					continue
				}
				out = append(out, i)
			}
		}
		sel = out
	}
	cb.sel = sel
	return len(sel)
}
