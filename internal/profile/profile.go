// Package profile is the continuous profiling hook of the engine
// introspection plane (DESIGN.md §14): periodic CPU and heap pprof
// captures into a bounded on-disk ring, plus on-demand captures the
// backpressure watchdog triggers when a saturation rule breaches. The
// ring is delete-oldest, so a long-running node keeps a recent window
// of profiles in fixed disk space; captures are served by the HTTP API
// at GET /profiles.
//
// Everything here runs off the tuple path: the periodic loop sleeps
// between captures, heap profiles are written synchronously by the
// caller's goroutine, and CPU profiles run on their own goroutine for
// their sampling window. A single in-flight guard makes overlapping
// triggers (watchdog storm during saturation) collapse into one CPU
// capture instead of queueing.
package profile

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kinds of capture.
const (
	KindCPU  = "cpu"
	KindHeap = "heap"
)

// Capture describes one stored profile.
type Capture struct {
	// Name is the on-disk file name, unique and sortable by capture
	// order (zero-padded sequence prefix).
	Name string `json:"name"`
	// Kind is "cpu" or "heap".
	Kind string `json:"kind"`
	// Reason records why the capture happened: "periodic" or the
	// saturation rule that triggered it.
	Reason string `json:"reason"`
	// UnixNano is the capture completion time.
	UnixNano int64 `json:"unix_nano"`
	// Bytes is the stored profile size.
	Bytes int64 `json:"bytes"`
}

// Options configures a Recorder.
type Options struct {
	// Dir is the capture directory; created if missing.
	Dir string
	// Period between periodic capture rounds; 0 disables the periodic
	// loop (triggered captures still work).
	Period time.Duration
	// CPUDuration is the CPU profile sampling window (default 1s).
	CPUDuration time.Duration
	// MaxCaptures bounds the on-disk ring (default 32); the oldest
	// captures are deleted to make room.
	MaxCaptures int
}

// DefaultMaxCaptures bounds the on-disk profile ring when Options does
// not say otherwise.
const DefaultMaxCaptures = 32

// DefaultCPUDuration is the default CPU sampling window.
const DefaultCPUDuration = time.Second

// Recorder owns the bounded on-disk profile ring.
type Recorder struct {
	opts Options

	mu       sync.Mutex
	captures []Capture // oldest first
	seq      uint64
	closed   bool

	// cpuBusy collapses concurrent CPU-capture requests: pprof supports
	// only one CPU profile at a time process-wide.
	cpuBusy atomic.Bool
	// onCapture, when set, is called after each stored capture (the
	// core plane journals profile.captured and bumps its counter).
	onCapture func(Capture)

	total atomic.Int64 // lifetime captures stored

	loopMu sync.Mutex
	stop   chan struct{}
	done   chan struct{}
	wg     sync.WaitGroup
}

// NewRecorder creates the capture directory and returns a Recorder.
// Pre-existing captures in the directory are not adopted: each process
// starts its own ring (stale files are overwritten as names collide
// only within a process lifetime thanks to the pid infix).
func NewRecorder(opts Options) (*Recorder, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("profile: Dir is required")
	}
	if opts.CPUDuration <= 0 {
		opts.CPUDuration = DefaultCPUDuration
	}
	if opts.MaxCaptures <= 0 {
		opts.MaxCaptures = DefaultMaxCaptures
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("profile: %w", err)
	}
	return &Recorder{opts: opts}, nil
}

// SetOnCapture installs a hook called after every stored capture.
func (r *Recorder) SetOnCapture(fn func(Capture)) {
	r.mu.Lock()
	r.onCapture = fn
	r.mu.Unlock()
}

// Total returns the lifetime number of stored captures.
func (r *Recorder) Total() int64 { return r.total.Load() }

// Start launches the periodic capture loop (no-op when Period is 0).
func (r *Recorder) Start() {
	if r.opts.Period <= 0 {
		return
	}
	r.loopMu.Lock()
	defer r.loopMu.Unlock()
	if r.stop != nil {
		return
	}
	r.stop = make(chan struct{})
	r.done = make(chan struct{})
	go func(stop, done chan struct{}) {
		defer close(done)
		t := time.NewTicker(r.opts.Period)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				r.Trigger("periodic")
			}
		}
	}(r.stop, r.done)
}

// Trigger captures a heap profile synchronously and starts an
// asynchronous CPU capture (skipped if one is already sampling).
// reason labels the captures ("periodic", or the breached rule).
func (r *Recorder) Trigger(reason string) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.mu.Unlock()
	r.captureHeap(reason)
	r.captureCPUAsync(reason)
}

func (r *Recorder) captureHeap(reason string) {
	name := r.nextName(KindHeap)
	path := filepath.Join(r.opts.Dir, name)
	f, err := os.Create(path)
	if err != nil {
		return
	}
	// Fold recently freed objects in before snapshotting, the
	// conventional pre-heap-profile GC.
	runtime.GC()
	err = pprof.WriteHeapProfile(f)
	cerr := f.Close()
	if err != nil || cerr != nil {
		os.Remove(path)
		return
	}
	r.record(name, KindHeap, reason, path)
}

func (r *Recorder) captureCPUAsync(reason string) {
	if !r.cpuBusy.CompareAndSwap(false, true) {
		return // a CPU profile is already sampling
	}
	name := r.nextName(KindCPU)
	path := filepath.Join(r.opts.Dir, name)
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		defer r.cpuBusy.Store(false)
		f, err := os.Create(path)
		if err != nil {
			return
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			os.Remove(path)
			return
		}
		time.Sleep(r.opts.CPUDuration)
		pprof.StopCPUProfile()
		if err := f.Close(); err != nil {
			os.Remove(path)
			return
		}
		r.record(name, KindCPU, reason, path)
	}()
}

// nextName allocates a unique, order-sortable file name.
func (r *Recorder) nextName(kind string) string {
	r.mu.Lock()
	r.seq++
	n := r.seq
	r.mu.Unlock()
	return fmt.Sprintf("%06d-%s.pprof", n, kind)
}

// record registers a finished capture and evicts the oldest beyond the
// ring bound.
func (r *Recorder) record(name, kind, reason, path string) {
	info, err := os.Stat(path)
	if err != nil {
		return
	}
	c := Capture{Name: name, Kind: kind, Reason: reason,
		UnixNano: time.Now().UnixNano(), Bytes: info.Size()}
	var evict []string
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		os.Remove(path)
		return
	}
	r.captures = append(r.captures, c)
	for len(r.captures) > r.opts.MaxCaptures {
		evict = append(evict, r.captures[0].Name)
		r.captures = r.captures[1:]
	}
	fn := r.onCapture
	r.mu.Unlock()
	r.total.Add(1)
	for _, n := range evict {
		os.Remove(filepath.Join(r.opts.Dir, n))
	}
	if fn != nil {
		fn(c)
	}
}

// Captures lists the stored captures, oldest first.
func (r *Recorder) Captures() []Capture {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Capture(nil), r.captures...)
}

// Open returns the stored bytes of one capture by name. The name is
// validated against the ring (no path traversal).
func (r *Recorder) Open(name string) ([]byte, error) {
	if strings.ContainsAny(name, "/\\") {
		return nil, fmt.Errorf("profile: bad capture name %q", name)
	}
	r.mu.Lock()
	found := false
	for _, c := range r.captures {
		if c.Name == name {
			found = true
			break
		}
	}
	r.mu.Unlock()
	if !found {
		return nil, fmt.Errorf("profile: unknown capture %q", name)
	}
	return os.ReadFile(filepath.Join(r.opts.Dir, name))
}

// Dir returns the capture directory.
func (r *Recorder) Dir() string { return r.opts.Dir }

// WaitIdle blocks until no asynchronous CPU capture is in flight —
// a test convenience.
func (r *Recorder) WaitIdle() { r.wg.Wait() }

// Close stops the periodic loop and waits for in-flight captures.
// Stored files stay on disk for post-mortem use.
func (r *Recorder) Close() {
	r.loopMu.Lock()
	stop, done := r.stop, r.done
	r.stop, r.done = nil, nil
	r.loopMu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	r.wg.Wait()
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
}

// SortCaptures orders captures newest first (the /profiles listing
// order).
func SortCaptures(cs []Capture) {
	sort.Slice(cs, func(i, j int) bool { return cs[i].Name > cs[j].Name })
}
