package profile

import (
	"os"
	"testing"
	"time"
)

func TestRecorderRingBoundsDisk(t *testing.T) {
	dir := t.TempDir()
	rec, err := NewRecorder(Options{Dir: dir, MaxCaptures: 3,
		CPUDuration: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()

	var hooked int
	rec.SetOnCapture(func(Capture) { hooked++ })

	// Heap captures are synchronous, so each Trigger grows the ring by
	// at least one (the async CPU side may add more).
	for i := 0; i < 6; i++ {
		rec.captureHeap("test")
	}
	rec.WaitIdle()

	cs := rec.Captures()
	if len(cs) != 3 {
		t.Fatalf("ring holds %d captures, want MaxCaptures=3", len(cs))
	}
	if rec.Total() != 6 {
		t.Fatalf("Total = %d, want 6", rec.Total())
	}
	if hooked != 6 {
		t.Fatalf("onCapture called %d times, want 6", hooked)
	}
	// Ring order is oldest first; evicted files are gone from disk.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("%d files on disk, want 3 (oldest evicted)", len(entries))
	}
	for i := 1; i < len(cs); i++ {
		if cs[i-1].Name >= cs[i].Name {
			t.Fatalf("capture names not sortable by order: %q >= %q", cs[i-1].Name, cs[i].Name)
		}
	}

	// Open serves ring members only.
	if b, err := rec.Open(cs[0].Name); err != nil || len(b) == 0 {
		t.Fatalf("Open(%q) = %d bytes, err %v", cs[0].Name, len(b), err)
	}
	if _, err := rec.Open("../etc/passwd"); err == nil {
		t.Fatal("path traversal accepted")
	}
	if _, err := rec.Open("000001-heap.pprof"); err == nil {
		t.Fatal("evicted capture still served")
	}

	// Newest-first listing order for the HTTP API.
	SortCaptures(cs)
	for i := 1; i < len(cs); i++ {
		if cs[i-1].Name <= cs[i].Name {
			t.Fatalf("SortCaptures not newest first: %q <= %q", cs[i-1].Name, cs[i].Name)
		}
	}
}

func TestRecorderTriggerCapturesBothKinds(t *testing.T) {
	rec, err := NewRecorder(Options{Dir: t.TempDir(),
		CPUDuration: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	rec.Trigger("rule breach")
	rec.WaitIdle()
	kinds := map[string]bool{}
	for _, c := range rec.Captures() {
		kinds[c.Kind] = true
		if c.Reason != "rule breach" {
			t.Fatalf("capture reason = %q", c.Reason)
		}
		if c.Bytes <= 0 || c.UnixNano == 0 {
			t.Fatalf("capture metadata empty: %+v", c)
		}
	}
	if !kinds[KindHeap] || !kinds[KindCPU] {
		t.Fatalf("Trigger captured kinds %v, want heap and cpu", kinds)
	}
}

func TestRecorderRequiresDir(t *testing.T) {
	if _, err := NewRecorder(Options{}); err == nil {
		t.Fatal("empty Dir accepted")
	}
}
