package coordinator

import (
	"sync"
	"testing"
	"time"

	"sspd/internal/simnet"
)

// testClock is a mutex-guarded fake clock shared between test goroutines
// and detector transport callbacks.
type testClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// hbPair wires two detectors on a fresh SimNet with a controllable clock.
func hbPair(t *testing.T) (*simnet.SimNet, *Detector, *Detector, *testClock, *sync.Mutex, *[]simnet.NodeID) {
	t.Helper()
	net := simnet.NewSim(nil)
	t.Cleanup(func() { net.Close() })
	clk := &testClock{now: time.Unix(1000, 0)}
	var mu sync.Mutex
	var failures []simnet.NodeID
	clock := clk.Now

	a, err := NewDetector(net, "a", time.Second, 3, func(id simnet.NodeID) {
		mu.Lock()
		failures = append(failures, id)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	a.SetClock(clock)
	b, err := NewDetector(net, "b", time.Second, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	b.SetClock(clock)
	return net, a, b, clk, &mu, &failures
}

func TestDetectorConstruction(t *testing.T) {
	net := simnet.NewSim(nil)
	defer net.Close()
	if _, err := NewDetector(nil, "a", time.Second, 3, nil); err == nil {
		t.Error("nil transport accepted")
	}
	if _, err := NewDetector(net, "a", 0, 3, nil); err == nil {
		t.Error("zero interval accepted")
	}
	d, err := NewDetector(net, "a", time.Second, 0, nil) // threshold defaults
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDetectorHealthyPeerNeverSuspected(t *testing.T) {
	net, a, _, clk, mu, failures := hbPair(t)
	a.Watch("b")
	if got := a.Watched(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("watched = %v", got)
	}
	for i := 0; i < 10; i++ {
		a.Tick()
		if !net.Quiesce(time.Second) {
			t.Fatal("quiesce")
		}
		clk.Advance(time.Second)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(*failures) != 0 {
		t.Fatalf("healthy peer failed: %v", *failures)
	}
	if a.Suspected("b") {
		t.Error("healthy peer suspected")
	}
}

func TestDetectorDetectsDeadPeer(t *testing.T) {
	net, a, _, clk, mu, failures := hbPair(t)
	a.Watch("b")
	a.Tick()
	net.Quiesce(time.Second)
	// b dies.
	if err := net.Deregister("b"); err != nil {
		t.Fatal(err)
	}
	// Three missed intervals -> failure on the 4th tick.
	for i := 0; i < 4; i++ {
		clk.Advance(time.Second)
		a.Tick()
	}
	mu.Lock()
	got := len(*failures)
	mu.Unlock()
	if got != 1 {
		t.Fatalf("failures = %d, want exactly 1", got)
	}
	if !a.Suspected("b") {
		t.Error("dead peer not suspected")
	}
	// Further ticks do not re-report the same episode.
	clk.Advance(10 * time.Second)
	a.Tick()
	mu.Lock()
	defer mu.Unlock()
	if len(*failures) != 1 {
		t.Fatalf("failure re-reported: %v", *failures)
	}
}

func TestDetectorRecovery(t *testing.T) {
	net, a, b, clk, mu, failures := hbPair(t)
	a.Watch("b")
	// b dies and is detected.
	if err := net.Deregister("b"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		clk.Advance(time.Second)
		a.Tick()
	}
	if !a.Suspected("b") {
		t.Fatal("not suspected")
	}
	// b comes back (same handler re-registered).
	if err := net.Register("b", func(m simnet.Message) {
		if m.Kind == KindPing {
			_ = net.Send("b", m.From, KindPong, nil)
		}
	}); err != nil {
		t.Fatal(err)
	}
	a.Tick() // ping reaches the revived b
	if !net.Quiesce(time.Second) {
		t.Fatal("quiesce")
	}
	if a.Suspected("b") {
		t.Error("pong did not clear suspicion")
	}
	// A second death is reported again (new episode).
	if err := net.Deregister("b"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		clk.Advance(time.Second)
		a.Tick()
	}
	mu.Lock()
	defer mu.Unlock()
	if len(*failures) != 2 {
		t.Fatalf("failures = %v, want 2 episodes", *failures)
	}
	_ = b
}

func TestDetectorUnwatch(t *testing.T) {
	net, a, _, clk, mu, failures := hbPair(t)
	a.Watch("b")
	a.Unwatch("b")
	if err := net.Deregister("b"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		clk.Advance(time.Second)
		a.Tick()
	}
	mu.Lock()
	defer mu.Unlock()
	if len(*failures) != 0 {
		t.Fatalf("unwatched peer reported: %v", *failures)
	}
	if a.Suspected("b") {
		t.Error("unwatched peer suspected")
	}
}

func TestDetectorStartStop(t *testing.T) {
	net := simnet.NewSim(nil)
	defer net.Close()
	var mu sync.Mutex
	failed := 0
	a, err := NewDetector(net, "a", 5*time.Millisecond, 2, func(simnet.NodeID) {
		mu.Lock()
		failed++
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.Watch("ghost") // never registered; pings fail silently
	a.Start()
	a.Start() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		f := failed
		mu.Unlock()
		if f >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("ticker loop never detected the ghost")
		}
		time.Sleep(5 * time.Millisecond)
	}
	a.Stop()
	a.Stop() // idempotent
}

func TestDetectorPairMutualWatch(t *testing.T) {
	net, a, b, clk, _, _ := hbPair(t)
	a.Watch("b")
	b.Watch("a")
	for i := 0; i < 6; i++ {
		a.Tick()
		b.Tick()
		net.Quiesce(time.Second)
		clk.Advance(time.Second)
	}
	if a.Suspected("b") || b.Suspected("a") {
		t.Error("mutual watch produced false suspicion")
	}
}
