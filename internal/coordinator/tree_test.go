package coordinator

import (
	"fmt"
	"math/rand"
	"testing"

	"sspd/internal/simnet"
)

// checkInvariants validates the full tree structure:
//   - every member is reachable from the root exactly once at level 0;
//   - every cluster's leader is a member of its own cluster;
//   - parent pointers agree with children lists;
//   - cluster sizes never exceed 3k-1, and (except the top two levels)
//     never fall below k.
func checkInvariants(t *testing.T, tr *Tree) {
	t.Helper()
	if tr.Size() == 0 {
		root, h := tr.Root()
		if root != "" || h != 0 {
			t.Fatalf("empty tree has root %q height %d", root, h)
		}
		return
	}
	root, height := tr.Root()
	if root == "" || height < 1 {
		t.Fatalf("non-empty tree has root %q height %d", root, height)
	}
	seen := make(map[MemberID]int)
	var walk func(leader MemberID, level int)
	walk = func(leader MemberID, level int) {
		ch := tr.Children(leader, level)
		if len(ch) == 0 {
			t.Fatalf("leader %s at level %d has empty cluster", leader, level)
		}
		if len(ch) > 3*tr.MinClusterSize()-1 {
			t.Fatalf("cluster %s@%d size %d exceeds 3k-1=%d",
				leader, level, len(ch), 3*tr.MinClusterSize()-1)
		}
		if level < height-1 && len(ch) < tr.MinClusterSize() && tr.Size() >= tr.MinClusterSize() {
			t.Fatalf("cluster %s@%d size %d below k=%d", leader, level, len(ch), tr.MinClusterSize())
		}
		if !containsID(ch, leader) {
			t.Fatalf("leader %s not a member of its own cluster at level %d: %v", leader, level, ch)
		}
		for _, c := range ch {
			if p, ok := tr.Parent(c, level-1); !ok || p != leader {
				t.Fatalf("parent(%s,%d) = %v, want %s", c, level-1, p, leader)
			}
			if level == 1 {
				seen[c]++
			} else {
				walk(c, level-1)
			}
		}
	}
	walk(root, height)
	if len(seen) != tr.Size() {
		t.Fatalf("walk reached %d members, tree has %d", len(seen), tr.Size())
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("member %s reached %d times", id, n)
		}
	}
}

func containsID(list []MemberID, id MemberID) bool {
	for _, m := range list {
		if m == id {
			return true
		}
	}
	return false
}

func gridPoint(i int) simnet.Point {
	return simnet.Point{X: float64(i % 17 * 10), Y: float64(i / 17 * 10)}
}

func TestTreeSingleJoin(t *testing.T) {
	tr := NewTree(3)
	hops, err := tr.Join("a", simnet.Point{})
	if err != nil {
		t.Fatal(err)
	}
	if hops != 0 {
		t.Errorf("first join hops = %d", hops)
	}
	root, h := tr.Root()
	if root != "a" || h != 1 {
		t.Errorf("root/height = %s/%d", root, h)
	}
	checkInvariants(t, tr)
	if _, err := tr.Join("a", simnet.Point{}); err == nil {
		t.Error("duplicate join accepted")
	}
}

func TestTreeGrowthMaintainsInvariants(t *testing.T) {
	tr := NewTree(3)
	for i := 0; i < 100; i++ {
		if _, err := tr.Join(MemberID(fmt.Sprintf("m%03d", i)), gridPoint(i)); err != nil {
			t.Fatal(err)
		}
		checkInvariants(t, tr)
	}
	if tr.Size() != 100 {
		t.Fatalf("size = %d", tr.Size())
	}
	_, h := tr.Root()
	if h < 2 {
		t.Errorf("height = %d, want >= 2 for 100 members with k=3", h)
	}
}

func TestTreeJoinHopsScaleWithHeight(t *testing.T) {
	tr := NewTree(2)
	maxHops := 0
	for i := 0; i < 200; i++ {
		hops, err := tr.Join(MemberID(fmt.Sprintf("m%03d", i)), gridPoint(i))
		if err != nil {
			t.Fatal(err)
		}
		if hops > maxHops {
			maxHops = hops
		}
	}
	_, h := tr.Root()
	if maxHops > h {
		t.Errorf("join hops %d exceeded height %d", maxHops, h)
	}
	// Crucially, hops stay far below N.
	if maxHops > 20 {
		t.Errorf("join hops %d not logarithmic", maxHops)
	}
}

func TestTreeLeave(t *testing.T) {
	tr := NewTree(3)
	for i := 0; i < 30; i++ {
		tr.Join(MemberID(fmt.Sprintf("m%02d", i)), gridPoint(i))
	}
	checkInvariants(t, tr)
	if err := tr.Leave("zz"); err == nil {
		t.Error("leave of unknown member accepted")
	}
	for i := 0; i < 25; i++ {
		if err := tr.Leave(MemberID(fmt.Sprintf("m%02d", i))); err != nil {
			t.Fatalf("leave %d: %v", i, err)
		}
		checkInvariants(t, tr)
	}
	if tr.Size() != 5 {
		t.Fatalf("size = %d", tr.Size())
	}
}

func TestTreeLeaveRoot(t *testing.T) {
	tr := NewTree(3)
	for i := 0; i < 40; i++ {
		tr.Join(MemberID(fmt.Sprintf("m%02d", i)), gridPoint(i))
	}
	root, _ := tr.Root()
	if err := tr.Fail(root); err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, tr)
	newRoot, _ := tr.Root()
	if newRoot == root || newRoot == "" {
		t.Errorf("root not replaced: %s", newRoot)
	}
	if tr.Size() != 39 {
		t.Errorf("size = %d", tr.Size())
	}
}

func TestTreeDrainToEmpty(t *testing.T) {
	tr := NewTree(2)
	for i := 0; i < 10; i++ {
		tr.Join(MemberID(fmt.Sprintf("m%d", i)), gridPoint(i))
	}
	for _, m := range tr.Members() {
		if err := tr.Leave(m); err != nil {
			t.Fatal(err)
		}
		checkInvariants(t, tr)
	}
	if tr.Size() != 0 {
		t.Fatal("tree not empty")
	}
	// Tree is reusable after draining.
	if _, err := tr.Join("again", simnet.Point{}); err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, tr)
}

func TestTreeRecenter(t *testing.T) {
	tr := NewTree(3)
	for i := 0; i < 50; i++ {
		tr.Join(MemberID(fmt.Sprintf("m%02d", i)), gridPoint(i))
	}
	checkInvariants(t, tr)
	changes := tr.Recenter()
	checkInvariants(t, tr)
	// Recentering twice should converge (second run cheaper or equal).
	changes2 := tr.Recenter()
	checkInvariants(t, tr)
	if changes2 > changes {
		t.Errorf("recenter diverging: %d then %d", changes, changes2)
	}
}

func TestTreeChurnProperty(t *testing.T) {
	// Randomized churn: joins, leaves, failures, recenters — invariants
	// must hold after every operation.
	rng := rand.New(rand.NewSource(1234))
	for _, k := range []int{2, 3, 5} {
		tr := NewTree(k)
		alive := make([]MemberID, 0, 128)
		next := 0
		for op := 0; op < 400; op++ {
			switch {
			case len(alive) == 0 || rng.Float64() < 0.55:
				id := MemberID(fmt.Sprintf("n%04d", next))
				next++
				at := simnet.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
				if _, err := tr.Join(id, at); err != nil {
					t.Fatalf("k=%d op=%d join: %v", k, op, err)
				}
				alive = append(alive, id)
			case rng.Float64() < 0.9:
				i := rng.Intn(len(alive))
				id := alive[i]
				alive = append(alive[:i], alive[i+1:]...)
				if err := tr.Leave(id); err != nil {
					t.Fatalf("k=%d op=%d leave %s: %v", k, op, id, err)
				}
			default:
				tr.Recenter()
			}
			checkInvariants(t, tr)
			if tr.Size() != len(alive) {
				t.Fatalf("k=%d op=%d size %d != alive %d", k, op, tr.Size(), len(alive))
			}
		}
	}
}

func TestTreePositionAndMembers(t *testing.T) {
	tr := NewTree(3)
	tr.Join("b", simnet.Point{X: 1})
	tr.Join("a", simnet.Point{X: 2})
	ms := tr.Members()
	if len(ms) != 2 || ms[0] != "a" || ms[1] != "b" {
		t.Errorf("members = %v", ms)
	}
	if p, ok := tr.Position("b"); !ok || p.X != 1 {
		t.Error("position lookup failed")
	}
	if _, ok := tr.Position("zz"); ok {
		t.Error("position of unknown member")
	}
}

func TestRouteQueryTree(t *testing.T) {
	tr := NewTree(3)
	if _, _, err := tr.RouteQuery(simnet.Point{}, func(MemberID) float64 { return 0 }); err == nil {
		t.Error("routing on empty tree accepted")
	}
	loads := make(map[MemberID]float64)
	for i := 0; i < 60; i++ {
		id := MemberID(fmt.Sprintf("m%02d", i))
		tr.Join(id, gridPoint(i))
		loads[id] = 0
	}
	loadFn := func(id MemberID) float64 { return loads[id] }
	// Route many queries; hop count must stay bounded by height and
	// load must spread (no single entity hoards all queries).
	counts := make(map[MemberID]int)
	_, h := tr.Root()
	for q := 0; q < 300; q++ {
		origin := gridPoint(q % 60)
		target, hops, err := tr.RouteQuery(origin, loadFn)
		if err != nil {
			t.Fatal(err)
		}
		if hops > h {
			t.Fatalf("hops %d > height %d", hops, h)
		}
		counts[target]++
		loads[target]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max > 100 {
		t.Errorf("one entity got %d of 300 queries — no load spreading", max)
	}
}

func TestFlatCoordinator(t *testing.T) {
	f := NewFlat()
	if _, _, err := f.RouteQuery(simnet.Point{}, func(MemberID) float64 { return 0 }); err == nil {
		t.Error("routing with no members accepted")
	}
	if err := f.Join("a", simnet.Point{X: 0}); err != nil {
		t.Fatal(err)
	}
	if err := f.Join("a", simnet.Point{}); err == nil {
		t.Error("duplicate join accepted")
	}
	f.Join("b", simnet.Point{X: 10})
	if f.Size() != 2 {
		t.Errorf("size = %d", f.Size())
	}
	loads := map[MemberID]float64{"a": 5, "b": 1}
	target, work, err := f.RouteQuery(simnet.Point{}, func(id MemberID) float64 { return loads[id] })
	if err != nil {
		t.Fatal(err)
	}
	if target != "b" {
		t.Errorf("target = %s, want least-loaded b", target)
	}
	if work != 2 {
		t.Errorf("work = %d, want full scan of 2", work)
	}
	// Tie on load: closest wins.
	loads["a"], loads["b"] = 1, 1
	target, _, _ = f.RouteQuery(simnet.Point{X: 9}, func(id MemberID) float64 { return loads[id] })
	if target != "b" {
		t.Errorf("tie-break target = %s, want closest b", target)
	}
	if err := f.Leave("a"); err != nil {
		t.Fatal(err)
	}
	if err := f.Leave("a"); err == nil {
		t.Error("double leave accepted")
	}
}

func TestTreeRouteWorkBeatsFlat(t *testing.T) {
	// The scalability claim: per-query coordinator work is O(height·k)
	// for the tree versus O(N) for the flat coordinator.
	tr := NewTree(3)
	fl := NewFlat()
	n := 300
	for i := 0; i < n; i++ {
		id := MemberID(fmt.Sprintf("m%03d", i))
		at := gridPoint(i)
		tr.Join(id, at)
		fl.Join(id, at)
	}
	zero := func(MemberID) float64 { return 0 }
	_, treeWork, err := tr.RouteQuery(simnet.Point{X: 50, Y: 50}, zero)
	if err != nil {
		t.Fatal(err)
	}
	_, flatWork, err := fl.RouteQuery(simnet.Point{X: 50, Y: 50}, zero)
	if err != nil {
		t.Fatal(err)
	}
	if flatWork != n {
		t.Errorf("flat work = %d, want %d", flatWork, n)
	}
	if treeWork*10 > flatWork {
		t.Errorf("tree work %d not ≪ flat %d", treeWork, flatWork)
	}
}

func TestTreeEventCounters(t *testing.T) {
	tr := NewTree(2)
	// 6 joins overflow the single level-1 cluster (3k-1 = 5) -> a split.
	for i := 0; i < 6; i++ {
		id := MemberID(fmt.Sprintf("m%d", i))
		if _, err := tr.Join(id, simnet.Point{X: float64(i * 10), Y: 0}); err != nil {
			t.Fatal(err)
		}
	}
	ev := tr.Events()
	if ev.Joins != 6 {
		t.Fatalf("Joins = %d, want 6", ev.Joins)
	}
	if ev.Splits == 0 {
		t.Fatal("overflowing cluster must count a split")
	}
	if err := tr.Leave("m5"); err != nil {
		t.Fatal(err)
	}
	if err := tr.Fail("m4"); err != nil {
		t.Fatal(err)
	}
	ev = tr.Events()
	if ev.Leaves != 1 || ev.Fails != 1 {
		t.Fatalf("Leaves = %d Fails = %d, want 1 and 1", ev.Leaves, ev.Fails)
	}
	// Removing members shrank a cluster below k: normalize merged it.
	if ev.Merges == 0 {
		t.Fatal("underflow after removals must count a merge")
	}
	// A recenter opportunity: move nothing, just force Recenter to run;
	// count must equal its return value.
	if got := tr.Recenter(); int64(got) != tr.Events().Recenters {
		t.Fatalf("Recenter returned %d but counter is %d", got, tr.Events().Recenters)
	}
	checkInvariants(t, tr)
}
