package coordinator

// Stats federation over the coordinator tree (DESIGN.md §9). Each
// entity runs a StatsNode: a small soft-state aggregator registered at
// "<entity>/stats" on the shared transport. On every tick the node folds
// its local registry into an EntityStats row, merges it into its table,
// and pushes the whole table one hop up the tree (Tree.StatsParent).
// Interior coordinators merge child digests row-by-row (newest sequence
// number wins), so within height(T) digest periods the root's table
// covers the cluster. Rows are soft state: they are re-pushed every
// period and expire by age, so tree reorganizations and crashed entities
// converge without explicit retraction messages. Digests ride the same
// transport as dissemination control traffic — nothing touches the
// per-tuple hot path.

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"sspd/internal/engine"
	"sspd/internal/latency"
	"sspd/internal/metrics"
	"sspd/internal/simnet"
)

// KindStats is the transport message kind digests travel under.
const KindStats = "coord.stats"

// StatsSuffix turns an entity ID into its stats endpoint.
const StatsSuffix = "/stats"

// StatsEndpoint returns the transport endpoint of a member's stats node.
func StatsEndpoint(id MemberID) simnet.NodeID {
	return simnet.NodeID(string(id) + StatsSuffix)
}

// SparkLen bounds the PR_max sparkline carried in each row: the last
// SparkLen fold samples, oldest first. Carried in the digest (rather
// than accumulated at the root) so the history survives root changes.
const SparkLen = 32

// StreamStats is one entity's dissemination traffic on one stream.
type StreamStats struct {
	Bytes       int64   `json:"bytes"`
	Messages    int64   `json:"messages"`
	BytesPerSec float64 `json:"bytes_per_sec"`
}

// EntityStats is one entity's folded registry: the per-entity row of the
// cluster stats table. Seq increases with every local fold; merges keep
// the row with the higher Seq (ties broken by UnixNano), so stale copies
// lingering at former ancestors can never overwrite fresh ones.
type EntityStats struct {
	Entity   string `json:"entity"`
	Seq      uint64 `json:"seq"`
	UnixNano int64  `json:"unix_nano"`

	Load       float64                `json:"load"`
	Queries    int                    `json:"queries"`
	PRMax      float64                `json:"pr_max"`
	PRSpark    []float64              `json:"pr_spark,omitempty"`
	QueryLoads map[string]float64     `json:"query_loads,omitempty"`
	// QueryDrops counts tuples dropped per query by the hosting
	// engines' full input queues or shard rings — the per-query drop
	// attribution the `query`-labeled cluster metric is built from.
	// Queries whose engines never drop (e.g. MiniEngine) are absent.
	QueryDrops map[string]int64       `json:"query_drops,omitempty"`
	Streams    map[string]StreamStats `json:"streams,omitempty"`

	// Latency carries the entity's span-derived attribution snapshot
	// (per-stage and end-to-end log-bucket histograms plus per-query
	// measured PR). The histograms merge bucket-wise at the root —
	// exactly, unlike reservoir quantiles — so the root digest answers
	// cluster-wide percentiles per stage. Nil when the latency plane is
	// not enabled.
	Latency *latency.Attribution `json:"latency,omitempty"`

	// Engine carries the entity's shard-engine introspection snapshot
	// (DESIGN.md §14): per-shard ring occupancy, drops, kernel split.
	// Federated like Latency — newest-seq-wins, whole row — so the root
	// digest answers cluster-wide shard heatmaps. Nil when the entity
	// runs no introspectable engine or the plane is not enabled.
	Engine *engine.EngineStats `json:"engine,omitempty"`
	// Dropped is the entity's engine-lifetime dropped-tuple total across
	// all processors — unlike QueryDrops it keeps counting for queries
	// that were unregistered or migrated away.
	Dropped int64 `json:"dropped,omitempty"`
	// DropSpark is the recent drops-per-second history (last SparkLen
	// fold deltas, oldest first), the ops-view drop sparkline.
	DropSpark []float64 `json:"drop_spark,omitempty"`

	SendErrors   int64 `json:"send_errors"`
	DecodeErrors int64 `json:"decode_errors"`
}

// Age returns how long ago the row was folded.
func (e EntityStats) Age(now time.Time) time.Duration {
	return now.Sub(time.Unix(0, e.UnixNano))
}

// newer reports whether row a supersedes row b for the same entity.
func newer(a, b EntityStats) bool {
	if a.Seq != b.Seq {
		return a.Seq > b.Seq
	}
	return a.UnixNano > b.UnixNano
}

// Digest is the wire unit of stats federation: the sender's whole merged
// table, keyed by entity ID.
type Digest struct {
	From string                 `json:"from"`
	Rows map[string]EntityStats `json:"rows"`
}

// EncodeDigest marshals a digest for transport.
func EncodeDigest(d Digest) ([]byte, error) { return json.Marshal(d) }

// DecodeDigest unmarshals a digest received from a child.
func DecodeDigest(payload []byte) (Digest, error) {
	var d Digest
	if err := json.Unmarshal(payload, &d); err != nil {
		return Digest{}, fmt.Errorf("coordinator: bad stats digest: %w", err)
	}
	return d, nil
}

// MergeRows folds src into dst row-by-row, newest Seq winning. dst must
// be non-nil; it is returned for convenience.
func MergeRows(dst, src map[string]EntityStats) map[string]EntityStats {
	for id, row := range src {
		if cur, ok := dst[id]; !ok || newer(row, cur) {
			dst[id] = row
		}
	}
	return dst
}

// StatsNode is one member's participant in the stats federation.
type StatsNode struct {
	// Fold produces this member's own row; Seq/UnixNano are stamped by
	// Tick. Called once per tick, off the tuple path.
	Fold func() EntityStats
	// Parent resolves the current stats parent's endpoint; ok=false at
	// the overlay root. Re-resolved every tick so pushes follow tree
	// repairs automatically.
	Parent func() (simnet.NodeID, bool)
	// MaxAge expires foreign rows not refreshed within it (0 keeps rows
	// forever). Three digest periods is the conventional setting.
	MaxAge time.Duration

	// Merges and Pushes count digest merges received and digests pushed
	// upward — the bench's digest-merge denominator.
	Merges metrics.Counter
	Pushes metrics.Counter

	id       MemberID
	endpoint simnet.NodeID
	net      simnet.Transport

	mu   sync.Mutex
	rows map[string]EntityStats
	seq  uint64

	loopMu sync.Mutex
	stop   chan struct{}
	done   chan struct{}
}

// NewStatsNode registers a stats endpoint for id on the transport. The
// caller sets Fold/Parent before the first Tick. Close deregisters.
func NewStatsNode(id MemberID, net simnet.Transport) (*StatsNode, error) {
	n := &StatsNode{
		id:       id,
		endpoint: StatsEndpoint(id),
		net:      net,
		rows:     make(map[string]EntityStats),
	}
	if err := net.Register(n.endpoint, n.handle); err != nil {
		return nil, err
	}
	return n, nil
}

// handle merges a digest pushed by a child into the local table.
func (n *StatsNode) handle(m simnet.Message) {
	if m.Kind != KindStats {
		return
	}
	d, err := DecodeDigest(m.Payload)
	if err != nil {
		return
	}
	n.mu.Lock()
	MergeRows(n.rows, d.Rows)
	n.mu.Unlock()
	n.Merges.Inc()
}

// Tick runs one federation period: fold the local row, expire stale
// foreign rows, and push the merged table to the current parent (if
// any). Safe to call manually in tests instead of Start. The Fold and
// Parent closures run outside the node's lock, so they may take the
// federation's own locks freely.
func (n *StatsNode) Tick() {
	var row EntityStats
	if n.Fold != nil {
		row = n.Fold()
	}
	row.Entity = string(n.id)
	now := time.Now()
	row.UnixNano = now.UnixNano()
	var parent simnet.NodeID
	var hasParent bool
	if n.Parent != nil {
		parent, hasParent = n.Parent()
	}

	n.mu.Lock()
	n.seq++
	row.Seq = n.seq
	n.rows[row.Entity] = row
	if n.MaxAge > 0 {
		for id, r := range n.rows {
			if id != row.Entity && r.Age(now) > n.MaxAge {
				delete(n.rows, id)
			}
		}
	}
	var payload []byte
	if hasParent {
		payload, _ = EncodeDigest(Digest{From: string(n.id), Rows: n.rows})
	}
	n.mu.Unlock()

	if hasParent && payload != nil {
		if err := n.net.Send(n.endpoint, parent, KindStats, payload); err == nil {
			n.Pushes.Inc()
		}
	}
}

// Snapshot returns a copy of the node's merged table. At the overlay
// root this is the cluster view.
func (n *StatsNode) Snapshot() map[string]EntityStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[string]EntityStats, len(n.rows))
	for id, r := range n.rows {
		out[id] = r
	}
	return out
}

// Start launches the periodic tick loop. Stop (or Close) ends it.
func (n *StatsNode) Start(interval time.Duration) {
	if interval <= 0 {
		return
	}
	n.loopMu.Lock()
	defer n.loopMu.Unlock()
	if n.stop != nil {
		return
	}
	n.stop = make(chan struct{})
	n.done = make(chan struct{})
	go func(stop, done chan struct{}) {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				n.Tick()
			}
		}
	}(n.stop, n.done)
}

// Stop ends the periodic loop (idempotent; Tick stays usable).
func (n *StatsNode) Stop() {
	n.loopMu.Lock()
	stop, done := n.stop, n.done
	n.stop, n.done = nil, nil
	n.loopMu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// Close stops the loop and deregisters the endpoint.
func (n *StatsNode) Close() error {
	n.Stop()
	return n.net.Deregister(n.endpoint)
}
