package coordinator

import (
	"fmt"
	"testing"
	"time"

	"sspd/internal/simnet"
)

// buildTree joins n members at distinct positions and returns the tree.
func buildTree(t *testing.T, k, n int) *Tree {
	t.Helper()
	tr := NewTree(k)
	for i := 0; i < n; i++ {
		id := MemberID(fmt.Sprintf("e%02d", i))
		if _, err := tr.Join(id, simnet.Point{X: float64(i * 7 % 13), Y: float64(i * 11 % 17)}); err != nil {
			t.Fatalf("join %s: %v", id, err)
		}
	}
	return tr
}

func TestStatsParentOverlay(t *testing.T) {
	tr := buildTree(t, 2, 12) // forces multiple levels (3k-1 = 5 per cluster)
	root, height := tr.Root()
	if height < 2 {
		t.Fatalf("want a multi-level tree, got height %d", height)
	}
	if p, ok := tr.StatsParent(root); ok {
		t.Fatalf("root %s must have no stats parent, got %s", root, p)
	}
	if _, ok := tr.StatsParent("nope"); ok {
		t.Fatal("unknown member must have no stats parent")
	}
	// Every non-root member must reach the root by following StatsParent,
	// in at most `height` hops — the digest-convergence bound.
	for _, m := range tr.Members() {
		if m == root {
			continue
		}
		cur, hops := m, 0
		for cur != root {
			p, ok := tr.StatsParent(cur)
			if !ok {
				t.Fatalf("member %s: chain stalled at %s (no parent, not root)", m, cur)
			}
			if p == cur {
				t.Fatalf("member %s: self-loop at %s", m, cur)
			}
			cur = p
			hops++
			if hops > height {
				t.Fatalf("member %s: overlay path exceeds tree height %d", m, height)
			}
		}
	}
}

func TestMergeRowsNewestWins(t *testing.T) {
	old := EntityStats{Entity: "e1", Seq: 3, UnixNano: 100, Load: 1}
	fresh := EntityStats{Entity: "e1", Seq: 5, UnixNano: 50, Load: 2}
	dst := map[string]EntityStats{"e1": fresh}
	MergeRows(dst, map[string]EntityStats{"e1": old, "e2": {Entity: "e2", Seq: 1}})
	if dst["e1"].Load != 2 {
		t.Fatalf("stale row overwrote fresh one: %+v", dst["e1"])
	}
	if _, ok := dst["e2"]; !ok {
		t.Fatal("new entity row not merged")
	}
	// Equal Seq: later UnixNano wins.
	MergeRows(dst, map[string]EntityStats{"e1": {Entity: "e1", Seq: 5, UnixNano: 60, Load: 7}})
	if dst["e1"].Load != 7 {
		t.Fatalf("same-seq later row must win: %+v", dst["e1"])
	}
}

// TestStatsFederationConverges builds a multi-level tree over a SimNet,
// ticks every node height+1 times, and checks the root's table covers
// the whole membership with each entity's freshest fold.
func TestStatsFederationConverges(t *testing.T) {
	net := simnet.NewSim(nil)
	defer net.Close()
	tr := buildTree(t, 2, 12)
	root, height := tr.Root()

	nodes := make(map[MemberID]*StatsNode)
	for _, m := range tr.Members() {
		m := m
		n, err := NewStatsNode(m, net)
		if err != nil {
			t.Fatalf("stats node %s: %v", m, err)
		}
		defer n.Close()
		n.Fold = func() EntityStats {
			return EntityStats{Load: float64(len(m))} // any distinguishing value
		}
		n.Parent = func() (simnet.NodeID, bool) {
			p, ok := tr.StatsParent(m)
			if !ok {
				return "", false
			}
			return StatsEndpoint(p), true
		}
		nodes[m] = n
	}

	for round := 0; round <= height; round++ {
		for _, m := range tr.Members() {
			nodes[m].Tick()
		}
		if !net.Quiesce(2 * time.Second) {
			t.Fatal("network did not quiesce")
		}
	}

	view := nodes[root].Snapshot()
	if len(view) != tr.Size() {
		t.Fatalf("root sees %d rows, want %d: %v", len(view), tr.Size(), view)
	}
	for _, m := range tr.Members() {
		row, ok := view[string(m)]
		if !ok {
			t.Fatalf("root missing row for %s", m)
		}
		if row.Seq == 0 || row.UnixNano == 0 {
			t.Fatalf("row %s not stamped: %+v", m, row)
		}
	}
	if nodes[root].Merges.Value() == 0 {
		t.Fatal("root merged no digests")
	}
}

func TestStatsNodeExpiresStaleRows(t *testing.T) {
	net := simnet.NewSim(nil)
	defer net.Close()
	n, err := NewStatsNode("e0", net)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	n.MaxAge = 10 * time.Millisecond
	n.mu.Lock()
	n.rows["gone"] = EntityStats{Entity: "gone", Seq: 1, UnixNano: time.Now().Add(-time.Second).UnixNano()}
	n.rows["fresh"] = EntityStats{Entity: "fresh", Seq: 1, UnixNano: time.Now().UnixNano()}
	n.mu.Unlock()
	n.Tick()
	view := n.Snapshot()
	if _, ok := view["gone"]; ok {
		t.Fatal("stale row survived expiry")
	}
	if _, ok := view["fresh"]; !ok {
		t.Fatal("fresh row wrongly expired")
	}
	if _, ok := view["e0"]; !ok {
		t.Fatal("own row missing after tick")
	}
}

func TestStatsNodeStartStop(t *testing.T) {
	net := simnet.NewSim(nil)
	defer net.Close()
	n, err := NewStatsNode("e0", net)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	n.Start(time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for n.Snapshot()["e0"].Seq == 0 {
		if time.Now().After(deadline) {
			t.Fatal("loop never ticked")
		}
		time.Sleep(time.Millisecond)
	}
	n.Stop()
	n.Stop() // idempotent
}

func TestTreeEventSink(t *testing.T) {
	tr := NewTree(2)
	var ops []string
	tr.SetEventSink(func(op string, leader MemberID, level int) {
		ops = append(ops, op)
	})
	for i := 0; i < 12; i++ {
		id := MemberID(fmt.Sprintf("e%02d", i))
		if _, err := tr.Join(id, simnet.Point{X: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	split := false
	for _, op := range ops {
		if op == "split" {
			split = true
		}
	}
	if !split {
		t.Fatalf("12 joins at k=2 must split at least once; saw %v", ops)
	}
	ev := tr.Events()
	if int64(len(ops)) != ev.Splits+ev.Merges+ev.Recenters {
		t.Fatalf("sink saw %d ops, counters say %d", len(ops), ev.Splits+ev.Merges+ev.Recenters)
	}
}
