// Package coordinator implements the hierarchical coordinator tree of
// Section 3.2.1, adapted from Banerjee et al.'s scalable application
// layer multicast (SIGCOMM'02): coordinators form clusters of size
// [k, 3k-1] (except near the root), each cluster's parent is its
// geographical center, and the tree maintains itself incrementally under
// joins, leaves, failures, splits, merges, and re-centering. Query
// streams are routed level by level down this tree, so no single
// coordinator handles more than O(k) peers regardless of federation
// size — the property the query-distribution experiment (E3) measures.
//
// Representation: level 0 holds all members. A member that leads a
// cluster of level-(l-1) nodes appears at level l; the cluster is stored
// as children[(leader, l)] and always contains the leader's own level-
// (l-1) presence. The root leads the single top cluster at level
// `height`.
package coordinator

import (
	"fmt"
	"sort"

	"sspd/internal/metrics"
	"sspd/internal/simnet"
)

// MemberID identifies a participant (an entity's wrapper node).
type MemberID string

// Tree is the coordinator hierarchy. It is a deterministic single-owner
// structure; the federation layer serializes access.
type Tree struct {
	k        int
	pos      map[MemberID]simnet.Point
	children map[levelKey][]MemberID
	parent   map[levelKey]MemberID
	root     MemberID
	height   int

	// events counts structural operations since construction. Counters
	// are atomic so a metrics scrape may read them while the federation
	// goroutine mutates the tree.
	events struct {
		joins     metrics.Counter
		leaves    metrics.Counter
		fails     metrics.Counter
		splits    metrics.Counter
		merges    metrics.Counter
		recenters metrics.Counter
	}

	// sink, when set, observes structural operations the tree decides on
	// its own (splits, merges, re-centerings) — joins/leaves/failures are
	// driven, and therefore journaled, by the caller.
	sink EventSink
}

// EventSink observes tree-internal structural operations. op is one of
// "split", "merge", "recenter"; leader identifies the cluster involved
// (the pre-operation leader) at the given level. Called synchronously
// under the tree owner's serialization; keep it cheap.
type EventSink func(op string, leader MemberID, level int)

// SetEventSink installs the structural-event observer (nil disables).
func (t *Tree) SetEventSink(s EventSink) { t.sink = s }

func (t *Tree) emit(op string, leader MemberID, level int) {
	if t.sink != nil {
		t.sink(op, leader, level)
	}
}

// StatsParent returns the next hop up the stats-aggregation overlay from
// id: the leader of the lowest-level cluster that contains id but is not
// led by id. Leaders thus skip the levels they lead themselves, and the
// root (which leads every cluster on its chain) gets ok=false — it is
// where digests stop. Unknown members also return ok=false.
func (t *Tree) StatsParent(id MemberID) (MemberID, bool) {
	if _, known := t.pos[id]; !known {
		return "", false
	}
	for level := 0; level <= t.height; level++ {
		if p, ok := t.parent[levelKey{id, level}]; ok && p != id {
			return p, true
		}
	}
	return "", false
}

// Events is a point-in-time snapshot of the tree's maintenance activity:
// how many joins, polite leaves, failures, cluster splits, cluster
// merges, and leadership re-centerings have happened.
type Events struct {
	Joins     int64
	Leaves    int64
	Fails     int64
	Splits    int64
	Merges    int64
	Recenters int64
}

// Events returns the operation counters. Safe to call concurrently with
// tree mutations.
func (t *Tree) Events() Events {
	return Events{
		Joins:     t.events.joins.Value(),
		Leaves:    t.events.leaves.Value(),
		Fails:     t.events.fails.Value(),
		Splits:    t.events.splits.Value(),
		Merges:    t.events.merges.Value(),
		Recenters: t.events.recenters.Value(),
	}
}

type levelKey struct {
	id    MemberID
	level int
}

// NewTree returns an empty tree with cluster parameter k (clusters hold
// between k and 3k-1 children; k < 2 is raised to 2).
func NewTree(k int) *Tree {
	if k < 2 {
		k = 2
	}
	return &Tree{
		k:        k,
		pos:      make(map[MemberID]simnet.Point),
		children: make(map[levelKey][]MemberID),
		parent:   make(map[levelKey]MemberID),
	}
}

// MinClusterSize returns k, the lower cluster bound.
func (t *Tree) MinClusterSize() int { return t.k }

// Size returns the number of members.
func (t *Tree) Size() int { return len(t.pos) }

// Root returns the root coordinator ("" when empty) and the tree height.
func (t *Tree) Root() (MemberID, int) { return t.root, t.height }

// Members returns all members in sorted order.
func (t *Tree) Members() []MemberID {
	out := make([]MemberID, 0, len(t.pos))
	for id := range t.pos {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Position returns a member's coordinates.
func (t *Tree) Position(id MemberID) (simnet.Point, bool) {
	p, ok := t.pos[id]
	return p, ok
}

// Children returns a copy of the cluster led by id at the given level.
func (t *Tree) Children(id MemberID, level int) []MemberID {
	ch := t.children[levelKey{id, level}]
	out := make([]MemberID, len(ch))
	copy(out, ch)
	return out
}

// Parent returns the leader of the cluster containing id at the given
// level.
func (t *Tree) Parent(id MemberID, level int) (MemberID, bool) {
	p, ok := t.parent[levelKey{id, level}]
	return p, ok
}

// Join adds a member, routing the join request from the root down to a
// level-1 cluster: each coordinator forwards the request to its child
// coordinator closest to the joiner (paper rule 1). It returns the
// number of coordinators contacted — the measurable routing cost of a
// join.
func (t *Tree) Join(id MemberID, at simnet.Point) (hops int, err error) {
	if _, dup := t.pos[id]; dup {
		return 0, fmt.Errorf("coordinator: member %q already joined", id)
	}
	t.pos[id] = at
	t.events.joins.Inc()
	if t.root == "" {
		t.root = id
		t.height = 1
		t.children[levelKey{id, 1}] = []MemberID{id}
		t.parent[levelKey{id, 0}] = id
		return 0, nil
	}
	cur := t.root
	level := t.height
	hops = 1
	for level > 1 {
		best := MemberID("")
		bestD := 0.0
		for _, c := range t.children[levelKey{cur, level}] {
			d := t.pos[c].Distance(at)
			if best == "" || d < bestD || (d == bestD && c < best) {
				best, bestD = c, d
			}
		}
		if best == "" {
			break
		}
		cur = best
		level--
		hops++
	}
	key := levelKey{cur, 1}
	t.children[key] = append(t.children[key], id)
	t.parent[levelKey{id, 0}] = cur
	t.splitIfNeeded(cur, 1)
	return hops, nil
}

// Leave removes a member (paper rule 2): it departs its level-0 cluster
// and every leadership role it held; clusters it led elect new centers,
// and underflowing clusters merge with their closest sibling (rule 4).
func (t *Tree) Leave(id MemberID) error { return t.remove(id, false) }

// Fail handles a member that stopped sending heartbeats. State cleanup
// is identical to a polite leave; the tree only counts them apart so the
// observability layer can tell churn from crashes.
func (t *Tree) Fail(id MemberID) error { return t.remove(id, true) }

func (t *Tree) remove(id MemberID, failed bool) error {
	if _, ok := t.pos[id]; !ok {
		return fmt.Errorf("coordinator: unknown member %q", id)
	}
	if failed {
		t.events.fails.Inc()
	} else {
		t.events.leaves.Inc()
	}
	delete(t.pos, id)
	if len(t.pos) == 0 {
		t.root = ""
		t.height = 0
		t.children = make(map[levelKey][]MemberID)
		t.parent = make(map[levelKey]MemberID)
		return nil
	}
	p, ok := t.parent[levelKey{id, 0}]
	if ok {
		pk := levelKey{p, 1}
		t.children[pk] = removeMember(t.children[pk], id)
		delete(t.parent, levelKey{id, 0})
		if p == id {
			t.handleLeaderGone(id, 1)
		}
	}
	t.normalize()
	return nil
}

// handleLeaderGone repairs the cluster at the given level after its
// leader x vanished from the member list (already removed). A successor
// is elected among the remaining members and inherits x's membership at
// this level; an empty cluster dissolves and x's membership is demoted.
func (t *Tree) handleLeaderGone(x MemberID, level int) {
	key := levelKey{x, level}
	remaining := t.children[key]
	delete(t.children, key)
	if len(remaining) == 0 {
		t.demote(x, level)
		return
	}
	s := t.centerOf(remaining)
	t.children[levelKey{s, level}] = remaining
	for _, c := range remaining {
		t.parent[levelKey{c, level - 1}] = s
	}
	t.replaceAt(x, s, level)
}

// replaceAt hands x's membership at the given level to s: s takes x's
// slot in the cluster one level up (or the root role).
func (t *Tree) replaceAt(x, s MemberID, level int) {
	if x == t.root && level == t.height {
		t.root = s
		return
	}
	p, ok := t.parent[levelKey{x, level}]
	if !ok {
		// x had no recorded membership (repair mid-flight); attach s
		// under the root so it stays reachable.
		if t.root != s {
			rk := levelKey{t.root, t.height}
			t.children[rk] = dedup(append(t.children[rk], s))
			t.parent[levelKey{s, t.height - 1}] = t.root
		}
		return
	}
	delete(t.parent, levelKey{x, level})
	pk := levelKey{p, level + 1}
	t.children[pk] = dedup(append(removeMember(t.children[pk], x), s))
	t.parent[levelKey{s, level}] = p
	if p == x {
		t.handleLeaderGone(x, level+1)
	}
}

// demote removes x's membership at the given level after the cluster it
// led below dissolved.
func (t *Tree) demote(x MemberID, level int) {
	if x == t.root && level == t.height {
		// The whole chain dissolved; normalize rebuilds from what's
		// left (only reachable when the tree is nearly empty).
		t.root = ""
		t.height = 0
		return
	}
	p, ok := t.parent[levelKey{x, level}]
	if !ok {
		return
	}
	delete(t.parent, levelKey{x, level})
	pk := levelKey{p, level + 1}
	t.children[pk] = removeMember(t.children[pk], x)
	if p == x {
		t.handleLeaderGone(x, level+1)
	}
}

// splitIfNeeded splits the cluster led by id at the given level when it
// exceeds 3k-1 members into two clusters of at least floor(3k/2),
// minimizing the two radii (paper rule 3).
func (t *Tree) splitIfNeeded(id MemberID, level int) {
	key := levelKey{id, level}
	ch := t.children[key]
	if len(ch) <= 3*t.k-1 {
		return
	}
	t.events.splits.Inc()
	t.emit("split", id, level)
	a, b := t.bisect(ch)
	ca, cb := t.centerOf(a), t.centerOf(b)
	delete(t.children, key)
	t.children[levelKey{ca, level}] = a
	for _, c := range a {
		t.parent[levelKey{c, level - 1}] = ca
	}
	t.children[levelKey{cb, level}] = b
	for _, c := range b {
		t.parent[levelKey{c, level - 1}] = cb
	}

	if id == t.root && level == t.height {
		// The top cluster split: the tree grows one level.
		t.height = level + 1
		top := []MemberID{ca, cb}
		newRoot := t.centerOf(top)
		t.root = newRoot
		t.children[levelKey{newRoot, level + 1}] = top
		for _, c := range top {
			t.parent[levelKey{c, level}] = newRoot
		}
		return
	}

	// id was a member one level up; the new leaders take (ca) and add
	// (cb) membership there.
	p := t.parent[levelKey{id, level}]
	pk := levelKey{p, level + 1}
	switch {
	case ca == id:
		t.children[pk] = dedup(append(t.children[pk], cb))
		t.parent[levelKey{cb, level}] = p
	case cb == id:
		t.children[pk] = dedup(append(t.children[pk], ca))
		t.parent[levelKey{ca, level}] = p
	default:
		t.children[pk] = dedup(append(t.children[pk], cb))
		t.parent[levelKey{cb, level}] = p
		t.replaceAt(id, ca, level)
	}
	// The parent cluster grew; find its current leader via cb's parent
	// (replaceAt may have re-elected it) and split recursively.
	if leader, ok := t.parent[levelKey{cb, level}]; ok {
		t.splitIfNeeded(leader, level+1)
	} else if leader, ok := t.parent[levelKey{ca, level}]; ok {
		t.splitIfNeeded(leader, level+1)
	}
}

// bisect splits a member list into two halves with small radii: the two
// mutually farthest members become poles and the rest go to the nearer
// pole, sizes kept within one of each other.
func (t *Tree) bisect(ch []MemberID) (a, b []MemberID) {
	sorted := make([]MemberID, len(ch))
	copy(sorted, ch)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var p1, p2 MemberID
	bestD := -1.0
	for i := 0; i < len(sorted); i++ {
		for j := i + 1; j < len(sorted); j++ {
			d := t.pos[sorted[i]].Distance(t.pos[sorted[j]])
			if d > bestD {
				p1, p2, bestD = sorted[i], sorted[j], d
			}
		}
	}
	type scored struct {
		id    MemberID
		score float64
	}
	items := make([]scored, 0, len(sorted))
	for _, c := range sorted {
		items = append(items, scored{c, t.pos[c].Distance(t.pos[p1]) - t.pos[c].Distance(t.pos[p2])})
	}
	sort.SliceStable(items, func(i, j int) bool {
		if items[i].score != items[j].score {
			return items[i].score < items[j].score
		}
		return items[i].id < items[j].id
	})
	half := len(items) / 2
	for i, it := range items {
		if i < half {
			a = append(a, it.id)
		} else {
			b = append(b, it.id)
		}
	}
	return a, b
}

// centerOf returns the member minimizing the maximum distance to the
// others — the "geographical center" parent rule.
func (t *Tree) centerOf(ch []MemberID) MemberID {
	sorted := make([]MemberID, len(ch))
	copy(sorted, ch)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	pts := make([]simnet.Point, len(sorted))
	for i, c := range sorted {
		pts[i] = t.pos[c]
	}
	idx := simnet.CenterIndex(pts)
	if idx < 0 {
		return ""
	}
	return sorted[idx]
}

// Recenter re-elects the center of every cluster whose leader is no
// longer the geographical center (paper rule 5) and returns the number
// of leadership changes.
func (t *Tree) Recenter() int {
	changes := 0
	for level := 1; level <= t.height; level++ {
		for _, leader := range t.leadersAt(level) {
			key := levelKey{leader, level}
			ch := t.children[key]
			if len(ch) == 0 {
				continue
			}
			center := t.centerOf(ch)
			if center == leader || !contains(ch, center) {
				continue
			}
			delete(t.children, key)
			t.children[levelKey{center, level}] = ch
			for _, c := range ch {
				t.parent[levelKey{c, level - 1}] = center
			}
			t.replaceAt(leader, center, level)
			t.events.recenters.Inc()
			t.emit("recenter", leader, level)
			changes++
		}
	}
	return changes
}

// leadersAt returns the IDs leading a non-empty cluster at a level,
// sorted for deterministic iteration.
func (t *Tree) leadersAt(level int) []MemberID {
	var out []MemberID
	for key, ch := range t.children {
		if key.level == level && len(ch) > 0 {
			out = append(out, key.id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// normalize merges underflowing clusters into their closest siblings and
// collapses degenerate root levels.
func (t *Tree) normalize() {
	if len(t.pos) == 0 {
		t.root = ""
		t.height = 0
		t.children = make(map[levelKey][]MemberID)
		t.parent = make(map[levelKey]MemberID)
		return
	}
	if t.root == "" {
		// The whole leadership chain dissolved; rebuild a trivial tree
		// over the survivors (rare: only tiny trees reach this).
		survivors := t.Members()
		t.children = make(map[levelKey][]MemberID)
		t.parent = make(map[levelKey]MemberID)
		root := t.centerOf(survivors)
		t.root = root
		t.height = 1
		t.children[levelKey{root, 1}] = survivors
		for _, m := range survivors {
			t.parent[levelKey{m, 0}] = root
		}
		t.splitIfNeeded(root, 1)
		return
	}
	for level := 1; level < t.height; level++ {
		leaders := t.leadersAt(level)
		if len(leaders) < 2 {
			continue
		}
		for _, leader := range leaders {
			key := levelKey{leader, level}
			ch := t.children[key]
			if len(ch) == 0 || len(ch) >= t.k {
				continue
			}
			sibling := t.closestSibling(leader, level)
			if sibling == "" {
				continue
			}
			sk := levelKey{sibling, level}
			t.events.merges.Inc()
			t.emit("merge", leader, level)
			t.children[sk] = dedup(append(t.children[sk], ch...))
			for _, c := range ch {
				t.parent[levelKey{c, level - 1}] = sibling
			}
			delete(t.children, key)
			t.demote(leader, level)
			t.splitIfNeeded(sibling, level)
		}
	}
	// Collapse a top cluster that shrank to a single member.
	for t.height > 1 {
		rk := levelKey{t.root, t.height}
		ch := t.children[rk]
		if len(ch) != 1 {
			break
		}
		only := ch[0]
		delete(t.children, rk)
		delete(t.parent, levelKey{only, t.height - 1})
		t.root = only
		t.height--
	}
}

// closestSibling picks the nearest other cluster leader at a level.
func (t *Tree) closestSibling(leader MemberID, level int) MemberID {
	best := MemberID("")
	bestD := 0.0
	for _, s := range t.leadersAt(level) {
		if s == leader {
			continue
		}
		d := t.pos[s].Distance(t.pos[leader])
		if best == "" || d < bestD || (d == bestD && s < best) {
			best, bestD = s, d
		}
	}
	return best
}

func removeMember(list []MemberID, id MemberID) []MemberID {
	out := make([]MemberID, 0, len(list))
	for _, m := range list {
		if m != id {
			out = append(out, m)
		}
	}
	return out
}

func contains(list []MemberID, id MemberID) bool {
	for _, m := range list {
		if m == id {
			return true
		}
	}
	return false
}

func dedup(list []MemberID) []MemberID {
	seen := make(map[MemberID]bool, len(list))
	out := make([]MemberID, 0, len(list))
	for _, m := range list {
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	return out
}
