package coordinator

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"sspd/internal/simnet"
)

// Heartbeat message kinds.
const (
	// KindPing is a liveness probe.
	KindPing = "hb.ping"
	// KindPong answers a probe.
	KindPong = "hb.pong"
)

// Detector implements the paper's failure detection: "heartbeat messages
// are sent periodically among the parent and children to detect any node
// failure". A Detector owns one transport endpoint, pings the peers it
// watches every interval, and declares a peer failed after `threshold`
// missed intervals — invoking the failure callback exactly once per
// failure episode (a peer that answers again re-arms detection).
//
// The detector is driven either by Start (a real ticker) or by calling
// Tick directly with an injected clock — tests and simulations use the
// latter for determinism.
type Detector struct {
	self      simnet.NodeID
	transport simnet.Transport
	interval  time.Duration
	threshold int
	onFailure func(simnet.NodeID)
	now       func() time.Time

	mu    sync.Mutex
	peers map[simnet.NodeID]*peerState
	stop  chan struct{}
	done  chan struct{}
}

type peerState struct {
	lastPong time.Time
	// suspected marks a peer already reported failed; cleared when a
	// pong arrives.
	suspected bool
}

// NewDetector registers a heartbeat endpoint `self` on the transport.
// interval must be positive; threshold < 1 defaults to 3. onFailure may
// be nil (failures are then only visible via Suspected).
func NewDetector(transport simnet.Transport, self simnet.NodeID,
	interval time.Duration, threshold int, onFailure func(simnet.NodeID)) (*Detector, error) {
	if transport == nil {
		return nil, fmt.Errorf("coordinator: detector needs a transport")
	}
	if interval <= 0 {
		return nil, fmt.Errorf("coordinator: detector needs a positive interval")
	}
	if threshold < 1 {
		threshold = 3
	}
	d := &Detector{
		self:      self,
		transport: transport,
		interval:  interval,
		threshold: threshold,
		onFailure: onFailure,
		now:       time.Now,
		peers:     make(map[simnet.NodeID]*peerState),
	}
	if err := transport.Register(self, d.handle); err != nil {
		return nil, err
	}
	return d, nil
}

// SetClock replaces the wall clock (before Start; tests only).
func (d *Detector) SetClock(now func() time.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.now = now
}

// Watch starts monitoring a peer. The peer is granted a full grace
// window from now.
func (d *Detector) Watch(peer simnet.NodeID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.peers[peer]; !ok {
		d.peers[peer] = &peerState{lastPong: d.now()}
	}
}

// Unwatch stops monitoring a peer.
func (d *Detector) Unwatch(peer simnet.NodeID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.peers, peer)
}

// Watched returns the monitored peers, sorted.
func (d *Detector) Watched() []simnet.NodeID {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]simnet.NodeID, 0, len(d.peers))
	for p := range d.peers {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Suspected reports whether a peer is currently considered failed.
func (d *Detector) Suspected(peer simnet.NodeID) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	st, ok := d.peers[peer]
	return ok && st.suspected
}

// handle answers pings and records pongs.
func (d *Detector) handle(m simnet.Message) {
	switch m.Kind {
	case KindPing:
		_ = d.transport.Send(d.self, m.From, KindPong, nil)
	case KindPong:
		d.mu.Lock()
		st, ok := d.peers[m.From]
		if ok {
			st.lastPong = d.now()
			st.suspected = false
		}
		d.mu.Unlock()
	}
}

// ReportFailure feeds an out-of-band failure signal into the detector —
// the reliable control plane calls it when deliveries to a peer's
// entity exhaust their retries. The report does not declare the peer
// failed outright (the reporter may itself be the partitioned side);
// instead it ages the peer's pong deadline so the peer becomes overdue
// two intervals from now — enough slack for at least one full ping
// round before the verdict — unless it answers the detector's own
// confirmation ping. A dead peer is thus expelled within ~2 intervals
// instead of the full threshold window; a healthy one clears the
// suspicion with its next pong. It reports whether the signal was
// accepted (watched and not already suspected).
func (d *Detector) ReportFailure(peer simnet.NodeID) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	st, ok := d.peers[peer]
	if !ok || st.suspected {
		return false
	}
	aged := d.now().Add(time.Duration(2-d.threshold) * d.interval)
	if st.lastPong.After(aged) {
		st.lastPong = aged
	}
	return true
}

// Tick performs one heartbeat round: ping every watched peer and report
// the ones whose last pong is older than threshold×interval. It returns
// the peers newly declared failed this round.
func (d *Detector) Tick() []simnet.NodeID {
	d.mu.Lock()
	now := d.now()
	deadline := time.Duration(d.threshold) * d.interval
	type probe struct {
		id      simnet.NodeID
		expired bool
	}
	probes := make([]probe, 0, len(d.peers))
	for id, st := range d.peers {
		expired := !st.suspected && now.Sub(st.lastPong) > deadline
		if expired {
			st.suspected = true
		}
		probes = append(probes, probe{id: id, expired: expired})
	}
	d.mu.Unlock()

	sort.Slice(probes, func(i, j int) bool { return probes[i].id < probes[j].id })
	var failed []simnet.NodeID
	for _, p := range probes {
		// Ping regardless of suspicion so a recovered peer re-arms.
		_ = d.transport.Send(d.self, p.id, KindPing, nil)
		if p.expired {
			failed = append(failed, p.id)
			if d.onFailure != nil {
				d.onFailure(p.id)
			}
		}
	}
	return failed
}

// Start runs the heartbeat loop until Stop. It is optional: simulations
// may drive Tick directly instead.
func (d *Detector) Start() {
	d.mu.Lock()
	if d.stop != nil {
		d.mu.Unlock()
		return
	}
	d.stop = make(chan struct{})
	d.done = make(chan struct{})
	stop, done := d.stop, d.done
	d.mu.Unlock()
	go func() {
		defer close(done)
		ticker := time.NewTicker(d.interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				d.Tick()
			case <-stop:
				return
			}
		}
	}()
}

// Stop halts the loop (idempotent) without deregistering the endpoint.
func (d *Detector) Stop() {
	d.mu.Lock()
	stop, done := d.stop, d.done
	d.stop = nil
	d.done = nil
	d.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// Close stops the loop and deregisters the endpoint.
func (d *Detector) Close() error {
	d.Stop()
	return d.transport.Deregister(d.self)
}
