package coordinator

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sspd/internal/simnet"
)

// TestDetectorFlappingOncePerEpisode drives the detector with an
// injected clock against a peer that flaps: it must fire the failure
// callback exactly once per failure episode, re-arming only when the
// peer answers again.
func TestDetectorFlappingOncePerEpisode(t *testing.T) {
	const (
		interval  = time.Second
		threshold = 3
	)
	net := simnet.NewSim(nil)
	defer net.Close()

	var alive atomic.Bool
	alive.Store(true)
	if err := net.Register("peer", func(m simnet.Message) {
		if m.Kind == KindPing && alive.Load() {
			_ = net.Send("peer", m.From, KindPong, nil)
		}
	}); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	failures := 0
	d, err := NewDetector(net, "det", interval, threshold, func(simnet.NodeID) {
		mu.Lock()
		failures++
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	now := time.Unix(1000, 0)
	clockMu := sync.Mutex{}
	d.SetClock(func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return now
	})
	advance := func(dur time.Duration) {
		clockMu.Lock()
		now = now.Add(dur)
		clockMu.Unlock()
	}
	got := func() int {
		mu.Lock()
		defer mu.Unlock()
		return failures
	}
	d.Watch("peer")

	// Each step advances the clock by some intervals, sets the peer's
	// responsiveness, runs one Tick, and checks the cumulative callback
	// count. The deadline is threshold*interval past the last pong.
	steps := []struct {
		name      string
		advance   time.Duration
		alive     bool
		wantTotal int
	}{
		// Misses threshold-1 intervals: within the grace window, silent.
		{"miss one interval", interval, false, 0},
		{"miss second interval (threshold-1)", interval, false, 0},
		// Answers just in time: lastPong refreshes, still no episode.
		{"answers again", interval, true, 0},
		// A fresh run of misses: the deadline is measured from the new
		// pong, so two more silent intervals...
		{"fails again: first miss", interval, false, 0},
		{"fails again: second miss", interval, false, 0},
		{"fails again: third miss fires once", interval + time.Millisecond, false, 1},
		// Still dead: no duplicate callbacks for the same episode.
		{"still dead", interval, false, 1},
		{"still dead much later", 10 * interval, false, 1},
		// Recovers: detection re-arms...
		{"recovers", interval, true, 1},
		// ...and a second full episode fires exactly once more.
		{"second episode: miss 1", interval, false, 1},
		{"second episode: miss 2", interval, false, 1},
		{"second episode: fires again", interval + time.Millisecond, false, 2},
		{"second episode: still dead", interval, false, 2},
	}
	for _, step := range steps {
		alive.Store(step.alive)
		advance(step.advance)
		d.Tick()
		// Let the ping/pong exchange settle so the next step's deadline
		// math sees the refreshed lastPong.
		if !net.Quiesce(time.Second) {
			t.Fatalf("%s: quiesce", step.name)
		}
		if got() != step.wantTotal {
			t.Fatalf("%s: failures = %d, want %d", step.name, got(), step.wantTotal)
		}
	}
}

// TestDetectorReportFailureAcceleratesDetection checks the out-of-band
// suspicion feed (reliable-layer give-ups): a report against a dead
// peer gets it declared failed within ~one interval instead of the full
// threshold window, while a report against a healthy peer is cleared by
// the confirmation pong and never fires the callback.
func TestDetectorReportFailureAcceleratesDetection(t *testing.T) {
	const interval = time.Second
	net := simnet.NewSim(nil)
	defer net.Close()
	var alive atomic.Bool
	if err := net.Register("peer", func(m simnet.Message) {
		if m.Kind == KindPing && alive.Load() {
			_ = net.Send("peer", m.From, KindPong, nil)
		}
	}); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	failures := 0
	d, err := NewDetector(net, "det", interval, 3, func(simnet.NodeID) {
		mu.Lock()
		failures++
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	now := time.Unix(1000, 0)
	var clockMu sync.Mutex
	d.SetClock(func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return now
	})
	advance := func(dur time.Duration) {
		clockMu.Lock()
		now = now.Add(dur)
		clockMu.Unlock()
	}
	got := func() int {
		mu.Lock()
		defer mu.Unlock()
		return failures
	}

	if d.ReportFailure("peer") {
		t.Fatal("unwatched peer accepted")
	}
	d.Watch("peer")

	// Healthy peer: the report fast-tracks a probe, the pong clears it.
	alive.Store(true)
	if !d.ReportFailure("peer") {
		t.Fatal("report on healthy peer not accepted")
	}
	d.Tick() // within the one-interval grace: pings, does not declare
	if !net.Quiesce(time.Second) {
		t.Fatal("quiesce")
	}
	advance(interval)
	d.Tick()
	if !net.Quiesce(time.Second) {
		t.Fatal("quiesce")
	}
	if got() != 0 {
		t.Fatalf("healthy peer declared failed after a give-up report (failures = %d)", got())
	}

	// Dead peer: the report plus two unanswered intervals declares it —
	// before the natural 3-interval deadline would have.
	alive.Store(false)
	if !d.ReportFailure("peer") {
		t.Fatal("report on dead peer not accepted")
	}
	d.Tick() // confirmation ping goes out, still within grace
	if !net.Quiesce(time.Second) {
		t.Fatal("quiesce")
	}
	if got() != 0 {
		t.Fatal("declared failed before the confirmation window elapsed")
	}
	advance(interval)
	d.Tick() // one interval in: still within the two-interval grace
	if got() != 0 {
		t.Fatal("declared failed one interval after the report")
	}
	advance(interval + time.Millisecond)
	d.Tick()
	if got() != 1 {
		t.Fatalf("failures = %d, want 1 (accelerated detection)", got())
	}
	if !d.Suspected("peer") {
		t.Fatal("peer not suspected")
	}
	if d.ReportFailure("peer") {
		t.Fatal("report accepted for an already-suspected peer")
	}
}
