package coordinator

import (
	"fmt"
	"sort"

	"sspd/internal/simnet"
)

// RouteQuery distributes one query down the tree, level by level: each
// coordinator forwards to its child closest to the query's origin
// (coarse locality information, as higher levels know nothing finer),
// and the leaf-level coordinator picks the least-loaded member of its
// cluster. It returns the chosen entity and the number of coordinators
// that handled the query — the per-query work the hierarchical scheme
// spreads across the tree, versus N for a flat central coordinator.
func (t *Tree) RouteQuery(origin simnet.Point, load func(MemberID) float64) (MemberID, int, error) {
	if t.root == "" {
		return "", 0, fmt.Errorf("coordinator: empty tree")
	}
	cur := t.root
	level := t.height
	hops := 1
	for level > 1 {
		best := MemberID("")
		bestD := 0.0
		for _, c := range t.children[levelKey{cur, level}] {
			d := t.pos[c].Distance(origin)
			if best == "" || d < bestD || (d == bestD && c < best) {
				best, bestD = c, d
			}
		}
		if best == "" {
			break
		}
		cur = best
		level--
		hops++
	}
	// Leaf cluster: balance load across its members.
	members := t.children[levelKey{cur, 1}]
	if len(members) == 0 {
		return cur, hops, nil
	}
	sorted := make([]MemberID, len(members))
	copy(sorted, members)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	best := sorted[0]
	bestLoad := load(best)
	for _, m := range sorted[1:] {
		if l := load(m); l < bestLoad {
			best, bestLoad = m, l
		}
	}
	return best, hops, nil
}

// Flat is the baseline central coordinator: one node that knows every
// entity and scans all of them for every query. Simple and optimal per
// decision, but its per-query work grows linearly with the federation —
// the bottleneck the hierarchical tree removes.
type Flat struct {
	members map[MemberID]simnet.Point
}

// NewFlat returns an empty flat coordinator.
func NewFlat() *Flat {
	return &Flat{members: make(map[MemberID]simnet.Point)}
}

// Join registers an entity.
func (f *Flat) Join(id MemberID, at simnet.Point) error {
	if _, dup := f.members[id]; dup {
		return fmt.Errorf("coordinator: member %q already joined", id)
	}
	f.members[id] = at
	return nil
}

// Leave removes an entity.
func (f *Flat) Leave(id MemberID) error {
	if _, ok := f.members[id]; !ok {
		return fmt.Errorf("coordinator: unknown member %q", id)
	}
	delete(f.members, id)
	return nil
}

// Size returns the number of registered entities.
func (f *Flat) Size() int { return len(f.members) }

// RouteQuery picks the least-loaded entity among ALL members (ties to
// the closest), touching every entity: the returned work count equals
// the federation size.
func (f *Flat) RouteQuery(origin simnet.Point, load func(MemberID) float64) (MemberID, int, error) {
	if len(f.members) == 0 {
		return "", 0, fmt.Errorf("coordinator: no members")
	}
	ids := make([]MemberID, 0, len(f.members))
	for id := range f.members {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	best := ids[0]
	bestLoad := load(best)
	for _, id := range ids[1:] {
		l := load(id)
		if l < bestLoad ||
			(l == bestLoad && f.members[id].Distance(origin) < f.members[best].Distance(origin)) {
			best, bestLoad = id, l
		}
	}
	return best, len(ids), nil
}
