package httpapi

// Engine introspection endpoints (DESIGN.md §14):
//
//	GET /cluster/engine   per-entity shard telemetry + backpressure state
//	GET /profiles         continuous-profiling capture ring listing
//	GET /profiles/{name}  one stored pprof capture (binary)

import (
	"fmt"
	"math"
	"net/http"

	"sspd/internal/profile"
)

// clusterEngine answers the cluster engine view: every entity's merged
// shard telemetry (occupancy, drops, kernel split) plus the
// backpressure watchdog's last windowed readings and verdicts.
func (s *Server) clusterEngine(w http.ResponseWriter, _ *http.Request) {
	view, ok := s.fed.ClusterEngine()
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("httpapi: engine introspection not enabled"))
		return
	}
	verdicts := make([]map[string]any, 0, len(view.Verdicts))
	for _, v := range view.Verdicts {
		row := map[string]any{
			"rule":      v.Rule.Raw,
			"breached":  v.Breached,
			"evaluated": v.Evaluated,
		}
		// Value is NaN when the window carried no traffic; JSON has no
		// NaN, so unevaluated rules simply omit it.
		if !math.IsNaN(v.Value) {
			row["value"] = v.Value
		}
		verdicts = append(verdicts, row)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"entities":           view.Entities,
		"drop_rate":          view.DropRate,
		"ring_occupancy_p99": view.RingOccP99,
		"saturated":          view.Saturated,
		"verdicts":           verdicts,
	})
}

// listProfiles lists the profiling ring's stored captures, newest
// first.
func (s *Server) listProfiles(w http.ResponseWriter, _ *http.Request) {
	rec := s.fed.Profiler()
	if rec == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("httpapi: profiling not enabled"))
		return
	}
	cs := rec.Captures()
	profile.SortCaptures(cs)
	writeJSON(w, http.StatusOK, map[string]any{
		"dir":      rec.Dir(),
		"total":    rec.Total(),
		"captures": cs,
	})
}

// getProfile serves one stored capture's raw pprof bytes.
func (s *Server) getProfile(w http.ResponseWriter, r *http.Request) {
	rec := s.fed.Profiler()
	if rec == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("httpapi: profiling not enabled"))
		return
	}
	name := r.PathValue("name")
	data, err := rec.Open(name)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", name))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}
