package httpapi

// Cluster-wide observability endpoints (DESIGN.md §9). These read the
// stats federation's root digest and the structured event journal:
//
//	GET /cluster          live ops view (HTML)
//	GET /cluster/metrics  merged cluster digest, Prometheus text format
//	GET /cluster/health   per-entity health derived from digest freshness
//	GET /cluster/latency  latency attribution: stage waterfalls, measured
//	                      PR vs estimate, SLO watchdog verdicts
//	GET /cluster/engine   shard telemetry heatmap + backpressure state
//	GET /events           structured event journal, ?since=<seq>&kind=<k>

import (
	"fmt"
	"math"
	"net/http"
	"strconv"

	"sspd/internal/latency"
	"sspd/internal/obslog"
)

// clusterMetrics serves the root digest as sspd_cluster_* families.
func (s *Server) clusterMetrics(w http.ResponseWriter, _ *http.Request) {
	reg := s.fed.ClusterRegistry()
	if reg == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("httpapi: stats plane not enabled"))
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_ = reg.WritePrometheus(w)
}

// clusterHealth returns the merged digest joined against live
// membership: who is up, whose row is fresh, and the row detail the ops
// view renders (loads, query counts, PR_max sparklines).
func (s *Server) clusterHealth(w http.ResponseWriter, _ *http.Request) {
	if !s.fed.StatsEnabled() {
		writeErr(w, http.StatusNotFound, fmt.Errorf("httpapi: stats plane not enabled"))
		return
	}
	rows, root, _ := s.fed.ClusterStats()
	writeJSON(w, http.StatusOK, map[string]any{
		"root":        root,
		"entities":    s.fed.ClusterHealth(),
		"rows":        rows,
		"migrations":  s.fed.Migrations(),
		"recoveries":  s.fed.Recoveries(),
		"checkpoints": s.fed.Checkpoints(),
	})
}

// histSummary condenses a latency histogram for JSON clients. All
// values are seconds; the percentiles are log-bucket estimates (exact
// to within one bucket boundary, see latency.HistSnapshot.Quantile).
type histSummary struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean_seconds"`
	P50   float64 `json:"p50_seconds"`
	P95   float64 `json:"p95_seconds"`
	P99   float64 `json:"p99_seconds"`
}

func summarize(h latency.HistSnapshot) histSummary {
	return histSummary{
		Count: h.Count,
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}

// clusterLatency answers the cluster-wide latency attribution view: the
// merged end-to-end distribution, the per-stage waterfall with each
// stage's share of total delay, per-query rows joining measured PR
// against the engine-estimated PR, and the SLO watchdog's verdicts.
func (s *Server) clusterLatency(w http.ResponseWriter, _ *http.Request) {
	if !s.fed.LatencyEnabled() {
		writeErr(w, http.StatusNotFound, fmt.Errorf("httpapi: latency attribution not enabled"))
		return
	}
	att, _ := s.fed.ClusterLatency()

	var totalStage float64
	for _, hs := range att.Stages {
		totalStage += hs.Sum
	}
	stages := make(map[string]map[string]any, len(att.Stages))
	for st, hs := range att.Stages {
		share := 0.0
		if totalStage > 0 {
			share = hs.Sum / totalStage
		}
		row := summarize(hs)
		stages[st] = map[string]any{
			"count":        row.Count,
			"mean_seconds": row.Mean,
			"p50_seconds":  row.P50,
			"p95_seconds":  row.P95,
			"p99_seconds":  row.P99,
			"share":        share,
		}
	}

	queries := make([]map[string]any, 0, len(att.Queries))
	for _, q := range att.Queries {
		row := map[string]any{
			"query":       q.Query,
			"e2e":         summarize(q.E2E),
			"eval_mean":   q.EvalMean,
			"pr_measured": q.PRMeasured,
			"waterfall":   q.Stages,
		}
		if est, ok := s.fed.QueryPR(q.Query); ok {
			row["pr_estimated"] = est
			row["pr_drift"] = q.PRMeasured - est
		}
		if ent, ok := s.fed.QueryEntity(q.Query); ok {
			row["entity"] = ent
		}
		queries = append(queries, row)
	}

	slo := make([]map[string]any, 0)
	for _, v := range s.fed.SLOStatus() {
		row := map[string]any{
			"rule":      v.Rule.Raw,
			"breached":  v.Breached,
			"evaluated": v.Evaluated,
		}
		// Value is NaN when the window carried no traffic; JSON has no
		// NaN, so unevaluated rules simply omit it.
		if !math.IsNaN(v.Value) {
			row["value"] = v.Value
		}
		slo = append(slo, row)
	}

	writeJSON(w, http.StatusOK, map[string]any{
		"e2e":         summarize(att.E2E),
		"stages":      stages,
		"queries":     queries,
		"slo":         slo,
		"incomplete":  att.Incomplete,
		"stage_order": latency.Stages,
	})
}

// events serves the flight recorder. since is an exclusive sequence
// cursor (0 = from the beginning); kind filters by exact kind or
// dot-boundary prefix ("detector" matches detector.suspect).
func (s *Server) events(w http.ResponseWriter, r *http.Request) {
	j := s.fed.Journal()
	if j == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("httpapi: no event journal"))
		return
	}
	var since uint64
	if q := r.URL.Query().Get("since"); q != "" {
		v, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("httpapi: bad since %q: must be a non-negative integer", q))
			return
		}
		since = v
	}
	kind := r.URL.Query().Get("kind")
	if kind != "" && !obslog.ValidKind(kind) {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("httpapi: bad kind %q: want dot-separated [a-z0-9_-] segments", kind))
		return
	}
	events := j.Since(since, kind)
	writeJSON(w, http.StatusOK, map[string]any{
		"last_seq": j.LastSeq(),
		"dropped":  j.Dropped(),
		"events":   events,
	})
}

// clusterPage is the live ops view: an entity table with health and
// PR_max sparklines plus the recent event tail, polled from
// /cluster/health and /events by a little inline script.
func (s *Server) clusterPage(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(clusterPageHTML))
}

const clusterPageHTML = `<!doctype html>
<html>
<head>
<meta charset="utf-8">
<title>sspd cluster</title>
<style>
  body { font-family: ui-monospace, monospace; margin: 1.5rem; background: #111; color: #ddd; }
  h1 { font-size: 1.1rem; } h2 { font-size: 0.95rem; margin-top: 1.5rem; }
  table { border-collapse: collapse; width: 100%; }
  th, td { text-align: left; padding: 0.25rem 0.75rem; border-bottom: 1px solid #333; font-size: 0.85rem; }
  th { color: #888; font-weight: normal; }
  .ok { color: #6c6; } .bad { color: #e66; }
  svg { vertical-align: middle; }
  #events div { padding: 0.1rem 0; font-size: 0.8rem; border-bottom: 1px solid #222; }
  .kind { color: #8bf; } .seq { color: #666; } .muted { color: #888; font-size: 12px; font-weight: normal; }
  #meta, #lat-meta { color: #888; font-size: 0.8rem; }
  .wf { display: inline-flex; width: 220px; height: 12px; background: #222; }
  .wf div { height: 100%; }
  .wf-dissemination { background: #8bf; } .wf-network { background: #e66; }
  .wf-ingest { background: #fc6; } .wf-engine { background: #c9f; } .wf-eval { background: #6c6; }
  .slo { display: inline-block; padding: 0 0.5rem; margin-right: 0.5rem; border-radius: 3px; font-size: 0.8rem; }
  .slo.ok { background: #163; color: #cfc; } .slo.bad { background: #611; color: #fcc; }
  .slo.idle { background: #333; color: #999; }
  .legend span { margin-right: 0.8rem; font-size: 0.75rem; color: #999; }
  .swatch { display: inline-block; width: 9px; height: 9px; margin-right: 0.25rem; }
  .hm { display: inline-flex; }
  .hm div { width: 11px; height: 12px; margin-right: 1px; background: #222; }
</style>
</head>
<body>
<h1>sspd cluster</h1>
<div id="meta">loading…</div>
<table>
  <thead><tr><th>entity</th><th>health</th><th>load</th><th>queries</th><th>PR_max</th><th>PR_max trend</th><th>age</th></tr></thead>
  <tbody id="entities"></tbody>
</table>
<h2>latency</h2>
<div id="lat-meta">latency attribution not enabled</div>
<div id="slo"></div>
<div class="legend" id="lat-legend"></div>
<table>
  <thead><tr><th>stage</th><th>share</th><th>p50</th><th>p95</th><th>p99</th></tr></thead>
  <tbody id="lat-stages"></tbody>
</table>
<table>
  <thead><tr><th>query</th><th>entity</th><th>waterfall</th><th>mean</th><th>p99</th><th>PR meas</th><th>PR est</th><th>drift</th></tr></thead>
  <tbody id="lat-queries"></tbody>
</table>
<h2>engine</h2>
<div id="eng-meta">engine introspection not enabled</div>
<table>
  <thead><tr><th>entity</th><th>queries</th><th>shard occupancy</th><th>dropped</th><th>drop trend</th><th>kernel hit</th><th>selectivity</th></tr></thead>
  <tbody id="eng-entities"></tbody>
</table>
<h2>migrations</h2>
<table>
  <thead><tr><th>query</th><th>from → to</th><th>outcome</th><th>state</th><th>replayed</th><th>pause</th><th>reason</th></tr></thead>
  <tbody id="migrations"></tbody>
</table>
<h2>recoveries <span id="ckpt-meta" class="muted"></span></h2>
<table>
  <thead><tr><th>query</th><th>failed → target</th><th>outcome</th><th>ckpt seq</th><th>replayed</th><th>reason</th></tr></thead>
  <tbody id="recoveries"></tbody>
</table>
<h2>recent events</h2>
<div id="events"></div>
<script>
function spark(vals) {
  if (!vals || !vals.length) return '';
  const w = 96, h = 18, max = Math.max(...vals, 1e-9);
  const pts = vals.map((v, i) =>
    (i * w / Math.max(vals.length - 1, 1)).toFixed(1) + ',' +
    (h - 2 - (v / max) * (h - 4)).toFixed(1)).join(' ');
  return '<svg width="' + w + '" height="' + h + '"><polyline points="' + pts +
    '" fill="none" stroke="#8bf" stroke-width="1.2"/></svg>';
}
function esc(s) { return String(s).replace(/[&<>]/g, c => ({'&':'&amp;','<':'&lt;','>':'&gt;'}[c])); }
function ms(sec) { return sec >= 0.0995 ? (sec).toFixed(2) + 's' : (sec * 1e3).toFixed(1) + 'ms'; }
function waterfall(order, wf) {
  if (!wf) return '';
  const total = order.reduce((a, st) => a + (wf[st] || 0), 0);
  if (total <= 0) return '';
  return '<span class="wf" title="' +
    order.map(st => st + ': ' + ms(wf[st] || 0)).join(', ') + '">' +
    order.map(st => '<div class="wf-' + st + '" style="width:' +
      (100 * (wf[st] || 0) / total).toFixed(1) + '%"></div>').join('') + '</span>';
}
async function refreshLatency() {
  const lr = await fetch('cluster/latency');
  if (!lr.ok) { document.getElementById('lat-meta').textContent = 'latency attribution not enabled'; return; }
  const l = await lr.json();
  const order = l.stage_order || [];
  document.getElementById('lat-meta').textContent =
    'end-to-end: ' + l.e2e.count + ' spans · mean ' + ms(l.e2e.mean_seconds) +
    ' · p99 ' + ms(l.e2e.p99_seconds) + (l.incomplete ? ' · ' + l.incomplete + ' incomplete' : '');
  document.getElementById('slo').innerHTML = (l.slo || []).map(v =>
    '<span class="slo ' + (v.breached ? 'bad' : (v.evaluated ? 'ok' : 'idle')) + '">' + esc(v.rule) +
    ('value' in v ? ' · ' + v.value.toFixed(3) : '') + '</span>').join('');
  document.getElementById('lat-legend').innerHTML = order.map(st =>
    '<span><span class="swatch wf-' + st + '"></span>' + st + '</span>').join('');
  document.getElementById('lat-stages').innerHTML = order.map(st => {
    const s = (l.stages || {})[st];
    if (!s) return '';
    return '<tr><td>' + st + '</td><td>' + (100 * s.share).toFixed(1) + '%</td>' +
      '<td>' + ms(s.p50_seconds) + '</td><td>' + ms(s.p95_seconds) + '</td><td>' + ms(s.p99_seconds) + '</td></tr>';
  }).join('');
  document.getElementById('lat-queries').innerHTML = (l.queries || []).map(q =>
    '<tr><td>' + esc(q.query) + '</td><td>' + esc(q.entity || '') + '</td>' +
    '<td>' + waterfall(order, q.waterfall) + '</td>' +
    '<td>' + ms(q.e2e.mean_seconds) + '</td><td>' + ms(q.e2e.p99_seconds) + '</td>' +
    '<td>' + q.pr_measured.toFixed(2) + '</td>' +
    '<td>' + ('pr_estimated' in q ? q.pr_estimated.toFixed(2) : '—') + '</td>' +
    '<td>' + ('pr_drift' in q ? q.pr_drift.toFixed(2) : '—') + '</td></tr>').join('');
}
function heat(shards) {
  if (!shards || !shards.length) return '';
  return '<span class="hm">' + shards.map(sh => {
    const f = sh.ring_cap > 0 ? Math.min(Math.max(sh.occupancy / sh.ring_cap, 0), 1) : 0;
    const hw = sh.ring_cap > 0 ? sh.high_water / sh.ring_cap : 0;
    const r = Math.round(40 + 200 * f), g = Math.round(80 - 40 * f);
    return '<div style="background:rgb(' + r + ',' + g + ',40)" title="' +
      esc((sh.engine || '') + '/s' + sh.shard) + ': occ ' + sh.occupancy + '/' + sh.ring_cap +
      ' · hw ' + (100 * hw).toFixed(0) + '% · dropped ' + sh.dropped + '"></div>';
  }).join('') + '</span>';
}
async function refreshEngine() {
  const gr = await fetch('cluster/engine');
  if (!gr.ok) { document.getElementById('eng-meta').textContent = 'engine introspection not enabled'; return; }
  const g = await gr.json();
  document.getElementById('eng-meta').innerHTML =
    'drop rate ' + (100 * g.drop_rate).toFixed(2) + '% · ring occ p99 ' +
    (100 * g.ring_occupancy_p99).toFixed(1) + '% · ' +
    (g.saturated ? '<span class="slo bad">saturated</span>' : '<span class="slo ok">healthy</span>');
  document.getElementById('eng-entities').innerHTML = (g.entities || []).map(e => {
    const sh = (e.stats && e.stats.shards) || [];
    let tup = 0, kern = 0, kin = 0, kout = 0;
    sh.forEach(s => { tup += s.tuples; kern += s.kernel_tuples; kin += s.kernel_in; kout += s.kernel_out; });
    return '<tr><td>' + esc(e.entity) + '</td><td>' + ((e.stats && e.stats.queries) || 0) + '</td>' +
      '<td>' + heat(sh) + '</td><td>' + e.dropped + '</td>' +
      '<td>' + spark(e.drop_spark) + '</td>' +
      '<td>' + (tup > 0 ? (100 * kern / tup).toFixed(1) + '%' : '—') + '</td>' +
      '<td>' + (kin > 0 ? (100 * kout / kin).toFixed(1) + '%' : '—') + '</td></tr>';
  }).join('');
}
async function refresh() {
  try {
    const hr = await fetch('cluster/health');
    if (!hr.ok) { document.getElementById('meta').textContent = 'stats plane not enabled'; return; }
    const h = await hr.json();
    document.getElementById('meta').textContent =
      'digest root: ' + h.root + ' · entities: ' + h.entities.length;
    document.getElementById('entities').innerHTML = h.entities.map(e => {
      const row = (h.rows || {})[e.entity] || {};
      return '<tr><td>' + esc(e.entity) + '</td>' +
        '<td class="' + (e.healthy ? 'ok">healthy' : 'bad">' + (e.up ? 'stale' : 'down')) + '</td>' +
        '<td>' + e.load.toFixed(2) + '</td><td>' + e.queries + '</td>' +
        '<td>' + e.pr_max.toFixed(3) + '</td><td>' + spark(row.pr_spark) + '</td>' +
        '<td>' + (e.age_seconds < 0 ? '—' : e.age_seconds.toFixed(1) + 's') + '</td></tr>';
    }).join('');
    document.getElementById('migrations').innerHTML = (h.migrations || []).slice(0, 20).map(m =>
      '<tr><td>' + esc(m.query) + '</td><td>' + esc(m.from) + ' → ' + esc(m.to) + '</td>' +
      '<td class="' + (m.outcome === 'commit' ? 'ok' : 'bad') + '">' + esc(m.outcome) + '</td>' +
      '<td>' + m.state_bytes + 'B</td><td>' + m.replayed + '</td>' +
      '<td>' + m.pause_ms.toFixed(1) + 'ms</td><td>' + esc(m.reason || '') + '</td></tr>').join('');
    const ck = h.checkpoints || {};
    document.getElementById('ckpt-meta').textContent = ck.enabled
      ? '· ' + ck.writes + ' written · ' + ck.quorum_acked + ' quorum-acked (K=' + ck.replicas +
        ', Q=' + ck.quorum + ') · ' + ck.ring_tuples + ' ring tuples' +
        (ck.corrupt ? ' · ' + ck.corrupt + ' corrupt' : '')
      : '· checkpoints disabled';
    document.getElementById('recoveries').innerHTML = (h.recoveries || []).slice(0, 20).map(r =>
      '<tr><td>' + esc(r.query) + '</td><td>' + esc(r.failed) + ' → ' + esc(r.target || '—') + '</td>' +
      '<td class="' + (r.outcome === 'failed' ? 'bad' : 'ok') + '">' + esc(r.outcome) + '</td>' +
      '<td>' + (r.ckpt_seq || '—') + '</td><td>' + r.replayed + '</td>' +
      '<td>' + esc(r.reason || '') + '</td></tr>').join('');
    await refreshLatency();
    await refreshEngine();
    const er = await fetch('events');
    if (er.ok) {
      const ev = await er.json();
      document.getElementById('events').innerHTML = (ev.events || []).slice(-40).reverse().map(e =>
        '<div><span class="seq">#' + e.seq + '</span> <span class="kind">' + esc(e.kind) +
        '</span> ' + esc(e.node) + ' — ' + esc(e.msg) + '</div>').join('');
    }
  } catch (err) {
    document.getElementById('meta').textContent = 'portal unreachable: ' + err;
  }
}
refresh();
setInterval(refresh, 2000);
</script>
</body>
</html>
`
