package httpapi

// Cluster-wide observability endpoints (DESIGN.md §9). These read the
// stats federation's root digest and the structured event journal:
//
//	GET /cluster          live ops view (HTML)
//	GET /cluster/metrics  merged cluster digest, Prometheus text format
//	GET /cluster/health   per-entity health derived from digest freshness
//	GET /events           structured event journal, ?since=<seq>&kind=<k>

import (
	"fmt"
	"net/http"
	"strconv"

	"sspd/internal/obslog"
)

// clusterMetrics serves the root digest as sspd_cluster_* families.
func (s *Server) clusterMetrics(w http.ResponseWriter, _ *http.Request) {
	reg := s.fed.ClusterRegistry()
	if reg == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("httpapi: stats plane not enabled"))
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_ = reg.WritePrometheus(w)
}

// clusterHealth returns the merged digest joined against live
// membership: who is up, whose row is fresh, and the row detail the ops
// view renders (loads, query counts, PR_max sparklines).
func (s *Server) clusterHealth(w http.ResponseWriter, _ *http.Request) {
	if !s.fed.StatsEnabled() {
		writeErr(w, http.StatusNotFound, fmt.Errorf("httpapi: stats plane not enabled"))
		return
	}
	rows, root, _ := s.fed.ClusterStats()
	writeJSON(w, http.StatusOK, map[string]any{
		"root":       root,
		"entities":   s.fed.ClusterHealth(),
		"rows":       rows,
		"migrations": s.fed.Migrations(),
	})
}

// events serves the flight recorder. since is an exclusive sequence
// cursor (0 = from the beginning); kind filters by exact kind or
// dot-boundary prefix ("detector" matches detector.suspect).
func (s *Server) events(w http.ResponseWriter, r *http.Request) {
	j := s.fed.Journal()
	if j == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("httpapi: no event journal"))
		return
	}
	var since uint64
	if q := r.URL.Query().Get("since"); q != "" {
		v, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("httpapi: bad since %q: must be a non-negative integer", q))
			return
		}
		since = v
	}
	kind := r.URL.Query().Get("kind")
	if kind != "" && !obslog.ValidKind(kind) {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("httpapi: bad kind %q: want dot-separated [a-z0-9_-] segments", kind))
		return
	}
	events := j.Since(since, kind)
	writeJSON(w, http.StatusOK, map[string]any{
		"last_seq": j.LastSeq(),
		"dropped":  j.Dropped(),
		"events":   events,
	})
}

// clusterPage is the live ops view: an entity table with health and
// PR_max sparklines plus the recent event tail, polled from
// /cluster/health and /events by a little inline script.
func (s *Server) clusterPage(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(clusterPageHTML))
}

const clusterPageHTML = `<!doctype html>
<html>
<head>
<meta charset="utf-8">
<title>sspd cluster</title>
<style>
  body { font-family: ui-monospace, monospace; margin: 1.5rem; background: #111; color: #ddd; }
  h1 { font-size: 1.1rem; } h2 { font-size: 0.95rem; margin-top: 1.5rem; }
  table { border-collapse: collapse; width: 100%; }
  th, td { text-align: left; padding: 0.25rem 0.75rem; border-bottom: 1px solid #333; font-size: 0.85rem; }
  th { color: #888; font-weight: normal; }
  .ok { color: #6c6; } .bad { color: #e66; }
  svg { vertical-align: middle; }
  #events div { padding: 0.1rem 0; font-size: 0.8rem; border-bottom: 1px solid #222; }
  .kind { color: #8bf; } .seq { color: #666; }
  #meta { color: #888; font-size: 0.8rem; }
</style>
</head>
<body>
<h1>sspd cluster</h1>
<div id="meta">loading…</div>
<table>
  <thead><tr><th>entity</th><th>health</th><th>load</th><th>queries</th><th>PR_max</th><th>PR_max trend</th><th>age</th></tr></thead>
  <tbody id="entities"></tbody>
</table>
<h2>migrations</h2>
<table>
  <thead><tr><th>query</th><th>from → to</th><th>outcome</th><th>state</th><th>replayed</th><th>pause</th><th>reason</th></tr></thead>
  <tbody id="migrations"></tbody>
</table>
<h2>recent events</h2>
<div id="events"></div>
<script>
function spark(vals) {
  if (!vals || !vals.length) return '';
  const w = 96, h = 18, max = Math.max(...vals, 1e-9);
  const pts = vals.map((v, i) =>
    (i * w / Math.max(vals.length - 1, 1)).toFixed(1) + ',' +
    (h - 2 - (v / max) * (h - 4)).toFixed(1)).join(' ');
  return '<svg width="' + w + '" height="' + h + '"><polyline points="' + pts +
    '" fill="none" stroke="#8bf" stroke-width="1.2"/></svg>';
}
function esc(s) { return String(s).replace(/[&<>]/g, c => ({'&':'&amp;','<':'&lt;','>':'&gt;'}[c])); }
async function refresh() {
  try {
    const hr = await fetch('cluster/health');
    if (!hr.ok) { document.getElementById('meta').textContent = 'stats plane not enabled'; return; }
    const h = await hr.json();
    document.getElementById('meta').textContent =
      'digest root: ' + h.root + ' · entities: ' + h.entities.length;
    document.getElementById('entities').innerHTML = h.entities.map(e => {
      const row = (h.rows || {})[e.entity] || {};
      return '<tr><td>' + esc(e.entity) + '</td>' +
        '<td class="' + (e.healthy ? 'ok">healthy' : 'bad">' + (e.up ? 'stale' : 'down')) + '</td>' +
        '<td>' + e.load.toFixed(2) + '</td><td>' + e.queries + '</td>' +
        '<td>' + e.pr_max.toFixed(3) + '</td><td>' + spark(row.pr_spark) + '</td>' +
        '<td>' + (e.age_seconds < 0 ? '—' : e.age_seconds.toFixed(1) + 's') + '</td></tr>';
    }).join('');
    document.getElementById('migrations').innerHTML = (h.migrations || []).slice(0, 20).map(m =>
      '<tr><td>' + esc(m.query) + '</td><td>' + esc(m.from) + ' → ' + esc(m.to) + '</td>' +
      '<td class="' + (m.outcome === 'commit' ? 'ok' : 'bad') + '">' + esc(m.outcome) + '</td>' +
      '<td>' + m.state_bytes + 'B</td><td>' + m.replayed + '</td>' +
      '<td>' + m.pause_ms.toFixed(1) + 'ms</td><td>' + esc(m.reason || '') + '</td></tr>').join('');
    const er = await fetch('events');
    if (er.ok) {
      const ev = await er.json();
      document.getElementById('events').innerHTML = (ev.events || []).slice(-40).reverse().map(e =>
        '<div><span class="seq">#' + e.seq + '</span> <span class="kind">' + esc(e.kind) +
        '</span> ' + esc(e.node) + ' — ' + esc(e.msg) + '</div>').join('');
    }
  } catch (err) {
    document.getElementById('meta').textContent = 'portal unreachable: ' + err;
  }
}
refresh();
setInterval(refresh, 2000);
</script>
</body>
</html>
`
