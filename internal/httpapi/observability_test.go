package httpapi

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"sspd/internal/trace"
	"sspd/internal/workload"
)

func scrape(t *testing.T, url string) (string, *http.Response) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp
}

// TestMetricsEndpoint is the acceptance check: GET /metrics on a running
// portal serves valid Prometheus text including PR_max, per-query PR
// ratios, coordinator event counters, and relay byte meters.
func TestMetricsEndpoint(t *testing.T) {
	ts, fed, net := newTestServer(t)
	resp, _ := postJSON(t, ts.URL+"/queries", map[string]string{
		"id": "q1", "query": "FROM quotes WHERE price < 500"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("post query: %d", resp.StatusCode)
	}
	if !net.Quiesce(2 * time.Second) {
		t.Fatal("quiesce after submit")
	}
	tick := workload.NewTicker(1, 100, 1.2)
	if err := fed.Publish("quotes", tick.Batch(10)); err != nil {
		t.Fatal(err)
	}
	if !net.Quiesce(2 * time.Second) {
		t.Fatal("quiesce after publish")
	}

	body, resp := scrape(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	for _, want := range []string{
		"# TYPE sspd_pr_max gauge",
		"sspd_pr_max ",
		`sspd_pr_ratio{query="q1"}`,
		"# TYPE sspd_coordinator_events_total counter",
		`sspd_coordinator_events_total{event="join"} 3`,
		`sspd_coordinator_events_total{event="split"}`,
		`sspd_relay_link_bytes_total{stream="quotes"}`,
		`sspd_relay_delivered_total{stream="quotes"}`,
		"sspd_entities 3",
		"sspd_queries 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	// Well-formed exposition: every non-comment line is "name{...} value"
	// and every family has a TYPE line before its samples.
	typed := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			typed[strings.Fields(line)[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed sample line %q", line)
		}
		name := fields[0]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_sum"), "_count"), "_total")
		if !typed[name] && !typed[base] && !typed[name+"_total"] && !typed[base+"_total"] {
			t.Errorf("sample %q has no TYPE header", name)
		}
	}
}

// TestMetricsScrapeWhileIngesting hammers /metrics while tuples flow —
// run under -race, this is the concurrent-scrape satellite.
func TestMetricsScrapeWhileIngesting(t *testing.T) {
	ts, fed, net := newTestServer(t)
	if resp, _ := postJSON(t, ts.URL+"/queries", map[string]string{
		"id": "q1", "query": "FROM quotes WHERE price < 900"}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("post query: %d", resp.StatusCode)
	}
	if !net.Quiesce(2 * time.Second) {
		t.Fatal("quiesce after submit")
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := workload.NewTicker(1, 100, 1.2)
		for {
			select {
			case <-stop:
				return
			default:
				_ = fed.Publish("quotes", tick.Batch(5))
			}
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				body, resp := scrape(t, ts.URL+"/metrics")
				if resp.StatusCode != http.StatusOK {
					t.Errorf("scrape %d: status %d", i, resp.StatusCode)
					return
				}
				if !strings.Contains(body, "sspd_pr_max") {
					t.Errorf("scrape %d missing sspd_pr_max", i)
					return
				}
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// TestTracesEndpoint drives a traced tuple end to end and reads its span
// back through the portal, including the portal hop itself.
func TestTracesEndpoint(t *testing.T) {
	ts, fed, net := newTestServer(t)
	// No tracer yet: both endpoints 404.
	if _, resp := scrape(t, ts.URL+"/traces"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /traces without tracer: %d", resp.StatusCode)
	}
	if _, resp := scrape(t, ts.URL+"/traces/1"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /traces/1 without tracer: %d", resp.StatusCode)
	}
	if _, err := fed.EnableTracing(1, 64); err != nil {
		t.Fatal(err)
	}
	defer trace.SetActive(nil)

	if resp, _ := postJSON(t, ts.URL+"/queries", map[string]string{
		"id": "q1", "query": "FROM quotes WHERE price < 1000"}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("post query: %d", resp.StatusCode)
	}
	if !net.Quiesce(2 * time.Second) {
		t.Fatal("quiesce after submit")
	}
	tick := workload.NewTicker(1, 100, 1.2)
	if err := fed.Publish("quotes", tick.Batch(3)); err != nil {
		t.Fatal(err)
	}
	if !net.Quiesce(2 * time.Second) {
		t.Fatal("quiesce after publish")
	}

	var list struct {
		SampleEvery int          `json:"sample_every"`
		Buffered    int          `json:"buffered"`
		Spans       []trace.Span `json:"spans"`
	}
	if resp := getJSON(t, ts.URL+"/traces", &list); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /traces: %d", resp.StatusCode)
	}
	if list.SampleEvery != 1 || list.Buffered != 3 || len(list.Spans) != 3 {
		t.Fatalf("traces list = every:%d buffered:%d spans:%d",
			list.SampleEvery, list.Buffered, len(list.Spans))
	}
	var span trace.Span
	if resp := getJSON(t, fmt.Sprintf("%s/traces/%d", ts.URL, list.Spans[0].ID), &span); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /traces/{id}: %d", resp.StatusCode)
	}
	stages := map[string]bool{}
	for _, h := range span.Hops {
		stages[h.Stage] = true
	}
	for _, want := range []string{trace.StagePublish, trace.StageRelay, trace.StageDeliver,
		trace.StageDelegate, trace.StageOperator, trace.StageResult, trace.StagePortal} {
		if !stages[want] {
			t.Fatalf("span missing stage %q: %+v", want, span.Hops)
		}
	}
	// Bad and unknown IDs.
	if _, resp := scrape(t, ts.URL+"/traces/notanumber"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad span id: %d", resp.StatusCode)
	}
	if _, resp := scrape(t, ts.URL+"/traces/99999"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown span id: %d", resp.StatusCode)
	}
}

// TestPprofEndpoint checks the profiling index is mounted.
func TestPprofEndpoint(t *testing.T) {
	ts, _, _ := newTestServer(t)
	body, resp := scrape(t, ts.URL+"/debug/pprof/")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/pprof/: %d", resp.StatusCode)
	}
	if !strings.Contains(body, "goroutine") {
		t.Error("pprof index missing goroutine profile link")
	}
}
