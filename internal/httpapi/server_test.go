package httpapi

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sspd/internal/core"
	"sspd/internal/engine"
	"sspd/internal/simnet"
	"sspd/internal/stream"
	"sspd/internal/workload"
)

func newTestServer(t *testing.T) (*httptest.Server, *core.Federation, *simnet.SimNet) {
	t.Helper()
	net := simnet.NewSim(nil)
	t.Cleanup(func() { net.Close() })
	catalog := workload.Catalog(100, 20)
	fed, err := core.New(net, catalog, core.Options{Fanout: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fed.Close)
	if err := fed.AddSource("quotes", simnet.Point{},
		core.StreamRate{TuplesPerSec: 100, BytesPerTuple: 60}); err != nil {
		t.Fatal(err)
	}
	mini := func(name string, c *stream.Catalog) engine.Processor {
		return engine.NewMini(name, c)
	}
	for i := 0; i < 3; i++ {
		if err := fed.AddEntity(fmt.Sprintf("e%02d", i),
			simnet.Point{X: float64(10 + i*20)}, 2, mini); err != nil {
			t.Fatal(err)
		}
	}
	if err := fed.Start(); err != nil {
		t.Fatal(err)
	}
	// Manual-tick stats plane: cluster endpoints work, no background
	// goroutines to leak into unrelated tests.
	if err := fed.EnableStatsPlane(0); err != nil {
		t.Fatal(err)
	}
	srv, err := New(fed, simnet.Point{X: 25})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, fed, net
}

func postJSON(t *testing.T, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp, out
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp
}

func TestNewRequiresFederation(t *testing.T) {
	if _, err := New(nil, simnet.Point{}); err == nil {
		t.Fatal("nil federation accepted")
	}
}

func TestPostQueryAndResults(t *testing.T) {
	ts, fed, net := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/queries", postQueryRequest{
		Query: "FROM quotes WHERE price <= 1000",
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("status = %d body=%v", resp.StatusCode, body)
	}
	id, _ := body["id"].(string)
	if id == "" || body["entity"] == "" {
		t.Fatalf("body = %v", body)
	}
	net.Quiesce(2 * time.Second)

	tick := workload.NewTicker(1, 100, 1.3)
	if err := fed.Publish("quotes", tick.Batch(10)); err != nil {
		t.Fatal(err)
	}
	net.Quiesce(2 * time.Second)
	time.Sleep(20 * time.Millisecond)

	var detail struct {
		Query  queryInfo   `json:"query"`
		Recent []resultRow `json:"recent"`
	}
	if resp := getJSON(t, ts.URL+"/queries/"+id, &detail); resp.StatusCode != 200 {
		t.Fatalf("get status = %d", resp.StatusCode)
	}
	if detail.Query.Results != 10 || len(detail.Recent) != 10 {
		t.Fatalf("results = %d recent = %d, want 10/10", detail.Query.Results, len(detail.Recent))
	}
	if len(detail.Recent[0].Values) == 0 {
		t.Fatal("result row has no values")
	}
}

func TestPostQueryErrors(t *testing.T) {
	ts, _, _ := newTestServer(t)
	if resp, _ := postJSON(t, ts.URL+"/queries", postQueryRequest{Query: ""}); resp.StatusCode != 400 {
		t.Errorf("empty query status = %d", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/queries", postQueryRequest{Query: "GARBAGE"}); resp.StatusCode != 422 {
		t.Errorf("parse error status = %d", resp.StatusCode)
	}
	resp, err := http.Post(ts.URL+"/queries", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("bad json status = %d", resp.StatusCode)
	}
	// Duplicate explicit ID conflicts.
	if resp, _ := postJSON(t, ts.URL+"/queries", postQueryRequest{ID: "dup", Query: "FROM quotes"}); resp.StatusCode != 201 {
		t.Fatalf("first dup status = %d", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/queries", postQueryRequest{ID: "dup", Query: "FROM quotes"}); resp.StatusCode != 409 {
		t.Errorf("duplicate status = %d", resp.StatusCode)
	}
}

func TestListAndDeleteQueries(t *testing.T) {
	ts, _, _ := newTestServer(t)
	for i := 0; i < 3; i++ {
		if resp, _ := postJSON(t, ts.URL+"/queries", postQueryRequest{
			Query: "FROM quotes WHERE price <= 500",
		}); resp.StatusCode != 201 {
			t.Fatal("post failed")
		}
	}
	var list []queryInfo
	getJSON(t, ts.URL+"/queries", &list)
	if len(list) != 3 {
		t.Fatalf("list = %d", len(list))
	}
	if list[0].ID > list[1].ID {
		t.Error("list not sorted")
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/queries/"+list[0].ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("delete status = %d", resp.StatusCode)
	}
	var after []queryInfo
	getJSON(t, ts.URL+"/queries", &after)
	if len(after) != 2 {
		t.Fatalf("after delete = %d", len(after))
	}
	// Deleting again 404s.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/queries/"+list[0].ID, nil)
	resp, _ = http.DefaultClient.Do(req)
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("double delete status = %d", resp.StatusCode)
	}
	var missing map[string]any
	if resp := getJSON(t, ts.URL+"/queries/nope", &missing); resp.StatusCode != 404 {
		t.Errorf("missing query status = %d", resp.StatusCode)
	}
}

func TestMigrateEndpoint(t *testing.T) {
	ts, fed, _ := newTestServer(t)
	_, body := postJSON(t, ts.URL+"/queries", postQueryRequest{ID: "m1", Query: "FROM quotes"})
	from, _ := body["entity"].(string)
	target := ""
	for _, id := range fed.EntityIDs() {
		if id != from {
			target = id
			break
		}
	}
	resp, _ := postJSON(t, ts.URL+"/queries/m1/migrate", map[string]string{"entity": target})
	if resp.StatusCode != 200 {
		t.Fatalf("migrate status = %d", resp.StatusCode)
	}
	if got, _ := fed.QueryEntity("m1"); got != target {
		t.Fatalf("query on %s, want %s", got, target)
	}
	if resp, _ := postJSON(t, ts.URL+"/queries/m1/migrate", map[string]string{}); resp.StatusCode != 400 {
		t.Errorf("empty target status = %d", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/queries/m1/migrate", map[string]string{"entity": "zz"}); resp.StatusCode != 409 {
		t.Errorf("bad target status = %d", resp.StatusCode)
	}
}

func TestEntitiesStatsAndRebalance(t *testing.T) {
	ts, _, _ := newTestServer(t)
	for i := 0; i < 4; i++ {
		postJSON(t, ts.URL+"/queries", postQueryRequest{
			Query: "FROM quotes WHERE symbol IN ('S0001','S0002')",
		})
	}
	var entities []entityInfo
	getJSON(t, ts.URL+"/entities", &entities)
	if len(entities) != 3 {
		t.Fatalf("entities = %d", len(entities))
	}
	var stats map[string]any
	getJSON(t, ts.URL+"/stats", &stats)
	if stats["queries"].(float64) != 4 {
		t.Fatalf("stats = %v", stats)
	}
	resp, body := postJSON(t, ts.URL+"/rebalance", struct{}{})
	if resp.StatusCode != 200 {
		t.Fatalf("rebalance status = %d body=%v", resp.StatusCode, body)
	}
}

func TestResultBufferRing(t *testing.T) {
	b := &resultBuffer{}
	for i := 0; i < resultBufferCap*2+5; i++ {
		b.add(stream.NewTuple("s", uint64(i), time.Unix(int64(i), 0), stream.Int(int64(i))))
	}
	rows, total := b.snapshot()
	if total != int64(resultBufferCap*2+5) {
		t.Fatalf("total = %d", total)
	}
	if len(rows) != resultBufferCap {
		t.Fatalf("rows = %d", len(rows))
	}
	// Oldest-first ordering.
	for i := 1; i < len(rows); i++ {
		if rows[i].Seq != rows[i-1].Seq+1 {
			t.Fatalf("ring order broken at %d: %d after %d", i, rows[i].Seq, rows[i-1].Seq)
		}
	}
	if rows[len(rows)-1].Seq != uint64(resultBufferCap*2+4) {
		t.Fatalf("newest = %d", rows[len(rows)-1].Seq)
	}
}

func TestStreamQuerySSE(t *testing.T) {
	ts, fed, net := newTestServer(t)
	_, body := postJSON(t, ts.URL+"/queries", postQueryRequest{ID: "sse", Query: "FROM quotes"})
	if body["id"] != "sse" {
		t.Fatalf("post body = %v", body)
	}
	net.Quiesce(2 * time.Second)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/queries/sse/stream", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}

	// Publish after the stream is attached.
	go func() {
		time.Sleep(100 * time.Millisecond)
		tick := workload.NewTicker(3, 100, 1.3)
		_ = fed.Publish("quotes", tick.Batch(5))
	}()

	scanner := bufio.NewScanner(resp.Body)
	events := 0
	for scanner.Scan() {
		line := scanner.Text()
		if strings.HasPrefix(line, "data: ") {
			var row resultRow
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &row); err != nil {
				t.Fatalf("bad event %q: %v", line, err)
			}
			if len(row.Values) == 0 {
				t.Fatalf("event without values: %q", line)
			}
			events++
			if events == 5 {
				cancel() // done reading
			}
		}
	}
	if events < 5 {
		t.Fatalf("received %d events, want 5", events)
	}
}

func TestStreamQueryNotFound(t *testing.T) {
	ts, _, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/queries/nope/stream")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}
