package httpapi

import (
	"math"
	"net/http"
	"strings"
	"testing"
	"time"

	"sspd/internal/core"
	"sspd/internal/latency"
	"sspd/internal/trace"
	"sspd/internal/workload"
)

// clusterLatencyView mirrors the /cluster/latency payload.
type clusterLatencyView struct {
	E2E struct {
		Count uint64  `json:"count"`
		Mean  float64 `json:"mean_seconds"`
		P99   float64 `json:"p99_seconds"`
	} `json:"e2e"`
	Stages map[string]struct {
		Count uint64  `json:"count"`
		Share float64 `json:"share"`
		P50   float64 `json:"p50_seconds"`
	} `json:"stages"`
	Queries []struct {
		Query      string             `json:"query"`
		Entity     string             `json:"entity"`
		PRMeasured float64            `json:"pr_measured"`
		Waterfall  map[string]float64 `json:"waterfall"`
		E2E        struct {
			Count uint64  `json:"count"`
			Mean  float64 `json:"mean_seconds"`
		} `json:"e2e"`
	} `json:"queries"`
	SLO []struct {
		Rule      string  `json:"rule"`
		Breached  bool    `json:"breached"`
		Evaluated bool    `json:"evaluated"`
		Value     float64 `json:"value"`
	} `json:"slo"`
	StageOrder []string `json:"stage_order"`
}

// TestClusterLatencyEndpoint drives traffic through the portal and
// checks the attribution view end to end: waterfall segments that sum
// to the measured end-to-end mean, per-stage shares that cover all
// delay, and the SLO verdict list.
func TestClusterLatencyEndpoint(t *testing.T) {
	ts, fed, net := newTestServer(t)

	// Before the plane is enabled the endpoint 404s with a JSON error.
	var errOut map[string]string
	if resp := getJSON(t, ts.URL+"/cluster/latency", &errOut); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /cluster/latency before enable: %d, want 404", resp.StatusCode)
	}
	if !strings.Contains(errOut["error"], "latency attribution") {
		t.Fatalf("error body: %v", errOut)
	}

	if _, err := fed.EnableTracing(1, 1024); err != nil {
		t.Fatal(err)
	}
	defer trace.SetActive(nil)
	if err := fed.EnableLatencyAttribution(0); err != nil {
		t.Fatal(err)
	}

	if resp, _ := postJSON(t, ts.URL+"/queries", map[string]string{
		"id": "q1", "query": "FROM quotes WHERE price < 1000"}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("post query: %d", resp.StatusCode)
	}
	if !net.Quiesce(2 * time.Second) {
		t.Fatal("quiesce after submit")
	}
	tick := workload.NewTicker(1, 100, 1.2)
	if err := fed.Publish("quotes", tick.Batch(15)); err != nil {
		t.Fatal(err)
	}
	if !net.Quiesce(2 * time.Second) {
		t.Fatal("quiesce after publish")
	}
	statsTicks(t, fed, net, 2)

	var out clusterLatencyView
	if resp := getJSON(t, ts.URL+"/cluster/latency", &out); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /cluster/latency: %d", resp.StatusCode)
	}
	if out.E2E.Count != 15 {
		t.Fatalf("e2e count = %d, want 15", out.E2E.Count)
	}
	if len(out.StageOrder) != len(latency.Stages) {
		t.Fatalf("stage_order = %v", out.StageOrder)
	}

	// Stage shares partition the total attributed delay.
	var shareSum float64
	for st, s := range out.Stages {
		if s.Count != 15 {
			t.Errorf("stage %s count = %d, want 15", st, s.Count)
		}
		shareSum += s.Share
	}
	if math.Abs(shareSum-1) > 1e-9 {
		t.Fatalf("stage shares sum to %g, want 1", shareSum)
	}

	// One query row, routed to its hosting entity, with a waterfall
	// whose segments telescope to the measured mean end-to-end delay.
	if len(out.Queries) != 1 || out.Queries[0].Query != "q1" {
		t.Fatalf("queries: %+v", out.Queries)
	}
	q := out.Queries[0]
	if q.Entity == "" {
		t.Fatal("query row missing entity")
	}
	if q.PRMeasured <= 0 {
		t.Fatalf("pr_measured = %g", q.PRMeasured)
	}
	var wf float64
	for _, sec := range q.Waterfall {
		wf += sec
	}
	if q.E2E.Mean <= 0 || math.Abs(wf-q.E2E.Mean) > 1e-9*q.E2E.Mean+1e-12 {
		t.Fatalf("waterfall sums to %gs, e2e mean %gs", wf, q.E2E.Mean)
	}

	// The default SLO rule set reports verdicts.
	if len(out.SLO) != len(core.DefaultSLORules) {
		t.Fatalf("SLO verdicts: %+v, want one per default rule", out.SLO)
	}
	for _, v := range out.SLO {
		if v.Rule == "" {
			t.Fatalf("verdict missing rule: %+v", v)
		}
	}

	// The ops page ships the latency panel.
	body, resp := scrape(t, ts.URL+"/cluster")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /cluster: %d", resp.StatusCode)
	}
	for _, want := range []string{"cluster/latency", "lat-queries", "waterfall", "slo"} {
		if !strings.Contains(body, want) {
			t.Errorf("ops page missing %q", want)
		}
	}
}
