package httpapi

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sspd/internal/core"
	"sspd/internal/engine"
	"sspd/internal/metrics"
	"sspd/internal/simnet"
	"sspd/internal/stream"
	"sspd/internal/workload"
)

// engineFamilies is the full sspd_engine_* exposition surface; every
// family must round-trip through the strict parser on BOTH /metrics and
// /cluster/metrics.
var engineFamilies = []string{
	"sspd_engine_queries",
	"sspd_engine_offered_total",
	"sspd_engine_dropped_total",
	"sspd_engine_batches_total",
	"sspd_engine_tuples_total",
	"sspd_engine_kernel_selectivity",
	"sspd_engine_kernel_share",
	"sspd_engine_ctl_total",
	"sspd_engine_ctl_wait_seconds_total",
	"sspd_engine_shard_occupancy",
	"sspd_engine_shard_high_water",
	"sspd_engine_shard_dropped_total",
	"sspd_engine_drop_rate",
	"sspd_engine_ring_occupancy_p99",
	"sspd_engine_saturated",
	"sspd_engine_saturations_total",
	"sspd_engine_profile_captures_total",
}

// newEngineTestServer is newTestServer with shard engines (the
// introspectable kind) and the introspection + profiling planes on.
func newEngineTestServer(t *testing.T) (*httptest.Server, *core.Federation, *simnet.SimNet) {
	t.Helper()
	net := simnet.NewSim(nil)
	t.Cleanup(func() { net.Close() })
	catalog := workload.Catalog(100, 20)
	fed, err := core.New(net, catalog, core.Options{Fanout: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fed.Close)
	if err := fed.AddSource("quotes", simnet.Point{},
		core.StreamRate{TuplesPerSec: 100, BytesPerTuple: 60}); err != nil {
		t.Fatal(err)
	}
	shard := func(name string, c *stream.Catalog) engine.Processor {
		return engine.NewShard(name, c, 2)
	}
	for i := 0; i < 3; i++ {
		if err := fed.AddEntity(fmt.Sprintf("e%02d", i),
			simnet.Point{X: float64(10 + i*20)}, 2, shard); err != nil {
			t.Fatal(err)
		}
	}
	if err := fed.Start(); err != nil {
		t.Fatal(err)
	}
	if err := fed.EnableStatsPlane(0); err != nil {
		t.Fatal(err)
	}
	srv, err := New(fed, simnet.Point{X: 25})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, fed, net
}

// TestClusterEngineEndpoint drives traffic through shard engines and
// checks GET /cluster/engine plus the sspd_engine_* families on both
// metric endpoints.
func TestClusterEngineEndpoint(t *testing.T) {
	ts, fed, net := newEngineTestServer(t)

	// Disabled planes 404 with JSON errors.
	var errOut map[string]string
	if resp := getJSON(t, ts.URL+"/cluster/engine", &errOut); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /cluster/engine before enable: %d, want 404", resp.StatusCode)
	}
	if !strings.Contains(errOut["error"], "engine introspection") {
		t.Fatalf("error body: %v", errOut)
	}
	if resp := getJSON(t, ts.URL+"/profiles", &errOut); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /profiles before enable: %d, want 404", resp.StatusCode)
	}

	if err := fed.EnableEngineIntrospection(0); err != nil {
		t.Fatal(err)
	}
	if err := fed.EnableProfiling(t.TempDir(), 0); err != nil {
		t.Fatal(err)
	}

	if resp, _ := postJSON(t, ts.URL+"/queries", map[string]string{
		"id": "q1", "query": "FROM quotes WHERE price < 1000"}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("post query: %d", resp.StatusCode)
	}
	if !net.Quiesce(2 * time.Second) {
		t.Fatal("quiesce after submit")
	}
	tick := workload.NewTicker(1, 100, 1.2)
	if err := fed.Publish("quotes", tick.Batch(50)); err != nil {
		t.Fatal(err)
	}
	if !net.Quiesce(2 * time.Second) {
		t.Fatal("quiesce after publish")
	}
	statsTicks(t, fed, net, 2)

	// The cluster engine view covers every entity with shard telemetry.
	var view struct {
		Entities []core.EntityEngine `json:"entities"`
		DropRate float64             `json:"drop_rate"`
		Verdicts []struct {
			Rule      string `json:"rule"`
			Breached  bool   `json:"breached"`
			Evaluated bool   `json:"evaluated"`
		} `json:"verdicts"`
		Saturated bool `json:"saturated"`
	}
	if resp := getJSON(t, ts.URL+"/cluster/engine", &view); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /cluster/engine: %d", resp.StatusCode)
	}
	if len(view.Entities) != 3 {
		t.Fatalf("view has %d entities, want 3", len(view.Entities))
	}
	var offered, tuples int64
	for _, ee := range view.Entities {
		if len(ee.Stats.Shards) == 0 {
			t.Fatalf("%s: no shard rows", ee.Entity)
		}
		tot := ee.Stats.Totals()
		offered += tot.Offered
		tuples += tot.Tuples
		for _, sh := range ee.Stats.Shards {
			if sh.RingCap <= 0 {
				t.Fatalf("%s shard %d: RingCap = %d", ee.Entity, sh.Shard, sh.RingCap)
			}
			if sh.Engine == "" {
				t.Fatalf("%s shard %d: merged row missing engine name", ee.Entity, sh.Shard)
			}
		}
	}
	// The published batch reached the hosting entity's shard rings.
	if offered == 0 || tuples == 0 {
		t.Fatalf("no traffic visible in the view: offered=%d tuples=%d", offered, tuples)
	}
	if len(view.Verdicts) != len(core.DefaultEngineRules) {
		t.Fatalf("verdicts = %+v, want one per default rule", view.Verdicts)
	}
	if view.Saturated {
		t.Fatal("unsaturated run reported saturated")
	}

	// Every sspd_engine_* family renders on both endpoints and survives
	// the strict parser.
	for _, url := range []string{ts.URL + "/metrics", ts.URL + "/cluster/metrics"} {
		body, resp := scrape(t, url)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d", url, resp.StatusCode)
		}
		fams, err := metrics.ParsePrometheus(strings.NewReader(body))
		if err != nil {
			t.Fatalf("%s rejected by strict parser: %v", url, err)
		}
		byName := make(map[string]metrics.PromFamily)
		for _, f := range fams {
			byName[f.Name] = f
		}
		for _, fam := range engineFamilies {
			f, ok := byName[fam]
			if !ok {
				t.Errorf("%s missing family %s", url, fam)
				continue
			}
			if len(f.Samples) == 0 {
				t.Errorf("%s family %s has no samples", url, fam)
			}
		}
		// Per-entity families carry one sample per entity; the kernel/
		// interpreted split doubles the tuples family.
		if f := byName["sspd_engine_queries"]; len(f.Samples) != 3 {
			t.Errorf("%s sspd_engine_queries has %d samples, want 3", url, len(f.Samples))
		}
		if f := byName["sspd_engine_tuples_total"]; len(f.Samples) != 6 {
			t.Errorf("%s sspd_engine_tuples_total has %d samples, want 6", url, len(f.Samples))
		}
		// The entity-level drop counter satellite rides the cluster digest.
		if url == ts.URL+"/cluster/metrics" {
			f, ok := byName["sspd_cluster_entity_dropped_total"]
			if !ok || len(f.Samples) != 3 {
				t.Errorf("sspd_cluster_entity_dropped_total: %+v, want 3 samples", f)
			}
		}
	}

	// Profiles: trigger one capture and fetch it back.
	fed.Profiler().Trigger("test")
	fed.Profiler().WaitIdle()
	var list struct {
		Dir      string `json:"dir"`
		Total    int64  `json:"total"`
		Captures []struct {
			Name  string `json:"name"`
			Kind  string `json:"kind"`
			Bytes int64  `json:"bytes"`
		} `json:"captures"`
	}
	if resp := getJSON(t, ts.URL+"/profiles", &list); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /profiles: %d", resp.StatusCode)
	}
	if list.Total == 0 || len(list.Captures) == 0 {
		t.Fatalf("profile listing empty after trigger: %+v", list)
	}
	name := list.Captures[0].Name
	resp, err := http.Get(ts.URL + "/profiles/" + name)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /profiles/%s: %d", name, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("profile Content-Type = %q", ct)
	}
	buf := make([]byte, 4)
	if n, _ := resp.Body.Read(buf); n == 0 {
		t.Fatal("profile body empty")
	}
	// Traversal attempts are rejected, not served.
	if resp, err := http.Get(ts.URL + "/profiles/..%2fsecret"); err == nil {
		if resp.StatusCode == http.StatusOK {
			t.Fatal("path traversal served a profile")
		}
		resp.Body.Close()
	}

	// The ops page ships the engine panel.
	body, resp2 := scrape(t, ts.URL+"/cluster")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("GET /cluster: %d", resp2.StatusCode)
	}
	for _, want := range []string{"cluster/engine", "eng-entities", "eng-meta", "hm"} {
		if !strings.Contains(body, want) {
			t.Errorf("ops page missing %q", want)
		}
	}
}
