// Package httpapi exposes a federation as a JSON-over-HTTP portal — the
// "central access portal to all the clients" of the paper's vision, on
// the transport clients actually speak. It is a thin layer: queries
// arrive as sspdql text, are parsed and submitted through the normal
// coordinator-tree path, and recent results are buffered per query for
// polling.
//
//	POST   /queries          {"id": "...", "query": "FROM quotes ..."}
//	GET    /queries           list active queries
//	GET    /queries/{id}      one query's detail + buffered results
//	DELETE /queries/{id}      withdraw
//	POST   /queries/{id}/migrate  {"entity": "e01"}
//	POST   /rebalance         run a hybrid rebalance
//	GET    /entities          entity list with loads and charges
//	GET    /stats             federation-level statistics
//	GET    /routing           Adaptation Module routing table (candidate delays)
//	GET    /metrics           Prometheus text exposition (federation registry)
//	GET    /traces            recent trace spans (tracing must be enabled)
//	GET    /traces/{id}       one span's hop-by-hop journey
//	GET    /cluster           live ops view (HTML)
//	GET    /cluster/metrics   merged cluster digest (stats plane must be enabled)
//	GET    /cluster/health    per-entity health from digest freshness
//	GET    /cluster/latency   latency attribution: waterfalls, measured PR, SLOs
//	GET    /cluster/engine    shard telemetry + backpressure state (engine plane)
//	GET    /profiles          continuous-profiling capture ring
//	GET    /profiles/{name}   one stored pprof capture
//	GET    /events            structured event journal (?since=&kind=)
//	GET    /debug/pprof/      Go runtime profiling
package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"sspd/internal/core"
	"sspd/internal/querygraph"
	"sspd/internal/simnet"
	"sspd/internal/sspdql"
	"sspd/internal/stream"
	"sspd/internal/trace"
)

// resultBuffer keeps the most recent results of one query.
type resultBuffer struct {
	mu    sync.Mutex
	buf   []resultRow
	next  int
	total int64
	subs  []chan resultRow
}

type resultRow struct {
	Seq    uint64    `json:"seq"`
	Ts     time.Time `json:"ts"`
	Values []string  `json:"values"`
}

// subscribe attaches a live listener; rows are dropped for slow
// listeners rather than blocking the result path.
func (b *resultBuffer) subscribe() chan resultRow {
	ch := make(chan resultRow, 64)
	b.mu.Lock()
	b.subs = append(b.subs, ch)
	b.mu.Unlock()
	return ch
}

func (b *resultBuffer) unsubscribe(ch chan resultRow) {
	b.mu.Lock()
	for i, c := range b.subs {
		if c == ch {
			b.subs = append(b.subs[:i], b.subs[i+1:]...)
			break
		}
	}
	b.mu.Unlock()
}

const resultBufferCap = 64

func (b *resultBuffer) add(t stream.Tuple) {
	// Free for untraced tuples (Span == 0 fast path).
	trace.Record(trace.SpanID(t.Span), trace.StagePortal, "portal")
	row := resultRow{Seq: t.Seq, Ts: t.Ts}
	for _, v := range t.Values {
		row.Values = append(row.Values, v.String())
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.total++
	for _, ch := range b.subs {
		select {
		case ch <- row:
		default: // slow listener: drop rather than block results
		}
	}
	if len(b.buf) < resultBufferCap {
		b.buf = append(b.buf, row)
		return
	}
	b.buf[b.next] = row
	b.next = (b.next + 1) % resultBufferCap
}

// snapshot returns the buffered rows oldest-first and the total count.
func (b *resultBuffer) snapshot() ([]resultRow, int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]resultRow, 0, len(b.buf))
	if len(b.buf) < resultBufferCap {
		out = append(out, b.buf...)
	} else {
		out = append(out, b.buf[b.next:]...)
		out = append(out, b.buf[:b.next]...)
	}
	return out, b.total
}

// Server is the HTTP portal.
type Server struct {
	fed *core.Federation
	// origin is the coordinate clients are assumed to submit from (a
	// richer deployment would geolocate per request).
	origin simnet.Point

	mu      sync.Mutex
	nextID  int
	results map[string]*resultBuffer
	texts   map[string]string
}

// New wraps a started federation.
func New(fed *core.Federation, origin simnet.Point) (*Server, error) {
	if fed == nil {
		return nil, fmt.Errorf("httpapi: nil federation")
	}
	return &Server{
		fed:     fed,
		origin:  origin,
		results: make(map[string]*resultBuffer),
		texts:   make(map[string]string),
	}, nil
}

// Handler returns the portal's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /queries", s.postQuery)
	mux.HandleFunc("GET /queries", s.listQueries)
	mux.HandleFunc("GET /queries/{id}", s.getQuery)
	mux.HandleFunc("GET /queries/{id}/stream", s.streamQuery)
	mux.HandleFunc("DELETE /queries/{id}", s.deleteQuery)
	mux.HandleFunc("POST /queries/{id}/migrate", s.migrateQuery)
	mux.HandleFunc("POST /rebalance", s.rebalance)
	mux.HandleFunc("GET /entities", s.listEntities)
	mux.HandleFunc("GET /stats", s.stats)
	mux.HandleFunc("GET /routing", s.routing)
	mux.HandleFunc("GET /metrics", s.metrics)
	mux.HandleFunc("GET /traces", s.listTraces)
	mux.HandleFunc("GET /traces/{id}", s.getTrace)
	mux.HandleFunc("GET /cluster", s.clusterPage)
	mux.HandleFunc("GET /cluster/metrics", s.clusterMetrics)
	mux.HandleFunc("GET /cluster/health", s.clusterHealth)
	mux.HandleFunc("GET /cluster/latency", s.clusterLatency)
	mux.HandleFunc("GET /cluster/engine", s.clusterEngine)
	mux.HandleFunc("GET /profiles", s.listProfiles)
	mux.HandleFunc("GET /profiles/{name}", s.getProfile)
	mux.HandleFunc("GET /events", s.events)
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

// metrics serves the federation registry in Prometheus text format.
func (s *Server) metrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_ = s.fed.MetricsRegistry().WritePrometheus(w)
}

// listTraces returns the most recent trace spans, newest first.
func (s *Server) listTraces(w http.ResponseWriter, r *http.Request) {
	tr := s.fed.Tracer()
	if tr == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("httpapi: tracing not enabled"))
		return
	}
	n := 32
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v <= 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("httpapi: bad n %q: must be a positive integer", q))
			return
		}
		n = v
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"sample_every": tr.SampleEvery(),
		"buffered":     tr.Len(),
		"spans":        tr.Recent(n),
	})
}

// getTrace returns one span's hop-by-hop journey.
func (s *Server) getTrace(w http.ResponseWriter, r *http.Request) {
	tr := s.fed.Tracer()
	if tr == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("httpapi: tracing not enabled"))
		return
	}
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("httpapi: bad span id %q", r.PathValue("id")))
		return
	}
	span, ok := tr.Get(trace.SpanID(id))
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("httpapi: span %d not buffered (evicted or never sampled)", id))
		return
	}
	writeJSON(w, http.StatusOK, span)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

type postQueryRequest struct {
	// ID is optional; the portal assigns q### when absent.
	ID string `json:"id"`
	// Query is sspdql text.
	Query string `json:"query"`
}

type queryInfo struct {
	ID      string `json:"id"`
	Query   string `json:"query"`
	Entity  string `json:"entity"`
	Results int64  `json:"results"`
}

func (s *Server) postQuery(w http.ResponseWriter, r *http.Request) {
	var req postQueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("httpapi: bad request body: %w", err))
		return
	}
	if strings.TrimSpace(req.Query) == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("httpapi: empty query"))
		return
	}
	id := req.ID
	if id == "" {
		// Auto-assign the next ID not already known to the federation
		// (queries may also arrive through other portals or consoles).
		s.mu.Lock()
		for {
			s.nextID++
			id = fmt.Sprintf("q%03d", s.nextID)
			if _, taken := s.fed.QueryEntity(id); !taken {
				break
			}
		}
		s.mu.Unlock()
	}
	spec, err := sspdql.Parse(id, req.Query)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	buf := &resultBuffer{}
	entity, err := s.fed.SubmitQuery(spec, s.origin, buf.add)
	if err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	s.mu.Lock()
	s.results[id] = buf
	s.texts[id] = sspdql.Format(spec)
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, queryInfo{
		ID: id, Query: sspdql.Format(spec), Entity: entity,
	})
}

func (s *Server) listQueries(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	ids := make([]string, 0, len(s.results))
	for id := range s.results {
		ids = append(ids, id)
	}
	s.mu.Unlock()
	out := make([]queryInfo, 0, len(ids))
	for _, id := range ids {
		if info, ok := s.infoFor(id); ok {
			out = append(out, info)
		}
	}
	// Deterministic order for clients and tests.
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j].ID < out[i].ID {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) infoFor(id string) (queryInfo, bool) {
	entity, ok := s.fed.QueryEntity(id)
	if !ok {
		return queryInfo{}, false
	}
	s.mu.Lock()
	buf := s.results[id]
	text := s.texts[id]
	s.mu.Unlock()
	info := queryInfo{ID: id, Query: text, Entity: entity}
	if buf != nil {
		_, info.Results = buf.snapshot()
	}
	return info, true
}

func (s *Server) getQuery(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	info, ok := s.infoFor(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("httpapi: unknown query %q", id))
		return
	}
	s.mu.Lock()
	buf := s.results[id]
	s.mu.Unlock()
	var rows []resultRow
	if buf != nil {
		rows, _ = buf.snapshot()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"query":   info,
		"recent":  rows,
		"charged": s.fed.Ledger().Charge(info.Entity).Seconds(),
	})
}

// streamQuery serves results as server-sent events: one `data:` line of
// JSON per result tuple, until the client disconnects or the query is
// withdrawn.
func (s *Server) streamQuery(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	buf := s.results[id]
	s.mu.Unlock()
	if buf == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("httpapi: unknown query %q", id))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusNotImplemented, fmt.Errorf("httpapi: streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	ch := buf.subscribe()
	defer buf.unsubscribe(ch)
	heartbeat := time.NewTicker(15 * time.Second)
	defer heartbeat.Stop()
	enc := json.NewEncoder(w)
	for {
		select {
		case <-r.Context().Done():
			return
		case <-heartbeat.C:
			if _, err := fmt.Fprint(w, ": ping\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case row := <-ch:
			if _, err := fmt.Fprint(w, "data: "); err != nil {
				return
			}
			if err := enc.Encode(row); err != nil {
				return
			}
			if _, err := fmt.Fprint(w, "\n"); err != nil {
				return
			}
			flusher.Flush()
			// The query may have been withdrawn mid-stream.
			if _, alive := s.fed.QueryEntity(id); !alive {
				return
			}
		}
	}
}

func (s *Server) deleteQuery(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.fed.RemoveQuery(id); err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	s.mu.Lock()
	delete(s.results, id)
	delete(s.texts, id)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

func (s *Server) migrateQuery(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req struct {
		Entity string `json:"entity"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Entity == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("httpapi: body needs {\"entity\": ...}"))
		return
	}
	if err := s.fed.MigrateQuery(id, req.Entity); err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"query": id, "entity": req.Entity})
}

func (s *Server) rebalance(w http.ResponseWriter, _ *http.Request) {
	moved, err := s.fed.Rebalance(querygraph.HybridRepartitioner{})
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"migrated": moved})
}

type entityInfo struct {
	ID             string  `json:"id"`
	Load           float64 `json:"load"`
	ChargedSeconds float64 `json:"charged_seconds"`
}

func (s *Server) listEntities(w http.ResponseWriter, _ *http.Request) {
	out := make([]entityInfo, 0)
	for _, id := range s.fed.EntityIDs() {
		out = append(out, entityInfo{
			ID:             id,
			Load:           s.fed.EntityLoad(id),
			ChargedSeconds: s.fed.Ledger().Charge(id).Seconds(),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) stats(w http.ResponseWriter, _ *http.Request) {
	g := s.fed.QueryGraph(0)
	assign, _ := s.fed.Assignment()
	writeJSON(w, http.StatusOK, map[string]any{
		"entities":   len(s.fed.EntityIDs()),
		"queries":    s.fed.NumQueries(),
		"edge_cut":   g.EdgeCut(assign),
		"active_acc": s.fed.Ledger().ActiveQueries(),
	})
}

// routing serves the Adaptation Module's live routing table: every
// routed fragment boundary's candidates with their smoothed observed
// delays and the current preferred pick. Empty when tuple routing is
// disabled.
func (s *Server) routing(w http.ResponseWriter, _ *http.Request) {
	routes := s.fed.AdaptationRoutes()
	if routes == nil {
		routes = []core.RouteStatus{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"routes": routes})
}
