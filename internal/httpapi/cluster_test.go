package httpapi

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"sspd/internal/core"
	"sspd/internal/metrics"
	"sspd/internal/obslog"
	"sspd/internal/simnet"
	"sspd/internal/trace"
	"sspd/internal/workload"
)

// statsTicks runs n digest periods and waits for the pushes to land.
func statsTicks(t *testing.T, fed *core.Federation, net *simnet.SimNet, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		fed.StatsTick()
		if !net.Quiesce(2 * time.Second) {
			t.Fatal("quiesce after stats tick")
		}
	}
}

// TestClusterMetricsEndpoint is the acceptance check: after two digest
// periods the root's /cluster/metrics covers every entity, and the
// exposition survives the strict parser.
func TestClusterMetricsEndpoint(t *testing.T) {
	ts, fed, net := newTestServer(t)
	if resp, _ := postJSON(t, ts.URL+"/queries", map[string]string{
		"id": "q1", "query": "FROM quotes WHERE price < 500"}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("post query: %d", resp.StatusCode)
	}
	if !net.Quiesce(2 * time.Second) {
		t.Fatal("quiesce after submit")
	}
	tick := workload.NewTicker(1, 100, 1.2)
	if err := fed.Publish("quotes", tick.Batch(10)); err != nil {
		t.Fatal(err)
	}
	if !net.Quiesce(2 * time.Second) {
		t.Fatal("quiesce after publish")
	}
	statsTicks(t, fed, net, 2)

	body, resp := scrape(t, ts.URL+"/cluster/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /cluster/metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	fams, err := metrics.ParsePrometheus(strings.NewReader(body))
	if err != nil {
		t.Fatalf("cluster exposition rejected by strict parser: %v\n%s", err, body)
	}
	byName := make(map[string]metrics.PromFamily)
	for _, f := range fams {
		byName[f.Name] = f
	}
	if f, ok := byName["sspd_cluster_entities"]; !ok || f.Samples[0].Value != 3 {
		t.Fatalf("sspd_cluster_entities: %+v", f)
	}
	for _, fam := range []string{"sspd_cluster_entity_load", "sspd_cluster_entity_up",
		"sspd_cluster_entity_queries", "sspd_cluster_digest_age_seconds"} {
		f, ok := byName[fam]
		if !ok {
			t.Fatalf("missing family %s", fam)
		}
		if len(f.Samples) != 3 {
			t.Fatalf("%s has %d samples, want one per entity: %+v", fam, len(f.Samples), f.Samples)
		}
	}
	if _, ok := byName["sspd_cluster_pr_max"]; !ok {
		t.Fatal("missing sspd_cluster_pr_max")
	}

	// The federation-local exposition must also stay strict.
	local, _ := scrape(t, ts.URL+"/metrics")
	if _, err := metrics.ParsePrometheus(strings.NewReader(local)); err != nil {
		t.Fatalf("/metrics rejected by strict parser: %v", err)
	}
}

func TestClusterHealthEndpoint(t *testing.T) {
	ts, fed, net := newTestServer(t)
	statsTicks(t, fed, net, 2)
	var out struct {
		Root     string              `json:"root"`
		Entities []core.EntityHealth `json:"entities"`
		Rows     map[string]struct {
			PRSpark []float64 `json:"pr_spark"`
		} `json:"rows"`
	}
	if resp := getJSON(t, ts.URL+"/cluster/health", &out); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /cluster/health: %d", resp.StatusCode)
	}
	if out.Root == "" || len(out.Entities) != 3 {
		t.Fatalf("health = root:%q entities:%d", out.Root, len(out.Entities))
	}
	for _, e := range out.Entities {
		if !e.Healthy {
			t.Errorf("%s unhealthy: %+v", e.Entity, e)
		}
		if len(out.Rows[e.Entity].PRSpark) == 0 {
			t.Errorf("%s: no sparkline in rows", e.Entity)
		}
	}
}

// TestClusterEndpointsWithoutPlane: a portal over a federation that
// never enabled the plane answers 404 with a JSON error body.
func TestClusterEndpointsWithoutPlane(t *testing.T) {
	net := simnet.NewSim(nil)
	t.Cleanup(func() { net.Close() })
	fed, err := core.New(net, workload.Catalog(100, 20), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fed.Close)
	srv, err := New(fed, simnet.Point{})
	if err != nil {
		t.Fatal(err)
	}
	hts := httptest.NewServer(srv.Handler())
	t.Cleanup(hts.Close)
	ts := hts.URL
	for _, path := range []string{"/cluster/metrics", "/cluster/health"} {
		var out map[string]string
		resp := getJSON(t, ts+path, &out)
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s: %d, want 404", path, resp.StatusCode)
		}
		if !strings.Contains(out["error"], "stats plane") {
			t.Fatalf("GET %s error body: %v", path, out)
		}
	}
	// The ops page itself is static and always served.
	if body, resp := scrape(t, ts+"/cluster"); resp.StatusCode != http.StatusOK ||
		!strings.Contains(body, "sspd cluster") {
		t.Fatalf("GET /cluster: %d", resp.StatusCode)
	}
}

func TestEventsEndpoint(t *testing.T) {
	ts, _, _ := newTestServer(t)
	var out struct {
		LastSeq uint64         `json:"last_seq"`
		Dropped uint64         `json:"dropped"`
		Events  []obslog.Event `json:"events"`
	}
	if resp := getJSON(t, ts.URL+"/events", &out); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /events: %d", resp.StatusCode)
	}
	joins := 0
	for _, e := range out.Events {
		if e.Kind == "entity.join" {
			joins++
		}
	}
	if joins != 3 {
		t.Fatalf("journal shows %d entity.join events, want 3: %+v", joins, out.Events)
	}
	if out.LastSeq == 0 {
		t.Fatal("last_seq not reported")
	}

	// Kind filter: prefix matching at dot boundaries.
	var filtered struct {
		Events []obslog.Event `json:"events"`
	}
	if resp := getJSON(t, ts.URL+"/events?kind=entity", &filtered); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /events?kind=entity: %d", resp.StatusCode)
	}
	for _, e := range filtered.Events {
		if !strings.HasPrefix(e.Kind, "entity.") {
			t.Fatalf("kind filter leaked %q", e.Kind)
		}
	}

	// since is an exclusive cursor: everything after last_seq is empty.
	var tail struct {
		Events []obslog.Event `json:"events"`
	}
	getJSON(t, ts.URL+"/events?since="+strconv.FormatUint(out.LastSeq, 10), &tail)
	if len(tail.Events) != 0 {
		t.Fatalf("since=last_seq returned %d events", len(tail.Events))
	}

	// Malformed parameters are 400s, not silent defaults.
	for _, q := range []string{"?since=abc", "?since=-1", "?kind=Bad..Kind", "?kind=UPPER"} {
		if _, resp := scrape(t, ts.URL+"/events"+q); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET /events%s: %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestTracesBadN: a malformed n is a 400, not a silently applied default.
func TestTracesBadN(t *testing.T) {
	ts, fed, _ := newTestServer(t)
	if _, err := fed.EnableTracing(1, 16); err != nil {
		t.Fatal(err)
	}
	defer trace.SetActive(nil)
	for _, q := range []string{"?n=abc", "?n=0", "?n=-3"} {
		if _, resp := scrape(t, ts.URL+"/traces"+q); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET /traces%s: %d, want 400", q, resp.StatusCode)
		}
	}
	if _, resp := scrape(t, ts.URL+"/traces?n=5"); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /traces?n=5: %d", resp.StatusCode)
	}
}
