package experiments

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"sspd/internal/core"
	"sspd/internal/dissemination"
	"sspd/internal/engine"
	"sspd/internal/simnet"
	"sspd/internal/stream"
	"sspd/internal/workload"
)

// E11TreeReorganization is an extension experiment for Section 3.1's
// open question ("the shapes of these trees ... deserve further study",
// pointing at the author's coherency-preserving reorganization work): a
// geometry-blind Balanced tree is built over randomly placed entities,
// then incrementally reorganized with make-before-break rewires. The
// table reports the transit cost (Σ link bytes × link length — the
// wide-area cost the locality rule minimizes) and verifies zero result
// loss across the reorganization.
func E11TreeReorganization() Table {
	t := Table{
		ID:      "E11",
		Title:   "extension — dissemination-tree reorganization: transit cost, zero-loss rewires",
		Columns: []string{"entities", "rewires", "edge len before", "edge len after", "transit B·m before", "transit B·m after", "lost tuples"},
	}
	for _, n := range []int{8, 16, 24} {
		rng := rand.New(rand.NewSource(int64(1000 + n)))
		net := simnet.NewSim(nil)
		catalog := workload.Catalog(100, 20)
		fed, err := core.New(net, catalog, core.Options{
			Strategy: dissemination.Balanced, // geometry-blind start
			Fanout:   2,
		})
		if err != nil {
			panic(err)
		}
		if err := fed.AddSource("quotes", simnet.Point{X: 50, Y: 50},
			core.StreamRate{TuplesPerSec: 1000, BytesPerTuple: 60}); err != nil {
			panic(err)
		}
		positions := map[string]simnet.Point{}
		for i := 0; i < n; i++ {
			id := fmt.Sprintf("e%02d", i)
			pos := simnet.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
			positions[id] = pos
			if err := fed.AddEntity(id, pos, 1, miniFactory); err != nil {
				panic(err)
			}
		}
		if err := fed.Start(); err != nil {
			panic(err)
		}
		var results atomic.Int64
		for i := 0; i < n; i++ {
			spec := workloadSpec(fmt.Sprintf("q%02d", i), float64((i*97)%800), 200)
			if err := fed.SubmitQueryTo(spec, fmt.Sprintf("e%02d", i), func(stream.Tuple) {
				results.Add(1)
			}); err != nil {
				panic(err)
			}
		}
		fed.Settle(10 * time.Second)

		tick := workload.NewTicker(int64(n), 100, 1.3)
		batch := tick.Batch(300)
		publish := func() int64 {
			before := results.Load()
			if err := fed.Publish("quotes", batch); err != nil {
				panic(err)
			}
			fed.Settle(10 * time.Second)
			time.Sleep(20 * time.Millisecond)
			return results.Load() - before
		}
		tree := fed.DisseminationTree("quotes")
		lenBefore := tree.TotalEdgeLength()
		net.Traffic().Reset()
		wantResults := publish()
		transitBefore := transitCost(tree, net, positions)

		rewires, err := fed.ReorganizeTrees()
		if err != nil {
			panic(err)
		}
		lenAfter := tree.TotalEdgeLength()
		net.Traffic().Reset()
		gotResults := publish()
		transitAfter := transitCost(tree, net, positions)
		lost := wantResults - gotResults

		t.Rows = append(t.Rows, []string{
			d(int64(n)), d(int64(rewires)),
			f(lenBefore), f(lenAfter),
			f(transitBefore), f(transitAfter),
			d(lost),
		})
		fed.Close()
		net.Close()
	}
	t.Notes = append(t.Notes,
		"make-before-break rewires shorten tree edges (and so byte·distance transit cost) with zero tuple loss during the switch")
	return t
}

// workloadSpec builds a price-band query.
func workloadSpec(id string, lo, width float64) engine.QuerySpec {
	return engine.QuerySpec{
		ID:     id,
		Source: "quotes",
		Filters: []engine.FilterSpec{
			{Field: "price", Lo: lo, Hi: lo + width, Cost: 1},
		},
		Load: 1,
	}
}

// transitCost sums link bytes × Euclidean link length over the tree's
// current edges (source links measured from the source position).
func transitCost(tree *dissemination.Tree, net *simnet.SimNet, positions map[string]simnet.Point) float64 {
	// Node positions: relay IDs are "<entity>:quotes"; the source sits
	// at (50,50).
	posOf := func(id simnet.NodeID) simnet.Point {
		s := string(id)
		if s == "src:quotes" {
			return simnet.Point{X: 50, Y: 50}
		}
		for ent, p := range positions {
			if s == ent+":quotes" {
				return p
			}
		}
		return simnet.Point{}
	}
	total := 0.0
	for _, m := range tree.Members() {
		parent := tree.Parent(m)
		bytes := float64(net.Traffic().LinkBytes(parent, m))
		total += bytes * posOf(parent).Distance(posOf(m))
	}
	return total
}
