package experiments

import (
	"fmt"
	"time"

	"sspd/internal/dissemination"
	"sspd/internal/simnet"
	"sspd/internal/stream"
)

func quotesSchema() *stream.Schema {
	return stream.MustSchema("quotes",
		stream.Field{Name: "symbol", Type: stream.KindString, Card: 100},
		stream.Field{Name: "price", Type: stream.KindFloat, Lo: 0, Hi: 1000},
	)
}

func uniformQuote(i int) stream.Tuple {
	return stream.NewTuple("quotes", uint64(i), time.Unix(int64(i), 0).UTC(),
		stream.String(fmt.Sprintf("S%02d", i%100)),
		stream.Float(float64(i%1000)))
}

// runDissemination wires a tree of relays with the given per-entity
// interest, publishes tuples, and returns traffic plus structure stats.
func runDissemination(n int, strategy dissemination.Strategy, fanout int,
	interest func(i int) stream.Interest, tuples int) (srcEgress, total int64, maxDepth int) {
	net := simnet.NewSim(nil)
	defer net.Close()
	sc := quotesSchema()
	members := make([]dissemination.Member, 0, n)
	for i := 0; i < n; i++ {
		members = append(members, dissemination.Member{
			ID:  simnet.NodeID(fmt.Sprintf("e%03d", i)),
			Pos: simnet.Point{X: float64(i%10) * 10, Y: float64(i/10) * 10},
		})
	}
	src := dissemination.Member{ID: "src", Pos: simnet.Point{X: 45, Y: 45}}
	tree, err := dissemination.Build("quotes", src, members, strategy, fanout)
	if err != nil {
		panic(err)
	}
	source, err := dissemination.NewRelay(tree, "src", sc, net, nil, 0)
	if err != nil {
		panic(err)
	}
	relays := make([]*dissemination.Relay, 0, len(members))
	for _, m := range members {
		relay, err := dissemination.NewRelay(tree, m.ID, sc, net, func(stream.Tuple) {}, 0)
		if err != nil {
			panic(err)
		}
		relays = append(relays, relay)
	}
	for i, relay := range relays {
		if err := relay.SetLocalInterest([]stream.Interest{interest(i)}); err != nil {
			panic(err)
		}
	}
	if !net.Quiesce(30 * time.Second) {
		panic("dissemination experiment did not quiesce after registration")
	}
	net.Traffic().Reset()
	var batch stream.Batch
	for i := 0; i < tuples; i++ {
		batch = append(batch, uniformQuote(i))
		if len(batch) == 100 {
			if err := source.Publish(batch); err != nil {
				panic(err)
			}
			batch = batch[:0]
		}
	}
	if len(batch) > 0 {
		if err := source.Publish(batch); err != nil {
			panic(err)
		}
	}
	if !net.Quiesce(30 * time.Second) {
		panic("dissemination experiment did not quiesce after publishing")
	}
	tr := net.Traffic()
	return tr.EgressBytes("src"), tr.TotalBytes(), tree.MaxDepth()
}

// E1DisseminationScalability sweeps federation size across tree shapes:
// source-direct egress grows with N while tree egress stays capped by
// the fanout (Section 3.1's scalability argument).
func E1DisseminationScalability() Table {
	t := Table{
		ID:      "E1",
		Title:   "Sec 3.1 — dissemination scalability: source egress vs #entities",
		Columns: []string{"entities", "strategy", "src egress B", "total B", "depth"},
	}
	broad := func(int) stream.Interest { return stream.NewInterest("quotes") }
	const tuples = 300
	for _, n := range []int{4, 8, 16, 32} {
		for _, strat := range []dissemination.Strategy{
			dissemination.SourceDirect, dissemination.Balanced, dissemination.Locality,
		} {
			eg, total, depth := runDissemination(n, strat, 4, broad, tuples)
			t.Rows = append(t.Rows, []string{
				d(int64(n)), strat.String(), d(eg), d(total), d(int64(depth)),
			})
		}
	}
	t.Notes = append(t.Notes,
		"source-direct egress grows linearly with N; tree strategies cap it at fanout×stream regardless of N")
	return t
}

// E2EarlyFiltering sweeps interest selectivity: bytes on the wire track
// the fraction of the stream the subtrees actually want.
func E2EarlyFiltering() Table {
	t := Table{
		ID:      "E2",
		Title:   "Sec 3.1 — early filtering: bytes vs interest selectivity",
		Columns: []string{"selectivity", "total B (filtered)", "total B (no filter)", "saved %"},
	}
	const n, tuples = 16, 500
	_, baseline, _ := runDissemination(n, dissemination.Balanced, 2,
		func(int) stream.Interest { return stream.NewInterest("quotes") }, tuples)
	for _, sel := range []float64{0.01, 0.1, 0.5, 1.0} {
		interest := func(int) stream.Interest {
			return stream.NewInterest("quotes").WithRange("price", 0, sel*1000)
		}
		_, filtered, _ := runDissemination(n, dissemination.Balanced, 2, interest, tuples)
		saved := 100 * (1 - float64(filtered)/float64(baseline))
		t.Rows = append(t.Rows, []string{
			f(sel), d(filtered), d(baseline), f(saved),
		})
	}
	t.Notes = append(t.Notes,
		"savings scale with (1 - selectivity): ancestors drop tuples no descendant registered interest in")
	return t
}
