package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"sspd/internal/engine"
	"sspd/internal/entity"
	"sspd/internal/operator"
	"sspd/internal/querygraph"
	"sspd/internal/stream"
	"sspd/internal/workload"
)

// placementWorkload builds the standard E6 fragment workload: a mix of
// ordinary queries and a few "elephants" whose load exceeds any single
// processor, so the distribution limit actually binds.
func placementWorkload(seed int64, n, limit int) ([]entity.PlacementQuery, []entity.Proc) {
	rng := rand.New(rand.NewSource(seed))
	queries := make([]entity.PlacementQuery, 0, n)
	for i := 0; i < n; i++ {
		nf := 2 + rng.Intn(4)
		frags := make([]entity.FragmentSpec, nf)
		for f := range frags {
			frags[f] = entity.FragmentSpec{
				Cost:        0.5 + rng.Float64()*2,
				Selectivity: 0.3 + rng.Float64()*0.6,
			}
		}
		rate := 20 + rng.Float64()*80
		if i%10 == 0 {
			rate *= 12 // elephant: cannot fit on one processor
		}
		queries = append(queries, entity.PlacementQuery{
			ID:                fmt.Sprintf("q%03d", i),
			Fragments:         frags,
			InputRate:         rate,
			TupleSize:         100,
			DistributionLimit: limit,
		})
	}
	total := 0.0
	for _, q := range queries {
		total += q.TotalLoad()
	}
	procs := make([]entity.Proc, 8)
	for i := range procs {
		procs[i] = entity.Proc{ID: fmt.Sprintf("p%d", i), Capacity: total / 8 / 0.7}
	}
	return queries, procs
}

// E6OperatorPlacement reproduces the Section 4.1 evaluation: PRmax under
// the PR-aware placer versus the baselines, plus the distribution-limit
// ablation.
func E6OperatorPlacement() Table {
	t := Table{
		ID:      "E6",
		Title:   "Sec 4.1 — operator placement: PRmax by placer; distribution-limit sweep",
		Columns: []string{"configuration", "PRmax", "mean PR", "imbalance", "traffic B/s"},
	}
	queries, procs := placementWorkload(41, 40, 3)
	for _, placer := range []entity.Placer{
		entity.PRPlacer{},
		entity.LoadOnlyPlacer{},
		entity.RoundRobinPlacer{},
		entity.RandomPlacer{Seed: 3},
	} {
		asg, err := placer.Place(procs, queries)
		if err != nil {
			panic(err)
		}
		ev := entity.Evaluate(procs, queries, asg, entity.DefaultNetwork)
		t.Rows = append(t.Rows, []string{
			"placer: " + placer.Name(),
			f(ev.PRMax), f(ev.MeanPR), f(ev.Imbalance()), f(ev.TrafficBytes),
		})
	}
	for _, limit := range []int{1, 2, 3, 8} {
		qs, ps := placementWorkload(41, 40, limit)
		asg, err := entity.PRPlacer{}.Place(ps, qs)
		if err != nil {
			panic(err)
		}
		ev := entity.Evaluate(ps, qs, asg, entity.DefaultNetwork)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("pr-aware, limit=%d (spread %d)", limit, entity.MaxSpread(qs, asg)),
			f(ev.PRMax), f(ev.MeanPR), f(ev.Imbalance()), f(ev.TrafficBytes),
		})
	}
	t.Notes = append(t.Notes,
		"PR-aware beats load-only/round-robin/random on PRmax and traffic; a small distribution limit already captures most of the benefit (paper heuristic 2)")
	return t
}

// E7AdaptiveOrdering reproduces the Section 4.2 evaluation: the
// Adaptation Module versus a static plan through selectivity shifts.
func E7AdaptiveOrdering() Table {
	t := Table{
		ID:      "E7",
		Title:   "Sec 4.2 — adaptive operator ordering through selectivity shifts",
		Columns: []string{"shift pattern", "static evals", "adaptive evals", "saved %", "adaptations"},
	}
	catalog := workload.Catalog(100, 10)
	run := func(label string, phases []func(i int) stream.Tuple, perPhase int) {
		mk := func() *engine.Query {
			q, err := engine.Compile(engine.QuerySpec{
				ID:     "q",
				Source: "quotes",
				Filters: []engine.FilterSpec{
					{Field: "price", Lo: 0, Hi: 500, Cost: 1},
					{Field: "volume", Lo: 0, Hi: 500000, Cost: 1},
					{KeyField: "symbol", Keys: []string{"S0000", "S0001"}, Cost: 1},
				},
			}, catalog, nil)
			if err != nil {
				panic(err)
			}
			return q
		}
		adaptive, static := mk(), mk()
		am, err := entity.NewAM(adaptive, 64, 0.02)
		if err != nil {
			panic(err)
		}
		i := 0
		for _, phase := range phases {
			for n := 0; n < perPhase; n++ {
				tu := phase(i)
				i++
				am.Feed("quotes", tu)
				static.Feed("quotes", tu)
			}
		}
		work := func(q *engine.Query) int64 {
			var sum int64
			for _, op := range q.Operators() {
				sum += op.Stats().In()
			}
			return sum
		}
		aw, sw := work(adaptive), work(static)
		t.Rows = append(t.Rows, []string{
			label, d(sw), d(aw),
			f(100 * (1 - float64(aw)/float64(sw))),
			d(am.Adaptations.Value()),
		})
	}
	mkTuple := func(i int, symbol string, price float64, volume int64) stream.Tuple {
		return stream.NewTuple("quotes", uint64(i), time.Unix(int64(i), 0).UTC(),
			stream.String(symbol), stream.Float(price), stream.Int(volume))
	}
	run("price→symbol selective", []func(int) stream.Tuple{
		func(i int) stream.Tuple { return mkTuple(i, "S0000", 900, 1) }, // price filter rejects
		func(i int) stream.Tuple { return mkTuple(i, "S0099", 100, 1) }, // symbol filter rejects
	}, 2000)
	run("volume flips hot", []func(int) stream.Tuple{
		func(i int) stream.Tuple { return mkTuple(i, "S0000", 100, 1) },      // all pass
		func(i int) stream.Tuple { return mkTuple(i, "S0000", 100, 900000) }, // volume rejects
	}, 2000)
	run("no shift (control)", []func(int) stream.Tuple{
		func(i int) stream.Tuple { return mkTuple(i, "S0000", 900, 1) },
	}, 4000)
	t.Notes = append(t.Notes,
		"after every shift the AM moves the newly selective filter to the front; with no shift it neither helps nor thrashes")
	return t
}

// E8CouplingTradeoff quantifies Section 2's degree-of-coupling argument:
// what tight coupling buys (finer balance) and what it costs (operator
// state shipped on migration, and engine lock-in).
func E8CouplingTradeoff() Table {
	t := Table{
		ID:      "E8",
		Title:   "Sec 2 — coupling trade-off: migration cost and achievable balance",
		Columns: []string{"aspect", "loose (query-level)", "tight (operator-level)"},
	}
	// Migration cost: a join query with a populated window. Query-level
	// migration ships the declarative spec (state rebuilds from the
	// stream); operator-level migration must ship the operator state.
	catalog := workload.Catalog(100, 10)
	spec := engine.QuerySpec{
		ID:     "qj",
		Source: "quotes",
		Join: &engine.JoinSpec{
			Stream: "trades", LeftKey: "symbol", RightKey: "symbol",
			Window: stream.CountWindow(1 << 30), // effectively unbounded for the fill sizes below
		},
	}
	for _, fill := range []int{100, 1000, 10000} {
		q, err := engine.Compile(spec, catalog, nil)
		if err != nil {
			panic(err)
		}
		tick := workload.NewTicker(13, 100, 1.3)
		for i := 0; i < fill; i++ {
			q.Feed("quotes", tick.Next())
		}
		join := q.Operators()[0].(*operator.WindowJoin)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("migration bytes (window=%d tuples)", fill),
			d(int64(specWireSize(spec))),
			d(int64(join.StateSize())),
		})
	}
	// Balance benefit: balancing whole queries (the only unit the loose
	// layer may move) vs fragments (what the tight layer moves).
	rng := rand.New(rand.NewSource(53))
	queries, _ := placementWorkload(53, 30, 0)
	_ = rng
	wholeLoads := querygraph.New()
	fragLoads := querygraph.New()
	for _, q := range queries {
		wholeLoads.AddVertex(querygraph.VertexID(q.ID), q.TotalLoad())
		rate := q.InputRate
		for i := range q.Fragments {
			fragLoads.AddVertex(querygraph.VertexID(fmt.Sprintf("%s#%d", q.ID, i)),
				rate*q.Fragments[i].Cost)
			rate *= q.Fragments[i].Selectivity
		}
	}
	k := 6
	wq, err := querygraph.PartitionLoadOnly(wholeLoads, k)
	if err != nil {
		panic(err)
	}
	fq, err := querygraph.PartitionLoadOnly(fragLoads, k)
	if err != nil {
		panic(err)
	}
	t.Rows = append(t.Rows, []string{
		"achievable load imbalance (LPT, k=6)",
		f(querygraph.Imbalance(wholeLoads.PartitionWeights(wq, k))),
		f(querygraph.Imbalance(fragLoads.PartitionWeights(fq, k))),
	})
	t.Rows = append(t.Rows, []string{
		"works across heterogeneous engines",
		"yes (declarative specs)",
		"no (engine-specific state)",
	})
	t.Notes = append(t.Notes,
		"tight coupling balances finer but pays state shipping that grows with window size — and only works inside one engine; hence the paper couples tightly intra-entity and loosely inter-entity")
	return t
}
