package experiments

import (
	"fmt"
	"sync/atomic"
	"time"

	"sspd/internal/dissemination"
	"sspd/internal/simnet"
	"sspd/internal/stream"
)

// E10InterestAggregation is an extension experiment for the question the
// paper raises in Section 3.1: "how to represent the data interest of
// the different queries as well as how to efficiently compute the
// aggregation of data interest from different queries". Each node's
// aggregate is a disjunction capped at maxTerms; beyond the cap, terms
// are covered (widened). Small caps shrink registrations but widen
// filters, so ancestors forward more data. The sweep measures both sides
// of that trade.
func E10InterestAggregation() Table {
	t := Table{
		ID:      "E10",
		Title:   "extension — interest aggregation cap: registration bytes vs filtering precision",
		Columns: []string{"max terms", "registration B", "data B", "delivered tuples"},
	}
	const (
		nEntities  = 12
		perEntity  = 8 // disjoint narrow interests per entity
		tuples     = 400
		sliceWidth = 4.0 // each interest covers 0.4% of the domain
		fanout     = 2
	)
	for _, maxTerms := range []int{1, 4, 16, 128} {
		net := simnet.NewSim(nil)
		sc := quotesSchema()
		members := make([]dissemination.Member, 0, nEntities)
		for i := 0; i < nEntities; i++ {
			members = append(members, dissemination.Member{
				ID:  simnet.NodeID(fmt.Sprintf("e%03d", i)),
				Pos: simnet.Point{X: float64(i * 7), Y: float64(i * 3)},
			})
		}
		src := dissemination.Member{ID: "src", Pos: simnet.Point{}}
		tree, err := dissemination.Build("quotes", src, members, dissemination.Balanced, fanout)
		if err != nil {
			panic(err)
		}
		source, err := dissemination.NewRelay(tree, "src", sc, net, nil, maxTerms)
		if err != nil {
			panic(err)
		}
		var delivered atomic.Int64
		relays := make([]*dissemination.Relay, 0, nEntities)
		for _, m := range members {
			relay, err := dissemination.NewRelay(tree, m.ID, sc, net,
				func(stream.Tuple) { delivered.Add(1) }, maxTerms)
			if err != nil {
				panic(err)
			}
			relays = append(relays, relay)
		}
		// Registration phase: many scattered narrow slices per entity.
		for i, relay := range relays {
			var terms []stream.Interest
			for j := 0; j < perEntity; j++ {
				lo := float64(((i*perEntity+j)*83)%996) + 0.1
				terms = append(terms, stream.NewInterest("quotes").
					WithRange("price", lo, lo+sliceWidth))
			}
			if err := relay.SetLocalInterest(terms); err != nil {
				panic(err)
			}
		}
		if !net.Quiesce(30 * time.Second) {
			panic("E10 registration did not quiesce")
		}
		registrationBytes := net.Traffic().TotalBytes()
		net.Traffic().Reset()
		var batch stream.Batch
		for i := 0; i < tuples; i++ {
			batch = append(batch, uniformQuote(i*3))
		}
		if err := source.Publish(batch); err != nil {
			panic(err)
		}
		if !net.Quiesce(30 * time.Second) {
			panic("E10 publish did not quiesce")
		}
		dataBytes := net.Traffic().TotalBytes()
		net.Close()
		t.Rows = append(t.Rows, []string{
			d(int64(maxTerms)), d(registrationBytes), d(dataBytes), d(delivered.Load()),
		})
	}
	t.Notes = append(t.Notes,
		"tiny caps shrink registrations but widen aggregated filters, so ancestors forward more data; large caps invert the trade — delivered results are identical either way (widening is safe)")
	return t
}
