package experiments

import (
	"fmt"
	"time"

	"sspd/internal/engine"
	"sspd/internal/entity"
	"sspd/internal/simnet"
	"sspd/internal/stream"
	"sspd/internal/workload"
)

// E12AdaptiveRouting reproduces the per-tuple downstream choice of
// Section 4.2: a query's middle fragment is replicated on two
// processors; midway through the run one replica's processor is loaded
// with heavy co-tenant queries. The chooser shifts traffic to the light
// replica within a few tuples, keeping results exact, while a static
// (round-robin) router keeps feeding the hot processor.
func E12AdaptiveRouting() Table {
	t := Table{
		ID:      "E12",
		Title:   "Sec 4.2 — adaptive downstream routing around a loaded replica",
		Columns: []string{"phase", "tuples", "served by A (loaded)", "served by B", "results"},
	}
	net := simnet.NewSim(nil)
	defer net.Close()
	catalog := workload.Catalog(100, 20)
	en, err := entity.New("e", net, catalog, 4, miniFactory)
	if err != nil {
		panic(err)
	}
	defer en.Close()
	results := 0
	en.SetResultHandler(func(string, stream.Tuple) { results++ })

	spec := engine.QuerySpec{
		ID:     "q",
		Source: "quotes",
		Filters: []engine.FilterSpec{
			{Field: "price", Lo: 0, Hi: 1000, Cost: 1},
			{Field: "volume", Lo: 0, Hi: 1e6, Cost: 1},
			{KeyField: "symbol", Keys: []string{"S0000"}, Cost: 1},
		},
	}
	if err := en.PlaceQueryAdaptive(spec, 3, 2); err != nil {
		panic(err)
	}
	placement, _ := en.QueryPlacement("q")
	replicaA, replicaB := placement[1], placement[2]
	engA := en.Proc(replicaA).(*engine.MiniEngine)
	engB := en.Proc(replicaB).(*engine.MiniEngine)

	mkTuple := func(i int) stream.Tuple {
		return stream.NewTuple("quotes", uint64(i), time.Unix(int64(i), 0).UTC(),
			stream.String("S0000"), stream.Float(100), stream.Int(1))
	}
	feed := func(n, from int) {
		for i := 0; i < n; i++ {
			en.Ingest(mkTuple(from + i))
		}
		if !net.Quiesce(10 * time.Second) {
			panic("E12 did not quiesce")
		}
	}
	var prevA, prevB int64
	prevResults := 0
	snapshot := func(phase string, tuples int) {
		curA, curB := engA.Results("q#1@r0"), engB.Results("q#1@r1")
		t.Rows = append(t.Rows, []string{
			phase, d(int64(tuples)),
			d(curA - prevA), d(curB - prevB),
			d(int64(results - prevResults)),
		})
		prevA, prevB, prevResults = curA, curB, results
	}
	// Phase 1: both replicas idle — traffic splits.
	feed(200, 0)
	snapshot("balanced", 200)
	// Phase 2: replica A's processor takes heavy co-tenants.
	for i := 0; i < 5; i++ {
		dummy := engine.QuerySpec{
			ID: fmt.Sprintf("cotenant%d", i), Source: "trades",
			Filters: []engine.FilterSpec{{Field: "qty", Lo: 0, Hi: 1, Cost: 1}},
			Load:    50,
		}
		if err := engA.Register(dummy, nil); err != nil {
			panic(err)
		}
	}
	feed(200, 1000)
	snapshot("A loaded (adaptive)", 200)
	t.Notes = append(t.Notes,
		"after the co-tenants arrive, the chooser routes nearly everything to replica B; total results stay exact throughout")
	return t
}
