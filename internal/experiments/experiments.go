// Package experiments implements the full evaluation harness: one
// function per table/figure of the reproduction (see DESIGN.md §4).
// Each experiment returns a structured result that renders as the table
// the paper's artifact corresponds to; cmd/sspd-bench prints them and
// the root benchmarks re-run them under `go test -bench`.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	// ID is the experiment identifier (F1, T1, F2, F3, E1..E8).
	ID string
	// Title describes the paper artifact reproduced.
	Title string
	// Columns names the table columns.
	Columns []string
	// Rows holds the formatted cells.
	Rows [][]string
	// Notes holds free-form observations (the "shape" statements).
	Notes []string
}

// Fprint renders the table to w.
func (t Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, c)
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	printRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// f formats a float compactly.
func f(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1e6:
		return fmt.Sprintf("%.3g", v)
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	case v >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

func d(v int64) string { return fmt.Sprintf("%d", v) }

// All runs every experiment in order and returns the tables.
func All() []Table {
	return []Table{
		Figure1TwoLayer(),
		Table1CooperationModes(),
		Figure2QueryGraph(),
		Figure3Delegation(),
		E1DisseminationScalability(),
		E2EarlyFiltering(),
		E3CoordinatorTree(),
		E4LoadDistribution(),
		E5AdaptiveRepartitioning(),
		E6OperatorPlacement(),
		E7AdaptiveOrdering(),
		E8CouplingTradeoff(),
		E9SchedulingPolicy(),
		E10InterestAggregation(),
		E11TreeReorganization(),
		E12AdaptiveRouting(),
	}
}
