package experiments

import (
	"fmt"
	"math/rand"

	"sspd/internal/coordinator"
	"sspd/internal/simnet"
)

// E3CoordinatorTree measures query-distribution scalability: per-query
// coordinator work and join cost under the hierarchical tree versus a
// flat central coordinator, across federation sizes, plus behaviour
// under churn.
func E3CoordinatorTree() Table {
	t := Table{
		ID:      "E3",
		Title:   "Sec 3.2.1 — coordinator tree vs flat coordinator",
		Columns: []string{"entities", "k", "height", "avg join hops", "tree work/query", "flat work/query"},
	}
	rng := rand.New(rand.NewSource(77))
	for _, n := range []int{50, 200, 800} {
		for _, k := range []int{3, 5} {
			tree := coordinator.NewTree(k)
			flat := coordinator.NewFlat()
			joinHops := 0
			for i := 0; i < n; i++ {
				id := coordinator.MemberID(fmt.Sprintf("m%04d", i))
				at := simnet.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
				hops, err := tree.Join(id, at)
				if err != nil {
					panic(err)
				}
				joinHops += hops
				if err := flat.Join(id, at); err != nil {
					panic(err)
				}
			}
			loads := make(map[coordinator.MemberID]float64)
			loadFn := func(m coordinator.MemberID) float64 { return loads[m] }
			const queries = 200
			treeWork, flatWork := 0, 0
			for q := 0; q < queries; q++ {
				origin := simnet.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
				target, w, err := tree.RouteQuery(origin, loadFn)
				if err != nil {
					panic(err)
				}
				treeWork += w
				loads[target]++
				_, fw, err := flat.RouteQuery(origin, loadFn)
				if err != nil {
					panic(err)
				}
				flatWork += fw
			}
			_, height := tree.Root()
			t.Rows = append(t.Rows, []string{
				d(int64(n)), d(int64(k)), d(int64(height)),
				f(float64(joinHops) / float64(n)),
				f(float64(treeWork) / queries),
				f(float64(flatWork) / queries),
			})
		}
	}
	// Churn resilience: 30% of a 200-member tree leaves or fails.
	tree := coordinator.NewTree(3)
	var members []coordinator.MemberID
	for i := 0; i < 200; i++ {
		id := coordinator.MemberID(fmt.Sprintf("c%04d", i))
		if _, err := tree.Join(id, simnet.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}); err != nil {
			panic(err)
		}
		members = append(members, id)
	}
	for i := 0; i < 60; i++ {
		if err := tree.Fail(members[i*3]); err != nil {
			panic(err)
		}
	}
	recenters := tree.Recenter()
	if _, _, err := tree.RouteQuery(simnet.Point{X: 50, Y: 50},
		func(coordinator.MemberID) float64 { return 0 }); err != nil {
		panic(err)
	}
	t.Notes = append(t.Notes,
		"tree work per query stays O(k·height) while flat work grows linearly with N",
		fmt.Sprintf("churn check: 60 of 200 members failed, tree still routes; recenter adjusted %d clusters", recenters))
	return t
}
