package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// cell parses a numeric table cell.
func cell(t *testing.T, tab Table, row, col int) float64 {
	t.Helper()
	if row >= len(tab.Rows) || col >= len(tab.Rows[row]) {
		t.Fatalf("%s: no cell (%d,%d); rows=%d", tab.ID, row, col, len(tab.Rows))
	}
	v, err := strconv.ParseFloat(tab.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("%s: cell (%d,%d)=%q not numeric: %v", tab.ID, row, col, tab.Rows[row][col], err)
	}
	return v
}

func renderNonEmpty(t *testing.T, tab Table) {
	t.Helper()
	var sb strings.Builder
	tab.Fprint(&sb)
	if sb.Len() == 0 {
		t.Fatalf("%s rendered empty", tab.ID)
	}
	if len(tab.Rows) == 0 {
		t.Fatalf("%s has no rows", tab.ID)
	}
	for _, row := range tab.Rows {
		if len(row) != len(tab.Columns) {
			t.Fatalf("%s row width %d != %d columns", tab.ID, len(row), len(tab.Columns))
		}
	}
}

func TestFigure1TwoLayer(t *testing.T) {
	tab := Figure1TwoLayer()
	renderNonEmpty(t, tab)
	byKey := map[string]string{}
	for _, row := range tab.Rows {
		byKey[row[0]] = row[1]
	}
	if byKey["queries allocated via coordinator tree"] != "40" {
		t.Errorf("queries = %s", byKey["queries allocated via coordinator tree"])
	}
	if byKey["dissemination tree max fanout"] > "3" {
		t.Errorf("fanout bound exceeded: %s", byKey["dissemination tree max fanout"])
	}
}

func TestTable1CooperationModes(t *testing.T) {
	tab := Table1CooperationModes()
	renderNonEmpty(t, tab)
	if len(tab.Rows) != 4 {
		t.Fatalf("modes = %d", len(tab.Rows))
	}
	// Source egress: non-cooperated transfer must be the worst.
	nonCoop := cell(t, tab, 0, 1)
	coop := cell(t, tab, 1, 1)
	if coop >= nonCoop {
		t.Errorf("cooperated egress %v not below source-direct %v", coop, nonCoop)
	}
	// Imbalance: load sharing must flatten it.
	isolated := cell(t, tab, 1, 3)
	shared := cell(t, tab, 2, 3)
	if shared >= isolated {
		t.Errorf("query-level sharing imbalance %v not below isolated %v", shared, isolated)
	}
}

func TestFigure2QueryGraph(t *testing.T) {
	tab := Figure2QueryGraph()
	renderNonEmpty(t, tab)
	// The paper's numbers, exactly.
	if got := cell(t, tab, 0, 2); got != 8 {
		t.Errorf("plan (a) cut = %v, want 8", got)
	}
	if got := cell(t, tab, 1, 2); got != 3 {
		t.Errorf("plan (b) cut = %v, want 3", got)
	}
	if got := cell(t, tab, 2, 2); got > 3 {
		t.Errorf("our cut = %v, want <= 3", got)
	}
	if !strings.Contains(tab.Rows[2][1], "Q5") {
		t.Errorf("partitioner side = %s, want Q3 with Q5", tab.Rows[2][1])
	}
}

func TestFigure3Delegation(t *testing.T) {
	tab := Figure3Delegation()
	renderNonEmpty(t, tab)
	single := cell(t, tab, 0, 1)
	deleg := cell(t, tab, 1, 1)
	if deleg*2 > single {
		t.Errorf("delegation max ingress %v not well below single receiver %v", deleg, single)
	}
	if imb := cell(t, tab, 1, 2); imb > 1.2 {
		t.Errorf("delegation ingress imbalance = %v", imb)
	}
}

func TestE1DisseminationScalability(t *testing.T) {
	tab := E1DisseminationScalability()
	renderNonEmpty(t, tab)
	// Row layout: for each N: source-direct, balanced, locality.
	// Source-direct egress at N=32 (row 9) must be ~8x N=4 (row 0).
	small := cell(t, tab, 0, 2)
	large := cell(t, tab, 9, 2)
	if large < 7*small {
		t.Errorf("source-direct egress did not scale with N: %v -> %v", small, large)
	}
	// Balanced egress must be flat (row 1 vs row 10).
	if b4, b32 := cell(t, tab, 1, 2), cell(t, tab, 10, 2); b32 > b4*1.01 {
		t.Errorf("balanced egress grew with N: %v -> %v", b4, b32)
	}
	// And at N=32 tree egress ≪ direct egress.
	if tree := cell(t, tab, 10, 2); tree*4 > large {
		t.Errorf("tree egress %v not ≪ direct %v at N=32", tree, large)
	}
}

func TestE2EarlyFiltering(t *testing.T) {
	tab := E2EarlyFiltering()
	renderNonEmpty(t, tab)
	// Savings decrease as selectivity grows.
	prev := 101.0
	for i := range tab.Rows {
		saved := cell(t, tab, i, 3)
		if saved > prev+1e-9 {
			t.Errorf("savings not monotone: row %d = %v after %v", i, saved, prev)
		}
		prev = saved
	}
	if s := cell(t, tab, 0, 3); s < 90 {
		t.Errorf("1%% selectivity saved only %v%%", s)
	}
	if s := cell(t, tab, len(tab.Rows)-1, 3); s > 1 {
		t.Errorf("full selectivity saved %v%%, want ~0", s)
	}
}

func TestE3CoordinatorTree(t *testing.T) {
	tab := E3CoordinatorTree()
	renderNonEmpty(t, tab)
	for i := range tab.Rows {
		treeWork := cell(t, tab, i, 4)
		flatWork := cell(t, tab, i, 5)
		n := cell(t, tab, i, 0)
		if flatWork != n {
			t.Errorf("row %d: flat work %v != N %v", i, flatWork, n)
		}
		if n >= 200 && treeWork*10 > flatWork {
			t.Errorf("row %d: tree work %v not ≪ flat %v", i, treeWork, flatWork)
		}
	}
}

func TestE4LoadDistribution(t *testing.T) {
	tab := E4LoadDistribution()
	renderNonEmpty(t, tab)
	// Rows come in groups of four: ours, multilevel, load-only,
	// similarity-only.
	for g := 0; g+3 < len(tab.Rows); g += 4 {
		ourCut := cell(t, tab, g, 2)
		mlCut := cell(t, tab, g+1, 2)
		loadCut := cell(t, tab, g+2, 2)
		if ourCut >= loadCut {
			t.Errorf("trial %d: our cut %v not below load-only %v", g/4, ourCut, loadCut)
		}
		if mlCut >= loadCut {
			t.Errorf("trial %d: multilevel cut %v not below load-only %v", g/4, mlCut, loadCut)
		}
		loadImb := cell(t, tab, g+2, 3)
		if loadImb > 1.3 {
			t.Errorf("trial %d: load-only imbalance %v", g/4, loadImb)
		}
	}
}

func TestE5AdaptiveRepartitioning(t *testing.T) {
	tab := E5AdaptiveRepartitioning()
	renderNonEmpty(t, tab)
	// Rows: scratch, hybrid, greedycut.
	scratchCut, hybridCut, greedyCut := cell(t, tab, 0, 1), cell(t, tab, 1, 1), cell(t, tab, 2, 1)
	scratchMig, hybridMig := cell(t, tab, 0, 2), cell(t, tab, 1, 2)
	if scratchCut >= greedyCut {
		t.Errorf("scratch cut %v not below greedycut %v", scratchCut, greedyCut)
	}
	if hybridCut >= greedyCut {
		t.Errorf("hybrid cut %v not below greedycut %v", hybridCut, greedyCut)
	}
	if hybridMig >= scratchMig {
		t.Errorf("hybrid migrations %v not below scratch %v", hybridMig, scratchMig)
	}
}

func TestE6OperatorPlacement(t *testing.T) {
	tab := E6OperatorPlacement()
	renderNonEmpty(t, tab)
	prMax := cell(t, tab, 0, 1)
	for i := 1; i < 4; i++ {
		if baseline := cell(t, tab, i, 1); prMax >= baseline {
			t.Errorf("pr-aware PRmax %v not below %s %v", prMax, tab.Rows[i][0], baseline)
		}
	}
	// The limit sweep: limit=1 (row 4) must be far worse than limit=2
	// (row 5) because elephants saturate a single processor.
	if l1, l2 := cell(t, tab, 4, 1), cell(t, tab, 5, 1); l2*10 > l1 {
		t.Errorf("limit=1 PRmax %v not ≫ limit=2 %v", l1, l2)
	}
}

func TestE7AdaptiveOrdering(t *testing.T) {
	tab := E7AdaptiveOrdering()
	renderNonEmpty(t, tab)
	// Shifted rows save work; control row saves none and never adapts.
	for i := 0; i < 2; i++ {
		if saved := cell(t, tab, i, 3); saved <= 5 {
			t.Errorf("row %d saved only %v%%", i, saved)
		}
		if adapts := cell(t, tab, i, 4); adapts < 1 {
			t.Errorf("row %d adaptations = %v", i, adapts)
		}
	}
	control := len(tab.Rows) - 1
	if saved := cell(t, tab, control, 3); saved != 0 {
		t.Errorf("control saved %v%%, want 0", saved)
	}
	if adapts := cell(t, tab, control, 4); adapts != 0 {
		t.Errorf("control adapted %v times", adapts)
	}
}

func TestE8CouplingTradeoff(t *testing.T) {
	tab := E8CouplingTradeoff()
	renderNonEmpty(t, tab)
	// Query-level migration cost is flat; operator-level grows with the
	// window.
	loose0, tight0 := cell(t, tab, 0, 1), cell(t, tab, 0, 2)
	loose2, tight2 := cell(t, tab, 2, 1), cell(t, tab, 2, 2)
	if loose0 != loose2 {
		t.Errorf("query-level migration cost not flat: %v vs %v", loose0, loose2)
	}
	if tight2 < 50*tight0 {
		t.Errorf("operator-level cost did not grow with window: %v -> %v", tight0, tight2)
	}
	if tight0 < loose0 {
		t.Errorf("operator-level cost %v below spec size %v even at small windows", tight0, loose0)
	}
	// Fragment-level balancing beats whole-query balancing.
	wholeImb, fragImb := cell(t, tab, 3, 1), cell(t, tab, 3, 2)
	if fragImb >= wholeImb {
		t.Errorf("fragment balance %v not better than whole-query %v", fragImb, wholeImb)
	}
}

func TestE9SchedulingPolicy(t *testing.T) {
	tab := E9SchedulingPolicy()
	renderNonEmpty(t, tab)
	// Rows: fifo, round-robin, longest-queue. Round-robin must give the
	// light query a far better light/heavy ratio than both others.
	fifoRatio := cell(t, tab, 0, 3)
	rrRatio := cell(t, tab, 1, 3)
	lqRatio := cell(t, tab, 2, 3)
	if rrRatio*5 > fifoRatio {
		t.Errorf("round-robin ratio %v not well below fifo %v", rrRatio, fifoRatio)
	}
	if rrRatio >= lqRatio {
		t.Errorf("round-robin ratio %v not below longest-queue %v", rrRatio, lqRatio)
	}
}

func TestE10InterestAggregation(t *testing.T) {
	tab := E10InterestAggregation()
	renderNonEmpty(t, tab)
	// Registration bytes grow with the cap; data bytes shrink; delivered
	// tuples are identical at every cap (widening safety).
	first, last := 0, len(tab.Rows)-1
	if reg0, regN := cell(t, tab, first, 1), cell(t, tab, last, 1); reg0 >= regN {
		t.Errorf("registration bytes not increasing: %v -> %v", reg0, regN)
	}
	if data0, dataN := cell(t, tab, first, 2), cell(t, tab, last, 2); data0 <= dataN {
		t.Errorf("data bytes not decreasing: %v -> %v", data0, dataN)
	}
	want := cell(t, tab, first, 3)
	for i := range tab.Rows {
		if got := cell(t, tab, i, 3); got != want {
			t.Errorf("row %d delivered %v, want %v (widening lost tuples)", i, got, want)
		}
	}
}

func TestE11TreeReorganization(t *testing.T) {
	tab := E11TreeReorganization()
	renderNonEmpty(t, tab)
	for i := range tab.Rows {
		if rewires := cell(t, tab, i, 1); rewires == 0 {
			t.Errorf("row %d: no rewires on a geometry-blind tree", i)
		}
		lenBefore, lenAfter := cell(t, tab, i, 2), cell(t, tab, i, 3)
		if lenAfter >= lenBefore {
			t.Errorf("row %d: edge length %v -> %v (no improvement)", i, lenBefore, lenAfter)
		}
		trBefore, trAfter := cell(t, tab, i, 4), cell(t, tab, i, 5)
		if trAfter >= trBefore {
			t.Errorf("row %d: transit cost %v -> %v (no improvement)", i, trBefore, trAfter)
		}
		if lost := cell(t, tab, i, 6); lost != 0 {
			t.Errorf("row %d: lost %v tuples during reorganization", i, lost)
		}
	}
}

func TestE12AdaptiveRouting(t *testing.T) {
	tab := E12AdaptiveRouting()
	renderNonEmpty(t, tab)
	// Results exact in both phases.
	for i := range tab.Rows {
		if got := cell(t, tab, i, 4); got != cell(t, tab, i, 1) {
			t.Errorf("row %d: results %v != tuples %v", i, got, cell(t, tab, i, 1))
		}
	}
	// After loading A, B serves the overwhelming majority.
	a2, b2 := cell(t, tab, 1, 2), cell(t, tab, 1, 3)
	if b2 <= a2*3 {
		t.Errorf("loaded phase: A=%v B=%v — routing did not adapt", a2, b2)
	}
}
