package experiments

import (
	"encoding/json"
	"fmt"
	"time"

	"sspd/internal/core"
	"sspd/internal/dissemination"
	"sspd/internal/engine"
	"sspd/internal/entity"
	"sspd/internal/querygraph"
	"sspd/internal/simnet"
	"sspd/internal/stream"
	"sspd/internal/workload"
)

func miniFactory(name string, c *stream.Catalog) engine.Processor {
	return engine.NewMini(name, c)
}

// entityPos places entity i on a grid around the sources.
func entityPos(i int) simnet.Point {
	return simnet.Point{X: float64(10 + (i%4)*25), Y: float64(10 + (i/4)*25)}
}

// buildFederation constructs a started federation with the standard
// experiment topology.
func buildFederation(net *simnet.SimNet, nEntities, nProcs int,
	strategy dissemination.Strategy, frags int) (*core.Federation, error) {
	catalog := workload.Catalog(200, 50)
	fed, err := core.New(net, catalog, core.Options{
		Strategy:          strategy,
		Fanout:            3,
		CoordinatorK:      3,
		FragmentsPerQuery: frags,
	})
	if err != nil {
		return nil, err
	}
	if err := fed.AddSource("quotes", simnet.Point{X: 50, Y: 50},
		core.StreamRate{TuplesPerSec: 5000, BytesPerTuple: 60}); err != nil {
		return nil, err
	}
	if err := fed.AddSource("trades", simnet.Point{X: 55, Y: 50},
		core.StreamRate{TuplesPerSec: 2000, BytesPerTuple: 40}); err != nil {
		return nil, err
	}
	for i := 0; i < nEntities; i++ {
		if err := fed.AddEntity(fmt.Sprintf("e%02d", i), entityPos(i), nProcs, miniFactory); err != nil {
			return nil, err
		}
	}
	if err := fed.Start(); err != nil {
		return nil, err
	}
	return fed, nil
}

// Figure1TwoLayer reproduces Figure 1: the two-layer network, verified
// end to end — sources feed dissemination trees feeding entities whose
// processor clusters evaluate queries.
func Figure1TwoLayer() Table {
	net := simnet.NewSim(nil)
	defer net.Close()
	fed, err := buildFederation(net, 8, 3, dissemination.Locality, 2)
	if err != nil {
		panic(err)
	}
	defer fed.Close()

	tick := workload.NewTicker(21, 200, 1.3)
	qgen := workload.NewQueryGen(21, tick.Symbols(), 4, 0.3)
	for i, spec := range qgen.Specs(40) {
		if _, err := fed.SubmitQuery(spec, entityPos(i%8), nil); err != nil {
			panic(err)
		}
	}
	net.Quiesce(10 * time.Second)
	net.Traffic().Reset()
	published := 0
	for round := 0; round < 4; round++ {
		b := tick.Batch(250)
		published += len(b)
		if err := fed.Publish("quotes", b); err != nil {
			panic(err)
		}
	}
	net.Quiesce(10 * time.Second)
	time.Sleep(50 * time.Millisecond)

	tree := fed.DisseminationTree("quotes")
	root, height := fed.Coordinator().Root()
	tr := net.Traffic()
	_, hottest := tr.MaxEgress()

	t := Table{
		ID:      "F1",
		Title:   "Figure 1 — two-layer network, end to end",
		Columns: []string{"layer property", "value"},
	}
	add := func(k, v string) { t.Rows = append(t.Rows, []string{k, v}) }
	add("entities (inter-entity layer)", "8")
	add("processors per entity (intra-entity layer)", "3")
	add("coordinator tree root / height", fmt.Sprintf("%s / %d", root, height))
	add("dissemination tree depth (quotes)", d(int64(tree.MaxDepth())))
	add("dissemination tree max fanout", d(int64(tree.MaxFanout())))
	add("queries allocated via coordinator tree", d(int64(fed.NumQueries())))
	add("quotes published", d(int64(published)))
	add("total bytes on the wire", d(tr.TotalBytes()))
	add("hottest node egress bytes", d(hottest))
	t.Notes = append(t.Notes,
		"every query was allocated by descending the coordinator tree; no node relayed to more than `fanout` children")
	return t
}

// Table1CooperationModes reproduces Table 1: the same workload run under
// each degree of coupling the paper tabulates.
func Table1CooperationModes() Table {
	type mode struct {
		name     string
		strategy dissemination.Strategy
		coopQ    bool // query-level load sharing via coordinator+rebalance
		frags    int  // >1 = operator-level sharing inside entities
	}
	modes := []mode{
		{"non-coop transfer + isolated", dissemination.SourceDirect, false, 1},
		{"coop transfer + isolated", dissemination.Locality, false, 1},
		{"coop transfer + query-level", dissemination.Locality, true, 1},
		{"coop transfer + operator-level", dissemination.Locality, true, 2},
	}
	t := Table{
		ID:      "T1",
		Title:   "Table 1 — degrees of cooperation under one workload",
		Columns: []string{"mode", "src egress B", "total B", "load imbalance"},
	}
	const nEntities = 8
	for _, m := range modes {
		net := simnet.NewSim(nil)
		fed, err := buildFederation(net, nEntities, 2, m.strategy, m.frags)
		if err != nil {
			panic(err)
		}
		tick := workload.NewTicker(31, 200, 1.3)
		qgen := workload.NewQueryGen(31, tick.Symbols(), 4, 0.4)
		specs := qgen.Specs(64)
		for i, spec := range specs {
			if m.coopQ {
				// Cooperative allocation: coordinator tree, load-aware.
				if _, err := fed.SubmitQuery(spec, entityPos(i%nEntities), nil); err != nil {
					panic(err)
				}
			} else {
				// Isolated: each client uses its nearest entity —
				// clients cluster in one corner, so load piles up.
				target := fmt.Sprintf("e%02d", i%3)
				if err := fed.SubmitQueryTo(spec, target, nil); err != nil {
					panic(err)
				}
			}
		}
		if m.coopQ {
			if _, err := fed.Rebalance(querygraph.HybridRepartitioner{}); err != nil {
				panic(err)
			}
		}
		net.Quiesce(10 * time.Second)
		net.Traffic().Reset()
		for round := 0; round < 4; round++ {
			if err := fed.Publish("quotes", tick.Batch(200)); err != nil {
				panic(err)
			}
		}
		net.Quiesce(10 * time.Second)
		time.Sleep(50 * time.Millisecond)

		loads := make([]float64, 0, nEntities)
		for _, id := range fed.EntityIDs() {
			loads = append(loads, fed.EntityLoad(id))
		}
		tr := net.Traffic()
		t.Rows = append(t.Rows, []string{
			m.name,
			d(tr.EgressBytes("src:quotes")),
			d(tr.TotalBytes()),
			f(querygraph.Imbalance(loads)),
		})
		fed.Close()
		net.Close()
	}
	t.Notes = append(t.Notes,
		"cooperated stream transfer caps source egress; load sharing flattens the entity-load imbalance (paper Table 1's two axes)")
	return t
}

// Figure2QueryGraph reproduces Figure 2: the worked 5-query example with
// plans (a) and (b), plus our partitioner's answer.
func Figure2QueryGraph() Table {
	g := querygraph.Figure2Graph()
	planA, planB := querygraph.Figure2PlanA(), querygraph.Figure2PlanB()
	ours, err := querygraph.Partition(g, querygraph.Options{K: 2, Epsilon: 0.2})
	if err != nil {
		panic(err)
	}
	row := func(name string, p querygraph.Partitioning) []string {
		w := g.PartitionWeights(p, 2)
		group0 := ""
		for _, v := range g.Vertices() {
			if p[v] == p["Q3"] {
				if group0 != "" {
					group0 += ","
				}
				group0 += string(v)
			}
		}
		return []string{name, "{" + group0 + "}", f(g.EdgeCut(p)), f(querygraph.Imbalance(w))}
	}
	t := Table{
		ID:      "F2",
		Title:   "Figure 2 — query graph, duplicate dissemination of plans (a) and (b)",
		Columns: []string{"plan", "Q3's side", "edge cut B/s", "imbalance"},
		Rows: [][]string{
			row("plan (a) {Q3,Q4}", planA),
			row("plan (b) {Q3,Q5}", planB),
			row("our partitioner", ours),
		},
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("paper: plan (a) duplicates 8 B/s, plan (b) 3 B/s; measured %g and %g — Q3 and Q5 share no edge yet colocate in the optimum",
			g.EdgeCut(planA), g.EdgeCut(planB)))
	return t
}

// Figure3Delegation reproduces Figure 3: per-stream delegation
// processors versus a single receiving processor.
func Figure3Delegation() Table {
	const nProcs, nStreams, tuplesPerStream = 4, 8, 200
	run := func(single bool) (maxIngress int64, imbalance float64) {
		net := simnet.NewSim(nil)
		defer net.Close()
		catalog := stream.NewCatalog()
		var schemas []*stream.Schema
		for s := 0; s < nStreams; s++ {
			sc := stream.MustSchema(fmt.Sprintf("st%d", s),
				stream.Field{Name: "k", Type: stream.KindString, Card: 10},
				stream.Field{Name: "v", Type: stream.KindFloat, Lo: 0, Hi: 100},
			)
			if err := catalog.Register(sc); err != nil {
				panic(err)
			}
			schemas = append(schemas, sc)
		}
		en, err := entity.New("e", net, catalog, nProcs, miniFactory)
		if err != nil {
			panic(err)
		}
		defer en.Close()
		if single {
			for s := 0; s < nStreams; s++ {
				if err := en.ForceDelegation(fmt.Sprintf("st%d", s), 0); err != nil {
					panic(err)
				}
			}
		}
		// One query per stream so every stream has a consumer.
		for s := 0; s < nStreams; s++ {
			spec := engine.QuerySpec{
				ID:     fmt.Sprintf("q%d", s),
				Source: fmt.Sprintf("st%d", s),
				Filters: []engine.FilterSpec{
					{Field: "v", Lo: 0, Hi: 100, Cost: 1},
				},
			}
			if err := en.PlaceQuery(spec, 1); err != nil {
				panic(err)
			}
		}
		// An upstream node feeds each stream's delegation processor
		// over the metered transport (the inter-entity feed of Fig. 3).
		if err := net.Register("upstream", func(simnet.Message) {}); err != nil {
			panic(err)
		}
		for s := 0; s < nStreams; s++ {
			name := fmt.Sprintf("st%d", s)
			target := en.Delegation(name)
			var batch stream.Batch
			for i := 0; i < tuplesPerStream; i++ {
				batch = append(batch, stream.NewTuple(name, uint64(i),
					time.Unix(int64(i), 0).UTC(),
					stream.String("a"), stream.Float(float64(i%100))))
			}
			if err := net.Send("upstream", target, entity.KindIngest,
				stream.AppendBatch(nil, batch)); err != nil {
				panic(err)
			}
		}
		net.Quiesce(10 * time.Second)
		tr := net.Traffic()
		var loads []float64
		for p := 0; p < nProcs; p++ {
			in := tr.IngressBytes(simnet.NodeID(fmt.Sprintf("e/p%d", p)))
			loads = append(loads, float64(in))
			if in > maxIngress {
				maxIngress = in
			}
		}
		return maxIngress, querygraph.Imbalance(loads)
	}
	singleMax, singleImb := run(true)
	delegMax, delegImb := run(false)
	t := Table{
		ID:      "F3",
		Title:   "Figure 3 — stream delegation vs a single receiving processor",
		Columns: []string{"scheme", "max proc ingress B", "ingress imbalance"},
		Rows: [][]string{
			{"single receiver", d(singleMax), f(singleImb)},
			{"per-stream delegation", d(delegMax), f(delegImb)},
		},
	}
	t.Notes = append(t.Notes,
		"delegation spreads stream reception across the cluster instead of bottlenecking one processor")
	return t
}

// specWireSize returns the JSON-encoded size of a query spec — the cost
// of a query-level migration (E8 uses it).
func specWireSize(spec engine.QuerySpec) int {
	b, err := json.Marshal(spec)
	if err != nil {
		return 0
	}
	return len(b)
}
