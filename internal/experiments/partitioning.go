package experiments

import (
	"fmt"
	"math/rand"

	"sspd/internal/querygraph"
)

// clusteredGraph builds a query graph with community structure: heavy
// intra-community edges (shared data interest), light cross-community
// edges — the structure the workload generators produce.
func clusteredGraph(rng *rand.Rand, n, communities int) *querygraph.Graph {
	g := querygraph.New()
	cluster := make(map[querygraph.VertexID]int, n)
	for i := 0; i < n; i++ {
		id := querygraph.VertexID(fmt.Sprintf("q%03d", i))
		g.AddVertex(id, 1+rng.Float64()*9)
		cluster[id] = i % communities
	}
	vs := g.Vertices()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			a, b := vs[i], vs[j]
			if cluster[a] == cluster[b] {
				if rng.Float64() < 0.5 {
					if err := g.SetEdge(a, b, 1+rng.Float64()*9); err != nil {
						panic(err)
					}
				}
			} else if rng.Float64() < 0.05 {
				if err := g.SetEdge(a, b, rng.Float64()); err != nil {
					panic(err)
				}
			}
		}
	}
	return g
}

// driftGraph perturbs the graph like a live workload: load changes, 20%
// departures, 20% arrivals joining existing neighborhoods.
func driftGraph(rng *rand.Rand, g *querygraph.Graph, round int) {
	vs := g.Vertices()
	for _, v := range vs {
		if rng.Float64() < 0.3 {
			g.SetVertexWeight(v, 1+rng.Float64()*9)
		}
	}
	for _, v := range vs {
		if rng.Float64() < 0.2 {
			g.RemoveVertex(v)
		}
	}
	cur := g.Vertices()
	n := len(vs) / 5
	for i := 0; i <= n; i++ {
		id := querygraph.VertexID(fmt.Sprintf("new%03d-%d", round, i))
		g.AddVertex(id, 1+rng.Float64()*9)
		if len(cur) == 0 {
			continue
		}
		anchor := cur[rng.Intn(len(cur))]
		if err := g.SetEdge(id, anchor, 3+rng.Float64()*7); err != nil {
			continue
		}
		g.Neighbors(anchor, func(nb querygraph.VertexID, w float64) {
			if nb != id && rng.Float64() < 0.5 {
				_ = g.SetEdge(id, nb, 1+rng.Float64()*5)
			}
		})
	}
}

// E4LoadDistribution compares the paper's interest+load partitioner with
// the two baselines it argues against: load-only (Flux/Borealis-style)
// and similarity-only clustering.
func E4LoadDistribution() Table {
	t := Table{
		ID:      "E4",
		Title:   "Sec 3.2.2 — load distribution: edge cut and balance by strategy",
		Columns: []string{"graph", "strategy", "edge cut B/s", "imbalance"},
	}
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 3; trial++ {
		g := clusteredGraph(rng, 100, 8)
		k := 8
		label := fmt.Sprintf("n=100 c=8 #%d", trial+1)
		ours, err := querygraph.Partition(g, querygraph.Options{K: k})
		if err != nil {
			panic(err)
		}
		multilevel, err := querygraph.PartitionMultilevel(g, querygraph.Options{K: k})
		if err != nil {
			panic(err)
		}
		loadOnly, err := querygraph.PartitionLoadOnly(g, k)
		if err != nil {
			panic(err)
		}
		simOnly, err := querygraph.PartitionSimilarityOnly(g, k)
		if err != nil {
			panic(err)
		}
		for _, row := range []struct {
			name string
			p    querygraph.Partitioning
		}{
			{"interest+load (ours)", ours},
			{"multilevel (ours)", multilevel},
			{"load-only", loadOnly},
			{"similarity-only", simOnly},
		} {
			t.Rows = append(t.Rows, []string{
				label, row.name,
				f(g.EdgeCut(row.p)),
				f(querygraph.Imbalance(g.PartitionWeights(row.p, k))),
			})
		}
	}
	t.Notes = append(t.Notes,
		"ours cuts far less than load-only at comparable balance; similarity-only cuts least but abandons balance (the paper's Q3/Q5 point)")
	return t
}

// E5AdaptiveRepartitioning drives the three repartitioners through
// workload drift and reports the paper's trade-off: cut quality vs
// migrations vs decision effort.
func E5AdaptiveRepartitioning() Table {
	t := Table{
		ID:      "E5",
		Title:   "Sec 3.2.2 — adaptive repartitioning under drift (6 rounds, k=6)",
		Columns: []string{"strategy", "mean cut B/s", "migrations", "evaluations"},
	}
	const k, rounds = 6, 6
	strategies := []querygraph.Repartitioner{
		querygraph.ScratchRepartitioner{},
		querygraph.HybridRepartitioner{},
		querygraph.GreedyCutRepartitioner{},
	}
	for _, strat := range strategies {
		rng := rand.New(rand.NewSource(29))
		g := clusteredGraph(rng, 90, k)
		assign, err := querygraph.Partition(g, querygraph.Options{K: k})
		if err != nil {
			panic(err)
		}
		var cutSum float64
		var migrations, evals int
		for round := 0; round < rounds; round++ {
			driftGraph(rng, g, round)
			res, err := strat.Repartition(g, assign, querygraph.Options{K: k})
			if err != nil {
				panic(err)
			}
			assign = res.Assignment
			cutSum += g.EdgeCut(assign)
			migrations += res.Migrations
			evals += res.Evaluations
		}
		t.Rows = append(t.Rows, []string{
			strat.Name(), f(cutSum / rounds), d(int64(migrations)), d(int64(evals)),
		})
	}
	t.Notes = append(t.Notes,
		"scratch: best cut, most movement and effort; greedycut: cheapest, worst cut; hybrid: between the extremes — the trade-off the paper calls for")
	return t
}
