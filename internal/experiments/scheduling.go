package experiments

import (
	"fmt"
	"time"

	"sspd/internal/engine"
	"sspd/internal/stream"
	"sspd/internal/workload"
)

// E9SchedulingPolicy is an extension experiment: the paper's delay model
// (Section 4.1) counts waiting time as a first-class delay component;
// this ablation shows how the processor's scheduling policy moves
// waiting time between query classes. One heavy query (expensive per
// tuple, deep backlog) and one light query share a single-threaded
// scheduler under each policy.
func E9SchedulingPolicy() Table {
	t := Table{
		ID:      "E9",
		Title:   "extension — scheduling policy vs per-class delay (1 heavy + 1 light query)",
		Columns: []string{"policy", "light mean delay ms", "heavy mean delay ms", "light/heavy ratio"},
	}
	catalog := workload.Catalog(100, 10)
	mkTuple := func(i int) stream.Tuple {
		return stream.NewTuple("quotes", uint64(i), time.Unix(int64(i), 0).UTC(),
			stream.String("S0000"), stream.Float(100), stream.Int(1))
	}
	for _, policy := range []engine.Policy{
		engine.PolicyFIFO, engine.PolicyRoundRobin, engine.PolicyLongestQueue,
	} {
		e := engine.NewSched("sched", catalog, policy)
		slow := func(stream.Tuple) { time.Sleep(40 * time.Microsecond) }
		spec := func(id string) engine.QuerySpec {
			return engine.QuerySpec{
				ID:     id,
				Source: "quotes",
				Filters: []engine.FilterSpec{
					{Field: "price", Lo: 0, Hi: 1000, Cost: 1},
				},
			}
		}
		if err := e.Register(spec("heavy"), slow); err != nil {
			panic(err)
		}
		if err := e.Register(spec("light"), nil); err != nil {
			panic(err)
		}
		// The heavy query arrives with a deep backlog, then light
		// tuples trickle in behind it.
		for i := 0; i < 600; i++ {
			if err := e.FeedQuery("heavy", mkTuple(i)); err != nil {
				panic(err)
			}
		}
		for i := 0; i < 30; i++ {
			if err := e.FeedQuery("light", mkTuple(1000+i)); err != nil {
				panic(err)
			}
		}
		if !e.Drain(30 * time.Second) {
			panic(fmt.Sprintf("scheduler %s did not drain", policy))
		}
		ml, _ := e.Metrics("light")
		mh, _ := e.Metrics("heavy")
		e.Close()
		ratio := 0.0
		if mh.Delay.Mean > 0 {
			ratio = ml.Delay.Mean / mh.Delay.Mean
		}
		t.Rows = append(t.Rows, []string{
			policy.String(),
			f(ml.Delay.Mean * 1000),
			f(mh.Delay.Mean * 1000),
			f(ratio),
		})
	}
	t.Notes = append(t.Notes,
		"round-robin interleaves the light query past the heavy backlog (smallest light/heavy ratio); FIFO makes it wait in arrival order; longest-queue starves it until the heavy backlog drains")
	return t
}
