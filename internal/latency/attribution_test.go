package latency

import (
	"math"
	"testing"
	"time"

	"sspd/internal/trace"
)

// mkSpan builds a span whose hops occur at fixed millisecond offsets
// from a base time, so stage deltas are exactly predictable.
func mkSpan(hops ...[2]any) trace.Span {
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	s := trace.Span{ID: 1, Stream: "quotes", Start: base}
	for _, h := range hops {
		ms := h[1].(int)
		s.Hops = append(s.Hops, trace.Hop{
			Stage: h[0].(string), Node: "n",
			At: base.Add(time.Duration(ms) * time.Millisecond),
		})
	}
	return s
}

func TestDecomposeFullChain(t *testing.T) {
	s := mkSpan(
		[2]any{trace.StagePublish, 0},
		[2]any{trace.StageRelay, 10},
		[2]any{trace.StageDeliver, 30},
		[2]any{trace.StageDelegate, 35},
		[2]any{trace.StageOperator, 45},
		[2]any{trace.StageResult, 100},
	)
	s.Hops[5].Node = "q1"
	bd, ok := Decompose(s, 5)
	if !ok {
		t.Fatal("Decompose rejected a well-formed chain")
	}
	if bd.Query != "q1" || bd.Stream != "quotes" {
		t.Fatalf("attribution: %+v", bd)
	}
	want := map[string]float64{
		StageDissemination: 0.010,
		StageNetwork:       0.020,
		StageIngest:        0.005,
		StageEngine:        0.010,
		StageEval:          0.055,
	}
	for st, w := range want {
		if g := bd.Stage[st]; math.Abs(g-w) > 1e-9 {
			t.Errorf("%s = %g, want %g", st, g, w)
		}
	}
	assertTelescoping(t, bd)
}

// TestDecomposeInterleavedFanOut: a tuple matching two queries records
// operator/result hops for both, interleaved. Each result must be
// attributed through its own chain, not the other query's hops.
func TestDecomposeInterleavedFanOut(t *testing.T) {
	s := mkSpan(
		[2]any{trace.StagePublish, 0},
		[2]any{trace.StageRelay, 5},
		[2]any{trace.StageDeliver, 10},
		[2]any{trace.StageDelegate, 12},
		[2]any{trace.StageOperator, 20}, // q1's fragment
		[2]any{trace.StageResult, 40},   // q1
		[2]any{trace.StageOperator, 50}, // q2's fragment
		[2]any{trace.StageResult, 90},   // q2
	)
	s.Hops[5].Node, s.Hops[7].Node = "q1", "q2"
	b1, ok1 := Decompose(s, 5)
	b2, ok2 := Decompose(s, 7)
	if !ok1 || !ok2 {
		t.Fatal("Decompose rejected fan-out chains")
	}
	if math.Abs(b1.Stage[StageEval]-0.020) > 1e-9 {
		t.Errorf("q1 eval = %g, want 0.020", b1.Stage[StageEval])
	}
	// q2's eval must anchor at its own operator hop (50ms), not q1's.
	if math.Abs(b2.Stage[StageEval]-0.040) > 1e-9 {
		t.Errorf("q2 eval = %g, want 0.040", b2.Stage[StageEval])
	}
	if b1.Query != "q1" || b2.Query != "q2" {
		t.Fatalf("queries: %q, %q", b1.Query, b2.Query)
	}
	assertTelescoping(t, b1)
	assertTelescoping(t, b2)
}

// TestDecomposeMissingStages: a loopback delivery has no relay hop; the
// missing stage contributes zero and its time flows into the next
// segment, keeping the sum telescoping.
func TestDecomposeMissingStages(t *testing.T) {
	s := mkSpan(
		[2]any{trace.StagePublish, 0},
		[2]any{trace.StageDeliver, 30},
		[2]any{trace.StageOperator, 40},
		[2]any{trace.StageResult, 50},
	)
	bd, ok := Decompose(s, 3)
	if !ok {
		t.Fatal("Decompose rejected a chain with missing stages")
	}
	if bd.Stage[StageDissemination] != 0 {
		t.Errorf("dissemination = %g, want 0 (no relay hop)", bd.Stage[StageDissemination])
	}
	if math.Abs(bd.Stage[StageNetwork]-0.030) > 1e-9 {
		t.Errorf("network = %g, want 0.030 (absorbs publish→deliver)", bd.Stage[StageNetwork])
	}
	if bd.Stage[StageIngest] != 0 {
		t.Errorf("ingest = %g, want 0 (no delegate hop)", bd.Stage[StageIngest])
	}
	assertTelescoping(t, bd)
}

func TestDecomposeRejects(t *testing.T) {
	s := mkSpan([2]any{trace.StagePublish, 0}, [2]any{trace.StageRelay, 5})
	if _, ok := Decompose(s, 1); ok {
		t.Fatal("accepted a non-result terminal hop")
	}
	if _, ok := Decompose(s, -1); ok {
		t.Fatal("accepted hop -1")
	}
	if _, ok := Decompose(s, 99); ok {
		t.Fatal("accepted out-of-range hop")
	}
}

func assertTelescoping(t *testing.T, bd Breakdown) {
	t.Helper()
	var sum float64
	for _, v := range bd.Stage {
		sum += v
	}
	if math.Abs(sum-bd.E2E) > 1e-9 {
		t.Fatalf("stage deltas sum to %g, e2e is %g — telescoping broken", sum, bd.E2E)
	}
}

func TestRecorderMeasuredPR(t *testing.T) {
	r := NewRecorder()
	s := mkSpan(
		[2]any{trace.StagePublish, 0},
		[2]any{trace.StageRelay, 10},
		[2]any{trace.StageDeliver, 20},
		[2]any{trace.StageDelegate, 25},
		[2]any{trace.StageOperator, 30},
		[2]any{trace.StageResult, 50},
	)
	s.Hops[5].Node = "q7"
	for i := 0; i < 10; i++ {
		r.OnComplete(s, 5)
	}
	// e2e 50ms, eval 20ms → PR 2.5.
	if pr := r.PRMeasured("q7"); math.Abs(pr-2.5) > 1e-6 {
		t.Fatalf("PRMeasured = %g, want 2.5", pr)
	}
	a := r.Snapshot()
	if len(a.Queries) != 1 || a.Queries[0].Query != "q7" {
		t.Fatalf("queries: %+v", a.Queries)
	}
	if a.E2E.Count != 10 || a.Stages[StageEval].Count != 10 {
		t.Fatalf("histograms not fed: e2e=%d eval=%d", a.E2E.Count, a.Stages[StageEval].Count)
	}
	// The per-query waterfall telescopes to the query's mean e2e.
	var wsum float64
	for _, sec := range a.Queries[0].Stages {
		wsum += sec
	}
	if math.Abs(wsum-a.Queries[0].E2E.Mean()) > 1e-9 {
		t.Fatalf("waterfall sums to %g, e2e mean %g", wsum, a.Queries[0].E2E.Mean())
	}
	if math.Abs(a.Queries[0].Stages[StageEval]-0.020) > 1e-9 {
		t.Fatalf("waterfall eval segment = %g, want 0.020", a.Queries[0].Stages[StageEval])
	}
	if r.Completed.Value() != 10 {
		t.Fatalf("Completed = %d", r.Completed.Value())
	}

	// Eviction finalizations and portal re-announcements don't distort.
	r.OnComplete(s, -1)
	portal := s
	portal.Hops = append(portal.Hops, trace.Hop{Stage: trace.StagePortal, Node: "p", At: s.Hops[5].At})
	r.OnComplete(portal, 6)
	if r.Incomplete.Value() != 1 {
		t.Fatalf("Incomplete = %d, want 1", r.Incomplete.Value())
	}
	if got := r.Snapshot().E2E.Count; got != 10 {
		t.Fatalf("portal/eviction polluted e2e: count %d, want 10", got)
	}

	r.Forget("q7")
	if r.PRMeasured("q7") != 0 {
		t.Fatal("Forget did not drop the query")
	}
}

func TestAttributionMerge(t *testing.T) {
	mk := func(e2eMS, evalMS float64, q string, n int) Attribution {
		r := NewRecorder()
		for i := 0; i < n; i++ {
			r.Observe(Breakdown{Query: q, E2E: e2eMS / 1e3, Stage: map[string]float64{
				StageNetwork: (e2eMS - evalMS) / 1e3,
				StageEval:    evalMS / 1e3,
			}})
		}
		return r.Snapshot()
	}
	a := mk(100, 20, "q1", 5)
	a.Merge(mk(200, 40, "q1", 5))
	a.Merge(mk(50, 10, "q2", 3))
	if a.E2E.Count != 13 {
		t.Fatalf("merged e2e count = %d, want 13", a.E2E.Count)
	}
	if len(a.Queries) != 2 {
		t.Fatalf("merged queries: %+v", a.Queries)
	}
	q1 := a.Queries[0]
	if q1.Query != "q1" || q1.E2E.Count != 10 {
		t.Fatalf("q1 row: %+v", q1)
	}
	// Count-weighted eval mean (20+40)/2 = 30ms; e2e mean 150ms → PR 5.
	if math.Abs(q1.EvalMean-0.030) > 1e-6 || math.Abs(q1.PRMeasured-5) > 0.01 {
		t.Fatalf("q1 merged PR: eval=%g pr=%g", q1.EvalMean, q1.PRMeasured)
	}
	// Waterfall recombines count-weighted too: network (80+160)/2 =
	// 120ms, eval 30ms — still telescoping to the 150ms merged mean.
	if math.Abs(q1.Stages[StageNetwork]-0.120) > 1e-9 || math.Abs(q1.Stages[StageEval]-0.030) > 1e-9 {
		t.Fatalf("q1 merged waterfall: %+v", q1.Stages)
	}
}

func TestParseRules(t *testing.T) {
	rules, err := ParseRules([]string{
		"p99_end_to_end < 250ms",
		"pr_max < 3",
		"stage_share(network) < 60%",
		"",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 3 {
		t.Fatalf("parsed %d rules", len(rules))
	}
	if r := rules[0]; r.Kind != RuleQuantileE2E || r.Q != 0.99 || r.Bound != 0.25 {
		t.Fatalf("rule 0: %+v", r)
	}
	if r := rules[1]; r.Kind != RulePRMax || r.Bound != 3 {
		t.Fatalf("rule 1: %+v", r)
	}
	if r := rules[2]; r.Kind != RuleStageShare || r.Stage != "network" || math.Abs(r.Bound-0.6) > 1e-12 {
		t.Fatalf("rule 2: %+v", r)
	}
	for _, bad := range []string{
		"p99_end_to_end 250ms",     // no operator
		"p0_end_to_end < 1s",       // quantile out of range
		"stage_share(bogus) < 10%", // unknown stage
		"vibes < 9000",             // unknown metric
		"p50_end_to_end < -1s",     // non-positive bound
		"p50_end_to_end < banana",  // unparseable bound
	} {
		if _, err := ParseRule(bad); err == nil {
			t.Errorf("ParseRule(%q) accepted", bad)
		}
	}
	if _, err := ParseRules([]string{"pr_max < 3", "pr_max < 3"}); err == nil {
		t.Error("duplicate rules accepted")
	}
}

func TestWatchdogBreachAndClear(t *testing.T) {
	rules, err := ParseRules([]string{"p99_end_to_end < 250ms", "pr_max < 3"})
	if err != nil {
		t.Fatal(err)
	}
	w := NewWatchdog(rules)

	var h Hist
	obs := func(prMax float64) Observation {
		return Observation{E2E: h.Snapshot(), PRMax: prMax}
	}
	feed := func(sec float64, n int) {
		for i := 0; i < n; i++ {
			h.Observe(sec)
		}
	}

	// Tick 1: healthy traffic.
	feed(0.010, 100)
	v := w.Eval(obs(1.5))
	if v[0].Breached || v[1].Breached {
		t.Fatalf("healthy tick breached: %+v", v)
	}
	if v[0].Transition || v[1].Transition {
		t.Fatalf("healthy tick transitioned: %+v", v)
	}

	// Tick 2: slow window + bad PR → both breach with a transition edge.
	feed(0.5, 100)
	v = w.Eval(obs(4.2))
	if !v[0].Breached || !v[0].Transition {
		t.Fatalf("p99 rule did not breach on slow window: %+v", v[0])
	}
	if !v[1].Breached || !v[1].Transition {
		t.Fatalf("pr_max rule did not breach: %+v", v[1])
	}

	// Tick 3: still bad — breached holds, but no new transition.
	feed(0.5, 100)
	v = w.Eval(obs(4.2))
	if !v[0].Breached || v[0].Transition {
		t.Fatalf("sustained breach must not re-transition: %+v", v[0])
	}

	// Tick 4: traffic recovers → clear transition despite the cumulative
	// histogram still holding every slow sample (windowing at work).
	feed(0.010, 500)
	v = w.Eval(obs(1.0))
	if v[0].Breached || !v[0].Transition {
		t.Fatalf("p99 rule did not clear on healthy window: %+v", v[0])
	}
	if v[1].Breached || !v[1].Transition {
		t.Fatalf("pr_max rule did not clear: %+v", v[1])
	}

	// Tick 5: idle window → state held, not evaluated, no transition.
	v = w.Eval(obs(0))
	if v[0].Evaluated || v[0].Transition || v[0].Breached {
		t.Fatalf("idle window verdict: %+v", v[0])
	}
}

func TestWatchdogStageShare(t *testing.T) {
	rules, err := ParseRules([]string{"stage_share(network) < 60%"})
	if err != nil {
		t.Fatal(err)
	}
	w := NewWatchdog(rules)
	var net, eval Hist
	obs := func() Observation {
		return Observation{Stages: map[string]HistSnapshot{
			StageNetwork: net.Snapshot(),
			StageEval:    eval.Snapshot(),
		}}
	}
	// Window 1: network 10ms vs eval 90ms → 10% share, fine.
	net.Observe(0.010)
	eval.Observe(0.090)
	if v := w.Eval(obs()); v[0].Breached {
		t.Fatalf("10%% share breached: %+v", v[0])
	}
	// Window 2: network dominates → breach.
	net.Observe(0.900)
	eval.Observe(0.100)
	v := w.Eval(obs())
	if !v[0].Breached || !v[0].Transition {
		t.Fatalf("90%% share did not breach: %+v", v[0])
	}
	if math.Abs(v[0].Value-0.9) > 1e-9 {
		t.Fatalf("share value = %g, want 0.9", v[0].Value)
	}
}
