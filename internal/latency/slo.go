package latency

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"time"
)

// SLO rules are declarative invariants over the attribution plane,
// written as "<metric> < <bound>":
//
//	p99_end_to_end < 250ms        // windowed e2e quantile (any pNN)
//	pr_max < 3                    // instantaneous worst measured PR
//	stage_share(network) < 60%    // windowed share of e2e time in a stage
//	drop_rate < 1%                // windowed engine dropped/offered ratio
//	ring_occupancy_p99 < 75%      // windowed p99 shard-ring occupancy
//
// Bounds accept Go duration syntax (250ms, 1.5s), percentages (60%),
// and bare numbers. Quantile and share rules are evaluated over the
// *window* between consecutive watchdog ticks — cumulative histograms
// are differenced first — so a breach clears once the offending traffic
// stops, instead of being pinned forever by history.
type Rule struct {
	// Raw is the rule as written; it is the rule's identity in journal
	// events and metrics labels.
	Raw string `json:"raw"`
	// Kind is one of "quantile_e2e", "pr_max", "stage_share".
	Kind string `json:"kind"`
	// Q is the quantile in [0,1] for quantile_e2e rules.
	Q float64 `json:"q,omitempty"`
	// Stage is the attribution stage for stage_share rules.
	Stage string `json:"stage,omitempty"`
	// Bound is the exclusive upper bound (seconds, ratio, or fraction).
	Bound float64 `json:"bound"`
}

const (
	RuleQuantileE2E = "quantile_e2e"
	RulePRMax       = "pr_max"
	RuleStageShare  = "stage_share"
	// RuleDropRate and RuleRingOcc are the backpressure watchdog's rule
	// kinds (DESIGN.md §14): windowed engine drop rate and windowed p99
	// ring occupancy, both fractions fed via Observation's engine fields.
	RuleDropRate = "drop_rate"
	RuleRingOcc  = "ring_occupancy_p99"
)

// ParseRule parses one rule line.
func ParseRule(s string) (Rule, error) {
	raw := strings.TrimSpace(s)
	lhs, rhs, ok := strings.Cut(raw, "<")
	if !ok {
		return Rule{}, fmt.Errorf("latency: rule %q: want \"<metric> < <bound>\"", raw)
	}
	lhs, rhs = strings.TrimSpace(lhs), strings.TrimSpace(rhs)
	bound, err := parseBound(rhs)
	if err != nil {
		return Rule{}, fmt.Errorf("latency: rule %q: bad bound %q: %w", raw, rhs, err)
	}
	if bound <= 0 {
		return Rule{}, fmt.Errorf("latency: rule %q: bound must be positive", raw)
	}
	r := Rule{Raw: raw, Bound: bound}
	switch {
	case lhs == "pr_max":
		r.Kind = RulePRMax
	case lhs == "drop_rate":
		r.Kind = RuleDropRate
	case lhs == "ring_occupancy_p99":
		r.Kind = RuleRingOcc
	case strings.HasPrefix(lhs, "stage_share(") && strings.HasSuffix(lhs, ")"):
		r.Kind = RuleStageShare
		r.Stage = strings.TrimSuffix(strings.TrimPrefix(lhs, "stage_share("), ")")
		if !validStage(r.Stage) {
			return Rule{}, fmt.Errorf("latency: rule %q: unknown stage %q (want one of %s)",
				raw, r.Stage, strings.Join(Stages, ", "))
		}
	case strings.HasPrefix(lhs, "p") && strings.HasSuffix(lhs, "_end_to_end"):
		pct, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimPrefix(lhs, "p"), "_end_to_end"), 64)
		if err != nil || pct <= 0 || pct > 100 {
			return Rule{}, fmt.Errorf("latency: rule %q: bad quantile %q", raw, lhs)
		}
		r.Kind = RuleQuantileE2E
		r.Q = pct / 100
	default:
		return Rule{}, fmt.Errorf("latency: rule %q: unknown metric %q", raw, lhs)
	}
	return r, nil
}

// ParseRules parses a rule set, rejecting duplicates.
func ParseRules(lines []string) ([]Rule, error) {
	out := make([]Rule, 0, len(lines))
	seen := make(map[string]bool, len(lines))
	for _, l := range lines {
		if strings.TrimSpace(l) == "" {
			continue
		}
		r, err := ParseRule(l)
		if err != nil {
			return nil, err
		}
		if seen[r.Raw] {
			return nil, fmt.Errorf("latency: duplicate rule %q", r.Raw)
		}
		seen[r.Raw] = true
		out = append(out, r)
	}
	return out, nil
}

func validStage(s string) bool {
	for _, st := range Stages {
		if s == st {
			return true
		}
	}
	return false
}

func parseBound(s string) (float64, error) {
	if v, ok := strings.CutSuffix(s, "%"); ok {
		f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
		return f / 100, err
	}
	if d, err := time.ParseDuration(s); err == nil {
		return d.Seconds(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// Observation is one watchdog evaluation input: the current
// *cumulative* cluster attribution state plus the instantaneous worst
// measured PR.
type Observation struct {
	E2E    HistSnapshot
	Stages map[string]HistSnapshot
	PRMax  float64

	// DropRate and RingOccP99 are the backpressure watchdog's inputs:
	// already-windowed fractions (the engine plane differences its own
	// cumulative counters between ticks). EngineWindow marks them valid —
	// false holds the previous state of drop_rate / ring_occupancy_p99
	// rules, exactly like an empty histogram window.
	DropRate     float64
	RingOccP99   float64
	EngineWindow bool
}

// Verdict is one rule's state after a watchdog tick.
type Verdict struct {
	Rule Rule `json:"rule"`
	// Value is the measured quantity this window (NaN when not
	// evaluated).
	Value float64 `json:"value"`
	// Breached reports the rule's current state.
	Breached bool `json:"breached"`
	// Transition is set on the tick the state flipped — the edge on
	// which slo.breach / slo.clear events are emitted.
	Transition bool `json:"transition,omitempty"`
	// Evaluated is false when the window carried no traffic for this
	// rule's metric; the previous state is held.
	Evaluated bool `json:"evaluated"`
}

// Watchdog evaluates a rule set against successive cumulative
// observations, differencing histograms between ticks so quantile and
// share rules see only the traffic of the last window. Safe for
// concurrent use.
type Watchdog struct {
	mu        sync.Mutex
	rules     []Rule
	prevE2E   HistSnapshot
	prevStage map[string]HistSnapshot
	state     map[string]bool
}

// NewWatchdog returns a watchdog over the given rules; every rule
// starts un-breached.
func NewWatchdog(rules []Rule) *Watchdog {
	return &Watchdog{
		rules:     append([]Rule(nil), rules...),
		prevStage: make(map[string]HistSnapshot),
		state:     make(map[string]bool),
	}
}

// Rules returns the watchdog's rule set.
func (w *Watchdog) Rules() []Rule {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]Rule(nil), w.rules...)
}

// Eval runs one watchdog tick and returns a verdict per rule, in rule
// order.
func (w *Watchdog) Eval(o Observation) []Verdict {
	w.mu.Lock()
	defer w.mu.Unlock()

	winE2E := o.E2E.Sub(w.prevE2E)
	w.prevE2E = o.E2E
	winStage := make(map[string]HistSnapshot, len(o.Stages))
	var stageTotal float64
	for st, cur := range o.Stages {
		win := cur.Sub(w.prevStage[st])
		w.prevStage[st] = cur
		winStage[st] = win
		stageTotal += win.Sum
	}

	out := make([]Verdict, 0, len(w.rules))
	for _, r := range w.rules {
		v := Verdict{Rule: r, Value: math.NaN()}
		switch r.Kind {
		case RulePRMax:
			v.Value = o.PRMax
			v.Evaluated = o.PRMax > 0
		case RuleQuantileE2E:
			if winE2E.Count > 0 {
				v.Value = winE2E.Quantile(r.Q)
				v.Evaluated = true
			}
		case RuleStageShare:
			if stageTotal > 0 {
				v.Value = winStage[r.Stage].Sum / stageTotal
				v.Evaluated = true
			}
		case RuleDropRate:
			if o.EngineWindow {
				v.Value = o.DropRate
				v.Evaluated = true
			}
		case RuleRingOcc:
			if o.EngineWindow {
				v.Value = o.RingOccP99
				v.Evaluated = true
			}
		}
		prev := w.state[r.Raw]
		if v.Evaluated {
			v.Breached = v.Value >= r.Bound
			v.Transition = v.Breached != prev
			w.state[r.Raw] = v.Breached
		} else {
			v.Breached = prev
		}
		out = append(out, v)
	}
	return out
}
