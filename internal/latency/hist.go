// Package latency is sspd's end-to-end latency attribution plane
// (DESIGN.md §11): it turns the sampled trace spans of internal/trace
// into a continuous, cluster-federated latency decomposition — per-stage
// and per-query log-bucket histograms, a *measured* Performance Ratio
// next to the engine-estimated one, and declarative SLO rules evaluated
// against the federated view.
//
// The foundation is Hist, a mergeable fixed-boundary log-bucket
// histogram. The existing metrics.Histogram is a sampling reservoir:
// fine for one entity's local quantiles, but reservoirs cannot be merged
// across entities without re-weighting bias. Hist trades per-sample
// exactness for a fixed global bucket scheme, which makes the merge
// operation a bucket-wise sum — exact, associative, and commutative — so
// any number of per-entity snapshots fold into one cluster histogram
// whose quantiles carry the same one-bucket error bound as each input.
package latency

import (
	"math"
	"sync"
)

// The fixed bucket scheme: boundaries are log-spaced at four buckets per
// decade from 1µs to 100s (inclusive), plus an implicit +Inf bucket.
// Every Hist in every process shares these boundaries, which is what
// makes bucket-wise merging exact. Four buckets per decade bounds any
// quantile estimate's relative error by the bucket ratio 10^(1/4) ≈ 1.78.
const (
	// bucketsPerDecade is the log resolution of the scheme.
	bucketsPerDecade = 4
	// minBound is the first upper boundary in seconds (1µs).
	minBound = 1e-6
	// numDecades spans 1µs..100s.
	numDecades = 8
	// NumBounds is the number of finite bucket boundaries.
	NumBounds = numDecades*bucketsPerDecade + 1
	// NumBuckets counts all buckets including the +Inf overflow bucket.
	NumBuckets = NumBounds + 1
)

// decadeSteps are the in-decade multipliers: near-log-even steps with
// ratios ≈1.8 that render as short `le` values (1.8e-06, 3.2e-06, ...).
var decadeSteps = [bucketsPerDecade]float64{1, 1.8, 3.2, 5.6}

// bounds holds the shared finite upper boundaries, ascending, in seconds.
var bounds = func() [NumBounds]float64 {
	var b [NumBounds]float64
	for i := range b {
		d, s := i/bucketsPerDecade, i%bucketsPerDecade
		b[i] = minBound * math.Pow(10, float64(d)) * decadeSteps[s]
	}
	return b
}()

// Bounds returns a copy of the scheme's finite upper boundaries in
// seconds. The registry renders them as `le` label values.
func Bounds() []float64 {
	out := make([]float64, NumBounds)
	copy(out[:], bounds[:])
	return out
}

// bucketIndex maps a sample in seconds to its bucket. Values at or below
// the smallest boundary land in bucket 0; values above the largest land
// in the +Inf bucket.
func bucketIndex(v float64) int {
	if v <= bounds[0] {
		return 0
	}
	if v > bounds[NumBounds-1] {
		return NumBounds // +Inf bucket
	}
	// log-position, then nudge across boundary rounding: float error in
	// Pow/Log10 can put an exact boundary value on either side, so probe
	// the neighbourhood instead of trusting the rounded index blindly.
	i := int(math.Ceil(math.Log10(v/minBound) * bucketsPerDecade))
	if i < 0 {
		i = 0
	}
	if i >= NumBounds {
		i = NumBounds - 1
	}
	for i > 0 && v <= bounds[i-1] {
		i--
	}
	for i < NumBounds-1 && v > bounds[i] {
		i++
	}
	return i
}

// Hist is a mergeable fixed-boundary log-bucket histogram of seconds.
// The zero value is ready to use; all methods are safe for concurrent
// use. Observations are cumulative — snapshot differencing (Sub) gives
// windowed views.
type Hist struct {
	mu     sync.Mutex
	counts [NumBuckets]uint64
	sum    float64
	count  uint64
}

// Observe records one sample in seconds. Negative samples (possible only
// through clock misuse; Go's monotonic clock never produces them between
// two reads in one process) clamp to zero.
func (h *Hist) Observe(seconds float64) {
	if seconds < 0 || math.IsNaN(seconds) {
		seconds = 0
	}
	i := bucketIndex(seconds)
	h.mu.Lock()
	h.counts[i]++
	h.count++
	h.sum += seconds
	h.mu.Unlock()
}

// Snapshot returns a point-in-time copy, internally consistent under one
// lock acquisition.
func (h *Hist) Snapshot() HistSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistSnapshot{Sum: h.sum, Count: h.count}
	s.Counts = append([]uint64(nil), h.counts[:]...)
	return s
}

// HistSnapshot is one histogram's state: per-bucket (non-cumulative)
// counts over the shared boundary scheme, with the +Inf bucket last.
// Snapshots are the federation's wire unit: they marshal to JSON inside
// coordinator digest rows and merge bucket-wise at the root.
type HistSnapshot struct {
	Counts []uint64 `json:"counts,omitempty"`
	Sum    float64  `json:"sum"`
	Count  uint64   `json:"count"`
}

// Merge folds other into s bucket-wise. Merging is exact: the result is
// identical to a histogram that observed both input streams directly.
// Snapshots from older schemes (different bucket count) are ignored
// rather than mis-binned.
func (s *HistSnapshot) Merge(other HistSnapshot) {
	if other.Count == 0 {
		return
	}
	if len(other.Counts) != NumBuckets {
		return
	}
	if len(s.Counts) != NumBuckets {
		s.Counts = make([]uint64, NumBuckets)
	}
	for i, c := range other.Counts {
		s.Counts[i] += c
	}
	s.Sum += other.Sum
	s.Count += other.Count
}

// Sub returns the windowed difference s − prev, clamping any bucket that
// went backwards (a federated row expiring and re-appearing) to zero.
func (s HistSnapshot) Sub(prev HistSnapshot) HistSnapshot {
	if len(s.Counts) != NumBuckets {
		return HistSnapshot{}
	}
	out := HistSnapshot{Counts: make([]uint64, NumBuckets)}
	for i, c := range s.Counts {
		var p uint64
		if len(prev.Counts) == NumBuckets {
			p = prev.Counts[i]
		}
		if c > p {
			out.Counts[i] = c - p
			out.Count += c - p
		}
	}
	if s.Sum > prev.Sum {
		out.Sum = s.Sum - prev.Sum
	}
	return out
}

// Mean returns the arithmetic mean of the observed samples (0 if empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (0 <= q <= 1) in seconds by linear
// interpolation inside the bucket holding the target rank. The estimate
// is always inside the true sample's bucket, so the relative error is
// bounded by the bucket ratio 10^(1/4) ≈ 1.78; samples beyond the last
// finite boundary report that boundary.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Counts) != NumBuckets {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count-1)
	var cum uint64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if float64(cum+c) > rank {
			if i >= NumBounds {
				return bounds[NumBounds-1]
			}
			lo := 0.0
			if i > 0 {
				lo = bounds[i-1]
			}
			hi := bounds[i]
			// Position of the rank within this bucket's count mass.
			frac := (rank - float64(cum)) / float64(c)
			return lo + frac*(hi-lo)
		}
		cum += c
	}
	return bounds[NumBounds-1]
}

// BucketOf returns the bucket index a value in seconds falls into —
// the unit of the "within one bucket" accuracy assertions in tests and
// the latency bench.
func BucketOf(seconds float64) int { return bucketIndex(seconds) }
