package latency

import (
	"sort"
	"sync"

	"sspd/internal/metrics"
	"sspd/internal/trace"
)

// MaxQueries bounds the Recorder's per-query histogram table. Results
// for queries beyond the cap still feed the per-stage and end-to-end
// histograms; only their per-query breakdown is dropped (and counted).
const MaxQueries = 512

// Recorder consumes completed trace spans (wired as the tracer's
// completion hook) and maintains the entity-local attribution state:
// one mergeable histogram per pipeline stage, one end-to-end histogram,
// and bounded per-query end-to-end + evaluation histograms from which
// the *measured* performance ratio is derived.
//
// All methods are safe for concurrent use; OnComplete is called from
// whatever goroutine recorded the terminal hop.
type Recorder struct {
	mu      sync.Mutex
	stages  map[string]*Hist
	e2e     Hist
	queries map[string]*queryLat

	// Completed counts spans decomposed and recorded; Incomplete counts
	// spans evicted from the trace ring before any terminal hop;
	// Unattributed counts terminal spans Decompose rejected (malformed
	// hop chains); Overflow counts results whose per-query breakdown was
	// dropped at MaxQueries.
	Completed    metrics.Counter
	Incomplete   metrics.Counter
	Unattributed metrics.Counter
	Overflow     metrics.Counter
}

type queryLat struct {
	e2e  Hist
	eval Hist

	mu sync.Mutex
	// stageSum accumulates per-stage seconds for this query's results;
	// divided by the e2e count it yields the waterfall segment means.
	stageSum map[string]float64
}

func (ql *queryLat) addStages(st map[string]float64) {
	ql.mu.Lock()
	if ql.stageSum == nil {
		ql.stageSum = make(map[string]float64, len(Stages))
	}
	for s, sec := range st {
		ql.stageSum[s] += sec
	}
	ql.mu.Unlock()
}

func (ql *queryLat) waterfall(count uint64) map[string]float64 {
	if count == 0 {
		return nil
	}
	ql.mu.Lock()
	defer ql.mu.Unlock()
	if len(ql.stageSum) == 0 {
		return nil
	}
	out := make(map[string]float64, len(ql.stageSum))
	for s, sum := range ql.stageSum {
		out[s] = sum / float64(count)
	}
	return out
}

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder {
	r := &Recorder{
		stages:  make(map[string]*Hist, len(Stages)),
		queries: make(map[string]*queryLat),
	}
	for _, st := range Stages {
		r.stages[st] = &Hist{}
	}
	return r
}

// OnComplete is the trace.CompleteFunc feeding the recorder. Result
// hops are decomposed and recorded; portal hops are skipped (the result
// hop that preceded them already was); eviction finalizations (hop < 0)
// are counted as incomplete journeys.
func (r *Recorder) OnComplete(s trace.Span, hop int) {
	if hop < 0 {
		r.Incomplete.Inc()
		return
	}
	if s.Hops[hop].Stage == trace.StagePortal {
		return
	}
	bd, ok := Decompose(s, hop)
	if !ok {
		r.Unattributed.Inc()
		return
	}
	r.Observe(bd)
}

// Observe folds one breakdown into the recorder.
func (r *Recorder) Observe(bd Breakdown) {
	r.mu.Lock()
	for st, sec := range bd.Stage {
		h, ok := r.stages[st]
		if !ok {
			h = &Hist{}
			r.stages[st] = h
		}
		h.Observe(sec)
	}
	r.e2e.Observe(bd.E2E)
	q, ok := r.queries[bd.Query]
	if !ok {
		if len(r.queries) >= MaxQueries {
			r.mu.Unlock()
			r.Completed.Inc()
			r.Overflow.Inc()
			return
		}
		q = &queryLat{}
		r.queries[bd.Query] = q
	}
	r.mu.Unlock()
	q.e2e.Observe(bd.E2E)
	q.eval.Observe(bd.Stage[StageEval])
	q.addStages(bd.Stage)
	r.Completed.Inc()
}

// Forget drops one query's histograms (called when a query is removed
// or migrated away).
func (r *Recorder) Forget(query string) {
	r.mu.Lock()
	delete(r.queries, query)
	r.mu.Unlock()
}

// QueryLatency is one query's measured latency summary.
type QueryLatency struct {
	Query string `json:"query"`
	// E2E is the measured publish → result distribution.
	E2E HistSnapshot `json:"e2e"`
	// EvalMean is the mean measured operator-evaluation time (seconds).
	EvalMean float64 `json:"eval_mean"`
	// PRMeasured is the measured performance ratio: mean end-to-end
	// delay over mean evaluation time — the span-derived counterpart of
	// the engine's estimated PR = d_k / p_k.
	PRMeasured float64 `json:"pr_measured"`
	// Stages is the query's latency waterfall: mean seconds spent in
	// each pipeline stage. The segment means telescope — they sum to the
	// query's mean end-to-end delay.
	Stages map[string]float64 `json:"stages,omitempty"`
}

// Attribution is a point-in-time snapshot of a recorder — the unit
// federated through the coordinator's stats rows. Stage and E2E
// snapshots are cumulative and mergeable bucket-wise.
type Attribution struct {
	// E2E is the all-queries end-to-end distribution.
	E2E HistSnapshot `json:"e2e"`
	// Stages maps each pipeline stage to its delta distribution.
	Stages map[string]HistSnapshot `json:"stages,omitempty"`
	// Queries holds per-query summaries, sorted by query ID.
	Queries []QueryLatency `json:"queries,omitempty"`
	// Incomplete counts sampled spans evicted before reaching a result.
	Incomplete int64 `json:"incomplete,omitempty"`
}

// Snapshot captures the recorder's full state.
func (r *Recorder) Snapshot() Attribution {
	r.mu.Lock()
	a := Attribution{
		E2E:        r.e2e.Snapshot(),
		Stages:     make(map[string]HistSnapshot, len(r.stages)),
		Incomplete: r.Incomplete.Value(),
	}
	for st, h := range r.stages {
		a.Stages[st] = h.Snapshot()
	}
	qs := make(map[string]*queryLat, len(r.queries))
	for q, ql := range r.queries {
		qs[q] = ql
	}
	r.mu.Unlock()

	a.Queries = make([]QueryLatency, 0, len(qs))
	for q, ql := range qs {
		e2e := ql.e2e.Snapshot()
		a.Queries = append(a.Queries, QueryLatency{
			Query:      q,
			E2E:        e2e,
			EvalMean:   ql.eval.Snapshot().Mean(),
			PRMeasured: prOf(ql),
			Stages:     ql.waterfall(e2e.Count),
		})
	}
	sort.Slice(a.Queries, func(i, j int) bool { return a.Queries[i].Query < a.Queries[j].Query })
	return a
}

// PRMeasured returns one query's measured performance ratio (0 when the
// query is unknown or has no evaluation time on record).
func (r *Recorder) PRMeasured(query string) float64 {
	r.mu.Lock()
	ql := r.queries[query]
	r.mu.Unlock()
	if ql == nil {
		return 0
	}
	return prOf(ql)
}

func prOf(ql *queryLat) float64 {
	eval := ql.eval.Snapshot().Mean()
	if eval <= 0 {
		return 0
	}
	return ql.e2e.Snapshot().Mean() / eval
}

// Merge folds another attribution snapshot into a (bucket-wise exact
// for the histograms; per-query rows are merged by query ID). Used by
// the coordinator root to answer cluster-wide percentiles.
func (a *Attribution) Merge(other Attribution) {
	a.E2E.Merge(other.E2E)
	if a.Stages == nil && len(other.Stages) > 0 {
		a.Stages = make(map[string]HistSnapshot, len(other.Stages))
	}
	for st, hs := range other.Stages {
		cur := a.Stages[st]
		cur.Merge(hs)
		a.Stages[st] = cur
	}
	a.Incomplete += other.Incomplete
	if len(other.Queries) == 0 {
		return
	}
	byQ := make(map[string]int, len(a.Queries))
	for i := range a.Queries {
		byQ[a.Queries[i].Query] = i
	}
	for _, q := range other.Queries {
		i, ok := byQ[q.Query]
		if !ok {
			a.Queries = append(a.Queries, q)
			continue
		}
		dst := &a.Queries[i]
		// Recombine the ratio and waterfall from count-weighted means so
		// a query whose fragments report from several entities keeps a
		// coherent PR and stage breakdown.
		te := dst.E2E.Count + q.E2E.Count
		if te > 0 {
			dst.EvalMean = (dst.EvalMean*float64(dst.E2E.Count) + q.EvalMean*float64(q.E2E.Count)) / float64(te)
			merged := make(map[string]float64, len(dst.Stages)+len(q.Stages))
			for st, m := range dst.Stages {
				merged[st] += m * float64(dst.E2E.Count)
			}
			for st, m := range q.Stages {
				merged[st] += m * float64(q.E2E.Count)
			}
			for st := range merged {
				merged[st] /= float64(te)
			}
			if len(merged) > 0 {
				dst.Stages = merged
			}
		}
		dst.E2E.Merge(q.E2E)
		if dst.EvalMean > 0 {
			dst.PRMeasured = dst.E2E.Mean() / dst.EvalMean
		}
	}
	sort.Slice(a.Queries, func(i, j int) bool { return a.Queries[i].Query < a.Queries[j].Query })
}
