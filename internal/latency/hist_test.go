package latency

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestBoundsAscending(t *testing.T) {
	b := Bounds()
	if len(b) != NumBounds {
		t.Fatalf("Bounds() len = %d, want %d", len(b), NumBounds)
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not ascending at %d: %g <= %g", i, b[i], b[i-1])
		}
	}
	if b[0] != 1e-6 || b[len(b)-1] != 100 {
		t.Fatalf("bounds span [%g, %g], want [1e-6, 100]", b[0], b[len(b)-1])
	}
}

func TestBucketIndexBoundaries(t *testing.T) {
	b := Bounds()
	for i, ub := range b {
		// A value exactly at an upper boundary belongs to that bucket;
		// epsilon above belongs to the next.
		if got := bucketIndex(ub); got != i {
			t.Fatalf("bucketIndex(%g) = %d, want %d", ub, got, i)
		}
		if got := bucketIndex(ub * 1.0000001); got != i+1 {
			t.Fatalf("bucketIndex(just above %g) = %d, want %d", ub, got, i+1)
		}
	}
	if got := bucketIndex(0); got != 0 {
		t.Fatalf("bucketIndex(0) = %d, want 0", got)
	}
	if got := bucketIndex(1e9); got != NumBounds {
		t.Fatalf("bucketIndex(huge) = %d, want +Inf bucket %d", got, NumBounds)
	}
}

// exactQuantile mirrors metrics.quantileOf on the full sample set.
func exactQuantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// adversarialDistributions exercise the shapes that break naive
// histograms: heavy tails, bimodal spikes straddling boundary edges,
// constants sitting exactly on boundaries, and near-zero floods.
func adversarialDistributions(r *rand.Rand, n int) map[string][]float64 {
	out := make(map[string][]float64)
	uni := make([]float64, n)
	for i := range uni {
		uni[i] = 1e-6 * math.Pow(10, r.Float64()*7) // log-uniform 1µs..10s
	}
	out["log_uniform"] = uni

	heavy := make([]float64, n)
	for i := range heavy {
		// Pareto-ish: most samples ~1ms, 1% out to tens of seconds.
		heavy[i] = 1e-3 / math.Pow(1-r.Float64(), 1.5) / 1e3
	}
	out["heavy_tail"] = heavy

	bim := make([]float64, n)
	for i := range bim {
		if r.Intn(2) == 0 {
			bim[i] = 9.9e-5 + r.Float64()*2e-6 // straddles the 1e-4 boundary
		} else {
			bim[i] = 0.3 + r.Float64()*0.01
		}
	}
	out["bimodal_boundary"] = bim

	konst := make([]float64, n)
	for i := range konst {
		konst[i] = 1e-3 // exactly on a boundary
	}
	out["constant_on_boundary"] = konst

	tiny := make([]float64, n)
	for i := range tiny {
		tiny[i] = r.Float64() * 2e-6 // underflow region
	}
	out["near_zero"] = tiny
	return out
}

// TestQuantileErrorBound: for every adversarial distribution, the
// histogram's quantile estimate must land in the same bucket as the
// exact sample quantile (the scheme's one-bucket accuracy contract),
// which bounds the relative error by the ≈1.8 bucket ratio.
func TestQuantileErrorBound(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for name, samples := range adversarialDistributions(r, 20000) {
		var h Hist
		for _, v := range samples {
			h.Observe(v)
		}
		snap := h.Snapshot()
		sorted := append([]float64(nil), samples...)
		sort.Float64s(sorted)
		for _, q := range []float64{0, 0.5, 0.9, 0.95, 0.99, 0.999, 1} {
			got := snap.Quantile(q)
			want := exactQuantile(sorted, q)
			gb, wb := BucketOf(got), BucketOf(want)
			if wb >= NumBounds { // beyond the last finite boundary
				wb = NumBounds - 1
			}
			if d := gb - wb; d < -1 || d > 1 {
				t.Errorf("%s: q=%g estimate %g (bucket %d) vs exact %g (bucket %d)",
					name, q, got, gb, want, wb)
			}
		}
		if snap.Count != uint64(len(samples)) {
			t.Errorf("%s: count %d != %d", name, snap.Count, len(samples))
		}
		var sum float64
		for _, v := range samples {
			sum += v
		}
		if math.Abs(snap.Sum-sum) > 1e-6*math.Abs(sum)+1e-12 {
			t.Errorf("%s: sum %g != %g", name, snap.Sum, sum)
		}
	}
}

// TestMergeIsExact: merging N per-entity snapshots must be bit-identical
// (in bucket space) to one histogram observing the union — the property
// reservoirs lack and the reason this type exists.
func TestMergeIsExact(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	const entities = 5
	var whole Hist
	parts := make([]*Hist, entities)
	for i := range parts {
		parts[i] = &Hist{}
	}
	for name, samples := range adversarialDistributions(r, 4000) {
		_ = name
		for i, v := range samples {
			whole.Observe(v)
			parts[i%entities].Observe(v)
		}
	}
	var merged HistSnapshot
	for _, p := range parts {
		merged.Merge(p.Snapshot())
	}
	want := whole.Snapshot()
	if merged.Count != want.Count {
		t.Fatalf("merged count %d != whole %d", merged.Count, want.Count)
	}
	for i := range want.Counts {
		if merged.Counts[i] != want.Counts[i] {
			t.Fatalf("bucket %d: merged %d != whole %d", i, merged.Counts[i], want.Counts[i])
		}
	}
	if math.Abs(merged.Sum-want.Sum) > 1e-6*want.Sum {
		t.Fatalf("merged sum %g != whole %g", merged.Sum, want.Sum)
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if m, w := merged.Quantile(q), want.Quantile(q); m != w {
			t.Fatalf("q=%g: merged %g != whole %g", q, m, w)
		}
	}
}

func TestSubWindows(t *testing.T) {
	var h Hist
	h.Observe(1e-3)
	h.Observe(2e-3)
	prev := h.Snapshot()
	h.Observe(0.5)
	h.Observe(0.6)
	win := h.Snapshot().Sub(prev)
	if win.Count != 2 {
		t.Fatalf("window count = %d, want 2", win.Count)
	}
	if q := win.Quantile(0.5); q < 0.3 || q > 1 {
		t.Fatalf("window p50 = %g, want ~0.5", q)
	}
	// Backwards snapshots (row expiry) clamp, never underflow.
	empty := prev.Sub(h.Snapshot())
	if empty.Count != 0 || empty.Sum != 0 {
		t.Fatalf("backwards Sub = %+v, want zero", empty)
	}
}

func TestMergeRejectsForeignScheme(t *testing.T) {
	var s HistSnapshot
	s.Merge(HistSnapshot{Counts: []uint64{1, 2, 3}, Sum: 1, Count: 6})
	if s.Count != 0 {
		t.Fatalf("merge of a foreign bucket scheme was not rejected: %+v", s)
	}
}

func TestObserveClampsNegative(t *testing.T) {
	var h Hist
	h.Observe(-1)
	h.Observe(math.NaN())
	s := h.Snapshot()
	if s.Count != 2 || s.Counts[0] != 2 || s.Sum != 0 {
		t.Fatalf("negative/NaN observe: %+v", s)
	}
}
