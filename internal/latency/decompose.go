package latency

import (
	"time"

	"sspd/internal/trace"
)

// Attribution stage names. Each names the pipeline segment *ending* at
// the corresponding trace hop: a tuple is published, relayed through
// the dissemination tree, delivered into an entity, queued for the
// delegation processor, queued for an operator fragment, and finally
// evaluated into a result.
const (
	// StageDissemination is publish → first relay: time spent inside the
	// dissemination tree before the tuple starts crossing links.
	StageDissemination = "dissemination"
	// StageNetwork is relay → local delivery: link transit (the segment
	// simnet faults inflate).
	StageNetwork = "network"
	// StageIngest is delivery → delegation processor: the entity's ingest
	// queue.
	StageIngest = "ingest"
	// StageEngine is delegation → operator fragment: the engine's
	// per-fragment queue.
	StageEngine = "engine"
	// StageEval is operator → result: operator evaluation itself.
	StageEval = "eval"
)

// Stages lists the attribution stages in pipeline order.
var Stages = []string{StageDissemination, StageNetwork, StageIngest, StageEngine, StageEval}

// Breakdown is one completed span decomposed into per-stage wall-clock
// deltas. The deltas telescope: their sum equals E2E exactly (same
// monotonic clock reads, no re-measurement).
type Breakdown struct {
	// Query is the query the result belonged to (the terminal hop's node).
	Query string `json:"query"`
	// Stream is the span's source stream.
	Stream string `json:"stream"`
	// E2E is publish → result in seconds.
	E2E float64 `json:"e2e"`
	// Stage maps each Stages entry to its share of E2E in seconds.
	Stage map[string]float64 `json:"stage"`
}

// Decompose splits a span completed at hop (which must be a StageResult
// hop — portal hops re-announce a result already decomposed, and
// eviction finalizations have no terminal) into per-stage deltas.
//
// A span's hop list interleaves the fan-out of every query the tuple
// matched, so the chain feeding *this* result is recovered by a backward
// walk: the latest operator hop before the result, the latest delegate
// hop before that operator, and so on back to the publish hop. A stage
// with no hop on the chain (e.g. no relay on a loopback delivery)
// contributes a zero delta and its time flows into the next present
// segment, keeping the telescoping sum intact.
func Decompose(s trace.Span, hop int) (Breakdown, bool) {
	if hop < 0 || hop >= len(s.Hops) || s.Hops[hop].Stage != trace.StageResult {
		return Breakdown{}, false
	}
	if s.Hops[0].Stage != trace.StagePublish {
		return Breakdown{}, false
	}
	pub := s.Hops[0].At
	res := s.Hops[hop].At

	// Backward walk: anchor each pipeline stage at the latest matching
	// hop before the previously anchored one.
	walk := []string{trace.StageOperator, trace.StageDelegate, trace.StageDeliver, trace.StageRelay}
	anchor := make(map[string]time.Time, len(walk))
	cur := hop
	for _, st := range walk {
		for i := cur - 1; i > 0; i-- {
			if s.Hops[i].Stage == st {
				anchor[st] = s.Hops[i].At
				cur = i
				break
			}
		}
	}

	// Fill forward: a missing anchor inherits the previous stage's time,
	// zeroing its delta without breaking the telescoping sum.
	prev := pub
	at := func(st string) time.Time {
		if t, ok := anchor[st]; ok {
			prev = t
		}
		return prev
	}
	relay := at(trace.StageRelay)
	deliver := at(trace.StageDeliver)
	delegate := at(trace.StageDelegate)
	operator := at(trace.StageOperator)

	d := func(from, to time.Time) float64 {
		v := to.Sub(from).Seconds()
		if v < 0 {
			return 0
		}
		return v
	}
	return Breakdown{
		Query:  s.Hops[hop].Node,
		Stream: s.Stream,
		E2E:    d(pub, res),
		Stage: map[string]float64{
			StageDissemination: d(pub, relay),
			StageNetwork:       d(relay, deliver),
			StageIngest:        d(deliver, delegate),
			StageEngine:        d(delegate, operator),
			StageEval:          d(operator, res),
		},
	}, true
}
