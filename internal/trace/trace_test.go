package trace

import (
	"sync"
	"testing"
)

func TestSamplingRate(t *testing.T) {
	tr := New(4, 64)
	sampled := 0
	for i := 0; i < 100; i++ {
		if tr.Sample("quotes", uint64(i), "src") != 0 {
			sampled++
		}
	}
	if sampled != 25 {
		t.Fatalf("1-in-4 sampling over 100 tuples: got %d spans, want 25", sampled)
	}
	if got := tr.Sampled.Value(); got != 25 {
		t.Fatalf("Sampled counter = %d, want 25", got)
	}
}

func TestDisabledTracerSamplesNothing(t *testing.T) {
	tr := New(0, 16)
	for i := 0; i < 10; i++ {
		if id := tr.Sample("quotes", uint64(i), "src"); id != 0 {
			t.Fatalf("disabled tracer returned span %d", id)
		}
	}
}

func TestRecordAndGet(t *testing.T) {
	tr := New(1, 16)
	id := tr.Sample("quotes", 7, "src:quotes")
	if id == 0 {
		t.Fatal("every=1 must sample")
	}
	tr.Record(id, StageRelay, "a:quotes")
	tr.Record(id, StageDeliver, "a:quotes")
	span, ok := tr.Get(id)
	if !ok {
		t.Fatal("span not found")
	}
	if span.Stream != "quotes" || span.Seq != 7 {
		t.Fatalf("span identity wrong: %+v", span)
	}
	stages := make([]string, 0, len(span.Hops))
	for _, h := range span.Hops {
		stages = append(stages, h.Stage)
	}
	want := []string{StagePublish, StageRelay, StageDeliver}
	if len(stages) != len(want) {
		t.Fatalf("hops = %v, want %v", stages, want)
	}
	for i := range want {
		if stages[i] != want[i] {
			t.Fatalf("hop %d = %q, want %q", i, stages[i], want[i])
		}
	}
	for i := 1; i < len(span.Hops); i++ {
		if span.Hops[i].At.Before(span.Hops[i-1].At) {
			t.Fatal("hop timestamps must be monotonic")
		}
	}
}

func TestRingEviction(t *testing.T) {
	tr := New(1, 4)
	var ids []SpanID
	for i := 0; i < 6; i++ {
		ids = append(ids, tr.Sample("s", uint64(i), "n"))
	}
	if tr.Len() != 4 {
		t.Fatalf("ring holds %d spans, want 4", tr.Len())
	}
	if _, ok := tr.Get(ids[0]); ok {
		t.Fatal("oldest span should have been evicted")
	}
	if _, ok := tr.Get(ids[5]); !ok {
		t.Fatal("newest span must be present")
	}
	if tr.Evicted.Value() != 2 {
		t.Fatalf("Evicted = %d, want 2", tr.Evicted.Value())
	}
	// Hops for evicted spans are counted, not recorded.
	tr.Record(ids[0], StageRelay, "n")
	if tr.DroppedHops.Value() != 1 {
		t.Fatalf("DroppedHops = %d, want 1", tr.DroppedHops.Value())
	}
	recent := tr.Recent(10)
	if len(recent) != 4 {
		t.Fatalf("Recent returned %d spans, want 4", len(recent))
	}
	if recent[0].ID != ids[5] || recent[3].ID != ids[2] {
		t.Fatalf("Recent order wrong: first=%d last=%d", recent[0].ID, recent[3].ID)
	}
}

func TestGlobalRecordFastPath(t *testing.T) {
	SetActive(nil)
	Record(0, StageRelay, "n")  // id==0: no-op regardless of active
	Record(99, StageRelay, "n") // no active tracer: no-op
	tr := New(1, 8)
	SetActive(tr)
	defer SetActive(nil)
	id := tr.Sample("s", 1, "n")
	Record(id, StageRelay, "n")
	span, _ := tr.Get(id)
	if len(span.Hops) != 2 {
		t.Fatalf("global Record did not reach active tracer: %d hops", len(span.Hops))
	}
}

func TestConcurrentTracer(t *testing.T) {
	tr := New(1, 128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				id := tr.Sample("s", uint64(i), "n")
				tr.Record(id, StageRelay, "r")
				tr.Record(id, StageDeliver, "d")
				tr.Get(id)
				if i%100 == 0 {
					tr.Recent(16)
				}
			}
		}(g)
	}
	wg.Wait()
	if tr.Sampled.Value() != 4000 {
		t.Fatalf("Sampled = %d, want 4000", tr.Sampled.Value())
	}
}
