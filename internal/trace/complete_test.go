package trace

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
)

func TestTruncatedSpanMarked(t *testing.T) {
	tr := New(1, 8)
	id := tr.Sample("s", 1, "src")
	for i := 0; i < maxHopsPerSpan+5; i++ {
		tr.Record(id, StageOperator, "frag")
	}
	span, ok := tr.Get(id)
	if !ok {
		t.Fatal("span missing")
	}
	if !span.Truncated {
		t.Fatal("span hit the hop cap but Truncated is not set")
	}
	if len(span.Hops) != maxHopsPerSpan {
		t.Fatalf("hop list = %d, want capped at %d", len(span.Hops), maxHopsPerSpan)
	}
	if tr.Truncated.Value() != 1 {
		t.Fatalf("Truncated counter = %d, want 1 (set once, not per dropped hop)", tr.Truncated.Value())
	}
	if tr.DroppedHops.Value() != 6 {
		t.Fatalf("DroppedHops = %d, want 6", tr.DroppedHops.Value())
	}
	if short := tr.Recent(1); len(short) != 1 || !short[0].Truncated {
		t.Fatal("Recent must carry the Truncated flag too")
	}
}

func TestCompletionHookOnTerminalHops(t *testing.T) {
	tr := New(1, 8)
	type done struct {
		span Span
		hop  int
	}
	var got []done
	tr.SetOnComplete(func(s Span, hop int) { got = append(got, done{s, hop}) })
	id := tr.Sample("s", 1, "src")
	tr.Record(id, StageRelay, "r")
	tr.Record(id, StageDeliver, "d")
	tr.Record(id, StageDelegate, "e")
	tr.Record(id, StageOperator, "f")
	if len(got) != 0 {
		t.Fatalf("hook fired on non-terminal hops: %d", len(got))
	}
	tr.Record(id, StageResult, "q1")
	tr.Record(id, StageOperator, "f2") // second query's fragment
	tr.Record(id, StageResult, "q2")
	tr.Record(id, StagePortal, "portal")
	if len(got) != 3 {
		t.Fatalf("hook fired %d times, want 3 (two results + portal)", len(got))
	}
	for _, d := range got {
		if d.span.ID != id {
			t.Fatalf("hook saw span %d, want %d", d.span.ID, id)
		}
		last := d.span.Hops[d.hop]
		if last.Stage != StageResult && last.Stage != StagePortal {
			t.Fatalf("hop index %d points at %q, want a terminal stage", d.hop, last.Stage)
		}
	}
	if got[0].span.Hops[got[0].hop].Node != "q1" || got[1].span.Hops[got[1].hop].Node != "q2" {
		t.Fatalf("result hops attribute wrong queries: %+v", got)
	}
	// The hook receives private copies: mutating one must not corrupt
	// the tracer's span.
	got[0].span.Hops[0].Node = "clobbered"
	if s, _ := tr.Get(id); s.Hops[0].Node != "src" {
		t.Fatal("hook span is not a private copy")
	}
}

func TestCompletionHookOnEviction(t *testing.T) {
	tr := New(1, 2)
	var evicted []Span
	var hops []int
	tr.SetOnComplete(func(s Span, hop int) {
		evicted = append(evicted, s)
		hops = append(hops, hop)
	})
	a := tr.Sample("s", 1, "src") // will be evicted incomplete
	tr.Record(a, StageRelay, "r")
	b := tr.Sample("s", 2, "src") // completed before eviction
	tr.Record(b, StageResult, "q")
	tr.Sample("s", 3, "src") // evicts a → hook(-1)
	tr.Sample("s", 4, "src") // evicts b → already completed, no hook
	if len(evicted) != 2 {
		t.Fatalf("hook fired %d times, want 2 (result + one incomplete eviction)", len(evicted))
	}
	if hops[0] < 0 || evicted[0].ID != b {
		t.Fatalf("first firing should be b's result hop: id=%d hop=%d", evicted[0].ID, hops[0])
	}
	if hops[1] != -1 || evicted[1].ID != a {
		t.Fatalf("eviction firing: id=%d hop=%d, want id=%d hop=-1", evicted[1].ID, hops[1], a)
	}
}

// TestTracerStress is the satellite-3 interleaving test: Sample, Record,
// Get, and Recent race against ring eviction and the completion hook
// under -race. Every hop's node encodes the span ID it was recorded
// against, so any hop landing on a recycled span ID is detected — in
// live spans, in Recent snapshots, and in every span the completion hook
// delivers.
func TestTracerStress(t *testing.T) {
	tr := New(1, 64) // small ring: constant eviction under 8 writers
	var bad atomic.Int64
	checkSpan := func(s Span) {
		for _, h := range s.Hops[1:] {
			if h.Node != strconv.FormatUint(uint64(s.ID), 10) {
				bad.Add(1)
			}
		}
	}
	tr.SetOnComplete(func(s Span, hop int) {
		if hop >= len(s.Hops) {
			bad.Add(1)
			return
		}
		checkSpan(s)
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				id := tr.Sample("s", uint64(i), "src")
				node := strconv.FormatUint(uint64(id), 10)
				tr.Record(id, StageRelay, node)
				tr.Record(id, StageDeliver, node)
				tr.Record(id, StageOperator, node)
				if i%3 == 0 {
					tr.Record(id, StageResult, node)
				}
				if s, ok := tr.Get(id); ok {
					checkSpan(s)
				}
				if i%64 == 0 {
					for _, s := range tr.Recent(16) {
						checkSpan(s)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for _, s := range tr.Recent(64) {
		checkSpan(s)
	}
	if n := bad.Load(); n != 0 {
		t.Fatalf("%d hops attributed to a recycled span ID", n)
	}
	// Accounting stays consistent: every sampled span was either still
	// buffered or evicted.
	if tr.Sampled.Value() != int64(tr.Len())+tr.Evicted.Value() {
		t.Fatalf("sampled %d != buffered %d + evicted %d",
			tr.Sampled.Value(), tr.Len(), tr.Evicted.Value())
	}
}

func ExampleTracer_SetOnComplete() {
	tr := New(1, 8)
	tr.SetOnComplete(func(s Span, hop int) {
		fmt.Printf("span %d done at %s\n", s.ID, s.Hops[hop].Stage)
	})
	id := tr.Sample("quotes", 1, "src:quotes")
	tr.Record(id, StageRelay, "e01:quotes")
	tr.Record(id, StageResult, "q001")
	// Output: span 1 done at result
}
