// Package trace implements lightweight per-tuple tracing: a sampled
// tuple carries a span ID (stream.Tuple.Span, propagated across the
// wire by the tuple codec) and every layer it crosses — source publish,
// dissemination relay, local delivery, delegation processor, operator
// fragment, result sink — records a timestamped hop against that span.
//
// Completed spans live in a bounded ring buffer queryable by ID (the
// portal serves them at GET /traces/{id}).
//
// The hot path is engineered for "off by default": an untraced tuple has
// Span == 0, and the package-level Record fast-paths on that with a
// single predictable branch before touching any shared state, so tracing
// costs nothing measurable when sampling is disabled.
package trace

import (
	"sync"
	"sync/atomic"
	"time"

	"sspd/internal/metrics"
)

// SpanID identifies one traced tuple's journey. Zero means "not traced".
type SpanID uint64

// Hop stages recorded by the instrumented layers.
const (
	// StagePublish marks the span's creation at a stream source.
	StagePublish = "publish"
	// StageRelay marks arrival at a dissemination-tree relay.
	StageRelay = "relay"
	// StageDeliver marks local delivery from a relay into an entity.
	StageDeliver = "deliver"
	// StageDelegate marks the entity's delegation processor fan-out.
	StageDelegate = "delegate"
	// StageOperator marks a query fragment receiving the tuple.
	StageOperator = "operator"
	// StageResult marks a final result leaving the entity.
	StageResult = "result"
	// StagePortal marks the result reaching a portal's result buffer.
	StagePortal = "portal"
)

// Hop is one timestamped step of a traced tuple.
type Hop struct {
	// Stage is one of the Stage* constants.
	Stage string `json:"stage"`
	// Node names where the hop happened (relay endpoint, processor,
	// fragment, or query ID depending on the stage).
	Node string `json:"node"`
	// At is the wall-clock time of the hop.
	At time.Time `json:"at"`
}

// Span is one traced tuple's recorded journey.
type Span struct {
	ID     SpanID    `json:"id"`
	Stream string    `json:"stream"`
	Seq    uint64    `json:"seq"`
	Start  time.Time `json:"start"`
	Hops   []Hop     `json:"hops"`
	// Truncated is set when the span hit maxHopsPerSpan and later hops
	// were dropped: the hop list is a prefix of the real journey, not
	// the whole of it. Surfaced in /traces/{id} JSON so a partial trace
	// is never mistaken for a complete one.
	Truncated bool `json:"truncated,omitempty"`

	// completed tracks whether a terminal hop (result/portal) has fired
	// the tracer's completion hook for this span; eviction then skips
	// its partial-span callback. Internal bookkeeping, not serialized.
	completed bool
}

// maxHopsPerSpan bounds a single span's hop list; a tuple fanning out to
// very many queries stops recording rather than growing without bound.
const maxHopsPerSpan = 256

// CompleteFunc receives a finished span from the tracer's completion
// hook. hop is the index of the terminal hop (StageResult or
// StagePortal) that completed the span, or -1 when the span is being
// finalized by ring eviction without ever reaching a terminal stage.
// The span is a private copy; the callback runs outside the tracer's
// lock and may call back into the tracer freely, but must not block:
// it runs on whatever goroutine recorded the hop.
type CompleteFunc func(s Span, hop int)

// Tracer samples tuples at a configurable rate and stores their spans in
// a bounded ring buffer. All methods are safe for concurrent use.
type Tracer struct {
	every uint64 // sample 1 in every tuples; every==1 traces all
	tick  atomic.Uint64
	next  atomic.Uint64 // span ID allocator (first ID is 1)

	mu       sync.Mutex
	slots    []Span
	index    map[SpanID]int
	head     int // next slot to overwrite
	complete CompleteFunc

	// Sampled counts spans started; Evicted counts spans overwritten by
	// ring wraparound; DroppedHops counts hops that arrived for spans no
	// longer (or never) in the buffer; Truncated counts spans that hit
	// the per-span hop cap (each also carries Span.Truncated).
	Sampled     metrics.Counter
	Evicted     metrics.Counter
	Hops        metrics.Counter
	DroppedHops metrics.Counter
	Truncated   metrics.Counter
}

// DefaultCapacity is the span ring size used when capacity <= 0.
const DefaultCapacity = 1024

// New returns a tracer sampling one in `every` tuples (every <= 0
// disables sampling entirely; every == 1 traces every tuple), keeping
// the most recent `capacity` spans.
func New(every, capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	t := &Tracer{
		slots: make([]Span, 0, capacity),
		index: make(map[SpanID]int),
	}
	if every > 0 {
		t.every = uint64(every)
	}
	return t
}

// SampleEvery returns the sampling divisor (0 = disabled).
func (t *Tracer) SampleEvery() int { return int(t.every) }

// SetOnComplete installs the span-completion hook (nil clears it). The
// hook fires once per terminal hop recorded (StageResult and
// StagePortal — a tuple fanning out to several queries completes once
// per result), and once at ring eviction for spans that never reached a
// terminal stage (hop == -1), so every sampled span is eventually
// surfaced exactly as far as it got. The latency attribution plane is
// the intended consumer.
func (t *Tracer) SetOnComplete(fn CompleteFunc) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.complete = fn
	t.mu.Unlock()
}

// Sample decides whether to trace the next tuple. It returns a fresh
// span ID recording a StagePublish hop at node, or 0 when the tuple is
// not sampled.
func (t *Tracer) Sample(streamName string, seq uint64, node string) SpanID {
	if t == nil || t.every == 0 {
		return 0
	}
	if t.tick.Add(1)%t.every != 0 {
		return 0
	}
	id := SpanID(t.next.Add(1))
	now := time.Now()
	t.Sampled.Inc()
	t.mu.Lock()
	span := Span{
		ID:     id,
		Stream: streamName,
		Seq:    seq,
		Start:  now,
		Hops:   []Hop{{Stage: StagePublish, Node: node, At: now}},
	}
	var evicted Span
	var finalize CompleteFunc
	if len(t.slots) < cap(t.slots) {
		t.index[id] = len(t.slots)
		t.slots = append(t.slots, span)
	} else {
		old := t.slots[t.head]
		delete(t.index, old.ID)
		t.Evicted.Inc()
		// A span leaving the ring without ever reaching a terminal stage
		// is finalized as-is: the completion hook still sees the partial
		// journey (hop == -1) instead of it silently vanishing.
		if !old.completed && t.complete != nil {
			evicted, finalize = old, t.complete
		}
		t.slots[t.head] = span
		t.index[id] = t.head
		t.head = (t.head + 1) % cap(t.slots)
	}
	t.mu.Unlock()
	if finalize != nil {
		finalize(copySpan(evicted), -1)
	}
	return id
}

// Record appends a hop to a live span. Unknown spans (evicted, or from a
// tracer restarted mid-flight) are counted and dropped. A span that hits
// maxHopsPerSpan is marked Truncated (once) so readers can tell a capped
// trace from a complete one. Terminal hops (StageResult, StagePortal)
// fire the completion hook, outside the tracer's lock.
func (t *Tracer) Record(id SpanID, stage, node string) {
	if t == nil || id == 0 {
		return
	}
	now := time.Now()
	t.mu.Lock()
	idx, ok := t.index[id]
	if !ok {
		t.mu.Unlock()
		t.DroppedHops.Inc()
		return
	}
	if len(t.slots[idx].Hops) >= maxHopsPerSpan {
		first := !t.slots[idx].Truncated
		t.slots[idx].Truncated = true
		t.mu.Unlock()
		t.DroppedHops.Inc()
		if first {
			t.Truncated.Inc()
		}
		return
	}
	t.slots[idx].Hops = append(t.slots[idx].Hops, Hop{Stage: stage, Node: node, At: now})
	var done Span
	var hop int
	var fire CompleteFunc
	if (stage == StageResult || stage == StagePortal) && t.complete != nil {
		t.slots[idx].completed = true
		done = copySpan(t.slots[idx])
		hop = len(done.Hops) - 1
		fire = t.complete
	}
	t.mu.Unlock()
	t.Hops.Inc()
	if fire != nil {
		fire(done, hop)
	}
}

// Get returns a copy of one span.
func (t *Tracer) Get(id SpanID) (Span, bool) {
	if t == nil {
		return Span{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	idx, ok := t.index[id]
	if !ok {
		return Span{}, false
	}
	return copySpan(t.slots[idx]), true
}

// Recent returns copies of up to n spans, most recently started first.
func (t *Tracer) Recent(n int) []Span {
	if t == nil || n <= 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	total := len(t.slots)
	if n > total {
		n = total
	}
	out := make([]Span, 0, n)
	// The most recent insertion sits just before head once the ring is
	// full, or at the end while it is still filling.
	newest := total - 1
	if total == cap(t.slots) {
		newest = (t.head - 1 + total) % total
	}
	for i := 0; i < n; i++ {
		out = append(out, copySpan(t.slots[(newest-i+total)%total]))
	}
	return out
}

// Len reports how many spans are buffered.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.slots)
}

func copySpan(s Span) Span {
	hops := make([]Hop, len(s.Hops))
	copy(hops, s.Hops)
	s.Hops = hops
	return s
}

// active is the process-wide recorder used by instrumentation points
// that have no natural handle to a tracer (relays, entity processors).
// Exactly one federation's tracer is active at a time; installing is the
// federation's EnableTracing, clearing happens on Close.
var active atomic.Pointer[Tracer]

// SetActive installs t as the process-wide recorder (nil clears it).
func SetActive(t *Tracer) {
	if t == nil {
		active.Store(nil)
		return
	}
	active.Store(t)
}

// Active returns the installed recorder, or nil.
func Active() *Tracer { return active.Load() }

// Record appends a hop to the active tracer. The id == 0 fast path makes
// this free on untraced tuples — no atomic load, no time lookup.
func Record(id SpanID, stage, node string) {
	if id == 0 {
		return
	}
	if t := active.Load(); t != nil {
		t.Record(id, stage, node)
	}
}
