package querygraph

import (
	"fmt"
	"math/rand"
	"testing"
)

// randomGraph builds a reproducible query graph with clustered interest:
// vertices fall into nClusters communities with heavy intra-cluster edges
// and light inter-cluster edges — the structure real query workloads
// exhibit (many clients watching the same symbols).
func randomGraph(rng *rand.Rand, n, nClusters int) *Graph {
	g := New()
	cluster := make(map[VertexID]int, n)
	for i := 0; i < n; i++ {
		id := VertexID(fmt.Sprintf("q%03d", i))
		g.AddVertex(id, 1+rng.Float64()*9)
		cluster[id] = i % nClusters
	}
	vs := g.Vertices()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			a, b := vs[i], vs[j]
			if cluster[a] == cluster[b] {
				if rng.Float64() < 0.5 {
					g.SetEdge(a, b, 1+rng.Float64()*9)
				}
			} else if rng.Float64() < 0.05 {
				g.SetEdge(a, b, rng.Float64())
			}
		}
	}
	return g
}

func assertValidPartitioning(t *testing.T, g *Graph, p Partitioning, k int, eps float64) {
	t.Helper()
	if len(p) != g.NumVertices() {
		t.Fatalf("assignment covers %d of %d vertices", len(p), g.NumVertices())
	}
	for v, part := range p {
		if part < 0 || part >= k {
			t.Fatalf("vertex %s assigned to %d (k=%d)", v, part, k)
		}
	}
	weights := g.PartitionWeights(p, k)
	maxLoad := (1 + eps) * g.TotalVertexWeight() / float64(k)
	// Allow a single oversized vertex to breach the cap (unavoidable).
	heaviest := 0.0
	for _, v := range g.Vertices() {
		if w := g.VertexWeight(v); w > heaviest {
			heaviest = w
		}
	}
	for i, w := range weights {
		if w > maxLoad+heaviest {
			t.Fatalf("partition %d weight %v far exceeds cap %v", i, w, maxLoad)
		}
	}
}

func TestPartitionFindsFigure2PlanB(t *testing.T) {
	g := Figure2Graph()
	p, err := Partition(g, Options{K: 2, Epsilon: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	assertValidPartitioning(t, g, p, 2, 0.2)
	// The optimal balanced cut of the Figure 2 graph is plan (b)'s 3.
	if cut := g.EdgeCut(p); cut > 3 {
		t.Fatalf("partitioner cut = %v, want <= 3 (plan b)", cut)
	}
	// And Q3/Q5 must share a side even though they share no edge.
	if p["Q3"] != p["Q5"] {
		t.Error("partitioner separated Q3 and Q5 (missed the paper's point)")
	}
}

func TestPartitionErrorsAndEdgeCases(t *testing.T) {
	g := Figure2Graph()
	if _, err := Partition(g, Options{K: 0}); err == nil {
		t.Error("K=0 accepted")
	}
	p, err := Partition(New(), Options{K: 3})
	if err != nil || len(p) != 0 {
		t.Errorf("empty graph: %v, %v", p, err)
	}
	// K=1 puts everything in partition 0.
	one, err := Partition(g, Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	for v, part := range one {
		if part != 0 {
			t.Fatalf("K=1 assigned %s to %d", v, part)
		}
	}
	if g.EdgeCut(one) != 0 {
		t.Error("K=1 has non-zero cut")
	}
	// More partitions than vertices still works.
	many, err := Partition(g, Options{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	assertValidPartitioning(t, g, many, 10, 0.2)
}

func TestPartitionOversizedVertex(t *testing.T) {
	g := New()
	g.AddVertex("huge", 100)
	g.AddVertex("a", 1)
	g.AddVertex("b", 1)
	p, err := Partition(g, Options{K: 2, Epsilon: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 3 {
		t.Fatal("vertices unassigned")
	}
	// The small vertices should share the non-huge partition.
	if p["a"] == p["huge"] || p["b"] == p["huge"] {
		t.Errorf("small vertices packed with oversized one: %v", p)
	}
}

func TestPartitionBeatsLoadOnlyOnCut(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 5; trial++ {
		g := randomGraph(rng, 60, 4)
		k := 4
		ours, err := Partition(g, Options{K: k})
		if err != nil {
			t.Fatal(err)
		}
		loadOnly, err := PartitionLoadOnly(g, k)
		if err != nil {
			t.Fatal(err)
		}
		assertValidPartitioning(t, g, ours, k, 0.2)
		if cutOurs, cutLoad := g.EdgeCut(ours), g.EdgeCut(loadOnly); cutOurs >= cutLoad {
			t.Errorf("trial %d: interest-aware cut %v not better than load-only %v",
				trial, cutOurs, cutLoad)
		}
	}
}

func TestSimilarityOnlyIgnoresBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 40, 2) // two big communities
	k := 4
	sim, err := PartitionSimilarityOnly(g, k)
	if err != nil {
		t.Fatal(err)
	}
	ours, err := Partition(g, Options{K: k})
	if err != nil {
		t.Fatal(err)
	}
	simBal := Imbalance(g.PartitionWeights(sim, k))
	oursBal := Imbalance(g.PartitionWeights(ours, k))
	// Similarity clustering collapses into the two communities, leaving
	// ~2 partitions nearly empty — far worse balance than ours.
	if simBal <= oursBal {
		t.Errorf("similarity-only balance %v unexpectedly better than ours %v", simBal, oursBal)
	}
}

func TestPartitionLoadOnlyBalances(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 50, 5)
	p, err := PartitionLoadOnly(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := Imbalance(g.PartitionWeights(p, 5)); got > 1.3 {
		t.Errorf("LPT imbalance = %v", got)
	}
	if _, err := PartitionLoadOnly(g, 0); err == nil {
		t.Error("K=0 accepted")
	}
}

func TestPartitionSimilarityOnlyErrorsAndDisconnected(t *testing.T) {
	if _, err := PartitionSimilarityOnly(New(), 0); err == nil {
		t.Error("K=0 accepted")
	}
	// Disconnected graph with more components than k: lightest clusters
	// merge until k remain.
	g := New()
	for i := 0; i < 6; i++ {
		g.AddVertex(VertexID(fmt.Sprintf("v%d", i)), float64(i+1))
	}
	p, err := PartitionSimilarityOnly(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	parts := map[int]bool{}
	for _, part := range p {
		parts[part] = true
	}
	if len(parts) != 2 {
		t.Errorf("clusters = %d, want 2", len(parts))
	}
}

func TestPartitionDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomGraph(rng, 30, 3)
	p1, err := Partition(g, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Partition(g, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	for v := range p1 {
		if p1[v] != p2[v] {
			t.Fatalf("nondeterministic assignment for %s", v)
		}
	}
}

func TestRefinementImprovesGreedy(t *testing.T) {
	// A graph where greedy growth alone is suboptimal: a chain with a
	// heavy middle edge. Refinement must not increase the cut.
	rng := rand.New(rand.NewSource(11))
	g := randomGraph(rng, 40, 4)
	noRefine := g.Clone()
	_ = noRefine
	p, err := Partition(g, Options{K: 4, RefineRounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	pMore, err := Partition(g, Options{K: 4, RefineRounds: 16})
	if err != nil {
		t.Fatal(err)
	}
	if g.EdgeCut(pMore) > g.EdgeCut(p)+1e-9 {
		t.Errorf("more refinement worsened cut: %v > %v", g.EdgeCut(pMore), g.EdgeCut(p))
	}
}
