// Package querygraph implements the inter-entity load-distribution
// optimizer of Section 3.2.2: queries form a weighted graph (vertex
// weight = query load, edge weight = shared data-interest arrival rate in
// bytes/second) and allocation is balanced k-way graph partitioning
// minimizing the weighted edge cut. The package provides the graph model,
// a partitioner (greedy growth + Kernighan–Lin-style refinement), and the
// three runtime repartitioning strategies the paper contrasts: full
// Scratch repartitioning, load-only GreedyCut offloading, and the Hybrid
// in between.
package querygraph

import (
	"fmt"
	"sort"
)

// VertexID identifies a query in the graph.
type VertexID string

// Graph is a weighted undirected graph. It is not safe for concurrent
// mutation; the allocator serializes access.
type Graph struct {
	weights map[VertexID]float64
	// adj[a][b] is the weight of edge {a,b}; stored symmetrically.
	adj map[VertexID]map[VertexID]float64
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		weights: make(map[VertexID]float64),
		adj:     make(map[VertexID]map[VertexID]float64),
	}
}

// AddVertex inserts or updates a vertex with the given load weight.
func (g *Graph) AddVertex(id VertexID, weight float64) {
	if weight < 0 {
		weight = 0
	}
	g.weights[id] = weight
	if g.adj[id] == nil {
		g.adj[id] = make(map[VertexID]float64)
	}
}

// RemoveVertex deletes a vertex and its incident edges. Removing an
// absent vertex is a no-op.
func (g *Graph) RemoveVertex(id VertexID) {
	if _, ok := g.weights[id]; !ok {
		return
	}
	for nb := range g.adj[id] {
		delete(g.adj[nb], id)
	}
	delete(g.adj, id)
	delete(g.weights, id)
}

// Has reports whether the vertex exists.
func (g *Graph) Has(id VertexID) bool {
	_, ok := g.weights[id]
	return ok
}

// SetEdge sets the weight of the undirected edge {a,b}. A non-positive
// weight removes the edge. Both endpoints must exist.
func (g *Graph) SetEdge(a, b VertexID, weight float64) error {
	if a == b {
		return fmt.Errorf("querygraph: self-edge on %q", a)
	}
	if !g.Has(a) {
		return fmt.Errorf("querygraph: unknown vertex %q", a)
	}
	if !g.Has(b) {
		return fmt.Errorf("querygraph: unknown vertex %q", b)
	}
	if weight <= 0 {
		delete(g.adj[a], b)
		delete(g.adj[b], a)
		return nil
	}
	g.adj[a][b] = weight
	g.adj[b][a] = weight
	return nil
}

// EdgeWeight returns the weight of edge {a,b} (0 when absent).
func (g *Graph) EdgeWeight(a, b VertexID) float64 {
	return g.adj[a][b]
}

// VertexWeight returns a vertex's load weight (0 when absent).
func (g *Graph) VertexWeight(id VertexID) float64 {
	return g.weights[id]
}

// SetVertexWeight updates a vertex's load weight if it exists.
func (g *Graph) SetVertexWeight(id VertexID, weight float64) {
	if g.Has(id) {
		if weight < 0 {
			weight = 0
		}
		g.weights[id] = weight
	}
}

// Vertices returns all vertex IDs in sorted order (deterministic
// iteration matters for reproducible partitioning).
func (g *Graph) Vertices() []VertexID {
	out := make([]VertexID, 0, len(g.weights))
	for id := range g.weights {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return len(g.weights) }

// Neighbors calls fn for each neighbor of id with the edge weight, in
// sorted neighbor order.
func (g *Graph) Neighbors(id VertexID, fn func(nb VertexID, w float64)) {
	nbs := make([]VertexID, 0, len(g.adj[id]))
	for nb := range g.adj[id] {
		nbs = append(nbs, nb)
	}
	sort.Slice(nbs, func(i, j int) bool { return nbs[i] < nbs[j] })
	for _, nb := range nbs {
		fn(nb, g.adj[id][nb])
	}
}

// TotalVertexWeight returns the sum of all vertex weights.
func (g *Graph) TotalVertexWeight() float64 {
	sum := 0.0
	for _, w := range g.weights {
		sum += w
	}
	return sum
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	out := New()
	for id, w := range g.weights {
		out.AddVertex(id, w)
	}
	for a, nbs := range g.adj {
		for b, w := range nbs {
			if a < b {
				out.adj[a][b] = w
				out.adj[b][a] = w
			}
		}
	}
	return out
}

// Partitioning assigns each vertex to a partition index in [0, k).
type Partitioning map[VertexID]int

// Clone returns a copy of the assignment.
func (p Partitioning) Clone() Partitioning {
	out := make(Partitioning, len(p))
	for v, part := range p {
		out[v] = part
	}
	return out
}

// EdgeCut returns the total weight of edges whose endpoints lie in
// different partitions — the duplicate dissemination cost the paper
// minimizes.
func (g *Graph) EdgeCut(p Partitioning) float64 {
	// Sorted iteration makes the floating-point summation order (and so
	// the exact result) deterministic, which keeps tie-breaking in the
	// partitioners reproducible.
	cut := 0.0
	for _, a := range g.Vertices() {
		g.Neighbors(a, func(b VertexID, w float64) {
			if a < b && p[a] != p[b] {
				cut += w
			}
		})
	}
	return cut
}

// PartitionWeights returns the total vertex weight per partition.
func (g *Graph) PartitionWeights(p Partitioning, k int) []float64 {
	out := make([]float64, k)
	for _, v := range g.Vertices() {
		if part, ok := p[v]; ok && part >= 0 && part < k {
			out[part] += g.weights[v]
		}
	}
	return out
}

// Imbalance returns max(weights)/avg(weights); 1.0 is perfect balance.
// An empty or zero-weight input returns 1.
func Imbalance(weights []float64) float64 {
	if len(weights) == 0 {
		return 1
	}
	sum, max := 0.0, 0.0
	for _, w := range weights {
		sum += w
		if w > max {
			max = w
		}
	}
	if sum == 0 {
		return 1
	}
	avg := sum / float64(len(weights))
	return max / avg
}

// Diff counts the vertices whose assignment differs between two
// partitionings — the number of query migrations a repartitioning incurs.
func Diff(old, new Partitioning) int {
	n := 0
	for v, p := range new {
		if op, ok := old[v]; !ok || op != p {
			n++
		}
	}
	return n
}

// Figure2Graph builds the 5-query example of the paper's Figure 2: the
// weighted query graph for which allocating {Q3,Q4} to one entity (plan
// a) duplicates 8 bytes/second of dissemination while allocating {Q3,Q5}
// (plan b) duplicates only 3 — even though Q3 and Q5 share no data
// interest at all. Plan (a) and (b) have identical load balance.
func Figure2Graph() *Graph {
	g := New()
	g.AddVertex("Q1", 3)
	g.AddVertex("Q2", 3)
	g.AddVertex("Q3", 5)
	g.AddVertex("Q4", 2)
	g.AddVertex("Q5", 2)
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	must(g.SetEdge("Q1", "Q2", 5))
	must(g.SetEdge("Q2", "Q4", 7))
	must(g.SetEdge("Q3", "Q4", 2))
	must(g.SetEdge("Q4", "Q5", 1))
	return g
}

// Figure2PlanA returns the paper's plan (a): {Q3,Q4} vs the rest.
func Figure2PlanA() Partitioning {
	return Partitioning{"Q3": 0, "Q4": 0, "Q1": 1, "Q2": 1, "Q5": 1}
}

// Figure2PlanB returns the paper's plan (b): {Q3,Q5} vs the rest.
func Figure2PlanB() Partitioning {
	return Partitioning{"Q3": 0, "Q5": 0, "Q1": 1, "Q2": 1, "Q4": 1}
}
