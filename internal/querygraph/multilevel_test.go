package querygraph

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestMultilevelBasics(t *testing.T) {
	g := Figure2Graph()
	p, err := PartitionMultilevel(g, Options{K: 2, Epsilon: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	assertValidPartitioning(t, g, p, 2, 0.2)
	if cut := g.EdgeCut(p); cut > 3 {
		t.Errorf("multilevel cut on Figure 2 = %v, want <= 3", cut)
	}
	if _, err := PartitionMultilevel(g, Options{K: 0}); err == nil {
		t.Error("K=0 accepted")
	}
	empty, err := PartitionMultilevel(New(), Options{K: 3})
	if err != nil || len(empty) != 0 {
		t.Errorf("empty graph: %v/%v", empty, err)
	}
	one, err := PartitionMultilevel(g, Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, part := range one {
		if part != 0 {
			t.Fatal("K=1 not all zero")
		}
	}
}

func TestMultilevelQualityOnClusteredGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 3; trial++ {
		g := randomGraph(rng, 120, 6)
		k := 6
		ml, err := PartitionMultilevel(g, Options{K: k})
		if err != nil {
			t.Fatal(err)
		}
		assertValidPartitioning(t, g, ml, k, 0.2)
		flat, err := Partition(g, Options{K: k})
		if err != nil {
			t.Fatal(err)
		}
		mlCut, flatCut := g.EdgeCut(ml), g.EdgeCut(flat)
		// Multilevel must stay within 1.5x of flat (it typically wins).
		if mlCut > flatCut*1.5 {
			t.Errorf("trial %d: multilevel cut %v far above flat %v", trial, mlCut, flatCut)
		}
		loadOnly, err := PartitionLoadOnly(g, k)
		if err != nil {
			t.Fatal(err)
		}
		if mlCut >= g.EdgeCut(loadOnly) {
			t.Errorf("trial %d: multilevel cut %v not below load-only %v",
				trial, mlCut, g.EdgeCut(loadOnly))
		}
	}
}

func TestMultilevelDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	g := randomGraph(rng, 80, 4)
	a, err := PartitionMultilevel(g, Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := PartitionMultilevel(g, Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("nondeterministic at %s", v)
		}
	}
}

func TestMultilevelEdgelessGraph(t *testing.T) {
	g := New()
	for i := 0; i < 50; i++ {
		g.AddVertex(VertexID(fmt.Sprintf("v%02d", i)), float64(1+i%5))
	}
	p, err := PartitionMultilevel(g, Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	assertValidPartitioning(t, g, p, 4, 0.2)
}

func TestMultilevelScalesBetterThanFlat(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison")
	}
	rng := rand.New(rand.NewSource(55))
	g := randomGraph(rng, 600, 12)
	k := 12
	start := time.Now()
	ml, err := PartitionMultilevel(g, Options{K: k})
	if err != nil {
		t.Fatal(err)
	}
	mlTime := time.Since(start)
	start = time.Now()
	flat, err := Partition(g, Options{K: k})
	if err != nil {
		t.Fatal(err)
	}
	flatTime := time.Since(start)
	t.Logf("n=600: multilevel %v cut=%.0f; flat %v cut=%.0f",
		mlTime, g.EdgeCut(ml), flatTime, g.EdgeCut(flat))
	// Quality parity is the hard requirement; speed is logged.
	if g.EdgeCut(ml) > g.EdgeCut(flat)*1.5 {
		t.Errorf("multilevel quality regressed: %v vs %v", g.EdgeCut(ml), g.EdgeCut(flat))
	}
}

func TestCoarsenPreservesWeightAndShrinks(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 60, 4)
	res := coarsen(g, 0)
	if res == nil {
		t.Fatal("coarsen found nothing on a dense graph")
	}
	if res.graph.NumVertices() >= g.NumVertices() {
		t.Errorf("coarse graph not smaller: %d vs %d",
			res.graph.NumVertices(), g.NumVertices())
	}
	// Total vertex weight is conserved (up to float summation order).
	if got, want := res.graph.TotalVertexWeight(), g.TotalVertexWeight(); math.Abs(got-want) > 1e-9 {
		t.Errorf("weight %v != %v", got, want)
	}
	// Every original vertex maps to an existing super-vertex.
	for _, v := range g.Vertices() {
		super, ok := res.mapping[v]
		if !ok || !res.graph.Has(super) {
			t.Fatalf("vertex %s unmapped", v)
		}
	}
	// Edgeless graph cannot coarsen.
	iso := New()
	iso.AddVertex("a", 1)
	iso.AddVertex("b", 1)
	if coarsen(iso, 0) != nil {
		t.Error("edgeless graph coarsened")
	}
}

func BenchmarkPartitionFlat(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := randomGraph(rng, 200, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Partition(g, Options{K: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPartitionMultilevel(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := randomGraph(rng, 200, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PartitionMultilevel(g, Options{K: 8}); err != nil {
			b.Fatal(err)
		}
	}
}
