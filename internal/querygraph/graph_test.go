package querygraph

import (
	"testing"
	"testing/quick"
)

func TestGraphBasics(t *testing.T) {
	g := New()
	g.AddVertex("a", 2)
	g.AddVertex("b", 3)
	g.AddVertex("c", -1) // clamped to 0
	if !g.Has("a") || g.Has("z") {
		t.Error("Has wrong")
	}
	if g.NumVertices() != 3 {
		t.Errorf("n = %d", g.NumVertices())
	}
	if g.VertexWeight("a") != 2 || g.VertexWeight("c") != 0 || g.VertexWeight("z") != 0 {
		t.Error("weights wrong")
	}
	if g.TotalVertexWeight() != 5 {
		t.Errorf("total = %v", g.TotalVertexWeight())
	}
	g.SetVertexWeight("a", 7)
	if g.VertexWeight("a") != 7 {
		t.Error("SetVertexWeight failed")
	}
	g.SetVertexWeight("z", 1) // no-op on missing vertex
	if g.Has("z") {
		t.Error("SetVertexWeight created vertex")
	}
	g.SetVertexWeight("a", -1)
	if g.VertexWeight("a") != 0 {
		t.Error("negative weight not clamped")
	}
	vs := g.Vertices()
	if len(vs) != 3 || vs[0] != "a" || vs[1] != "b" || vs[2] != "c" {
		t.Errorf("vertices = %v", vs)
	}
}

func TestGraphEdges(t *testing.T) {
	g := New()
	g.AddVertex("a", 1)
	g.AddVertex("b", 1)
	if err := g.SetEdge("a", "a", 1); err == nil {
		t.Error("self-edge accepted")
	}
	if err := g.SetEdge("a", "z", 1); err == nil {
		t.Error("edge to missing vertex accepted")
	}
	if err := g.SetEdge("z", "a", 1); err == nil {
		t.Error("edge from missing vertex accepted")
	}
	if err := g.SetEdge("a", "b", 4); err != nil {
		t.Fatal(err)
	}
	if g.EdgeWeight("a", "b") != 4 || g.EdgeWeight("b", "a") != 4 {
		t.Error("edge not symmetric")
	}
	// Non-positive weight removes.
	if err := g.SetEdge("a", "b", 0); err != nil {
		t.Fatal(err)
	}
	if g.EdgeWeight("a", "b") != 0 {
		t.Error("edge not removed")
	}
}

func TestGraphRemoveVertex(t *testing.T) {
	g := New()
	g.AddVertex("a", 1)
	g.AddVertex("b", 1)
	g.AddVertex("c", 1)
	g.SetEdge("a", "b", 2)
	g.SetEdge("b", "c", 3)
	g.RemoveVertex("b")
	if g.Has("b") || g.NumVertices() != 2 {
		t.Error("vertex not removed")
	}
	if g.EdgeWeight("a", "b") != 0 || g.EdgeWeight("c", "b") != 0 {
		t.Error("incident edges survived")
	}
	g.RemoveVertex("zz") // no-op
}

func TestGraphNeighborsSorted(t *testing.T) {
	g := New()
	for _, v := range []VertexID{"a", "c", "b", "d"} {
		g.AddVertex(v, 1)
	}
	g.SetEdge("a", "c", 1)
	g.SetEdge("a", "b", 2)
	g.SetEdge("a", "d", 3)
	var order []VertexID
	g.Neighbors("a", func(nb VertexID, w float64) { order = append(order, nb) })
	if len(order) != 3 || order[0] != "b" || order[1] != "c" || order[2] != "d" {
		t.Errorf("neighbor order = %v", order)
	}
}

func TestGraphClone(t *testing.T) {
	g := Figure2Graph()
	c := g.Clone()
	c.SetEdge("Q1", "Q2", 99)
	c.SetVertexWeight("Q1", 99)
	if g.EdgeWeight("Q1", "Q2") != 5 || g.VertexWeight("Q1") != 3 {
		t.Error("Clone shares storage")
	}
	if c.NumVertices() != g.NumVertices() {
		t.Error("Clone vertex count")
	}
}

func TestEdgeCutAndWeights(t *testing.T) {
	g := Figure2Graph()
	a, b := Figure2PlanA(), Figure2PlanB()
	// The paper's numbers: plan (a) duplicates 8 B/s, plan (b) only 3.
	if cut := g.EdgeCut(a); cut != 8 {
		t.Errorf("plan (a) cut = %v, want 8", cut)
	}
	if cut := g.EdgeCut(b); cut != 3 {
		t.Errorf("plan (b) cut = %v, want 3", cut)
	}
	// Both plans are equally balanced.
	wa := g.PartitionWeights(a, 2)
	wb := g.PartitionWeights(b, 2)
	if Imbalance(wa) != Imbalance(wb) {
		t.Errorf("plan imbalances differ: %v vs %v", Imbalance(wa), Imbalance(wb))
	}
	if wa[0] != 7 || wa[1] != 8 {
		t.Errorf("plan (a) weights = %v", wa)
	}
}

func TestImbalance(t *testing.T) {
	if Imbalance(nil) != 1 {
		t.Error("empty imbalance")
	}
	if Imbalance([]float64{0, 0}) != 1 {
		t.Error("zero imbalance")
	}
	if got := Imbalance([]float64{2, 2}); got != 1 {
		t.Errorf("balanced = %v", got)
	}
	if got := Imbalance([]float64{3, 1}); got != 1.5 {
		t.Errorf("imbalance = %v, want 1.5", got)
	}
}

func TestDiff(t *testing.T) {
	old := Partitioning{"a": 0, "b": 1}
	new1 := Partitioning{"a": 0, "b": 0, "c": 1}
	// b moved, c arrived.
	if got := Diff(old, new1); got != 2 {
		t.Errorf("diff = %d, want 2", got)
	}
	if got := Diff(old, old); got != 0 {
		t.Errorf("self diff = %d", got)
	}
}

func TestPartitioningClone(t *testing.T) {
	p := Partitioning{"a": 0}
	c := p.Clone()
	c["a"] = 5
	if p["a"] != 0 {
		t.Error("Clone shares storage")
	}
}

// Property: EdgeCut is invariant under partition renumbering.
func TestEdgeCutRenumberInvariantProperty(t *testing.T) {
	g := Figure2Graph()
	f := func(bits uint8) bool {
		p := make(Partitioning)
		for i, v := range g.Vertices() {
			p[v] = int(bits>>i) & 1
		}
		flipped := make(Partitioning)
		for v, part := range p {
			flipped[v] = 1 - part
		}
		return g.EdgeCut(p) == g.EdgeCut(flipped)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
