package querygraph

import (
	"fmt"
	"sort"
)

// Options configures partitioning.
type Options struct {
	// K is the number of partitions (entities).
	K int
	// Epsilon is the balance tolerance: every partition's weight must
	// stay within (1+Epsilon) * total/K. Default 0.2.
	Epsilon float64
	// RefineRounds bounds the Kernighan–Lin refinement passes.
	// Default 8.
	RefineRounds int
}

func (o Options) normalized() Options {
	if o.Epsilon <= 0 {
		o.Epsilon = 0.2
	}
	if o.RefineRounds <= 0 {
		o.RefineRounds = 8
	}
	return o
}

func (o Options) maxLoad(total float64) float64 {
	return (1 + o.Epsilon) * total / float64(o.K)
}

// Partition computes a balanced k-way partitioning minimizing weighted
// edge cut: greedy growth ordered by vertex weight, then KL-style
// refinement. The result is deterministic for a given graph.
func Partition(g *Graph, opts Options) (Partitioning, error) {
	opts = opts.normalized()
	if opts.K < 1 {
		return nil, fmt.Errorf("querygraph: need K >= 1, got %d", opts.K)
	}
	vertices := g.Vertices()
	if len(vertices) == 0 {
		return Partitioning{}, nil
	}
	if opts.K == 1 {
		p := make(Partitioning, len(vertices))
		for _, v := range vertices {
			p[v] = 0
		}
		return p, nil
	}

	maxLoad := opts.maxLoad(g.TotalVertexWeight())
	// Two growth strategies, each followed by refinement; the better
	// result wins. Weight-ordered growth packs for balance; affinity
	// growth follows the heaviest connections and recovers community
	// structure. Neither dominates, so run both.
	pw, lw := growWeightOrdered(g, opts.K, maxLoad)
	refine(g, pw, lw, maxLoad, opts.RefineRounds, nil)
	pa, la := growByAffinity(g, opts.K, maxLoad)
	refine(g, pa, la, maxLoad, opts.RefineRounds, nil)

	if better(g, pa, la, pw, lw, maxLoad) {
		return pa, nil
	}
	return pw, nil
}

// better reports whether candidate (p1, loads1) beats (p2, loads2):
// feasibility first, then lower edge cut.
func better(g *Graph, p1 Partitioning, loads1 []float64, p2 Partitioning, loads2 []float64, maxLoad float64) bool {
	feas1, feas2 := feasible(loads1, maxLoad), feasible(loads2, maxLoad)
	if feas1 != feas2 {
		return feas1
	}
	return g.EdgeCut(p1) < g.EdgeCut(p2)
}

func feasible(loads []float64, maxLoad float64) bool {
	for _, l := range loads {
		if l > maxLoad+1e-9 {
			return false
		}
	}
	return true
}

// growWeightOrdered assigns heaviest vertices first (LPT-style) to the
// best-gain feasible partition.
func growWeightOrdered(g *Graph, k int, maxLoad float64) (Partitioning, []float64) {
	order := g.Vertices()
	sort.SliceStable(order, func(i, j int) bool {
		wi, wj := g.VertexWeight(order[i]), g.VertexWeight(order[j])
		if wi != wj {
			return wi > wj
		}
		return order[i] < order[j]
	})

	p := make(Partitioning, len(order))
	loads := make([]float64, k)
	assigned := make(map[VertexID]bool, len(order))
	for _, v := range order {
		gain := make([]float64, k)
		g.Neighbors(v, func(nb VertexID, w float64) {
			if assigned[nb] {
				gain[p[nb]] += w
			}
		})
		p[v] = pickPartition(g.VertexWeight(v), gain, loads, maxLoad)
		loads[p[v]] += g.VertexWeight(v)
		assigned[v] = true
	}
	return p, loads
}

// growByAffinity is greedy graph growing (the GGGP strategy of
// multilevel partitioners): partitions are grown one at a time — seed
// with the heaviest vertex least attached to already-grown regions, then
// repeatedly absorb the unassigned vertex most attached to the growing
// region until it reaches its share of the load. Sequential growth keeps
// each region inside one interest community instead of scattering seeds
// across it.
func growByAffinity(g *Graph, k int, maxLoad float64) (Partitioning, []float64) {
	vertices := g.Vertices()
	p := make(Partitioning, len(vertices))
	loads := make([]float64, k)
	assigned := make(map[VertexID]bool, len(vertices))
	// attachCur[v] accumulates edge weight from v into the region being
	// grown; attachAny[v] into any finished region (for seed choice).
	attachCur := make(map[VertexID]float64, len(vertices))
	attachAny := make(map[VertexID]float64, len(vertices))
	target := g.TotalVertexWeight() / float64(k)

	for part := 0; part < k; part++ {
		// Seed: heaviest vertex among those least attached to finished
		// regions (a fresh community when one exists).
		var seed VertexID
		seedAttach, seedW := 0.0, -1.0
		for _, v := range vertices {
			if assigned[v] {
				continue
			}
			a, w := attachAny[v], g.VertexWeight(v)
			if seedW < 0 || a < seedAttach || (a == seedAttach && w > seedW) {
				seed, seedAttach, seedW = v, a, w
			}
		}
		if seedW < 0 {
			break // everything assigned
		}
		for v := range attachCur {
			delete(attachCur, v)
		}
		assign := func(v VertexID) {
			p[v] = part
			loads[part] += g.VertexWeight(v)
			assigned[v] = true
			g.Neighbors(v, func(nb VertexID, w float64) {
				if !assigned[nb] {
					attachCur[nb] += w
					attachAny[nb] += w
				}
			})
		}
		assign(seed)
		for loads[part] < target {
			var best VertexID
			bestA := -1.0
			for _, v := range vertices {
				if assigned[v] {
					continue
				}
				if a := attachCur[v]; a > bestA {
					best, bestA = v, a
				}
			}
			if best == "" || bestA <= 0 {
				break // region's frontier is exhausted
			}
			if loads[part]+g.VertexWeight(best) > maxLoad {
				// The most-attached vertex no longer fits; stop
				// growing this region rather than jumping communities.
				break
			}
			assign(best)
		}
	}
	// Leftovers (disconnected or displaced): best-gain feasible region.
	for _, v := range vertices {
		if assigned[v] {
			continue
		}
		gain := make([]float64, k)
		g.Neighbors(v, func(nb VertexID, w float64) {
			if assigned[nb] {
				gain[p[nb]] += w
			}
		})
		part := pickPartition(g.VertexWeight(v), gain, loads, maxLoad)
		p[v] = part
		loads[part] += g.VertexWeight(v)
		assigned[v] = true
	}
	return p, loads
}

// pickPartition selects the feasible partition with the highest gain,
// breaking ties toward lower load; with no feasible partition it returns
// the least loaded one.
func pickPartition(w float64, gain, loads []float64, maxLoad float64) int {
	best, bestGain := -1, -1.0
	for part := range loads {
		if loads[part]+w > maxLoad {
			continue
		}
		if gain[part] > bestGain ||
			(gain[part] == bestGain && (best < 0 || loads[part] < loads[best])) {
			best, bestGain = part, gain[part]
		}
	}
	if best < 0 {
		best = 0
		for part := 1; part < len(loads); part++ {
			if loads[part] < loads[best] {
				best = part
			}
		}
	}
	return best
}

// refine runs hill-climbing passes moving single vertices between
// partitions when the move reduces cut and keeps balance. It mutates p
// and loads in place. evals, when non-nil, counts gain evaluations (the
// decision-effort proxy reported by the repartitioning experiment).
func refine(g *Graph, p Partitioning, loads []float64, maxLoad float64, rounds int, evals *int) {
	k := len(loads)
	vertices := g.Vertices()
	for round := 0; round < rounds; round++ {
		moved := false
		for _, v := range vertices {
			cur := p[v]
			// D[x] = total edge weight from v into partition x.
			d := make([]float64, k)
			g.Neighbors(v, func(nb VertexID, w float64) {
				d[p[nb]] += w
			})
			if evals != nil {
				*evals += k
			}
			w := g.VertexWeight(v)
			bestPart, bestGain := cur, 0.0
			for q := 0; q < k; q++ {
				if q == cur || loads[q]+w > maxLoad {
					continue
				}
				gain := d[q] - d[cur]
				if gain > bestGain {
					bestPart, bestGain = q, gain
				}
			}
			if bestPart != cur {
				loads[cur] -= w
				loads[bestPart] += w
				p[v] = bestPart
				moved = true
			}
		}
		if !moved {
			return
		}
	}
}

// PartitionLoadOnly is the load-balancing baseline that ignores data
// interest entirely: longest-processing-time assignment of queries to the
// least-loaded partition. It is the strategy of cluster systems like
// Flux/Borealis that treat all processors as interchangeable.
func PartitionLoadOnly(g *Graph, k int) (Partitioning, error) {
	if k < 1 {
		return nil, fmt.Errorf("querygraph: need K >= 1, got %d", k)
	}
	order := g.Vertices()
	sort.SliceStable(order, func(i, j int) bool {
		wi, wj := g.VertexWeight(order[i]), g.VertexWeight(order[j])
		if wi != wj {
			return wi > wj
		}
		return order[i] < order[j]
	})
	p := make(Partitioning, len(order))
	loads := make([]float64, k)
	for _, v := range order {
		best := 0
		for part := 1; part < k; part++ {
			if loads[part] < loads[best] {
				best = part
			}
		}
		p[v] = best
		loads[best] += g.VertexWeight(v)
	}
	return p, nil
}

// PartitionSimilarityOnly is the similarity-clustering baseline the
// paper warns about: greedily merge the heaviest edges into clusters
// until k remain, ignoring load balance. It minimizes cut aggressively
// but can produce arbitrarily imbalanced partitions (the paper's Q3/Q5
// observation: similarity alone is not the right objective).
func PartitionSimilarityOnly(g *Graph, k int) (Partitioning, error) {
	if k < 1 {
		return nil, fmt.Errorf("querygraph: need K >= 1, got %d", k)
	}
	vertices := g.Vertices()
	parent := make(map[VertexID]VertexID, len(vertices))
	for _, v := range vertices {
		parent[v] = v
	}
	var find func(VertexID) VertexID
	find = func(v VertexID) VertexID {
		if parent[v] != v {
			parent[v] = find(parent[v])
		}
		return parent[v]
	}
	type edge struct {
		a, b VertexID
		w    float64
	}
	var edges []edge
	for _, a := range vertices {
		g.Neighbors(a, func(b VertexID, w float64) {
			if a < b {
				edges = append(edges, edge{a, b, w})
			}
		})
	}
	sort.SliceStable(edges, func(i, j int) bool {
		if edges[i].w != edges[j].w {
			return edges[i].w > edges[j].w
		}
		if edges[i].a != edges[j].a {
			return edges[i].a < edges[j].a
		}
		return edges[i].b < edges[j].b
	})
	clusters := len(vertices)
	for _, e := range edges {
		if clusters <= k {
			break
		}
		ra, rb := find(e.a), find(e.b)
		if ra != rb {
			parent[ra] = rb
			clusters--
		}
	}
	// If still more clusters than k (disconnected graph), merge the
	// lightest clusters together.
	for clusters > k {
		weights := make(map[VertexID]float64)
		for _, v := range vertices {
			weights[find(v)] += g.VertexWeight(v)
		}
		roots := make([]VertexID, 0, len(weights))
		for r := range weights {
			roots = append(roots, r)
		}
		sort.Slice(roots, func(i, j int) bool {
			if weights[roots[i]] != weights[roots[j]] {
				return weights[roots[i]] < weights[roots[j]]
			}
			return roots[i] < roots[j]
		})
		parent[roots[0]] = roots[1]
		clusters--
	}
	// Number the clusters deterministically.
	p := make(Partitioning, len(vertices))
	next := 0
	ids := make(map[VertexID]int)
	for _, v := range vertices {
		r := find(v)
		id, ok := ids[r]
		if !ok {
			id = next
			ids[r] = id
			next++
		}
		p[v] = id
	}
	return p, nil
}
