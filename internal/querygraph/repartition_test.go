package querygraph

import (
	"fmt"
	"math/rand"
	"testing"
)

// drift mutates the graph like a live workload: load changes, some
// departures, some arrivals.
func drift(rng *rand.Rand, g *Graph, round int) {
	vs := g.Vertices()
	for _, v := range vs {
		if rng.Float64() < 0.3 {
			g.SetVertexWeight(v, 1+rng.Float64()*9)
		}
	}
	// ~20% departures.
	for _, v := range vs {
		if rng.Float64() < 0.2 {
			g.RemoveVertex(v)
		}
	}
	// ~20% arrivals, each heavily wired into one randomly chosen
	// neighborhood (arrivals join existing interest communities).
	n := len(vs) / 5
	cur := g.Vertices()
	for i := 0; i <= n; i++ {
		id := VertexID(fmt.Sprintf("new%03d-%d", round, i))
		g.AddVertex(id, 1+rng.Float64()*9)
		if len(cur) == 0 {
			continue
		}
		anchor := cur[rng.Intn(len(cur))]
		g.SetEdge(id, anchor, 3+rng.Float64()*7)
		g.Neighbors(anchor, func(nb VertexID, w float64) {
			if nb != id && rng.Float64() < 0.5 {
				g.SetEdge(id, nb, 1+rng.Float64()*5)
			}
		})
	}
}

func TestScratchRepartitionerBasics(t *testing.T) {
	g := Figure2Graph()
	old := Figure2PlanA()
	res, err := ScratchRepartitioner{}.Repartition(g, old, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if cut := g.EdgeCut(res.Assignment); cut > 3 {
		t.Errorf("scratch cut = %v, want <= 3", cut)
	}
	if res.Evaluations <= 0 {
		t.Error("no evaluations reported")
	}
	if res.Migrations <= 0 {
		t.Error("moving from plan (a) to optimal requires migrations")
	}
	if (ScratchRepartitioner{}).Name() != "scratch" {
		t.Error("name")
	}
}

func TestScratchLabelMatchingAvoidsRenumberMigrations(t *testing.T) {
	g := Figure2Graph()
	// Start from the optimal plan (b); a scratch run may find the same
	// partition with flipped labels — label matching must report ~0
	// migrations.
	old := Figure2PlanB()
	res, err := ScratchRepartitioner{}.Repartition(g, old, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations != 0 {
		t.Errorf("re-running scratch on an optimal assignment migrated %d queries", res.Migrations)
	}
}

func TestGreedyCutRestoresBalance(t *testing.T) {
	g := New()
	for i := 0; i < 10; i++ {
		g.AddVertex(VertexID(fmt.Sprintf("v%d", i)), 1)
	}
	// Everything piled on partition 0.
	old := make(Partitioning)
	for _, v := range g.Vertices() {
		old[v] = 0
	}
	res, err := GreedyCutRepartitioner{}.Repartition(g, old, Options{K: 2, Epsilon: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	weights := g.PartitionWeights(res.Assignment, 2)
	if Imbalance(weights) > 1.2+1e-9 {
		t.Errorf("greedycut left imbalance %v (weights %v)", Imbalance(weights), weights)
	}
	if res.Migrations == 0 {
		t.Error("rebalancing requires migrations")
	}
	if (GreedyCutRepartitioner{}).Name() != "greedycut" {
		t.Error("name")
	}
	if _, err := (GreedyCutRepartitioner{}).Repartition(g, old, Options{K: 0}); err == nil {
		t.Error("K=0 accepted")
	}
}

func TestHybridBalancesAndKeepsCutLow(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(rng, 60, 4)
	k := 4
	old, err := Partition(g, Options{K: k})
	if err != nil {
		t.Fatal(err)
	}
	// Drift the workload hard.
	for round := 0; round < 3; round++ {
		drift(rng, g, round)
	}
	res, err := HybridRepartitioner{}.Repartition(g, old, Options{K: k, Epsilon: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	assertValidPartitioning(t, g, res.Assignment, k, 0.2)
	if (HybridRepartitioner{}).Name() != "hybrid" {
		t.Error("name")
	}
	if _, err := (HybridRepartitioner{}).Repartition(g, old, Options{K: 0}); err == nil {
		t.Error("K=0 accepted")
	}
}

func TestRepartitionerTradeoff(t *testing.T) {
	// The paper's spectrum: scratch gets the best cut at the highest
	// migration/effort cost; greedycut is cheapest with the worst cut;
	// hybrid sits in between on cut and keeps migrations closer to
	// greedycut than scratch.
	rng := rand.New(rand.NewSource(99))
	g := randomGraph(rng, 80, 4)
	k := 4
	assign, err := Partition(g, Options{K: k})
	if err != nil {
		t.Fatal(err)
	}
	var cutScratch, cutGreedy, cutHybrid float64
	var migScratch, migGreedy, migHybrid int
	var evalScratch, evalGreedy int
	rounds := 6
	gs, gg, gh := g.Clone(), g.Clone(), g.Clone()
	as, ag, ah := assign.Clone(), assign.Clone(), assign.Clone()
	rngS, rngG, rngH := rand.New(rand.NewSource(1)), rand.New(rand.NewSource(1)), rand.New(rand.NewSource(1))
	for round := 0; round < rounds; round++ {
		drift(rngS, gs, round)
		drift(rngG, gg, round)
		drift(rngH, gh, round)
		rs, err := ScratchRepartitioner{}.Repartition(gs, as, Options{K: k})
		if err != nil {
			t.Fatal(err)
		}
		rg, err := GreedyCutRepartitioner{}.Repartition(gg, ag, Options{K: k})
		if err != nil {
			t.Fatal(err)
		}
		rh, err := HybridRepartitioner{}.Repartition(gh, ah, Options{K: k})
		if err != nil {
			t.Fatal(err)
		}
		as, ag, ah = rs.Assignment, rg.Assignment, rh.Assignment
		cutScratch += gs.EdgeCut(as)
		cutGreedy += gg.EdgeCut(ag)
		cutHybrid += gh.EdgeCut(ah)
		migScratch += rs.Migrations
		migGreedy += rg.Migrations
		migHybrid += rh.Migrations
		evalScratch += rs.Evaluations
		evalGreedy += rg.Evaluations
	}
	if cutScratch >= cutGreedy {
		t.Errorf("scratch cut %v not better than greedycut %v", cutScratch, cutGreedy)
	}
	if cutHybrid >= cutGreedy {
		t.Errorf("hybrid cut %v not better than greedycut %v", cutHybrid, cutGreedy)
	}
	if migGreedy >= migScratch {
		t.Errorf("greedycut migrations %d not fewer than scratch %d", migGreedy, migScratch)
	}
	if migHybrid >= migScratch {
		t.Errorf("hybrid migrations %d not fewer than scratch %d", migHybrid, migScratch)
	}
	if evalGreedy >= evalScratch {
		t.Errorf("greedycut effort %d not cheaper than scratch %d", evalGreedy, evalScratch)
	}
}

func TestCarryForwardPlacesArrivals(t *testing.T) {
	g := New()
	g.AddVertex("old1", 5)
	g.AddVertex("old2", 5)
	g.AddVertex("new1", 1)
	old := Partitioning{"old1": 0, "old2": 1, "ghost": 0}
	p := carryForward(g, old, 2)
	if p["old1"] != 0 || p["old2"] != 1 {
		t.Error("survivors reassigned")
	}
	if _, ok := p["ghost"]; ok {
		t.Error("departed vertex kept")
	}
	if part, ok := p["new1"]; !ok || part < 0 || part > 1 {
		t.Error("arrival unplaced")
	}
}

func TestCarryForwardByAffinity(t *testing.T) {
	g := New()
	g.AddVertex("a", 1)
	g.AddVertex("b", 1)
	g.AddVertex("new", 0.4)
	g.SetEdge("new", "b", 10)
	old := Partitioning{"a": 0, "b": 1}
	p := carryForwardByAffinity(g, old, 2)
	if p["new"] != 1 {
		t.Errorf("arrival placed on %d, want 1 (affinity with b)", p["new"])
	}
}

func TestMatchLabelsOutOfRange(t *testing.T) {
	old := Partitioning{"a": 0}
	fresh := Partitioning{"a": 7} // out of range survives untouched
	out := matchLabels(old, fresh, 2)
	if out["a"] != 7 {
		t.Errorf("out-of-range label remapped to %d", out["a"])
	}
}
