package querygraph

import (
	"fmt"
	"sort"
)

// PartitionMultilevel is the multilevel k-way partitioner (the
// METIS-style algorithm the graph-partitioning literature the paper
// leans on uses): the graph is repeatedly coarsened by heavy-edge
// matching — merging the pairs of queries with the strongest shared
// interest — until small, partitioned there, and the assignment is
// projected back up with a refinement pass at every level. On clustered
// query graphs it matches or beats the flat partitioner, and on large
// graphs it is substantially faster because refinement works on small
// graphs for most of its passes.
func PartitionMultilevel(g *Graph, opts Options) (Partitioning, error) {
	opts = opts.normalized()
	if opts.K < 1 {
		return nil, fmt.Errorf("querygraph: need K >= 1, got %d", opts.K)
	}
	if g.NumVertices() == 0 {
		return Partitioning{}, nil
	}
	if opts.K == 1 {
		p := make(Partitioning, g.NumVertices())
		for _, v := range g.Vertices() {
			p[v] = 0
		}
		return p, nil
	}
	// Coarsen until small enough to partition directly (or no edges
	// remain to contract).
	const coarseTarget = 32
	// Cap super-vertex weight so the coarsest graph stays partitionable:
	// no super-vertex may exceed a fraction of a partition's capacity.
	weightCap := g.TotalVertexWeight() / float64(opts.K) / 4
	levels := []*coarseLevel{{graph: g}}
	for levels[len(levels)-1].graph.NumVertices() > coarseTarget*opts.K/2 {
		next := coarsen(levels[len(levels)-1].graph, weightCap)
		if next == nil {
			break // matching found nothing to contract
		}
		levels[len(levels)-1].mapping = next.mapping
		levels = append(levels, &coarseLevel{graph: next.graph})
		if len(levels) > 40 {
			break // safety bound; should never trigger
		}
	}

	// Partition the coarsest level with the flat partitioner.
	coarsest := levels[len(levels)-1].graph
	p, err := Partition(coarsest, opts)
	if err != nil {
		return nil, err
	}

	// Project back up, refining at each level.
	for i := len(levels) - 2; i >= 0; i-- {
		lvl := levels[i]
		fine := make(Partitioning, lvl.graph.NumVertices())
		for _, v := range lvl.graph.Vertices() {
			fine[v] = p[lvl.mapping[v]]
		}
		p = fine
		loads := make([]float64, opts.K)
		for _, v := range lvl.graph.Vertices() {
			loads[p[v]] += lvl.graph.VertexWeight(v)
		}
		maxLoad := opts.maxLoad(lvl.graph.TotalVertexWeight())
		rebalance(lvl.graph, p, loads, maxLoad, nil)
		refine(lvl.graph, p, loads, maxLoad, opts.RefineRounds, nil)
	}
	return p, nil
}

type coarseLevel struct {
	graph *Graph
	// mapping sends each vertex of this level to its super-vertex in
	// the next (coarser) level.
	mapping map[VertexID]VertexID
}

type coarsenResult struct {
	graph   *Graph
	mapping map[VertexID]VertexID
}

// coarsen contracts a heavy-edge matching: each vertex pairs with its
// heaviest-edged unmatched neighbor whose combined weight stays under
// weightCap; matched pairs merge into one super-vertex whose weight is
// the sum and whose edges aggregate. It returns nil when no edge could
// be contracted.
func coarsen(g *Graph, weightCap float64) *coarsenResult {
	vertices := g.Vertices()
	// Visit vertices in descending weight so heavy vertices pick their
	// partners first (keeps super-vertex weights more uniform).
	sort.SliceStable(vertices, func(i, j int) bool {
		wi, wj := g.VertexWeight(vertices[i]), g.VertexWeight(vertices[j])
		if wi != wj {
			return wi < wj // light first: merge light vertices preferentially
		}
		return vertices[i] < vertices[j]
	})
	match := make(map[VertexID]VertexID, len(vertices))
	contracted := 0
	for _, v := range vertices {
		if _, done := match[v]; done {
			continue
		}
		var best VertexID
		bestW := 0.0
		vw := g.VertexWeight(v)
		g.Neighbors(v, func(nb VertexID, w float64) {
			if _, done := match[nb]; done {
				return
			}
			if weightCap > 0 && vw+g.VertexWeight(nb) > weightCap {
				return
			}
			if w > bestW || (w == bestW && best != "" && nb < best) {
				best, bestW = nb, w
			}
		})
		if best == "" {
			match[v] = v // unmatched: survives alone
			continue
		}
		match[v] = v // v becomes the super-vertex representative
		match[best] = v
		contracted++
	}
	if contracted == 0 {
		return nil
	}
	coarse := New()
	mapping := make(map[VertexID]VertexID, len(vertices))
	for _, v := range g.Vertices() {
		rep := match[v]
		super := VertexID("c:" + string(rep))
		mapping[v] = super
		if !coarse.Has(super) {
			coarse.AddVertex(super, 0)
		}
		coarse.SetVertexWeight(super, coarse.VertexWeight(super)+g.VertexWeight(v))
	}
	// Aggregate edges between super-vertices.
	agg := make(map[[2]VertexID]float64)
	for _, a := range g.Vertices() {
		g.Neighbors(a, func(b VertexID, w float64) {
			if a >= b {
				return
			}
			sa, sb := mapping[a], mapping[b]
			if sa == sb {
				return
			}
			key := [2]VertexID{sa, sb}
			if sb < sa {
				key = [2]VertexID{sb, sa}
			}
			agg[key] += w
		})
	}
	for key, w := range agg {
		// Vertices exist by construction.
		_ = coarse.SetEdge(key[0], key[1], w)
	}
	return &coarsenResult{graph: coarse, mapping: mapping}
}
