package querygraph

// StatsSource feeds measured runtime statistics into query-graph
// construction — the hook through which the cluster stats plane
// (DESIGN.md §9) replaces the static estimates the graph is otherwise
// built from. Implementations return only what they have measured; a
// query or stream absent from the maps keeps its nominal weight, so a
// partially warmed-up cluster degrades gracefully to the static graph.
type StatsSource interface {
	// QueryLoads returns the measured load (vertex weight) per query ID.
	QueryLoads() map[string]float64
	// StreamRates returns the measured arrival rate per stream, in
	// tuples per second.
	StreamRates() map[string]float64
}

// ApplyLoads overwrites graph vertex weights with measured query loads.
// Vertices without a measurement keep their current (nominal) weight.
// It returns the number of vertices updated.
func ApplyLoads(g *Graph, loads map[string]float64) int {
	updated := 0
	for id, w := range loads {
		if w < 0 {
			continue
		}
		if g.Has(VertexID(id)) {
			g.SetVertexWeight(VertexID(id), w)
			updated++
		}
	}
	return updated
}
