package querygraph

import (
	"fmt"
	"sort"
)

// RepartitionResult reports one adaptive repartitioning decision.
type RepartitionResult struct {
	// Assignment is the new partitioning.
	Assignment Partitioning
	// Migrations counts queries whose entity changed — each migration
	// interrupts a running query, so fewer is better.
	Migrations int
	// Evaluations counts gain evaluations performed, the deterministic
	// proxy for decision-making time.
	Evaluations int
}

// Repartitioner adapts an existing partitioning after the query graph
// drifts (load changes, interest changes, query arrivals/departures).
type Repartitioner interface {
	// Name identifies the strategy in experiment output.
	Name() string
	// Repartition computes a new assignment from the current graph and
	// the old assignment. Vertices absent from old are new arrivals;
	// vertices absent from the graph have departed.
	Repartition(g *Graph, old Partitioning, opts Options) (RepartitionResult, error)
}

// ScratchRepartitioner reruns the full partitioner from scratch — the
// paper's first extreme: near-optimal cut, long decision time, many
// query movements. Labels of the fresh partitioning are matched to the
// old one to avoid counting pure renumberings as migrations.
type ScratchRepartitioner struct{}

// Name implements Repartitioner.
func (ScratchRepartitioner) Name() string { return "scratch" }

// Repartition implements Repartitioner.
func (ScratchRepartitioner) Repartition(g *Graph, old Partitioning, opts Options) (RepartitionResult, error) {
	opts = opts.normalized()
	fresh, err := Partition(g, opts)
	if err != nil {
		return RepartitionResult{}, err
	}
	// Evaluations: the scratch pass examines every vertex against every
	// partition in both growth and refinement.
	evals := g.NumVertices() * opts.K * (1 + opts.RefineRounds)
	matched := matchLabels(old, fresh, opts.K)
	return RepartitionResult{
		Assignment:  matched,
		Migrations:  Diff(old, matched),
		Evaluations: evals,
	}, nil
}

// matchLabels renames the partitions of fresh to maximize overlap with
// old, greedily by overlap count.
func matchLabels(old, fresh Partitioning, k int) Partitioning {
	overlap := make([][]int, k)
	for i := range overlap {
		overlap[i] = make([]int, k)
	}
	for v, np := range fresh {
		if op, ok := old[v]; ok && op >= 0 && op < k && np >= 0 && np < k {
			overlap[np][op]++
		}
	}
	type pair struct{ from, to, n int }
	var pairs []pair
	for f := 0; f < k; f++ {
		for o := 0; o < k; o++ {
			pairs = append(pairs, pair{f, o, overlap[f][o]})
		}
	}
	sort.SliceStable(pairs, func(i, j int) bool {
		if pairs[i].n != pairs[j].n {
			return pairs[i].n > pairs[j].n
		}
		if pairs[i].from != pairs[j].from {
			return pairs[i].from < pairs[j].from
		}
		return pairs[i].to < pairs[j].to
	})
	rename := make([]int, k)
	for i := range rename {
		rename[i] = -1
	}
	usedTo := make([]bool, k)
	for _, pr := range pairs {
		if rename[pr.from] < 0 && !usedTo[pr.to] {
			rename[pr.from] = pr.to
			usedTo[pr.to] = true
		}
	}
	for f := 0; f < k; f++ {
		if rename[f] < 0 {
			for o := 0; o < k; o++ {
				if !usedTo[o] {
					rename[f] = o
					usedTo[o] = true
					break
				}
			}
		}
	}
	out := make(Partitioning, len(fresh))
	for v, np := range fresh {
		if np >= 0 && np < k {
			out[v] = rename[np]
		} else {
			out[v] = np
		}
	}
	return out
}

// GreedyCutRepartitioner is the paper's second extreme: move vertices
// from overloaded to underloaded partitions purely by load, ignoring
// data-interest overlap. Cheap decisions, few constraints — but the edge
// cut degrades because co-interested queries get separated.
type GreedyCutRepartitioner struct{}

// Name implements Repartitioner.
func (GreedyCutRepartitioner) Name() string { return "greedycut" }

// Repartition implements Repartitioner.
func (GreedyCutRepartitioner) Repartition(g *Graph, old Partitioning, opts Options) (RepartitionResult, error) {
	opts = opts.normalized()
	if opts.K < 1 {
		return RepartitionResult{}, fmt.Errorf("querygraph: need K >= 1, got %d", opts.K)
	}
	p := carryForward(g, old, opts.K)
	loads := make([]float64, opts.K)
	for v, part := range p {
		loads[part] += g.VertexWeight(v)
	}
	maxLoad := opts.maxLoad(g.TotalVertexWeight())
	evals := 0
	migrations := Diff(old, p) // new arrivals placed by carryForward

	// Repeatedly take the lightest movable vertex from the most loaded
	// partition above the cap and give it to the least loaded one.
	for iter := 0; iter < g.NumVertices()*2; iter++ {
		worst, best := 0, 0
		for i := 1; i < opts.K; i++ {
			if loads[i] > loads[worst] {
				worst = i
			}
			if loads[i] < loads[best] {
				best = i
			}
		}
		if loads[worst] <= maxLoad || worst == best {
			break
		}
		var candidate VertexID
		candW := -1.0
		for _, v := range g.Vertices() {
			evals++
			if p[v] != worst {
				continue
			}
			w := g.VertexWeight(v)
			// Prefer the smallest vertex that still helps, to keep
			// migration cost low.
			if w > 0 && (candW < 0 || w < candW) {
				candidate, candW = v, w
			}
		}
		if candW < 0 {
			break
		}
		p[candidate] = best
		loads[worst] -= candW
		loads[best] += candW
		migrations++
	}
	return RepartitionResult{Assignment: p, Migrations: migrations, Evaluations: evals}, nil
}

// HybridRepartitioner is the trade-off the paper calls for: keep the old
// assignment, place arrivals greedily by interest affinity, then run a
// bounded number of KL refinement passes over boundary vertices so both
// balance and cut recover without a full rebuild.
type HybridRepartitioner struct {
	// Rounds bounds the refinement passes (default 3, deliberately
	// fewer than a scratch run).
	Rounds int
}

// Name implements Repartitioner.
func (HybridRepartitioner) Name() string { return "hybrid" }

// Repartition implements Repartitioner.
func (h HybridRepartitioner) Repartition(g *Graph, old Partitioning, opts Options) (RepartitionResult, error) {
	opts = opts.normalized()
	if opts.K < 1 {
		return RepartitionResult{}, fmt.Errorf("querygraph: need K >= 1, got %d", opts.K)
	}
	rounds := h.Rounds
	if rounds <= 0 {
		rounds = 3
	}
	p := carryForwardByAffinity(g, old, opts.K)
	loads := make([]float64, opts.K)
	for v, part := range p {
		loads[part] += g.VertexWeight(v)
	}
	maxLoad := opts.maxLoad(g.TotalVertexWeight())
	evals := 0

	// First restore balance (cheapest-cut move out of overloaded
	// partitions), then improve cut within balance.
	rebalance(g, p, loads, maxLoad, &evals)
	refine(g, p, loads, maxLoad, rounds, &evals)
	return RepartitionResult{Assignment: p, Migrations: Diff(old, p), Evaluations: evals}, nil
}

// carryForward keeps old assignments for surviving vertices and assigns
// arrivals to the least-loaded partition.
func carryForward(g *Graph, old Partitioning, k int) Partitioning {
	p := make(Partitioning, g.NumVertices())
	loads := make([]float64, k)
	var arrivals []VertexID
	for _, v := range g.Vertices() {
		if part, ok := old[v]; ok && part >= 0 && part < k {
			p[v] = part
			loads[part] += g.VertexWeight(v)
		} else {
			arrivals = append(arrivals, v)
		}
	}
	for _, v := range arrivals {
		best := 0
		for i := 1; i < k; i++ {
			if loads[i] < loads[best] {
				best = i
			}
		}
		p[v] = best
		loads[best] += g.VertexWeight(v)
	}
	return p
}

// carryForwardByAffinity keeps old assignments and places arrivals on
// the partition with the strongest interest affinity that still has
// room, falling back to least-loaded.
func carryForwardByAffinity(g *Graph, old Partitioning, k int) Partitioning {
	p := make(Partitioning, g.NumVertices())
	loads := make([]float64, k)
	var arrivals []VertexID
	for _, v := range g.Vertices() {
		if part, ok := old[v]; ok && part >= 0 && part < k {
			p[v] = part
			loads[part] += g.VertexWeight(v)
		} else {
			arrivals = append(arrivals, v)
		}
	}
	maxLoad := Options{K: k}.normalized().maxLoad(g.TotalVertexWeight())
	for _, v := range arrivals {
		gain := make([]float64, k)
		g.Neighbors(v, func(nb VertexID, w float64) {
			if part, ok := p[nb]; ok {
				gain[part] += w
			}
		})
		w := g.VertexWeight(v)
		best, bestGain := -1, -1.0
		for i := 0; i < k; i++ {
			if loads[i]+w > maxLoad {
				continue
			}
			if gain[i] > bestGain || (gain[i] == bestGain && (best < 0 || loads[i] < loads[best])) {
				best, bestGain = i, gain[i]
			}
		}
		if best < 0 {
			best = 0
			for i := 1; i < k; i++ {
				if loads[i] < loads[best] {
					best = i
				}
			}
		}
		p[v] = best
		loads[best] += w
	}
	return p
}

// rebalance moves vertices out of partitions exceeding maxLoad, choosing
// the move that sacrifices the least edge-cut per unit of load moved.
func rebalance(g *Graph, p Partitioning, loads []float64, maxLoad float64, evals *int) {
	k := len(loads)
	for iter := 0; iter < g.NumVertices()*2; iter++ {
		worst := 0
		for i := 1; i < k; i++ {
			if loads[i] > loads[worst] {
				worst = i
			}
		}
		if loads[worst] <= maxLoad {
			return
		}
		type move struct {
			v    VertexID
			to   int
			loss float64
		}
		best := move{to: -1}
		for _, v := range g.Vertices() {
			if p[v] != worst {
				continue
			}
			w := g.VertexWeight(v)
			if w <= 0 {
				continue
			}
			d := make([]float64, k)
			g.Neighbors(v, func(nb VertexID, ew float64) {
				d[p[nb]] += ew
			})
			if evals != nil {
				*evals += k
			}
			for q := 0; q < k; q++ {
				if q == worst || loads[q]+w > maxLoad {
					continue
				}
				loss := (d[worst] - d[q]) / w // cut increase per load unit
				if best.to < 0 || loss < best.loss {
					best = move{v: v, to: q, loss: loss}
				}
			}
		}
		if best.to < 0 {
			return // nowhere to move without breaking the cap
		}
		w := g.VertexWeight(best.v)
		loads[worst] -= w
		loads[best.to] += w
		p[best.v] = best.to
	}
}
