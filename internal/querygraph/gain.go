package querygraph

// MoveGain evaluates moving one vertex from its current part to another
// under partitioning p: the edge-cut reduction in edge-weight units
// (positive means the cut shrinks). It is the per-move form of the
// repartitioners' global objective, used by the adaptation controller
// to weigh a single migration's benefit against its cost.
func MoveGain(g *Graph, p Partitioning, v VertexID, to int) float64 {
	cur, ok := p[v]
	if !ok || cur == to {
		return 0
	}
	// Cut contribution of v now: edges to parts != cur. After the
	// move: edges to parts != to. The difference reduces to
	// (weight to `to`-neighbors) - (weight to `cur`-neighbors).
	gain := 0.0
	g.Neighbors(v, func(nb VertexID, w float64) {
		switch p[nb] {
		case to:
			gain += w
		case cur:
			gain -= w
		}
	})
	return gain
}

// BalanceGain evaluates the same move's effect on load balance: the
// reduction of the maximum part load, in vertex-weight units (positive
// means the hottest part cools down). Zero when the move does not touch
// the maximum.
func BalanceGain(g *Graph, p Partitioning, v VertexID, to int, k int) float64 {
	cur, ok := p[v]
	if !ok || cur == to || to < 0 || to >= k {
		return 0
	}
	loads := g.PartitionWeights(p, k)
	before := maxLoad(loads)
	w := g.VertexWeight(v)
	loads[cur] -= w
	loads[to] += w
	return before - maxLoad(loads)
}

func maxLoad(loads []float64) float64 {
	m := 0.0
	for _, l := range loads {
		if l > m {
			m = l
		}
	}
	return m
}
