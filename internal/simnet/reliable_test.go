package simnet

import (
	"encoding/binary"
	"sync"
	"testing"
	"time"
)

// reliablePair wires two reliable endpoints over a fault plan.
type reliablePair struct {
	plan *FaultPlan
	a, b *ReliableEndpoint
	mu   sync.Mutex
	got  []Message
}

func newReliablePair(t *testing.T, seed int64, cfg ReliableConfig) *reliablePair {
	t.Helper()
	p := &reliablePair{plan: NewFaultPlan(NewSim(nil), seed)}
	t.Cleanup(func() { p.plan.Close() })
	var err error
	p.a, err = NewReliable(p.plan, "a", func(Message) {}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.b, err = NewReliable(p.plan, "b", func(m Message) {
		p.mu.Lock()
		p.got = append(p.got, m)
		p.mu.Unlock()
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func (p *reliablePair) delivered() []Message {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Message(nil), p.got...)
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestReliableDeliversThroughLoss(t *testing.T) {
	cfg := ReliableConfig{MaxAttempts: 20, BaseBackoff: 2 * time.Millisecond}
	p := newReliablePair(t, 11, cfg)
	// Lossy forward path only: with 20 attempts at 50% loss, a give-up is
	// a ~1e-6 event, so the test is effectively deterministic.
	p.plan.SetLinkFaults("a", "b", LinkFaults{Drop: 0.5})
	const n = 20
	for i := 0; i < n; i++ {
		if err := p.a.Send("b", "ctl", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, func() bool { return len(p.delivered()) >= n }, "all deliveries")
	got := p.delivered()
	if len(got) != n {
		t.Fatalf("delivered %d, want exactly %d (no duplicates)", len(got), n)
	}
	seen := map[byte]bool{}
	for _, m := range got {
		if m.Kind != "ctl" {
			t.Fatalf("kind = %q", m.Kind)
		}
		if seen[m.Payload[0]] {
			t.Fatalf("payload %d delivered twice", m.Payload[0])
		}
		seen[m.Payload[0]] = true
	}
	if p.a.Retries.Value() == 0 {
		t.Error("0.5 drop but no retries recorded")
	}
	if p.a.GiveUps.Value() != 0 {
		t.Errorf("gave up %d times under recoverable loss", p.a.GiveUps.Value())
	}
}

func TestReliableSuppressesDuplicates(t *testing.T) {
	cfg := ReliableConfig{MaxAttempts: 6, BaseBackoff: 2 * time.Millisecond}
	p := newReliablePair(t, 12, cfg)
	p.plan.SetDefaultFaults(LinkFaults{Duplicate: 1})
	for i := 0; i < 10; i++ {
		if err := p.a.Send("b", "ctl", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 2*time.Second, func() bool { return len(p.delivered()) >= 10 }, "deliveries")
	// Let the duplicated envelopes land too.
	p.plan.Quiesce(time.Second)
	if got := len(p.delivered()); got != 10 {
		t.Fatalf("handler saw %d messages, want 10 (duplicates suppressed)", got)
	}
	if p.b.Suppressed.Value() == 0 {
		t.Error("no suppressed duplicates recorded")
	}
}

func TestReliableGiveUpFeedsCallback(t *testing.T) {
	var mu sync.Mutex
	var gaveUp []NodeID
	cfg := ReliableConfig{
		MaxAttempts: 3,
		BaseBackoff: time.Millisecond,
		OnGiveUp: func(to NodeID, kind string) {
			mu.Lock()
			gaveUp = append(gaveUp, to)
			mu.Unlock()
		},
	}
	p := newReliablePair(t, 13, cfg)
	p.plan.Blackhole("b")
	if err := p.a.Send("b", "ctl", nil); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(gaveUp) == 1
	}, "give-up callback")
	if p.a.GiveUps.Value() != 1 {
		t.Fatalf("GiveUps = %d, want 1", p.a.GiveUps.Value())
	}
	if p.a.Pending() != 0 {
		t.Fatalf("pending = %d after give-up", p.a.Pending())
	}
	if len(p.delivered()) != 0 {
		t.Fatal("blackholed message delivered")
	}
}

func TestReliableInOrderSuppressesStale(t *testing.T) {
	cfg := ReliableConfig{InOrder: true, MaxAttempts: 2, BaseBackoff: time.Millisecond}
	p := newReliablePair(t, 14, cfg)
	// Craft envelopes out of order, as a retried old registration would
	// arrive after a newer one.
	newer := encodeReliable(5, "ctl", []byte("new"))
	stale := encodeReliable(3, "ctl", []byte("old"))
	if err := p.plan.Send("a", "b", KindReliable, newer); err != nil {
		t.Fatal(err)
	}
	p.plan.Quiesce(time.Second)
	if err := p.plan.Send("a", "b", KindReliable, stale); err != nil {
		t.Fatal(err)
	}
	p.plan.Quiesce(time.Second)
	got := p.delivered()
	if len(got) != 1 || string(got[0].Payload) != "new" {
		t.Fatalf("delivered %v, want only the newer registration", got)
	}
	if p.b.Suppressed.Value() != 1 {
		t.Fatalf("Suppressed = %d, want 1 (the stale envelope)", p.b.Suppressed.Value())
	}
}

func TestReliableAcksEvenWhenSuppressing(t *testing.T) {
	// A duplicate envelope must still be acked or the sender would retry
	// forever; watch for the ack on the wire.
	net := NewSim(nil)
	defer net.Close()
	var mu sync.Mutex
	var acks []uint64
	if err := net.Register("probe", func(m Message) {
		if m.Kind == KindReliableAck {
			mu.Lock()
			acks = append(acks, binary.LittleEndian.Uint64(m.Payload))
			mu.Unlock()
		}
	}); err != nil {
		t.Fatal(err)
	}
	end, err := NewReliable(net, "b", func(Message) {}, ReliableConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer end.Close()
	env := encodeReliable(9, "ctl", nil)
	for i := 0; i < 2; i++ { // original + duplicate
		if err := net.Send("probe", "b", KindReliable, env); err != nil {
			t.Fatal(err)
		}
	}
	net.Quiesce(time.Second)
	mu.Lock()
	defer mu.Unlock()
	if len(acks) != 2 || acks[0] != 9 || acks[1] != 9 {
		t.Fatalf("acks = %v, want seq 9 acked twice", acks)
	}
}

func TestReliableEnvelopeRoundTrip(t *testing.T) {
	env := encodeReliable(1<<40, "diss.interest", []byte("payload"))
	seq, kind, body, err := decodeReliable(env)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 1<<40 || kind != "diss.interest" || string(body) != "payload" {
		t.Fatalf("round trip: %d %q %q", seq, kind, body)
	}
	if _, _, _, err := decodeReliable(env[:5]); err == nil {
		t.Error("truncated envelope accepted")
	}
}
