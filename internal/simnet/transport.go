package simnet

import (
	"fmt"
	"sort"
	"sync"

	"sspd/internal/metrics"
)

// NodeID names one communication endpoint (a processor, an entity
// wrapper, a coordinator, or a stream source).
type NodeID string

// Message is one transport delivery.
type Message struct {
	From, To NodeID
	// Kind is the application-level message type ("tuples", "join",
	// "interest", ...). Handlers dispatch on it.
	Kind string
	// Payload is the encoded body.
	Payload []byte
}

// Size returns the accounted size of the message in bytes: payload plus
// a fixed header charge mirroring the framing of the TCP transport.
func (m Message) Size() int {
	return len(m.Payload) + frameOverhead(len(m.From), len(m.To), len(m.Kind))
}

func frameOverhead(fromLen, toLen, kindLen int) int {
	// 4-byte total length + 3 length-prefixed strings.
	return 4 + 2 + fromLen + 2 + toLen + 2 + kindLen
}

// Handler consumes delivered messages. Handlers run on transport
// goroutines and must not block for long.
type Handler func(Message)

// Transport moves messages between named nodes and meters every byte.
type Transport interface {
	// Register creates an endpoint. The handler receives messages
	// addressed to id.
	Register(id NodeID, h Handler) error
	// Deregister removes an endpoint; messages to it start failing.
	Deregister(id NodeID) error
	// Send delivers a message from one endpoint to another.
	//
	// Ownership: Send must fully consume payload before returning — the
	// caller may overwrite or pool the backing array the moment Send
	// returns (the relay hot path reuses encode buffers on exactly this
	// guarantee). Implementations that deliver, retry, or delay
	// asynchronously must copy the payload first.
	Send(from, to NodeID, kind string, payload []byte) error
	// Traffic exposes the transport's byte accounting.
	Traffic() *Traffic
	// Close shuts the transport down.
	Close() error
}

// Traffic aggregates byte counters: total, per sending node (egress) and
// per link. All methods are safe for concurrent use.
type Traffic struct {
	mu     sync.Mutex
	total  metrics.ByteMeter
	egress map[NodeID]*metrics.ByteMeter
	links  map[linkKey]*metrics.ByteMeter
}

type linkKey struct{ from, to NodeID }

// NewTraffic returns an empty accounting table.
func NewTraffic() *Traffic {
	return &Traffic{
		egress: make(map[NodeID]*metrics.ByteMeter),
		links:  make(map[linkKey]*metrics.ByteMeter),
	}
}

// Record accounts one message of n bytes on from→to.
func (t *Traffic) Record(from, to NodeID, n int) {
	t.total.Record(n)
	t.mu.Lock()
	eg := t.egress[from]
	if eg == nil {
		eg = &metrics.ByteMeter{}
		t.egress[from] = eg
	}
	lk := t.links[linkKey{from, to}]
	if lk == nil {
		lk = &metrics.ByteMeter{}
		t.links[linkKey{from, to}] = lk
	}
	t.mu.Unlock()
	eg.Record(n)
	lk.Record(n)
}

// TotalBytes returns all bytes sent through the transport.
func (t *Traffic) TotalBytes() int64 { return t.total.Bytes() }

// TotalMessages returns all messages sent through the transport.
func (t *Traffic) TotalMessages() int64 { return t.total.Messages() }

// EgressBytes returns the bytes sent by one node.
func (t *Traffic) EgressBytes(id NodeID) int64 {
	t.mu.Lock()
	eg := t.egress[id]
	t.mu.Unlock()
	if eg == nil {
		return 0
	}
	return eg.Bytes()
}

// IngressBytes returns the bytes received by one node across all links.
func (t *Traffic) IngressBytes(id NodeID) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var total int64
	for key, m := range t.links {
		if key.to == id {
			total += m.Bytes()
		}
	}
	return total
}

// LinkBytes returns the bytes sent on the from→to link.
func (t *Traffic) LinkBytes(from, to NodeID) int64 {
	t.mu.Lock()
	lk := t.links[linkKey{from, to}]
	t.mu.Unlock()
	if lk == nil {
		return 0
	}
	return lk.Bytes()
}

// MaxEgress returns the node with the largest egress and its byte count —
// the hot spot the dissemination experiments watch (a source feeding all
// entities directly maximizes this).
func (t *Traffic) MaxEgress() (NodeID, int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var worst NodeID
	var worstBytes int64 = -1
	ids := make([]NodeID, 0, len(t.egress))
	for id := range t.egress {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if b := t.egress[id].Bytes(); b > worstBytes {
			worst, worstBytes = id, b
		}
	}
	if worstBytes < 0 {
		return "", 0
	}
	return worst, worstBytes
}

// Reset zeroes all counters.
func (t *Traffic) Reset() {
	t.total.Reset()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.egress = make(map[NodeID]*metrics.ByteMeter)
	t.links = make(map[linkKey]*metrics.ByteMeter)
}

// ErrUnknownNode is returned when sending to or from an unregistered id.
type ErrUnknownNode struct {
	ID NodeID
}

// Error implements error.
func (e ErrUnknownNode) Error() string {
	return fmt.Sprintf("simnet: unknown node %q", string(e.ID))
}
