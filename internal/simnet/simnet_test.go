package simnet

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestPointDistance(t *testing.T) {
	if d := (Point{0, 0}).Distance(Point{3, 4}); d != 5 {
		t.Errorf("distance = %v, want 5", d)
	}
	if d := (Point{1, 1}).Distance(Point{1, 1}); d != 0 {
		t.Errorf("self distance = %v", d)
	}
}

func TestCentroid(t *testing.T) {
	if c := Centroid(nil); c != (Point{}) {
		t.Errorf("empty centroid = %v", c)
	}
	c := Centroid([]Point{{0, 0}, {2, 0}, {1, 3}})
	if c.X != 1 || c.Y != 1 {
		t.Errorf("centroid = %v", c)
	}
}

func TestCenterIndex(t *testing.T) {
	if CenterIndex(nil) != -1 {
		t.Error("empty center index")
	}
	pts := []Point{{0, 0}, {10, 0}, {5, 0}}
	if got := CenterIndex(pts); got != 2 {
		t.Errorf("center = %d, want 2 (the midpoint)", got)
	}
}

func TestRadius(t *testing.T) {
	pts := []Point{{0, 0}, {3, 4}}
	if r := Radius(Point{0, 0}, pts); r != 5 {
		t.Errorf("radius = %v", r)
	}
	if r := Radius(Point{0, 0}, nil); r != 0 {
		t.Errorf("empty radius = %v", r)
	}
}

// Property: CenterIndex minimizes max-distance among candidates.
func TestCenterIndexOptimalProperty(t *testing.T) {
	f := func(coords []uint8) bool {
		if len(coords) < 2 {
			return true
		}
		pts := make([]Point, 0, len(coords)/2)
		for i := 0; i+1 < len(coords); i += 2 {
			pts = append(pts, Point{X: float64(coords[i]), Y: float64(coords[i+1])})
		}
		ci := CenterIndex(pts)
		best := Radius(pts[ci], pts)
		for _, p := range pts {
			if Radius(p, pts) < best-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSimNetDelivery(t *testing.T) {
	n := NewSim(nil)
	defer n.Close()
	var mu sync.Mutex
	var got []Message
	if err := n.Register("a", func(Message) {}); err != nil {
		t.Fatal(err)
	}
	if err := n.Register("b", func(m Message) {
		mu.Lock()
		got = append(got, m)
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	if err := n.Send("a", "b", "test", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if !n.Quiesce(time.Second) {
		t.Fatal("quiesce timeout")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 {
		t.Fatalf("deliveries = %d", len(got))
	}
	m := got[0]
	if m.From != "a" || m.To != "b" || m.Kind != "test" || string(m.Payload) != "hello" {
		t.Fatalf("message = %+v", m)
	}
}

func TestSimNetErrors(t *testing.T) {
	n := NewSim(nil)
	defer n.Close()
	if err := n.Register("a", nil); err == nil {
		t.Error("nil handler accepted")
	}
	if err := n.Register("a", func(Message) {}); err != nil {
		t.Fatal(err)
	}
	if err := n.Register("a", func(Message) {}); err == nil {
		t.Error("duplicate register accepted")
	}
	if err := n.Send("a", "missing", "k", nil); err == nil {
		t.Error("send to unknown accepted")
	}
	if err := n.Send("missing", "a", "k", nil); err == nil {
		t.Error("send from unknown accepted")
	}
	var unknown ErrUnknownNode
	err := n.Send("a", "missing", "k", nil)
	if ue, ok := err.(ErrUnknownNode); !ok || ue.ID != "missing" {
		t.Errorf("error = %#v, want ErrUnknownNode{missing}", err)
	}
	_ = unknown
	if err := n.Deregister("missing"); err == nil {
		t.Error("deregister unknown accepted")
	}
}

func TestSimNetTrafficAccounting(t *testing.T) {
	n := NewSim(nil)
	defer n.Close()
	n.Register("src", func(Message) {})
	n.Register("dst", func(Message) {})
	payload := []byte("0123456789")
	if err := n.Send("src", "dst", "tuples", payload); err != nil {
		t.Fatal(err)
	}
	want := int64(Message{From: "src", To: "dst", Kind: "tuples", Payload: payload}.Size())
	tr := n.Traffic()
	if tr.TotalBytes() != want {
		t.Errorf("total = %d, want %d", tr.TotalBytes(), want)
	}
	if tr.TotalMessages() != 1 {
		t.Errorf("messages = %d", tr.TotalMessages())
	}
	if tr.EgressBytes("src") != want {
		t.Errorf("egress = %d", tr.EgressBytes("src"))
	}
	if tr.EgressBytes("dst") != 0 {
		t.Errorf("receiver egress = %d", tr.EgressBytes("dst"))
	}
	if tr.LinkBytes("src", "dst") != want {
		t.Errorf("link = %d", tr.LinkBytes("src", "dst"))
	}
	if tr.LinkBytes("dst", "src") != 0 {
		t.Errorf("reverse link = %d", tr.LinkBytes("dst", "src"))
	}
	id, b := tr.MaxEgress()
	if id != "src" || b != want {
		t.Errorf("max egress = %s/%d", id, b)
	}
	tr.Reset()
	if tr.TotalBytes() != 0 || tr.EgressBytes("src") != 0 {
		t.Error("reset incomplete")
	}
	if id, b := tr.MaxEgress(); id != "" || b != 0 {
		t.Errorf("empty max egress = %q/%d", id, b)
	}
}

func TestSimNetPositionsAndLatency(t *testing.T) {
	n := NewSim(DistanceLatency(0, time.Millisecond))
	defer n.Close()
	n.RegisterAt("a", Point{0, 0}, func(Message) {})
	arrived := make(chan time.Time, 1)
	n.RegisterAt("b", Point{30, 40}, func(Message) { arrived <- time.Now() })
	if p, ok := n.Position("a"); !ok || p != (Point{0, 0}) {
		t.Error("position a")
	}
	if _, ok := n.Position("zz"); ok {
		t.Error("position of unknown node")
	}
	start := time.Now()
	if err := n.Send("a", "b", "k", nil); err != nil {
		t.Fatal(err)
	}
	at := <-arrived
	// Distance 50 → 50ms modeled latency; allow generous slack.
	if got := at.Sub(start); got < 40*time.Millisecond {
		t.Errorf("latency = %v, want >= ~50ms", got)
	}
}

func TestSimNetDeregisterStopsDelivery(t *testing.T) {
	n := NewSim(nil)
	defer n.Close()
	n.Register("a", func(Message) {})
	n.Register("b", func(Message) {})
	if err := n.Deregister("b"); err != nil {
		t.Fatal(err)
	}
	if err := n.Send("a", "b", "k", nil); err == nil {
		t.Error("send to deregistered node accepted")
	}
	if n.Nodes() != 1 {
		t.Errorf("nodes = %d", n.Nodes())
	}
}

func TestSimNetCloseIdempotent(t *testing.T) {
	n := NewSim(nil)
	n.Register("a", func(Message) {})
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if err := n.Register("b", func(Message) {}); err == nil {
		t.Error("register after close accepted")
	}
	if err := n.Send("a", "a", "k", nil); err == nil {
		t.Error("send after close accepted")
	}
}

func TestConstantLatency(t *testing.T) {
	m := ConstantLatency(5 * time.Millisecond)
	if d := m(Point{}, Point{100, 100}); d != 5*time.Millisecond {
		t.Errorf("constant latency = %v", d)
	}
}

func TestMessageSizeMatchesFrame(t *testing.T) {
	msg := Message{From: "alpha", To: "b", Kind: "tuples", Payload: []byte("xyz")}
	frame := appendFrame(nil, msg)
	if msg.Size() != len(frame) {
		t.Errorf("Size() = %d, frame = %d", msg.Size(), len(frame))
	}
}

// Property: frame encode/decode round-trips.
func TestFrameRoundTripProperty(t *testing.T) {
	f := func(from, to, kind string, payload []byte) bool {
		if len(from) > 500 || len(to) > 500 || len(kind) > 500 || len(payload) > 5000 {
			return true
		}
		msg := Message{From: NodeID(from), To: NodeID(to), Kind: kind, Payload: payload}
		frame := appendFrame(nil, msg)
		got, err := readFrame(byteReader(frame))
		if err != nil {
			return false
		}
		if got.From != msg.From || got.To != msg.To || got.Kind != msg.Kind {
			return false
		}
		if len(got.Payload) != len(payload) {
			return false
		}
		for i := range payload {
			if got.Payload[i] != payload[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

type byteReaderT struct {
	buf []byte
	off int
}

func byteReader(b []byte) *byteReaderT { return &byteReaderT{buf: b} }

func (r *byteReaderT) Read(p []byte) (int, error) {
	if r.off >= len(r.buf) {
		return 0, errEOF
	}
	n := copy(p, r.buf[r.off:])
	r.off += n
	return n, nil
}

var errEOF = &eofError{}

type eofError struct{}

func (*eofError) Error() string { return "EOF" }

func TestTCPNetEndToEnd(t *testing.T) {
	n := NewTCP()
	defer n.Close()
	var mu sync.Mutex
	var got []Message
	if err := n.Register("server", func(m Message) {
		mu.Lock()
		got = append(got, m)
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	if err := n.Register("client", func(Message) {}); err != nil {
		t.Fatal(err)
	}
	if addr, ok := n.Address("server"); !ok || addr == "" {
		t.Fatal("server has no address")
	}
	if _, ok := n.Address("nope"); ok {
		t.Error("address of unknown node")
	}
	for i := 0; i < 10; i++ {
		if err := n.Send("client", "server", "tuples", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		c := len(got)
		mu.Unlock()
		if c == 10 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("received %d of 10", c)
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if got[0].From != "client" || got[0].Kind != "tuples" {
		t.Fatalf("message = %+v", got[0])
	}
	if n.Traffic().TotalMessages() != 10 {
		t.Errorf("traffic messages = %d", n.Traffic().TotalMessages())
	}
}

func TestTCPNetErrors(t *testing.T) {
	n := NewTCP()
	defer n.Close()
	if err := n.Register("a", nil); err == nil {
		t.Error("nil handler accepted")
	}
	n.Register("a", func(Message) {})
	if err := n.Register("a", func(Message) {}); err == nil {
		t.Error("duplicate accepted")
	}
	if err := n.Send("a", "missing", "k", nil); err == nil {
		t.Error("send to unknown accepted")
	}
	if err := n.Send("missing", "a", "k", nil); err == nil {
		t.Error("send from unknown accepted")
	}
	if err := n.Deregister("missing"); err == nil {
		t.Error("deregister unknown accepted")
	}
	if err := n.Deregister("a"); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if err := n.Register("b", func(Message) {}); err == nil {
		t.Error("register after close accepted")
	}
}
