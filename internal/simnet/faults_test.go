package simnet

import (
	"strings"
	"sync"
	"testing"
	"time"

	"sspd/internal/metrics"
)

// chaosRig registers two counting endpoints on a SimNet wrapped by a
// FaultPlan.
type chaosRig struct {
	net  *SimNet
	plan *FaultPlan
	mu   sync.Mutex
	got  map[NodeID][]Message
}

func newChaosRig(t *testing.T, seed int64) *chaosRig {
	t.Helper()
	r := &chaosRig{net: NewSim(nil), got: make(map[NodeID][]Message)}
	r.plan = NewFaultPlan(r.net, seed)
	t.Cleanup(func() { r.plan.Close() })
	for _, id := range []NodeID{"a", "b"} {
		id := id
		if err := r.plan.Register(id, func(m Message) {
			r.mu.Lock()
			r.got[id] = append(r.got[id], m)
			r.mu.Unlock()
		}); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func (r *chaosRig) received(id NodeID) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.got[id])
}

func TestFaultPlanPassThroughByDefault(t *testing.T) {
	r := newChaosRig(t, 1)
	for i := 0; i < 50; i++ {
		if err := r.plan.Send("a", "b", "k", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if !r.plan.Quiesce(time.Second) {
		t.Fatal("quiesce")
	}
	if got := r.received("b"); got != 50 {
		t.Fatalf("delivered %d, want 50", got)
	}
	for _, k := range faultKinds {
		if n := r.plan.Injected(k); n != 0 {
			t.Errorf("injected %s = %d with no rules", k, n)
		}
	}
}

func TestFaultPlanDropIsSeededAndCounted(t *testing.T) {
	const sends = 1000
	run := func(seed int64) (int, int64) {
		r := newChaosRig(t, seed)
		r.plan.SetLinkFaults("a", "b", LinkFaults{Drop: 0.2})
		for i := 0; i < sends; i++ {
			if err := r.plan.Send("a", "b", "k", nil); err != nil {
				t.Fatal(err)
			}
		}
		if !r.plan.Quiesce(time.Second) {
			t.Fatal("quiesce")
		}
		return r.received("b"), r.plan.Injected(FaultDrop)
	}
	got1, drops1 := run(42)
	got2, drops2 := run(42)
	if got1 != got2 || drops1 != drops2 {
		t.Fatalf("same seed diverged: %d/%d vs %d/%d", got1, drops1, got2, drops2)
	}
	if got1+int(drops1) != sends {
		t.Fatalf("delivered %d + dropped %d != %d", got1, drops1, sends)
	}
	if drops1 < sends/10 || drops1 > 3*sends/10 {
		t.Fatalf("drop rate wildly off 20%%: %d/%d", drops1, sends)
	}
	got3, _ := run(7)
	if got3 == got1 {
		t.Log("different seeds delivered equal counts (possible but unlikely)")
	}
}

func TestFaultPlanDuplicate(t *testing.T) {
	r := newChaosRig(t, 3)
	r.plan.SetDefaultFaults(LinkFaults{Duplicate: 1})
	for i := 0; i < 10; i++ {
		if err := r.plan.Send("a", "b", "k", nil); err != nil {
			t.Fatal(err)
		}
	}
	if !r.plan.Quiesce(time.Second) {
		t.Fatal("quiesce")
	}
	if got := r.received("b"); got != 20 {
		t.Fatalf("delivered %d, want 20 (every message duplicated)", got)
	}
	if n := r.plan.Injected(FaultDuplicate); n != 10 {
		t.Fatalf("duplicate count = %d, want 10", n)
	}
}

func TestFaultPlanPartitionAndHeal(t *testing.T) {
	r := newChaosRig(t, 4)
	r.plan.Partition("a", "b")
	if err := r.plan.Send("a", "b", "k", nil); err != nil {
		t.Fatal(err)
	}
	if err := r.plan.Send("b", "a", "k", nil); err != nil {
		t.Fatal(err)
	}
	if !r.plan.Quiesce(time.Second) {
		t.Fatal("quiesce")
	}
	if r.received("a")+r.received("b") != 0 {
		t.Fatal("partitioned link delivered")
	}
	if n := r.plan.Injected(FaultPartition); n != 2 {
		t.Fatalf("partition count = %d, want 2 (both directions)", n)
	}
	r.plan.Heal("a", "b")
	if err := r.plan.Send("a", "b", "k", nil); err != nil {
		t.Fatal(err)
	}
	if !r.plan.Quiesce(time.Second) {
		t.Fatal("quiesce")
	}
	if r.received("b") != 1 {
		t.Fatal("healed link still blocked")
	}
}

func TestFaultPlanBlackholeAndRestore(t *testing.T) {
	r := newChaosRig(t, 5)
	r.plan.Blackhole("b")
	_ = r.plan.Send("a", "b", "k", nil)
	_ = r.plan.Send("b", "a", "k", nil) // from a blackholed node: also lost
	if !r.plan.Quiesce(time.Second) {
		t.Fatal("quiesce")
	}
	if r.received("a")+r.received("b") != 0 {
		t.Fatal("blackholed node exchanged messages")
	}
	if n := r.plan.Injected(FaultBlackhole); n != 2 {
		t.Fatalf("blackhole count = %d, want 2", n)
	}
	r.plan.Restore("b")
	_ = r.plan.Send("a", "b", "k", nil)
	if !r.plan.Quiesce(time.Second) {
		t.Fatal("quiesce")
	}
	if r.received("b") != 1 {
		t.Fatal("restored node unreachable")
	}
}

func TestFaultPlanJitterAndReorderStillDeliver(t *testing.T) {
	r := newChaosRig(t, 6)
	r.plan.SetDefaultFaults(LinkFaults{Jitter: 2 * time.Millisecond, Reorder: 0.5, ReorderDelay: time.Millisecond})
	for i := 0; i < 40; i++ {
		if err := r.plan.Send("a", "b", "k", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if !r.plan.Quiesce(2 * time.Second) {
		t.Fatal("quiesce")
	}
	if got := r.received("b"); got != 40 {
		t.Fatalf("delivered %d, want 40 (jitter/reorder must not lose)", got)
	}
	if r.plan.Injected(FaultJitter) == 0 {
		t.Error("no jitter recorded")
	}
	if r.plan.Injected(FaultReorder) == 0 {
		t.Error("no reorders recorded")
	}
}

func TestFaultPlanRuntimeToggle(t *testing.T) {
	r := newChaosRig(t, 7)
	r.plan.SetDefaultFaults(LinkFaults{Drop: 1})
	_ = r.plan.Send("a", "b", "k", nil)
	r.plan.SetEnabled(false)
	_ = r.plan.Send("a", "b", "k", nil)
	if !r.plan.Quiesce(time.Second) {
		t.Fatal("quiesce")
	}
	if got := r.received("b"); got != 1 {
		t.Fatalf("delivered %d, want exactly the message sent while disabled", got)
	}
}

func TestFaultPlanMetricsRegistry(t *testing.T) {
	r := newChaosRig(t, 8)
	reg := metrics.NewRegistry()
	r.plan.SetRegistry(reg)
	r.plan.SetLinkFaults("a", "b", LinkFaults{Drop: 1})
	for i := 0; i < 5; i++ {
		_ = r.plan.Send("a", "b", "k", nil)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `sspd_faults_injected{kind="drop",link="a->b"} 5`
	if !strings.Contains(sb.String(), want) {
		t.Fatalf("exposition missing %q:\n%s", want, sb.String())
	}
}
