package simnet

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"sspd/internal/metrics"
)

// FaultKind names one class of injected fault, used as the `kind` label
// on the sspd_faults_injected metric.
type FaultKind string

// Injected fault kinds.
const (
	FaultDrop      FaultKind = "drop"
	FaultDuplicate FaultKind = "duplicate"
	FaultReorder   FaultKind = "reorder"
	FaultJitter    FaultKind = "jitter"
	FaultPartition FaultKind = "partition"
	FaultBlackhole FaultKind = "blackhole"
)

// faultKinds lists every kind, for stable iteration in reports.
var faultKinds = []FaultKind{
	FaultDrop, FaultDuplicate, FaultReorder, FaultJitter, FaultPartition, FaultBlackhole,
}

// LinkFaults is the fault rule applied to one directed link (or, as the
// plan default, to every link without an override). Zero value = no
// faults.
type LinkFaults struct {
	// Drop is the probability a message is silently lost.
	Drop float64
	// Duplicate is the probability a message is delivered twice.
	Duplicate float64
	// Reorder is the probability a message is held back by ReorderDelay
	// so later sends overtake it.
	Reorder float64
	// ReorderDelay is how long a reordered message is held (default 2ms).
	ReorderDelay time.Duration
	// Jitter adds a uniform random delay in [0, Jitter) to every
	// message on the link.
	Jitter time.Duration
}

func (f LinkFaults) zero() bool {
	return f.Drop == 0 && f.Duplicate == 0 && f.Reorder == 0 && f.Jitter == 0
}

// FaultPlan wraps any Transport with deterministic, seeded fault
// injection: per-link drop/duplicate/reorder/jitter rules, bidirectional
// partitions, and node blackholes — all togglable at runtime. Every
// injected fault is counted, and (when a registry is attached) exposed
// as sspd_faults_injected{kind,link}. A FaultPlan forwards Quiesce to
// the wrapped transport after its own delayed deliveries drain, so
// simulation code that settles on SimNet keeps working under faults.
type FaultPlan struct {
	inner Transport

	mu         sync.Mutex
	rng        *rand.Rand
	defaults   LinkFaults
	links      map[linkKey]LinkFaults
	partitions map[pairKey]bool
	blackholes map[NodeID]bool
	registry   *metrics.Registry
	counts     map[FaultKind]*atomic.Int64

	enabled  atomic.Bool
	inflight atomic.Int64
	closed   chan struct{}
	closeOne sync.Once
}

// pairKey is an unordered node pair (partitions are bidirectional).
type pairKey struct{ a, b NodeID }

func mkPair(a, b NodeID) pairKey {
	if b < a {
		a, b = b, a
	}
	return pairKey{a, b}
}

// NewFaultPlan wraps a transport; the seed makes every probabilistic
// decision reproducible for a fixed send sequence. The plan starts
// enabled but with no fault rules, i.e. a transparent pass-through.
func NewFaultPlan(inner Transport, seed int64) *FaultPlan {
	p := &FaultPlan{
		inner:      inner,
		rng:        rand.New(rand.NewSource(seed)),
		links:      make(map[linkKey]LinkFaults),
		partitions: make(map[pairKey]bool),
		blackholes: make(map[NodeID]bool),
		counts:     make(map[FaultKind]*atomic.Int64, len(faultKinds)),
		closed:     make(chan struct{}),
	}
	for _, k := range faultKinds {
		p.counts[k] = &atomic.Int64{}
	}
	p.enabled.Store(true)
	return p
}

// SetEnabled toggles all fault injection at runtime; disabled, the plan
// is a transparent pass-through (rules are kept, not cleared).
func (p *FaultPlan) SetEnabled(on bool) { p.enabled.Store(on) }

// Enabled reports whether fault injection is active.
func (p *FaultPlan) Enabled() bool { return p.enabled.Load() }

// SetDefaultFaults installs the rule applied to every link without a
// per-link override.
func (p *FaultPlan) SetDefaultFaults(f LinkFaults) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.defaults = f
}

// SetLinkFaults overrides the fault rule on one directed link.
func (p *FaultPlan) SetLinkFaults(from, to NodeID, f LinkFaults) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.links[linkKey{from, to}] = f
}

// ClearLinkFaults removes a per-link override (the default applies again).
func (p *FaultPlan) ClearLinkFaults(from, to NodeID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.links, linkKey{from, to})
}

// Partition blocks all traffic between a and b, both directions.
func (p *FaultPlan) Partition(a, b NodeID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.partitions[mkPair(a, b)] = true
}

// Heal removes a partition.
func (p *FaultPlan) Heal(a, b NodeID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.partitions, mkPair(a, b))
}

// Blackhole silently discards every message to or from the given nodes
// (modeling a crashed or unreachable process whose endpoint is still
// registered).
func (p *FaultPlan) Blackhole(ids ...NodeID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, id := range ids {
		p.blackholes[id] = true
	}
}

// Restore removes nodes from the blackhole set.
func (p *FaultPlan) Restore(ids ...NodeID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, id := range ids {
		delete(p.blackholes, id)
	}
}

// ClearFaults removes every rule, partition, and blackhole.
func (p *FaultPlan) ClearFaults() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.defaults = LinkFaults{}
	p.links = make(map[linkKey]LinkFaults)
	p.partitions = make(map[pairKey]bool)
	p.blackholes = make(map[NodeID]bool)
}

// SetRegistry attaches a metric registry; from then on every injected
// fault also increments sspd_faults_injected{kind,link}. The federation
// attaches its own registry automatically when constructed over a
// FaultPlan.
func (p *FaultPlan) SetRegistry(r *metrics.Registry) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.registry = r
}

// Injected returns the total count of one fault kind.
func (p *FaultPlan) Injected(kind FaultKind) int64 {
	c, ok := p.counts[kind]
	if !ok {
		return 0
	}
	return c.Load()
}

// InjectedTotals returns every kind's count (kinds with zero injections
// included), for reports.
func (p *FaultPlan) InjectedTotals() map[string]int64 {
	out := make(map[string]int64, len(faultKinds))
	for _, k := range faultKinds {
		out[string(k)] = p.counts[k].Load()
	}
	return out
}

// count records one injected fault on a link.
func (p *FaultPlan) count(kind FaultKind, from, to NodeID, reg *metrics.Registry) {
	p.counts[kind].Add(1)
	if reg != nil {
		reg.Counter("sspd_faults_injected",
			"Transport faults injected by the chaos layer, by kind and link.",
			metrics.L("kind", string(kind)),
			metrics.L("link", string(from)+"->"+string(to))).Inc()
	}
}

// Register implements Transport.
func (p *FaultPlan) Register(id NodeID, h Handler) error { return p.inner.Register(id, h) }

// Deregister implements Transport.
func (p *FaultPlan) Deregister(id NodeID) error { return p.inner.Deregister(id) }

// Traffic implements Transport (bytes are accounted by the wrapped
// transport at actual delivery, so dropped messages are never counted).
func (p *FaultPlan) Traffic() *Traffic { return p.inner.Traffic() }

// Send implements Transport, applying the configured fault rules.
func (p *FaultPlan) Send(from, to NodeID, kind string, payload []byte) error {
	if !p.enabled.Load() {
		return p.inner.Send(from, to, kind, payload)
	}

	// All probabilistic decisions are drawn under one lock from the
	// seeded generator, so a fixed send sequence yields a fixed fault
	// sequence.
	p.mu.Lock()
	reg := p.registry
	if p.blackholes[from] || p.blackholes[to] {
		p.mu.Unlock()
		p.count(FaultBlackhole, from, to, reg)
		return nil
	}
	if p.partitions[mkPair(from, to)] {
		p.mu.Unlock()
		p.count(FaultPartition, from, to, reg)
		return nil
	}
	rule, ok := p.links[linkKey{from, to}]
	if !ok {
		rule = p.defaults
	}
	if rule.zero() {
		p.mu.Unlock()
		return p.inner.Send(from, to, kind, payload)
	}
	drop := rule.Drop > 0 && p.rng.Float64() < rule.Drop
	var dup, reorder bool
	var delay time.Duration
	if !drop {
		dup = rule.Duplicate > 0 && p.rng.Float64() < rule.Duplicate
		reorder = rule.Reorder > 0 && p.rng.Float64() < rule.Reorder
		if rule.Jitter > 0 {
			delay = time.Duration(p.rng.Int63n(int64(rule.Jitter)))
		}
	}
	p.mu.Unlock()

	if drop {
		p.count(FaultDrop, from, to, reg)
		return nil
	}
	if delay > 0 {
		p.count(FaultJitter, from, to, reg)
	}
	if reorder {
		p.count(FaultReorder, from, to, reg)
		rd := rule.ReorderDelay
		if rd <= 0 {
			rd = 2 * time.Millisecond
		}
		delay += rd
	}
	if dup {
		p.count(FaultDuplicate, from, to, reg)
		p.sendAfter(delay+time.Millisecond, from, to, kind, payload)
	}
	if delay > 0 {
		p.sendAfter(delay, from, to, kind, payload)
		return nil
	}
	return p.inner.Send(from, to, kind, payload)
}

// sendAfter delivers a message through the wrapped transport after a
// delay; the in-flight count keeps Quiesce honest.
func (p *FaultPlan) sendAfter(d time.Duration, from, to NodeID, kind string, payload []byte) {
	// The delivery outlives this call, but Transport.Send lets the caller
	// reuse the payload buffer once Send returns — copy before deferring.
	if len(payload) > 0 {
		cp := make([]byte, len(payload))
		copy(cp, payload)
		payload = cp
	}
	p.inflight.Add(1)
	go func() {
		defer p.inflight.Add(-1)
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
		case <-p.closed:
			return
		}
		_ = p.inner.Send(from, to, kind, payload)
	}()
}

// Quiesce waits for the plan's delayed deliveries to drain and then for
// the wrapped transport to go idle (when it supports quiescence). A
// delayed delivery can wake new traffic, so both conditions are
// re-checked until they hold together.
func (p *FaultPlan) Quiesce(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	q, hasQ := p.inner.(interface{ Quiesce(time.Duration) bool })
	for {
		if p.inflight.Load() == 0 {
			innerIdle := true
			if hasQ {
				remain := time.Until(deadline)
				if remain <= 0 {
					return false
				}
				innerIdle = q.Quiesce(remain)
			}
			if innerIdle && p.inflight.Load() == 0 {
				return true
			}
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
}

// Close implements Transport: pending delayed deliveries are cancelled
// and the wrapped transport is closed.
func (p *FaultPlan) Close() error {
	p.closeOne.Do(func() { close(p.closed) })
	return p.inner.Close()
}

var _ Transport = (*FaultPlan)(nil)

// String summarizes the plan's current rules (diagnostics).
func (p *FaultPlan) String() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return fmt.Sprintf("faultplan{enabled=%v default=%+v links=%d partitions=%d blackholes=%d}",
		p.enabled.Load(), p.defaults, len(p.links), len(p.partitions), len(p.blackholes))
}
