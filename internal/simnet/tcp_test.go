package simnet

import (
	"net"
	"sync"
	"testing"
	"time"
)

// TestTCPNetWriteDeadlineUnwedgesSender is the regression test for the
// unbounded-blocking bug: a peer that accepts connections but never
// reads will eventually exert TCP backpressure, and without a write
// deadline the sender's cached connection blocks forever inside Send.
// With deadlines, every Send completes in bounded time and the stale
// connection is evicted from the cache.
func TestTCPNetWriteDeadlineUnwedgesSender(t *testing.T) {
	tn := NewTCP()
	defer tn.Close()
	tn.SetTimeouts(time.Second, 100*time.Millisecond)
	if err := tn.Register("a", func(Message) {}); err != nil {
		t.Fatal(err)
	}

	// An unresponsive listener: accepts and then ignores every
	// connection, so written frames pile up in kernel buffers.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var heldMu sync.Mutex
	var held []net.Conn
	defer func() {
		heldMu.Lock()
		defer heldMu.Unlock()
		for _, c := range held {
			c.Close()
		}
	}()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			heldMu.Lock()
			held = append(held, c) // never read
			heldMu.Unlock()
		}
	}()
	tn.mu.Lock()
	tn.nodes["dead"] = &tcpNode{id: "dead", handler: func(Message) {}, listener: ln}
	tn.mu.Unlock()

	// Push well past any plausible socket buffering. Each Send must
	// return within ~2 write deadlines (original + one retry on a fresh
	// connection); the watchdog catches a wedged sender.
	payload := make([]byte, 1<<20)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 32; i++ {
			_ = tn.Send("a", "dead", "k", payload) // errors are fine; blocking is not
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Send wedged on an unresponsive peer (write deadline not applied)")
	}
	if tn.Evictions() == 0 {
		t.Fatal("no stale connection was evicted")
	}
}

func TestTCPNetDialTimeoutConfigured(t *testing.T) {
	tn := NewTCP()
	defer tn.Close()
	if tn.dialTimeout != 5*time.Second || tn.writeTimeout != 5*time.Second {
		t.Fatalf("defaults = %v/%v, want 5s/5s", tn.dialTimeout, tn.writeTimeout)
	}
	tn.SetTimeouts(time.Second, 2*time.Second)
	if tn.dialTimeout != time.Second || tn.writeTimeout != 2*time.Second {
		t.Fatal("SetTimeouts did not apply")
	}
	tn.SetTimeouts(0, 0) // zero keeps current values
	if tn.dialTimeout != time.Second || tn.writeTimeout != 2*time.Second {
		t.Fatal("zero timeout overwrote configured values")
	}
}
