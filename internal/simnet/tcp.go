package simnet

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// TCPNet is the Transport implementation over real sockets. Every node
// gets a listener on 127.0.0.1; Send frames the message and writes it on
// a cached connection. The wire framing matches Message.Size exactly so
// byte accounting agrees with SimNet:
//
//	uint32 frame length (excluding itself)
//	uint16 len(from) | from
//	uint16 len(to)   | to
//	uint16 len(kind) | kind
//	payload (rest of frame)
type TCPNet struct {
	traffic *Traffic

	// dialTimeout bounds outbound connection attempts; writeTimeout
	// bounds each frame write. A write that hits its deadline evicts the
	// cached connection, so a hung or unresponsive peer can never wedge
	// a sender indefinitely.
	dialTimeout  time.Duration
	writeTimeout time.Duration
	evictions    atomic.Int64

	mu     sync.RWMutex
	nodes  map[NodeID]*tcpNode
	conns  map[NodeID]net.Conn // outbound connection cache by destination
	closed bool
}

type tcpNode struct {
	id       NodeID
	handler  Handler
	listener net.Listener
	wg       sync.WaitGroup
}

// NewTCP returns an empty TCP transport with default 5s dial and write
// deadlines.
func NewTCP() *TCPNet {
	return &TCPNet{
		traffic:      NewTraffic(),
		dialTimeout:  5 * time.Second,
		writeTimeout: 5 * time.Second,
		nodes:        make(map[NodeID]*tcpNode),
		conns:        make(map[NodeID]net.Conn),
	}
}

// SetTimeouts adjusts the dial and per-write deadlines (zero keeps the
// current value). Call before heavy use; it is safe at any time.
func (t *TCPNet) SetTimeouts(dial, write time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if dial > 0 {
		t.dialTimeout = dial
	}
	if write > 0 {
		t.writeTimeout = write
	}
}

// Evictions reports how many cached connections were dropped after a
// failed or timed-out write.
func (t *TCPNet) Evictions() int64 { return t.evictions.Load() }

// Register implements Transport: it opens a loopback listener for the
// node and serves frames to the handler.
func (t *TCPNet) Register(id NodeID, h Handler) error {
	if h == nil {
		return fmt.Errorf("simnet: node %q needs a handler", id)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("simnet: listen for %q: %w", id, err)
	}
	n := &tcpNode{id: id, handler: h, listener: ln}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		ln.Close()
		return fmt.Errorf("simnet: closed")
	}
	if _, dup := t.nodes[id]; dup {
		t.mu.Unlock()
		ln.Close()
		return fmt.Errorf("simnet: node %q already registered", id)
	}
	t.nodes[id] = n
	t.mu.Unlock()

	n.wg.Add(1)
	go n.serve()
	return nil
}

func (n *tcpNode) serve() {
	defer n.wg.Done()
	for {
		conn, err := n.listener.Accept()
		if err != nil {
			return // listener closed
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			defer conn.Close()
			r := bufio.NewReader(conn)
			for {
				msg, err := readFrame(r)
				if err != nil {
					return
				}
				n.handler(msg)
			}
		}()
	}
}

// Address returns the node's listen address, for out-of-band exchange
// (e.g. the CLI printing where a node listens).
func (t *TCPNet) Address(id NodeID) (string, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n, ok := t.nodes[id]
	if !ok {
		return "", false
	}
	return n.listener.Addr().String(), true
}

// Deregister implements Transport.
func (t *TCPNet) Deregister(id NodeID) error {
	t.mu.Lock()
	n, ok := t.nodes[id]
	if !ok {
		t.mu.Unlock()
		return ErrUnknownNode{ID: id}
	}
	delete(t.nodes, id)
	if c, ok := t.conns[id]; ok {
		c.Close()
		delete(t.conns, id)
	}
	t.mu.Unlock()
	n.listener.Close()
	n.wg.Wait()
	return nil
}

// Send implements Transport.
func (t *TCPNet) Send(from, to NodeID, kind string, payload []byte) error {
	t.mu.RLock()
	if t.closed {
		t.mu.RUnlock()
		return fmt.Errorf("simnet: closed")
	}
	if _, ok := t.nodes[from]; !ok {
		t.mu.RUnlock()
		return ErrUnknownNode{ID: from}
	}
	dst, ok := t.nodes[to]
	if !ok {
		t.mu.RUnlock()
		return ErrUnknownNode{ID: to}
	}
	conn := t.conns[to]
	addr := dst.listener.Addr().String()
	wt := t.writeTimeout
	t.mu.RUnlock()

	if conn == nil {
		var err error
		conn, err = t.dial(to, addr)
		if err != nil {
			return err
		}
	}
	msg := Message{From: from, To: to, Kind: kind, Payload: payload}
	frame := appendFrame(nil, msg)
	t.traffic.Record(from, to, len(frame))
	if err := writeDeadlined(conn, frame, wt); err != nil {
		// Connection went stale (peer gone, or unresponsive past the
		// write deadline); evict it and retry once on a fresh one.
		t.dropConn(to, conn)
		conn, derr := t.dial(to, addr)
		if derr != nil {
			return derr
		}
		if err := writeDeadlined(conn, frame, wt); err != nil {
			t.dropConn(to, conn)
			return fmt.Errorf("simnet: send %s→%s: %w", from, to, err)
		}
	}
	return nil
}

// writeDeadlined writes one frame under the transport's write deadline.
func writeDeadlined(conn net.Conn, frame []byte, timeout time.Duration) error {
	if timeout > 0 {
		if err := conn.SetWriteDeadline(time.Now().Add(timeout)); err != nil {
			return err
		}
	}
	_, err := conn.Write(frame)
	return err
}

func (t *TCPNet) dial(to NodeID, addr string) (net.Conn, error) {
	t.mu.RLock()
	dt := t.dialTimeout
	t.mu.RUnlock()
	conn, err := net.DialTimeout("tcp", addr, dt)
	if err != nil {
		return nil, fmt.Errorf("simnet: dial %q: %w", to, err)
	}
	t.mu.Lock()
	if existing, ok := t.conns[to]; ok {
		// Lost a dial race; use the cached connection.
		t.mu.Unlock()
		conn.Close()
		return existing, nil
	}
	t.conns[to] = conn
	t.mu.Unlock()
	return conn, nil
}

func (t *TCPNet) dropConn(to NodeID, conn net.Conn) {
	conn.Close()
	t.evictions.Add(1)
	t.mu.Lock()
	if t.conns[to] == conn {
		delete(t.conns, to)
	}
	t.mu.Unlock()
}

// Traffic implements Transport.
func (t *TCPNet) Traffic() *Traffic { return t.traffic }

// Close implements Transport.
func (t *TCPNet) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	nodes := make([]*tcpNode, 0, len(t.nodes))
	for _, n := range t.nodes {
		nodes = append(nodes, n)
	}
	t.nodes = make(map[NodeID]*tcpNode)
	conns := t.conns
	t.conns = make(map[NodeID]net.Conn)
	t.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	for _, n := range nodes {
		n.listener.Close()
		n.wg.Wait()
	}
	return nil
}

const maxFrame = 16 << 20

// appendFrame encodes msg onto dst.
func appendFrame(dst []byte, msg Message) []byte {
	body := 2 + len(msg.From) + 2 + len(msg.To) + 2 + len(msg.Kind) + len(msg.Payload)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(body))
	for _, s := range []string{string(msg.From), string(msg.To), msg.Kind} {
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(s)))
		dst = append(dst, s...)
	}
	return append(dst, msg.Payload...)
}

// readFrame decodes one frame from r.
func readFrame(r io.Reader) (Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Message{}, err
	}
	body := binary.LittleEndian.Uint32(hdr[:])
	if body > maxFrame {
		return Message{}, errors.New("simnet: frame exceeds bound")
	}
	buf := make([]byte, body)
	if _, err := io.ReadFull(r, buf); err != nil {
		return Message{}, err
	}
	var msg Message
	off := 0
	readStr := func() (string, error) {
		if len(buf)-off < 2 {
			return "", errors.New("simnet: truncated frame")
		}
		n := int(binary.LittleEndian.Uint16(buf[off:]))
		off += 2
		if len(buf)-off < n {
			return "", errors.New("simnet: truncated frame string")
		}
		s := string(buf[off : off+n])
		off += n
		return s, nil
	}
	from, err := readStr()
	if err != nil {
		return Message{}, err
	}
	to, err := readStr()
	if err != nil {
		return Message{}, err
	}
	kind, err := readStr()
	if err != nil {
		return Message{}, err
	}
	msg.From, msg.To, msg.Kind = NodeID(from), NodeID(to), kind
	msg.Payload = buf[off:]
	return msg, nil
}

var _ Transport = (*TCPNet)(nil)
