package simnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"sspd/internal/metrics"
)

// Reliable-delivery message kinds. Control-plane messages ride inside
// KindReliable envelopes; every received envelope is acknowledged with
// KindReliableAck, duplicates included (the ack may have been the thing
// that was lost).
const (
	KindReliable    = "rel.msg"
	KindReliableAck = "rel.ack"
)

// ReliableConfig tunes a ReliableEndpoint. The zero value gets sane
// defaults from normalized().
type ReliableConfig struct {
	// MaxAttempts is the total number of transmissions per message
	// before giving up (default 6).
	MaxAttempts int
	// BaseBackoff is the wait after the first transmission; it doubles
	// per retry (default 10ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the doubling (default 500ms).
	MaxBackoff time.Duration
	// JitterFrac randomizes each backoff by ±this fraction, decorrelating
	// retry storms (default 0.2).
	JitterFrac float64
	// Seed seeds the backoff jitter generator (0 = fixed default seed;
	// jitter only affects timing, never correctness).
	Seed int64
	// InOrder makes the receiver suppress messages older than the newest
	// already delivered from the same sender (acked but not handed to
	// the handler). Correct for full-state control messages — an interest
	// registration supersedes every earlier one — where a retried stale
	// message must never overwrite newer state.
	InOrder bool
	// OnGiveUp fires after MaxAttempts transmissions go unacknowledged.
	// It feeds the failure detector instead of blocking the sender: the
	// peer is likely dead or partitioned away.
	OnGiveUp func(to NodeID, kind string)
}

func (c ReliableConfig) normalized() ReliableConfig {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 6
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 10 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 500 * time.Millisecond
	}
	if c.JitterFrac <= 0 {
		c.JitterFrac = 0.2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// ReliableEndpoint owns one transport endpoint and gives its
// control-plane sends at-least-once delivery with receiver-side
// suppression: sequence-numbered envelopes, acks, bounded retries with
// exponential backoff and jitter, and an explicit give-up callback.
// Non-reliable kinds (tuple traffic) pass through to the inner handler
// untouched, so one endpoint serves both planes.
type ReliableEndpoint struct {
	transport Transport
	self      NodeID
	inner     Handler
	cfg       ReliableConfig

	mu      sync.Mutex
	nextSeq uint64
	pending map[uint64]chan struct{}
	seen    map[NodeID]*dedupState
	rng     *rand.Rand
	closed  chan struct{}
	closeMu sync.Once

	// Retries counts retransmissions, GiveUps exhausted deliveries,
	// Suppressed duplicate or stale envelopes acked but not delivered.
	Retries    metrics.Counter
	GiveUps    metrics.Counter
	Suppressed metrics.Counter
}

// dedupState tracks which sequence numbers from one sender were already
// delivered. In InOrder mode only the newest delivered seq matters;
// otherwise a floor plus a sparse set above it survives reordering.
type dedupState struct {
	floor uint64
	above map[uint64]struct{}
}

// NewReliable registers `self` on the transport. h receives both
// unwrapped reliable messages and ordinary messages of other kinds.
func NewReliable(t Transport, self NodeID, h Handler, cfg ReliableConfig) (*ReliableEndpoint, error) {
	if t == nil || h == nil {
		return nil, fmt.Errorf("simnet: reliable endpoint %q needs a transport and a handler", self)
	}
	e := &ReliableEndpoint{
		transport: t,
		self:      self,
		inner:     h,
		cfg:       cfg.normalized(),
		pending:   make(map[uint64]chan struct{}),
		seen:      make(map[NodeID]*dedupState),
		closed:    make(chan struct{}),
	}
	e.rng = rand.New(rand.NewSource(e.cfg.Seed))
	if err := t.Register(self, e.handle); err != nil {
		return nil, err
	}
	return e, nil
}

// ID returns the endpoint's transport address.
func (e *ReliableEndpoint) ID() NodeID { return e.self }

// Send queues one reliable delivery and returns immediately; retries run
// in the background and exhaustion is reported through OnGiveUp, never
// by blocking the caller.
func (e *ReliableEndpoint) Send(to NodeID, kind string, payload []byte) error {
	select {
	case <-e.closed:
		return errors.New("simnet: reliable endpoint closed")
	default:
	}
	e.mu.Lock()
	e.nextSeq++
	seq := e.nextSeq
	ack := make(chan struct{})
	e.pending[seq] = ack
	e.mu.Unlock()
	env := encodeReliable(seq, kind, payload)
	go e.deliver(to, kind, seq, env, ack)
	return nil
}

// deliver transmits until acked, the endpoint closes, or attempts run out.
func (e *ReliableEndpoint) deliver(to NodeID, kind string, seq uint64, env []byte, ack chan struct{}) {
	defer func() {
		e.mu.Lock()
		delete(e.pending, seq)
		e.mu.Unlock()
	}()
	backoff := e.cfg.BaseBackoff
	for attempt := 0; attempt < e.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			e.Retries.Inc()
		}
		// A transport error (unknown peer during a repair window) is
		// treated exactly like a lost message: retry, then give up.
		_ = e.transport.Send(e.self, to, KindReliable, env)
		t := time.NewTimer(e.jittered(backoff))
		select {
		case <-ack:
			t.Stop()
			return
		case <-e.closed:
			t.Stop()
			return
		case <-t.C:
		}
		backoff *= 2
		if backoff > e.cfg.MaxBackoff {
			backoff = e.cfg.MaxBackoff
		}
	}
	e.GiveUps.Inc()
	if e.cfg.OnGiveUp != nil {
		e.cfg.OnGiveUp(to, kind)
	}
}

// jittered spreads a backoff by ±JitterFrac.
func (e *ReliableEndpoint) jittered(d time.Duration) time.Duration {
	e.mu.Lock()
	f := 1 + e.cfg.JitterFrac*(2*e.rng.Float64()-1)
	e.mu.Unlock()
	out := time.Duration(float64(d) * f)
	if out <= 0 {
		out = d
	}
	return out
}

// handle is the transport callback: unwrap + ack reliable envelopes,
// resolve acks, and pass everything else straight through.
func (e *ReliableEndpoint) handle(m Message) {
	switch m.Kind {
	case KindReliable:
		seq, kind, body, err := decodeReliable(m.Payload)
		if err != nil {
			return // corrupt envelope; drop (sender will retry)
		}
		// Always ack — the lost message may have been our previous ack.
		var sb [8]byte
		binary.LittleEndian.PutUint64(sb[:], seq)
		_ = e.transport.Send(e.self, m.From, KindReliableAck, sb[:])
		if e.shouldDeliver(m.From, seq) {
			e.inner(Message{From: m.From, To: m.To, Kind: kind, Payload: body})
		} else {
			e.Suppressed.Inc()
		}
	case KindReliableAck:
		if len(m.Payload) != 8 {
			return
		}
		seq := binary.LittleEndian.Uint64(m.Payload)
		e.mu.Lock()
		ack := e.pending[seq]
		delete(e.pending, seq)
		e.mu.Unlock()
		if ack != nil {
			close(ack)
		}
	default:
		e.inner(m)
	}
}

// shouldDeliver applies per-sender dedup (and ordering, when configured)
// and records delivery.
func (e *ReliableEndpoint) shouldDeliver(from NodeID, seq uint64) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.seen[from]
	if st == nil {
		st = &dedupState{above: make(map[uint64]struct{})}
		e.seen[from] = st
	}
	if e.cfg.InOrder {
		// floor doubles as "newest delivered": anything at or below it is
		// stale or duplicate.
		if seq <= st.floor {
			return false
		}
		st.floor = seq
		return true
	}
	if seq <= st.floor {
		return false
	}
	if _, dup := st.above[seq]; dup {
		return false
	}
	st.above[seq] = struct{}{}
	for {
		if _, ok := st.above[st.floor+1]; !ok {
			break
		}
		st.floor++
		delete(st.above, st.floor)
	}
	return true
}

// Pending returns the number of unacknowledged deliveries in flight.
func (e *ReliableEndpoint) Pending() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.pending)
}

// Close stops retries and deregisters the endpoint.
func (e *ReliableEndpoint) Close() error {
	e.closeMu.Do(func() { close(e.closed) })
	return e.transport.Deregister(e.self)
}

// encodeReliable frames seq + inner kind + payload into an envelope.
func encodeReliable(seq uint64, kind string, payload []byte) []byte {
	buf := make([]byte, 0, 8+2+len(kind)+len(payload))
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(kind)))
	buf = append(buf, kind...)
	return append(buf, payload...)
}

// decodeReliable splits an envelope back into its parts.
func decodeReliable(env []byte) (seq uint64, kind string, payload []byte, err error) {
	if len(env) < 10 {
		return 0, "", nil, errors.New("simnet: truncated reliable envelope")
	}
	seq = binary.LittleEndian.Uint64(env)
	n := int(binary.LittleEndian.Uint16(env[8:]))
	if len(env) < 10+n {
		return 0, "", nil, errors.New("simnet: truncated reliable kind")
	}
	return seq, string(env[10 : 10+n]), env[10+n:], nil
}
