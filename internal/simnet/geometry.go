// Package simnet provides the communication substrate of sspd. The paper
// assumes entities are spread over a wide-area network while processors
// inside an entity share a fast local network; simnet substitutes a
// measurable equivalent: nodes carry synthetic 2-D coordinates, link
// latency grows with distance, and every byte on every link is metered —
// the currency in which the paper's communication costs are expressed.
//
// Two Transport implementations share one interface: SimNet delivers
// in-process (deterministic byte accounting, simulated latency) and
// TCPNet sends over real sockets via the stdlib net package, exercising
// the identical code paths the paper planned to "deploy onto real
// network environment".
package simnet

import (
	"math"
)

// Point is a location in the synthetic 2-D coordinate space standing in
// for geography. The coordinator tree's "geographical center" selection
// and locality-aware dissemination trees operate on these.
type Point struct {
	X, Y float64
}

// Distance returns the Euclidean distance between two points.
func (p Point) Distance(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Centroid returns the arithmetic mean of the points (zero Point for an
// empty slice).
func Centroid(pts []Point) Point {
	if len(pts) == 0 {
		return Point{}
	}
	var c Point
	for _, p := range pts {
		c.X += p.X
		c.Y += p.Y
	}
	c.X /= float64(len(pts))
	c.Y /= float64(len(pts))
	return c
}

// CenterIndex returns the index of the point minimizing the maximum
// distance to the others (the 1-center on the given candidates), the
// "geographical center" rule used when picking cluster parents. It
// returns -1 for an empty slice.
func CenterIndex(pts []Point) int {
	if len(pts) == 0 {
		return -1
	}
	best, bestRadius := 0, math.Inf(1)
	for i, p := range pts {
		radius := 0.0
		for _, q := range pts {
			if d := p.Distance(q); d > radius {
				radius = d
			}
		}
		if radius < bestRadius {
			best, bestRadius = i, radius
		}
	}
	return best
}

// Radius returns the maximum distance from center to any point.
func Radius(center Point, pts []Point) float64 {
	r := 0.0
	for _, p := range pts {
		if d := center.Distance(p); d > r {
			r = d
		}
	}
	return r
}
