package simnet

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// LatencyModel maps a link to a one-way delivery delay.
type LatencyModel func(from, to Point) time.Duration

// ConstantLatency returns d for every link.
func ConstantLatency(d time.Duration) LatencyModel {
	return func(_, _ Point) time.Duration { return d }
}

// DistanceLatency returns base plus perUnit per unit of Euclidean
// distance — the wide-area model (locality matters).
func DistanceLatency(base time.Duration, perUnit time.Duration) LatencyModel {
	return func(from, to Point) time.Duration {
		return base + time.Duration(from.Distance(to)*float64(perUnit))
	}
}

// SimNet is the in-process Transport. Each node has a position and an
// inbox goroutine; Send enqueues the message and the inbox delivers it
// after the modeled latency. With a zero latency model delivery is still
// asynchronous but immediate.
type SimNet struct {
	latency LatencyModel
	traffic *Traffic

	mu     sync.RWMutex
	nodes  map[NodeID]*simNode
	closed bool
}

type simNode struct {
	id      NodeID
	pos     Point
	handler Handler
	inbox   chan delivery
	done    chan struct{}
	// sendMu serializes sends against inbox closure: senders hold the
	// read side across the channel send; Deregister/Close take the
	// write side before closing. The inbox consumer keeps draining
	// until the close, so blocked senders always make progress.
	sendMu sync.RWMutex
	closed bool
	// pending counts messages from the moment a sender commits to this
	// node until the handler for them returns. Incremented at enqueue
	// and decremented after processing, it never dips to zero in the
	// middle of a delivery cascade (a handler increments its target
	// before returning), which is what makes Quiesce sound.
	pending atomic.Int64
}

// trySend delivers d unless the node is closing. It reports whether the
// message was accepted.
func (n *simNode) trySend(d delivery) bool {
	n.sendMu.RLock()
	defer n.sendMu.RUnlock()
	if n.closed {
		return false
	}
	n.pending.Add(1)
	n.inbox <- d
	return true
}

// shutdown marks the node closed and closes its inbox exactly once.
func (n *simNode) shutdown() {
	n.sendMu.Lock()
	alreadyClosed := n.closed
	n.closed = true
	n.sendMu.Unlock()
	if !alreadyClosed {
		close(n.inbox)
	}
	<-n.done
}

type delivery struct {
	msg   Message
	delay time.Duration
}

// simInboxDepth bounds each node's inbox; senders block when it is full,
// modeling backpressure on a congested receiver.
const simInboxDepth = 4096

// NewSim returns a simulated network with the given latency model (nil
// means zero latency).
func NewSim(latency LatencyModel) *SimNet {
	if latency == nil {
		latency = ConstantLatency(0)
	}
	return &SimNet{
		latency: latency,
		traffic: NewTraffic(),
		nodes:   make(map[NodeID]*simNode),
	}
}

// Register implements Transport with the node at the origin. Use
// RegisterAt to place it.
func (s *SimNet) Register(id NodeID, h Handler) error {
	return s.RegisterAt(id, Point{}, h)
}

// RegisterAt creates an endpoint at a position in the coordinate space.
func (s *SimNet) RegisterAt(id NodeID, at Point, h Handler) error {
	if h == nil {
		return fmt.Errorf("simnet: node %q needs a handler", id)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("simnet: closed")
	}
	if _, dup := s.nodes[id]; dup {
		return fmt.Errorf("simnet: node %q already registered", id)
	}
	n := &simNode{
		id:      id,
		pos:     at,
		handler: h,
		inbox:   make(chan delivery, simInboxDepth),
		done:    make(chan struct{}),
	}
	s.nodes[id] = n
	go n.run()
	return nil
}

func (n *simNode) run() {
	defer close(n.done)
	for d := range n.inbox {
		if d.delay > 0 {
			time.Sleep(d.delay)
		}
		n.handler(d.msg)
		n.pending.Add(-1)
	}
}

// Deregister implements Transport.
func (s *SimNet) Deregister(id NodeID) error {
	s.mu.Lock()
	n, ok := s.nodes[id]
	if !ok {
		s.mu.Unlock()
		return ErrUnknownNode{ID: id}
	}
	delete(s.nodes, id)
	s.mu.Unlock()
	n.shutdown()
	return nil
}

// Position returns a node's location.
func (s *SimNet) Position(id NodeID) (Point, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n, ok := s.nodes[id]
	if !ok {
		return Point{}, false
	}
	return n.pos, true
}

// Send implements Transport. It blocks when the destination inbox is
// full (backpressure) and fails if either endpoint is unknown.
func (s *SimNet) Send(from, to NodeID, kind string, payload []byte) error {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return fmt.Errorf("simnet: closed")
	}
	src, ok := s.nodes[from]
	if !ok {
		s.mu.RUnlock()
		return ErrUnknownNode{ID: from}
	}
	dst, ok := s.nodes[to]
	if !ok {
		s.mu.RUnlock()
		return ErrUnknownNode{ID: to}
	}
	delay := s.latency(src.pos, dst.pos)
	s.mu.RUnlock()

	msg := Message{From: from, To: to, Kind: kind, Payload: payload}
	s.traffic.Record(from, to, msg.Size())
	// Delivery is asynchronous, but the Transport.Send contract lets the
	// caller reuse the payload buffer as soon as Send returns — so the
	// inbox gets its own copy, which the handler then owns outright.
	if len(payload) > 0 {
		cp := make([]byte, len(payload))
		copy(cp, payload)
		msg.Payload = cp
	}
	// A concurrent deregistration makes this a send-to-nobody: the
	// message was on the wire when the node vanished.
	dst.trySend(delivery{msg: msg, delay: delay})
	return nil
}

// Traffic implements Transport.
func (s *SimNet) Traffic() *Traffic { return s.traffic }

// Nodes returns the number of registered endpoints.
func (s *SimNet) Nodes() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.nodes)
}

// Quiesce waits until every inbox is empty AND every handler has
// returned (two consecutive observations, so a handler that sends new
// messages re-arms the wait), or the timeout expires.
func (s *SimNet) Quiesce(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	idleStreak := 0
	for {
		s.mu.RLock()
		busy := 0
		for _, n := range s.nodes {
			busy += int(n.pending.Load())
		}
		s.mu.RUnlock()
		if busy == 0 {
			idleStreak++
			if idleStreak >= 2 {
				return true
			}
		} else {
			idleStreak = 0
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
}

// Close implements Transport.
func (s *SimNet) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	nodes := make([]*simNode, 0, len(s.nodes))
	for _, n := range s.nodes {
		nodes = append(nodes, n)
	}
	s.nodes = make(map[NodeID]*simNode)
	s.mu.Unlock()
	for _, n := range nodes {
		n.shutdown()
	}
	return nil
}

var _ Transport = (*SimNet)(nil)
