package dissemination

import (
	"fmt"
	"sort"

	"sspd/internal/simnet"
)

// This file implements the adaptive side of Section 3.1: "entities may
// join or leave at any time" and "the shapes of these trees have
// significant impact on the dissemination efficiency". Trees accept
// members at runtime, survive departures by re-attaching orphaned
// subtrees, and incrementally reorganize toward shorter edges — the
// coherency-preserving reorganization of the author's companion work
// (reference [13] of the paper).

// Rewire records one parent change made by a dynamic operation. The
// caller (federation layer) must tell the child's relay to re-register
// its interest with the new parent.
type Rewire struct {
	Child     simnet.NodeID
	OldParent simnet.NodeID
	NewParent simnet.NodeID
}

// AddMember attaches a new member at runtime to the closest node with
// fanout room (the Locality rule). It returns the attachment as a
// Rewire (OldParent empty).
func (t *Tree) AddMember(m Member, fanout int) (Rewire, error) {
	if fanout < 1 {
		fanout = 1
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if m.ID == t.source {
		return Rewire{}, fmt.Errorf("dissemination: member %q duplicates the source", m.ID)
	}
	if _, dup := t.pos[m.ID]; dup {
		return Rewire{}, fmt.Errorf("dissemination: member %q already in the %s tree", m.ID, t.stream)
	}
	t.pos[m.ID] = m.Pos
	parent := t.closestWithRoom(m.Pos, fanout, nil)
	if parent == "" {
		parent = t.source
	}
	t.attach(m.ID, parent)
	return Rewire{Child: m.ID, NewParent: parent}, nil
}

// RemoveMember detaches a member at runtime. Its children re-attach to
// the closest remaining node with fanout room outside their own
// subtrees; the returned rewires tell the caller which relays must
// re-register. Removing the source or an unknown member is an error.
func (t *Tree) RemoveMember(id simnet.NodeID, fanout int) ([]Rewire, error) {
	if fanout < 1 {
		fanout = 1
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id == t.source {
		return nil, fmt.Errorf("dissemination: cannot remove the source of %s", t.stream)
	}
	parent, ok := t.parent[id]
	if !ok {
		return nil, fmt.Errorf("dissemination: %q not in the %s tree", id, t.stream)
	}
	t.children[parent] = removeNode(t.children[parent], id)
	t.version.Add(1)
	orphans := t.children[id]
	delete(t.children, id)
	delete(t.parent, id)
	delete(t.pos, id)

	var rewires []Rewire
	for _, o := range orphans {
		delete(t.parent, o) // detach before searching so o's subtree is well-defined
		forbidden := t.subtreeLocked(o)
		np := t.closestWithRoom(t.pos[o], fanout, forbidden)
		if np == "" {
			np = t.source
		}
		t.attach(o, np)
		rewires = append(rewires, Rewire{Child: o, OldParent: id, NewParent: np})
	}
	return rewires, nil
}

// Reorganize performs one incremental improvement pass: every member
// (in sorted order) switches to the closest eligible node — one with
// fanout room, outside the member's own subtree — when that node is
// strictly closer than its current parent. It returns the rewires made.
// Repeated passes converge: each switch strictly shrinks total edge
// length.
//
// Reorganize applies moves immediately. Callers running live relays
// should prefer the two-phase ReorganizeStep/ApplyRewire protocol, which
// lets them register the child's interest along the new path BEFORE the
// data path flips (make-before-break) so no tuples are lost in transit.
func (t *Tree) Reorganize(fanout int) []Rewire {
	var rewires []Rewire
	for {
		rw, ok := t.ReorganizeStep(fanout)
		if !ok {
			break
		}
		if err := t.ApplyRewire(rw, fanout); err != nil {
			break
		}
		rewires = append(rewires, rw)
		if len(rewires) > len(t.Members())*4 {
			break // safety bound
		}
	}
	return rewires
}

// ReorganizeStep finds the single best improving parent switch — the
// member whose distance to its parent shrinks the most by moving to the
// closest eligible node — WITHOUT applying it. ok is false when the tree
// is locally optimal.
func (t *Tree) ReorganizeStep(fanout int) (Rewire, bool) {
	if fanout < 1 {
		fanout = 1
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	members := make([]simnet.NodeID, 0, len(t.parent))
	for id := range t.parent {
		members = append(members, id)
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })

	var best Rewire
	bestGain := 0.0
	for _, id := range members {
		cur := t.parent[id]
		curD := t.pos[id].Distance(t.pos[cur])
		forbidden := t.subtreeLocked(id)
		for cand := range t.pos {
			if cand == id || cand == cur || forbidden[cand] {
				continue
			}
			if len(t.children[cand]) >= fanout {
				continue
			}
			gain := curD - t.pos[id].Distance(t.pos[cand])
			if gain > bestGain ||
				(gain == bestGain && gain > 0 && (best.Child == "" || id < best.Child ||
					(id == best.Child && cand < best.NewParent))) {
				best = Rewire{Child: id, OldParent: cur, NewParent: cand}
				bestGain = gain
			}
		}
	}
	return best, bestGain > 0
}

// ApplyRewire commits a planned parent switch, re-validating that it is
// still legal (the child exists, the new parent has fanout room and is
// outside the child's subtree).
func (t *Tree) ApplyRewire(rw Rewire, fanout int) error {
	if fanout < 1 {
		fanout = 1
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	cur, ok := t.parent[rw.Child]
	if !ok {
		return fmt.Errorf("dissemination: rewire of unknown member %q", rw.Child)
	}
	if cur != rw.OldParent {
		return fmt.Errorf("dissemination: rewire of %q expected parent %q, found %q",
			rw.Child, rw.OldParent, cur)
	}
	if _, ok := t.pos[rw.NewParent]; !ok {
		return fmt.Errorf("dissemination: rewire target %q unknown", rw.NewParent)
	}
	if len(t.children[rw.NewParent]) >= fanout {
		return fmt.Errorf("dissemination: rewire target %q is full", rw.NewParent)
	}
	if t.subtreeLocked(rw.Child)[rw.NewParent] {
		return fmt.Errorf("dissemination: rewire target %q inside %q's subtree",
			rw.NewParent, rw.Child)
	}
	t.children[cur] = removeNode(t.children[cur], rw.Child)
	t.version.Add(1)
	t.attach(rw.Child, rw.NewParent)
	return nil
}

// subtreeLocked returns the set of nodes in id's subtree (including id).
func (t *Tree) subtreeLocked(id simnet.NodeID) map[simnet.NodeID]bool {
	out := map[simnet.NodeID]bool{id: true}
	queue := []simnet.NodeID{id}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, c := range t.children[cur] {
			if !out[c] {
				out[c] = true
				queue = append(queue, c)
			}
		}
	}
	return out
}

// closestWithRoom finds the nearest node to pos with spare fanout,
// excluding the forbidden set (nil = none). Deterministic tie-breaks.
func (t *Tree) closestWithRoom(pos simnet.Point, fanout int, forbidden map[simnet.NodeID]bool) simnet.NodeID {
	ids := make([]simnet.NodeID, 0, len(t.pos))
	for id := range t.pos {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	best := simnet.NodeID("")
	bestD := 0.0
	for _, id := range ids {
		if forbidden[id] {
			continue
		}
		if len(t.children[id]) >= fanout && id != t.source {
			continue
		}
		if id != t.source && t.parent[id] == "" {
			continue // detached node (mid-operation)
		}
		if id == t.source && len(t.children[id]) >= fanout {
			// Prefer respecting the bound at the source too, but allow
			// it as last resort (handled by the caller's fallback).
			continue
		}
		d := t.pos[id].Distance(pos)
		if best == "" || d < bestD {
			best, bestD = id, d
		}
	}
	return best
}

func removeNode(list []simnet.NodeID, id simnet.NodeID) []simnet.NodeID {
	out := make([]simnet.NodeID, 0, len(list))
	for _, n := range list {
		if n != id {
			out = append(out, n)
		}
	}
	return out
}
