package dissemination

import (
	"sync"
	"testing"
	"time"

	"sspd/internal/simnet"
	"sspd/internal/stream"
	"sspd/internal/trace"
)

func quotesSchema() *stream.Schema {
	return stream.MustSchema("quotes",
		stream.Field{Name: "symbol", Type: stream.KindString, Card: 100},
		stream.Field{Name: "price", Type: stream.KindFloat, Lo: 0, Hi: 1000},
	)
}

func quote(seq uint64, symbol string, price float64) stream.Tuple {
	return stream.NewTuple("quotes", seq, time.Unix(int64(seq), 0).UTC(),
		stream.String(symbol), stream.Float(price))
}

// deliverySink collects delivered tuples safely.
type deliverySink struct {
	mu  sync.Mutex
	got []stream.Tuple
}

func (d *deliverySink) deliver(t stream.Tuple) {
	d.mu.Lock()
	d.got = append(d.got, t)
	d.mu.Unlock()
}

func (d *deliverySink) count() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.got)
}

// buildChain wires src -> e00 -> e01 relays on a fresh SimNet.
func buildChain(t *testing.T) (*simnet.SimNet, *Relay, *Relay, *Relay, *deliverySink, *deliverySink) {
	t.Helper()
	net := simnet.NewSim(nil)
	t.Cleanup(func() { net.Close() })
	members := []Member{
		{ID: "e00", Pos: simnet.Point{X: 10}},
		{ID: "e01", Pos: simnet.Point{X: 20}},
	}
	tr, err := Build("quotes", testSource, members, Balanced, 1)
	if err != nil {
		t.Fatal(err)
	}
	sc := quotesSchema()
	src, err := NewRelay(tr, "src", sc, net, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	s0, s1 := &deliverySink{}, &deliverySink{}
	r0, err := NewRelay(tr, "e00", sc, net, s0.deliver, 0)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := NewRelay(tr, "e01", sc, net, s1.deliver, 0)
	if err != nil {
		t.Fatal(err)
	}
	return net, src, r0, r1, s0, s1
}

func TestRelayConstructionErrors(t *testing.T) {
	net := simnet.NewSim(nil)
	defer net.Close()
	tr, _ := Build("quotes", testSource, mkMembers(2), Balanced, 2)
	sc := quotesSchema()
	if _, err := NewRelay(nil, "e00", sc, net, nil, 0); err == nil {
		t.Error("nil tree accepted")
	}
	if _, err := NewRelay(tr, "e00", nil, net, nil, 0); err == nil {
		t.Error("nil schema accepted")
	}
	if _, err := NewRelay(tr, "e00", sc, nil, nil, 0); err == nil {
		t.Error("nil transport accepted")
	}
	if _, err := NewRelay(tr, "stranger", sc, net, nil, 0); err == nil {
		t.Error("non-member accepted")
	}
}

func TestRelayForwardAllBeforeRegistration(t *testing.T) {
	net, src, _, _, s0, s1 := buildChain(t)
	// Give both relays unconstrained local interest so everything is
	// delivered (registration also happens, matching everything).
	_, r0, r1 := src, src, src
	_ = r0
	_ = r1
	if err := src.Publish(stream.Batch{quote(1, "ibm", 10), quote(2, "msft", 20)}); err != nil {
		t.Fatal(err)
	}
	if !net.Quiesce(time.Second) {
		t.Fatal("quiesce")
	}
	// Without local interest nothing is delivered, but tuples still
	// flow down (children had no registration -> forward all).
	if s0.count() != 0 || s1.count() != 0 {
		t.Errorf("delivered without local interest: %d/%d", s0.count(), s1.count())
	}
	if net.Traffic().LinkBytes("src", "e00") == 0 {
		t.Error("no bytes on src->e00")
	}
	if net.Traffic().LinkBytes("e00", "e01") == 0 {
		t.Error("no bytes on e00->e01 (chain relay broken)")
	}
}

func TestRelayDeliversMatchingTuples(t *testing.T) {
	net, src, r0, r1, s0, s1 := buildChain(t)
	if err := r0.SetLocalInterest([]stream.Interest{
		stream.NewInterest("quotes").WithRange("price", 0, 50),
	}); err != nil {
		t.Fatal(err)
	}
	if err := r1.SetLocalInterest([]stream.Interest{
		stream.NewInterest("quotes").WithKeys("symbol", "msft"),
	}); err != nil {
		t.Fatal(err)
	}
	if !net.Quiesce(time.Second) {
		t.Fatal("quiesce (registrations)")
	}
	if err := src.Publish(stream.Batch{
		quote(1, "ibm", 10),   // r0 only
		quote(2, "msft", 500), // r1 only
		quote(3, "goog", 999), // nobody
	}); err != nil {
		t.Fatal(err)
	}
	if !net.Quiesce(time.Second) {
		t.Fatal("quiesce (tuples)")
	}
	if s0.count() != 1 {
		t.Errorf("e00 delivered %d, want 1", s0.count())
	}
	if s1.count() != 1 {
		t.Errorf("e01 delivered %d, want 1", s1.count())
	}
	// Early filtering: tuple 3 matches nobody, so the source should
	// not even put it on the wire once interests are registered.
	if src.Suppressed.Value() == 0 {
		t.Error("source suppressed nothing")
	}
}

func TestEarlyFilteringReducesDownstreamBytes(t *testing.T) {
	// Two chains: one with narrow registered interests, one with
	// unconstrained interests. The filtered chain must move fewer bytes.
	run := func(narrow bool) int64 {
		net := simnet.NewSim(nil)
		defer net.Close()
		members := []Member{
			{ID: "e00", Pos: simnet.Point{X: 10}},
			{ID: "e01", Pos: simnet.Point{X: 20}},
		}
		tr, err := Build("quotes", testSource, members, Balanced, 1)
		if err != nil {
			t.Fatal(err)
		}
		sc := quotesSchema()
		src, err := NewRelay(tr, "src", sc, net, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		sink := &deliverySink{}
		r0, err := NewRelay(tr, "e00", sc, net, sink.deliver, 0)
		if err != nil {
			t.Fatal(err)
		}
		r1, err := NewRelay(tr, "e01", sc, net, sink.deliver, 0)
		if err != nil {
			t.Fatal(err)
		}
		in := stream.NewInterest("quotes")
		if narrow {
			in = in.WithRange("price", 0, 100) // 10% of the domain
		}
		if err := r0.SetLocalInterest([]stream.Interest{in}); err != nil {
			t.Fatal(err)
		}
		if err := r1.SetLocalInterest([]stream.Interest{in}); err != nil {
			t.Fatal(err)
		}
		if !net.Quiesce(time.Second) {
			t.Fatal("quiesce")
		}
		net.Traffic().Reset()
		var batch stream.Batch
		for i := 0; i < 200; i++ {
			batch = append(batch, quote(uint64(i), "ibm", float64(i*5%1000)))
		}
		if err := src.Publish(batch); err != nil {
			t.Fatal(err)
		}
		if !net.Quiesce(time.Second) {
			t.Fatal("quiesce")
		}
		return net.Traffic().TotalBytes()
	}
	narrowBytes := run(true)
	wideBytes := run(false)
	if narrowBytes*2 >= wideBytes {
		t.Errorf("early filtering saved too little: narrow=%d wide=%d", narrowBytes, wideBytes)
	}
}

func TestPublishOnlyFromSource(t *testing.T) {
	_, _, r0, _, _, _ := buildChain(t)
	if err := r0.Publish(stream.Batch{quote(1, "a", 1)}); err == nil {
		t.Error("non-source publish accepted")
	}
}

func TestRelayIDAndClose(t *testing.T) {
	net, _, r0, _, _, _ := buildChain(t)
	if r0.ID() != "e00" {
		t.Errorf("ID = %s", r0.ID())
	}
	if err := r0.Close(); err != nil {
		t.Fatal(err)
	}
	// Transport endpoint is gone.
	if err := net.Send("src", "e00", KindTuples, nil); err == nil {
		t.Error("send to closed relay accepted")
	}
}

func TestInterestSetCodecRoundTrip(t *testing.T) {
	set := stream.NewInterestSet("quotes")
	set.Add(stream.NewInterest("quotes").WithRange("price", 5, 10).WithKeys("symbol", "a", "b"))
	set.Add(stream.NewInterest("quotes"))
	payload, err := encodeInterestSet(set)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeInterestSet(payload, "quotes")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Terms) != 2 {
		t.Fatalf("terms = %d", len(got.Terms))
	}
	sc := quotesSchema()
	if !got.Matches(sc, quote(1, "a", 7)) {
		t.Error("decoded set rejects matching tuple")
	}
	if _, err := decodeInterestSet(payload, "other"); err == nil {
		t.Error("wrong-stream decode accepted")
	}
	if _, err := decodeInterestSet([]byte("{"), "quotes"); err == nil {
		t.Error("corrupt payload accepted")
	}
}

func TestAggregateIncludesChildren(t *testing.T) {
	// Three-level chain: e01's interest must reach src through e00's
	// aggregate, so src forwards tuples that only e01 wants.
	net, src, r0, r1, s0, s1 := buildChain(t)
	if err := r0.SetLocalInterest([]stream.Interest{
		stream.NewInterest("quotes").WithRange("price", 0, 10),
	}); err != nil {
		t.Fatal(err)
	}
	if err := r1.SetLocalInterest([]stream.Interest{
		stream.NewInterest("quotes").WithRange("price", 900, 1000),
	}); err != nil {
		t.Fatal(err)
	}
	if !net.Quiesce(time.Second) {
		t.Fatal("quiesce")
	}
	if err := src.Publish(stream.Batch{quote(1, "x", 950)}); err != nil {
		t.Fatal(err)
	}
	if !net.Quiesce(time.Second) {
		t.Fatal("quiesce")
	}
	if s1.count() != 1 {
		t.Errorf("grandchild delivered %d, want 1", s1.count())
	}
	if s0.count() != 0 {
		t.Errorf("middle node delivered %d, want 0", s0.count())
	}
}

func TestManyRelaysFanout(t *testing.T) {
	net := simnet.NewSim(nil)
	defer net.Close()
	members := mkMembers(15)
	tr, err := Build("quotes", testSource, members, Balanced, 3)
	if err != nil {
		t.Fatal(err)
	}
	sc := quotesSchema()
	src, err := NewRelay(tr, "src", sc, net, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	sinks := make(map[simnet.NodeID]*deliverySink)
	var relays []*Relay
	for _, m := range members {
		sink := &deliverySink{}
		sinks[m.ID] = sink
		r, err := NewRelay(tr, m.ID, sc, net, sink.deliver, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.SetLocalInterest([]stream.Interest{stream.NewInterest("quotes")}); err != nil {
			t.Fatal(err)
		}
		relays = append(relays, r)
	}
	if !net.Quiesce(2 * time.Second) {
		t.Fatal("quiesce")
	}
	if err := src.Publish(stream.Batch{quote(1, "ibm", 50)}); err != nil {
		t.Fatal(err)
	}
	if !net.Quiesce(2 * time.Second) {
		t.Fatal("quiesce")
	}
	for id, sink := range sinks {
		if sink.count() != 1 {
			t.Errorf("%s delivered %d, want 1", id, sink.count())
		}
	}
	// Source egress is bounded by fanout: it sent to exactly 3 children.
	srcEgress := net.Traffic().EgressBytes("src")
	total := net.Traffic().TotalBytes()
	if srcEgress*3 > total {
		t.Errorf("source egress %d not a small share of total %d", srcEgress, total)
	}
	_ = relays
}

// TestRelaySpanPropagation is the trace-propagation contract: a sampled
// tuple relayed src -> e00 -> e01 keeps its span across the transport
// boundary (the codec carries it) and each relay on the path records a
// hop, ending in the delivery hop at the interested entity.
func TestRelaySpanPropagation(t *testing.T) {
	net, src, r0, r1, s0, s1 := buildChain(t)
	_ = r0
	tr := trace.New(1, 64)
	trace.SetActive(tr)
	t.Cleanup(func() { trace.SetActive(nil) })

	// Only the far entity (two hops away) is interested.
	if err := r1.SetLocalInterest([]stream.Interest{
		stream.NewInterest("quotes").WithRange("price", 0, 1000),
	}); err != nil {
		t.Fatal(err)
	}
	if !net.Quiesce(time.Second) {
		t.Fatal("registration did not settle")
	}

	tu := quote(1, "ibm", 100)
	tu.Span = uint64(tr.Sample("quotes", tu.Seq, "src"))
	if tu.Span == 0 {
		t.Fatal("sampling must assign a span")
	}
	if err := src.Publish(stream.Batch{tu}); err != nil {
		t.Fatal(err)
	}
	if !net.Quiesce(time.Second) {
		t.Fatal("publish did not settle")
	}
	if s0.count() != 0 {
		t.Fatalf("uninterested relay delivered %d tuples", s0.count())
	}
	s1.mu.Lock()
	got := append([]stream.Tuple(nil), s1.got...)
	s1.mu.Unlock()
	if len(got) != 1 {
		t.Fatalf("delivered %d tuples, want 1", len(got))
	}
	if got[0].Span != tu.Span {
		t.Fatalf("span lost in relay: got %d want %d", got[0].Span, tu.Span)
	}

	span, ok := tr.Get(trace.SpanID(tu.Span))
	if !ok {
		t.Fatal("span not in tracer")
	}
	var stages []string
	for _, h := range span.Hops {
		stages = append(stages, h.Stage+"@"+h.Node)
	}
	want := []string{
		trace.StagePublish + "@src",
		trace.StageRelay + "@src",
		trace.StageRelay + "@e00",
		trace.StageRelay + "@e01",
		trace.StageDeliver + "@e01",
	}
	if len(stages) != len(want) {
		t.Fatalf("hops = %v, want %v", stages, want)
	}
	for i := range want {
		if stages[i] != want[i] {
			t.Fatalf("hop %d = %q, want %q (all: %v)", i, stages[i], want[i], stages)
		}
	}
}

// TestRelayLinkBytesMeter checks the downstream link byte meter counts
// encoded sub-batch bytes.
func TestRelayLinkBytesMeter(t *testing.T) {
	net, src, _, r1, _, _ := buildChain(t)
	if err := r1.SetLocalInterest([]stream.Interest{
		stream.NewInterest("quotes").WithRange("price", 0, 1000),
	}); err != nil {
		t.Fatal(err)
	}
	if !net.Quiesce(time.Second) {
		t.Fatal("registration did not settle")
	}
	batch := stream.Batch{quote(1, "ibm", 100), quote(2, "msft", 200)}
	if err := src.Publish(batch); err != nil {
		t.Fatal(err)
	}
	if !net.Quiesce(time.Second) {
		t.Fatal("publish did not settle")
	}
	if src.LinkBytes.Messages() != 1 {
		t.Fatalf("source sent %d link messages, want 1", src.LinkBytes.Messages())
	}
	want := int64(batch.Size())
	if src.LinkBytes.Bytes() != want {
		t.Fatalf("source link bytes = %d, want %d", src.LinkBytes.Bytes(), want)
	}
}
