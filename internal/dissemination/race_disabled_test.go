//go:build !race

package dissemination

const raceEnabled = false
