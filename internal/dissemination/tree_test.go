package dissemination

import (
	"fmt"
	"testing"

	"sspd/internal/simnet"
)

func mkMembers(n int) []Member {
	out := make([]Member, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, Member{
			ID:  simnet.NodeID(fmt.Sprintf("e%02d", i)),
			Pos: simnet.Point{X: float64(i%8) * 10, Y: float64(i/8) * 10},
		})
	}
	return out
}

var testSource = Member{ID: "src", Pos: simnet.Point{X: 0, Y: 0}}

func TestBuildErrors(t *testing.T) {
	if _, err := Build("", testSource, nil, Balanced, 2); err == nil {
		t.Error("empty stream accepted")
	}
	if _, err := Build("s", Member{}, nil, Balanced, 2); err == nil {
		t.Error("empty source accepted")
	}
	dup := []Member{{ID: "a"}, {ID: "a"}}
	if _, err := Build("s", testSource, dup, Balanced, 2); err == nil {
		t.Error("duplicate member accepted")
	}
	if _, err := Build("s", testSource, []Member{{ID: "src"}}, Balanced, 2); err == nil {
		t.Error("member duplicating source accepted")
	}
	if _, err := Build("s", testSource, nil, Strategy(99), 2); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestSourceDirectShape(t *testing.T) {
	members := mkMembers(10)
	tr, err := Build("quotes", testSource, members, SourceDirect, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := tr.MaxFanout(); got != 10 {
		t.Errorf("source-direct fanout = %d, want 10", got)
	}
	if got := tr.MaxDepth(); got != 1 {
		t.Errorf("source-direct depth = %d, want 1", got)
	}
	for _, m := range members {
		if tr.Parent(m.ID) != "src" {
			t.Errorf("parent of %s = %s", m.ID, tr.Parent(m.ID))
		}
	}
}

func TestBalancedShape(t *testing.T) {
	members := mkMembers(13)
	tr, err := Build("quotes", testSource, members, Balanced, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := tr.MaxFanout(); got > 3 {
		t.Errorf("balanced fanout = %d, want <= 3", got)
	}
	// 13 members, fanout 3: source has 3, next level 9, one more at
	// depth 3.
	if got := tr.MaxDepth(); got != 3 {
		t.Errorf("balanced depth = %d, want 3", got)
	}
	if got := len(tr.Members()); got != 13 {
		t.Errorf("members = %d", got)
	}
}

func TestLocalityShape(t *testing.T) {
	members := mkMembers(20)
	tr, err := Build("quotes", testSource, members, Locality, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := tr.MaxFanout(); got > 3 {
		t.Errorf("locality fanout = %d, want <= 3", got)
	}
	// Locality must not cost more total wire than balanced (it greedily
	// minimizes each attachment).
	bal, err := Build("quotes", testSource, members, Balanced, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tr.TotalEdgeLength() > bal.TotalEdgeLength() {
		t.Errorf("locality edge length %v > balanced %v",
			tr.TotalEdgeLength(), bal.TotalEdgeLength())
	}
}

func TestBuildFanoutClamp(t *testing.T) {
	tr, err := Build("s", testSource, mkMembers(5), Balanced, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.MaxFanout() > 1 {
		t.Errorf("fanout clamp failed: %d", tr.MaxFanout())
	}
	if tr.MaxDepth() != 5 {
		t.Errorf("chain depth = %d", tr.MaxDepth())
	}
}

func TestTreeAccessors(t *testing.T) {
	tr, err := Build("quotes", testSource, mkMembers(4), Balanced, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Stream() != "quotes" || tr.Source() != "src" {
		t.Error("accessors wrong")
	}
	if tr.Depth("src") != 0 {
		t.Error("source depth")
	}
	if tr.Depth("unknown") != -1 {
		t.Error("unknown depth should be -1")
	}
	ch := tr.Children("src")
	if len(ch) != 2 {
		t.Errorf("source children = %v", ch)
	}
	// Children returns a copy.
	ch[0] = "mutated"
	if tr.Children("src")[0] == "mutated" {
		t.Error("Children returns internal storage")
	}
	if tr.Parent("src") != "" {
		t.Error("source parent should be empty")
	}
}

func TestStrategyString(t *testing.T) {
	cases := map[Strategy]string{
		SourceDirect: "source-direct",
		Balanced:     "balanced",
		Locality:     "locality",
		Strategy(9):  "unknown",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", s, got, want)
		}
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	tr, err := Build("s", testSource, mkMembers(3), Balanced, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Orphan a node.
	tr.parent["e01"] = "ghost"
	if err := tr.Validate(); err == nil {
		t.Error("orphan undetected")
	}
	// Create a cycle.
	tr2, _ := Build("s", testSource, mkMembers(3), Balanced, 2)
	tr2.parent["e00"] = "e01"
	tr2.parent["e01"] = "e00"
	if err := tr2.Validate(); err == nil {
		t.Error("cycle undetected")
	}
}
