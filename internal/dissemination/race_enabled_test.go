//go:build race

package dissemination

// raceEnabled reports whether the race detector is instrumenting this
// build; its shadow-state bookkeeping allocates, so exact allocation
// guards are meaningless under -race.
const raceEnabled = true
