package dissemination

import (
	"encoding/json"
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"sspd/internal/metrics"
	"sspd/internal/simnet"
	"sspd/internal/stream"
	"sspd/internal/trace"
)

// Message kinds used on the transport.
const (
	// KindTuples carries a binary-encoded stream.Batch down the tree.
	KindTuples = "diss.tuples"
	// KindInterest carries a JSON interest registration up the tree.
	KindInterest = "diss.interest"
)

// DefaultMaxInterestTerms bounds the size of the aggregated interest a
// node registers with its parent; beyond it terms are covered (widened),
// trading filter precision for registration size.
const DefaultMaxInterestTerms = 16

// Relay is one node of a dissemination tree at runtime: it receives the
// stream from its parent, delivers locally interesting tuples to its
// entity, and relays to each child only what that child's registered
// interest matches (early filtering). The node at the tree's source
// publishes instead of receiving.
type Relay struct {
	self      simnet.NodeID
	tree      *Tree
	schema    *stream.Schema
	transport simnet.Transport
	deliver   func(stream.Tuple)
	maxTerms  int
	// rel, when non-nil, carries control-plane sends (interest
	// registrations) with acks, bounded retries, and backoff; tuple
	// traffic always stays on the raw transport.
	rel *simnet.ReliableEndpoint

	mu        sync.Mutex
	local     *stream.InterestSet
	childSets map[simnet.NodeID]*stream.InterestSet
	// regMu serializes upward registrations: it is held across
	// aggregate computation AND the send, so a registration computed
	// from newer state can never be overtaken on the wire by one
	// computed from older state (which would leave the parent holding
	// a stale, narrower filter and silently drop tuples). With the
	// reliable endpoint, retries could still reorder registrations on
	// the wire — the receiver's in-order suppression drops the stale
	// one, and the periodic refresh re-converges after any loss.
	regMu       sync.Mutex
	refreshStop chan struct{}
	refreshDone chan struct{}

	// errMu guards the send-failure bookkeeping: per-link error counts
	// plus the down/up state used to log once per transition instead of
	// once per message.
	errMu    sync.Mutex
	linkErrs map[simnet.NodeID]int64
	linkDown map[simnet.NodeID]bool

	// Delivered counts tuples handed to the local entity; Relayed
	// counts tuples forwarded downstream; Suppressed counts tuples
	// early filtering kept off a child link.
	Delivered  metrics.Counter
	Relayed    metrics.Counter
	Suppressed metrics.Counter
	// SendErrors counts transport sends this relay could not complete
	// (tuples and interest registrations alike) — the signal that was
	// silently discarded before the chaos layer existed.
	SendErrors metrics.Counter
	// LinkBytes meters the encoded bytes and messages this relay sent
	// on its downstream links — the per-link traffic signal the
	// observability layer aggregates per stream.
	LinkBytes metrics.ByteMeter
}

// RelayOptions configures the robustness features of a relay. The zero
// value reproduces the classic fire-and-forget relay.
type RelayOptions struct {
	// MaxTerms bounds the aggregated interest size (<= 0 uses
	// DefaultMaxInterestTerms).
	MaxTerms int
	// Reliable, when non-nil, delivers interest registrations through a
	// reliable endpoint (acks, bounded retries, exponential backoff);
	// its OnGiveUp feeds the failure detector. In-order suppression is
	// forced on: a retried stale registration must never overwrite a
	// newer one.
	Reliable *simnet.ReliableConfig
	// RefreshInterval, when positive, re-announces the aggregate
	// interest upward on this period — soft-state that re-converges
	// ancestor filters after message loss or tree repair.
	RefreshInterval time.Duration
}

// NewRelay attaches a relay for `self` to the transport. deliver may be
// nil for pure relays (and for the source). maxTerms <= 0 uses
// DefaultMaxInterestTerms.
func NewRelay(tree *Tree, self simnet.NodeID, schema *stream.Schema,
	transport simnet.Transport, deliver func(stream.Tuple), maxTerms int) (*Relay, error) {
	return NewRelayWith(tree, self, schema, transport, deliver, RelayOptions{MaxTerms: maxTerms})
}

// NewRelayWith attaches a relay with robustness options.
func NewRelayWith(tree *Tree, self simnet.NodeID, schema *stream.Schema,
	transport simnet.Transport, deliver func(stream.Tuple), opts RelayOptions) (*Relay, error) {
	if tree == nil || schema == nil || transport == nil {
		return nil, fmt.Errorf("dissemination: relay %q needs tree, schema, and transport", self)
	}
	if self != tree.Source() && !tree.Has(self) {
		return nil, fmt.Errorf("dissemination: %q is not in the %s tree", self, tree.Stream())
	}
	maxTerms := opts.MaxTerms
	if maxTerms <= 0 {
		maxTerms = DefaultMaxInterestTerms
	}
	r := &Relay{
		self:      self,
		tree:      tree,
		schema:    schema,
		transport: transport,
		deliver:   deliver,
		maxTerms:  maxTerms,
		local:     stream.NewInterestSet(tree.Stream()),
		childSets: make(map[simnet.NodeID]*stream.InterestSet),
		linkErrs:  make(map[simnet.NodeID]int64),
		linkDown:  make(map[simnet.NodeID]bool),
	}
	if opts.Reliable != nil {
		cfg := *opts.Reliable
		cfg.InOrder = true
		rel, err := simnet.NewReliable(transport, self, r.handle, cfg)
		if err != nil {
			return nil, err
		}
		r.rel = rel
	} else if err := transport.Register(self, r.handle); err != nil {
		return nil, err
	}
	if opts.RefreshInterval > 0 {
		r.StartRefresh(opts.RefreshInterval)
	}
	return r, nil
}

// ID returns the relay's transport endpoint.
func (r *Relay) ID() simnet.NodeID { return r.self }

// SetLocalInterest replaces the entity's own data interest (the union of
// its allocated queries' interests) and re-registers the aggregate with
// the parent.
func (r *Relay) SetLocalInterest(terms []stream.Interest) error {
	r.mu.Lock()
	set := stream.NewInterestSet(r.tree.Stream())
	for _, in := range terms {
		set.Add(in)
	}
	r.local = set
	r.mu.Unlock()
	return r.registerUpward()
}

// aggregate returns the union of local and child interests, simplified.
func (r *Relay) aggregate() *stream.InterestSet {
	r.mu.Lock()
	defer r.mu.Unlock()
	agg := r.local.Clone()
	ids := make([]simnet.NodeID, 0, len(r.childSets))
	for id := range r.childSets {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		for _, term := range r.childSets[id].Terms {
			agg.Add(term)
		}
	}
	agg.Simplify(r.schema, r.maxTerms)
	return agg
}

// registerUpward sends the node's aggregate interest to its parent. The
// source has no parent; registration stops there.
func (r *Relay) registerUpward() error {
	if r.self == r.tree.Source() {
		return nil
	}
	r.regMu.Lock()
	defer r.regMu.Unlock()
	payload, err := encodeInterestSet(r.aggregate())
	if err != nil {
		return err
	}
	return r.sendControl(r.tree.Parent(r.self), payload)
}

// sendControl dispatches one interest registration, reliably when the
// relay has a reliable endpoint, and accounts the failure either way.
func (r *Relay) sendControl(to simnet.NodeID, payload []byte) error {
	var err error
	if r.rel != nil {
		err = r.rel.Send(to, KindInterest, payload)
	} else {
		err = r.transport.Send(r.self, to, KindInterest, payload)
	}
	if err != nil {
		r.noteSendError(to, err)
	}
	return err
}

// Refresh re-registers the relay's aggregate interest with its current
// parent. The federation calls it on every relay rewired by a dynamic
// tree operation (AddMember, RemoveMember, Reorganize); the soft-state
// refresher calls it periodically.
func (r *Relay) Refresh() error { return r.registerUpward() }

// StartRefresh launches the soft-state loop: every interval the relay
// re-announces its aggregate interest upward, so ancestor filters
// converge back to truth after lost registrations or tree repair. A
// source relay has nowhere to refresh to; the call is a no-op there.
func (r *Relay) StartRefresh(interval time.Duration) {
	if interval <= 0 || r.self == r.tree.Source() {
		return
	}
	r.mu.Lock()
	if r.refreshStop != nil {
		r.mu.Unlock()
		return
	}
	stop, done := make(chan struct{}), make(chan struct{})
	r.refreshStop, r.refreshDone = stop, done
	r.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				// Failures are already counted by sendControl; the next
				// tick (or the reliable layer's retries) recovers.
				_ = r.registerUpward()
			case <-stop:
				return
			}
		}
	}()
}

// StopRefresh halts the soft-state loop (idempotent).
func (r *Relay) StopRefresh() {
	r.mu.Lock()
	stop, done := r.refreshStop, r.refreshDone
	r.refreshStop, r.refreshDone = nil, nil
	r.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// Reliable exposes the relay's control-plane endpoint (nil when the
// relay sends fire-and-forget).
func (r *Relay) Reliable() *simnet.ReliableEndpoint { return r.rel }

// noteSendError accounts one failed transport send and logs on the
// link's up→down transition only.
func (r *Relay) noteSendError(link simnet.NodeID, err error) {
	r.SendErrors.Inc()
	r.errMu.Lock()
	r.linkErrs[link]++
	first := !r.linkDown[link]
	if first {
		r.linkDown[link] = true
	}
	r.errMu.Unlock()
	if first {
		log.Printf("dissemination: %s: send to %s failing: %v (logging once until recovery)", r.self, link, err)
	}
}

// noteSendOK clears a link's down state, logging the recovery.
func (r *Relay) noteSendOK(link simnet.NodeID) {
	r.errMu.Lock()
	recovered := r.linkDown[link]
	if recovered {
		delete(r.linkDown, link)
	}
	r.errMu.Unlock()
	if recovered {
		log.Printf("dissemination: %s: send to %s recovered", r.self, link)
	}
}

// SendErrorsByLink snapshots the per-link failed-send counts.
func (r *Relay) SendErrorsByLink() map[simnet.NodeID]int64 {
	r.errMu.Lock()
	defer r.errMu.Unlock()
	out := make(map[simnet.NodeID]int64, len(r.linkErrs))
	for link, n := range r.linkErrs {
		out[link] = n
	}
	return out
}

// PreRegister sends the relay's aggregate interest to an arbitrary node
// — the make-before-break half of a rewire: registering with the future
// parent BEFORE the tree edge flips makes the new path's ancestors widen
// their filters in advance, so no tuple addressed to this subtree is
// dropped during the switch. (The future parent stores the registration
// like any child's; until the flip it only widens its aggregate, which
// is always safe.)
func (r *Relay) PreRegister(target simnet.NodeID) error {
	r.regMu.Lock()
	defer r.regMu.Unlock()
	payload, err := encodeInterestSet(r.aggregate())
	if err != nil {
		return err
	}
	return r.sendControl(target, payload)
}

// DropChild discards a former child's registered interest, e.g. after
// the tree rewired that child elsewhere.
func (r *Relay) DropChild(id simnet.NodeID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.childSets, id)
}

// Publish injects a batch at the source and disseminates it. Only the
// source relay may publish.
func (r *Relay) Publish(batch stream.Batch) error {
	if r.self != r.tree.Source() {
		return fmt.Errorf("dissemination: %q is not the source of %s", r.self, r.tree.Stream())
	}
	r.disseminate(batch)
	return nil
}

// handle is the transport callback.
func (r *Relay) handle(m simnet.Message) {
	switch m.Kind {
	case KindTuples:
		batch, _, err := stream.DecodeBatch(m.Payload)
		if err != nil {
			return // corrupt payload; drop
		}
		r.disseminate(batch)
	case KindInterest:
		set, err := decodeInterestSet(m.Payload, r.tree.Stream())
		if err != nil {
			return
		}
		r.mu.Lock()
		r.childSets[m.From] = set
		r.mu.Unlock()
		// Propagate the updated aggregate toward the source.
		_ = r.registerUpward()
	}
}

// disseminate delivers locally and relays per-child filtered sub-batches.
func (r *Relay) disseminate(batch stream.Batch) {
	r.mu.Lock()
	local := r.local
	children := r.tree.Children(r.self)
	sets := make(map[simnet.NodeID]*stream.InterestSet, len(children))
	for _, c := range children {
		sets[c] = r.childSets[c]
	}
	r.mu.Unlock()

	self := string(r.self)
	for _, t := range batch {
		// Free for untraced tuples (Span == 0 fast path).
		trace.Record(trace.SpanID(t.Span), trace.StageRelay, self)
	}
	if r.deliver != nil && !local.Empty() {
		for _, t := range batch {
			if local.Matches(r.schema, t) {
				r.Delivered.Inc()
				trace.Record(trace.SpanID(t.Span), trace.StageDeliver, self)
				r.deliver(t)
			}
		}
	}
	for _, c := range children {
		set := sets[c]
		var sub stream.Batch
		if set == nil {
			// No registration yet: forward everything (safe).
			sub = batch
		} else {
			for _, t := range batch {
				if set.Matches(r.schema, t) {
					sub = append(sub, t)
				}
			}
		}
		r.Suppressed.Add(int64(len(batch) - len(sub)))
		if len(sub) == 0 {
			continue
		}
		r.Relayed.Add(int64(len(sub)))
		payload := stream.AppendBatch(nil, sub)
		r.LinkBytes.Record(len(payload))
		if err := r.transport.Send(r.self, c, KindTuples, payload); err != nil {
			r.noteSendError(c, err)
		} else {
			r.noteSendOK(c)
		}
	}
}

// Close stops the refresher and deregisters the relay from the
// transport.
func (r *Relay) Close() error {
	r.StopRefresh()
	if r.rel != nil {
		return r.rel.Close()
	}
	return r.transport.Deregister(r.self)
}

// wireInterest is the JSON form of one interest term.
type wireInterest struct {
	Ranges map[string]stream.Range `json:"ranges,omitempty"`
	Keys   map[string][]string     `json:"keys,omitempty"`
}

type wireInterestSet struct {
	Stream string         `json:"stream"`
	Terms  []wireInterest `json:"terms"`
}

func encodeInterestSet(set *stream.InterestSet) ([]byte, error) {
	w := wireInterestSet{Stream: set.Stream}
	for _, term := range set.Terms {
		wi := wireInterest{}
		if len(term.Ranges) > 0 {
			wi.Ranges = term.Ranges
		}
		if len(term.Keys) > 0 {
			wi.Keys = make(map[string][]string, len(term.Keys))
			for f, ks := range term.Keys {
				list := make([]string, 0, len(ks))
				for k := range ks {
					list = append(list, k)
				}
				sort.Strings(list)
				wi.Keys[f] = list
			}
		}
		w.Terms = append(w.Terms, wi)
	}
	return json.Marshal(w)
}

func decodeInterestSet(payload []byte, wantStream string) (*stream.InterestSet, error) {
	var w wireInterestSet
	if err := json.Unmarshal(payload, &w); err != nil {
		return nil, err
	}
	if w.Stream != wantStream {
		return nil, fmt.Errorf("dissemination: interest for %q on %q tree", w.Stream, wantStream)
	}
	set := stream.NewInterestSet(w.Stream)
	for _, wi := range w.Terms {
		in := stream.NewInterest(w.Stream)
		for f, rg := range wi.Ranges {
			in = in.WithRange(f, rg.Lo, rg.Hi)
		}
		for f, ks := range wi.Keys {
			in = in.WithKeys(f, ks...)
		}
		set.Add(in)
	}
	return set, nil
}
