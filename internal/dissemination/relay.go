package dissemination

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"sspd/internal/metrics"
	"sspd/internal/simnet"
	"sspd/internal/stream"
	"sspd/internal/trace"
)

// Message kinds used on the transport.
const (
	// KindTuples carries a binary-encoded stream.Batch down the tree.
	KindTuples = "diss.tuples"
	// KindInterest carries a JSON interest registration up the tree.
	KindInterest = "diss.interest"
)

// DefaultMaxInterestTerms bounds the size of the aggregated interest a
// node registers with its parent; beyond it terms are covered (widened),
// trading filter precision for registration size.
const DefaultMaxInterestTerms = 16

// Relay is one node of a dissemination tree at runtime: it receives the
// stream from its parent, delivers locally interesting tuples to its
// entity, and relays to each child only what that child's registered
// interest matches (early filtering). The node at the tree's source
// publishes instead of receiving.
type Relay struct {
	self      simnet.NodeID
	tree      *Tree
	schema    *stream.Schema
	transport simnet.Transport
	deliver   func(stream.Tuple)
	maxTerms  int

	mu        sync.Mutex
	local     *stream.InterestSet
	childSets map[simnet.NodeID]*stream.InterestSet
	// regMu serializes upward registrations: it is held across
	// aggregate computation AND the send, so a registration computed
	// from newer state can never be overtaken on the wire by one
	// computed from older state (which would leave the parent holding
	// a stale, narrower filter and silently drop tuples).
	regMu sync.Mutex

	// Delivered counts tuples handed to the local entity; Relayed
	// counts tuples forwarded downstream; Suppressed counts tuples
	// early filtering kept off a child link.
	Delivered  metrics.Counter
	Relayed    metrics.Counter
	Suppressed metrics.Counter
	// LinkBytes meters the encoded bytes and messages this relay sent
	// on its downstream links — the per-link traffic signal the
	// observability layer aggregates per stream.
	LinkBytes metrics.ByteMeter
}

// NewRelay attaches a relay for `self` to the transport. deliver may be
// nil for pure relays (and for the source). maxTerms <= 0 uses
// DefaultMaxInterestTerms.
func NewRelay(tree *Tree, self simnet.NodeID, schema *stream.Schema,
	transport simnet.Transport, deliver func(stream.Tuple), maxTerms int) (*Relay, error) {
	if tree == nil || schema == nil || transport == nil {
		return nil, fmt.Errorf("dissemination: relay %q needs tree, schema, and transport", self)
	}
	if self != tree.Source() && !tree.Has(self) {
		return nil, fmt.Errorf("dissemination: %q is not in the %s tree", self, tree.Stream())
	}
	if maxTerms <= 0 {
		maxTerms = DefaultMaxInterestTerms
	}
	r := &Relay{
		self:      self,
		tree:      tree,
		schema:    schema,
		transport: transport,
		deliver:   deliver,
		maxTerms:  maxTerms,
		local:     stream.NewInterestSet(tree.Stream()),
		childSets: make(map[simnet.NodeID]*stream.InterestSet),
	}
	if err := transport.Register(self, r.handle); err != nil {
		return nil, err
	}
	return r, nil
}

// ID returns the relay's transport endpoint.
func (r *Relay) ID() simnet.NodeID { return r.self }

// SetLocalInterest replaces the entity's own data interest (the union of
// its allocated queries' interests) and re-registers the aggregate with
// the parent.
func (r *Relay) SetLocalInterest(terms []stream.Interest) error {
	r.mu.Lock()
	set := stream.NewInterestSet(r.tree.Stream())
	for _, in := range terms {
		set.Add(in)
	}
	r.local = set
	r.mu.Unlock()
	return r.registerUpward()
}

// aggregate returns the union of local and child interests, simplified.
func (r *Relay) aggregate() *stream.InterestSet {
	r.mu.Lock()
	defer r.mu.Unlock()
	agg := r.local.Clone()
	ids := make([]simnet.NodeID, 0, len(r.childSets))
	for id := range r.childSets {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		for _, term := range r.childSets[id].Terms {
			agg.Add(term)
		}
	}
	agg.Simplify(r.schema, r.maxTerms)
	return agg
}

// registerUpward sends the node's aggregate interest to its parent. The
// source has no parent; registration stops there.
func (r *Relay) registerUpward() error {
	if r.self == r.tree.Source() {
		return nil
	}
	r.regMu.Lock()
	defer r.regMu.Unlock()
	payload, err := encodeInterestSet(r.aggregate())
	if err != nil {
		return err
	}
	return r.transport.Send(r.self, r.tree.Parent(r.self), KindInterest, payload)
}

// Refresh re-registers the relay's aggregate interest with its current
// parent. The federation calls it on every relay rewired by a dynamic
// tree operation (AddMember, RemoveMember, Reorganize).
func (r *Relay) Refresh() error { return r.registerUpward() }

// PreRegister sends the relay's aggregate interest to an arbitrary node
// — the make-before-break half of a rewire: registering with the future
// parent BEFORE the tree edge flips makes the new path's ancestors widen
// their filters in advance, so no tuple addressed to this subtree is
// dropped during the switch. (The future parent stores the registration
// like any child's; until the flip it only widens its aggregate, which
// is always safe.)
func (r *Relay) PreRegister(target simnet.NodeID) error {
	r.regMu.Lock()
	defer r.regMu.Unlock()
	payload, err := encodeInterestSet(r.aggregate())
	if err != nil {
		return err
	}
	return r.transport.Send(r.self, target, KindInterest, payload)
}

// DropChild discards a former child's registered interest, e.g. after
// the tree rewired that child elsewhere.
func (r *Relay) DropChild(id simnet.NodeID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.childSets, id)
}

// Publish injects a batch at the source and disseminates it. Only the
// source relay may publish.
func (r *Relay) Publish(batch stream.Batch) error {
	if r.self != r.tree.Source() {
		return fmt.Errorf("dissemination: %q is not the source of %s", r.self, r.tree.Stream())
	}
	r.disseminate(batch)
	return nil
}

// handle is the transport callback.
func (r *Relay) handle(m simnet.Message) {
	switch m.Kind {
	case KindTuples:
		batch, _, err := stream.DecodeBatch(m.Payload)
		if err != nil {
			return // corrupt payload; drop
		}
		r.disseminate(batch)
	case KindInterest:
		set, err := decodeInterestSet(m.Payload, r.tree.Stream())
		if err != nil {
			return
		}
		r.mu.Lock()
		r.childSets[m.From] = set
		r.mu.Unlock()
		// Propagate the updated aggregate toward the source.
		_ = r.registerUpward()
	}
}

// disseminate delivers locally and relays per-child filtered sub-batches.
func (r *Relay) disseminate(batch stream.Batch) {
	r.mu.Lock()
	local := r.local
	children := r.tree.Children(r.self)
	sets := make(map[simnet.NodeID]*stream.InterestSet, len(children))
	for _, c := range children {
		sets[c] = r.childSets[c]
	}
	r.mu.Unlock()

	self := string(r.self)
	for _, t := range batch {
		// Free for untraced tuples (Span == 0 fast path).
		trace.Record(trace.SpanID(t.Span), trace.StageRelay, self)
	}
	if r.deliver != nil && !local.Empty() {
		for _, t := range batch {
			if local.Matches(r.schema, t) {
				r.Delivered.Inc()
				trace.Record(trace.SpanID(t.Span), trace.StageDeliver, self)
				r.deliver(t)
			}
		}
	}
	for _, c := range children {
		set := sets[c]
		var sub stream.Batch
		if set == nil {
			// No registration yet: forward everything (safe).
			sub = batch
		} else {
			for _, t := range batch {
				if set.Matches(r.schema, t) {
					sub = append(sub, t)
				}
			}
		}
		r.Suppressed.Add(int64(len(batch) - len(sub)))
		if len(sub) == 0 {
			continue
		}
		r.Relayed.Add(int64(len(sub)))
		payload := stream.AppendBatch(nil, sub)
		r.LinkBytes.Record(len(payload))
		_ = r.transport.Send(r.self, c, KindTuples, payload)
	}
}

// Close deregisters the relay from the transport.
func (r *Relay) Close() error {
	return r.transport.Deregister(r.self)
}

// wireInterest is the JSON form of one interest term.
type wireInterest struct {
	Ranges map[string]stream.Range `json:"ranges,omitempty"`
	Keys   map[string][]string     `json:"keys,omitempty"`
}

type wireInterestSet struct {
	Stream string         `json:"stream"`
	Terms  []wireInterest `json:"terms"`
}

func encodeInterestSet(set *stream.InterestSet) ([]byte, error) {
	w := wireInterestSet{Stream: set.Stream}
	for _, term := range set.Terms {
		wi := wireInterest{}
		if len(term.Ranges) > 0 {
			wi.Ranges = term.Ranges
		}
		if len(term.Keys) > 0 {
			wi.Keys = make(map[string][]string, len(term.Keys))
			for f, ks := range term.Keys {
				list := make([]string, 0, len(ks))
				for k := range ks {
					list = append(list, k)
				}
				sort.Strings(list)
				wi.Keys[f] = list
			}
		}
		w.Terms = append(w.Terms, wi)
	}
	return json.Marshal(w)
}

func decodeInterestSet(payload []byte, wantStream string) (*stream.InterestSet, error) {
	var w wireInterestSet
	if err := json.Unmarshal(payload, &w); err != nil {
		return nil, err
	}
	if w.Stream != wantStream {
		return nil, fmt.Errorf("dissemination: interest for %q on %q tree", w.Stream, wantStream)
	}
	set := stream.NewInterestSet(w.Stream)
	for _, wi := range w.Terms {
		in := stream.NewInterest(w.Stream)
		for f, rg := range wi.Ranges {
			in = in.WithRange(f, rg.Lo, rg.Hi)
		}
		for f, ks := range wi.Keys {
			in = in.WithKeys(f, ks...)
		}
		set.Add(in)
	}
	return set, nil
}
