package dissemination

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sspd/internal/metrics"
	"sspd/internal/obslog"
	"sspd/internal/simnet"
	"sspd/internal/stream"
	"sspd/internal/trace"
)

// Message kinds used on the transport.
const (
	// KindTuples carries a binary-encoded stream.Batch down the tree.
	KindTuples = "diss.tuples"
	// KindInterest carries a JSON interest registration up the tree.
	KindInterest = "diss.interest"
)

// DefaultMaxInterestTerms bounds the size of the aggregated interest a
// node registers with its parent; beyond it terms are covered (widened),
// trading filter precision for registration size.
const DefaultMaxInterestTerms = 16

// Relay is one node of a dissemination tree at runtime: it receives the
// stream from its parent, delivers locally interesting tuples to its
// entity, and relays to each child only what that child's registered
// interest matches (early filtering). The node at the tree's source
// publishes instead of receiving.
type Relay struct {
	self      simnet.NodeID
	tree      *Tree
	schema    *stream.Schema
	transport simnet.Transport
	deliver   func(stream.Tuple)
	// deliverBatch, when set, receives all locally matched tuples of a
	// batch in one call (preferred over deliver on the hot path). The
	// tuples are freshly cloned — the receiver owns them outright — but
	// the Batch slice itself must not be retained.
	deliverBatch func(stream.Batch)
	maxTerms     int
	// rel, when non-nil, carries control-plane sends (interest
	// registrations) with acks, bounded retries, and backoff; tuple
	// traffic always stays on the raw transport.
	rel *simnet.ReliableEndpoint

	mu        sync.Mutex
	local     *stream.InterestSet
	childSets map[simnet.NodeID]*stream.InterestSet
	// Compiled twins of local/childSets: interests are compiled against
	// the schema once at registration time so the per-tuple match loop
	// does no name resolution and no map iteration (nil entry in
	// childCompiled = no registration = forward everything).
	localC        *stream.CompiledSet
	childCompiled map[simnet.NodeID]*stream.CompiledSet
	// children caches tree.Children(self) keyed by the tree's structural
	// version, sparing the hot path a copy per batch. Guarded by mu.
	children    []simnet.NodeID
	childrenVer uint64
	childrenOK  bool

	// Per-link send workers: fan-out enqueues each child's payload and
	// waits on a per-batch WaitGroup, so one slow or faulty link no
	// longer serializes the whole fan-out while Quiesce-style barriers
	// still see the batch fully sent when disseminate returns.
	sendMu      sync.RWMutex
	senders     map[simnet.NodeID]*linkSender
	sendersDone bool
	sendWG      sync.WaitGroup
	// regMu serializes upward registrations: it is held across
	// aggregate computation AND the send, so a registration computed
	// from newer state can never be overtaken on the wire by one
	// computed from older state (which would leave the parent holding
	// a stale, narrower filter and silently drop tuples). With the
	// reliable endpoint, retries could still reorder registrations on
	// the wire — the receiver's in-order suppression drops the stale
	// one, and the periodic refresh re-converges after any loss.
	regMu       sync.Mutex
	refreshStop chan struct{}
	refreshDone chan struct{}

	// errMu guards the send-failure bookkeeping: per-link error counts
	// plus the down/up state used to log once per transition instead of
	// once per message. Decode failures share the lock with the same
	// once-per-transition shape, keyed by message kind; decodeBadN lets
	// the hot path skip the lock entirely while nothing is failing.
	errMu      sync.Mutex
	linkErrs   map[simnet.NodeID]int64
	linkDown   map[simnet.NodeID]bool
	decodeErrs map[string]int64
	decodeBad  map[string]bool
	decodeBadN atomic.Int32

	// log receives the relay's typed events (link/decode transitions);
	// never nil after construction.
	log *obslog.Logger

	// Delivered counts tuples handed to the local entity; Relayed
	// counts tuples forwarded downstream; Suppressed counts tuples
	// early filtering kept off a child link.
	Delivered  metrics.Counter
	Relayed    metrics.Counter
	Suppressed metrics.Counter
	// SendErrors counts transport sends this relay could not complete
	// (tuples and interest registrations alike) — the signal that was
	// silently discarded before the chaos layer existed.
	SendErrors metrics.Counter
	// DecodeErrors counts payloads this relay could not decode (corrupt
	// tuples or interest registrations) — previously a silent drop.
	DecodeErrors metrics.Counter
	// LinkBytes meters the encoded bytes and messages this relay sent
	// on its downstream links — the per-link traffic signal the
	// observability layer aggregates per stream.
	LinkBytes metrics.ByteMeter
}

// RelayOptions configures the robustness features of a relay. The zero
// value reproduces the classic fire-and-forget relay.
type RelayOptions struct {
	// MaxTerms bounds the aggregated interest size (<= 0 uses
	// DefaultMaxInterestTerms).
	MaxTerms int
	// Reliable, when non-nil, delivers interest registrations through a
	// reliable endpoint (acks, bounded retries, exponential backoff);
	// its OnGiveUp feeds the failure detector. In-order suppression is
	// forced on: a retried stale registration must never overwrite a
	// newer one.
	Reliable *simnet.ReliableConfig
	// RefreshInterval, when positive, re-announces the aggregate
	// interest upward on this period — soft-state that re-converges
	// ancestor filters after message loss or tree repair.
	RefreshInterval time.Duration
	// DeliverBatch, when non-nil, replaces the per-tuple deliver
	// callback with one call per batch of locally matched tuples. The
	// tuples are owned by the receiver; the slice is not.
	DeliverBatch func(stream.Batch)
	// Log receives the relay's typed events (link.down / link.up /
	// decode.bad / decode.ok, once per transition). Nil uses
	// obslog.Default().
	Log *obslog.Logger
}

// NewRelay attaches a relay for `self` to the transport. deliver may be
// nil for pure relays (and for the source). maxTerms <= 0 uses
// DefaultMaxInterestTerms.
func NewRelay(tree *Tree, self simnet.NodeID, schema *stream.Schema,
	transport simnet.Transport, deliver func(stream.Tuple), maxTerms int) (*Relay, error) {
	return NewRelayWith(tree, self, schema, transport, deliver, RelayOptions{MaxTerms: maxTerms})
}

// NewRelayWith attaches a relay with robustness options.
func NewRelayWith(tree *Tree, self simnet.NodeID, schema *stream.Schema,
	transport simnet.Transport, deliver func(stream.Tuple), opts RelayOptions) (*Relay, error) {
	if tree == nil || schema == nil || transport == nil {
		return nil, fmt.Errorf("dissemination: relay %q needs tree, schema, and transport", self)
	}
	if self != tree.Source() && !tree.Has(self) {
		return nil, fmt.Errorf("dissemination: %q is not in the %s tree", self, tree.Stream())
	}
	maxTerms := opts.MaxTerms
	if maxTerms <= 0 {
		maxTerms = DefaultMaxInterestTerms
	}
	r := &Relay{
		self:          self,
		tree:          tree,
		schema:        schema,
		transport:     transport,
		deliver:       deliver,
		deliverBatch:  opts.DeliverBatch,
		maxTerms:      maxTerms,
		local:         stream.NewInterestSet(tree.Stream()),
		childSets:     make(map[simnet.NodeID]*stream.InterestSet),
		childCompiled: make(map[simnet.NodeID]*stream.CompiledSet),
		senders:       make(map[simnet.NodeID]*linkSender),
		linkErrs:      make(map[simnet.NodeID]int64),
		linkDown:      make(map[simnet.NodeID]bool),
		decodeErrs:    make(map[string]int64),
		decodeBad:     make(map[string]bool),
		log:           opts.Log,
	}
	if r.log == nil {
		r.log = obslog.Default()
	}
	r.localC = stream.CompileSet(r.local, schema)
	if opts.Reliable != nil {
		cfg := *opts.Reliable
		cfg.InOrder = true
		rel, err := simnet.NewReliable(transport, self, r.handle, cfg)
		if err != nil {
			return nil, err
		}
		r.rel = rel
	} else if err := transport.Register(self, r.handle); err != nil {
		return nil, err
	}
	if opts.RefreshInterval > 0 {
		r.StartRefresh(opts.RefreshInterval)
	}
	return r, nil
}

// ID returns the relay's transport endpoint.
func (r *Relay) ID() simnet.NodeID { return r.self }

// SetLocalInterest replaces the entity's own data interest (the union of
// its allocated queries' interests) and re-registers the aggregate with
// the parent.
func (r *Relay) SetLocalInterest(terms []stream.Interest) error {
	set := stream.NewInterestSet(r.tree.Stream())
	for _, in := range terms {
		set.Add(in)
	}
	compiled := stream.CompileSet(set, r.schema)
	r.mu.Lock()
	r.local = set
	r.localC = compiled
	r.mu.Unlock()
	return r.registerUpward()
}

// aggregate returns the union of local and child interests, simplified.
func (r *Relay) aggregate() *stream.InterestSet {
	r.mu.Lock()
	defer r.mu.Unlock()
	agg := r.local.Clone()
	ids := make([]simnet.NodeID, 0, len(r.childSets))
	for id := range r.childSets {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		for _, term := range r.childSets[id].Terms {
			agg.Add(term)
		}
	}
	agg.Simplify(r.schema, r.maxTerms)
	return agg
}

// registerUpward sends the node's aggregate interest to its parent. The
// source has no parent; registration stops there.
func (r *Relay) registerUpward() error {
	if r.self == r.tree.Source() {
		return nil
	}
	r.regMu.Lock()
	defer r.regMu.Unlock()
	payload, err := encodeInterestSet(r.aggregate())
	if err != nil {
		return err
	}
	return r.sendControl(r.tree.Parent(r.self), payload)
}

// sendControl dispatches one interest registration, reliably when the
// relay has a reliable endpoint, and accounts the failure either way.
func (r *Relay) sendControl(to simnet.NodeID, payload []byte) error {
	var err error
	if r.rel != nil {
		err = r.rel.Send(to, KindInterest, payload)
	} else {
		err = r.transport.Send(r.self, to, KindInterest, payload)
	}
	if err != nil {
		r.noteSendError(to, err)
	}
	return err
}

// Refresh re-registers the relay's aggregate interest with its current
// parent. The federation calls it on every relay rewired by a dynamic
// tree operation (AddMember, RemoveMember, Reorganize); the soft-state
// refresher calls it periodically.
func (r *Relay) Refresh() error { return r.registerUpward() }

// StartRefresh launches the soft-state loop: every interval the relay
// re-announces its aggregate interest upward, so ancestor filters
// converge back to truth after lost registrations or tree repair. A
// source relay has nowhere to refresh to; the call is a no-op there.
func (r *Relay) StartRefresh(interval time.Duration) {
	if interval <= 0 || r.self == r.tree.Source() {
		return
	}
	r.mu.Lock()
	if r.refreshStop != nil {
		r.mu.Unlock()
		return
	}
	stop, done := make(chan struct{}), make(chan struct{})
	r.refreshStop, r.refreshDone = stop, done
	r.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				// Failures are already counted by sendControl; the next
				// tick (or the reliable layer's retries) recovers.
				_ = r.registerUpward()
			case <-stop:
				return
			}
		}
	}()
}

// StopRefresh halts the soft-state loop (idempotent).
func (r *Relay) StopRefresh() {
	r.mu.Lock()
	stop, done := r.refreshStop, r.refreshDone
	r.refreshStop, r.refreshDone = nil, nil
	r.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// Reliable exposes the relay's control-plane endpoint (nil when the
// relay sends fire-and-forget).
func (r *Relay) Reliable() *simnet.ReliableEndpoint { return r.rel }

// noteSendError accounts one failed transport send and logs on the
// link's up→down transition only.
func (r *Relay) noteSendError(link simnet.NodeID, err error) {
	r.SendErrors.Inc()
	r.errMu.Lock()
	r.linkErrs[link]++
	first := !r.linkDown[link]
	if first {
		r.linkDown[link] = true
	}
	r.errMu.Unlock()
	if first {
		r.log.Warn("link.down", string(r.self), "send failing (logging once until recovery)",
			"link", link, "err", err)
	}
}

// noteSendOK clears a link's down state, logging the recovery.
func (r *Relay) noteSendOK(link simnet.NodeID) {
	r.errMu.Lock()
	recovered := r.linkDown[link]
	if recovered {
		delete(r.linkDown, link)
	}
	r.errMu.Unlock()
	if recovered {
		r.log.Warn("link.up", string(r.self), "send recovered", "link", link)
	}
}

// SendErrorsByLink snapshots the per-link failed-send counts.
func (r *Relay) SendErrorsByLink() map[simnet.NodeID]int64 {
	r.errMu.Lock()
	defer r.errMu.Unlock()
	out := make(map[simnet.NodeID]int64, len(r.linkErrs))
	for link, n := range r.linkErrs {
		out[link] = n
	}
	return out
}

// PreRegister sends the relay's aggregate interest to an arbitrary node
// — the make-before-break half of a rewire: registering with the future
// parent BEFORE the tree edge flips makes the new path's ancestors widen
// their filters in advance, so no tuple addressed to this subtree is
// dropped during the switch. (The future parent stores the registration
// like any child's; until the flip it only widens its aggregate, which
// is always safe.)
func (r *Relay) PreRegister(target simnet.NodeID) error {
	r.regMu.Lock()
	defer r.regMu.Unlock()
	payload, err := encodeInterestSet(r.aggregate())
	if err != nil {
		return err
	}
	return r.sendControl(target, payload)
}

// DropChild discards a former child's registered interest, e.g. after
// the tree rewired that child elsewhere.
func (r *Relay) DropChild(id simnet.NodeID) {
	r.mu.Lock()
	delete(r.childSets, id)
	delete(r.childCompiled, id)
	r.mu.Unlock()
	r.stopSender(id)
}

// Publish injects a batch at the source and disseminates it. Only the
// source relay may publish.
func (r *Relay) Publish(batch stream.Batch) error {
	if r.self != r.tree.Source() {
		return fmt.Errorf("dissemination: %q is not the source of %s", r.self, r.tree.Stream())
	}
	r.disseminate(batch, nil)
	return nil
}

// HandleTuples processes one encoded tuple batch as if it had arrived
// from the relay's parent — the wire-level entry point benchmarks and
// bridge transports feed directly.
func (r *Relay) HandleTuples(payload []byte) {
	r.handle(simnet.Message{From: r.tree.Parent(r.self), To: r.self, Kind: KindTuples, Payload: payload})
}

// handle is the transport callback.
func (r *Relay) handle(m simnet.Message) {
	switch m.Kind {
	case KindTuples:
		db := stream.GetDecodeBuffer()
		batch, _, err := db.Decode(m.Payload)
		if err != nil {
			stream.PutDecodeBuffer(db)
			r.noteDecodeError("tuples", err)
			return
		}
		r.noteDecodeOK("tuples")
		// The decoded batch lives in the pooled buffer: disseminate has
		// fully consumed it (local clones made, downstream payloads sent)
		// by the time it returns, so the buffer can go back to the pool.
		r.disseminate(batch, m.Payload)
		stream.PutDecodeBuffer(db)
	case KindInterest:
		set, err := decodeInterestSet(m.Payload, r.tree.Stream())
		if err != nil {
			r.noteDecodeError("interest", err)
			return
		}
		r.noteDecodeOK("interest")
		compiled := stream.CompileSet(set, r.schema)
		r.mu.Lock()
		r.childSets[m.From] = set
		r.childCompiled[m.From] = compiled
		r.mu.Unlock()
		// Propagate the updated aggregate toward the source.
		_ = r.registerUpward()
	}
}

// dissemScratch holds all per-batch fan-out state so a steady-state
// disseminate allocates nothing: the snapshot of per-child compiled
// sets, the matched-index scratch, a sub-batch used when a child needs
// re-encoding, and the pooled encode buffers to release after the sends.
type dissemScratch struct {
	sets []*stream.CompiledSet
	idx  []int32
	sub  stream.Batch
	bufs []*[]byte
	wg   sync.WaitGroup
}

var scratchPool = sync.Pool{New: func() any { return new(dissemScratch) }}

// disseminate delivers locally matched tuples and fans the batch out to
// the children. wire, when non-nil, is the still-live incoming encoded
// payload: a child whose compiled set matched the whole batch (or that
// has no registration yet) is forwarded that payload verbatim, so a
// pure-relay hop never re-encodes. Sends run on per-link workers;
// disseminate waits for all of them before returning, which keeps
// transport quiescence sound and lets every pooled buffer be released
// here.
func (r *Relay) disseminate(batch stream.Batch, wire []byte) {
	if len(batch) == 0 {
		return
	}
	sc := scratchPool.Get().(*dissemScratch)
	r.mu.Lock()
	localC := r.localC
	if v := r.tree.Version(); !r.childrenOK || v != r.childrenVer {
		r.children = r.tree.Children(r.self)
		r.childrenVer, r.childrenOK = v, true
	}
	children := r.children
	sc.sets = sc.sets[:0]
	for _, c := range children {
		sc.sets = append(sc.sets, r.childCompiled[c])
	}
	r.mu.Unlock()

	self := string(r.self)
	for i := range batch {
		// Free for untraced tuples (Span == 0 fast path).
		trace.Record(trace.SpanID(batch[i].Span), trace.StageRelay, self)
	}
	r.deliverLocal(localC, batch, sc)

	// Fan-out. The incoming payload (or one pooled full-batch encoding)
	// is shared by every pass-through child; partial matches re-encode
	// just the matched tuples into a pooled buffer. Workers send
	// concurrently per link; the WaitGroup makes the batch fully sent —
	// and every buffer reusable — before disseminate returns.
	n := len(batch)
	var fullPayload []byte
	for ci, c := range children {
		set := sc.sets[ci]
		matched := n
		if set != nil {
			sc.idx = sc.idx[:0]
			for i := range batch {
				if set.Matches(batch[i]) {
					sc.idx = append(sc.idx, int32(i))
				}
			}
			matched = len(sc.idx)
		}
		if matched == 0 {
			r.Suppressed.Add(int64(n))
			continue
		}
		var payload []byte
		if matched == n {
			// Everything matched (or no registration yet: forward all,
			// which is safe): reuse the incoming wire bytes verbatim.
			if fullPayload == nil {
				if wire != nil {
					fullPayload = wire
				} else {
					buf := stream.GetEncodeBuffer()
					*buf = stream.AppendBatch((*buf)[:0], batch)
					sc.bufs = append(sc.bufs, buf)
					fullPayload = *buf
				}
			}
			payload = fullPayload
		} else {
			sc.sub = sc.sub[:0]
			for _, i := range sc.idx {
				sc.sub = append(sc.sub, batch[i])
			}
			buf := stream.GetEncodeBuffer()
			*buf = stream.AppendBatch((*buf)[:0], sc.sub)
			sc.bufs = append(sc.bufs, buf)
			payload = *buf
		}
		r.Relayed.Add(int64(matched))
		r.Suppressed.Add(int64(n - matched))
		r.LinkBytes.Record(len(payload))
		sc.wg.Add(1)
		r.sendTuples(c, payload, &sc.wg)
	}
	sc.wg.Wait()
	for i, buf := range sc.bufs {
		stream.PutEncodeBuffer(buf)
		sc.bufs[i] = nil
	}
	sc.bufs = sc.bufs[:0]
	sc.sub = sc.sub[:0]
	scratchPool.Put(sc)
}

// deliverLocal clones the locally matched tuples into one compact chunk
// (a single Values arena plus one Batch allocation, nothing when the
// batch has no local matches) and hands them to the entity. Cloning at
// this boundary keeps downstream ownership semantics unchanged: engines,
// windows, and user subscribers may retain delivered tuples forever,
// while the relay's decoded batch goes back to its pool.
func (r *Relay) deliverLocal(localC *stream.CompiledSet, batch stream.Batch, sc *dissemScratch) {
	if (r.deliver == nil && r.deliverBatch == nil) || localC == nil || localC.NeverMatches() {
		return
	}
	sc.idx = sc.idx[:0]
	nvals := 0
	for i := range batch {
		if localC.Matches(batch[i]) {
			sc.idx = append(sc.idx, int32(i))
			nvals += len(batch[i].Values)
		}
	}
	if len(sc.idx) == 0 {
		return
	}
	vals := make([]stream.Value, 0, nvals)
	sub := make(stream.Batch, 0, len(sc.idx))
	for _, i := range sc.idx {
		t := batch[i]
		start := len(vals)
		vals = append(vals, t.Values...)
		t.Values = vals[start:len(vals):len(vals)]
		sub = append(sub, t)
	}
	r.Delivered.Add(int64(len(sub)))
	self := string(r.self)
	for i := range sub {
		trace.Record(trace.SpanID(sub[i].Span), trace.StageDeliver, self)
	}
	if r.deliverBatch != nil {
		r.deliverBatch(sub)
		return
	}
	for _, t := range sub {
		r.deliver(t)
	}
}

// linkSender is one child link's send worker: a small queue drained by a
// dedicated goroutine, so a slow link delays only its own sends.
type linkSender struct {
	to simnet.NodeID
	ch chan sendJob
}

type sendJob struct {
	payload []byte
	wg      *sync.WaitGroup
}

// linkQueueDepth bounds each link worker's queue; a full queue applies
// backpressure to disseminate rather than buffering unboundedly.
const linkQueueDepth = 8

// sendTuples hands a payload to the child's link worker, creating it on
// first use. The enqueue happens under the senders read-lock so Close
// (which takes the write lock) can never close a channel mid-send; after
// shutdown the send completes inline so the batch WaitGroup resolves.
func (r *Relay) sendTuples(to simnet.NodeID, payload []byte, wg *sync.WaitGroup) {
	for {
		r.sendMu.RLock()
		if r.sendersDone {
			r.sendMu.RUnlock()
			r.sendOne(to, payload)
			wg.Done()
			return
		}
		if ls := r.senders[to]; ls != nil {
			ls.ch <- sendJob{payload: payload, wg: wg}
			r.sendMu.RUnlock()
			return
		}
		r.sendMu.RUnlock()
		r.sendMu.Lock()
		if !r.sendersDone && r.senders[to] == nil {
			ls := &linkSender{to: to, ch: make(chan sendJob, linkQueueDepth)}
			r.senders[to] = ls
			r.sendWG.Add(1)
			go r.runSender(ls)
		}
		r.sendMu.Unlock()
	}
}

func (r *Relay) runSender(ls *linkSender) {
	defer r.sendWG.Done()
	for job := range ls.ch {
		r.sendOne(ls.to, job.payload)
		job.wg.Done()
	}
}

func (r *Relay) sendOne(to simnet.NodeID, payload []byte) {
	if err := r.transport.Send(r.self, to, KindTuples, payload); err != nil {
		r.noteSendError(to, err)
	} else {
		r.noteSendOK(to)
	}
}

// stopSender retires one child's link worker (after a rewire moved the
// child elsewhere). Queued jobs still drain before the worker exits.
func (r *Relay) stopSender(id simnet.NodeID) {
	r.sendMu.Lock()
	ls := r.senders[id]
	delete(r.senders, id)
	r.sendMu.Unlock()
	if ls != nil {
		close(ls.ch)
	}
}

// closeSenders shuts every link worker down and waits for queued sends
// to drain; later sends complete inline.
func (r *Relay) closeSenders() {
	r.sendMu.Lock()
	if !r.sendersDone {
		r.sendersDone = true
		for id, ls := range r.senders {
			close(ls.ch)
			delete(r.senders, id)
		}
	}
	r.sendMu.Unlock()
	r.sendWG.Wait()
}

// noteDecodeError accounts one undecodable payload and logs on the
// kind's good→bad transition only, mirroring the send-error pattern.
func (r *Relay) noteDecodeError(kind string, err error) {
	r.DecodeErrors.Inc()
	r.errMu.Lock()
	r.decodeErrs[kind]++
	first := !r.decodeBad[kind]
	if first {
		r.decodeBad[kind] = true
		r.decodeBadN.Add(1)
	}
	r.errMu.Unlock()
	if first {
		r.log.Warn("decode.bad", string(r.self), "dropping corrupt payloads (logging once until recovery)",
			"kind", kind, "err", err)
	}
}

// noteDecodeOK clears a kind's bad state, logging the recovery. The
// atomic fast path keeps the healthy hot path lock-free.
func (r *Relay) noteDecodeOK(kind string) {
	if r.decodeBadN.Load() == 0 {
		return
	}
	r.errMu.Lock()
	recovered := r.decodeBad[kind]
	if recovered {
		delete(r.decodeBad, kind)
		r.decodeBadN.Add(-1)
	}
	r.errMu.Unlock()
	if recovered {
		r.log.Warn("decode.ok", string(r.self), "payloads decoding again", "kind", kind)
	}
}

// DecodeErrorsByKind snapshots the per-kind decode-failure counts.
func (r *Relay) DecodeErrorsByKind() map[string]int64 {
	r.errMu.Lock()
	defer r.errMu.Unlock()
	out := make(map[string]int64, len(r.decodeErrs))
	for kind, n := range r.decodeErrs {
		out[kind] = n
	}
	return out
}

// Close stops the refresher, drains the link send workers, and
// deregisters the relay from the transport.
func (r *Relay) Close() error {
	r.StopRefresh()
	r.closeSenders()
	if r.rel != nil {
		return r.rel.Close()
	}
	return r.transport.Deregister(r.self)
}

// wireInterest is the JSON form of one interest term.
type wireInterest struct {
	Ranges map[string]stream.Range `json:"ranges,omitempty"`
	Keys   map[string][]string     `json:"keys,omitempty"`
}

type wireInterestSet struct {
	Stream string         `json:"stream"`
	Terms  []wireInterest `json:"terms"`
}

func encodeInterestSet(set *stream.InterestSet) ([]byte, error) {
	w := wireInterestSet{Stream: set.Stream}
	for _, term := range set.Terms {
		wi := wireInterest{}
		if len(term.Ranges) > 0 {
			wi.Ranges = term.Ranges
		}
		if len(term.Keys) > 0 {
			wi.Keys = make(map[string][]string, len(term.Keys))
			for f, ks := range term.Keys {
				list := make([]string, 0, len(ks))
				for k := range ks {
					list = append(list, k)
				}
				sort.Strings(list)
				wi.Keys[f] = list
			}
		}
		w.Terms = append(w.Terms, wi)
	}
	return json.Marshal(w)
}

func decodeInterestSet(payload []byte, wantStream string) (*stream.InterestSet, error) {
	var w wireInterestSet
	if err := json.Unmarshal(payload, &w); err != nil {
		return nil, err
	}
	if w.Stream != wantStream {
		return nil, fmt.Errorf("dissemination: interest for %q on %q tree", w.Stream, wantStream)
	}
	set := stream.NewInterestSet(w.Stream)
	for _, wi := range w.Terms {
		in := stream.NewInterest(w.Stream)
		for f, rg := range wi.Ranges {
			in = in.WithRange(f, rg.Lo, rg.Hi)
		}
		for f, ks := range wi.Keys {
			in = in.WithKeys(f, ks...)
		}
		set.Add(in)
	}
	return set, nil
}
