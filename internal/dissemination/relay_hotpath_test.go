package dissemination

import (
	"sync"
	"testing"
	"time"

	"sspd/internal/simnet"
	"sspd/internal/stream"
)

// capturedMsg records one send: the original payload slice (for
// pointer-identity checks) plus a copy taken synchronously inside Send —
// the Transport.Send contract says the original may be reused once Send
// returns, so only the copy is safe to decode later.
type capturedMsg struct {
	to       simnet.NodeID
	kind     string
	payload  []byte
	snapshot []byte
}

// captureTransport records every sent payload without delivering it —
// enough to drive one relay's fan-out in isolation.
type captureTransport struct {
	mu      sync.Mutex
	traffic *simnet.Traffic
	sent    []capturedMsg
}

func newCaptureTransport() *captureTransport {
	return &captureTransport{traffic: simnet.NewTraffic()}
}

func (c *captureTransport) Register(id simnet.NodeID, h simnet.Handler) error { return nil }
func (c *captureTransport) Deregister(id simnet.NodeID) error                 { return nil }
func (c *captureTransport) Traffic() *simnet.Traffic                          { return c.traffic }
func (c *captureTransport) Close() error                                      { return nil }

func (c *captureTransport) Send(from, to simnet.NodeID, kind string, payload []byte) error {
	snap := make([]byte, len(payload))
	copy(snap, payload)
	c.mu.Lock()
	c.sent = append(c.sent, capturedMsg{to: to, kind: kind, payload: payload, snapshot: snap})
	c.mu.Unlock()
	return nil
}

func (c *captureTransport) take() []capturedMsg {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.sent
	c.sent = nil
	return out
}

// nullTransport drops everything — the zero-overhead sink the alloc
// guard and the tuple-path bench measure against.
type nullTransport struct{ traffic *simnet.Traffic }

func newNullTransport() *nullTransport { return &nullTransport{traffic: simnet.NewTraffic()} }

func (n *nullTransport) Register(id simnet.NodeID, h simnet.Handler) error          { return nil }
func (n *nullTransport) Deregister(id simnet.NodeID) error                          { return nil }
func (n *nullTransport) Traffic() *simnet.Traffic                                   { return n.traffic }
func (n *nullTransport) Close() error                                               { return nil }
func (n *nullTransport) Send(from, to simnet.NodeID, kind string, payload []byte) error { return nil }

// midRelay builds src -> mid -> {leaf0, leaf1} and returns the middle
// relay attached to the given transport (src and leaves are not
// attached; the test drives mid directly via HandleTuples).
func midRelay(t *testing.T, tp simnet.Transport) *Relay {
	t.Helper()
	members := []Member{
		{ID: "mid", Pos: simnet.Point{X: 10}},
		{ID: "leaf0", Pos: simnet.Point{X: 20}},
		{ID: "leaf1", Pos: simnet.Point{X: 30}},
	}
	tr, err := Build("quotes", testSource, members, Balanced, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Balanced fanout 2: src -> {mid, leaf0}? Ensure mid is the parent of
	// both leaves by building fanout 1 chain instead when needed.
	if len(tr.Children("mid")) != 2 {
		tr, err = Build("quotes", testSource,
			[]Member{{ID: "mid", Pos: simnet.Point{X: 10}}}, Balanced, 2)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tr.AddMember(Member{ID: "leaf0", Pos: simnet.Point{X: 11}}, 2); err != nil {
			t.Fatal(err)
		}
		if _, err := tr.AddMember(Member{ID: "leaf1", Pos: simnet.Point{X: 9}}, 2); err != nil {
			t.Fatal(err)
		}
	}
	if len(tr.Children("mid")) != 2 {
		t.Fatalf("test tree: mid has children %v, want 2", tr.Children("mid"))
	}
	rel, err := NewRelay(tr, "mid", quotesSchema(), tp, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rel.Close() })
	return rel
}

func quoteBatch(n int) stream.Batch {
	b := make(stream.Batch, 0, n)
	for i := 0; i < n; i++ {
		sym := "ibm"
		if i%2 == 1 {
			sym = "aapl"
		}
		b = append(b, stream.NewTuple("quotes", uint64(i), time.Unix(int64(i), 0).UTC(),
			stream.String(sym), stream.Float(float64(i%100))))
	}
	return b
}

// TestRelayPassThroughForwardsWireVerbatim proves the zero-copy claim:
// a child whose registration matched the whole batch receives the exact
// incoming payload slice, not a re-encoding.
func TestRelayPassThroughForwardsWireVerbatim(t *testing.T) {
	cap := newCaptureTransport()
	rel := midRelay(t, cap)
	// leaf0 registers everything; leaf1 registers a filter matching only
	// ibm quotes.
	all := stream.NewInterestSet("quotes")
	all.Add(stream.NewInterest("quotes"))
	allPayload, err := encodeInterestSet(all)
	if err != nil {
		t.Fatal(err)
	}
	rel.handle(simnet.Message{From: "leaf0", To: "mid", Kind: KindInterest, Payload: allPayload})
	ibm := stream.NewInterestSet("quotes")
	ibm.Add(stream.NewInterest("quotes").WithKeys("symbol", "ibm"))
	ibmPayload, err := encodeInterestSet(ibm)
	if err != nil {
		t.Fatal(err)
	}
	rel.handle(simnet.Message{From: "leaf1", To: "mid", Kind: KindInterest, Payload: ibmPayload})
	cap.take() // discard the upward registrations

	batch := quoteBatch(16)
	wire := stream.AppendBatch(nil, batch)
	rel.HandleTuples(wire)

	var toLeaf0, toLeaf1 *capturedMsg
	msgs := cap.take()
	for i := range msgs {
		switch msgs[i].to {
		case "leaf0":
			toLeaf0 = &msgs[i]
		case "leaf1":
			toLeaf1 = &msgs[i]
		}
	}
	if toLeaf0 == nil || toLeaf1 == nil {
		t.Fatal("both children should have received tuples")
	}
	if &toLeaf0.payload[0] != &wire[0] || len(toLeaf0.payload) != len(wire) {
		t.Fatal("match-all child should receive the incoming wire payload verbatim (zero-copy)")
	}
	dec, _, err := stream.DecodeBatch(toLeaf1.snapshot)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 8 {
		t.Fatalf("filtered child got %d tuples, want 8", len(dec))
	}
	for _, tu := range dec {
		if tu.Values[0].AsString() != "ibm" {
			t.Fatalf("filtered child got symbol %q", tu.Values[0].AsString())
		}
	}
	if got := rel.Relayed.Value(); got != 16+8 {
		t.Fatalf("Relayed = %d, want 24", got)
	}
	if got := rel.Suppressed.Value(); got != 8 {
		t.Fatalf("Suppressed = %d, want 8", got)
	}
}

// TestRelayUnregisteredChildPassThrough pins the safety default: a child
// with no registration receives the whole incoming payload verbatim.
func TestRelayUnregisteredChildPassThrough(t *testing.T) {
	cap := newCaptureTransport()
	rel := midRelay(t, cap)
	batch := quoteBatch(4)
	wire := stream.AppendBatch(nil, batch)
	rel.HandleTuples(wire)
	sent := cap.take()
	if len(sent) != 2 {
		t.Fatalf("sent %d messages, want 2", len(sent))
	}
	for _, m := range sent {
		if &m.payload[0] != &wire[0] {
			t.Fatalf("unregistered child %s should get the wire payload verbatim", m.to)
		}
	}
}

// TestRelayDecodeErrorCounted replaces the old silent drop: corrupt
// payloads are counted per kind and surfaced via DecodeErrorsByKind.
func TestRelayDecodeErrorCounted(t *testing.T) {
	rel := midRelay(t, newCaptureTransport())
	rel.HandleTuples([]byte{0xff, 0xff})
	rel.HandleTuples([]byte{0xff, 0xff, 0xff, 0xff, 0x01})
	rel.handle(simnet.Message{From: "leaf0", To: "mid", Kind: KindInterest, Payload: []byte("{")})
	if got := rel.DecodeErrors.Value(); got != 3 {
		t.Fatalf("DecodeErrors = %d, want 3", got)
	}
	byKind := rel.DecodeErrorsByKind()
	if byKind["tuples"] != 2 || byKind["interest"] != 1 {
		t.Fatalf("DecodeErrorsByKind = %v, want tuples:2 interest:1", byKind)
	}
	// Recovery clears the once-per-transition state without disturbing
	// the counts.
	rel.HandleTuples(stream.AppendBatch(nil, quoteBatch(1)))
	if byKind := rel.DecodeErrorsByKind(); byKind["tuples"] != 2 {
		t.Fatalf("counts must survive recovery, got %v", byKind)
	}
}

// TestRelayPassThroughZeroAllocs is the headline regression guard: a
// pure-relay hop (decode + match + pass-through fan-out) allocates
// nothing per batch in steady state.
func TestRelayPassThroughZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector shadow state allocates; exact counts only hold without -race")
	}
	rel := midRelay(t, newNullTransport())
	all := stream.NewInterestSet("quotes")
	all.Add(stream.NewInterest("quotes"))
	payload, err := encodeInterestSet(all)
	if err != nil {
		t.Fatal(err)
	}
	rel.handle(simnet.Message{From: "leaf0", To: "mid", Kind: KindInterest, Payload: payload})
	rel.handle(simnet.Message{From: "leaf1", To: "mid", Kind: KindInterest, Payload: payload})
	wire := stream.AppendBatch(nil, quoteBatch(64))
	for i := 0; i < 10; i++ { // warmup: pools, link workers, arenas
		rel.HandleTuples(wire)
	}
	allocs := testing.AllocsPerRun(200, func() {
		rel.HandleTuples(wire)
	})
	if allocs != 0 {
		t.Fatalf("pass-through relay path allocated %.2f times per batch, want 0", allocs)
	}
}

// TestRelayCompiledMatchZeroAllocsFiltered extends the guard to the
// filtered path with local delivery disabled: matching plus pooled
// re-encode must stay allocation-free.
func TestRelayFilteredPathSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector shadow state allocates; exact counts only hold without -race")
	}
	rel := midRelay(t, newNullTransport())
	ibm := stream.NewInterestSet("quotes")
	ibm.Add(stream.NewInterest("quotes").WithKeys("symbol", "ibm"))
	payload, err := encodeInterestSet(ibm)
	if err != nil {
		t.Fatal(err)
	}
	rel.handle(simnet.Message{From: "leaf0", To: "mid", Kind: KindInterest, Payload: payload})
	rel.handle(simnet.Message{From: "leaf1", To: "mid", Kind: KindInterest, Payload: payload})
	wire := stream.AppendBatch(nil, quoteBatch(64))
	for i := 0; i < 10; i++ {
		rel.HandleTuples(wire)
	}
	allocs := testing.AllocsPerRun(200, func() {
		rel.HandleTuples(wire)
	})
	if allocs != 0 {
		t.Fatalf("filtered relay path allocated %.2f times per batch, want 0", allocs)
	}
}

// TestRelayBatchDelivery checks the DeliverBatch contract: locally
// matched tuples arrive cloned (safe to retain) in one call per batch.
func TestRelayBatchDelivery(t *testing.T) {
	members := []Member{{ID: "e00", Pos: simnet.Point{X: 10}}}
	tr, err := Build("quotes", testSource, members, Balanced, 1)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var got stream.Batch
	rel, err := NewRelayWith(tr, "e00", quotesSchema(), newNullTransport(), nil,
		RelayOptions{DeliverBatch: func(b stream.Batch) {
			mu.Lock()
			got = append(got, b...)
			mu.Unlock()
		}})
	if err != nil {
		t.Fatal(err)
	}
	defer rel.Close()
	if err := rel.SetLocalInterest([]stream.Interest{
		stream.NewInterest("quotes").WithKeys("symbol", "ibm"),
	}); err != nil {
		t.Fatal(err)
	}
	batch := quoteBatch(10)
	rel.HandleTuples(stream.AppendBatch(nil, batch))
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 5 {
		t.Fatalf("delivered %d tuples, want 5", len(got))
	}
	for _, tu := range got {
		if tu.Values[0].AsString() != "ibm" {
			t.Fatalf("delivered symbol %q, want ibm", tu.Values[0].AsString())
		}
	}
	if rel.Delivered.Value() != 5 {
		t.Fatalf("Delivered = %d, want 5", rel.Delivered.Value())
	}
}
