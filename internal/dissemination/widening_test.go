package dissemination

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"sspd/internal/simnet"
	"sspd/internal/stream"
)

// TestAggregationCapNeverLosesTuples pins the safety property of
// interest aggregation: however hard the per-node term cap widens the
// registered filters, every locally-interesting tuple still arrives.
func TestAggregationCapNeverLosesTuples(t *testing.T) {
	run := func(maxTerms int) int64 {
		net := simnet.NewSim(nil)
		defer net.Close()
		sc := quotesSchema()
		var members []Member
		for i := 0; i < 12; i++ {
			members = append(members, Member{ID: simnet.NodeID(fmt.Sprintf("e%03d", i)),
				Pos: simnet.Point{X: float64(i * 7), Y: float64(i * 3)}})
		}
		tree, err := Build("quotes", Member{ID: "src"}, members, Balanced, 2)
		if err != nil {
			t.Fatal(err)
		}
		source, err := NewRelay(tree, "src", sc, net, nil, maxTerms)
		if err != nil {
			t.Fatal(err)
		}
		var delivered atomic.Int64
		var relays []*Relay
		for _, m := range members {
			r, err := NewRelay(tree, m.ID, sc, net, func(stream.Tuple) { delivered.Add(1) }, maxTerms)
			if err != nil {
				t.Fatal(err)
			}
			relays = append(relays, r)
		}
		for i, relay := range relays {
			var terms []stream.Interest
			for j := 0; j < 8; j++ {
				lo := float64(((i*8+j)*83)%996) + 0.1
				terms = append(terms, stream.NewInterest("quotes").WithRange("price", lo, lo+4))
			}
			if err := relay.SetLocalInterest(terms); err != nil {
				t.Fatal(err)
			}
		}
		if !net.Quiesce(30 * time.Second) {
			t.Fatal("quiesce")
		}
		var batch stream.Batch
		for i := 0; i < 400; i++ {
			batch = append(batch, stream.NewTuple("quotes", uint64(i), time.Unix(int64(i), 0).UTC(),
				stream.String("S"), stream.Float(float64(i*3%1000))))
		}
		if err := source.Publish(batch); err != nil {
			t.Fatal(err)
		}
		if !net.Quiesce(30 * time.Second) {
			t.Fatal("quiesce")
		}
		return delivered.Load()
	}
	want := run(1 << 20) // effectively uncapped: precise filters
	for _, cap := range []int{1, 2, 4, 16, 128} {
		if got := run(cap); got != want {
			t.Errorf("cap=%d delivered %d, want %d", cap, got, want)
		}
	}
}
