package dissemination

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"sspd/internal/simnet"
	"sspd/internal/stream"
)

func TestAddMemberRuntime(t *testing.T) {
	tr, err := Build("s", testSource, mkMembers(5), Locality, 2)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := tr.AddMember(Member{ID: "newbie", Pos: simnet.Point{X: 15, Y: 5}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rw.Child != "newbie" || rw.NewParent == "" || rw.OldParent != "" {
		t.Fatalf("rewire = %+v", rw)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.MaxFanout() > 2 {
		t.Errorf("fanout bound broken: %d", tr.MaxFanout())
	}
	if _, err := tr.AddMember(Member{ID: "newbie"}, 2); err == nil {
		t.Error("duplicate add accepted")
	}
	if _, err := tr.AddMember(Member{ID: "src"}, 2); err == nil {
		t.Error("source add accepted")
	}
}

func TestRemoveMemberReattachesOrphans(t *testing.T) {
	tr, err := Build("s", testSource, mkMembers(10), Balanced, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Remove an internal node (the source's first child has children).
	victim := tr.Children("src")[0]
	orphans := tr.Children(victim)
	if len(orphans) == 0 {
		t.Fatal("picked a leaf; want an internal node")
	}
	rewires, err := tr.RemoveMember(victim, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rewires) != len(orphans) {
		t.Fatalf("rewires = %d, orphans = %d", len(rewires), len(orphans))
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("tree invalid after removal: %v", err)
	}
	for _, o := range orphans {
		if tr.Depth(o) < 0 {
			t.Errorf("orphan %s unreachable", o)
		}
	}
	if _, err := tr.RemoveMember(victim, 2); err == nil {
		t.Error("double remove accepted")
	}
	if _, err := tr.RemoveMember("src", 2); err == nil {
		t.Error("source removal accepted")
	}
}

func TestRemoveMemberNeverAttachesIntoOwnSubtree(t *testing.T) {
	// A chain: src -> a -> b -> c. Removing a must not attach b under c.
	tr, err := Build("s", testSource, []Member{
		{ID: "a", Pos: simnet.Point{X: 10}},
		{ID: "b", Pos: simnet.Point{X: 20}},
		{ID: "c", Pos: simnet.Point{X: 30}},
	}, Balanced, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.RemoveMember("a", 1); err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("cycle or orphan after removal: %v", err)
	}
}

func TestReorganizeImprovesEdgeLength(t *testing.T) {
	// A deliberately bad tree: Balanced ignores geometry, so members end
	// up far from their parents. Reorganize must strictly shrink total
	// edge length and converge.
	members := make([]Member, 24)
	rng := rand.New(rand.NewSource(4))
	for i := range members {
		members[i] = Member{
			ID:  simnet.NodeID(fmt.Sprintf("m%02d", i)),
			Pos: simnet.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100},
		}
	}
	tr, err := Build("s", testSource, members, Balanced, 3)
	if err != nil {
		t.Fatal(err)
	}
	before := tr.TotalEdgeLength()
	total := 0
	for pass := 0; pass < 20; pass++ {
		rw := tr.Reorganize(3)
		total += len(rw)
		if err := tr.Validate(); err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		if tr.MaxFanout() > 3 {
			t.Fatalf("pass %d: fanout %d", pass, tr.MaxFanout())
		}
		if len(rw) == 0 {
			break
		}
	}
	after := tr.TotalEdgeLength()
	if total == 0 {
		t.Fatal("reorganize never improved a random balanced tree")
	}
	if after >= before {
		t.Fatalf("edge length %v -> %v (no improvement)", before, after)
	}
	// Converged: one more pass changes nothing.
	if rw := tr.Reorganize(3); len(rw) != 0 {
		t.Fatalf("not converged: %d more rewires", len(rw))
	}
}

func TestReorganizeChurnProperty(t *testing.T) {
	// Random add/remove/reorganize churn keeps the tree valid.
	rng := rand.New(rand.NewSource(77))
	tr, err := Build("s", testSource, mkMembers(8), Locality, 3)
	if err != nil {
		t.Fatal(err)
	}
	next := 100
	for op := 0; op < 200; op++ {
		switch {
		case rng.Float64() < 0.4:
			id := simnet.NodeID(fmt.Sprintf("d%03d", next))
			next++
			if _, err := tr.AddMember(Member{
				ID:  id,
				Pos: simnet.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100},
			}, 3); err != nil {
				t.Fatal(err)
			}
		case rng.Float64() < 0.7 && len(tr.Members()) > 1:
			members := tr.Members()
			victim := members[rng.Intn(len(members))]
			if _, err := tr.RemoveMember(victim, 3); err != nil {
				t.Fatal(err)
			}
		default:
			tr.Reorganize(3)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("op %d: %v", op, err)
		}
	}
}

func TestDynamicTreeWithLiveRelays(t *testing.T) {
	// Rewire a live tree while tuples flow: no delivery is lost once
	// interests refresh.
	net := simnet.NewSim(nil)
	defer net.Close()
	sc := quotesSchema()
	members := []Member{
		{ID: "e00", Pos: simnet.Point{X: 10}},
		{ID: "e01", Pos: simnet.Point{X: 20}},
	}
	tr, err := Build("quotes", testSource, members, Balanced, 1)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewRelay(tr, "src", sc, net, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	sinks := map[simnet.NodeID]*deliverySink{}
	relays := map[simnet.NodeID]*Relay{}
	addRelay := func(id simnet.NodeID) {
		sink := &deliverySink{}
		r, err := NewRelay(tr, id, sc, net, sink.deliver, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.SetLocalInterest([]stream.Interest{stream.NewInterest("quotes")}); err != nil {
			t.Fatal(err)
		}
		sinks[id] = sink
		relays[id] = r
	}
	addRelay("e00")
	addRelay("e01")
	net.Quiesce(time.Second)

	// A third entity joins at runtime.
	rw, err := tr.AddMember(Member{ID: "e02", Pos: simnet.Point{X: 30}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	addRelay("e02")
	if err := relays[rw.Child].Refresh(); err != nil {
		t.Fatal(err)
	}
	net.Quiesce(time.Second)

	if err := src.Publish(stream.Batch{quote(1, "ibm", 50)}); err != nil {
		t.Fatal(err)
	}
	net.Quiesce(time.Second)
	for id, sink := range sinks {
		if sink.count() != 1 {
			t.Errorf("%s delivered %d, want 1", id, sink.count())
		}
	}

	// e01 leaves; e02 (its child in the chain) is rewired and must keep
	// receiving.
	rewires, err := tr.RemoveMember("e01", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := relays["e01"].Close(); err != nil {
		t.Fatal(err)
	}
	for _, rw := range rewires {
		if r, ok := relays[rw.Child]; ok {
			if err := r.Refresh(); err != nil {
				t.Fatal(err)
			}
		}
	}
	net.Quiesce(time.Second)
	if err := src.Publish(stream.Batch{quote(2, "ibm", 60)}); err != nil {
		t.Fatal(err)
	}
	net.Quiesce(time.Second)
	if sinks["e00"].count() != 2 {
		t.Errorf("e00 delivered %d, want 2", sinks["e00"].count())
	}
	if sinks["e02"].count() != 2 {
		t.Errorf("rewired e02 delivered %d, want 2", sinks["e02"].count())
	}
}
