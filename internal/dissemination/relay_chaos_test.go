package dissemination

import (
	"testing"
	"time"

	"sspd/internal/simnet"
	"sspd/internal/stream"
)

// buildLossyChain wires src -> e00 -> e01 over a FaultPlan.
func buildLossyChain(t *testing.T, seed int64, opts RelayOptions) (*simnet.FaultPlan, *Relay, *Relay, *Relay, *deliverySink) {
	t.Helper()
	plan := simnet.NewFaultPlan(simnet.NewSim(nil), seed)
	t.Cleanup(func() { plan.Close() })
	members := []Member{
		{ID: "e00", Pos: simnet.Point{X: 10}},
		{ID: "e01", Pos: simnet.Point{X: 20}},
	}
	tr, err := Build("quotes", testSource, members, Balanced, 1)
	if err != nil {
		t.Fatal(err)
	}
	sc := quotesSchema()
	src, err := NewRelayWith(tr, "src", sc, plan, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	sink := &deliverySink{}
	r0, err := NewRelayWith(tr, "e00", sc, plan, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := NewRelayWith(tr, "e01", sc, plan, sink.deliver, opts)
	if err != nil {
		t.Fatal(err)
	}
	return plan, src, r0, r1, sink
}

// TestInterestConvergesUnderLoss is the soft-state recovery property:
// with 20% loss on the e01->e00 control link, the leaf's interest
// registration may be dropped any number of times, but periodic
// refreshes re-announce it and the ancestors' aggregate filters must
// converge to the true interest set within a bounded number of refresh
// intervals — after which no tuple addressed to the leaf is filtered.
func TestInterestConvergesUnderLoss(t *testing.T) {
	plan, src, r0, r1, sink := buildLossyChain(t, 99, RelayOptions{})
	plan.SetLinkFaults("e01", "e00", simnet.LinkFaults{Drop: 0.2})

	if err := r1.SetLocalInterest([]stream.Interest{
		stream.NewInterest("quotes").WithRange("price", 100, 200),
	}); err != nil {
		t.Fatal(err)
	}
	// Drive refresh intervals explicitly for determinism: each round is
	// one soft-state re-announcement plus settling. With the 0.2-drop
	// seeded plan, K consecutive losses decay geometrically; converging
	// within 10 intervals is effectively certain.
	const maxIntervals = 10
	converged := -1
	wants := func(rel *Relay) bool {
		set := rel.aggregate()
		return set.Matches(rel.schema, quote(1, "ibm", 150))
	}
	for k := 0; k < maxIntervals; k++ {
		if wants(r0) && wants(src) {
			converged = k
			break
		}
		if err := r1.Refresh(); err != nil {
			t.Fatal(err)
		}
		if !plan.Quiesce(time.Second) {
			t.Fatal("quiesce")
		}
	}
	if converged < 0 {
		t.Fatalf("ancestor filters did not converge within %d refresh intervals", maxIntervals)
	}
	t.Logf("converged after %d refresh intervals (%d registrations dropped)",
		converged, plan.Injected(simnet.FaultDrop))

	// After convergence, stop faulting and verify no tuple the leaf
	// wants is filtered anywhere on the path.
	plan.SetEnabled(false)
	if err := src.Publish(stream.Batch{
		quote(1, "ibm", 150), quote(2, "msft", 120), quote(3, "ibm", 500),
	}); err != nil {
		t.Fatal(err)
	}
	if !plan.Quiesce(time.Second) {
		t.Fatal("quiesce")
	}
	if got := sink.count(); got != 2 {
		t.Fatalf("leaf delivered %d tuples after convergence, want 2 (none silently filtered)", got)
	}
}

// TestInterestConvergesWithReliableControl repeats the lossy-link
// scenario with the reliable control plane: a single registration must
// survive 50% loss through retries alone, no refresh needed.
func TestInterestConvergesWithReliableControl(t *testing.T) {
	opts := RelayOptions{Reliable: &simnet.ReliableConfig{
		MaxAttempts: 20, BaseBackoff: 2 * time.Millisecond,
	}}
	plan, src, r0, r1, sink := buildLossyChain(t, 7, opts)
	plan.SetLinkFaults("e01", "e00", simnet.LinkFaults{Drop: 0.5})
	plan.SetLinkFaults("e00", "e01", simnet.LinkFaults{Drop: 0.5}) // acks lossy too

	if err := r1.SetLocalInterest([]stream.Interest{
		stream.NewInterest("quotes").WithRange("price", 100, 200),
	}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		set := r0.aggregate()
		if set.Matches(r0.schema, quote(1, "ibm", 150)) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("reliable registration never reached the parent through 50% loss")
		}
		time.Sleep(5 * time.Millisecond)
	}
	plan.SetEnabled(false)
	plan.Quiesce(time.Second)
	if err := src.Publish(stream.Batch{quote(1, "ibm", 150)}); err != nil {
		t.Fatal(err)
	}
	plan.Quiesce(time.Second)
	if sink.count() != 1 {
		t.Fatalf("delivered %d, want 1", sink.count())
	}
	if r1.Reliable().Retries.Value() == 0 {
		t.Error("no retries under 50% loss")
	}
	_ = src
}

// TestRelaySendErrorsCounted is the regression for Publish/fan-out
// swallowing transport errors: sends to a vanished child must be
// counted per link (and logged once), not discarded.
func TestRelaySendErrorsCounted(t *testing.T) {
	net, src, _, r1, _, _ := buildChain(t)
	// The tree still routes src -> e00 -> e01, but e00's endpoint is
	// gone: every batch to it now fails at the transport.
	if err := net.Deregister("e00"); err != nil {
		t.Fatal(err)
	}
	_ = r1
	for i := 0; i < 3; i++ {
		if err := src.Publish(stream.Batch{quote(uint64(i), "ibm", 10)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := src.SendErrors.Value(); got != 3 {
		t.Fatalf("SendErrors = %d, want 3", got)
	}
	byLink := src.SendErrorsByLink()
	if byLink["e00"] != 3 {
		t.Fatalf("per-link errors = %v, want e00:3", byLink)
	}
}
