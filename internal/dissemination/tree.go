// Package dissemination implements Section 3.1 of the paper: entities
// cooperate to move source streams to everyone who needs them. Entities
// form one dissemination tree per stream (the source at the root, each
// parent relaying to a bounded number of children), register their
// aggregated data interest with their parent, and ancestors filter early
// so a subtree that wants 5% of a stream receives 5% of it.
//
// Three tree shapes are provided for the E1 ablation: SourceDirect (the
// paper's non-cooperative baseline where the source feeds every entity),
// Balanced (fanout-bounded BFS layers), and Locality (greedy
// closest-parent attachment, the shape that exploits the coordinate
// space).
package dissemination

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"sspd/internal/simnet"
)

// Strategy selects a tree-construction algorithm.
type Strategy int

// Tree-construction strategies.
const (
	// SourceDirect attaches every entity directly to the source.
	SourceDirect Strategy = iota
	// Balanced fills fanout-bounded levels in member order.
	Balanced
	// Locality greedily attaches each member to the nearest node that
	// still has fanout room.
	Locality
)

// String names the strategy for experiment output.
func (s Strategy) String() string {
	switch s {
	case SourceDirect:
		return "source-direct"
	case Balanced:
		return "balanced"
	case Locality:
		return "locality"
	default:
		return "unknown"
	}
}

// Member is one participant (entity wrapper) placed in the coordinate
// space.
type Member struct {
	ID  simnet.NodeID
	Pos simnet.Point
}

// Tree is the dissemination tree of one stream: a rooted tree over the
// source and the subscribing entities.
type Tree struct {
	// mu guards the structure: relays read it on every batch while the
	// dynamic-reorganization methods mutate it.
	mu       sync.RWMutex
	stream   string
	source   simnet.NodeID
	parent   map[simnet.NodeID]simnet.NodeID
	children map[simnet.NodeID][]simnet.NodeID
	pos      map[simnet.NodeID]simnet.Point
	// version counts structural mutations; relays cache their children
	// slice between batches and revalidate against it, so the hot path
	// skips Children's per-call copy.
	version atomic.Uint64
}

// Version returns a counter bumped on every structural mutation: an
// unchanged version guarantees an unchanged parent/children structure.
func (t *Tree) Version() uint64 { return t.version.Load() }

// Build constructs a dissemination tree for the named stream. fanout
// bounds each node's children for Balanced and Locality (minimum 1);
// SourceDirect ignores it.
func Build(streamName string, source Member, members []Member, strategy Strategy, fanout int) (*Tree, error) {
	if streamName == "" {
		return nil, fmt.Errorf("dissemination: empty stream name")
	}
	if source.ID == "" {
		return nil, fmt.Errorf("dissemination: stream %q needs a source", streamName)
	}
	if fanout < 1 {
		fanout = 1
	}
	t := &Tree{
		stream:   streamName,
		source:   source.ID,
		parent:   make(map[simnet.NodeID]simnet.NodeID),
		children: make(map[simnet.NodeID][]simnet.NodeID),
		pos:      map[simnet.NodeID]simnet.Point{source.ID: source.Pos},
	}
	ordered := make([]Member, len(members))
	copy(ordered, members)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].ID < ordered[j].ID })
	for _, m := range ordered {
		if m.ID == source.ID {
			return nil, fmt.Errorf("dissemination: member %q duplicates the source", m.ID)
		}
		if _, dup := t.pos[m.ID]; dup {
			return nil, fmt.Errorf("dissemination: duplicate member %q", m.ID)
		}
		t.pos[m.ID] = m.Pos
	}

	switch strategy {
	case SourceDirect:
		for _, m := range ordered {
			t.attach(m.ID, source.ID)
		}
	case Balanced:
		// BFS fill: the source takes the first `fanout` members, each
		// of those the next `fanout`, and so on.
		queue := []simnet.NodeID{source.ID}
		idx := 0
		for idx < len(ordered) {
			p := queue[0]
			queue = queue[1:]
			for f := 0; f < fanout && idx < len(ordered); f++ {
				id := ordered[idx].ID
				idx++
				t.attach(id, p)
				queue = append(queue, id)
			}
		}
	case Locality:
		// Attach members nearest-to-source first so good relay points
		// exist early; each picks the closest node with fanout room.
		byDist := make([]Member, len(ordered))
		copy(byDist, ordered)
		sort.SliceStable(byDist, func(i, j int) bool {
			di := byDist[i].Pos.Distance(source.Pos)
			dj := byDist[j].Pos.Distance(source.Pos)
			if di != dj {
				return di < dj
			}
			return byDist[i].ID < byDist[j].ID
		})
		attached := []simnet.NodeID{source.ID}
		for _, m := range byDist {
			best := simnet.NodeID("")
			bestD := 0.0
			for _, cand := range attached {
				if len(t.children[cand]) >= fanout {
					continue
				}
				d := t.pos[cand].Distance(m.Pos)
				if best == "" || d < bestD || (d == bestD && cand < best) {
					best, bestD = cand, d
				}
			}
			if best == "" {
				// All full (can only happen with tiny fanout): fall
				// back to the shallowest node, ignoring the bound.
				best = t.shallowest(attached)
			}
			t.attach(m.ID, best)
			attached = append(attached, m.ID)
		}
	default:
		return nil, fmt.Errorf("dissemination: unknown strategy %d", strategy)
	}
	return t, nil
}

func (t *Tree) attach(child, parent simnet.NodeID) {
	t.parent[child] = parent
	t.children[parent] = append(t.children[parent], child)
	t.version.Add(1)
}

func (t *Tree) shallowest(ids []simnet.NodeID) simnet.NodeID {
	best := ids[0]
	bestD := t.depthLocked(best)
	for _, id := range ids[1:] {
		if d := t.depthLocked(id); d < bestD || (d == bestD && id < best) {
			best, bestD = id, d
		}
	}
	return best
}

// Has reports whether id is a member (the source is not a member).
func (t *Tree) Has(id simnet.NodeID) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, ok := t.parent[id]
	return ok
}

// Stream returns the stream the tree disseminates.
func (t *Tree) Stream() string { return t.stream }

// Source returns the root node.
func (t *Tree) Source() simnet.NodeID { return t.source }

// Parent returns a node's parent ("" for the source or unknown nodes).
func (t *Tree) Parent(id simnet.NodeID) simnet.NodeID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.parent[id]
}

// Children returns a copy of a node's children.
func (t *Tree) Children(id simnet.NodeID) []simnet.NodeID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ch := t.children[id]
	out := make([]simnet.NodeID, len(ch))
	copy(out, ch)
	return out
}

// Members returns all non-source nodes in sorted order.
func (t *Tree) Members() []simnet.NodeID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]simnet.NodeID, 0, len(t.parent))
	for id := range t.parent {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Depth returns the number of hops from the source to id (0 for the
// source itself).
func (t *Tree) Depth(id simnet.NodeID) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.depthLocked(id)
}

func (t *Tree) depthLocked(id simnet.NodeID) int {
	d := 0
	for id != t.source {
		p, ok := t.parent[id]
		if !ok {
			return -1
		}
		id = p
		d++
	}
	return d
}

// MaxDepth returns the deepest member's depth.
func (t *Tree) MaxDepth() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	max := 0
	for id := range t.parent {
		if d := t.depthLocked(id); d > max {
			max = d
		}
	}
	return max
}

// MaxFanout returns the largest child count of any node — the bound on
// per-node relay work the paper's cooperation establishes.
func (t *Tree) MaxFanout() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	max := 0
	for _, ch := range t.children {
		if len(ch) > max {
			max = len(ch)
		}
	}
	return max
}

// TotalEdgeLength sums the Euclidean length of every tree edge, the
// locality cost the Locality strategy minimizes greedily.
func (t *Tree) TotalEdgeLength() float64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	sum := 0.0
	for child, parent := range t.parent {
		sum += t.pos[child].Distance(t.pos[parent])
	}
	return sum
}

// Validate checks structural soundness: acyclic, all members reach the
// source.
func (t *Tree) Validate() error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for id := range t.parent {
		seen := map[simnet.NodeID]bool{id: true}
		cur := id
		for cur != t.source {
			p, ok := t.parent[cur]
			if !ok {
				return fmt.Errorf("dissemination: node %q cannot reach source", id)
			}
			if seen[p] {
				return fmt.Errorf("dissemination: cycle through %q", p)
			}
			seen[p] = true
			cur = p
		}
	}
	return nil
}
