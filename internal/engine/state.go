// Query-state snapshot and restore: the engine-level half of live
// stateful migration (DESIGN.md §10). A snapshot walks a compiled
// query's operators and serializes every one implementing
// operator.Stateful, keyed by the operator's deterministic in-query name
// (Compile derives names from the spec alone, so the same spec placed on
// another entity yields matching names).
package engine

import (
	"fmt"

	"sspd/internal/operator"
)

// OperatorState is one operator's serialized migration state.
type OperatorState struct {
	Name string
	Data []byte
}

// QueryState is a compiled query's full operator state in pipeline
// order.
type QueryState []OperatorState

// Bytes returns the serialized payload size — the state-transfer cost
// reported by migration metrics.
func (st QueryState) Bytes() int {
	n := 0
	for _, os := range st {
		n += len(os.Name) + len(os.Data)
	}
	return n
}

// StateSnapshotter is the optional engine capability live migration
// needs. Engines that do not implement it still migrate, but only the
// buffered in-flight tuples move — window state restarts empty
// (entity-level callers detect this and degrade gracefully).
type StateSnapshotter interface {
	// SnapshotQueryState serializes a query's operator state.
	SnapshotQueryState(id string) (QueryState, error)
	// RestoreQueryState replaces a query's operator state.
	RestoreQueryState(id string, st QueryState) error
	// QueryStateBytes estimates a query's state size; ok is false for
	// unknown queries.
	QueryStateBytes(id string) (int, bool)
}

func snapshotQuery(q *Query) QueryState {
	var st QueryState
	for _, op := range q.Operators() {
		if s, ok := op.(operator.Stateful); ok {
			st = append(st, OperatorState{Name: op.Name(), Data: s.SnapshotState()})
		}
	}
	return st
}

func restoreQuery(q *Query, st QueryState) error {
	ops := make(map[string]operator.Stateful)
	for _, op := range q.Operators() {
		if s, ok := op.(operator.Stateful); ok {
			ops[op.Name()] = s
		}
	}
	for _, os := range st {
		s, ok := ops[os.Name]
		if !ok {
			return fmt.Errorf("engine: query %s has no stateful operator %q", q.ID(), os.Name)
		}
		if err := s.RestoreState(os.Data); err != nil {
			return fmt.Errorf("engine: restore %s/%s: %w", q.ID(), os.Name, err)
		}
	}
	return nil
}

func queryStateBytes(q *Query) int {
	n := 0
	for _, op := range q.Operators() {
		if s, ok := op.(operator.Stateful); ok {
			n += s.StateBytes()
		}
	}
	return n
}

// stateCtl ops.
const (
	ctlSnapshot = iota + 1
	ctlRestore
	ctlBytes
)

// stateCtl is a synchronous control item handled inside the query
// goroutine, so state access is serialized with tuple processing without
// any extra locking on the operators.
type stateCtl struct {
	op      int
	restore QueryState
	snap    QueryState
	bytes   int
	err     error
	done    chan struct{}
}

// control submits a control item with a blocking send — unlike tuple
// feeds, state operations are never dropped — and waits for the query
// goroutine to execute it.
func (rq *runningQuery) control(c *stateCtl) {
	c.done = make(chan struct{})
	rq.pending.Add(1)
	rq.in <- feedItem{ctl: c}
	<-c.done
}

// SnapshotQueryState implements StateSnapshotter.
func (e *Engine) SnapshotQueryState(id string) (QueryState, error) {
	e.mu.RLock()
	rq, ok := e.queries[id]
	e.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("engine %s: unknown query %s", e.name, id)
	}
	c := &stateCtl{op: ctlSnapshot}
	rq.control(c)
	return c.snap, c.err
}

// RestoreQueryState implements StateSnapshotter.
func (e *Engine) RestoreQueryState(id string, st QueryState) error {
	e.mu.RLock()
	rq, ok := e.queries[id]
	e.mu.RUnlock()
	if !ok {
		return fmt.Errorf("engine %s: unknown query %s", e.name, id)
	}
	c := &stateCtl{op: ctlRestore, restore: st}
	rq.control(c)
	return c.err
}

// QueryStateBytes implements StateSnapshotter.
func (e *Engine) QueryStateBytes(id string) (int, bool) {
	e.mu.RLock()
	rq, ok := e.queries[id]
	e.mu.RUnlock()
	if !ok {
		return 0, false
	}
	c := &stateCtl{op: ctlBytes}
	rq.control(c)
	return c.bytes, true
}

// SnapshotQueryState implements StateSnapshotter. MiniEngine is
// synchronous, so the mutex alone serializes state access.
func (m *MiniEngine) SnapshotQueryState(id string) (QueryState, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	q, ok := m.queries[id]
	if !ok {
		return nil, fmt.Errorf("engine %s: unknown query %s", m.name, id)
	}
	return snapshotQuery(q), nil
}

// RestoreQueryState implements StateSnapshotter.
func (m *MiniEngine) RestoreQueryState(id string, st QueryState) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	q, ok := m.queries[id]
	if !ok {
		return fmt.Errorf("engine %s: unknown query %s", m.name, id)
	}
	return restoreQuery(q, st)
}

// QueryStateBytes implements StateSnapshotter.
func (m *MiniEngine) QueryStateBytes(id string) (int, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	q, ok := m.queries[id]
	if !ok {
		return 0, false
	}
	return queryStateBytes(q), true
}

var (
	_ StateSnapshotter = (*Engine)(nil)
	_ StateSnapshotter = (*MiniEngine)(nil)
)
