// ShardEngine: the shard-per-core vectorized engine (DESIGN.md §13).
//
// Where Engine runs one goroutine per query behind a buffered channel,
// ShardEngine runs one goroutine per CPU shard behind a bounded ring
// queue whose slots carry whole batches. Queries are hash-partitioned
// across shards, so a shard owns its queries outright: query state,
// routing tables, and operator pipelines are goroutine-confined and
// touched without locks. Producers accumulate single tuples into
// batches, ship batches into the owning shards' rings (drop-and-count
// on overflow — the never-block contract is unchanged), and everything
// per-tuple inside a shard runs over columnar batches: filters are
// vectorized kernels that only shrink a selection vector, and the
// stateful tail runs one virtual dispatch + one stats lock per batch
// instead of per tuple.
//
// Control operations (register/unregister, snapshot/restore for live
// migration and checkpoints, adaptation) travel through the same ring
// as data with a blocking enqueue, so they serialize with tuple
// processing in FIFO order exactly like Engine's control items.
package engine

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sspd/internal/metrics"
	"sspd/internal/stream"
)

const (
	// shardRingDepth bounds each shard's ring. Slots hold batches, so
	// the tuple backlog bound is shardRingDepth × batch size.
	shardRingDepth = 1024
	// shardAccBatch is the accumulation target for single-tuple ingest:
	// tuples buffer until the batch fills or the flusher tick fires.
	shardAccBatch = 256
	// shardFlushEvery bounds how long a trickling stream's tuples wait
	// in an accumulator before being force-flushed.
	shardFlushEvery = time.Millisecond
	// shardSpin is how many empty polls a shard makes (yielding each
	// time) before parking on its wake channel.
	shardSpin = 64
)

// shardQuery is one query owned by one shard.
type shardQuery struct {
	sh  *shard
	q   *Query
	// vec is the compiled vectorized pipeline; nil for join queries,
	// which fall back to per-tuple Feed inside the batch loop.
	vec     *vecPipeline
	results metrics.Counter
	delay   metrics.Histogram
	proc    metrics.Histogram
	dropped metrics.Counter
}

// streamRoute is the producer-side routing entry for one (stream,
// shard) pair: enqueue once per shard, attribute drops per query.
type streamRoute struct {
	sh *shard
	qs []*shardQuery
}

// accKey addresses one producer-side accumulator: plain stream ingest
// uses frag == "", addressed (DirectFeeder) delivery sets it. Keeping
// the key a struct avoids per-tuple string concatenation.
type accKey struct {
	frag   string
	stream string
}

// accum batches single-tuple ingest into ring-sized units. mu guards
// the buffer AND stays held across dispatch of a filled/flushed batch,
// so two batches of the same key can never enter a ring out of order
// (dispatch only does non-blocking enqueues, so the hold is bounded).
// The engine-level accMu only guards the acc map itself.
type accum struct {
	mu      sync.Mutex
	buf     stream.Batch
	arrived time.Time
}

// ShardEngine is the shard-per-core engine. It implements Processor,
// DirectFeeder, BatchIngester, BatchFeeder, MetricsReporter,
// StateSnapshotter, Adapter, and DropReporter, so entities host it
// interchangeably with Engine — migration and checkpoint choreography
// included.
type ShardEngine struct {
	name    string
	catalog *stream.Catalog
	shards  []*shard

	// ctlMu serializes control-plane operations (Register/Unregister)
	// end to end, so install/uninstall control items enter shard rings
	// in a well-defined order without holding mu across a (potentially
	// spinning) control enqueue — data-plane emit callbacks may re-enter
	// the engine under mu.RLock.
	ctlMu sync.Mutex

	mu      sync.RWMutex
	queries map[string]*shardQuery
	routes  map[string][]streamRoute
	closed  bool

	accMu      sync.Mutex
	acc        map[accKey]*accum
	accPending atomic.Int64

	// droppedTotal is the engine-lifetime dropped-tuple count across all
	// queries — unlike the per-query counters it survives Unregister, so
	// the entity-level drop attribution never loses history.
	droppedTotal metrics.Counter

	stopFlush chan struct{}
	flushDone chan struct{}
}

// shard is one per-core processing lane: a ring, a goroutine, and the
// goroutine-confined query state.
type shard struct {
	eng  *ShardEngine
	idx  int
	ring *shardRing
	wake chan struct{}
	stop chan struct{}
	done chan struct{}
	// sleeping tells producers the shard has parked and needs a wake.
	sleeping atomic.Bool
	// pending counts enqueued ring items until fully processed, so
	// Drain observes true idleness.
	pending atomic.Int64

	// stats is the shard's telemetry (DESIGN.md §14): batch-grained
	// atomics only, updated by producers and the shard goroutine.
	stats shardStats

	// Owned by the shard goroutine; mutated only via control items.
	queries map[string]*shardQuery
	byInput map[string][]*shardQuery
	cb      *stream.ColBatch
}

// NewShard returns a ShardEngine with nShards per-core shards; nShards
// <= 0 defaults to GOMAXPROCS.
func NewShard(name string, catalog *stream.Catalog, nShards int) *ShardEngine {
	if nShards <= 0 {
		nShards = runtime.GOMAXPROCS(0)
	}
	e := &ShardEngine{
		name:      name,
		catalog:   catalog,
		queries:   make(map[string]*shardQuery),
		routes:    make(map[string][]streamRoute),
		acc:       make(map[accKey]*accum),
		stopFlush: make(chan struct{}),
		flushDone: make(chan struct{}),
	}
	for i := 0; i < nShards; i++ {
		sh := &shard{
			eng:     e,
			idx:     i,
			ring:    newShardRing(shardRingDepth),
			wake:    make(chan struct{}, 1),
			stop:    make(chan struct{}),
			done:    make(chan struct{}),
			queries: make(map[string]*shardQuery),
			byInput: make(map[string][]*shardQuery),
			cb:      stream.NewColBatch(),
		}
		e.shards = append(e.shards, sh)
		go sh.run()
	}
	go e.flusher()
	return e
}

// EngineName implements Processor.
func (e *ShardEngine) EngineName() string { return e.name }

// NumShards returns the number of per-core shards.
func (e *ShardEngine) NumShards() int { return len(e.shards) }

// shardFor hash-partitions a query ID onto a shard (FNV-1a, inlined so
// assignment allocates nothing).
func (e *ShardEngine) shardFor(id string) *shard {
	h := uint64(14695981039346656037)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return e.shards[h%uint64(len(e.shards))]
}

// Register implements Processor: the query compiles on the caller, then
// installs into its owning shard via a control item through the ring,
// so installation serializes with tuple processing.
func (e *ShardEngine) Register(spec QuerySpec, emit func(stream.Tuple)) error {
	e.ctlMu.Lock()
	defer e.ctlMu.Unlock()
	sq := &shardQuery{}
	q, err := Compile(spec, e.catalog, func(t stream.Tuple) {
		sq.results.Inc()
		if emit != nil {
			emit(t)
		}
	})
	if err != nil {
		return err
	}
	sq.q = q
	if spec.Join == nil {
		vec, verr := compileVecPipeline(spec, e.catalog, q)
		if verr != nil {
			return verr
		}
		sq.vec = vec
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return fmt.Errorf("engine %s: closed", e.name)
	}
	if _, dup := e.queries[spec.ID]; dup {
		e.mu.Unlock()
		return fmt.Errorf("engine %s: query %s already registered", e.name, spec.ID)
	}
	sq.sh = e.shardFor(spec.ID)
	e.queries[spec.ID] = sq
	e.rebuildRoutes()
	e.mu.Unlock()
	// Install on the owning shard. Tuples dispatched between publish
	// and install are skipped by the shard — indistinguishable from
	// arriving just before registration.
	c := &shardCtl{op: shardCtlInstall, sq: sq}
	sq.sh.enqueueCtl(c)
	<-c.done
	return c.err
}

// Unregister implements Processor. The uninstall control item trails
// every previously enqueued data item through the ring, so — like
// Engine — tuples ingested before Unregister are still processed.
func (e *ShardEngine) Unregister(id string) (QuerySpec, error) {
	e.ctlMu.Lock()
	defer e.ctlMu.Unlock()
	e.mu.RLock()
	sq, ok := e.queries[id]
	e.mu.RUnlock()
	if !ok {
		return QuerySpec{}, fmt.Errorf("engine %s: unknown query %s", e.name, id)
	}
	// Flush while the query is still routed, so tuples accumulated
	// before this call reach the ring ahead of the uninstall item and
	// are still processed (the contract documented above). ctlMu keeps
	// a concurrent Register/Unregister from racing the removal below.
	e.flushAll()
	e.mu.Lock()
	delete(e.queries, id)
	e.rebuildRoutes()
	e.mu.Unlock()
	c := &shardCtl{op: shardCtlUninstall, id: id}
	sq.sh.enqueueCtl(c)
	<-c.done
	return sq.q.Spec(), nil
}

// rebuildRoutes recomputes the producer-side stream routing snapshot.
// Caller holds e.mu. Route slices are immutable once published, so
// producers may read them after dropping the lock.
func (e *ShardEngine) rebuildRoutes() {
	routes := make(map[string][]streamRoute)
	for _, sq := range e.queries {
		for _, s := range sq.q.Spec().Streams() {
			list := routes[s]
			found := false
			for i := range list {
				if list[i].sh == sq.sh {
					list[i].qs = append(list[i].qs, sq)
					found = true
					break
				}
			}
			if !found {
				list = append(list, streamRoute{sh: sq.sh, qs: []*shardQuery{sq}})
			}
			routes[s] = list
		}
	}
	e.routes = routes
}

// Ingest implements Processor: the tuple joins its stream's
// accumulator and ships when the batch fills (or the flusher fires).
// It never blocks; a full shard ring drops the whole batch for that
// shard's queries and counts every tuple.
func (e *ShardEngine) Ingest(t stream.Tuple) {
	e.accumulate(accKey{stream: t.Stream}, t)
}

func (e *ShardEngine) accumulate(key accKey, t stream.Tuple) {
	e.accMu.Lock()
	a := e.acc[key]
	if a == nil {
		a = &accum{buf: make(stream.Batch, 0, shardAccBatch)}
		e.acc[key] = a
	}
	e.accMu.Unlock()
	a.mu.Lock()
	if len(a.buf) == 0 {
		a.arrived = time.Now()
	}
	a.buf = append(a.buf, t)
	e.accPending.Add(1)
	if len(a.buf) >= shardAccBatch {
		flush, arrived := a.buf, a.arrived
		a.buf = make(stream.Batch, 0, shardAccBatch)
		e.dispatch(key, flush, arrived)
		e.accPending.Add(-int64(len(flush)))
	}
	a.mu.Unlock()
}

// dispatch ships one single-stream batch: to the addressed query's
// shard when key.frag is set, otherwise to every shard hosting a query
// of the stream.
func (e *ShardEngine) dispatch(key accKey, b stream.Batch, arrived time.Time) {
	if key.frag != "" {
		e.mu.RLock()
		sq := e.queries[key.frag]
		e.mu.RUnlock()
		if sq == nil {
			return
		}
		if !sq.sh.enqueueData(ringItem{b: b, frag: key.frag, arrived: arrived}) {
			sq.dropped.Add(int64(len(b)))
		}
		return
	}
	e.mu.RLock()
	rts := e.routes[key.stream]
	e.mu.RUnlock()
	for i := range rts {
		rt := &rts[i]
		if !rt.sh.enqueueData(ringItem{b: b, arrived: arrived}) {
			for _, sq := range rt.qs {
				sq.dropped.Add(int64(len(b)))
			}
		}
	}
}

// IngestBatch implements BatchIngester. The handed-over tuples are
// copied once into an engine-owned slice (the engine retains batches
// asynchronously, and the caller may reuse its slice), then contiguous
// same-stream runs dispatch with one routing lookup each.
func (e *ShardEngine) IngestBatch(b stream.Batch) {
	if len(b) == 0 {
		return
	}
	if e.accPending.Load() > 0 {
		// Pending accumulated singles must not be overtaken by this
		// batch, or per-stream order would invert.
		e.flushAll()
	}
	own := make(stream.Batch, len(b))
	copy(own, b)
	arrived := time.Now()
	start := 0
	for i := 1; i <= len(own); i++ {
		if i == len(own) || own[i].Stream != own[start].Stream {
			e.dispatch(accKey{stream: own[start].Stream}, own[start:i], arrived)
			start = i
		}
	}
}

// FeedQuery implements DirectFeeder: addressed single tuples accumulate
// per (query, stream) and ship to the owning shard.
func (e *ShardEngine) FeedQuery(id string, t stream.Tuple) error {
	e.mu.RLock()
	_, ok := e.queries[id]
	e.mu.RUnlock()
	if !ok {
		return fmt.Errorf("engine %s: unknown query %s", e.name, id)
	}
	e.accumulate(accKey{frag: id, stream: t.Stream}, t)
	return nil
}

// FeedQueryBatch implements BatchFeeder: one lookup, one copy, one
// enqueue per same-stream run.
func (e *ShardEngine) FeedQueryBatch(id string, b stream.Batch) error {
	if len(b) == 0 {
		return nil
	}
	e.mu.RLock()
	sq, ok := e.queries[id]
	e.mu.RUnlock()
	if !ok {
		return fmt.Errorf("engine %s: unknown query %s", e.name, id)
	}
	if e.accPending.Load() > 0 {
		e.flushAll()
	}
	own := make(stream.Batch, len(b))
	copy(own, b)
	arrived := time.Now()
	start := 0
	for i := 1; i <= len(own); i++ {
		if i == len(own) || own[i].Stream != own[start].Stream {
			if !sq.sh.enqueueData(ringItem{b: own[start:i], frag: id, arrived: arrived}) {
				sq.dropped.Add(int64(i - start))
			}
			start = i
		}
	}
	return nil
}

// flusher force-flushes accumulators so trickling streams never stall
// behind the batch threshold.
func (e *ShardEngine) flusher() {
	defer close(e.flushDone)
	tick := time.NewTicker(shardFlushEvery)
	defer tick.Stop()
	for {
		select {
		case <-e.stopFlush:
			return
		case <-tick.C:
			e.flushAll()
		}
	}
}

// flushAll ships every non-empty accumulator. Each key's swap+dispatch
// runs under that key's accum.mu, so a flush can never reorder against
// a concurrent fill-triggered dispatch of the same key.
func (e *ShardEngine) flushAll() {
	type keyed struct {
		key accKey
		a   *accum
	}
	e.accMu.Lock()
	accs := make([]keyed, 0, len(e.acc))
	for key, a := range e.acc {
		accs = append(accs, keyed{key, a})
	}
	e.accMu.Unlock()
	for _, ka := range accs {
		ka.a.mu.Lock()
		if len(ka.a.buf) > 0 {
			flush, arrived := ka.a.buf, ka.a.arrived
			ka.a.buf = make(stream.Batch, 0, shardAccBatch)
			e.dispatch(ka.key, flush, arrived)
			e.accPending.Add(-int64(len(flush)))
		}
		ka.a.mu.Unlock()
	}
}

// QueryIDs implements Processor.
func (e *ShardEngine) QueryIDs() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.queries))
	for id := range e.queries {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Load implements Processor: estimated query loads plus ring backlog
// pressure.
func (e *ShardEngine) Load() float64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	load := 0.0
	for _, sq := range e.queries {
		load += sq.q.Spec().EstimatedLoad()
	}
	for _, sh := range e.shards {
		load += float64(sh.pending.Load()) / shardRingDepth
	}
	return load
}

// Metrics implements MetricsReporter.
func (e *ShardEngine) Metrics(id string) (QueryMetrics, bool) {
	e.mu.RLock()
	sq, ok := e.queries[id]
	e.mu.RUnlock()
	if !ok {
		return QueryMetrics{}, false
	}
	m := QueryMetrics{
		ID:         id,
		Results:    sq.results.Value(),
		Delay:      sq.delay.Snapshot(),
		Processing: sq.proc.Snapshot(),
	}
	if m.Processing.Mean > 0 {
		m.PR = m.Delay.Mean / m.Processing.Mean
	}
	return m, true
}

// AllMetrics implements MetricsReporter.
func (e *ShardEngine) AllMetrics() []QueryMetrics {
	out := make([]QueryMetrics, 0, 8)
	for _, id := range e.QueryIDs() {
		if m, ok := e.Metrics(id); ok {
			out = append(out, m)
		}
	}
	return out
}

// PRMax implements MetricsReporter.
func (e *ShardEngine) PRMax() float64 {
	max := 0.0
	for _, m := range e.AllMetrics() {
		if m.PR > max {
			max = m.PR
		}
	}
	return max
}

// Dropped implements DropReporter: tuples dropped on full shard rings,
// attributed per query.
func (e *ShardEngine) Dropped(id string) int64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if sq, ok := e.queries[id]; ok {
		return sq.dropped.Value()
	}
	return 0
}

// Drain blocks until every accumulator and shard ring is empty and
// processed, or the timeout elapses.
func (e *ShardEngine) Drain(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		e.flushAll()
		pending := e.accPending.Load()
		for _, sh := range e.shards {
			pending += sh.pending.Load()
		}
		if pending == 0 {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// Query exposes the compiled query for adaptation hooks, with the same
// caveat as Engine.Query: the caller must not race the owning shard.
func (e *ShardEngine) Query(id string) (*Query, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	sq, ok := e.queries[id]
	if !ok {
		return nil, false
	}
	return sq.q, true
}

// AdaptOrdering implements Adapter: each shard re-evaluates its
// queries' filter ordering on its own goroutine (serialized with
// feeds) and resyncs the vectorized pipelines to the new chain order.
func (e *ShardEngine) AdaptOrdering(minGain float64) int {
	minGain = normalizeGain(minGain)
	// Check closed under the lock, but enqueue without it: emit callbacks
	// on shard goroutines re-enter the engine under mu.RLock, so spinning
	// on a full ring while holding mu (with a writer queued) would
	// deadlock the whole engine. e.shards is immutable after NewShard.
	e.mu.RLock()
	closed := e.closed
	e.mu.RUnlock()
	if closed {
		return 0
	}
	ctls := make([]*shardCtl, 0, len(e.shards))
	for _, sh := range e.shards {
		c := &shardCtl{op: shardCtlAdapt, minGain: minGain}
		sh.enqueueCtl(c)
		ctls = append(ctls, c)
	}
	n := 0
	for _, c := range ctls {
		<-c.done
		n += c.changed
	}
	return n
}

// SnapshotQueryState implements StateSnapshotter via a control item on
// the owning shard, so state access serializes with tuple processing.
func (e *ShardEngine) SnapshotQueryState(id string) (QueryState, error) {
	sq, err := e.lookup(id)
	if err != nil {
		return nil, err
	}
	e.flushAll()
	c := &shardCtl{op: shardCtlSnapshot, id: id}
	sq.sh.enqueueCtl(c)
	<-c.done
	return c.snap, c.err
}

// RestoreQueryState implements StateSnapshotter.
func (e *ShardEngine) RestoreQueryState(id string, st QueryState) error {
	sq, err := e.lookup(id)
	if err != nil {
		return err
	}
	c := &shardCtl{op: shardCtlRestore, id: id, restore: st}
	sq.sh.enqueueCtl(c)
	<-c.done
	return c.err
}

// QueryStateBytes implements StateSnapshotter.
func (e *ShardEngine) QueryStateBytes(id string) (int, bool) {
	sq, err := e.lookup(id)
	if err != nil {
		return 0, false
	}
	c := &shardCtl{op: shardCtlBytes, id: id}
	sq.sh.enqueueCtl(c)
	<-c.done
	return c.bytes, true
}

func (e *ShardEngine) lookup(id string) (*shardQuery, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return nil, fmt.Errorf("engine %s: closed", e.name)
	}
	sq, ok := e.queries[id]
	if !ok {
		return nil, fmt.Errorf("engine %s: unknown query %s", e.name, id)
	}
	return sq, nil
}

// Close implements Processor: flush, drain every shard, stop.
func (e *ShardEngine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()
	close(e.stopFlush)
	<-e.flushDone
	e.flushAll()
	for _, sh := range e.shards {
		close(sh.stop)
		select {
		case sh.wake <- struct{}{}:
		default:
		}
	}
	for _, sh := range e.shards {
		<-sh.done
	}
	e.mu.Lock()
	e.queries = make(map[string]*shardQuery)
	e.routes = make(map[string][]streamRoute)
	e.mu.Unlock()
}

// ---- shard side ----

// shardCtl ops.
const (
	shardCtlInstall = iota + 1
	shardCtlUninstall
	shardCtlSnapshot
	shardCtlRestore
	shardCtlBytes
	shardCtlAdapt
)

// shardCtl is a control item executed on the shard goroutine, FIFO
// with data items (it travels through the same ring).
type shardCtl struct {
	op      int
	sq      *shardQuery // install
	id      string      // uninstall/snapshot/restore/bytes
	restore QueryState
	snap    QueryState
	bytes   int
	minGain float64
	changed int
	err     error
	done    chan struct{}
	// enq stamps the control item's ring entry so processCtl can measure
	// its queueing latency (control items are rare; a clock read here is
	// off the tuple path).
	enq time.Time
}

// enqueueData publishes a data item; false means the ring was full and
// the caller must count the drop (per query — the shard- and
// engine-level totals are counted here, where the batch size is known).
func (sh *shard) enqueueData(item ringItem) bool {
	n := int64(len(item.b))
	// One occupancy sample per enqueue = batch granularity: two atomic
	// loads and one histogram bump, no clock read (lint-obslog holds the
	// ring publish path to the same clock-free rule as the kernels).
	sh.stats.observeOcc(sh.ring.occupancy())
	sh.stats.offered.Add(n)
	// Count before publishing: if the consumer could dequeue and
	// decrement before our increment, pending would dip negative and
	// Drain could sum a spurious zero across shards while work remains.
	sh.pending.Add(1)
	if !sh.ring.enqueue(item) {
		sh.pending.Add(-1)
		sh.stats.dropped.Add(n)
		sh.eng.droppedTotal.Add(n)
		return false
	}
	sh.wakeup()
	return true
}

// enqueueCtl publishes a control item with a blocking (spinning)
// enqueue — control is never dropped. The consumer keeps draining, so
// the spin terminates unless the shard has already stopped.
func (sh *shard) enqueueCtl(c *shardCtl) {
	c.done = make(chan struct{})
	c.enq = time.Now()
	item := ringItem{ctl: c}
	sh.pending.Add(1) // count before publish; see enqueueData
	for !sh.ring.enqueue(item) {
		select {
		case <-sh.done:
			sh.pending.Add(-1)
			c.err = fmt.Errorf("engine %s: shard %d stopped", sh.eng.name, sh.idx)
			close(c.done)
			return
		default:
			runtime.Gosched()
		}
	}
	sh.wakeup()
}

func (sh *shard) wakeup() {
	if sh.sleeping.Load() {
		select {
		case sh.wake <- struct{}{}:
		default:
		}
	}
}

// run is the shard goroutine: drain the ring, spin briefly when empty,
// then park until a producer wakes it. On stop it drains what remains
// (Engine parity: tuples enqueued before Close are processed).
func (sh *shard) run() {
	defer close(sh.done)
	idle := 0
	for {
		item, ok := sh.ring.dequeue()
		if ok {
			sh.process(item)
			sh.pending.Add(-1)
			idle = 0
			continue
		}
		select {
		case <-sh.stop:
			for {
				item, ok := sh.ring.dequeue()
				if !ok {
					return
				}
				sh.process(item)
				sh.pending.Add(-1)
			}
		default:
		}
		if idle < shardSpin {
			idle++
			runtime.Gosched()
			continue
		}
		sh.sleeping.Store(true)
		if !sh.ring.empty() {
			sh.sleeping.Store(false)
			idle = 0
			continue
		}
		select {
		case <-sh.wake:
		case <-sh.stop:
		}
		sh.sleeping.Store(false)
		idle = 0
	}
}

// process executes one ring item on the shard goroutine.
func (sh *shard) process(item ringItem) {
	if item.ctl != nil {
		sh.processCtl(item.ctl)
		return
	}
	if len(item.b) == 0 {
		return
	}
	if item.frag != "" {
		if sq, ok := sh.queries[item.frag]; ok {
			sh.feedBatch(sq, item, true)
		}
		return
	}
	targets := sh.byInput[item.b[0].Stream]
	if len(targets) == 0 {
		return
	}
	sh.cb.Reset(item.b)
	for _, sq := range targets {
		sh.feedBatch(sq, item, false)
	}
}

// feedBatch runs one same-stream batch through one query: the
// vectorized pipeline when compiled, per-tuple Feed otherwise (joins).
// Exactly two timestamps are taken per (query, batch) — the rule the
// kernels rely on — and the per-tuple delay/processing histograms are
// updated with one weighted observation each.
func (sh *shard) feedBatch(sq *shardQuery, item ringItem, fresh bool) {
	b := item.b
	n := int64(len(b))
	st := &sh.stats
	start := time.Now()
	if sq.vec != nil && b[0].Stream == sq.q.spec.Source {
		cb := sh.cb
		if fresh {
			cb.Reset(b)
		} else {
			cb.ResetSel()
		}
		sq.vec.run(cb, sq.q)
		st.kernelTuples.Add(n)
		st.kernelIn.Add(n)
		st.kernelOut.Add(int64(cb.Len()))
	} else {
		streamName := b[0].Stream
		for i := range b {
			sq.q.Feed(streamName, b[i])
		}
		st.interpTuples.Add(n)
	}
	st.batches.Add(1)
	st.tuples.Add(n)
	end := time.Now()
	el := end.Sub(start).Seconds()
	sq.proc.ObserveN(el/float64(n), n)
	sq.delay.ObserveN(end.Sub(item.arrived).Seconds(), n)
}

// processCtl executes one control item.
func (sh *shard) processCtl(c *shardCtl) {
	defer close(c.done)
	sh.stats.ctlItems.Add(1)
	if !c.enq.IsZero() {
		sh.stats.ctlWaitNs.Add(time.Since(c.enq).Nanoseconds())
	}
	switch c.op {
	case shardCtlInstall:
		sq := c.sq
		id := sq.q.ID()
		sh.queries[id] = sq
		sh.stats.queries.Add(1)
		for _, s := range sq.q.Spec().Streams() {
			sh.byInput[s] = append(sh.byInput[s], sq)
		}
	case shardCtlUninstall:
		sq, ok := sh.queries[c.id]
		if !ok {
			c.err = fmt.Errorf("engine %s: unknown query %s", sh.eng.name, c.id)
			return
		}
		delete(sh.queries, c.id)
		sh.stats.queries.Add(-1)
		for _, s := range sq.q.Spec().Streams() {
			list := sh.byInput[s]
			for i := range list {
				if list[i] == sq {
					sh.byInput[s] = append(list[:i], list[i+1:]...)
					break
				}
			}
			if len(sh.byInput[s]) == 0 {
				delete(sh.byInput, s)
			}
		}
	case shardCtlSnapshot:
		if sq, ok := sh.queries[c.id]; ok {
			c.snap = snapshotQuery(sq.q)
		} else {
			c.err = fmt.Errorf("engine %s: unknown query %s", sh.eng.name, c.id)
		}
	case shardCtlRestore:
		if sq, ok := sh.queries[c.id]; ok {
			c.err = restoreQuery(sq.q, c.restore)
		} else {
			c.err = fmt.Errorf("engine %s: unknown query %s", sh.eng.name, c.id)
		}
	case shardCtlBytes:
		if sq, ok := sh.queries[c.id]; ok {
			c.bytes = queryStateBytes(sq.q)
		} else {
			c.err = fmt.Errorf("engine %s: unknown query %s", sh.eng.name, c.id)
		}
	case shardCtlAdapt:
		for _, sq := range sh.queries {
			if MaybeReorder(sq.q, c.minGain) {
				if sq.vec != nil {
					sq.vec.resync(sq.q)
				}
				c.changed++
			}
		}
	}
}

var (
	_ Processor        = (*ShardEngine)(nil)
	_ DirectFeeder     = (*ShardEngine)(nil)
	_ BatchIngester    = (*ShardEngine)(nil)
	_ BatchFeeder      = (*ShardEngine)(nil)
	_ MetricsReporter  = (*ShardEngine)(nil)
	_ StateSnapshotter = (*ShardEngine)(nil)
	_ Adapter          = (*ShardEngine)(nil)
	_ DropReporter     = (*ShardEngine)(nil)
	_ DropReporter     = (*Engine)(nil)
	_ DropReporter     = (*SchedEngine)(nil)
)
