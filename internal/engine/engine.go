package engine

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sspd/internal/metrics"
	"sspd/internal/stream"
)

// Processor is the interface every per-entity processing engine
// implements. The inter-entity layer depends only on this interface plus
// QuerySpec — the embodiment of the paper's loose coupling: an entity can
// swap or upgrade its engine without any other entity noticing.
type Processor interface {
	// EngineName identifies the engine implementation.
	EngineName() string
	// Register compiles and starts a query; emit receives its results.
	Register(spec QuerySpec, emit func(stream.Tuple)) error
	// Unregister stops and removes a query, returning its spec so the
	// caller can re-register it elsewhere (query-level migration).
	Unregister(id string) (QuerySpec, error)
	// Ingest delivers one tuple to every registered query that
	// consumes its stream.
	Ingest(t stream.Tuple)
	// QueryIDs lists the registered queries.
	QueryIDs() []string
	// Load reports the engine's current abstract load estimate.
	Load() float64
	// Close stops all queries and releases resources.
	Close()
}

// DirectFeeder is the optional capability of delivering a tuple to one
// specific query. Engines that support it can host chained query
// fragments (the intra-entity placement scheme needs addressed
// delivery); both Engine and MiniEngine implement it.
type DirectFeeder interface {
	FeedQuery(id string, t stream.Tuple) error
}

// BatchIngester is the optional capability of ingesting a whole batch
// with one routing/synchronization round instead of one per tuple. The
// batch's tuples are owned by the engine once handed over; the slice
// itself must not be retained. Entities type-assert on it so the relay's
// batch delivery stays batched all the way into the engine.
type BatchIngester interface {
	IngestBatch(b stream.Batch)
}

// BatchFeeder is the batch counterpart of DirectFeeder: one query
// lookup for the whole batch. Same ownership rules as BatchIngester.
type BatchFeeder interface {
	FeedQueryBatch(id string, b stream.Batch) error
}

// MetricsReporter is the optional capability of reporting per-query
// performance. Engine and SchedEngine implement it; MiniEngine (no
// latency instrumentation) does not. The federation's metrics collector
// type-asserts on it at scrape time.
type MetricsReporter interface {
	// Metrics returns one query's measured performance; ok is false for
	// unknown IDs.
	Metrics(id string) (QueryMetrics, bool)
	// AllMetrics returns the metrics of every registered query.
	AllMetrics() []QueryMetrics
	// PRMax returns the largest Performance Ratio across registered
	// queries (0 when none has measured yet) — the engine's contribution
	// to the federation-wide PR_max trigger of Section 4.1.
	PRMax() float64
}

// DropReporter is the optional capability of reporting per-query
// dropped-tuple counts (full input queue or shard ring). The stats
// plane type-asserts on it so drops become attributable per query in
// /cluster/metrics.
type DropReporter interface {
	// Dropped returns the number of tuples dropped for the query so
	// far; 0 for unknown IDs.
	Dropped(id string) int64
}

// QueryMetrics summarizes one query's measured performance inside an
// Engine: d (total delay), p (processing time), and the paper's
// Performance Ratio PR = d/p.
type QueryMetrics struct {
	ID         string
	Results    int64
	Delay      metrics.Snapshot
	Processing metrics.Snapshot
	// PR is mean delay over mean processing time (Section 4.1).
	PR float64
}

// Engine is the full asynchronous engine: each query runs on its own
// goroutine behind a buffered input queue, so queue wait time is a real
// component of result delay, exactly as in the paper's delay model
// d = processing + waiting + transfer.
type Engine struct {
	name    string
	catalog *stream.Catalog

	mu      sync.RWMutex
	queries map[string]*runningQuery
	byInput map[string][]*runningQuery
	closed  bool

	// droppedTotal is the engine-lifetime dropped-tuple count across all
	// queries — unlike the per-query counters it survives Unregister, so
	// entity-level drop attribution never loses history.
	droppedTotal metrics.Counter
	// adaptApplied counts filter reorders actually applied by query
	// goroutines (AdaptOrdering control items). Engine-lifetime, so it
	// surfaces async applies even for since-unregistered queries.
	adaptApplied metrics.Counter
}

type runningQuery struct {
	q       *Query
	in      chan feedItem
	done    chan struct{}
	results metrics.Counter
	delay   metrics.Histogram
	proc    metrics.Histogram
	dropped metrics.Counter
	// drops points at the owning engine's lifetime counter (counters must
	// not be copied, so the backref is a pointer set at Register).
	drops *metrics.Counter
	// adapts points at the owning engine's lifetime applied-reorder
	// counter (same backref pattern as drops).
	adapts *metrics.Counter
	// pending counts items from enqueue until their processing
	// returns, so Drain observes true idleness (an empty queue with a
	// handler mid-item is not idle).
	pending atomic.Int64
}

// enqueue submits an item, keeping the pending count accurate; a full
// queue drops and counts.
func (rq *runningQuery) enqueue(item feedItem) bool {
	rq.pending.Add(1)
	select {
	case rq.in <- item:
		return true
	default:
		rq.pending.Add(-1)
		rq.dropped.Inc()
		if rq.drops != nil {
			rq.drops.Inc()
		}
		return false
	}
}

type feedItem struct {
	streamName string
	t          stream.Tuple
	arrived    time.Time
	// adaptGain > 0 marks a control item: instead of feeding a tuple,
	// the query goroutine re-evaluates its operator ordering.
	adaptGain float64
	// adaptDone, when set on an adaptation control item, receives
	// whether the reorder was applied (buffered so the query goroutine
	// never blocks on it).
	adaptDone chan bool
	// ctl, when set, marks a synchronous state control item
	// (snapshot/restore/size); see state.go.
	ctl *stateCtl
}

// queueDepth bounds each query's input queue. Overflow drops tuples (and
// counts them) rather than blocking the ingest path — head-of-line
// blocking across queries would corrupt the delay measurements the
// placement scheme depends on.
const queueDepth = 1024

// New returns an Engine reading schemas from catalog.
func New(name string, catalog *stream.Catalog) *Engine {
	return &Engine{
		name:    name,
		catalog: catalog,
		queries: make(map[string]*runningQuery),
		byInput: make(map[string][]*runningQuery),
	}
}

// EngineName implements Processor.
func (e *Engine) EngineName() string { return e.name }

// Register implements Processor.
func (e *Engine) Register(spec QuerySpec, emit func(stream.Tuple)) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return fmt.Errorf("engine %s: closed", e.name)
	}
	if _, dup := e.queries[spec.ID]; dup {
		return fmt.Errorf("engine %s: query %s already registered", e.name, spec.ID)
	}
	rq := &runningQuery{
		in:     make(chan feedItem, queueDepth),
		done:   make(chan struct{}),
		drops:  &e.droppedTotal,
		adapts: &e.adaptApplied,
	}
	q, err := Compile(spec, e.catalog, func(t stream.Tuple) {
		rq.results.Inc()
		if emit != nil {
			emit(t)
		}
	})
	if err != nil {
		return err
	}
	rq.q = q
	e.queries[spec.ID] = rq
	for _, s := range spec.Streams() {
		e.byInput[s] = append(e.byInput[s], rq)
	}
	go rq.run()
	return nil
}

func (rq *runningQuery) run() {
	defer close(rq.done)
	for item := range rq.in {
		if item.ctl != nil {
			c := item.ctl
			switch c.op {
			case ctlSnapshot:
				c.snap = snapshotQuery(rq.q)
			case ctlRestore:
				c.err = restoreQuery(rq.q, c.restore)
			case ctlBytes:
				c.bytes = queryStateBytes(rq.q)
			}
			close(c.done)
			rq.pending.Add(-1)
			continue
		}
		if item.adaptGain > 0 {
			changed := MaybeReorder(rq.q, item.adaptGain)
			if changed && rq.adapts != nil {
				rq.adapts.Inc()
			}
			if item.adaptDone != nil {
				item.adaptDone <- changed
			}
			rq.pending.Add(-1)
			continue
		}
		start := time.Now()
		rq.q.Feed(item.streamName, item.t)
		end := time.Now()
		rq.proc.Observe(end.Sub(start).Seconds())
		rq.delay.Observe(end.Sub(item.arrived).Seconds())
		rq.pending.Add(-1)
	}
}

// Unregister implements Processor.
func (e *Engine) Unregister(id string) (QuerySpec, error) {
	e.mu.Lock()
	rq, ok := e.queries[id]
	if !ok {
		e.mu.Unlock()
		return QuerySpec{}, fmt.Errorf("engine %s: unknown query %s", e.name, id)
	}
	delete(e.queries, id)
	for _, s := range rq.q.Spec().Streams() {
		e.byInput[s] = removeQuery(e.byInput[s], rq)
		if len(e.byInput[s]) == 0 {
			delete(e.byInput, s)
		}
	}
	e.mu.Unlock()
	close(rq.in)
	<-rq.done
	return rq.q.Spec(), nil
}

func removeQuery(list []*runningQuery, rq *runningQuery) []*runningQuery {
	for i := range list {
		if list[i] == rq {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}

// Ingest implements Processor. It never blocks: a full query queue drops
// the tuple for that query and counts the drop.
func (e *Engine) Ingest(t stream.Tuple) {
	e.mu.RLock()
	targets := e.byInput[t.Stream]
	if len(targets) == 0 {
		e.mu.RUnlock()
		return
	}
	// Copy under lock; sends happen outside it.
	snapshot := make([]*runningQuery, len(targets))
	copy(snapshot, targets)
	e.mu.RUnlock()

	item := feedItem{streamName: t.Stream, t: t, arrived: time.Now()}
	for _, rq := range snapshot {
		rq.enqueue(item)
	}
}

// IngestBatch implements BatchIngester: one routing lookup and one
// timestamp per (stream, batch) instead of per tuple. Mixed-stream
// batches split into contiguous same-stream runs, so the RWMutex read
// lock is taken once per run, never per tuple.
func (e *Engine) IngestBatch(b stream.Batch) {
	if len(b) == 0 {
		return
	}
	now := time.Now()
	start := 0
	for i := 1; i <= len(b); i++ {
		if i < len(b) && b[i].Stream == b[start].Stream {
			continue
		}
		e.ingestRun(b[start:i], now)
		start = i
	}
}

// ingestRun enqueues one same-stream run with a single routing lookup.
func (e *Engine) ingestRun(run stream.Batch, now time.Time) {
	e.mu.RLock()
	targets := e.byInput[run[0].Stream]
	if len(targets) == 0 {
		e.mu.RUnlock()
		return
	}
	snapshot := make([]*runningQuery, len(targets))
	copy(snapshot, targets)
	e.mu.RUnlock()

	for i := range run {
		item := feedItem{streamName: run[i].Stream, t: run[i], arrived: now}
		for _, rq := range snapshot {
			rq.enqueue(item)
		}
	}
}

// FeedQueryBatch implements BatchFeeder: one query lookup for the whole
// batch.
func (e *Engine) FeedQueryBatch(id string, b stream.Batch) error {
	if len(b) == 0 {
		return nil
	}
	e.mu.RLock()
	rq, ok := e.queries[id]
	e.mu.RUnlock()
	if !ok {
		return fmt.Errorf("engine %s: unknown query %s", e.name, id)
	}
	now := time.Now()
	for i := range b {
		rq.enqueue(feedItem{streamName: b[i].Stream, t: b[i], arrived: now})
	}
	return nil
}

// FeedQuery delivers a tuple to exactly one registered query, bypassing
// stream-based routing. The intra-entity layer uses it to drive a query
// fragment with its upstream fragment's output (which keeps the original
// stream name). A full queue drops the tuple and counts it.
func (e *Engine) FeedQuery(id string, t stream.Tuple) error {
	e.mu.RLock()
	rq, ok := e.queries[id]
	e.mu.RUnlock()
	if !ok {
		return fmt.Errorf("engine %s: unknown query %s", e.name, id)
	}
	rq.enqueue(feedItem{streamName: t.Stream, t: t, arrived: time.Now()})
	return nil
}

// QueryIDs implements Processor.
func (e *Engine) QueryIDs() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.queries))
	for id := range e.queries {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Load implements Processor: the sum of registered queries' estimated
// loads plus current queue backlog pressure.
func (e *Engine) Load() float64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	load := 0.0
	for _, rq := range e.queries {
		load += rq.q.Spec().EstimatedLoad()
		load += float64(len(rq.in)) / queueDepth
	}
	return load
}

// Metrics returns the measured performance of one query. ok is false for
// unknown IDs.
func (e *Engine) Metrics(id string) (QueryMetrics, bool) {
	e.mu.RLock()
	rq, ok := e.queries[id]
	e.mu.RUnlock()
	if !ok {
		return QueryMetrics{}, false
	}
	m := QueryMetrics{
		ID:         id,
		Results:    rq.results.Value(),
		Delay:      rq.delay.Snapshot(),
		Processing: rq.proc.Snapshot(),
	}
	if m.Processing.Mean > 0 {
		m.PR = m.Delay.Mean / m.Processing.Mean
	}
	return m, true
}

// AllMetrics returns the measured performance of every registered query.
func (e *Engine) AllMetrics() []QueryMetrics {
	out := make([]QueryMetrics, 0, len(e.QueryIDs()))
	for _, id := range e.QueryIDs() {
		if m, ok := e.Metrics(id); ok {
			out = append(out, m)
		}
	}
	return out
}

// PRMax returns the largest PR across registered queries (0 when no
// query has measured processing time yet).
func (e *Engine) PRMax() float64 {
	max := 0.0
	for _, m := range e.AllMetrics() {
		if m.PR > max {
			max = m.PR
		}
	}
	return max
}

// TotalDropped implements TotalDropReporter: the engine-lifetime dropped
// total across all queries, including since-unregistered ones.
func (e *Engine) TotalDropped() int64 { return e.droppedTotal.Value() }

// AdaptationsApplied returns the engine-lifetime count of filter
// reorders applied by query goroutines (AdaptOrdering control items),
// including those of since-unregistered queries.
func (e *Engine) AdaptationsApplied() int64 { return e.adaptApplied.Value() }

// Dropped reports the number of tuples dropped by one query's full queue.
func (e *Engine) Dropped(id string) int64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if rq, ok := e.queries[id]; ok {
		return rq.dropped.Value()
	}
	return 0
}

// Drain blocks until every query's input queue is empty and processed,
// or the timeout elapses. Tests and benchmarks use it to observe
// steady-state results.
func (e *Engine) Drain(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		e.mu.RLock()
		pending := int64(0)
		for _, rq := range e.queries {
			pending += rq.pending.Load()
		}
		e.mu.RUnlock()
		if pending == 0 {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
}

// Query exposes the compiled query for adaptation hooks (the Adaptation
// Module re-orders filters through it). The caller must not invoke Feed
// concurrently with the engine; use Pause-style coordination in tests.
func (e *Engine) Query(id string) (*Query, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	rq, ok := e.queries[id]
	if !ok {
		return nil, false
	}
	return rq.q, true
}

// Close implements Processor.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	qs := make([]*runningQuery, 0, len(e.queries))
	for _, rq := range e.queries {
		qs = append(qs, rq)
	}
	e.queries = make(map[string]*runningQuery)
	e.byInput = make(map[string][]*runningQuery)
	e.mu.Unlock()
	for _, rq := range qs {
		close(rq.in)
		<-rq.done
	}
}
