// Engine introspection (DESIGN.md §14): per-shard telemetry snapshots
// for the shard-per-core engine. Every counter here is an atomic updated
// at batch granularity — once per ring enqueue or once per (query,
// batch) feed — so the hot loop stays 0-alloc and the instrumentation
// rides inside the existing <1%-overhead discipline. Snapshots are
// read-side: EngineStats walks the atomics without stopping shards, so
// a snapshot is a consistent-enough racy view, never a barrier.
package engine

import (
	"math/bits"
	"sync/atomic"
)

// OccBuckets is the fixed power-of-two resolution of the ring-occupancy
// histogram: bucket 0 counts enqueues that found the ring empty, bucket
// i counts occupancies in [2^(i-1), 2^i). 16 buckets cover any ring up
// to 32768 slots.
const OccBuckets = 16

// shardStats is one shard's telemetry: atomics bumped by producers
// (occupancy, offered, dropped) and by the shard goroutine (batches,
// tuples, kernel split, control latency). Padding is unnecessary — every
// update is amortized over a whole batch.
type shardStats struct {
	queries      atomic.Int64
	offered      atomic.Int64 // tuples attempted onto the ring
	dropped      atomic.Int64 // tuples refused by a full ring
	highWater    atomic.Int64 // max occupancy observed at enqueue
	occ          [OccBuckets]atomic.Int64
	batches      atomic.Int64 // (query, batch) feeds executed
	tuples       atomic.Int64
	kernelTuples atomic.Int64 // tuples through the vectorized pipeline
	interpTuples atomic.Int64 // tuples through per-tuple Feed (joins)
	kernelIn     atomic.Int64 // rows entering the filter kernels
	kernelOut    atomic.Int64 // rows surviving into the stateful tail
	ctlItems     atomic.Int64
	ctlWaitNs    atomic.Int64 // cumulative control-item ring wait
}

// observeOcc records one enqueue-time occupancy sample: a histogram
// bucket bump plus a high-water CAS (which loops only while the record
// is actually being beaten).
func (s *shardStats) observeOcc(occ uint64) {
	b := bits.Len64(occ)
	if b >= OccBuckets {
		b = OccBuckets - 1
	}
	s.occ[b].Add(1)
	o := int64(occ)
	for {
		hw := s.highWater.Load()
		if o <= hw || s.highWater.CompareAndSwap(hw, o) {
			return
		}
	}
}

// ShardStat is one shard's telemetry snapshot, JSON-shaped for the
// cluster digest and GET /cluster/engine.
type ShardStat struct {
	Shard int `json:"shard"`
	// Engine names the owning engine once stats are merged across
	// processors or entities; empty inside a single engine's snapshot.
	Engine  string `json:"engine,omitempty"`
	Queries int64  `json:"queries"`
	RingCap int64  `json:"ring_cap"`
	// Occupancy is the instantaneous ring depth at snapshot time;
	// HighWater the worst occupancy any enqueue has observed; OccHist the
	// power-of-two occupancy histogram sampled per enqueue.
	Occupancy int64   `json:"occupancy"`
	HighWater int64   `json:"high_water"`
	OccHist   []int64 `json:"occ_hist,omitempty"`
	Offered   int64   `json:"offered"`
	Dropped   int64   `json:"dropped"`
	Batches   int64   `json:"batches"`
	Tuples    int64   `json:"tuples"`
	// KernelTuples / InterpTuples split processed tuples between the
	// vectorized kernel path and the per-tuple interpreted path (joins);
	// KernelIn / KernelOut are the filter pipeline's row counts, whose
	// ratio is the observed kernel selectivity.
	KernelTuples int64 `json:"kernel_tuples"`
	InterpTuples int64 `json:"interp_tuples"`
	KernelIn     int64 `json:"kernel_in"`
	KernelOut    int64 `json:"kernel_out"`
	CtlItems     int64 `json:"ctl_items"`
	CtlWaitNs    int64 `json:"ctl_wait_ns"`
}

// Selectivity returns the observed kernel selectivity: the fraction of
// rows entering the filter pipeline that survive into the stateful tail
// (0 when no kernel batch has run).
func (s ShardStat) Selectivity() float64 {
	if s.KernelIn == 0 {
		return 0
	}
	return float64(s.KernelOut) / float64(s.KernelIn)
}

// KernelShare returns the fraction of processed tuples that took the
// vectorized kernel path rather than per-tuple interpretation.
func (s ShardStat) KernelShare() float64 {
	if s.Tuples == 0 {
		return 0
	}
	return float64(s.KernelTuples) / float64(s.Tuples)
}

// EngineStats is one engine's introspection snapshot — or, after Merge,
// the union across an entity's processors (and, in the cluster view,
// across entities).
type EngineStats struct {
	Engine  string `json:"engine,omitempty"`
	Queries int    `json:"queries"`
	// Dropped is the engine-lifetime dropped-tuple total. Unlike the
	// per-query counters it survives unregistration, so drops from
	// since-expired queries stay visible.
	Dropped int64       `json:"dropped"`
	Shards  []ShardStat `json:"shards,omitempty"`
}

// Merge folds another engine's snapshot into s: shard rows append
// (tagged with their engine of origin) and the totals add.
func (s *EngineStats) Merge(o EngineStats) {
	s.Queries += o.Queries
	s.Dropped += o.Dropped
	for _, sh := range o.Shards {
		if sh.Engine == "" {
			sh.Engine = o.Engine
		}
		s.Shards = append(s.Shards, sh)
	}
}

// Totals sums the shard rows into one aggregate row: counters add,
// occupancy histograms add bucket-wise, high-water keeps the max.
func (s EngineStats) Totals() ShardStat {
	var t ShardStat
	t.Shard = -1
	for _, sh := range s.Shards {
		t.Queries += sh.Queries
		if sh.RingCap > t.RingCap {
			t.RingCap = sh.RingCap
		}
		t.Occupancy += sh.Occupancy
		if sh.HighWater > t.HighWater {
			t.HighWater = sh.HighWater
		}
		if len(sh.OccHist) > 0 {
			if t.OccHist == nil {
				t.OccHist = make([]int64, OccBuckets)
			}
			for i, c := range sh.OccHist {
				if i < len(t.OccHist) {
					t.OccHist[i] += c
				}
			}
		}
		t.Offered += sh.Offered
		t.Dropped += sh.Dropped
		t.Batches += sh.Batches
		t.Tuples += sh.Tuples
		t.KernelTuples += sh.KernelTuples
		t.InterpTuples += sh.InterpTuples
		t.KernelIn += sh.KernelIn
		t.KernelOut += sh.KernelOut
		t.CtlItems += sh.CtlItems
		t.CtlWaitNs += sh.CtlWaitNs
	}
	return t
}

// OccBucketBound returns the inclusive upper occupancy bound of
// histogram bucket i (bucket 0 holds empty-ring samples).
func OccBucketBound(i int) int64 {
	if i <= 0 {
		return 0
	}
	return (1 << i) - 1
}

// OccP99 estimates the 99th-percentile enqueue-time ring occupancy as a
// fraction of ring capacity, from a (possibly summed or windowed)
// occupancy histogram. The estimate is exact to the power-of-two bucket
// boundary; 0 when the histogram is empty.
func OccP99(hist []int64, ringCap int64) float64 {
	if ringCap <= 0 {
		return 0
	}
	var total int64
	for _, c := range hist {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := int64(float64(total)*0.99 + 0.5)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range hist {
		cum += c
		if cum >= rank {
			bound := OccBucketBound(i)
			if bound > ringCap {
				bound = ringCap
			}
			return float64(bound) / float64(ringCap)
		}
	}
	return 1
}

// Introspector is the optional engine capability of exposing a
// telemetry snapshot (ring occupancy, kernel split, control latency).
// Entities merge it across processors; the introspection plane
// federates the merged rows up the coordinator tree.
type Introspector interface {
	EngineStats() EngineStats
}

// TotalDropReporter is the optional capability of reporting the
// engine-lifetime dropped-tuple total across all queries — including
// queries since unregistered, which the per-query DropReporter counters
// forget. The entity-level sspd_cluster_entity_dropped_total metric is
// built from it.
type TotalDropReporter interface {
	TotalDropped() int64
}

// EngineStats implements Introspector: a racy-consistent walk of every
// shard's atomics, no barrier with the shard goroutines.
func (e *ShardEngine) EngineStats() EngineStats {
	e.mu.RLock()
	nq := len(e.queries)
	e.mu.RUnlock()
	out := EngineStats{
		Engine:  e.name,
		Queries: nq,
		Dropped: e.droppedTotal.Value(),
		Shards:  make([]ShardStat, 0, len(e.shards)),
	}
	for _, sh := range e.shards {
		st := &sh.stats
		row := ShardStat{
			Shard:        sh.idx,
			Queries:      st.queries.Load(),
			RingCap:      int64(sh.ring.mask + 1),
			Occupancy:    int64(sh.ring.occupancy()),
			HighWater:    st.highWater.Load(),
			Offered:      st.offered.Load(),
			Dropped:      st.dropped.Load(),
			Batches:      st.batches.Load(),
			Tuples:       st.tuples.Load(),
			KernelTuples: st.kernelTuples.Load(),
			InterpTuples: st.interpTuples.Load(),
			KernelIn:     st.kernelIn.Load(),
			KernelOut:    st.kernelOut.Load(),
			CtlItems:     st.ctlItems.Load(),
			CtlWaitNs:    st.ctlWaitNs.Load(),
		}
		hist := make([]int64, OccBuckets)
		for i := range st.occ {
			hist[i] = st.occ[i].Load()
		}
		row.OccHist = hist
		out.Shards = append(out.Shards, row)
	}
	return out
}

// TotalDropped implements TotalDropReporter.
func (e *ShardEngine) TotalDropped() int64 { return e.droppedTotal.Value() }

var (
	_ Introspector      = (*ShardEngine)(nil)
	_ TotalDropReporter = (*ShardEngine)(nil)
	_ TotalDropReporter = (*Engine)(nil)
	_ TotalDropReporter = (*SchedEngine)(nil)
)
