package engine

import (
	"sync"
	"testing"
	"time"

	"sspd/internal/operator"
	"sspd/internal/stream"
)

func statefulSpec(id string) QuerySpec {
	return QuerySpec{
		ID:     id,
		Source: "quotes",
		Filters: []FilterSpec{
			{Field: "price", Lo: 0, Hi: 900},
		},
		Agg: &AggSpec{Fn: operator.AggAvg, ValueField: "price", GroupField: "symbol",
			Window: stream.CountWindow(32)},
	}
}

func feedQuotes(t *testing.T, p Processor, from, n uint64) {
	t.Helper()
	for i := from; i < from+n; i++ {
		p.Ingest(quote(i, "ibm", float64(10+i%80), 1))
	}
}

// engineStateRoundtrip warms a query on src, snapshots it, restores into
// an identical fresh query on dst, then asserts both emit identical
// results for an identical suffix.
func engineStateRoundtrip(t *testing.T, src, dst Processor) {
	t.Helper()
	type drainable interface{ Drain(time.Duration) bool }

	var mu sync.Mutex
	results := map[string][]stream.Tuple{}
	register := func(p Processor, key string) {
		if err := p.Register(statefulSpec("q1"), func(tu stream.Tuple) {
			mu.Lock()
			results[key] = append(results[key], tu)
			mu.Unlock()
		}); err != nil {
			t.Fatal(err)
		}
	}
	register(src, "src-warm")
	feedQuotes(t, src, 0, 100)
	if d, ok := src.(drainable); ok && !d.Drain(time.Second) {
		t.Fatal("drain timed out")
	}

	ss := src.(StateSnapshotter)
	if n, ok := ss.QueryStateBytes("q1"); !ok || n <= 0 {
		t.Fatalf("QueryStateBytes = %d,%v", n, ok)
	}
	st, err := ss.SnapshotQueryState("q1")
	if err != nil {
		t.Fatal(err)
	}
	if st.Bytes() <= 0 {
		t.Fatalf("snapshot bytes = %d", st.Bytes())
	}

	register(dst, "dst")
	if err := dst.(StateSnapshotter).RestoreQueryState("q1", st); err != nil {
		t.Fatal(err)
	}

	// Rename the src key so the suffix results are comparable.
	mu.Lock()
	results["src"] = nil
	mu.Unlock()
	// The src emit closure appends to "src-warm"; feed the suffix to
	// both and compare counts + values via fresh bookkeeping below.
	warmLen := len(results["src-warm"])
	feedQuotes(t, src, 1000, 50)
	feedQuotes(t, dst, 1000, 50)
	for _, p := range []Processor{src, dst} {
		if d, ok := p.(drainable); ok && !d.Drain(time.Second) {
			t.Fatal("drain timed out")
		}
	}
	mu.Lock()
	defer mu.Unlock()
	srcSuffix := results["src-warm"][warmLen:]
	dstSuffix := results["dst"]
	if len(srcSuffix) != len(dstSuffix) {
		t.Fatalf("suffix result counts diverge: %d vs %d", len(srcSuffix), len(dstSuffix))
	}
	for i := range srcSuffix {
		a, b := srcSuffix[i], dstSuffix[i]
		if a.Seq != b.Seq || a.Value(1).AsFloat() != b.Value(1).AsFloat() {
			t.Fatalf("result %d diverges: seq %d val %v vs seq %d val %v",
				i, a.Seq, a.Value(1).AsFloat(), b.Seq, b.Value(1).AsFloat())
		}
	}
}

func TestEngineStateRoundtrip(t *testing.T) {
	src := New("src", testCatalog(t))
	dst := New("dst", testCatalog(t))
	defer src.Close()
	defer dst.Close()
	engineStateRoundtrip(t, src, dst)
}

func TestMiniEngineStateRoundtrip(t *testing.T) {
	src := NewMini("src", testCatalog(t))
	dst := NewMini("dst", testCatalog(t))
	defer src.Close()
	defer dst.Close()
	engineStateRoundtrip(t, src, dst)
}

// Cross-engine: state snapshotted from the asynchronous engine restores
// into the synchronous one — the loosely-coupled heterogeneity story.
func TestCrossEngineStateRoundtrip(t *testing.T) {
	src := New("src", testCatalog(t))
	dst := NewMini("dst", testCatalog(t))
	defer src.Close()
	defer dst.Close()
	engineStateRoundtrip(t, src, dst)
}

func TestEngineStateUnknownQuery(t *testing.T) {
	e := New("e", testCatalog(t))
	defer e.Close()
	if _, err := e.SnapshotQueryState("nope"); err == nil {
		t.Error("snapshot of unknown query accepted")
	}
	if err := e.RestoreQueryState("nope", nil); err == nil {
		t.Error("restore into unknown query accepted")
	}
	if _, ok := e.QueryStateBytes("nope"); ok {
		t.Error("state bytes for unknown query reported ok")
	}
}
