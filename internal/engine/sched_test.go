package engine

import (
	"sync"
	"testing"
	"time"

	"sspd/internal/stream"
)

func TestSchedEngineBasics(t *testing.T) {
	for _, policy := range []Policy{PolicyFIFO, PolicyRoundRobin, PolicyLongestQueue} {
		t.Run(policy.String(), func(t *testing.T) {
			e := NewSched("sched", testCatalog(t), policy)
			defer e.Close()
			if e.EngineName() != "sched" || e.Policy() != policy {
				t.Error("accessors")
			}
			var mu sync.Mutex
			got := 0
			if err := e.Register(simpleSpec("q1"), func(stream.Tuple) {
				mu.Lock()
				got++
				mu.Unlock()
			}); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 50; i++ {
				e.Ingest(quote(uint64(i), "ibm", 50, 1))
			}
			e.Ingest(quote(99, "ibm", 999, 1)) // filtered
			if !e.Drain(2 * time.Second) {
				t.Fatal("drain")
			}
			mu.Lock()
			defer mu.Unlock()
			if got != 50 {
				t.Fatalf("results = %d, want 50", got)
			}
		})
	}
}

func TestSchedEngineLifecycleErrors(t *testing.T) {
	e := NewSched("s", testCatalog(t), PolicyFIFO)
	if err := e.Register(simpleSpec("a"), nil); err != nil {
		t.Fatal(err)
	}
	if err := e.Register(simpleSpec("a"), nil); err == nil {
		t.Error("duplicate accepted")
	}
	if err := e.Register(QuerySpec{ID: "bad", Source: "nope"}, nil); err == nil {
		t.Error("bad spec accepted")
	}
	if ids := e.QueryIDs(); len(ids) != 1 || ids[0] != "a" {
		t.Errorf("ids = %v", ids)
	}
	if e.Load() <= 0 {
		t.Error("load")
	}
	spec, err := e.Unregister("a")
	if err != nil || spec.ID != "a" {
		t.Fatalf("unregister = %v/%v", spec.ID, err)
	}
	if _, err := e.Unregister("a"); err == nil {
		t.Error("double unregister accepted")
	}
	if err := e.FeedQuery("a", quote(1, "x", 1, 1)); err == nil {
		t.Error("feed to removed query accepted")
	}
	e.Close()
	e.Close() // idempotent
	if err := e.Register(simpleSpec("b"), nil); err == nil {
		t.Error("register after close accepted")
	}
}

func TestSchedEngineMetricsAndPR(t *testing.T) {
	e := NewSched("s", testCatalog(t), PolicyFIFO)
	defer e.Close()
	if err := e.Register(simpleSpec("q"), nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		e.Ingest(quote(uint64(i), "ibm", 50, 1))
	}
	if !e.Drain(2 * time.Second) {
		t.Fatal("drain")
	}
	m, ok := e.Metrics("q")
	if !ok || m.Results != 200 || m.Delay.Count != 200 {
		t.Fatalf("metrics = %+v/%v", m, ok)
	}
	if m.PR < 0.5 {
		t.Errorf("PR = %v", m.PR)
	}
	if _, ok := e.Metrics("zz"); ok {
		t.Error("metrics for unknown query")
	}
	if e.Dropped("q") != 0 || e.Dropped("zz") != 0 {
		t.Error("dropped counters")
	}
}

func TestSchedEngineFeedQueryDirect(t *testing.T) {
	e := NewSched("s", testCatalog(t), PolicyRoundRobin)
	defer e.Close()
	var mu sync.Mutex
	got := 0
	if err := e.Register(simpleSpec("q"), func(stream.Tuple) {
		mu.Lock()
		got++
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.FeedQuery("q", quote(1, "ibm", 50, 1)); err != nil {
		t.Fatal(err)
	}
	if !e.Drain(time.Second) {
		t.Fatal("drain")
	}
	mu.Lock()
	defer mu.Unlock()
	if got != 1 {
		t.Fatalf("direct feed results = %d", got)
	}
}

func TestSchedEngineRoundRobinFairness(t *testing.T) {
	// Two queries, one with a huge pre-loaded backlog: under round-robin
	// the small query's tuples are served interleaved, so its delay is
	// far below the big query's. Under FIFO it waits behind everything
	// older.
	run := func(policy Policy) (smallDelay, bigDelay float64) {
		e := NewSched("s", testCatalog(t), policy)
		defer e.Close()
		slow := func(stream.Tuple) { time.Sleep(50 * time.Microsecond) }
		if err := e.Register(simpleSpec("big"), slow); err != nil {
			t.Fatal(err)
		}
		if err := e.Register(simpleSpec("small"), slow); err != nil {
			t.Fatal(err)
		}
		// Pause the scheduler's progress by loading big's backlog first.
		for i := 0; i < 400; i++ {
			e.FeedQuery("big", quote(uint64(i), "ibm", 50, 1))
		}
		for i := 0; i < 20; i++ {
			e.FeedQuery("small", quote(uint64(1000+i), "ibm", 50, 1))
		}
		if !e.Drain(10 * time.Second) {
			t.Fatal("drain")
		}
		ms, _ := e.Metrics("small")
		mb, _ := e.Metrics("big")
		return ms.Delay.Mean, mb.Delay.Mean
	}
	rrSmall, _ := run(PolicyRoundRobin)
	fifoSmall, _ := run(PolicyFIFO)
	// Round-robin should serve the small query much sooner than FIFO
	// (which drains big's 400 older tuples first).
	if rrSmall*2 >= fifoSmall {
		t.Errorf("round-robin small delay %v not well below fifo %v", rrSmall, fifoSmall)
	}
}

func TestSchedEnginePolicyString(t *testing.T) {
	cases := map[Policy]string{
		PolicyFIFO:         "fifo",
		PolicyRoundRobin:   "round-robin",
		PolicyLongestQueue: "longest-queue",
		Policy(9):          "unknown",
	}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("%d = %q, want %q", p, got, want)
		}
	}
}

func TestSchedEngineInFederationFactory(t *testing.T) {
	// SchedEngine satisfies the same contracts; the entity layer can
	// host fragments on it.
	catalog := testCatalog(t)
	e := NewSched("p", catalog, PolicyLongestQueue)
	defer e.Close()
	var f DirectFeeder = e
	if err := e.Register(simpleSpec("q"), nil); err != nil {
		t.Fatal(err)
	}
	if err := f.FeedQuery("q", quote(1, "ibm", 50, 1)); err != nil {
		t.Fatal(err)
	}
	if !e.Drain(time.Second) {
		t.Fatal("drain")
	}
	m, _ := e.Metrics("q")
	if m.Results != 1 {
		t.Fatalf("results = %d", m.Results)
	}
}
