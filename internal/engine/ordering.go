package engine

import "sort"

// OptimalFilterOrder returns the permutation of commutable filters that
// minimizes expected per-tuple work: ascending rank cost/(1 -
// selectivity), the classical ordering for independent selection
// predicates. Filters with selectivity >= 1 (non-reducing) sort last by
// cost.
func OptimalFilterOrder(costs, sels []float64) []int {
	n := len(costs)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	rank := func(i int) float64 {
		s := sels[i]
		if s >= 1 {
			return float64(1e18) + costs[i]
		}
		return costs[i] / (1 - s)
	}
	sort.SliceStable(perm, func(a, b int) bool {
		return rank(perm[a]) < rank(perm[b])
	})
	return perm
}

// ExpectedFilterCost returns the expected per-tuple work of evaluating
// the filters in the order given by perm: stage i's cost is paid by the
// fraction of tuples surviving stages 0..i-1.
func ExpectedFilterCost(costs, sels []float64, perm []int) float64 {
	total, surviving := 0.0, 1.0
	for _, i := range perm {
		total += surviving * costs[i]
		surviving *= sels[i]
	}
	return total
}

// maybeReorder applies the optimal filter order to q when it improves
// the expected per-tuple cost by at least minGain (relative). It returns
// whether a reorder happened. The caller must own q (no concurrent Feed).
func maybeReorder(q *Query, minGain float64) bool {
	sels := q.FilterSelectivities()
	costs := q.FilterCosts()
	if len(sels) < 2 {
		return false
	}
	current := make([]int, len(sels))
	for i := range current {
		current[i] = i
	}
	best := OptimalFilterOrder(costs, sels)
	curCost := ExpectedFilterCost(costs, sels, current)
	bestCost := ExpectedFilterCost(costs, sels, best)
	if bestCost >= curCost*(1-minGain) {
		return false
	}
	return q.ReorderFilters(best) == nil
}

// Adapter is the optional engine capability of re-ordering its queries'
// commutable operators from observed statistics — the engine-side hook
// of the paper's Adaptation Module. AdaptOrdering returns the number of
// queries whose plan changed. minGain <= 0 defaults to 5%.
type Adapter interface {
	AdaptOrdering(minGain float64) int
}

func normalizeGain(minGain float64) float64 {
	if minGain <= 0 {
		return 0.05
	}
	return minGain
}

// AdaptOrdering implements Adapter for MiniEngine: queries feed under
// the engine lock, so reordering under the same lock is safe.
func (m *MiniEngine) AdaptOrdering(minGain float64) int {
	minGain = normalizeGain(minGain)
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, q := range m.queries {
		if maybeReorder(q, minGain) {
			n++
		}
	}
	return n
}

// AdaptOrdering implements Adapter for SchedEngine: adaptation is
// deferred to the scheduler goroutine (which owns every Feed call) and
// applied before the next tuple is served.
func (e *SchedEngine) AdaptOrdering(minGain float64) int {
	minGain = normalizeGain(minGain)
	e.mu.Lock()
	defer e.mu.Unlock()
	// The scheduler loop is the only feeder, but it acquires e.mu
	// between feeds — holding it here means no Feed is in flight.
	n := 0
	for _, sq := range e.queries {
		if maybeReorder(sq.q, minGain) {
			n++
		}
	}
	return n
}

// AdaptOrdering implements Adapter for Engine: each query adapts on its
// own goroutine via a control message through its input queue, so the
// reorder is serialized with Feed. The returned count is the number of
// queries whose adaptation was REQUESTED (they apply asynchronously).
func (e *Engine) AdaptOrdering(minGain float64) int {
	minGain = normalizeGain(minGain)
	e.mu.RLock()
	defer e.mu.RUnlock()
	n := 0
	for _, rq := range e.queries {
		if rq.enqueue(feedItem{adaptGain: minGain}) {
			n++
		}
	}
	return n
}

var (
	_ Adapter = (*Engine)(nil)
	_ Adapter = (*MiniEngine)(nil)
	_ Adapter = (*SchedEngine)(nil)
)
