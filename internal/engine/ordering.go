package engine

import "sort"

// OptimalFilterOrder returns the permutation of commutable filters that
// minimizes expected per-tuple work: ascending rank cost/(1 -
// selectivity), the classical ordering for independent selection
// predicates. Filters with selectivity >= 1 (non-reducing) sort last by
// cost.
func OptimalFilterOrder(costs, sels []float64) []int {
	n := len(costs)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	rank := func(i int) float64 {
		s := sels[i]
		if s >= 1 {
			return float64(1e18) + costs[i]
		}
		return costs[i] / (1 - s)
	}
	sort.SliceStable(perm, func(a, b int) bool {
		return rank(perm[a]) < rank(perm[b])
	})
	return perm
}

// ExpectedFilterCost returns the expected per-tuple work of evaluating
// the filters in the order given by perm: stage i's cost is paid by the
// fraction of tuples surviving stages 0..i-1.
func ExpectedFilterCost(costs, sels []float64, perm []int) float64 {
	total, surviving := 0.0, 1.0
	for _, i := range perm {
		total += surviving * costs[i]
		surviving *= sels[i]
	}
	return total
}

// MaybeReorder applies the optimal filter order to q when it improves
// the expected per-tuple cost by at least minGain (relative). It returns
// whether a reorder happened. The caller must own q (no concurrent
// Feed). It is the single source of truth for the reorder decision:
// every engine's AdaptOrdering and the entity-level AM delegate here.
func MaybeReorder(q *Query, minGain float64) bool {
	sels := q.FilterSelectivities()
	costs := q.FilterCosts()
	if len(sels) < 2 {
		return false
	}
	current := make([]int, len(sels))
	for i := range current {
		current[i] = i
	}
	best := OptimalFilterOrder(costs, sels)
	curCost := ExpectedFilterCost(costs, sels, current)
	bestCost := ExpectedFilterCost(costs, sels, best)
	if bestCost >= curCost*(1-minGain) {
		return false
	}
	return q.ReorderFilters(best) == nil
}

// Adapter is the optional engine capability of re-ordering its queries'
// commutable operators from observed statistics — the engine-side hook
// of the paper's Adaptation Module. AdaptOrdering returns the number of
// queries whose plan changed. minGain <= 0 defaults to 5%.
type Adapter interface {
	AdaptOrdering(minGain float64) int
}

func normalizeGain(minGain float64) float64 {
	if minGain <= 0 {
		return 0.05
	}
	return minGain
}

// AdaptOrdering implements Adapter for MiniEngine: queries feed under
// the engine lock, so reordering under the same lock is safe.
func (m *MiniEngine) AdaptOrdering(minGain float64) int {
	minGain = normalizeGain(minGain)
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, q := range m.queries {
		if MaybeReorder(q, minGain) {
			n++
		}
	}
	return n
}

// AdaptOrdering implements Adapter for SchedEngine: adaptation is
// deferred to the scheduler goroutine (which owns every Feed call) and
// applied before the next tuple is served.
func (e *SchedEngine) AdaptOrdering(minGain float64) int {
	minGain = normalizeGain(minGain)
	e.mu.Lock()
	defer e.mu.Unlock()
	// The scheduler loop is the only feeder, but it acquires e.mu
	// between feeds — holding it here means no Feed is in flight.
	n := 0
	for _, sq := range e.queries {
		if MaybeReorder(sq.q, minGain) {
			n++
		}
	}
	return n
}

// AdaptOrdering implements Adapter for Engine: each query adapts on its
// own goroutine via a control message through its input queue, so the
// reorder is serialized with Feed. It waits for every accepted control
// item and returns the number of queries whose plan actually CHANGED —
// the same applied-count semantics as Mini/Sched/Shard, so entity- and
// federation-level sweeps sum comparable numbers. A query whose full
// input queue rejects the control item is skipped (counted as a drop
// like any other overflow); applies are also surfaced engine-lifetime
// via AdaptationsApplied.
func (e *Engine) AdaptOrdering(minGain float64) int {
	minGain = normalizeGain(minGain)
	// Enqueue under the read lock so no Unregister can close a queue
	// mid-loop (enqueue never blocks), but wait OUTSIDE it: a query
	// goroutine's emit may re-enter this engine under mu.RLock, and
	// blocking here with a writer queued behind us would deadlock.
	// Items already enqueued are drained even if the queue closes, so
	// every accepted control item eventually answers.
	e.mu.RLock()
	pending := make([]chan bool, 0, len(e.queries))
	for _, rq := range e.queries {
		done := make(chan bool, 1)
		if rq.enqueue(feedItem{adaptGain: minGain, adaptDone: done}) {
			pending = append(pending, done)
		}
	}
	e.mu.RUnlock()
	n := 0
	for _, done := range pending {
		if <-done {
			n++
		}
	}
	return n
}

var (
	_ Adapter = (*Engine)(nil)
	_ Adapter = (*MiniEngine)(nil)
	_ Adapter = (*SchedEngine)(nil)
)
