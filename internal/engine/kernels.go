// Vectorized kernel compilation for ShardEngine (DESIGN.md §13): a
// non-join query's operator chain compiles into a flat pipeline of
// batch kernels. Filter steps become stream.VecFilter kernels that scan
// columns and shrink the batch's selection vector; the stateful tail
// (distinct/aggregate/top-k) runs per surviving row through the
// already-compiled chain with one stats-lock amortization per batch.
//
// Kernels never read the clock: the shard takes exactly one timestamp
// pair per (query, batch) around the whole pipeline (lint-obslog
// enforces the rule for this file).
package engine

import (
	"fmt"

	"sspd/internal/operator"
	"sspd/internal/stream"
)

// vecFilter pairs one columnar filter kernel with the chain operator it
// mirrors, so observed selectivities keep flowing into the operator's
// Stats (the Adaptation Module reads them from there) at batch
// granularity.
type vecFilter struct {
	vf *stream.VecFilter
	op operator.Operator
}

// vecPipeline is a query's compiled batch pipeline.
type vecPipeline struct {
	filters []vecFilter
	// nFilters is the chain prefix length the filters cover; survivors
	// enter the chain at this index.
	nFilters int
}

// compileVecPipeline builds the vectorized pipeline for a compiled
// non-join query. The vec filters are created in spec order, matching
// q.chain's initial filter prefix; resync realigns them after the
// Adaptation Module reorders the chain.
func compileVecPipeline(spec QuerySpec, catalog *stream.Catalog, q *Query) (*vecPipeline, error) {
	src, ok := catalog.Lookup(spec.Source)
	if !ok {
		return nil, fmt.Errorf("engine: query %s: unknown stream %q", spec.ID, spec.Source)
	}
	p := &vecPipeline{nFilters: len(q.chain) - q.tailOps}
	if p.nFilters != len(spec.Filters) {
		return nil, fmt.Errorf("engine: query %s: %d chain filters vs %d spec filters", spec.ID, p.nFilters, len(spec.Filters))
	}
	for i, f := range spec.Filters {
		rIdx, kIdx, err := filterFieldIndexes(f, src)
		if err != nil {
			return nil, fmt.Errorf("engine: query %s: %w", spec.ID, err)
		}
		p.filters = append(p.filters, vecFilter{
			vf: stream.NewVecFilter(rIdx, f.Lo, f.Hi, kIdx, f.Keys),
			op: q.chain[i],
		})
	}
	return p, nil
}

// filterFieldIndexes resolves a filter spec's fields against a schema
// with the same rules as compileFilter (join prefixes included), and
// returns -1 for absent constraints.
func filterFieldIndexes(f FilterSpec, sc *stream.Schema) (rIdx, kIdx int, err error) {
	resolve := func(field string) (int, error) {
		if field == "" {
			return -1, nil
		}
		if i, ok := sc.FieldIndex(field); ok {
			return i, nil
		}
		for _, pre := range []string{"l_", "r_"} {
			if i, ok := sc.FieldIndex(pre + field); ok {
				return i, nil
			}
		}
		return -1, fmt.Errorf("schema %s has no field %q", sc.Name(), field)
	}
	if rIdx, err = resolve(f.Field); err != nil {
		return
	}
	kIdx, err = resolve(f.KeyField)
	return
}

// run pushes one columnar batch through the pipeline: each filter
// kernel shrinks the selection vector (recording batch-granularity
// stats on its chain operator), then survivors enter the stateful tail.
// It returns the number of result tuples.
func (p *vecPipeline) run(cb *stream.ColBatch, q *Query) int {
	for i := range p.filters {
		in := cb.Len()
		if in == 0 {
			return 0
		}
		out := p.filters[i].vf.Apply(cb)
		p.filters[i].op.Stats().RecordBatch(in, out)
	}
	results := 0
	for _, row := range cb.Sel() {
		results += q.runChain(p.nFilters, cb.Row(row))
	}
	return results
}

// resync realigns the vec filter order with q.chain's (possibly
// reordered) filter prefix, matching by operator identity. Called on
// the owning shard after a chain reorder.
func (p *vecPipeline) resync(q *Query) {
	aligned := make([]vecFilter, 0, len(p.filters))
	for i := 0; i < p.nFilters; i++ {
		op := q.chain[i]
		for j := range p.filters {
			if p.filters[j].op == op {
				aligned = append(aligned, p.filters[j])
				break
			}
		}
	}
	if len(aligned) == len(p.filters) {
		p.filters = aligned
	}
}
