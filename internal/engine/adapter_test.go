package engine

import (
	"testing"
	"time"
)

// shiftSpec has two filters whose useful order flips with the workload.
func shiftSpec(id string) QuerySpec {
	return QuerySpec{
		ID:     id,
		Source: "quotes",
		Filters: []FilterSpec{
			{Field: "price", Lo: 0, Hi: 1000, Cost: 1}, // useless
			{Field: "volume", Lo: 0, Hi: 100, Cost: 1}, // selective
		},
	}
}

func TestMiniEngineAdaptOrdering(t *testing.T) {
	e := NewMini("m", testCatalog(t))
	defer e.Close()
	if err := e.Register(shiftSpec("q"), nil); err != nil {
		t.Fatal(err)
	}
	// Feed a workload where the second filter is the selective one.
	for i := 0; i < 300; i++ {
		e.Ingest(quote(uint64(i), "ibm", 500, 500)) // volume filter rejects
	}
	if n := e.AdaptOrdering(0); n != 1 {
		t.Fatalf("adapted %d queries, want 1", n)
	}
	// Second sweep: already optimal, nothing to do.
	if n := e.AdaptOrdering(0); n != 0 {
		t.Fatalf("re-adapted %d queries, want 0", n)
	}
}

func TestSchedEngineAdaptOrdering(t *testing.T) {
	e := NewSched("s", testCatalog(t), PolicyFIFO)
	defer e.Close()
	if err := e.Register(shiftSpec("q"), nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		e.Ingest(quote(uint64(i), "ibm", 500, 500))
	}
	if !e.Drain(2 * time.Second) {
		t.Fatal("drain")
	}
	if n := e.AdaptOrdering(0); n != 1 {
		t.Fatalf("adapted %d, want 1", n)
	}
}

func TestEngineAdaptOrderingAsync(t *testing.T) {
	e := New("e", testCatalog(t))
	defer e.Close()
	if err := e.Register(shiftSpec("q"), nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		e.Ingest(quote(uint64(i), "ibm", 500, 500))
	}
	if !e.Drain(2 * time.Second) {
		t.Fatal("drain")
	}
	// AdaptOrdering waits for the control item and reports APPLIED
	// reorders — the same semantics as every other engine.
	if n := e.AdaptOrdering(0); n != 1 {
		t.Fatalf("applied %d adaptations, want 1", n)
	}
	if got := e.AdaptationsApplied(); got != 1 {
		t.Fatalf("AdaptationsApplied = %d, want 1", got)
	}
	q, _ := e.Query("q")
	sels := q.FilterSelectivities()
	if len(sels) != 2 || sels[0] > sels[1] {
		t.Fatalf("selective filter not first after adaptation: %v", sels)
	}
	// Processing keeps working after the reorder.
	var got int
	e2 := New("e2", testCatalog(t))
	defer e2.Close()
	_ = e2
	e.Ingest(quote(999, "ibm", 500, 5)) // passes both filters
	if !e.Drain(2 * time.Second) {
		t.Fatal("drain")
	}
	m, _ := e.Metrics("q")
	if m.Results != 1 {
		t.Fatalf("results after adapt = %d, want 1", m.Results)
	}
	_ = got
}

// TestAdaptOrderingAppliedSemantics pins the cross-engine contract: a
// first sweep on a misordered query applies exactly one reorder, and an
// immediately repeated sweep applies zero — for EVERY engine kind, so
// entity- and federation-level sweeps sum comparable numbers.
func TestAdaptOrderingAppliedSemantics(t *testing.T) {
	engines := map[string]func() Processor{
		"mini":  func() Processor { return NewMini("m", testCatalog(t)) },
		"sched": func() Processor { return NewSched("s", testCatalog(t), PolicyFIFO) },
		"async": func() Processor { return New("a", testCatalog(t)) },
		"shard": func() Processor { return NewShard("h", testCatalog(t), 0) },
	}
	for name, mk := range engines {
		t.Run(name, func(t *testing.T) {
			e := mk()
			defer e.Close()
			if err := e.Register(shiftSpec("q"), nil); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 300; i++ {
				e.Ingest(quote(uint64(i), "ibm", 500, 500))
			}
			if d, ok := e.(interface{ Drain(time.Duration) bool }); ok {
				if !d.Drain(2 * time.Second) {
					t.Fatal("drain")
				}
			}
			a, ok := e.(Adapter)
			if !ok {
				t.Fatalf("%s does not implement Adapter", name)
			}
			if n := a.AdaptOrdering(0); n != 1 {
				t.Fatalf("first sweep applied %d, want 1", n)
			}
			if n := a.AdaptOrdering(0); n != 0 {
				t.Fatalf("second sweep applied %d, want 0 (already optimal)", n)
			}
		})
	}
}

func TestAdaptOrderingNoFilters(t *testing.T) {
	e := NewMini("m", testCatalog(t))
	defer e.Close()
	if err := e.Register(QuerySpec{ID: "q", Source: "quotes"}, nil); err != nil {
		t.Fatal(err)
	}
	if n := e.AdaptOrdering(0); n != 0 {
		t.Fatalf("filterless query adapted: %d", n)
	}
}
