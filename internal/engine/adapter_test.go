package engine

import (
	"testing"
	"time"
)

// shiftSpec has two filters whose useful order flips with the workload.
func shiftSpec(id string) QuerySpec {
	return QuerySpec{
		ID:     id,
		Source: "quotes",
		Filters: []FilterSpec{
			{Field: "price", Lo: 0, Hi: 1000, Cost: 1}, // useless
			{Field: "volume", Lo: 0, Hi: 100, Cost: 1}, // selective
		},
	}
}

func TestMiniEngineAdaptOrdering(t *testing.T) {
	e := NewMini("m", testCatalog(t))
	defer e.Close()
	if err := e.Register(shiftSpec("q"), nil); err != nil {
		t.Fatal(err)
	}
	// Feed a workload where the second filter is the selective one.
	for i := 0; i < 300; i++ {
		e.Ingest(quote(uint64(i), "ibm", 500, 500)) // volume filter rejects
	}
	if n := e.AdaptOrdering(0); n != 1 {
		t.Fatalf("adapted %d queries, want 1", n)
	}
	// Second sweep: already optimal, nothing to do.
	if n := e.AdaptOrdering(0); n != 0 {
		t.Fatalf("re-adapted %d queries, want 0", n)
	}
}

func TestSchedEngineAdaptOrdering(t *testing.T) {
	e := NewSched("s", testCatalog(t), PolicyFIFO)
	defer e.Close()
	if err := e.Register(shiftSpec("q"), nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		e.Ingest(quote(uint64(i), "ibm", 500, 500))
	}
	if !e.Drain(2 * time.Second) {
		t.Fatal("drain")
	}
	if n := e.AdaptOrdering(0); n != 1 {
		t.Fatalf("adapted %d, want 1", n)
	}
}

func TestEngineAdaptOrderingAsync(t *testing.T) {
	e := New("e", testCatalog(t))
	defer e.Close()
	if err := e.Register(shiftSpec("q"), nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		e.Ingest(quote(uint64(i), "ibm", 500, 500))
	}
	if !e.Drain(2 * time.Second) {
		t.Fatal("drain")
	}
	if n := e.AdaptOrdering(0); n != 1 {
		t.Fatalf("requested %d adaptations, want 1", n)
	}
	// The control item applies on the query goroutine; wait for it.
	if !e.Drain(2 * time.Second) {
		t.Fatal("drain")
	}
	q, _ := e.Query("q")
	sels := q.FilterSelectivities()
	if len(sels) != 2 || sels[0] > sels[1] {
		t.Fatalf("selective filter not first after adaptation: %v", sels)
	}
	// Processing keeps working after the reorder.
	var got int
	e2 := New("e2", testCatalog(t))
	defer e2.Close()
	_ = e2
	e.Ingest(quote(999, "ibm", 500, 5)) // passes both filters
	if !e.Drain(2 * time.Second) {
		t.Fatal("drain")
	}
	m, _ := e.Metrics("q")
	if m.Results != 1 {
		t.Fatalf("results after adapt = %d, want 1", m.Results)
	}
	_ = got
}

func TestAdaptOrderingNoFilters(t *testing.T) {
	e := NewMini("m", testCatalog(t))
	defer e.Close()
	if err := e.Register(QuerySpec{ID: "q", Source: "quotes"}, nil); err != nil {
		t.Fatal(err)
	}
	if n := e.AdaptOrdering(0); n != 0 {
		t.Fatalf("filterless query adapted: %d", n)
	}
}
