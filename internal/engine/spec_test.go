package engine

import (
	"math"
	"testing"
	"time"

	"sspd/internal/operator"
	"sspd/internal/stream"
)

func testCatalog(t testing.TB) *stream.Catalog {
	t.Helper()
	c := stream.NewCatalog()
	quotes := stream.MustSchema("quotes",
		stream.Field{Name: "symbol", Type: stream.KindString, Card: 100},
		stream.Field{Name: "price", Type: stream.KindFloat, Lo: 0, Hi: 1000},
		stream.Field{Name: "volume", Type: stream.KindInt, Lo: 0, Hi: 1e6},
	)
	trades := stream.MustSchema("trades",
		stream.Field{Name: "symbol", Type: stream.KindString, Card: 100},
		stream.Field{Name: "qty", Type: stream.KindInt, Lo: 0, Hi: 1e6},
	)
	if err := c.Register(quotes); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(trades); err != nil {
		t.Fatal(err)
	}
	return c
}

func quote(seq uint64, symbol string, price float64, volume int64) stream.Tuple {
	return stream.NewTuple("quotes", seq, time.Unix(int64(seq), 0).UTC(),
		stream.String(symbol), stream.Float(price), stream.Int(volume))
}

func trade(seq uint64, symbol string, qty int64) stream.Tuple {
	return stream.NewTuple("trades", seq, time.Unix(int64(seq), 0).UTC(),
		stream.String(symbol), stream.Int(qty))
}

func TestQuerySpecValidate(t *testing.T) {
	good := QuerySpec{
		ID:     "q1",
		Source: "quotes",
		Filters: []FilterSpec{
			{Field: "price", Lo: 0, Hi: 100},
			{KeyField: "symbol", Keys: []string{"ibm"}},
		},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := []QuerySpec{
		{Source: "quotes"},
		{ID: "q"},
		{ID: "q", Source: "s", Join: &JoinSpec{}},
		{ID: "q", Source: "s", Filters: []FilterSpec{{}}},
		{ID: "q", Source: "s", Filters: []FilterSpec{{Field: "p", Lo: 2, Hi: 1}}},
		{ID: "q", Source: "s", Filters: []FilterSpec{{KeyField: "k"}}},
		{ID: "q", Source: "s", Agg: &AggSpec{Fn: operator.AggSum}},
	}
	for i, spec := range bad {
		if err := spec.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
	// Count aggregates need no value field.
	count := QuerySpec{ID: "q", Source: "s", Agg: &AggSpec{Fn: operator.AggCount}}
	if err := count.Validate(); err != nil {
		t.Errorf("count agg rejected: %v", err)
	}
}

func TestQuerySpecStreams(t *testing.T) {
	q := QuerySpec{ID: "q", Source: "a"}
	if got := q.Streams(); len(got) != 1 || got[0] != "a" {
		t.Errorf("Streams = %v", got)
	}
	q.Join = &JoinSpec{Stream: "b", LeftKey: "k", RightKey: "k"}
	if got := q.Streams(); len(got) != 2 || got[1] != "b" {
		t.Errorf("Streams = %v", got)
	}
}

func TestQuerySpecInterest(t *testing.T) {
	c := testCatalog(t)
	sc, _ := c.Lookup("quotes")
	q := QuerySpec{
		ID:     "q",
		Source: "quotes",
		Filters: []FilterSpec{
			{Field: "price", Lo: 10, Hi: 20},
			{KeyField: "symbol", Keys: []string{"ibm"}},
			{Field: "not_in_schema", Lo: 0, Hi: 1}, // ignored for interest
		},
	}
	in := q.Interest("quotes", sc)
	if !in.Matches(sc, quote(1, "ibm", 15, 1)) {
		t.Error("interest rejects matching tuple")
	}
	if in.Matches(sc, quote(2, "ibm", 25, 1)) {
		t.Error("interest accepts out-of-range tuple")
	}
	if in.Matches(sc, quote(3, "goog", 15, 1)) {
		t.Error("interest accepts wrong symbol")
	}
}

func TestQuerySpecEstimatedLoad(t *testing.T) {
	q := QuerySpec{ID: "q", Source: "s", Load: 42}
	if got := q.EstimatedLoad(); got != 42 {
		t.Errorf("declared load = %v", got)
	}
	derived := QuerySpec{
		ID: "q", Source: "s",
		Join:    &JoinSpec{Stream: "b", LeftKey: "k", RightKey: "k"}, // default 3
		Filters: []FilterSpec{{Field: "f", Lo: 0, Hi: 1, Cost: 2}},   // 2
		Agg:     &AggSpec{Fn: operator.AggCount},                     // default 2
	}
	if got := derived.EstimatedLoad(); got != 7 {
		t.Errorf("derived load = %v, want 7", got)
	}
	if got := (QuerySpec{ID: "q", Source: "s"}).EstimatedLoad(); got != 1 {
		t.Errorf("minimum load = %v, want 1", got)
	}
}

func TestFilterSpecInterest(t *testing.T) {
	f := FilterSpec{Field: "p", Lo: 1, Hi: 2, KeyField: "s", Keys: []string{"a"}}
	in := f.interest("st")
	if in.Stream != "st" || len(in.Ranges) != 1 || len(in.Keys) != 1 {
		t.Errorf("interest = %v", in)
	}
}

func TestDefaultWindow(t *testing.T) {
	w := defaultWindow(stream.WindowSpec{})
	if w.Kind != stream.WindowByTime || w.Duration != time.Minute {
		t.Errorf("zero spec default = %+v", w)
	}
	w = defaultWindow(stream.WindowSpec{Duration: 5 * time.Second})
	if w.Kind != stream.WindowByTime || w.Duration != 5*time.Second {
		t.Errorf("duration-only default = %+v", w)
	}
	keep := stream.CountWindow(7)
	if got := defaultWindow(keep); got != keep {
		t.Errorf("valid spec mutated: %+v", got)
	}
}

func TestCompileSimpleFilterQuery(t *testing.T) {
	c := testCatalog(t)
	var results []stream.Tuple
	q, err := Compile(QuerySpec{
		ID:     "q1",
		Source: "quotes",
		Filters: []FilterSpec{
			{Field: "price", Lo: 50, Hi: 150},
			{KeyField: "symbol", Keys: []string{"ibm", "msft"}},
		},
	}, c, func(t stream.Tuple) { results = append(results, t) })
	if err != nil {
		t.Fatal(err)
	}
	if n := q.Feed("quotes", quote(1, "ibm", 100, 5)); n != 1 {
		t.Fatalf("matching tuple produced %d results", n)
	}
	if n := q.Feed("quotes", quote(2, "ibm", 10, 5)); n != 0 {
		t.Fatalf("price-filtered tuple produced %d results", n)
	}
	if n := q.Feed("quotes", quote(3, "goog", 100, 5)); n != 0 {
		t.Fatalf("symbol-filtered tuple produced %d results", n)
	}
	if n := q.Feed("trades", trade(4, "ibm", 5)); n != 0 {
		t.Fatalf("unrelated stream produced %d results", n)
	}
	if len(results) != 1 {
		t.Fatalf("emitted %d results", len(results))
	}
	if q.ID() != "q1" {
		t.Errorf("ID = %q", q.ID())
	}
	if len(q.Operators()) != 2 {
		t.Errorf("operators = %d", len(q.Operators()))
	}
}

func TestCompileJoinQuery(t *testing.T) {
	c := testCatalog(t)
	count := 0
	q, err := Compile(QuerySpec{
		ID:     "qj",
		Source: "quotes",
		Join: &JoinSpec{
			Stream: "trades", LeftKey: "symbol", RightKey: "symbol",
			Window: stream.CountWindow(10),
		},
		Filters: []FilterSpec{{Field: "price", Lo: 0, Hi: 100}},
	}, c, func(stream.Tuple) { count++ })
	if err != nil {
		t.Fatal(err)
	}
	q.Feed("quotes", quote(1, "ibm", 50, 1))
	if n := q.Feed("trades", trade(2, "ibm", 7)); n != 1 {
		t.Fatalf("join+filter results = %d, want 1", n)
	}
	// Filter references the un-prefixed source field "price", resolved
	// to l_price post-join.
	q.Feed("quotes", quote(3, "goog", 500, 1))
	if n := q.Feed("trades", trade(4, "goog", 7)); n != 0 {
		t.Fatalf("filtered join produced %d", n)
	}
	if count != 1 {
		t.Fatalf("emitted = %d", count)
	}
	// Tuples on neither input are ignored.
	other := stream.NewTuple("other", 1, time.Now())
	if n := q.Feed("other", other); n != 0 {
		t.Fatalf("unknown stream produced %d", n)
	}
}

func TestCompileAggQuery(t *testing.T) {
	c := testCatalog(t)
	var last float64
	q, err := Compile(QuerySpec{
		ID:     "qa",
		Source: "quotes",
		Filters: []FilterSpec{
			{KeyField: "symbol", Keys: []string{"ibm"}},
		},
		Agg: &AggSpec{
			Fn: operator.AggAvg, ValueField: "price",
			Window: stream.CountWindow(2),
		},
	}, c, func(t stream.Tuple) { last = t.Values[1].AsFloat() })
	if err != nil {
		t.Fatal(err)
	}
	q.Feed("quotes", quote(1, "ibm", 10, 1))
	q.Feed("quotes", quote(2, "goog", 999, 1)) // filtered before agg
	q.Feed("quotes", quote(3, "ibm", 20, 1))
	if math.Abs(last-15) > 1e-9 {
		t.Fatalf("avg = %v, want 15", last)
	}
}

func TestCompileErrors(t *testing.T) {
	c := testCatalog(t)
	cases := []QuerySpec{
		{ID: "", Source: "quotes"},
		{ID: "q", Source: "nope"},
		{ID: "q", Source: "quotes", Join: &JoinSpec{Stream: "nope", LeftKey: "symbol", RightKey: "symbol"}},
		{ID: "q", Source: "quotes", Join: &JoinSpec{Stream: "trades", LeftKey: "nope", RightKey: "symbol"}},
		{ID: "q", Source: "quotes", Filters: []FilterSpec{{Field: "nope", Lo: 0, Hi: 1}}},
		{ID: "q", Source: "quotes", Filters: []FilterSpec{{KeyField: "nope", Keys: []string{"x"}}}},
		{ID: "q", Source: "quotes", Agg: &AggSpec{Fn: operator.AggSum, ValueField: "nope"}},
	}
	for i, spec := range cases {
		if _, err := Compile(spec, c, nil); err == nil {
			t.Errorf("bad spec %d compiled", i)
		}
	}
}

func TestReorderFilters(t *testing.T) {
	c := testCatalog(t)
	q, err := Compile(QuerySpec{
		ID:     "q",
		Source: "quotes",
		Filters: []FilterSpec{
			{Field: "price", Lo: 0, Hi: 100, Cost: 1},
			{Field: "volume", Lo: 0, Hi: 10, Cost: 5},
		},
		Agg: &AggSpec{Fn: operator.AggCount, Window: stream.CountWindow(4)},
	}, c, nil)
	if err != nil {
		t.Fatal(err)
	}
	costs := q.FilterCosts()
	if len(costs) != 2 || costs[0] != 1 || costs[1] != 5 {
		t.Fatalf("costs = %v", costs)
	}
	if err := q.ReorderFilters([]int{1, 0}); err != nil {
		t.Fatal(err)
	}
	costs = q.FilterCosts()
	if costs[0] != 5 || costs[1] != 1 {
		t.Fatalf("costs after reorder = %v", costs)
	}
	// Aggregate must stay terminal: feeding still works and counts.
	if n := q.Feed("quotes", quote(1, "ibm", 50, 5)); n != 1 {
		t.Fatalf("post-reorder feed = %d", n)
	}
	// Invalid permutations.
	if err := q.ReorderFilters([]int{0}); err == nil {
		t.Error("short permutation accepted")
	}
	if err := q.ReorderFilters([]int{0, 0}); err == nil {
		t.Error("duplicate permutation accepted")
	}
	if err := q.ReorderFilters([]int{0, 5}); err == nil {
		t.Error("out-of-range permutation accepted")
	}
	if sels := q.FilterSelectivities(); len(sels) != 2 {
		t.Errorf("selectivities = %v", sels)
	}
}
