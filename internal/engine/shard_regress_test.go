package engine

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sspd/internal/stream"
)

// Regression tests for the ShardEngine concurrency review: accumulator
// dispatch ordering, unregister flush semantics, the pending counter,
// and AdaptOrdering's lock discipline around spinning control enqueues.

func regressCatalog(t *testing.T) *stream.Catalog {
	t.Helper()
	cat := stream.NewCatalog()
	sc := stream.MustSchema("events",
		stream.Field{Name: "producer", Type: stream.KindInt, Lo: 0, Hi: 16},
		stream.Field{Name: "seq", Type: stream.KindInt, Lo: 0, Hi: 1 << 40},
	)
	if err := cat.Register(sc); err != nil {
		t.Fatal(err)
	}
	return cat
}

// TestShardEngineUnregisterFlushesAccumulated: tuples sitting in an
// accumulator (below the batch threshold) when Unregister is called
// must still be processed — the flush has to happen while the query is
// still routed, and the uninstall control item trails it through the
// ring.
func TestShardEngineUnregisterFlushesAccumulated(t *testing.T) {
	cat := regressCatalog(t)
	eng := NewShard("regress", cat, 2)
	defer eng.Close()

	var emitted atomic.Int64
	spec := QuerySpec{ID: "u", Source: "events"}
	if err := eng.Register(spec, func(stream.Tuple) { emitted.Add(1) }); err != nil {
		t.Fatal(err)
	}
	const n = 50 // well under shardAccBatch: stays in the accumulator
	base := time.Unix(1754000000, 0).UTC()
	for i := 0; i < n; i++ {
		eng.Ingest(stream.NewTuple("events", uint64(i), base,
			stream.Int(0), stream.Int(int64(i))))
	}
	if _, err := eng.Unregister("u"); err != nil {
		t.Fatal(err)
	}
	// Unregister waits for the uninstall control item, which trails the
	// flushed batch through the ring: every ingested tuple is processed
	// by the time it returns.
	if got := emitted.Load(); got != n {
		t.Fatalf("emitted %d of %d tuples ingested before Unregister", got, n)
	}
	if d := eng.Dropped("u"); d != 0 {
		t.Fatalf("Dropped = %d, want 0", d)
	}
}

// TestShardEnginePerProducerOrderPreserved: dispatch of a filled
// accumulator batch must not be overtaken by a later batch of the same
// key (e.g. the flusher tick grabbing the refilled buffer first). Each
// producer's tuples are appended in seq order under the accumulator
// lock, so each producer's seq sequence must emerge from the (single)
// shard monotonically.
func TestShardEnginePerProducerOrderPreserved(t *testing.T) {
	cat := regressCatalog(t)
	eng := NewShard("regress", cat, 1)
	defer eng.Close()

	var mu sync.Mutex
	var got []stream.Tuple
	spec := QuerySpec{ID: "ord", Source: "events"}
	if err := eng.Register(spec, func(tu stream.Tuple) {
		mu.Lock()
		got = append(got, tu)
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}

	const producers = 2
	const perProducer = 30000
	base := time.Unix(1754000000, 0).UTC()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				eng.Ingest(stream.NewTuple("events", uint64(i), base,
					stream.Int(int64(p)), stream.Int(int64(i))))
			}
		}(p)
	}
	wg.Wait()
	if !eng.Drain(10 * time.Second) {
		t.Fatal("drain timed out")
	}
	if d := eng.Dropped("ord"); d != 0 {
		t.Skipf("ring dropped %d tuples; ordering check needs a lossless run", d)
	}
	mu.Lock()
	defer mu.Unlock()
	last := make([]int64, producers)
	for i := range last {
		last[i] = -1
	}
	for i, tu := range got {
		p := tu.Value(0).AsInt()
		seq := tu.Value(1).AsInt()
		if seq <= last[p] {
			t.Fatalf("result %d: producer %d seq %d after seq %d — per-key batch order inverted", i, p, seq, last[p])
		}
		last[p] = seq
	}
	if len(got) != producers*perProducer {
		t.Fatalf("got %d results, want %d", len(got), producers*perProducer)
	}
}

// TestShardEnginePendingNonNegative: the pending counter is incremented
// before the ring publish, so it can never dip negative — Drain sums it
// across shards and a transient negative could fake an all-idle zero.
func TestShardEnginePendingNonNegative(t *testing.T) {
	cat := regressCatalog(t)
	eng := NewShard("regress", cat, 2)
	defer eng.Close()
	spec := QuerySpec{ID: "p", Source: "events"}
	if err := eng.Register(spec, nil); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var bad atomic.Int64
	var sampler sync.WaitGroup
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, sh := range eng.shards {
				if sh.pending.Load() < 0 {
					bad.Add(1)
				}
			}
		}
	}()

	base := time.Unix(1754000000, 0).UTC()
	b := make(stream.Batch, 64)
	deadline := time.Now().Add(300 * time.Millisecond)
	seq := uint64(0)
	for time.Now().Before(deadline) {
		for i := range b {
			b[i] = stream.NewTuple("events", seq, base, stream.Int(0), stream.Int(int64(seq)))
			seq++
		}
		eng.IngestBatch(b)
	}
	close(stop)
	sampler.Wait()
	if n := bad.Load(); n != 0 {
		t.Fatalf("observed negative shard pending %d times", n)
	}
}

// TestShardEngineAdaptRingFullWriterQueuedNoDeadlock reconstructs the
// review deadlock deterministically:
//
//  1. the consumer shard blocks inside an emit callback (gate), and the
//     ring behind it fills to capacity;
//  2. AdaptOrdering starts — its control enqueue must spin on the full
//     ring;
//  3. a writer (Register) queues for mu.Lock;
//  4. the gate opens and the consumer's next emit re-enters the engine
//     under mu.RLock.
//
// If AdaptOrdering held mu.RLock across the spinning enqueue, the
// queued writer would block the emit's RLock behind it, the ring would
// never drain, and the spin would never end — engine-wide deadlock.
// With the fix everything completes promptly.
func TestShardEngineAdaptRingFullWriterQueuedNoDeadlock(t *testing.T) {
	cat := regressCatalog(t)
	eng := NewShard("regress", cat, 2)

	gate := make(chan struct{})
	ready := make(chan struct{})
	var once sync.Once
	spec := QuerySpec{ID: "slow", Source: "events"}
	if err := eng.Register(spec, func(stream.Tuple) {
		once.Do(func() {
			close(ready) // consumer is now parked inside processing
			<-gate
		})
		eng.Dropped("slow") // re-enter the engine under mu.RLock
	}); err != nil {
		t.Fatal(err)
	}

	// Fill the owning shard's ring to capacity behind the gated batch.
	sh := eng.shardFor("slow")
	base := time.Unix(1754000000, 0).UTC()
	b := make(stream.Batch, 8)
	seq := uint64(0)
	fill := time.Now().Add(10 * time.Second)
	for sh.pending.Load() <= shardRingDepth {
		for i := range b {
			b[i] = stream.NewTuple("events", seq, base, stream.Int(0), stream.Int(int64(seq)))
			seq++
		}
		eng.IngestBatch(b)
		if time.Now().After(fill) {
			t.Fatal("could not fill shard ring")
		}
	}
	<-ready

	done := make(chan struct{}, 2)
	go func() { // spins on the full ring until the consumer drains
		eng.AdaptOrdering(0.5)
		done <- struct{}{}
	}()
	time.Sleep(50 * time.Millisecond)
	go func() { // writer queues on mu.Lock
		if err := eng.Register(QuerySpec{ID: "w", Source: "events"}, nil); err != nil {
			t.Error(err)
		}
		done <- struct{}{}
	}()
	time.Sleep(50 * time.Millisecond)
	close(gate)

	for i := 0; i < 2; i++ {
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatal("deadlock: AdaptOrdering/Register never completed with a full ring and a queued writer")
		}
	}
	if !eng.Drain(10 * time.Second) {
		t.Fatal("drain timed out")
	}
	eng.Close()
}
