package engine

import (
	"sync"
	"testing"
	"time"

	"sspd/internal/stream"
)

func simpleSpec(id string) QuerySpec {
	return QuerySpec{
		ID:     id,
		Source: "quotes",
		Filters: []FilterSpec{
			{Field: "price", Lo: 0, Hi: 100},
		},
	}
}

func TestEngineRegisterIngest(t *testing.T) {
	e := New("test", testCatalog(t))
	defer e.Close()

	var mu sync.Mutex
	var got []stream.Tuple
	if err := e.Register(simpleSpec("q1"), func(t stream.Tuple) {
		mu.Lock()
		got = append(got, t)
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	if e.EngineName() != "test" {
		t.Errorf("name = %q", e.EngineName())
	}
	e.Ingest(quote(1, "ibm", 50, 1))
	e.Ingest(quote(2, "ibm", 500, 1)) // filtered
	e.Ingest(trade(3, "ibm", 10))     // not subscribed
	if !e.Drain(time.Second) {
		t.Fatal("drain timed out")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0].Seq != 1 {
		t.Fatalf("results = %v", got)
	}
}

func TestEngineDuplicateRegister(t *testing.T) {
	e := New("test", testCatalog(t))
	defer e.Close()
	if err := e.Register(simpleSpec("q1"), nil); err != nil {
		t.Fatal(err)
	}
	if err := e.Register(simpleSpec("q1"), nil); err == nil {
		t.Fatal("duplicate register accepted")
	}
}

func TestEngineRegisterBadSpec(t *testing.T) {
	e := New("test", testCatalog(t))
	defer e.Close()
	if err := e.Register(QuerySpec{ID: "q", Source: "nope"}, nil); err == nil {
		t.Fatal("bad spec accepted")
	}
}

func TestEngineUnregisterReturnsSpec(t *testing.T) {
	e := New("test", testCatalog(t))
	defer e.Close()
	spec := simpleSpec("q1")
	if err := e.Register(spec, nil); err != nil {
		t.Fatal(err)
	}
	got, err := e.Unregister("q1")
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != "q1" || got.Source != "quotes" {
		t.Fatalf("returned spec = %+v", got)
	}
	if ids := e.QueryIDs(); len(ids) != 0 {
		t.Fatalf("queries after unregister = %v", ids)
	}
	if _, err := e.Unregister("q1"); err == nil {
		t.Fatal("double unregister accepted")
	}
	// Re-register elsewhere (migration round-trip).
	e2 := New("other", testCatalog(t))
	defer e2.Close()
	if err := e2.Register(got, nil); err != nil {
		t.Fatalf("re-register migrated spec: %v", err)
	}
}

func TestEngineQueryIDsSorted(t *testing.T) {
	e := New("test", testCatalog(t))
	defer e.Close()
	for _, id := range []string{"b", "a", "c"} {
		if err := e.Register(simpleSpec(id), nil); err != nil {
			t.Fatal(err)
		}
	}
	ids := e.QueryIDs()
	if len(ids) != 3 || ids[0] != "a" || ids[1] != "b" || ids[2] != "c" {
		t.Fatalf("ids = %v", ids)
	}
}

func TestEngineLoad(t *testing.T) {
	e := New("test", testCatalog(t))
	defer e.Close()
	if e.Load() != 0 {
		t.Error("empty engine has load")
	}
	spec := simpleSpec("q1")
	spec.Load = 10
	if err := e.Register(spec, nil); err != nil {
		t.Fatal(err)
	}
	if got := e.Load(); got < 10 {
		t.Errorf("load = %v, want >= 10", got)
	}
}

func TestEngineMetricsAndPR(t *testing.T) {
	e := New("test", testCatalog(t))
	defer e.Close()
	if err := e.Register(simpleSpec("q1"), nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		e.Ingest(quote(uint64(i), "ibm", 50, 1))
	}
	if !e.Drain(time.Second) {
		t.Fatal("drain timed out")
	}
	m, ok := e.Metrics("q1")
	if !ok {
		t.Fatal("metrics missing")
	}
	if m.Results != 100 {
		t.Errorf("results = %d, want 100", m.Results)
	}
	if m.Delay.Count != 100 || m.Processing.Count != 100 {
		t.Errorf("counts = %d/%d", m.Delay.Count, m.Processing.Count)
	}
	// Delay includes queueing, so PR = d/p >= 1 (within clock noise).
	if m.PR < 0.5 {
		t.Errorf("PR = %v, implausibly small", m.PR)
	}
	if _, ok := e.Metrics("missing"); ok {
		t.Error("metrics for unknown query")
	}
}

func TestEngineDroppedCounting(t *testing.T) {
	e := New("test", testCatalog(t))
	defer e.Close()
	// A slow query: the filter predicate sleeps, so the queue fills.
	spec := QuerySpec{
		ID:     "slow",
		Source: "quotes",
		Filters: []FilterSpec{
			{Field: "price", Lo: 0, Hi: 1000},
		},
	}
	if err := e.Register(spec, func(stream.Tuple) {
		time.Sleep(time.Millisecond)
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < queueDepth*3; i++ {
		e.Ingest(quote(uint64(i), "ibm", 1, 1))
	}
	if e.Dropped("slow") == 0 {
		t.Error("overloaded queue dropped nothing")
	}
	if e.Dropped("missing") != 0 {
		t.Error("unknown query reports drops")
	}
}

func TestEngineCloseIdempotent(t *testing.T) {
	e := New("test", testCatalog(t))
	if err := e.Register(simpleSpec("q1"), nil); err != nil {
		t.Fatal(err)
	}
	e.Close()
	e.Close()
	if err := e.Register(simpleSpec("q2"), nil); err == nil {
		t.Fatal("register after close accepted")
	}
}

func TestEngineQueryAccessor(t *testing.T) {
	e := New("test", testCatalog(t))
	defer e.Close()
	if err := e.Register(simpleSpec("q1"), nil); err != nil {
		t.Fatal(err)
	}
	if q, ok := e.Query("q1"); !ok || q.ID() != "q1" {
		t.Error("Query accessor failed")
	}
	if _, ok := e.Query("nope"); ok {
		t.Error("Query for unknown id")
	}
}

func TestEngineConcurrentIngest(t *testing.T) {
	e := New("test", testCatalog(t))
	defer e.Close()
	var count int64
	var mu sync.Mutex
	if err := e.Register(simpleSpec("q1"), func(stream.Tuple) {
		mu.Lock()
		count++
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				e.Ingest(quote(uint64(w*100+i), "ibm", 50, 1))
			}
		}(w)
	}
	wg.Wait()
	if !e.Drain(2 * time.Second) {
		t.Fatal("drain timed out")
	}
	mu.Lock()
	defer mu.Unlock()
	if count != 200 {
		t.Fatalf("results = %d, want 200", count)
	}
}

func TestMiniEngineParity(t *testing.T) {
	// Same workload through both engines must produce the same results —
	// the heterogeneity guarantee the federation relies on.
	catalog := testCatalog(t)
	full := New("full", catalog)
	defer full.Close()
	mini := NewMini("mini", catalog)
	defer mini.Close()

	spec := QuerySpec{
		ID:     "q",
		Source: "quotes",
		Filters: []FilterSpec{
			{Field: "price", Lo: 40, Hi: 60},
		},
	}
	var fullN, miniN int64
	var mu sync.Mutex
	if err := full.Register(spec, func(stream.Tuple) { mu.Lock(); fullN++; mu.Unlock() }); err != nil {
		t.Fatal(err)
	}
	if err := mini.Register(spec, func(stream.Tuple) { miniN++ }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		tu := quote(uint64(i), "ibm", float64(i), 1)
		full.Ingest(tu)
		mini.Ingest(tu)
	}
	if !full.Drain(time.Second) {
		t.Fatal("drain timed out")
	}
	mu.Lock()
	defer mu.Unlock()
	if fullN != miniN {
		t.Fatalf("engines disagree: full=%d mini=%d", fullN, miniN)
	}
	if miniN != 21 { // prices 40..60 inclusive
		t.Fatalf("results = %d, want 21", miniN)
	}
	if mini.Results("q") != 21 {
		t.Fatalf("mini Results = %d", mini.Results("q"))
	}
}

func TestMiniEngineLifecycle(t *testing.T) {
	m := NewMini("m", testCatalog(t))
	if m.EngineName() != "m" {
		t.Errorf("name = %q", m.EngineName())
	}
	if err := m.Register(simpleSpec("a"), nil); err != nil {
		t.Fatal(err)
	}
	if err := m.Register(simpleSpec("a"), nil); err == nil {
		t.Error("duplicate accepted")
	}
	if err := m.Register(QuerySpec{ID: "bad", Source: "nope"}, nil); err == nil {
		t.Error("bad spec accepted")
	}
	if got := m.Load(); got <= 0 {
		t.Errorf("load = %v", got)
	}
	if ids := m.QueryIDs(); len(ids) != 1 || ids[0] != "a" {
		t.Errorf("ids = %v", ids)
	}
	spec, err := m.Unregister("a")
	if err != nil || spec.ID != "a" {
		t.Fatalf("unregister = %+v, %v", spec, err)
	}
	if _, err := m.Unregister("a"); err == nil {
		t.Error("double unregister accepted")
	}
	m.Close()
	if err := m.Register(simpleSpec("b"), nil); err == nil {
		t.Error("register after close accepted")
	}
}
