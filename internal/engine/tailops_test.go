package engine

import (
	"testing"

	"sspd/internal/operator"
	"sspd/internal/stream"
)

func TestCompileDistinctQuery(t *testing.T) {
	c := testCatalog(t)
	var results []stream.Tuple
	q, err := Compile(QuerySpec{
		ID:     "qd",
		Source: "quotes",
		Filters: []FilterSpec{
			{Field: "price", Lo: 0, Hi: 1000},
		},
		Distinct: &DistinctSpec{Field: "symbol", Window: stream.CountWindow(10)},
	}, c, func(t stream.Tuple) { results = append(results, t) })
	if err != nil {
		t.Fatal(err)
	}
	q.Feed("quotes", quote(1, "ibm", 10, 1))
	q.Feed("quotes", quote(2, "ibm", 20, 1)) // duplicate symbol
	q.Feed("quotes", quote(3, "msft", 30, 1))
	if len(results) != 2 {
		t.Fatalf("distinct results = %d, want 2", len(results))
	}
}

func TestCompileTopKQuery(t *testing.T) {
	c := testCatalog(t)
	var last stream.Tuple
	q, err := Compile(QuerySpec{
		ID:     "qt",
		Source: "quotes",
		TopK:   &TopKSpec{K: 1, ValueField: "price", KeyField: "symbol", Window: stream.CountWindow(10)},
	}, c, func(t stream.Tuple) { last = t })
	if err != nil {
		t.Fatal(err)
	}
	q.Feed("quotes", quote(1, "ibm", 10, 1))
	q.Feed("quotes", quote(2, "msft", 99, 1))
	if last.Values[0].AsString() != "msft" || last.Values[2].AsInt() != 1 {
		t.Fatalf("top1 = %v", last)
	}
	// Lower price does not emit (not in top-1).
	before := last
	q.Feed("quotes", quote(3, "goog", 5, 1))
	if last.Seq != before.Seq {
		t.Fatal("out-of-topk tuple emitted")
	}
}

func TestCompileTopKAfterJoinResolvesPrefixes(t *testing.T) {
	c := testCatalog(t)
	q, err := Compile(QuerySpec{
		ID:     "qjt",
		Source: "quotes",
		Join: &JoinSpec{
			Stream: "trades", LeftKey: "symbol", RightKey: "symbol",
			Window: stream.CountWindow(10),
		},
		// Post-join the fields are l_price / l_symbol; the compiler
		// resolves the bare names.
		TopK: &TopKSpec{K: 2, ValueField: "price", KeyField: "symbol", Window: stream.CountWindow(10)},
	}, c, nil)
	if err != nil {
		t.Fatal(err)
	}
	q.Feed("quotes", quote(1, "ibm", 10, 1))
	if n := q.Feed("trades", trade(2, "ibm", 5)); n != 1 {
		t.Fatalf("join+topk results = %d", n)
	}
}

func TestTailSpecValidation(t *testing.T) {
	bad := []QuerySpec{
		{ID: "q", Source: "s", Distinct: &DistinctSpec{}},
		{ID: "q", Source: "s", TopK: &TopKSpec{K: 0, ValueField: "v", KeyField: "k"}},
		{ID: "q", Source: "s", TopK: &TopKSpec{K: 1, KeyField: "k"}},
		{ID: "q", Source: "s", TopK: &TopKSpec{K: 1, ValueField: "v"}},
		{ID: "q", Source: "s",
			Agg:  &AggSpec{Fn: operator.AggCount},
			TopK: &TopKSpec{K: 1, ValueField: "v", KeyField: "k"}},
	}
	for i, spec := range bad {
		if err := spec.Validate(); err == nil {
			t.Errorf("bad tail spec %d accepted", i)
		}
	}
	// Compile-time resolution failures.
	c := testCatalog(t)
	if _, err := Compile(QuerySpec{
		ID: "q", Source: "quotes",
		Distinct: &DistinctSpec{Field: "nope"},
	}, c, nil); err == nil {
		t.Error("distinct on missing field compiled")
	}
	if _, err := Compile(QuerySpec{
		ID: "q", Source: "quotes",
		TopK: &TopKSpec{K: 1, ValueField: "nope", KeyField: "symbol"},
	}, c, nil); err == nil {
		t.Error("topk on missing field compiled")
	}
}

func TestTailLoadEstimates(t *testing.T) {
	spec := QuerySpec{
		ID: "q", Source: "s",
		Distinct: &DistinctSpec{Field: "k"},                         // 1
		TopK:     &TopKSpec{K: 1, ValueField: "v", KeyField: "k"},   // 2
		Filters:  []FilterSpec{{Field: "f", Lo: 0, Hi: 1, Cost: 3}}, // 3
	}
	if got := spec.EstimatedLoad(); got != 6 {
		t.Errorf("load = %v, want 6", got)
	}
}

func TestReorderWithMultipleTailOps(t *testing.T) {
	c := testCatalog(t)
	q, err := Compile(QuerySpec{
		ID:     "q",
		Source: "quotes",
		Filters: []FilterSpec{
			{Field: "price", Lo: 0, Hi: 100, Cost: 1},
			{Field: "volume", Lo: 0, Hi: 10, Cost: 5},
		},
		Distinct: &DistinctSpec{Field: "symbol", Window: stream.CountWindow(4)},
		Agg:      &AggSpec{Fn: operator.AggCount, Window: stream.CountWindow(4)},
	}, c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(q.FilterCosts()); got != 2 {
		t.Fatalf("filter count with 2 tail ops = %d", got)
	}
	if err := q.ReorderFilters([]int{1, 0}); err != nil {
		t.Fatal(err)
	}
	// Tail ops survive the reorder in place: feeding still aggregates.
	if n := q.Feed("quotes", quote(1, "ibm", 50, 5)); n != 1 {
		t.Fatalf("results after reorder = %d", n)
	}
	ops := q.Operators()
	if ops[len(ops)-1].Name() != "q/agg" || ops[len(ops)-2].Name() != "q/distinct" {
		t.Fatalf("tail order broken: %s, %s",
			ops[len(ops)-2].Name(), ops[len(ops)-1].Name())
	}
}
