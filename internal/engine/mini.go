package engine

import (
	"fmt"
	"sort"
	"sync"

	"sspd/internal/stream"
)

// MiniEngine is a deliberately different engine implementation: fully
// synchronous (Ingest runs queries inline under one mutex), with no
// queues and no latency instrumentation. It stands in for the "different
// processing engine from a different vendor" the paper's loose-coupling
// argument hinges on: the federation treats Engine and MiniEngine
// identically because both speak QuerySpec.
type MiniEngine struct {
	name    string
	catalog *stream.Catalog

	mu      sync.Mutex
	queries map[string]*Query
	byInput map[string][]*Query
	results map[string]int64
	closed  bool
}

// NewMini returns a MiniEngine reading schemas from catalog.
func NewMini(name string, catalog *stream.Catalog) *MiniEngine {
	return &MiniEngine{
		name:    name,
		catalog: catalog,
		queries: make(map[string]*Query),
		byInput: make(map[string][]*Query),
		results: make(map[string]int64),
	}
}

// EngineName implements Processor.
func (m *MiniEngine) EngineName() string { return m.name }

// Register implements Processor.
func (m *MiniEngine) Register(spec QuerySpec, emit func(stream.Tuple)) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return fmt.Errorf("miniengine %s: closed", m.name)
	}
	if _, dup := m.queries[spec.ID]; dup {
		return fmt.Errorf("miniengine %s: query %s already registered", m.name, spec.ID)
	}
	id := spec.ID
	q, err := Compile(spec, m.catalog, func(t stream.Tuple) {
		m.results[id]++
		if emit != nil {
			emit(t)
		}
	})
	if err != nil {
		return err
	}
	m.queries[spec.ID] = q
	for _, s := range spec.Streams() {
		m.byInput[s] = append(m.byInput[s], q)
	}
	return nil
}

// Unregister implements Processor.
func (m *MiniEngine) Unregister(id string) (QuerySpec, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	q, ok := m.queries[id]
	if !ok {
		return QuerySpec{}, fmt.Errorf("miniengine %s: unknown query %s", m.name, id)
	}
	delete(m.queries, id)
	delete(m.results, id)
	for _, s := range q.Spec().Streams() {
		list := m.byInput[s]
		for i := range list {
			if list[i] == q {
				m.byInput[s] = append(list[:i], list[i+1:]...)
				break
			}
		}
		if len(m.byInput[s]) == 0 {
			delete(m.byInput, s)
		}
	}
	return q.Spec(), nil
}

// Ingest implements Processor: queries run inline, synchronously.
func (m *MiniEngine) Ingest(t stream.Tuple) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, q := range m.byInput[t.Stream] {
		q.Feed(t.Stream, t)
	}
}

// IngestBatch implements BatchIngester: one lock round for the whole
// batch.
func (m *MiniEngine) IngestBatch(b stream.Batch) {
	if len(b) == 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := range b {
		for _, q := range m.byInput[b[i].Stream] {
			q.Feed(b[i].Stream, b[i])
		}
	}
}

// FeedQueryBatch implements BatchFeeder: one lock and lookup round for
// the whole batch.
func (m *MiniEngine) FeedQueryBatch(id string, b stream.Batch) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	q, ok := m.queries[id]
	if !ok {
		return fmt.Errorf("miniengine %s: unknown query %s", m.name, id)
	}
	for i := range b {
		q.Feed(b[i].Stream, b[i])
	}
	return nil
}

// FeedQuery delivers a tuple to exactly one registered query, bypassing
// stream-based routing.
func (m *MiniEngine) FeedQuery(id string, t stream.Tuple) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	q, ok := m.queries[id]
	if !ok {
		return fmt.Errorf("miniengine %s: unknown query %s", m.name, id)
	}
	q.Feed(t.Stream, t)
	return nil
}

// QueryIDs implements Processor.
func (m *MiniEngine) QueryIDs() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.queries))
	for id := range m.queries {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Load implements Processor.
func (m *MiniEngine) Load() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	load := 0.0
	for _, q := range m.queries {
		load += q.Spec().EstimatedLoad()
	}
	return load
}

// Results reports the number of result tuples a query has emitted.
func (m *MiniEngine) Results(id string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.results[id]
}

// Close implements Processor.
func (m *MiniEngine) Close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.queries = make(map[string]*Query)
	m.byInput = make(map[string][]*Query)
}

var _ Processor = (*Engine)(nil)
var _ Processor = (*MiniEngine)(nil)
