package engine

import (
	"sync"
	"testing"
	"time"

	"sspd/internal/stream"
)

func TestShardRingFIFO(t *testing.T) {
	r := newShardRing(8)
	if _, ok := r.dequeue(); ok {
		t.Fatal("empty ring dequeued an item")
	}
	for i := 0; i < 8; i++ {
		b := stream.Batch{{Stream: "s", Seq: uint64(i)}}
		if !r.enqueue(ringItem{b: b}) {
			t.Fatalf("enqueue %d failed on non-full ring", i)
		}
	}
	if r.enqueue(ringItem{}) {
		t.Fatal("enqueue succeeded on full ring")
	}
	for i := 0; i < 8; i++ {
		item, ok := r.dequeue()
		if !ok {
			t.Fatalf("dequeue %d failed on non-empty ring", i)
		}
		if got := item.b[0].Seq; got != uint64(i) {
			t.Fatalf("dequeue %d returned seq %d; ring must be FIFO", i, got)
		}
	}
	if !r.empty() {
		t.Fatal("drained ring reports non-empty")
	}
}

// TestShardRingWrap drives the ring through many laps so slot sequence
// arithmetic is exercised across wraparound.
func TestShardRingWrap(t *testing.T) {
	r := newShardRing(4)
	seq := uint64(0)
	for lap := 0; lap < 1000; lap++ {
		n := 1 + lap%4
		for i := 0; i < n; i++ {
			if !r.enqueue(ringItem{b: stream.Batch{{Seq: seq}}}) {
				t.Fatalf("lap %d: enqueue failed", lap)
			}
			seq++
		}
		for i := 0; i < n; i++ {
			item, ok := r.dequeue()
			if !ok {
				t.Fatalf("lap %d: dequeue failed", lap)
			}
			want := seq - uint64(n) + uint64(i)
			if item.b[0].Seq != want {
				t.Fatalf("lap %d: got seq %d want %d", lap, item.b[0].Seq, want)
			}
		}
	}
}

// TestShardRingConcurrentProducers checks the multi-producer enqueue
// path under contention: every published item is consumed exactly once.
func TestShardRingConcurrentProducers(t *testing.T) {
	r := newShardRing(256)
	const producers, perProducer = 4, 10000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				item := ringItem{b: stream.Batch{{Seq: uint64(p*perProducer + i)}}}
				for !r.enqueue(item) {
					time.Sleep(time.Microsecond)
				}
			}
		}(p)
	}
	seen := make(map[uint64]bool, producers*perProducer)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for len(seen) < producers*perProducer {
			item, ok := r.dequeue()
			if !ok {
				time.Sleep(time.Microsecond)
				continue
			}
			s := item.b[0].Seq
			if seen[s] {
				t.Errorf("item %d consumed twice", s)
				return
			}
			seen[s] = true
		}
	}()
	wg.Wait()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("consumer did not observe every item")
	}
}

// Satellite guard: ring enqueue/dequeue allocate nothing in steady
// state — the hot handoff between producers and shard goroutines.
func TestShardRingAllocFree(t *testing.T) {
	r := newShardRing(16)
	b := stream.Batch{{Stream: "s", Seq: 1}}
	item := ringItem{b: b, arrived: time.Unix(0, 0)}
	allocs := testing.AllocsPerRun(1000, func() {
		if !r.enqueue(item) {
			t.Fatal("enqueue failed")
		}
		if _, ok := r.dequeue(); !ok {
			t.Fatal("dequeue failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("ring enqueue+dequeue allocates %.1f/op; want 0", allocs)
	}
}
