package engine

import (
	"sync/atomic"
	"time"

	"sspd/internal/stream"
)

// shardRing is the bounded lock-free queue feeding one shard goroutine.
// Producers (ingest callers, the accumulator flusher) enqueue whole
// batches; the single shard goroutine dequeues. Capacity is a power of
// two so slot addressing is one mask, and head/tail live on their own
// cache lines so the producer and consumer never false-share.
//
// The design is the classic bounded MPSC ring with per-slot sequence
// numbers: in steady state one delegation processor produces and the
// ring degenerates to SPSC, but correctness does not depend on it —
// Ingest may legally be called from several goroutines. Enqueue never
// blocks: a full ring reports failure and the caller drops-and-counts,
// preserving the engine's never-block contract.
type shardRing struct {
	mask  uint64
	slots []ringSlot
	_     [64]byte
	head  atomic.Uint64 // consumer position
	_     [64]byte
	tail  atomic.Uint64 // producer reservation
	_     [64]byte
}

// ringItem is one ring slot's payload: either a same-stream data batch
// or a control item (never both).
type ringItem struct {
	// b is a same-stream data batch. Read-only once enqueued; shards
	// sharing a batch never mutate tuples in place (the Tuple contract).
	b stream.Batch
	// frag, when non-empty, addresses the batch to exactly one query
	// (DirectFeeder/BatchFeeder delivery) instead of stream routing.
	frag string
	// arrived is the enqueue timestamp the delay measurement starts from.
	arrived time.Time
	// ctl marks a control item (register/unregister/state/adapt).
	ctl *shardCtl
}

type ringSlot struct {
	seq  atomic.Uint64
	item ringItem
	// Pad the slot so neighbouring slots' seq words do not share a
	// cache line under concurrent enqueue/dequeue.
	_ [24]byte
}

// newShardRing returns a ring with the given power-of-two capacity.
func newShardRing(capacity int) *shardRing {
	if capacity <= 0 || capacity&(capacity-1) != 0 {
		panic("engine: shard ring capacity must be a power of two")
	}
	r := &shardRing{mask: uint64(capacity - 1), slots: make([]ringSlot, capacity)}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// enqueue attempts to publish one item; false means the ring is full
// and the item was not enqueued (the caller counts the drop).
func (r *shardRing) enqueue(item ringItem) bool {
	pos := r.tail.Load()
	for {
		slot := &r.slots[pos&r.mask]
		seq := slot.seq.Load()
		switch {
		case seq == pos:
			if r.tail.CompareAndSwap(pos, pos+1) {
				slot.item = item
				slot.seq.Store(pos + 1)
				return true
			}
			pos = r.tail.Load()
		case seq < pos:
			// The slot still holds an unconsumed item from a full lap
			// ago: the ring is full.
			return false
		default:
			pos = r.tail.Load()
		}
	}
}

// dequeue pops the oldest item. Single consumer only.
func (r *shardRing) dequeue() (ringItem, bool) {
	pos := r.head.Load()
	slot := &r.slots[pos&r.mask]
	seq := slot.seq.Load()
	if seq != pos+1 {
		return ringItem{}, false
	}
	item := slot.item
	slot.item = ringItem{} // release the batch reference
	slot.seq.Store(pos + r.mask + 1)
	r.head.Store(pos + 1)
	return item, true
}

// occupancy returns the number of items currently in the ring — a racy
// estimate (producers and the consumer move concurrently), read from
// the same two words the enqueue path already touches. No clock, no
// allocation: the telemetry sampling discipline of the publish path.
func (r *shardRing) occupancy() uint64 {
	t, h := r.tail.Load(), r.head.Load()
	if t < h {
		return 0
	}
	return t - h
}

// empty reports whether the ring currently holds no items.
func (r *shardRing) empty() bool {
	pos := r.head.Load()
	return r.slots[pos&r.mask].seq.Load() != pos+1
}
