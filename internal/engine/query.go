package engine

import (
	"fmt"

	"sspd/internal/operator"
	"sspd/internal/stream"
)

// Query is a compiled QuerySpec: the concrete operator pipeline one
// engine executes. A Query is single-threaded; its owning engine
// serializes Feed calls.
type Query struct {
	spec QuerySpec
	// join, when present, heads the pipeline. Port 0 consumes Source,
	// port 1 consumes Join.Stream.
	join *operator.WindowJoin
	// chain is the ordered unary pipeline after the (optional) join.
	chain []operator.Operator
	// tailOps counts the non-commutable operators at the end of chain
	// (distinct/aggregate/top-k); the filters before them may reorder.
	tailOps int
	// emit receives result tuples.
	emit func(stream.Tuple)
}

// Compile turns a spec into a runnable Query against the global schema
// catalog. emit receives the query's result tuples; a nil emit discards
// results (useful in benchmarks).
func Compile(spec QuerySpec, catalog *stream.Catalog, emit func(stream.Tuple)) (*Query, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	src, ok := catalog.Lookup(spec.Source)
	if !ok {
		return nil, fmt.Errorf("engine: query %s: unknown stream %q", spec.ID, spec.Source)
	}
	q := &Query{spec: spec, emit: emit}

	cur := src
	if spec.Join != nil {
		right, ok := catalog.Lookup(spec.Join.Stream)
		if !ok {
			return nil, fmt.Errorf("engine: query %s: unknown join stream %q", spec.ID, spec.Join.Stream)
		}
		j, err := operator.NewWindowJoin(spec.ID+"/join", src, right,
			spec.Join.LeftKey, spec.Join.RightKey, defaultWindow(spec.Join.Window), spec.Join.Cost)
		if err != nil {
			return nil, err
		}
		q.join = j
		cur = j.OutSchema()
	}

	for i, f := range spec.Filters {
		op, err := compileFilter(fmt.Sprintf("%s/f%d", spec.ID, i), f, cur)
		if err != nil {
			return nil, err
		}
		q.chain = append(q.chain, op)
	}

	if spec.Distinct != nil {
		field, err := resolveField(spec.ID+"/distinct", spec.Distinct.Field, cur)
		if err != nil {
			return nil, err
		}
		d, err := operator.NewDistinct(spec.ID+"/distinct", cur, field,
			defaultWindow(spec.Distinct.Window), spec.Distinct.Cost)
		if err != nil {
			return nil, err
		}
		q.chain = append(q.chain, d)
		q.tailOps++
	}
	if spec.Agg != nil {
		a, err := operator.NewAggregate(spec.ID+"/agg", cur, spec.Agg.Fn,
			spec.Agg.ValueField, spec.Agg.GroupField, defaultWindow(spec.Agg.Window), spec.Agg.Cost)
		if err != nil {
			return nil, err
		}
		q.chain = append(q.chain, a)
		q.tailOps++
	}
	if spec.TopK != nil {
		vf, err := resolveField(spec.ID+"/topk", spec.TopK.ValueField, cur)
		if err != nil {
			return nil, err
		}
		kf, err := resolveField(spec.ID+"/topk", spec.TopK.KeyField, cur)
		if err != nil {
			return nil, err
		}
		tk, err := operator.NewTopK(spec.ID+"/topk", cur, spec.TopK.K, vf, kf,
			defaultWindow(spec.TopK.Window), spec.TopK.Cost)
		if err != nil {
			return nil, err
		}
		q.chain = append(q.chain, tk)
		q.tailOps++
	}
	return q, nil
}

// resolveField maps a spec field name onto the current schema, trying
// the join prefixes for post-join schemas.
func resolveField(op, field string, sc *stream.Schema) (string, error) {
	if _, ok := sc.FieldIndex(field); ok {
		return field, nil
	}
	for _, pre := range []string{"l_", "r_"} {
		if _, ok := sc.FieldIndex(pre + field); ok {
			return pre + field, nil
		}
	}
	return "", fmt.Errorf("engine: %s: schema %s has no field %q", op, sc.Name(), field)
}

// compileFilter builds the filter operator for one step against the
// schema at that point in the pipeline. A field the schema lacks (e.g. a
// source-stream field post-join where fields are l_-prefixed) is resolved
// with the join prefixes before failing.
func compileFilter(name string, f FilterSpec, sc *stream.Schema) (operator.Operator, error) {
	resolve := func(field string) (string, error) {
		if field == "" {
			return "", nil
		}
		if _, ok := sc.FieldIndex(field); ok {
			return field, nil
		}
		for _, pre := range []string{"l_", "r_"} {
			if _, ok := sc.FieldIndex(pre + field); ok {
				return pre + field, nil
			}
		}
		return "", fmt.Errorf("engine: %s: schema %s has no field %q", name, sc.Name(), field)
	}
	rangeField, err := resolve(f.Field)
	if err != nil {
		return nil, err
	}
	keyField, err := resolve(f.KeyField)
	if err != nil {
		return nil, err
	}
	var rIdx, kIdx = -1, -1
	if rangeField != "" {
		rIdx, _ = sc.FieldIndex(rangeField)
	}
	if keyField != "" {
		kIdx, _ = sc.FieldIndex(keyField)
	}
	keys := make(map[string]bool, len(f.Keys))
	for _, k := range f.Keys {
		keys[k] = true
	}
	lo, hi := f.Lo, f.Hi
	pred := func(t stream.Tuple) bool {
		if rIdx >= 0 {
			v := t.Value(rIdx).AsFloat()
			if v < lo || v > hi {
				return false
			}
		}
		if kIdx >= 0 && !keys[t.Value(kIdx).AsString()] {
			return false
		}
		return true
	}
	return operator.NewFilter(name, sc, pred, f.Cost)
}

// Spec returns the spec the query was compiled from.
func (q *Query) Spec() QuerySpec { return q.spec }

// ID returns the query's federation-wide identifier.
func (q *Query) ID() string { return q.spec.ID }

// Operators returns the pipeline's operators in execution order,
// including the join when present.
func (q *Query) Operators() []operator.Operator {
	out := make([]operator.Operator, 0, len(q.chain)+1)
	if q.join != nil {
		out = append(out, q.join)
	}
	out = append(out, q.chain...)
	return out
}

// Feed pushes one tuple from the named input stream through the
// pipeline, invoking emit for each result. It returns the number of
// result tuples.
func (q *Query) Feed(streamName string, t stream.Tuple) int {
	var work []stream.Tuple
	switch {
	case q.join != nil:
		port := -1
		if streamName == q.spec.Source {
			port = 0
		} else if streamName == q.spec.Join.Stream {
			port = 1
		}
		if port < 0 {
			return 0
		}
		work = q.join.Process(port, t)
	case streamName == q.spec.Source:
		work = []stream.Tuple{t}
	default:
		return 0
	}
	results := 0
	for _, w := range work {
		results += q.runChain(0, w)
	}
	return results
}

// runChain pushes a tuple through chain[from:] and emits survivors.
func (q *Query) runChain(from int, t stream.Tuple) int {
	cur := []stream.Tuple{t}
	for i := from; i < len(q.chain) && len(cur) > 0; i++ {
		var next []stream.Tuple
		for _, c := range cur {
			next = append(next, q.chain[i].Process(0, c)...)
		}
		cur = next
	}
	for _, r := range cur {
		if q.emit != nil {
			q.emit(r)
		}
	}
	return len(cur)
}

// ReorderFilters permutes the filter sub-chain according to perm, a
// permutation of the current filter indexes (aggregates stay terminal,
// joins stay at the head). It is the hook the Adaptation Module uses to
// change operator ordering at runtime.
func (q *Query) ReorderFilters(perm []int) error {
	nFilters := len(q.chain) - q.tailOps
	if len(perm) != nFilters {
		return fmt.Errorf("engine: query %s: permutation length %d, want %d", q.spec.ID, len(perm), nFilters)
	}
	seen := make([]bool, nFilters)
	newChain := make([]operator.Operator, 0, len(q.chain))
	for _, p := range perm {
		if p < 0 || p >= nFilters || seen[p] {
			return fmt.Errorf("engine: query %s: invalid permutation %v", q.spec.ID, perm)
		}
		seen[p] = true
		newChain = append(newChain, q.chain[p])
	}
	newChain = append(newChain, q.chain[nFilters:]...)
	q.chain = newChain
	return nil
}

// FilterSelectivities reports the observed selectivity of each filter in
// current chain order.
func (q *Query) FilterSelectivities() []float64 {
	nFilters := len(q.chain) - q.tailOps
	out := make([]float64, nFilters)
	for i := 0; i < nFilters; i++ {
		out[i] = q.chain[i].Stats().Selectivity()
	}
	return out
}

// FilterCosts reports each filter's abstract per-tuple cost in current
// chain order.
func (q *Query) FilterCosts() []float64 {
	nFilters := len(q.chain) - q.tailOps
	out := make([]float64, nFilters)
	for i := 0; i < nFilters; i++ {
		out[i] = q.chain[i].Cost()
	}
	return out
}
