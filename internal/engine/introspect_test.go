package engine

import (
	"sync"
	"testing"
	"time"

	"sspd/internal/stream"
)

// Engine introspection tests (DESIGN.md §14): the shard telemetry
// snapshot must account for every tuple offered, processed, and
// dropped, and the engine-lifetime drop total must survive query
// unregistration.

func TestShardEngineStatsAccounting(t *testing.T) {
	cat := regressCatalog(t)
	eng := NewShard("intro", cat, 2)
	defer eng.Close()

	spec := QuerySpec{
		ID: "q", Source: "events",
		Filters: []FilterSpec{{Field: "seq", Lo: 0, Hi: 1 << 40, Cost: 1}},
	}
	if err := eng.Register(spec, nil); err != nil {
		t.Fatal(err)
	}

	const batches = 200
	const batchSize = 64
	base := time.Unix(1754000000, 0).UTC()
	b := make(stream.Batch, batchSize)
	seq := uint64(0)
	for i := 0; i < batches; i++ {
		for j := range b {
			b[j] = stream.NewTuple("events", seq, base, stream.Int(0), stream.Int(int64(seq)))
			seq++
		}
		eng.IngestBatch(b)
	}
	if !eng.Drain(10 * time.Second) {
		t.Fatal("drain timed out")
	}

	st := eng.EngineStats()
	if st.Engine != "intro" {
		t.Fatalf("Engine = %q, want intro", st.Engine)
	}
	if st.Queries != 1 {
		t.Fatalf("Queries = %d, want 1", st.Queries)
	}
	if len(st.Shards) != 2 {
		t.Fatalf("got %d shard rows, want 2", len(st.Shards))
	}
	tot := st.Totals()
	const n = batches * batchSize
	if tot.Offered != n {
		t.Fatalf("Offered = %d, want %d", tot.Offered, n)
	}
	if tot.Dropped != 0 || st.Dropped != 0 {
		t.Fatalf("Dropped = %d/%d, want 0", tot.Dropped, st.Dropped)
	}
	if tot.Tuples != n {
		t.Fatalf("Tuples = %d, want %d", tot.Tuples, n)
	}
	// A pure filter query compiles to the vectorized pipeline: every
	// tuple takes the kernel path, and the all-pass filter keeps
	// selectivity at 1.
	if tot.KernelTuples != n || tot.InterpTuples != 0 {
		t.Fatalf("kernel/interp split = %d/%d, want %d/0", tot.KernelTuples, tot.InterpTuples, n)
	}
	if tot.KernelIn != n || tot.KernelOut != n {
		t.Fatalf("kernel in/out = %d/%d, want %d/%d", tot.KernelIn, tot.KernelOut, n, n)
	}
	if got := tot.Selectivity(); got != 1 {
		t.Fatalf("Selectivity = %v, want 1", got)
	}
	if got := tot.KernelShare(); got != 1 {
		t.Fatalf("KernelShare = %v, want 1", got)
	}
	if tot.Batches == 0 {
		t.Fatal("Batches = 0 after processing")
	}
	// One install control item crossed some shard's ring; its measured
	// wait must be recorded.
	if tot.CtlItems == 0 {
		t.Fatal("CtlItems = 0 after Register")
	}
	// Occupancy histogram: one sample per ring enqueue, so the bucket
	// counts sum to the number of published items (data + control).
	var histSum int64
	for _, c := range tot.OccHist {
		histSum += c
	}
	if histSum == 0 {
		t.Fatal("occupancy histogram empty after publishing batches")
	}
	for _, sh := range st.Shards {
		if sh.RingCap != shardRingDepth {
			t.Fatalf("shard %d RingCap = %d, want %d", sh.Shard, sh.RingCap, shardRingDepth)
		}
		if sh.Queries < 0 {
			t.Fatalf("shard %d Queries = %d", sh.Shard, sh.Queries)
		}
	}
}

// TestShardEngineTotalDroppedSurvivesUnregister: the per-query drop
// counters vanish with Unregister, but the engine-lifetime total (and
// the entity metric built from it) must keep counting drops from
// since-expired queries.
func TestShardEngineTotalDroppedSurvivesUnregister(t *testing.T) {
	cat := regressCatalog(t)
	eng := NewShard("intro", cat, 1)
	defer eng.Close()

	gate := make(chan struct{})
	var once sync.Once
	spec := QuerySpec{ID: "slow", Source: "events"}
	if err := eng.Register(spec, func(stream.Tuple) {
		once.Do(func() { <-gate })
	}); err != nil {
		t.Fatal(err)
	}

	// Stall the single shard behind the gate and overrun its ring.
	base := time.Unix(1754000000, 0).UTC()
	b := make(stream.Batch, 8)
	seq := uint64(0)
	deadline := time.Now().Add(10 * time.Second)
	for eng.Dropped("slow") == 0 {
		for i := range b {
			b[i] = stream.NewTuple("events", seq, base, stream.Int(0), stream.Int(int64(seq)))
			seq++
		}
		eng.IngestBatch(b)
		if time.Now().After(deadline) {
			t.Fatal("could not overrun the shard ring")
		}
	}
	close(gate)
	if !eng.Drain(10 * time.Second) {
		t.Fatal("drain timed out")
	}

	d := eng.Dropped("slow")
	if d == 0 {
		t.Fatal("expected drops after ring overrun")
	}
	if got := eng.TotalDropped(); got < d {
		t.Fatalf("TotalDropped = %d, want >= per-query %d", got, d)
	}
	st := eng.EngineStats()
	if st.Dropped < d {
		t.Fatalf("EngineStats.Dropped = %d, want >= %d", st.Dropped, d)
	}
	if tot := st.Totals(); tot.Dropped < d {
		t.Fatalf("summed shard drops = %d, want >= %d", tot.Dropped, d)
	}

	if _, err := eng.Unregister("slow"); err != nil {
		t.Fatal(err)
	}
	if got := eng.TotalDropped(); got < d {
		t.Fatalf("TotalDropped = %d after Unregister, want >= %d (total must survive)", got, d)
	}
}

func TestOccHistogramEstimators(t *testing.T) {
	if got := OccBucketBound(0); got != 0 {
		t.Fatalf("OccBucketBound(0) = %d, want 0", got)
	}
	if got := OccBucketBound(1); got != 1 {
		t.Fatalf("OccBucketBound(1) = %d, want 1", got)
	}
	if got := OccBucketBound(4); got != 15 {
		t.Fatalf("OccBucketBound(4) = %d, want 15", got)
	}

	if got := OccP99(nil, 1024); got != 0 {
		t.Fatalf("OccP99(empty) = %v, want 0", got)
	}
	// All samples found the ring empty: P99 occupancy is zero.
	idle := make([]int64, OccBuckets)
	idle[0] = 5000
	if got := OccP99(idle, 1024); got != 0 {
		t.Fatalf("OccP99(idle) = %v, want 0", got)
	}
	// 2% of samples in the [512,1023] bucket: the P99 rank lands there.
	hot := make([]int64, OccBuckets)
	hot[0] = 980
	hot[10] = 20
	want := float64(OccBucketBound(10)) / 1024
	if got := OccP99(hot, 1024); got != want {
		t.Fatalf("OccP99(hot) = %v, want %v", got, want)
	}
	// Bucket bound beyond capacity clamps to 1.0.
	over := make([]int64, OccBuckets)
	over[OccBuckets-1] = 100
	if got := OccP99(over, 1024); got != 1 {
		t.Fatalf("OccP99(over) = %v, want 1", got)
	}
}

func TestEngineStatsMerge(t *testing.T) {
	a := EngineStats{Engine: "a", Queries: 2, Dropped: 5,
		Shards: []ShardStat{{Shard: 0, Offered: 10}}}
	b := EngineStats{Engine: "b", Queries: 1, Dropped: 3,
		Shards: []ShardStat{{Shard: 0, Offered: 7}}}
	var m EngineStats
	m.Merge(a)
	m.Merge(b)
	if m.Queries != 3 || m.Dropped != 8 {
		t.Fatalf("merged queries/dropped = %d/%d, want 3/8", m.Queries, m.Dropped)
	}
	if len(m.Shards) != 2 {
		t.Fatalf("merged %d shard rows, want 2", len(m.Shards))
	}
	// Shard rows carry their engine of origin through the merge.
	if m.Shards[0].Engine != "a" || m.Shards[1].Engine != "b" {
		t.Fatalf("merged shard engines = %q/%q, want a/b", m.Shards[0].Engine, m.Shards[1].Engine)
	}
	if tot := m.Totals(); tot.Offered != 17 {
		t.Fatalf("merged Totals().Offered = %d, want 17", tot.Offered)
	}
}
