package engine

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sspd/internal/metrics"
	"sspd/internal/stream"
)

// Policy selects how SchedEngine picks the next tuple to process. The
// paper's delay model d = processing + waiting + transfer makes waiting
// a first-class quantity; the policy decides who waits.
type Policy uint8

// Scheduling policies.
const (
	// PolicyFIFO processes tuples strictly in arrival order across all
	// queries (one logical queue).
	PolicyFIFO Policy = iota
	// PolicyRoundRobin serves one tuple from each backlogged query in
	// turn.
	PolicyRoundRobin
	// PolicyLongestQueue always serves the query with the largest
	// backlog (drains hot spots first).
	PolicyLongestQueue
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyFIFO:
		return "fifo"
	case PolicyRoundRobin:
		return "round-robin"
	case PolicyLongestQueue:
		return "longest-queue"
	default:
		return "unknown"
	}
}

// SchedEngine is the third engine implementation: all queries share one
// scheduler goroutine (the STREAM single-threaded model), with per-query
// backlogs served under a pluggable Policy. Like the other engines it
// implements Processor and DirectFeeder, so the federation can run it
// unchanged.
type SchedEngine struct {
	name    string
	catalog *stream.Catalog
	policy  Policy

	mu      sync.Mutex
	cond    *sync.Cond
	queries map[string]*schedQuery
	byInput map[string][]*schedQuery
	rrOrder []string // round-robin cursor state
	rrNext  int
	// inflight counts the item currently being processed (popped from
	// a backlog but not yet fed), so Drain observes true idleness.
	inflight atomic.Int64
	closed   bool
	done     chan struct{}

	// droppedTotal is the engine-lifetime dropped-tuple count across all
	// queries, surviving Unregister for entity-level drop attribution.
	droppedTotal metrics.Counter
}

type schedQuery struct {
	q       *Query
	backlog []schedItem
	results metrics.Counter
	delay   metrics.Histogram
	proc    metrics.Histogram
	dropped metrics.Counter
}

type schedItem struct {
	streamName string
	t          stream.Tuple
	arrived    time.Time
}

// schedBacklogCap bounds each query's backlog; overflow drops (counted),
// matching Engine's semantics.
const schedBacklogCap = 4096

// NewSched returns a scheduler engine with the given policy.
func NewSched(name string, catalog *stream.Catalog, policy Policy) *SchedEngine {
	e := &SchedEngine{
		name:    name,
		catalog: catalog,
		policy:  policy,
		queries: make(map[string]*schedQuery),
		byInput: make(map[string][]*schedQuery),
		done:    make(chan struct{}),
	}
	e.cond = sync.NewCond(&e.mu)
	go e.run()
	return e
}

// EngineName implements Processor.
func (e *SchedEngine) EngineName() string { return e.name }

// Policy returns the active scheduling policy.
func (e *SchedEngine) Policy() Policy { return e.policy }

// Register implements Processor.
func (e *SchedEngine) Register(spec QuerySpec, emit func(stream.Tuple)) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return fmt.Errorf("schedengine %s: closed", e.name)
	}
	if _, dup := e.queries[spec.ID]; dup {
		return fmt.Errorf("schedengine %s: query %s already registered", e.name, spec.ID)
	}
	sq := &schedQuery{}
	q, err := Compile(spec, e.catalog, func(t stream.Tuple) {
		sq.results.Inc()
		if emit != nil {
			emit(t)
		}
	})
	if err != nil {
		return err
	}
	sq.q = q
	e.queries[spec.ID] = sq
	for _, s := range spec.Streams() {
		e.byInput[s] = append(e.byInput[s], sq)
	}
	e.rrOrder = append(e.rrOrder, spec.ID)
	sort.Strings(e.rrOrder)
	return nil
}

// Unregister implements Processor.
func (e *SchedEngine) Unregister(id string) (QuerySpec, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	sq, ok := e.queries[id]
	if !ok {
		return QuerySpec{}, fmt.Errorf("schedengine %s: unknown query %s", e.name, id)
	}
	delete(e.queries, id)
	for _, s := range sq.q.Spec().Streams() {
		list := e.byInput[s]
		for i := range list {
			if list[i] == sq {
				e.byInput[s] = append(list[:i], list[i+1:]...)
				break
			}
		}
		if len(e.byInput[s]) == 0 {
			delete(e.byInput, s)
		}
	}
	for i, qid := range e.rrOrder {
		if qid == id {
			e.rrOrder = append(e.rrOrder[:i], e.rrOrder[i+1:]...)
			break
		}
	}
	return sq.q.Spec(), nil
}

// Ingest implements Processor.
func (e *SchedEngine) Ingest(t stream.Tuple) {
	item := schedItem{streamName: t.Stream, t: t, arrived: time.Now()}
	e.mu.Lock()
	for _, sq := range e.byInput[t.Stream] {
		if len(sq.backlog) >= schedBacklogCap {
			sq.dropped.Inc()
			e.droppedTotal.Inc()
			continue
		}
		sq.backlog = append(sq.backlog, item)
	}
	e.mu.Unlock()
	e.cond.Signal()
}

// IngestBatch implements BatchIngester: one lock round and one
// timestamp for the whole batch.
func (e *SchedEngine) IngestBatch(b stream.Batch) {
	if len(b) == 0 {
		return
	}
	now := time.Now()
	e.mu.Lock()
	for i := range b {
		for _, sq := range e.byInput[b[i].Stream] {
			if len(sq.backlog) >= schedBacklogCap {
				sq.dropped.Inc()
				e.droppedTotal.Inc()
				continue
			}
			sq.backlog = append(sq.backlog, schedItem{streamName: b[i].Stream, t: b[i], arrived: now})
		}
	}
	e.mu.Unlock()
	e.cond.Signal()
}

// FeedQueryBatch implements BatchFeeder.
func (e *SchedEngine) FeedQueryBatch(id string, b stream.Batch) error {
	if len(b) == 0 {
		return nil
	}
	now := time.Now()
	e.mu.Lock()
	sq, ok := e.queries[id]
	if !ok {
		e.mu.Unlock()
		return fmt.Errorf("schedengine %s: unknown query %s", e.name, id)
	}
	for i := range b {
		if len(sq.backlog) >= schedBacklogCap {
			sq.dropped.Inc()
			e.droppedTotal.Inc()
			continue
		}
		sq.backlog = append(sq.backlog, schedItem{streamName: b[i].Stream, t: b[i], arrived: now})
	}
	e.mu.Unlock()
	e.cond.Signal()
	return nil
}

// FeedQuery implements DirectFeeder.
func (e *SchedEngine) FeedQuery(id string, t stream.Tuple) error {
	e.mu.Lock()
	sq, ok := e.queries[id]
	if !ok {
		e.mu.Unlock()
		return fmt.Errorf("schedengine %s: unknown query %s", e.name, id)
	}
	if len(sq.backlog) >= schedBacklogCap {
		sq.dropped.Inc()
		e.droppedTotal.Inc()
	} else {
		sq.backlog = append(sq.backlog, schedItem{streamName: t.Stream, t: t, arrived: time.Now()})
	}
	e.mu.Unlock()
	e.cond.Signal()
	return nil
}

// run is the single scheduler loop.
func (e *SchedEngine) run() {
	defer close(e.done)
	for {
		e.mu.Lock()
		var sq *schedQuery
		for {
			if e.closed {
				e.mu.Unlock()
				return
			}
			sq = e.pickLocked()
			if sq != nil {
				break
			}
			e.cond.Wait()
		}
		item := sq.backlog[0]
		sq.backlog = sq.backlog[1:]
		e.inflight.Add(1)
		e.mu.Unlock()

		start := time.Now()
		sq.q.Feed(item.streamName, item.t)
		end := time.Now()
		sq.proc.Observe(end.Sub(start).Seconds())
		sq.delay.Observe(end.Sub(item.arrived).Seconds())
		e.inflight.Add(-1)
	}
}

// pickLocked selects the next query to serve per the policy (nil when
// everything is idle). Caller holds e.mu.
func (e *SchedEngine) pickLocked() *schedQuery {
	switch e.policy {
	case PolicyRoundRobin:
		n := len(e.rrOrder)
		for i := 0; i < n; i++ {
			id := e.rrOrder[(e.rrNext+i)%n]
			if sq := e.queries[id]; sq != nil && len(sq.backlog) > 0 {
				e.rrNext = (e.rrNext + i + 1) % n
				return sq
			}
		}
		return nil
	case PolicyLongestQueue:
		var best *schedQuery
		bestLen := 0
		for _, id := range e.rrOrder {
			sq := e.queries[id]
			if sq != nil && len(sq.backlog) > bestLen {
				best, bestLen = sq, len(sq.backlog)
			}
		}
		return best
	default: // PolicyFIFO: oldest head-of-line tuple across queries.
		var best *schedQuery
		var bestAt time.Time
		for _, id := range e.rrOrder {
			sq := e.queries[id]
			if sq == nil || len(sq.backlog) == 0 {
				continue
			}
			if best == nil || sq.backlog[0].arrived.Before(bestAt) {
				best, bestAt = sq, sq.backlog[0].arrived
			}
		}
		return best
	}
}

// QueryIDs implements Processor.
func (e *SchedEngine) QueryIDs() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, len(e.rrOrder))
	copy(out, e.rrOrder)
	return out
}

// Load implements Processor.
func (e *SchedEngine) Load() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	load := 0.0
	for _, sq := range e.queries {
		load += sq.q.Spec().EstimatedLoad()
		load += float64(len(sq.backlog)) / schedBacklogCap
	}
	return load
}

// Metrics returns one query's measured performance (see Engine.Metrics).
func (e *SchedEngine) Metrics(id string) (QueryMetrics, bool) {
	e.mu.Lock()
	sq, ok := e.queries[id]
	e.mu.Unlock()
	if !ok {
		return QueryMetrics{}, false
	}
	m := QueryMetrics{
		ID:         id,
		Results:    sq.results.Value(),
		Delay:      sq.delay.Snapshot(),
		Processing: sq.proc.Snapshot(),
	}
	if m.Processing.Mean > 0 {
		m.PR = m.Delay.Mean / m.Processing.Mean
	}
	return m, true
}

// AllMetrics returns the measured performance of every registered query.
func (e *SchedEngine) AllMetrics() []QueryMetrics {
	out := make([]QueryMetrics, 0, len(e.QueryIDs()))
	for _, id := range e.QueryIDs() {
		if m, ok := e.Metrics(id); ok {
			out = append(out, m)
		}
	}
	return out
}

// PRMax returns the largest PR across registered queries (0 when no
// query has measured processing time yet).
func (e *SchedEngine) PRMax() float64 {
	max := 0.0
	for _, m := range e.AllMetrics() {
		if m.PR > max {
			max = m.PR
		}
	}
	return max
}

// TotalDropped implements TotalDropReporter: the engine-lifetime dropped
// total across all queries, including since-unregistered ones.
func (e *SchedEngine) TotalDropped() int64 { return e.droppedTotal.Value() }

// Dropped reports tuples dropped by one query's full backlog.
func (e *SchedEngine) Dropped(id string) int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if sq, ok := e.queries[id]; ok {
		return sq.dropped.Value()
	}
	return 0
}

// Drain blocks until all backlogs are empty or the timeout elapses.
func (e *SchedEngine) Drain(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		e.mu.Lock()
		pending := int64(0)
		for _, sq := range e.queries {
			pending += int64(len(sq.backlog))
		}
		pending += e.inflight.Load()
		e.mu.Unlock()
		if pending == 0 {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
}

// Close implements Processor.
func (e *SchedEngine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.queries = make(map[string]*schedQuery)
	e.byInput = make(map[string][]*schedQuery)
	e.rrOrder = nil
	e.mu.Unlock()
	e.cond.Signal()
	<-e.done
}

var _ Processor = (*SchedEngine)(nil)
var _ DirectFeeder = (*SchedEngine)(nil)
