// Package engine provides the per-entity continuous-query processing
// engines of sspd. The paper's inter-entity layer is deliberately
// engine-agnostic: entities exchange declarative QuerySpecs (never live
// operators), and each entity compiles specs with whatever engine it
// runs. The package supplies the Engine interface, a full asynchronous
// engine (Engine) and a deliberately different synchronous one
// (MiniEngine) so heterogeneous federations are actually exercised.
package engine

import (
	"fmt"
	"time"

	"sspd/internal/operator"
	"sspd/internal/stream"
)

// FilterSpec declares one conjunctive predicate step of a query: a
// numeric range and/or a key-set constraint on fields of the current
// schema. Filter steps commute, which is what makes the Adaptation
// Module's operator re-ordering (Section 4.2) legal.
type FilterSpec struct {
	// Field is the numeric field constrained to [Lo, Hi]. Empty means
	// no range constraint.
	Field  string
	Lo, Hi float64
	// KeyField/Keys constrain a string field to a set of values. Empty
	// KeyField means no key constraint.
	KeyField string
	Keys     []string
	// Cost is the abstract per-tuple evaluation cost (default 1).
	Cost float64
}

func (f FilterSpec) validate(which int) error {
	if f.Field == "" && f.KeyField == "" {
		return fmt.Errorf("engine: filter %d constrains nothing", which)
	}
	if f.Field != "" && f.Hi < f.Lo {
		return fmt.Errorf("engine: filter %d has empty range [%g,%g]", which, f.Lo, f.Hi)
	}
	if f.KeyField != "" && len(f.Keys) == 0 {
		return fmt.Errorf("engine: filter %d has key field but no keys", which)
	}
	return nil
}

// interest converts the filter into an equivalent data-interest term.
func (f FilterSpec) interest(streamName string) stream.Interest {
	in := stream.NewInterest(streamName)
	if f.Field != "" {
		in = in.WithRange(f.Field, f.Lo, f.Hi)
	}
	if f.KeyField != "" {
		in = in.WithKeys(f.KeyField, f.Keys...)
	}
	return in
}

// AggSpec declares an optional terminal windowed aggregate.
type AggSpec struct {
	Fn         operator.AggFunc
	ValueField string
	GroupField string
	Window     stream.WindowSpec
	Cost       float64
}

// DistinctSpec declares an optional windowed de-duplication step,
// applied after the filters.
type DistinctSpec struct {
	// Field is the key whose duplicates are suppressed.
	Field  string
	Window stream.WindowSpec
	Cost   float64
}

// TopKSpec declares an optional terminal top-k ranking: keys ranked by
// the max of ValueField within the window; mutually exclusive with Agg.
type TopKSpec struct {
	K          int
	ValueField string
	KeyField   string
	Window     stream.WindowSpec
	Cost       float64
}

// JoinSpec declares an optional two-way window join at the head of the
// query.
type JoinSpec struct {
	Stream   string // the second input stream
	LeftKey  string // key field in the primary stream
	RightKey string // key field in the joined stream
	Window   stream.WindowSpec
	Cost     float64
}

// QuerySpec is the declarative, engine-independent description of one
// continuous query — the unit of inter-entity query distribution. It
// describes a pipeline:
//
//	Source [⋈ Join.Stream] → Filters... → [Aggregate] → results
//
// Every engine implementation compiles a QuerySpec into its own runtime
// form; specs themselves never contain engine state, which is precisely
// why query-level load sharing works across heterogeneous engines while
// operator-level sharing does not (Section 2 of the paper).
type QuerySpec struct {
	// ID uniquely identifies the query across the federation.
	ID string
	// Source is the primary input stream.
	Source string
	// Join optionally joins Source with a second stream.
	Join *JoinSpec
	// Filters apply in order after the join (or directly to Source).
	Filters []FilterSpec
	// Distinct optionally de-duplicates after the filters.
	Distinct *DistinctSpec
	// Agg optionally terminates the pipeline with a windowed aggregate.
	Agg *AggSpec
	// TopK optionally terminates the pipeline with a top-k ranking
	// (mutually exclusive with Agg).
	TopK *TopKSpec
	// Load is the query's estimated processing load in abstract
	// cost-units/second — the vertex weight in the query graph. When 0
	// it is derived from the filter/join/agg costs.
	Load float64
}

// Validate checks internal consistency without a catalog (schema checks
// happen at compile time).
func (q QuerySpec) Validate() error {
	if q.ID == "" {
		return fmt.Errorf("engine: query needs an ID")
	}
	if q.Source == "" {
		return fmt.Errorf("engine: query %s needs a source stream", q.ID)
	}
	if q.Join != nil {
		if q.Join.Stream == "" || q.Join.LeftKey == "" || q.Join.RightKey == "" {
			return fmt.Errorf("engine: query %s join is underspecified", q.ID)
		}
	}
	for i, f := range q.Filters {
		if err := f.validate(i); err != nil {
			return fmt.Errorf("engine: query %s: %w", q.ID, err)
		}
	}
	if q.Agg != nil && q.Agg.Fn != operator.AggCount && q.Agg.ValueField == "" {
		return fmt.Errorf("engine: query %s aggregate needs a value field", q.ID)
	}
	if q.Distinct != nil && q.Distinct.Field == "" {
		return fmt.Errorf("engine: query %s distinct needs a key field", q.ID)
	}
	if q.TopK != nil {
		if q.Agg != nil {
			return fmt.Errorf("engine: query %s cannot have both aggregate and top-k", q.ID)
		}
		if q.TopK.K < 1 || q.TopK.ValueField == "" || q.TopK.KeyField == "" {
			return fmt.Errorf("engine: query %s top-k is underspecified", q.ID)
		}
	}
	return nil
}

// Streams returns the input streams the query consumes.
func (q QuerySpec) Streams() []string {
	out := []string{q.Source}
	if q.Join != nil {
		out = append(out, q.Join.Stream)
	}
	return out
}

// Interest derives the query's data interest in the named input stream:
// the conjunction of all filter steps that reference fields of that
// stream's schema (filters apply post-join, so a filter constrains the
// source stream only if the source schema has the field). This is what
// the entity registers up the dissemination tree for early filtering.
func (q QuerySpec) Interest(streamName string, sc *stream.Schema) stream.Interest {
	in := stream.NewInterest(streamName)
	for _, f := range q.Filters {
		if f.Field != "" {
			if _, ok := sc.FieldIndex(f.Field); ok {
				in = in.WithRange(f.Field, f.Lo, f.Hi)
			}
		}
		if f.KeyField != "" {
			if _, ok := sc.FieldIndex(f.KeyField); ok {
				in = in.WithKeys(f.KeyField, f.Keys...)
			}
		}
	}
	return in
}

// EstimatedLoad returns the declared Load or, when absent, the summed
// per-step costs as a proxy.
func (q QuerySpec) EstimatedLoad() float64 {
	if q.Load > 0 {
		return q.Load
	}
	load := 0.0
	if q.Join != nil {
		c := q.Join.Cost
		if c <= 0 {
			c = 3
		}
		load += c
	}
	for _, f := range q.Filters {
		c := f.Cost
		if c <= 0 {
			c = 1
		}
		load += c
	}
	if q.Distinct != nil {
		c := q.Distinct.Cost
		if c <= 0 {
			c = 1
		}
		load += c
	}
	if q.Agg != nil {
		c := q.Agg.Cost
		if c <= 0 {
			c = 2
		}
		load += c
	}
	if q.TopK != nil {
		c := q.TopK.Cost
		if c <= 0 {
			c = 2
		}
		load += c
	}
	if load == 0 {
		load = 1
	}
	return load
}

// defaultWindow substitutes a sane window when a spec leaves it zero.
func defaultWindow(w stream.WindowSpec) stream.WindowSpec {
	if w.Kind == stream.WindowByCount && w.Count <= 0 {
		if w.Duration > 0 {
			return stream.TimeWindow(w.Duration)
		}
		return stream.TimeWindow(time.Minute)
	}
	return w
}
