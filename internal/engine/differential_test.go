package engine

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"sspd/internal/operator"
	"sspd/internal/stream"
)

// The differential suite drives identical workloads through Engine,
// MiniEngine, and ShardEngine and asserts byte-identical (ordering-
// normalized) result sets across every stateful operator kind. It is
// the proof obligation of the loose-coupling contract: swapping the
// vectorized shard engine in must be invisible to the federation.

func diffCatalog(t *testing.T) *stream.Catalog {
	t.Helper()
	cat := stream.NewCatalog()
	quotes := stream.MustSchema("quotes",
		stream.Field{Name: "symbol", Type: stream.KindString, Card: 8},
		stream.Field{Name: "price", Type: stream.KindFloat, Lo: 0, Hi: 100},
		stream.Field{Name: "size", Type: stream.KindInt, Lo: 0, Hi: 1000},
	)
	trades := stream.MustSchema("trades",
		stream.Field{Name: "symbol", Type: stream.KindString, Card: 8},
		stream.Field{Name: "qty", Type: stream.KindInt, Lo: 0, Hi: 500},
	)
	if err := cat.Register(quotes); err != nil {
		t.Fatal(err)
	}
	if err := cat.Register(trades); err != nil {
		t.Fatal(err)
	}
	return cat
}

var diffSymbols = []string{"ibm", "msft", "goog", "amzn", "aapl", "orcl", "nvda", "amd"}

// diffTuples generates a deterministic interleaved workload: quotes
// with an occasional trades tuple, fixed event timestamps.
func diffTuples(n int) []stream.Tuple {
	base := time.Unix(1754000000, 0).UTC()
	rng := uint64(0x2545F4914F6CDD1D)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	out := make([]stream.Tuple, 0, n)
	for i := 0; i < n; i++ {
		ts := base.Add(time.Duration(i) * time.Millisecond)
		sym := diffSymbols[next()%uint64(len(diffSymbols))]
		if i%7 == 3 {
			out = append(out, stream.NewTuple("trades", uint64(i), ts,
				stream.String(sym), stream.Int(int64(next()%500))))
			continue
		}
		out = append(out, stream.NewTuple("quotes", uint64(i), ts,
			stream.String(sym), stream.Float(float64(next()%10000)/100), stream.Int(int64(next()%1000))))
	}
	return out
}

// diffSpecs covers all five stateful operator kinds.
func diffSpecs() []QuerySpec {
	w8 := stream.CountWindow(8)
	w16 := stream.CountWindow(16)
	return []QuerySpec{
		{ID: "d-filter", Source: "quotes", Filters: []FilterSpec{
			{Field: "price", Lo: 20, Hi: 80},
			{KeyField: "symbol", Keys: []string{"ibm", "goog", "nvda"}},
		}},
		{ID: "d-agg", Source: "quotes",
			Filters: []FilterSpec{{Field: "price", Lo: 10, Hi: 90}},
			Agg:     &AggSpec{Fn: operator.AggSum, ValueField: "price", GroupField: "symbol", Window: w16}},
		{ID: "d-join", Source: "quotes",
			Join:    &JoinSpec{Stream: "trades", LeftKey: "symbol", RightKey: "symbol", Window: w8},
			Filters: []FilterSpec{{Field: "l_price", Lo: 5, Hi: 95}}},
		{ID: "d-distinct", Source: "quotes",
			Filters:  []FilterSpec{{Field: "size", Lo: 100, Hi: 900}},
			Distinct: &DistinctSpec{Field: "symbol", Window: w8}},
		{ID: "d-topk", Source: "quotes",
			TopK: &TopKSpec{K: 3, ValueField: "price", KeyField: "symbol", Window: w16}},
	}
}

// resultSink collects rendered result tuples; safe for concurrent emit.
type resultSink struct {
	mu  sync.Mutex
	got []string
}

func (s *resultSink) emit(t stream.Tuple) {
	s.mu.Lock()
	s.got = append(s.got, t.String())
	s.mu.Unlock()
}

func (s *resultSink) sorted() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.got))
	copy(out, s.got)
	sort.Strings(out)
	return out
}

type drainable interface{ Drain(time.Duration) bool }

// runWorkload feeds the tuples through one engine in same-stream waves
// (draining at every stream switch so cross-stream arrival order is
// deterministic — window joins are order-sensitive) and returns the
// per-query normalized results.
func runWorkload(t *testing.T, eng Processor, specs []QuerySpec, tuples []stream.Tuple) map[string][]string {
	t.Helper()
	sinks := make(map[string]*resultSink, len(specs))
	for _, spec := range specs {
		sink := &resultSink{}
		sinks[spec.ID] = sink
		if err := eng.Register(spec, sink.emit); err != nil {
			t.Fatalf("%s: register %s: %v", eng.EngineName(), spec.ID, err)
		}
	}
	drain := func() {
		if d, ok := eng.(drainable); ok {
			if !d.Drain(5 * time.Second) {
				t.Fatalf("%s: drain timed out", eng.EngineName())
			}
		}
	}
	const wave = 256 // well under every queue bound: no engine may drop
	for start := 0; start < len(tuples); {
		end := start + 1
		for end < len(tuples) && end-start < wave && tuples[end].Stream == tuples[start].Stream {
			end++
		}
		for _, tu := range tuples[start:end] {
			eng.Ingest(tu)
		}
		drain()
		start = end
	}
	drain()
	if dr, ok := eng.(DropReporter); ok {
		for _, spec := range specs {
			if n := dr.Dropped(spec.ID); n != 0 {
				t.Fatalf("%s: query %s dropped %d tuples; differential run must be lossless", eng.EngineName(), spec.ID, n)
			}
		}
	}
	out := make(map[string][]string, len(specs))
	for id, sink := range sinks {
		out[id] = sink.sorted()
	}
	return out
}

func TestShardEngineDifferential(t *testing.T) {
	cat := diffCatalog(t)
	specs := diffSpecs()
	tuples := diffTuples(4000)

	ref := New("ref", cat)
	defer ref.Close()
	mini := NewMini("mini", cat)
	defer mini.Close()
	shard := NewShard("shard", cat, 4)
	defer shard.Close()

	want := runWorkload(t, ref, specs, tuples)
	gotMini := runWorkload(t, mini, specs, tuples)
	gotShard := runWorkload(t, shard, specs, tuples)

	for _, spec := range specs {
		if len(want[spec.ID]) == 0 {
			t.Fatalf("reference engine produced no results for %s; workload too weak", spec.ID)
		}
		assertSameResults(t, spec.ID, "MiniEngine", want[spec.ID], gotMini[spec.ID])
		assertSameResults(t, spec.ID, "ShardEngine", want[spec.ID], gotShard[spec.ID])
	}
}

func assertSameResults(t *testing.T, query, engine string, want, got []string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s/%s: %d results, reference has %d", engine, query, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s/%s: result %d = %q, reference %q", engine, query, i, got[i], want[i])
		}
	}
}

// TestShardEngineSnapshotRestoreMidStream cuts a live shard mid-stream:
// results before the snapshot plus results after restoring into a fresh
// ShardEngine must equal an uninterrupted reference run — the engine-
// level half of migration (PR 5) and checkpoint recovery (PR 7).
func TestShardEngineSnapshotRestoreMidStream(t *testing.T) {
	cat := diffCatalog(t)
	spec := QuerySpec{ID: "d-agg", Source: "quotes",
		Filters: []FilterSpec{{Field: "price", Lo: 10, Hi: 90}},
		Agg: &AggSpec{Fn: operator.AggSum, ValueField: "price", GroupField: "symbol",
			Window: stream.CountWindow(16)}}
	all := diffTuples(3000)
	var quotes []stream.Tuple
	for _, tu := range all {
		if tu.Stream == "quotes" {
			quotes = append(quotes, tu)
		}
	}
	half := len(quotes) / 2

	ref := New("ref", cat)
	defer ref.Close()
	want := runWorkload(t, ref, []QuerySpec{spec}, quotes)[spec.ID]

	first := NewShard("shard-a", cat, 2)
	defer first.Close()
	sinkA := &resultSink{}
	if err := first.Register(spec, sinkA.emit); err != nil {
		t.Fatal(err)
	}
	for _, tu := range quotes[:half] {
		first.Ingest(tu)
	}
	if !first.Drain(5 * time.Second) {
		t.Fatal("drain before snapshot timed out")
	}
	st, err := first.SnapshotQueryState(spec.ID)
	if err != nil {
		t.Fatal(err)
	}
	if n, ok := first.QueryStateBytes(spec.ID); !ok || n <= 0 {
		t.Fatalf("QueryStateBytes = %d, %v; want live state", n, ok)
	}

	second := NewShard("shard-b", cat, 2)
	defer second.Close()
	sinkB := &resultSink{}
	if err := second.Register(spec, sinkB.emit); err != nil {
		t.Fatal(err)
	}
	if err := second.RestoreQueryState(spec.ID, st); err != nil {
		t.Fatal(err)
	}
	for _, tu := range quotes[half:] {
		second.Ingest(tu)
	}
	if !second.Drain(5 * time.Second) {
		t.Fatal("drain after restore timed out")
	}

	var got []string
	got = append(got, sinkA.sorted()...)
	got = append(got, sinkB.sorted()...)
	sort.Strings(got)
	assertSameResults(t, spec.ID, "ShardEngine(snapshot+restore)", want, got)
}

// TestShardEngineAdaptOrdering exercises the Adapter hook: skewed
// selectivities must trigger a reorder and results must stay correct
// afterwards (the vec pipeline resyncs to the new chain order).
func TestShardEngineAdaptOrdering(t *testing.T) {
	cat := diffCatalog(t)
	spec := QuerySpec{ID: "d-adapt", Source: "quotes", Filters: []FilterSpec{
		{Field: "price", Lo: 0, Hi: 100, Cost: 5},               // passes nearly everything, expensive
		{KeyField: "symbol", Keys: []string{"ibm"}, Cost: 1},    // highly selective, cheap
	}}
	eng := NewShard("shard", cat, 1)
	defer eng.Close()
	sink := &resultSink{}
	if err := eng.Register(spec, sink.emit); err != nil {
		t.Fatal(err)
	}
	tuples := diffTuples(2000)
	for _, tu := range tuples {
		if tu.Stream == "quotes" {
			eng.Ingest(tu)
		}
	}
	if !eng.Drain(5 * time.Second) {
		t.Fatal("drain timed out")
	}
	if n := eng.AdaptOrdering(0.05); n != 1 {
		t.Fatalf("AdaptOrdering = %d, want 1 (cheap selective filter should move first)", n)
	}
	before := len(sink.sorted())
	for _, tu := range tuples {
		if tu.Stream == "quotes" {
			eng.Ingest(tu)
		}
	}
	if !eng.Drain(5 * time.Second) {
		t.Fatal("drain timed out")
	}
	after := len(sink.sorted())
	if after <= before {
		t.Fatalf("no results after reorder: before=%d after=%d", before, after)
	}
	got, ok := eng.Metrics(spec.ID)
	if !ok || got.Results == 0 || got.Processing.Count == 0 {
		t.Fatalf("Metrics = %+v, %v; want live counters", got, ok)
	}
}

func ExampleShardEngine() {
	cat := stream.NewCatalog()
	_ = cat.Register(stream.MustSchema("s",
		stream.Field{Name: "k", Type: stream.KindString},
		stream.Field{Name: "v", Type: stream.KindFloat}))
	eng := NewShard("example", cat, 2)
	defer eng.Close()
	done := make(chan string, 1)
	_ = eng.Register(QuerySpec{ID: "q", Source: "s",
		Filters: []FilterSpec{{Field: "v", Lo: 10, Hi: 20}}},
		func(t stream.Tuple) { done <- t.String() })
	eng.Ingest(stream.NewTuple("s", 1, time.Unix(0, 0), stream.String("a"), stream.Float(15)))
	eng.Drain(time.Second)
	fmt.Println(<-done)
	// Output: s#1[a 15]
}
