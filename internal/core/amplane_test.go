package core

import (
	"strings"
	"sync"
	"testing"
	"time"

	"sspd/internal/dissemination"
	"sspd/internal/engine"
	"sspd/internal/simnet"
	"sspd/internal/stream"
	"sspd/internal/trace"
	"sspd/internal/workload"
)

// chainQuery splits into three single-filter fragments under
// FragmentsPerQuery: 3, so tuple routing replicates the middle stage.
func chainQuery(id string) engine.QuerySpec {
	return engine.QuerySpec{
		ID:     id,
		Source: "quotes",
		Filters: []engine.FilterSpec{
			{Field: "price", Lo: 0, Hi: 600, Cost: 1},
			{Field: "volume", Lo: 0, Hi: 800000, Cost: 1},
			{KeyField: "symbol", Keys: []string{"S0000", "S0001", "S0002"}, Cost: 1},
		},
		Load: 5,
	}
}

// runRoutingWorkload drives one federation (static or tuple-routed)
// through an identical deterministic workload and returns the result
// multiset (seq → count).
func runRoutingWorkload(t *testing.T, routed bool) map[uint64]int {
	t.Helper()
	net := simnet.NewSim(nil)
	t.Cleanup(func() { net.Close() })
	opts := Options{Strategy: dissemination.Balanced, Fanout: 2, FragmentsPerQuery: 3}
	if routed {
		opts.EnableTupleRouting = true
		opts.RoutingReplicas = 2
	}
	fed, err := New(net, workload.Catalog(100, 20), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fed.Close)
	if err := fed.AddSource("quotes", simnet.Point{}, StreamRate{TuplesPerSec: 1000, BytesPerTuple: 60}); err != nil {
		t.Fatal(err)
	}
	if err := fed.AddEntity("e", simnet.Point{X: 10}, 4, miniFactory); err != nil {
		t.Fatal(err)
	}
	if err := fed.Start(); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	got := make(map[uint64]int)
	if err := fed.SubmitQueryTo(chainQuery("q"), "e", func(tp stream.Tuple) {
		mu.Lock()
		got[tp.Seq]++
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	fed.Settle(2 * time.Second)
	tick := workload.NewTicker(7, 100, 1.2)
	for i := 0; i < 5; i++ {
		if err := fed.Publish("quotes", tick.Batch(100)); err != nil {
			t.Fatal(err)
		}
		if !net.Quiesce(5 * time.Second) {
			t.Fatal("quiesce")
		}
	}
	mu.Lock()
	defer mu.Unlock()
	out := make(map[uint64]int, len(got))
	for k, v := range got {
		out[k] = v
	}
	return out
}

// TestTupleRoutingDifferential is the semantics gate: under drop-free
// links, tuple-routed execution must produce a result multiset
// IDENTICAL to the static-ordering baseline — routing changes where
// tuples run, never what they compute.
func TestTupleRoutingDifferential(t *testing.T) {
	static := runRoutingWorkload(t, false)
	routedRes := runRoutingWorkload(t, true)
	if len(static) == 0 {
		t.Fatal("static run produced no results; the differential proves nothing")
	}
	if len(routedRes) != len(static) {
		t.Fatalf("distinct result seqs: routed %d, static %d", len(routedRes), len(static))
	}
	for seq, n := range static {
		if routedRes[seq] != n {
			t.Fatalf("seq %d: routed count %d, static count %d", seq, routedRes[seq], n)
		}
	}
}

// TestTupleRoutingFeedbackLoop drives the full AM loop: replicated
// placement, per-tuple Choose, trace completions measured into Report,
// and the observable surfaces (routing table, sspd_am_* families,
// am.route journal).
func TestTupleRoutingFeedbackLoop(t *testing.T) {
	net := simnet.NewSim(nil)
	defer net.Close()
	fed, err := New(net, workload.Catalog(100, 20), Options{
		Strategy:           dissemination.Balanced,
		Fanout:             2,
		FragmentsPerQuery:  3,
		EnableTupleRouting: true,
		RoutingReplicas:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fed.Close()
	if err := fed.AddSource("quotes", simnet.Point{}, StreamRate{TuplesPerSec: 1000, BytesPerTuple: 60}); err != nil {
		t.Fatal(err)
	}
	if err := fed.AddEntity("e", simnet.Point{X: 10}, 4, miniFactory); err != nil {
		t.Fatal(err)
	}
	if err := fed.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := fed.EnableTracing(1, 4096); err != nil {
		t.Fatal(err)
	}
	defer trace.SetActive(nil)
	if err := fed.SubmitQueryTo(chainQuery("q"), "e", nil); err != nil {
		t.Fatal(err)
	}
	fed.Settle(2 * time.Second)

	// The routing table knows both candidates before any traffic.
	routes := fed.AdaptationRoutes()
	if len(routes) != 2 {
		t.Fatalf("AdaptationRoutes = %+v, want 2 candidates", routes)
	}
	for _, r := range routes {
		if r.Query != "q" || r.Boundary != "q#1" {
			t.Fatalf("unexpected route %+v", r)
		}
	}

	tick := workload.NewTicker(7, 200, 1.2)
	for i := 0; i < 4; i++ {
		if err := fed.Publish("quotes", tick.Batch(100)); err != nil {
			t.Fatal(err)
		}
		if !net.Quiesce(5 * time.Second) {
			t.Fatal("quiesce")
		}
	}

	// Trace completions fed measured delays back into the choosers: a
	// best candidate emerged and the am.route journal recorded it.
	routes = fed.AdaptationRoutes()
	bests := 0
	for _, r := range routes {
		if r.Best {
			bests++
			if r.DelaySeconds <= 0 {
				t.Fatalf("best candidate %s has no measured delay: %+v", r.Candidate, r)
			}
		}
	}
	if bests != 1 {
		t.Fatalf("%d best candidates in %+v, want exactly 1", bests, routes)
	}
	if evs := fed.Journal().Since(0, "am.route"); len(evs) == 0 {
		t.Fatal("no am.route journal event after measured traffic")
	}

	// Both metric families surfaces agree the loop ran.
	var sb strings.Builder
	if err := fed.MetricsRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"sspd_am_reports_total",
		"sspd_am_routed_total",
		"sspd_am_reorders_total",
		`sspd_am_candidate_delay_seconds{boundary="q#1",candidate="q#1@r0",query="q"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if strings.Contains(text, "sspd_am_reports_total 0") {
		t.Error("sspd_am_reports_total stayed 0 — no delay ever fed back")
	}

	// AdaptOrdering sweeps count into the shared reorder counter.
	fed.AdaptOrdering(0)
	sb.Reset()
	if err := fed.MetricsRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "sspd_am_reorders_total") {
		t.Error("exposition lost sspd_am_reorders_total")
	}
}
