package core

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"sspd/internal/dissemination"
	"sspd/internal/simnet"
	"sspd/internal/stream"
	"sspd/internal/workload"
)

// TestReorganizeNoTupleLoss pins the make-before-break guarantee: a
// full tree reorganization between publishes loses no tuples, because
// each rewired subtree's interest reaches the new path's ancestors
// before the data path flips.
func TestReorganizeNoTupleLoss(t *testing.T) {
	net := simnet.NewSim(nil)
	t.Cleanup(func() { net.Close() })
	catalog := workload.Catalog(100, 20)
	fed, err := New(net, catalog, Options{Strategy: dissemination.Balanced, Fanout: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fed.Close)
	if err := fed.AddSource("quotes", simnet.Point{}, StreamRate{TuplesPerSec: 100, BytesPerTuple: 60}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		pos := simnet.Point{X: float64((i*37)%90 + 5), Y: float64((i*61)%90 + 5)}
		if err := fed.AddEntity(fmt.Sprintf("e%02d", i), pos, 2, miniFactory); err != nil {
			t.Fatal(err)
		}
	}
	if err := fed.Start(); err != nil {
		t.Fatal(err)
	}
	var results atomic.Int64
	for i := 0; i < 12; i++ {
		spec := priceQuery(fmt.Sprintf("q%02d", i), float64(i*80), float64(i*80+200))
		if _, err := fed.SubmitQuery(spec, simnet.Point{X: float64(i * 8)}, func(stream.Tuple) { results.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}
	net.Quiesce(5 * time.Second)
	// Fixed batch so expectations are exact.
	var batch stream.Batch
	for i := 0; i < 500; i++ {
		batch = append(batch, stream.NewTuple("quotes", uint64(i), time.Unix(int64(i), 0).UTC(),
			stream.String(fmt.Sprintf("S%04d", i%100)), stream.Float(float64(i*2%1000)), stream.Int(1)))
	}
	want := int64(0)
	for _, tu := range batch {
		p := tu.Value(1).AsFloat()
		for i := 0; i < 12; i++ {
			lo, hi := float64(i*80), float64(i*80+200)
			if p >= lo && p <= hi {
				want++
			}
		}
	}
	check := func(label string) {
		before := results.Load()
		if err := fed.Publish("quotes", batch); err != nil {
			t.Fatal(err)
		}
		net.Quiesce(5 * time.Second)
		time.Sleep(30 * time.Millisecond)
		got := results.Load() - before
		t.Logf("%s: got %d want %d", label, got, want)
		if got != want {
			t.Errorf("%s: results %d != %d", label, got, want)
		}
	}
	check("before reorganize")
	n, err := fed.ReorganizeTrees()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("nothing to reorganize (bad fixture)")
	}
	check("immediately after reorganize")
	check("steady after reorganize")
}
